(* Micro-benchmarks (bechamel) of the hot paths: codec and cache
   operations, route computation, and a full Figure 1 scenario run. *)

open Bechamel
open Toolkit
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet

let sample_packet =
  Packet.make ~id:7 ~proto:Ipv4.Proto.udp ~src:(Addr.host 1 10)
    ~dst:(Addr.host 2 10)
    (Ipv4.Udp.encode
       (Ipv4.Udp.make ~src_port:4000 ~dst_port:4000 (Bytes.create 64)))

let encoded_packet = Packet.encode sample_packet

let mhrp_header =
  Mhrp.Mhrp_header.make ~prev_sources:[Addr.host 1 10; Addr.host 2 1]
    ~orig_proto:Ipv4.Proto.udp ~mobile:(Addr.host 2 10) ()

let encoded_header = Mhrp.Mhrp_header.encode mhrp_header (Bytes.create 72)

let tunneled =
  Mhrp.Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
    ~foreign_agent:(Addr.host 4 1) sample_packet

let cache =
  let c = Mhrp.Location_cache.create ~capacity:64 in
  for k = 1 to 64 do
    Mhrp.Location_cache.insert c ~mobile:(Addr.host 9 k)
      ~foreign_agent:(Addr.host 4 1)
  done;
  c

let tests =
  [ Test.make ~name:"packet-encode" (Staged.stage (fun () ->
        ignore (Packet.encode sample_packet)));
    Test.make ~name:"packet-decode" (Staged.stage (fun () ->
        ignore (Packet.decode encoded_packet)));
    Test.make ~name:"checksum-84B" (Staged.stage (fun () ->
        ignore (Ipv4.Checksum.of_bytes encoded_packet)));
    Test.make ~name:"mhrp-header-encode" (Staged.stage (fun () ->
        ignore (Mhrp.Mhrp_header.encode mhrp_header Bytes.empty)));
    Test.make ~name:"mhrp-header-decode" (Staged.stage (fun () ->
        ignore (Mhrp.Mhrp_header.decode encoded_header)));
    Test.make ~name:"encap-tunnel-by-agent" (Staged.stage (fun () ->
        ignore
          (Mhrp.Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
             ~foreign_agent:(Addr.host 4 1) sample_packet)));
    Test.make ~name:"encap-detunnel" (Staged.stage (fun () ->
        ignore (Mhrp.Encap.detunnel tunneled)));
    Test.make ~name:"encap-retunnel" (Staged.stage (fun () ->
        ignore
          (Mhrp.Encap.retunnel ~max_prev_sources:8 ~me:(Addr.host 4 1)
             ~new_dst:(Addr.host 5 1) tunneled)));
    Test.make ~name:"location-cache-find" (Staged.stage (fun () ->
        ignore (Mhrp.Location_cache.find cache (Addr.host 9 32))));
    Test.make ~name:"route-compute-8-campuses" (Staged.stage (fun () ->
        let c =
          Workload.Topo_gen.campuses_plain ~campuses:8
            ~mobiles_per_campus:1 ~correspondents:1 ()
        in
        Net.Topology.compute_routes c.Workload.Topo_gen.cp_topo));
    Test.make ~name:"figure1-full-scenario" (Staged.stage (fun () ->
        let env = Exp_util.fig_setup () in
        Exp_util.fig_move env 1.0 env.Exp_util.f.Workload.Topo_gen.net_d;
        Exp_util.fig_send env 2.0;
        Exp_util.fig_send env 3.0;
        Exp_util.fig_run ~until:5.0 env)) ]

let run () =
  Exp_util.heading "MICRO" "bechamel micro-benchmarks (ns per run)";
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
         let results = Benchmark.all cfg [instance] test in
         let name = Test.Elt.name (List.hd (Test.elements test)) in
         let analyzed = Analyze.all ols instance results in
         let estimate =
           Hashtbl.fold
             (fun _ v acc ->
                match Analyze.OLS.estimates v with
                | Some [x] -> x
                | _ -> acc)
             analyzed nan
         in
         (* wall-clock numbers vary across machines: archived in the JSON
            for trend analysis but never gated (Info tolerance) *)
         Obs.Registry.gauge Exp_util.registry ~exp:"micro"
           ~labels:[("op", name)] ~tol:Obs.Metric.Info "ns_per_run" estimate;
         [name; Printf.sprintf "%.0f" estimate])
      tests
  in
  Exp_util.table ~columns:["operation"; "ns/run"] rows
