(* Micro-benchmarks (bechamel) of the hot paths: codec and cache
   operations, route computation, a full Figure 1 scenario run, and the
   link-state control plane's flood and SPF costs at 8/64/256 campuses. *)

open Bechamel
open Toolkit
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet

let sample_packet =
  Packet.make ~id:7 ~proto:Ipv4.Proto.udp ~src:(Addr.host 1 10)
    ~dst:(Addr.host 2 10)
    (Ipv4.Udp.encode
       (Ipv4.Udp.make ~src_port:4000 ~dst_port:4000 (Bytes.create 64)))

let encoded_packet = Packet.encode sample_packet
let fwd_view_buf = Bytes.copy encoded_packet
let fwd_view_budget = ref 0

let mhrp_header =
  Mhrp.Mhrp_header.make ~prev_sources:[Addr.host 1 10; Addr.host 2 1]
    ~orig_proto:Ipv4.Proto.udp ~mobile:(Addr.host 2 10) ()

let encoded_header = Mhrp.Mhrp_header.encode mhrp_header (Bytes.create 72)

let tunneled =
  Mhrp.Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
    ~foreign_agent:(Addr.host 4 1) sample_packet

let tcp_segment =
  Ipv4.Tcp_lite.make ~seq:0x1234_5678 ~ack:0x0fed_cba9
    ~flags:[Ipv4.Tcp_lite.Psh; Ipv4.Tcp_lite.Ack] ~window:4096
    ~src_port:49152 ~dst_port:80 (Bytes.create 512)

let tcp_wire = Ipv4.Tcp_lite.encode tcp_segment

let cache =
  let c = Mhrp.Location_cache.create ~capacity:64 in
  for k = 1 to 64 do
    Mhrp.Location_cache.insert c ~mobile:(Addr.host 9 k)
      ~foreign_agent:(Addr.host 4 1)
  done;
  c

(* A routing table dominated by /32 host routes, as at a home agent
   serving a large mobile population: 1000 host routes over a handful of
   network prefixes.  Mobiles live on nets 16..19, 250 hosts each. *)
let host_route_table =
  let t =
    List.fold_left
      (fun t n -> Net.Route.add t (Addr.net n) (Net.Route.Direct 0))
      Net.Route.empty [16; 17; 18; 19]
  in
  let t = Net.Route.add_default t (Net.Route.Via (Addr.host 0 1)) in
  let rec go t k =
    if k > 1000 then t
    else
      let addr = Addr.host (16 + (k mod 4)) (1 + (k / 4)) in
      go (Net.Route.add_host t addr (Net.Route.Via (Addr.host 0 2))) (k + 1)
  in
  go t 1

let host_route_hit = Addr.host 17 126  (* a /32 entry *)
let host_route_miss = Addr.host 18 251 (* falls through to the net route *)

(* Compact location-state hot paths at the E19 scales: cache lookup
   cost must stay flat as the population grows 10^3 -> 10^6, and the
   bulk route build is the border router's rebuild cost over the same
   populations.  Setups are lazy — forced before the benchmark loop, so
   a million inserts never eat a test's quota — and the probe strides
   through the key space so successive lookups do not pin one slot. *)
let scale_points = [(1_000, "1e3"); (100_000, "1e5"); (1_000_000, "1e6")]
let scale_addr i = Addr.of_int (0x0A00_0000 lor i)

let scale_cache n =
  lazy
    (let c = Mhrp.Location_cache.create ~capacity:n in
     for i = 0 to n - 1 do
       Mhrp.Location_cache.insert c ~mobile:(scale_addr i)
         ~foreign_agent:(Addr.host 4 1)
     done;
     c)

let scale_caches =
  List.map (fun (n, tag) -> (n, tag, scale_cache n)) scale_points

let cache_probe = ref 1

let cache_lookup_test (n, tag, cache) =
  Test.make ~name:(Printf.sprintf "location-cache-lookup-%s" tag)
    (Staged.stage (fun () ->
         cache_probe := (!cache_probe + 7919) mod n;
         ignore
           (Mhrp.Location_cache.find (Lazy.force cache)
              (scale_addr !cache_probe))))

let scale_routes =
  List.map
    (fun (n, tag) ->
       ( tag,
         lazy
           (List.init n (fun i ->
                ( Addr.Prefix.make (scale_addr i) 32,
                  Net.Route.Via (Addr.host 0 2) ))) ))
    scale_points

let route_bulk_test (tag, pairs) =
  Test.make ~name:(Printf.sprintf "route-bulk-insert-%s" tag)
    (Staged.stage (fun () -> ignore (Net.Route.bulk (Lazy.force pairs))))

(* Converged link-state domains for the lib/lsr hot paths, one per
   internetwork scale.  Built lazily (and forced before the benchmark
   loop starts, so setup never eats a test's quota): construct the campus
   backbone, start the protocol cold and run five simulated seconds —
   ample for hello discovery, designated database sync and SPF
   everywhere.  The refresh timer is pushed out to an hour so the
   measured windows hold only the work we inject. *)
let lsr_domain campuses =
  lazy
    (let c =
       Workload.Topo_gen.campuses_plain ~backbone_prefix_len:16 ~campuses
         ~mobiles_per_campus:1 ~correspondents:1 ~compute_routes:false ()
     in
     let topo = c.Workload.Topo_gen.cp_topo in
     Netsim.Trace.set_enabled (Net.Topology.trace topo) false;
     let d =
       Lsr.Domain.create
         ~config:
           (Lsr.Config.make ~hello_interval:(Netsim.Time.of_ms 500)
              ~refresh_interval:(Netsim.Time.of_sec 3600.0) ())
         topo
     in
     Lsr.Domain.start d;
     Net.Topology.run ~until:(Netsim.Time.of_sec 5.0) topo;
     (topo, d))

let lsr_domains = List.map (fun n -> (n, lsr_domain n)) [8; 64; 256]

(* One origination + the complete flood it triggers: every router
   receives, dedups and re-floods the new LSA version.  The links are
   unchanged, so no SPF is scheduled anywhere — this isolates pure
   flooding cost (encode, broadcast, decode, store) from route
   computation, measured separately below.  10 ms of simulated time
   drains the flood across the backbone and every campus LAN. *)
let lsa_flood_test (n, dom) =
  Test.make ~name:(Printf.sprintf "lsr-lsa-flood-%d-campuses" n)
    (Staged.stage (fun () ->
         let topo, d = Lazy.force dom in
         Lsr.Router.reoriginate (List.hd (Lsr.Domain.routers d));
         Net.Topology.run
           ~until:(Netsim.Time.add (Net.Topology.now topo)
                     (Netsim.Time.of_ms 10))
           topo))

(* One router's full SPF over the converged database: shortest-path
   tree, next-hop resolution and table install. *)
let spf_test (n, dom) =
  Test.make ~name:(Printf.sprintf "lsr-spf-recompute-%d-campuses" n)
    (Staged.stage (fun () ->
         let _, d = Lazy.force dom in
         Lsr.Router.spf_now (List.hd (Lsr.Domain.routers d))))

let tests =
  [ Test.make ~name:"packet-encode" (Staged.stage (fun () ->
        ignore (Packet.encode sample_packet)));
    Test.make ~name:"packet-decode" (Staged.stage (fun () ->
        ignore (Packet.decode encoded_packet)));
    Test.make ~name:"checksum-84B" (Staged.stage (fun () ->
        ignore (Ipv4.Checksum.of_bytes encoded_packet)));
    (* the per-hop header work of the two forwarding paths; the view
       test restores the TTL it decrements every 60 iterations to stay
       steady-state.  exp_alloc gates the ratio. *)
    Test.make ~name:"fwd-hot-record" (Staged.stage (fun () ->
        let p = Packet.decode encoded_packet in
        match Packet.decr_ttl p with
        | Some p -> ignore (Packet.encode p)
        | None -> assert false));
    Test.make ~name:"fwd-hot-view" (Staged.stage (fun () ->
        let v = Packet.View.make fwd_view_buf in
        if not (Packet.View.valid v) then failwith "fwd-hot-view";
        (if !fwd_view_budget = 0 then begin
           Packet.View.set_ttl v Packet.default_ttl;
           fwd_view_budget := 60
         end);
        decr fwd_view_budget;
        Packet.View.decr_ttl v));
    (* the transport fixed cost: every socket byte crosses these twice
       (sender encode, receiver decode); 512B is the default MSS *)
    Test.make ~name:"tcp-segment-encode" (Staged.stage (fun () ->
        ignore (Ipv4.Tcp_lite.encode tcp_segment)));
    Test.make ~name:"tcp-segment-decode" (Staged.stage (fun () ->
        match Ipv4.Tcp_lite.decode tcp_wire with
        | Some _ -> ()
        | None -> failwith "tcp-segment-decode"));
    Test.make ~name:"mhrp-header-encode" (Staged.stage (fun () ->
        ignore (Mhrp.Mhrp_header.encode mhrp_header Bytes.empty)));
    Test.make ~name:"mhrp-header-decode" (Staged.stage (fun () ->
        ignore (Mhrp.Mhrp_header.decode encoded_header)));
    Test.make ~name:"encap-tunnel-by-agent" (Staged.stage (fun () ->
        ignore
          (Mhrp.Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
             ~foreign_agent:(Addr.host 4 1) sample_packet)));
    Test.make ~name:"encap-detunnel" (Staged.stage (fun () ->
        ignore (Mhrp.Encap.detunnel tunneled)));
    Test.make ~name:"encap-retunnel" (Staged.stage (fun () ->
        ignore
          (Mhrp.Encap.retunnel ~max_prev_sources:8 ~me:(Addr.host 4 1)
             ~new_dst:(Addr.host 5 1) tunneled)));
    Test.make ~name:"location-cache-find" (Staged.stage (fun () ->
        ignore (Mhrp.Location_cache.find cache (Addr.host 9 32))));
    Test.make ~name:"route-lookup-1k-host-routes" (Staged.stage (fun () ->
        ignore (Net.Route.lookup host_route_table host_route_hit);
        ignore (Net.Route.lookup host_route_table host_route_miss)));
    Test.make ~name:"event-queue-churn-25pct-cancel" (Staged.stage (fun () ->
        (* 256 pushes, every 4th cancelled, then drain: the event-queue
           pattern of ARP timers and retransmissions under load *)
        let q = Netsim.Event_queue.create () in
        let handles =
          Array.init 256 (fun i ->
              Netsim.Event_queue.push q
                (Netsim.Time.of_us ((i * 7919) mod 1024)) i)
        in
        Array.iteri
          (fun i h ->
             if i mod 4 = 0 then ignore (Netsim.Event_queue.cancel q h))
          handles;
        let rec drain () =
          match Netsim.Event_queue.pop q with
          | Some _ -> drain ()
          | None -> ()
        in
        drain ()));
    Test.make ~name:"topology-construct-64-campuses" (Staged.stage (fun () ->
        (* construction only (registration, attachment, addressing) —
           route computation is measured separately below *)
        ignore
          (Workload.Topo_gen.campuses_plain ~campuses:64
             ~mobiles_per_campus:1 ~correspondents:1 ~compute_routes:false
             ())));
    Test.make ~name:"route-compute-8-campuses" (Staged.stage (fun () ->
        let c =
          Workload.Topo_gen.campuses_plain ~campuses:8
            ~mobiles_per_campus:1 ~correspondents:1 ()
        in
        Net.Topology.compute_routes c.Workload.Topo_gen.cp_topo));
    Test.make ~name:"figure1-full-scenario" (Staged.stage (fun () ->
        let env = Exp_util.fig_setup () in
        Exp_util.fig_move env 1.0 env.Exp_util.f.Workload.Topo_gen.net_d;
        Exp_util.fig_send env 2.0;
        Exp_util.fig_send env 3.0;
        Exp_util.fig_run ~until:5.0 env)) ]
  @ List.map cache_lookup_test scale_caches
  @ List.map route_bulk_test scale_routes
  @ List.map lsa_flood_test lsr_domains
  @ List.map spf_test lsr_domains

let run () =
  Exp_util.heading "MICRO" "bechamel micro-benchmarks (ns per run)";
  List.iter (fun (_, dom) -> ignore (Lazy.force dom)) lsr_domains;
  List.iter (fun (_, _, c) -> ignore (Lazy.force c)) scale_caches;
  List.iter (fun (_, p) -> ignore (Lazy.force p)) scale_routes;
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
         let results = Benchmark.all cfg [instance] test in
         let name = Test.Elt.name (List.hd (Test.elements test)) in
         let analyzed = Analyze.all ols instance results in
         let estimate =
           Hashtbl.fold
             (fun _ v acc ->
                match Analyze.OLS.estimates v with
                | Some [x] -> x
                | _ -> acc)
             analyzed nan
         in
         (* wall-clock numbers vary across machines: archived in the JSON
            for trend analysis but never gated (Info tolerance) *)
         Obs.Registry.gauge Exp_util.registry ~exp:"micro"
           ~labels:[("op", name)] ~tol:Obs.Metric.Info "ns_per_run" estimate;
         [name; Printf.sprintf "%.0f" estimate])
      tests
  in
  Exp_util.table ~columns:["operation"; "ns/run"] rows

let experiment =
  Exp_util.Experiment.make ~id:"micro"
    ~title:"bechamel micro-benchmarks (ns per run)" run
