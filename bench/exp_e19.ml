(* E19 — million-host scale: memory-lean location state and
   hierarchical registration.

   Two parts, both swept through the multicore runner:

   - Protocol (regions topology, deterministic, gated Exact): every
     mobile host leaves home for a far region, then hands off between
     that region's cells.  Flat registration pays one home-agent
     registration per handoff; hierarchical registration
     ([Config.hierarchy]) absorbs intra-region handoffs at the regional
     agent, so the home agent hears from each host exactly once.  The
     >= 5x home-agent message reduction is gated as a flag (the observed
     reduction is 1.0 -> 0.0 per handoff, i.e. unbounded).

   - State scale (10^4..10^6 hosts, no simulator): populate one
     aggregation point's location state — home-agent database, location
     cache, border-router route table, regional binding tables — and
     account actual heap bytes per host via the [footprint_bytes]
     accessors of the compact int-keyed backings.  Footprints are pure
     functions of the population, so per-host bytes are gated Exact;
     GC allocation words and wall-clock are archived at Info tolerance
     (they vary across compiler versions and machines).  The 10^6 point
     only runs with E19_FULL=1 in the environment and is recorded at
     Info tolerance so CI baselines stay complete without it. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

let exp = "E19"

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* --- part 1: flat vs hierarchical registration ------------------- *)

let n_regions = 4
let n_cells = 4
let mobiles_per_region = 8
let intra_handoffs = 3

type proto_outcome = {
  mode : string;
  mobiles : int;
  intra_moves : int;
  ha_regs : int;
  regional_regs : int;
  regional_retunnels : int;
  ctrl : int;
  delivered : int;
  build_s : float;
  sim_s : float;
}

(* Mobile k of region r visits the far region (r + R/2) mod R: one
   inter-region move at ~1s, then [intra_handoffs] handoffs between
   that region's cells at 2s intervals, staggered 10ms per mobile.
   After the last handoff every correspondent sends one datagram to
   every mobile. *)
let run_proto ~hierarchy =
  let mode = if hierarchy then "hier" else "flat" in
  let config = Mhrp.Config.make ~hierarchy () in
  let rg, build_s =
    timed (fun () ->
        TGm.regions ~config ~regions:n_regions ~cells:n_cells
          ~mobiles_per_region ~correspondents:n_regions ())
  in
  let topo = rg.TGm.rg_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let received = ref 0 in
  Array.iter
    (fun m -> Agent.on_app_receive m (fun _ -> incr received))
    rg.TGm.rg_mobiles;
  Array.iteri
    (fun k m ->
       let r = k / mobiles_per_region and j = k mod mobiles_per_region in
       let v = (r + (n_regions / 2)) mod n_regions in
       for h = 0 to intra_handoffs do
         let cell = rg.TGm.rg_cells.(v).((j + h) mod n_cells) in
         let at =
           Time.of_sec
             (1.0 +. (2.0 *. float_of_int h) +. (0.01 *. float_of_int k))
         in
         ignore
           (Netsim.Engine.schedule (Topology.engine topo) ~at (fun () ->
                Agent.move_to ~topo m cell))
       done)
    rg.TGm.rg_mobiles;
  Array.iteri
    (fun k m ->
       let s = rg.TGm.rg_senders.(k mod Array.length rg.TGm.rg_senders) in
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(Time.of_sec 10.0) (fun () ->
                Agent.send s
                  (sample_packet ~id:(k + 1) ~src:(Agent.address s)
                     ~dst:(Agent.address m) ()))))
    rg.TGm.rg_mobiles;
  let (), sim_s =
    timed (fun () -> Topology.run ~until:(Time.of_sec 13.0) topo)
  in
  let routers =
    Array.to_list rg.TGm.rg_regionals
    @ List.concat_map Array.to_list (Array.to_list rg.TGm.rg_fas)
  in
  let agents =
    routers @ Array.to_list rg.TGm.rg_mobiles
    @ Array.to_list rg.TGm.rg_senders
  in
  let sum f = List.fold_left (fun acc a -> acc + f a) 0 agents in
  let ha_regs = sum (fun a -> (Agent.counters a).Mhrp.Counters.registrations)
  and regional_retunnels =
    sum (fun a -> (Agent.counters a).Mhrp.Counters.regional_retunnels)
  and ctrl =
    sum (fun a -> (Agent.counters a).Mhrp.Counters.control_messages)
  and regional_regs =
    sum (fun a ->
        match Agent.regional_agent a with
        | Some ra -> Mhrp.Regional.registrations ra
        | None -> 0)
  in
  let mobiles = Array.length rg.TGm.rg_mobiles in
  { mode; mobiles; intra_moves = mobiles * intra_handoffs; ha_regs;
    regional_regs; regional_retunnels; ctrl; delivered = !received;
    build_s; sim_s }

(* Home-agent registrations caused by intra-region handoffs alone: the
   inter-region move costs one each way of working. *)
let ha_per_intra o =
  float_of_int (o.ha_regs - o.mobiles) /. float_of_int o.intra_moves

let part_proto () =
  let outcomes =
    sweep ~exp ~labels:[("part", "proto")] [false; true]
      ~trial:(fun ctx hierarchy ->
          let o = run_proto ~hierarchy in
          let reg = ctx.Parallel.Sweep.registry in
          let labels = [("mode", o.mode)] in
          rec_i ~reg ~exp ~labels "ha_registrations" o.ha_regs;
          rec_i ~reg ~exp ~labels "regional_registrations" o.regional_regs;
          rec_i ~reg ~exp ~labels "regional_retunnels" o.regional_retunnels;
          rec_i ~reg ~exp ~labels "ctrl_msgs" o.ctrl;
          rec_f ~reg ~exp ~labels "ha_regs_per_intra_handoff"
            (ha_per_intra o);
          rec_i ~reg ~exp ~labels "delivered" o.delivered;
          rec_f ~reg ~exp ~labels ~tol:Obs.Metric.Info "build_ms"
            (o.build_s *. 1000.0);
          rec_f ~reg ~exp ~labels ~tol:Obs.Metric.Info "sim_ms"
            (o.sim_s *. 1000.0);
          o)
  in
  let flat = List.nth outcomes 0 and hier = List.nth outcomes 1 in
  (* flat pays 1 HA registration per intra-region handoff, hier pays 0:
     the reduction is unbounded, trivially >= 5x.  Guard the division by
     comparing products. *)
  rec_flag ~exp "ha_msgs_reduction_ge_5x"
    (ha_per_intra flat > 0.0
     && ha_per_intra flat >= 5.0 *. ha_per_intra hier);
  table
    ~columns:
      [ "mode"; "mobiles"; "intra moves"; "HA regs"; "HA regs/handoff";
        "regional regs"; "regional retunnels"; "ctrl msgs"; "delivered" ]
    (List.map
       (fun o ->
          [ o.mode; i o.mobiles; i o.intra_moves; i o.ha_regs;
            f2 (ha_per_intra o); i o.regional_regs;
            i o.regional_retunnels; i o.ctrl; i o.delivered ])
       outcomes);
  note
    "hierarchy: the home agent hears one registration per host (%d) \
     instead of one per handoff (%d); %d intra-region handoffs were \
     absorbed by regional binding tables"
    hier.ha_regs flat.ha_regs hier.regional_regs

(* --- part 2: per-host state bytes at 10^4..10^6 hosts ------------- *)

(* The address plan: host i lives at 10.0.0.0 + i, so a region is a /24
   and [hosts_per_region] consecutive hosts share one aggregated route.
   Foreign agents and regional agents get the 11.x mirror addresses. *)
let hosts_per_region = 256

let host_addr i = Ipv4.Addr.of_int (0x0A00_0000 lor i)
let fa_addr g = Ipv4.Addr.of_int (0x0B00_0000 lor (g * hosts_per_region))

let regions_of n = (n + hosts_per_region - 1) / hosts_per_region

type scale_outcome = {
  n : int;
  gated : bool;
  ha_b : int;  (* home-agent database footprint *)
  cache_b : int;  (* correspondent location-cache footprint *)
  route_flat_b : int;  (* border router: one /32 per host *)
  route_hier_b : int;  (* border router: one /24 per region *)
  regional_b : int;  (* all regional binding tables together *)
  flat_words : float;  (* minor+major words per host, flat populate *)
  hier_words : float;
  flat_s : float;
  hier_s : float;
}

(* The scalability quantity: bytes the infrastructure OUTSIDE a host's
   current region holds to reach it — home-agent entry, correspondent
   cache entry, border-router route.  Hierarchy collapses only the last
   one; the regional binding table is state inside the region (reported
   separately as [regional_bytes_per_host]) and is the constant-cost
   trade for the collapse. *)
let flat_total o = o.ha_b + o.cache_b + o.route_flat_b
let hier_total o = o.ha_b + o.cache_b + o.route_hier_b

(* Populate one aggregation point's view of an [n]-host population and
   account the heap it pins.  The home agent and the correspondent's
   cache hold one binding per host in both modes (the cache maps hosts
   to their regional agent under hierarchy — same cardinality); the
   border route table and the regional binding tables are where the
   modes diverge. *)
let run_scale n =
  let g_of i = i / hosts_per_region in
  let nr = regions_of n in
  let (ha_b, cache_b, route_flat_b), flat_alloc, flat_s =
    let t0 = Unix.gettimeofday () in
    let r, a =
      Obs.Alloc.measure (fun () ->
          let ha = Mhrp.Home_agent.create () in
          for i = 0 to n - 1 do
            Mhrp.Home_agent.add_mobile ha (host_addr i);
            Mhrp.Home_agent.register ha ~mobile:(host_addr i)
              ~foreign_agent:(fa_addr (g_of i))
          done;
          let cache = Mhrp.Location_cache.create ~capacity:n in
          for i = 0 to n - 1 do
            Mhrp.Location_cache.insert cache ~mobile:(host_addr i)
              ~foreign_agent:(fa_addr (g_of i))
          done;
          let route =
            Net.Route.bulk
              (List.init n (fun i ->
                   ( Ipv4.Addr.Prefix.make (host_addr i) 32,
                     Net.Route.Via (fa_addr (g_of i)) )))
          in
          ( Mhrp.Home_agent.footprint_bytes ha,
            Mhrp.Location_cache.footprint_bytes cache,
            Net.Route.compiled_footprint_bytes route ))
    in
    (r, a, Unix.gettimeofday () -. t0)
  in
  let (route_hier_b, regional_b), hier_alloc, hier_s =
    let t0 = Unix.gettimeofday () in
    let r, a =
      Obs.Alloc.measure (fun () ->
          let route =
            Net.Route.bulk
              (List.init nr (fun g ->
                   ( Ipv4.Addr.Prefix.make (host_addr (g * hosts_per_region))
                       24,
                     Net.Route.Via (fa_addr g) )))
          in
          let regionals = Array.init nr (fun _ -> Mhrp.Regional.create ()) in
          for i = 0 to n - 1 do
            ignore
              (Mhrp.Regional.register regionals.(g_of i)
                 ~mobile:(host_addr i) ~foreign_agent:(fa_addr (g_of i)) ())
          done;
          ( Net.Route.compiled_footprint_bytes route,
            Array.fold_left
              (fun acc ra -> acc + Mhrp.Regional.footprint_bytes ra)
              0 regionals ))
    in
    (r, a, Unix.gettimeofday () -. t0)
  in
  let per_host a =
    (a.Obs.Alloc.minor_words +. a.Obs.Alloc.major_words
     -. a.Obs.Alloc.promoted_words)
    /. float_of_int n
  in
  { n; gated = n <= 100_000; ha_b; cache_b; route_flat_b; route_hier_b;
    regional_b; flat_words = per_host flat_alloc;
    hier_words = per_host hier_alloc; flat_s; hier_s }

let part_scale () =
  let full = Sys.getenv_opt "E19_FULL" = Some "1" in
  let points = [10_000; 100_000] @ (if full then [1_000_000] else []) in
  let outcomes =
    sweep ~exp ~labels:[("part", "scale")] points
      ~trial:(fun ctx n ->
          let o = run_scale n in
          let reg = ctx.Parallel.Sweep.registry in
          (* the 10^6 point is opt-in (E19_FULL=1): record it at Info so
             a baseline captured without it stays complete *)
          let tol = if o.gated then None else Some Obs.Metric.Info in
          let labels mode = [("mode", mode); ("n", string_of_int o.n)] in
          let shared = [("n", string_of_int o.n)] in
          rec_f ~reg ~exp ~labels:shared ?tol "ha_bytes_per_host"
            (float_of_int o.ha_b /. float_of_int o.n);
          rec_f ~reg ~exp ~labels:shared ?tol "cache_bytes_per_host"
            (float_of_int o.cache_b /. float_of_int o.n);
          rec_f ~reg ~exp ~labels:(labels "flat") ?tol
            "route_bytes_per_host"
            (float_of_int o.route_flat_b /. float_of_int o.n);
          rec_f ~reg ~exp ~labels:(labels "hier") ?tol
            "route_bytes_per_host"
            (float_of_int o.route_hier_b /. float_of_int o.n);
          rec_f ~reg ~exp ~labels:shared ?tol "regional_bytes_per_host"
            (float_of_int o.regional_b /. float_of_int o.n);
          rec_f ~reg ~exp ~labels:(labels "flat") ?tol
            "per_host_state_bytes"
            (float_of_int (flat_total o) /. float_of_int o.n);
          rec_f ~reg ~exp ~labels:(labels "hier") ?tol
            "per_host_state_bytes"
            (float_of_int (hier_total o) /. float_of_int o.n);
          rec_f ~reg ~exp ~labels:(labels "flat") ~tol:Obs.Metric.Info
            "populate_words_per_host" o.flat_words;
          rec_f ~reg ~exp ~labels:(labels "hier") ~tol:Obs.Metric.Info
            "populate_words_per_host" o.hier_words;
          rec_f ~reg ~exp ~labels:(labels "flat") ~tol:Obs.Metric.Info
            "populate_ms" (o.flat_s *. 1000.0);
          rec_f ~reg ~exp ~labels:(labels "hier") ~tol:Obs.Metric.Info
            "populate_ms" (o.hier_s *. 1000.0);
          o)
  in
  List.iter
    (fun o ->
       let tol = if o.gated then None else Some Obs.Metric.Info in
       let labels = [("n", string_of_int o.n)] in
       rec_i ~exp ~labels ?tol "hier_external_bytes_lower"
         (if hier_total o < flat_total o then 1 else 0);
       rec_i ~exp ~labels ?tol "route_aggregation_cut_ge_10x"
         (if o.route_flat_b >= 10 * o.route_hier_b then 1 else 0))
    outcomes;
  table
    ~columns:
      [ "hosts"; "HA B/host"; "cache B/host"; "route B/host (flat)";
        "route B/host (hier)"; "external flat"; "external hier";
        "in-region B/host"; "pop ms (flat)" ]
    (List.map
       (fun o ->
          let per b = f2 (float_of_int b /. float_of_int o.n) in
          [ i o.n; per o.ha_b; per o.cache_b; per o.route_flat_b;
            per o.route_hier_b; per (flat_total o); per (hier_total o);
            per o.regional_b; Printf.sprintf "%.0f" (o.flat_s *. 1000.0) ])
       outcomes);
  let last = List.nth outcomes (List.length outcomes - 1) in
  note
    "at %d hosts the internetwork outside a region holds %.1f B/host \
     flat vs %.1f B/host hierarchical — the border route table \
     aggregates %dx (one /24 per %d-host region instead of a /32 each) \
     for %.1f B/host of binding state kept inside the region%s"
    last.n
    (float_of_int (flat_total last) /. float_of_int last.n)
    (float_of_int (hier_total last) /. float_of_int last.n)
    (last.route_flat_b / max 1 last.route_hier_b)
    hosts_per_region
    (float_of_int last.regional_b /. float_of_int last.n)
    (if full then "" else "  [set E19_FULL=1 for the 10^6 point]")

let run () =
  heading "E19"
    "million-host scale: compact location state + hierarchical \
     registration";
  part_proto ();
  part_scale ()

let experiment =
  Experiment.make ~id:"E19"
    ~title:"million-host scale: compact state and hierarchical \
            registration sweep"
    run
