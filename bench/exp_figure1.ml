(* E2/E9 — the Figure 1 worked examples (Sections 6.1-6.3) as measured
   packet-level facts: path length, wire overhead and latency of each phase
   of the example, including the "no penalty at home" claim. *)

open Exp_util
module TGm = Workload.Topo_gen

let phase_row metrics idx ~phase label expect_hops =
  let r = List.nth (Workload.Metrics.records metrics) idx in
  let delivered = r.Workload.Metrics.delivered_at <> None in
  let overhead = r.Workload.Metrics.max_bytes - r.Workload.Metrics.sent_bytes in
  let labels = [("phase", phase)] in
  rec_flag ~exp:"E2" ~labels "delivered" delivered;
  rec_i ~exp:"E2" ~labels "hops" r.Workload.Metrics.hops;
  rec_i ~exp:"E2" ~labels "overhead_bytes" overhead;
  (match r.Workload.Metrics.delivered_at with
   | Some at ->
     rec_ms ~exp:"E2" ~labels "latency_ms"
       (float_of_int
          Netsim.Time.(to_us at - to_us r.Workload.Metrics.sent_at))
   | None -> ());
  [ label;
    (if delivered then "yes" else "LOST");
    i r.Workload.Metrics.hops;
    expect_hops;
    i overhead;
    (match r.Workload.Metrics.delivered_at with
     | Some at ->
       ms_of_us
         (float_of_int
            Netsim.Time.(to_us at - to_us r.Workload.Metrics.sent_at))
     | None -> "-") ]

let run () =
  heading "E2" "the Figure 1 example, phase by phase (Sections 6.1-6.3)";
  let env = fig_setup () in
  (* phase 0: M at home *)
  fig_send env 0.5;
  (* M moves to the wireless network D (foreign agent R4) *)
  fig_move env 1.0 env.f.TGm.net_d;
  fig_send env 2.0;  (* 6.1: via home agent, 12B *)
  fig_send env 3.0;  (* 6.2: direct sender tunnel, 8B *)
  (* M returns home *)
  fig_move env 4.0 env.f.TGm.net_b;
  fig_send env 5.0;  (* 6.3: stale tunnel chased home *)
  fig_send env 6.0;  (* plain IP again *)
  fig_run env;
  table
    ~columns:["phase"; "delivered"; "LAN hops"; "ideal"; "overhead B";
              "latency ms"]
    [ phase_row env.metrics 0 ~phase:"home" "at home (E9)" "3";
      phase_row env.metrics 1 ~phase:"via_ha"
        "first packet away (6.1, via HA)" "5";
      phase_row env.metrics 2 ~phase:"direct" "cached direct tunnel (6.2)"
        "4";
      phase_row env.metrics 3 ~phase:"stale"
        "stale tunnel after return (6.3)" "6";
      phase_row env.metrics 4 ~phase:"plain"
        "plain again after update (6.3)" "3" ];
  (* the Section 6.3 "no penalty at home" claim gets its own id: the
     at-home packet must match a never-mobile host exactly *)
  let home = List.hd (Workload.Metrics.records env.metrics) in
  rec_i ~exp:"E9" "at_home_hops" home.Workload.Metrics.hops;
  rec_i ~exp:"E9" "at_home_overhead_bytes"
    (home.Workload.Metrics.max_bytes - home.Workload.Metrics.sent_bytes);
  let c_r2 = Mhrp.Agent.counters env.f.TGm.r2 in
  let c_r4 = Mhrp.Agent.counters env.f.TGm.r4 in
  rec_i ~exp:"E2" ~labels:[("agent", "r2")] "intercepts"
    c_r2.Mhrp.Counters.intercepts;
  rec_i ~exp:"E2" ~labels:[("agent", "r2")] "tunnels_built"
    c_r2.Mhrp.Counters.tunnels_built;
  rec_i ~exp:"E2" ~labels:[("agent", "r2")] "registrations"
    c_r2.Mhrp.Counters.registrations;
  rec_i ~exp:"E2" ~labels:[("agent", "r4")] "detunnels"
    c_r4.Mhrp.Counters.detunnels;
  rec_i ~exp:"E2" ~labels:[("agent", "r4")] "retunnels"
    c_r4.Mhrp.Counters.retunnels;
  Workload.Metrics.record_obs env.metrics registry ~exp:"E2"
    ~labels:[("flow", "all")] ();
  note "home agent R2: %d intercept, %d tunnels, %d registrations"
    c_r2.Mhrp.Counters.intercepts c_r2.Mhrp.Counters.tunnels_built
    c_r2.Mhrp.Counters.registrations;
  note "foreign agent R4: %d deliveries to visitor, %d re-tunnels"
    c_r4.Mhrp.Counters.detunnels c_r4.Mhrp.Counters.retunnels;
  note
    "E9 check: at-home and after-return rows show 0 overhead and the same \
     3-hop path as a never-mobile host."

let experiment =
  Experiment.make ~id:"E2" ~records_ids:["E9"]
    ~title:"the Figure 1 example, phase by phase (Sections 6.1-6.3); also \
            records E9's at-home metrics"
    run
