(* E5 — loop contraction and dissolution (Section 5.3).

   A ring of cache agents is poisoned so each points to the next as the
   mobile host's foreign agent ("some incorrect implementation could
   accidentally create a loop").  The mobile host is real and at home
   behind the first router, so packets that escape the ring toward the
   home network complete the dissolution protocol.  We inject tunneled
   packets (one per simulated second, as a sender would keep transmitting)
   and measure how quickly the ring is detected or broken apart, sweeping
   the loop size L and the maximum previous-source list length K.

   The paper's claim: detection within one cycle when L <= K; when L > K
   the truncation fan-out redirects ring members so the loop contracts
   "by a factor of the maximum list size" per cycle — and either way no
   reliance on the IP TTL, and every poisoned cache ends up corrected. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

let run_loop ~loop_size ~max_list =
  let config =
    Mhrp.Config.make ~max_prev_sources:max_list
      ~on_loop:Mhrp.Config.Tunnel_home ()
  in
  (* router 0 is the home agent, outside the ring; the ring is routers
     1..L *)
  let ch = TGm.chain ~config ~n:(loop_size + 1) () in
  let topo = ch.TGm.ch_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let routers = ch.TGm.ch_routers in
  (* the mobile host lives (at home) on the first stub; C0 is its home
     agent *)
  let mn = Topology.add_host topo "Mh" ch.TGm.ch_stubs.(0) 99 in
  Topology.compute_routes topo;
  let m = Agent.create ~config mn in
  Agent.make_mobile m ~home_agent:(Agent.address routers.(0));
  Agent.enable_home_agent routers.(0);
  Agent.add_mobile routers.(0) (Agent.address m);
  let mobile = Agent.address m in
  let delivered = ref 0 in
  Agent.on_app_receive m (fun _ -> incr delivered);
  (* poison the ring: routers 1..L point at each other cyclically *)
  let ring = Array.sub routers 1 loop_size in
  Array.iteri
    (fun k r ->
       Mhrp.Location_cache.insert (Agent.cache r) ~mobile
         ~foreign_agent:(Agent.address ring.((k + 1) mod loop_size)))
    ring;
  let sum f =
    Array.fold_left (fun acc r -> acc + f (Agent.counters r)) 0 ring
  in
  let correct_fa () =
    match Agent.home_agent routers.(0) with
    | Some ha ->
      (match Mhrp.Home_agent.location ha mobile with
       | Some fa -> fa
       | None -> Ipv4.Addr.zero)
    | None -> Ipv4.Addr.zero
  in
  let stale_left () =
    Array.fold_left
      (fun acc r ->
         acc
         + (match Mhrp.Location_cache.peek (Agent.cache r) mobile with
            | Some fa when not (Ipv4.Addr.equal fa (correct_fa ())) -> 1
            | _ -> 0))
      0 ring
  in
  (* inject a tunneled packet per second at router 0 until the ring is
     gone (Section 5.3: a TTL-expired packet's contraction survives it and
     "the next packet will continue") *)
  let sender = Addr.host 200 1 in
  let packets = ref 0 in
  let engine = Topology.engine topo in
  let rec inject k =
    if k < 30 && stale_left () > 0 then begin
      incr packets;
      let pkt = sample_packet ~id:(k + 1) ~src:sender ~dst:mobile () in
      Node.inject_local (Agent.node ring.(0))
        (Mhrp.Encap.tunnel_by_sender ~foreign_agent:(Agent.address ring.(0))
           pkt);
      ignore
        (Netsim.Engine.schedule_after engine ~delay:(Time.of_sec 1.0)
           (fun () -> inject (k + 1)))
    end
  in
  inject 0;
  Topology.run ~until:(Time.of_sec 40.0) topo;
  ( !packets,
    sum (fun c -> c.Mhrp.Counters.retunnels),
    sum (fun c -> c.Mhrp.Counters.loops_detected),
    sum (fun c -> c.Mhrp.Counters.list_truncations),
    stale_left (), !delivered )

let run () =
  heading "E5" "cache-loop detection and dissolution (Section 5.3)";
  let rows =
    List.concat_map
      (fun loop_size ->
         List.filter_map
           (fun max_list ->
              if max_list > loop_size + 2 then None
              else begin
                let packets, retunnels, detected, truncations, stale,
                    delivered =
                  run_loop ~loop_size ~max_list
                in
                let labels =
                  [("L", string_of_int loop_size);
                   ("K", string_of_int max_list)]
                in
                rec_i ~exp:"E5" ~labels "packets" packets;
                rec_i ~exp:"E5" ~labels "retunnels" retunnels;
                rec_i ~exp:"E5" ~labels "truncations" truncations;
                rec_i ~exp:"E5" ~labels "loops_detected" detected;
                rec_flag ~exp:"E5" ~labels "ring_dissolved" (stale = 0);
                rec_i ~exp:"E5" ~labels "delivered" delivered;
                Some
                  [ i loop_size; i max_list; i packets; i retunnels;
                    i truncations; i detected;
                    (if stale = 0 then "yes" else "NO"); i delivered ]
              end)
           [2; 4; 8])
      [2; 3; 4; 6; 8]
  in
  table
    ~columns:["loop size L"; "max list K"; "packets"; "re-tunnels";
              "truncations"; "loops detected"; "ring dissolved";
              "delivered to M"]
    rows;
  note
    "L <= K: one packet detects the loop within a cycle and the \
     dissolution updates purge every member.  L > K: each truncation's \
     update fan-out re-points ring members, contracting the loop by up to \
     a factor of K per cycle until it is detected or collapses; a few \
     packets suffice, and the escaping packets still reach the mobile \
     host through its home agent.";
  note
    "contrast (Section 7): protocols relying on the IP time-to-live leave \
     the loop standing, and every new packet circulates until its TTL \
     expires — sustained congestion instead of repair."

let experiment =
  Experiment.make ~id:"E5"
    ~title:"cache-loop detection and dissolution (Section 5.3)" run
