(* ALLOC: allocation and throughput of the zero-copy forwarding fast
   path (DESIGN.md Section 11).

   Four measurements, all deterministic enough to gate:

   - the per-hop header operation in isolation: the classical
     decode -> decr_ttl -> encode round-trip against the view path's
     in-place TTL/checksum rewrite.  Allocation counts are exact word
     counts (gated Pct, absorbing codegen drift across compiler
     versions); the wall-clock ratio between the two loops is recorded
     and a >= 5x flag is gated exactly — the observed margin is an
     order of magnitude, so the flag is machine-independent in
     practice.

   - an eight-router chain simulation, run once with the fast path
     engaged (plain transit routers) and once forced onto the classical
     path (a no-op forward tap, exactly how metric-bearing experiments
     disable it).  Gates minor words per hop for both modes and the
     fast-forward engagement counters (Exact: 8 hops x every packet in
     fast mode, zero in slow mode).

   - the pool-backed wire-level encap/decap against the record-based
     transformations, including byte-for-byte equivalence flags and the
     pool's deterministic hit/miss accounting.

   - the transport layer: TCP segment encode/decode word counts and the
     full socket send path (queue, segment, deliver, ack) per 256-byte
     send on a quiet topology, with an exact zero-retransmission gate. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module View = Ipv4.Packet.View
module Node = Net.Node
module Topology = Net.Topology

let exp = "alloc"

(* --- part 1: the per-hop forwarding operation --------------------- *)

let header_ops = 50_000
let timing_ops = 1_000_000

let sample = Exp_util.sample_packet ~src:(Addr.host 1 10) ~dst:(Addr.host 2 10) ()
let wire_small = Packet.encode sample

(* Larger datagrams — a 512-byte mid-size and a full-MTU bulk-transfer
   packet: the record path's cost grows with the payload it copies
   twice (decode and re-encode), the view path's does not — zero-copy's
   whole point. *)
let wire_of_payload n =
  Packet.encode
    (Ipv4.Packet.make ~id:1 ~proto:Ipv4.Proto.udp ~src:(Addr.host 1 10)
       ~dst:(Addr.host 2 10)
       (Ipv4.Udp.encode
          (Ipv4.Udp.make ~src_port:4000 ~dst_port:4000 (Bytes.create n))))

let wire_mid = wire_of_payload 484
let wire_big = wire_of_payload 1444  (* 1472B total, fits a 1500B MTU *)

let record_hop wire =
  let p = Packet.decode wire in
  match Packet.decr_ttl p with
  | Some p -> ignore (Packet.encode p)
  | None -> assert false

(* The fast path's per-hop op, exactly: view, validate, patch TTL in
   place.  The enclosing loops restore the TTL every 60 decrements to
   stay steady-state — an amortised 1/60 of an extra patch. *)
let view_hop buf =
  let v = View.make buf in
  if not (View.valid v) then failwith "view_hop: invalid";
  View.decr_ttl v

let view_restore buf = View.set_ttl (View.make buf) Packet.default_ttl

let view_batch buf = for _ = 1 to 60 do view_hop buf done; view_restore buf

(* Direct calls to known functions, not a generic closure loop: a few ns
   of indirection per iteration would bias the ratio against the cheaper
   path. *)
let time_record n wire =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do record_hop wire done;
  Unix.gettimeofday () -. t0

let time_view n buf =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n / 60 do view_batch buf done;
  Unix.gettimeofday () -. t0

(* best of three: a scheduler preemption inside one run can only slow a
   loop down, so the minimum is the cleanest estimate of each *)
let best f = min (f ()) (min (f ()) (f ()))

let header_size ~size wire =
  let (), rec_alloc =
    Obs.Alloc.measure (fun () ->
        for _ = 1 to header_ops do record_hop wire done)
  in
  let view_buf = Bytes.copy wire in
  let view_ops = header_ops / 60 * 60 in
  let (), view_alloc =
    Obs.Alloc.measure (fun () ->
        for _ = 1 to header_ops / 60 do view_batch view_buf done)
  in
  let rec_w = (Obs.Alloc.per rec_alloc header_ops).Obs.Alloc.minor_words in
  let view_w = (Obs.Alloc.per view_alloc view_ops).Obs.Alloc.minor_words in
  let rec_s =
    best (fun () -> time_record timing_ops wire) /. float_of_int timing_ops
  in
  let view_s =
    best (fun () -> time_view timing_ops view_buf)
    /. float_of_int (timing_ops / 60 * 60)
  in
  let labels path = [("path", path); ("size", string_of_int size)] in
  Exp_util.rec_f ~exp ~labels:(labels "record") ~tol:(Obs.Metric.Pct 30.0)
    "fwd_minor_words_per_hop" rec_w;
  Exp_util.rec_f ~exp ~labels:(labels "view") ~tol:(Obs.Metric.Pct 30.0)
    "fwd_minor_words_per_hop" view_w;
  Exp_util.rec_f ~exp ~labels:[("size", string_of_int size)]
    ~tol:Obs.Metric.Info "fwd_speedup" (rec_s /. view_s);
  Exp_util.rec_f ~exp ~labels:[("size", string_of_int size)]
    ~tol:Obs.Metric.Info "fwd_view_pps" (1.0 /. view_s);
  (rec_w, view_w, rec_s, view_s)

let part_header () =
  let sizes =
    List.map
      (fun w -> (Bytes.length w, header_size ~size:(Bytes.length w) w))
      [wire_small; wire_mid; wire_big]
  in
  let b_rec_w, b_view_w, b_rec_s, b_view_s =
    snd (List.nth sizes 2)
  in
  let speedup = b_rec_s /. b_view_s in
  (* gated on the full-MTU datagram, where the margin is comfortable on
     any machine; the smaller-packet ratios are archived ungated above *)
  Exp_util.rec_flag ~exp "fwd_speedup_ge_5x" (speedup >= 5.0);
  (* the order-of-magnitude allocation cut, machine-independent *)
  Exp_util.rec_flag ~exp "fwd_alloc_cut_ge_10x" (b_rec_w /. b_view_w >= 10.0);
  Exp_util.table
    ~columns:
      [ "per-hop fwd op"; "record w/op"; "view w/op"; "record ns";
        "view ns"; "speedup" ]
    (List.map
       (fun (size, (rec_w, view_w, rec_s, view_s)) ->
          [ Printf.sprintf "%dB datagram" size; Exp_util.f1 rec_w;
            Exp_util.f1 view_w; Printf.sprintf "%.0f" (rec_s *. 1e9);
            Printf.sprintf "%.0f" (view_s *. 1e9);
            Printf.sprintf "%.1fx" (rec_s /. view_s) ])
       sizes);
  Exp_util.note
    "full-MTU: %.1fx speedup (gate >= 5x), %.0fx fewer minor words (gate \
     >= 10x), %.2f Mpkt/s on the view path"
    speedup (b_rec_w /. b_view_w) (1.0 /. b_view_s /. 1e6)

(* --- part 2: the chain simulation --------------------------------- *)

let chain_routers = 8
let chain_packets = 2000

(* S on net 0, D on net [chain_routers], router k bridging net k-1 to
   net k.  No Workload.Metrics: its transmit/drop taps would (by
   design) force every node onto the classical path. *)
let chain_run ~slow =
  let topo = Topology.create ~seed:11 () in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let lans =
    List.init (chain_routers + 1) (fun k ->
        Topology.add_lan topo ~net:(k + 1) (Printf.sprintf "net%d" k))
  in
  let lan k = List.nth lans k in
  let routers =
    List.init chain_routers (fun k ->
        Topology.add_router topo
          (Printf.sprintf "R%d" (k + 1))
          [(lan k, 2); (lan (k + 1), 1)])
  in
  let s = Topology.add_host topo "S" (lan 0) 10 in
  let d = Topology.add_host topo "D" (lan chain_routers) 10 in
  Topology.compute_routes topo;
  if slow then
    List.iter (fun r -> Node.on_forward r (fun _ _ -> ())) routers;
  Node.set_proto_handler d Ipv4.Proto.udp (fun _ _ -> ());
  let pkt =
    Exp_util.sample_packet ~src:(Node.primary_addr s)
      ~dst:(Node.primary_addr d) ()
  in
  let engine = Topology.engine topo in
  (* one packet warms every ARP cache on the path *)
  Node.send s pkt;
  Topology.run ~until:(Time.of_sec 0.5) topo;
  let fwd0 = List.map Node.packets_forwarded routers in
  let fast0 = List.map Node.packets_fast_forwarded routers in
  let del0 = Node.packets_delivered d in
  ignore
    (Netsim.Engine.schedule engine ~at:(Time.of_sec 0.6) (fun () ->
         for _ = 1 to chain_packets do Node.send s pkt done));
  let t0 = Unix.gettimeofday () in
  let (), alloc =
    Obs.Alloc.measure (fun () -> Topology.run ~until:(Time.of_sec 5.0) topo)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let sum l0 l1 = List.fold_left2 (fun a x0 x1 -> a + x1 - x0) 0 l0 l1 in
  let hops = sum fwd0 (List.map Node.packets_forwarded routers) in
  let fast = sum fast0 (List.map Node.packets_fast_forwarded routers) in
  let delivered = Node.packets_delivered d - del0 in
  (alloc, hops, fast, delivered, wall)

let part_chain () =
  let gate mode (alloc, hops, fast, delivered, wall) =
    let labels = [("path", mode)] in
    let per_hop = alloc.Obs.Alloc.minor_words /. float_of_int hops in
    Exp_util.rec_i ~exp ~labels "chain_hops" hops;
    Exp_util.rec_i ~exp ~labels "chain_fast_forwarded" fast;
    Exp_util.rec_i ~exp ~labels "chain_delivered" delivered;
    Exp_util.rec_f ~exp ~labels ~tol:(Obs.Metric.Pct 30.0)
      "chain_minor_words_per_hop" per_hop;
    Exp_util.rec_f ~exp ~labels ~tol:Obs.Metric.Info "chain_forwarded_pps"
      (float_of_int hops /. wall);
    (per_hop, fast, wall, hops)
  in
  let fast_ph, fast_n, fast_wall, hops = gate "fast" (chain_run ~slow:false) in
  let slow_ph, slow_n, slow_wall, _ = gate "slow" (chain_run ~slow:true) in
  Exp_util.table
    ~columns:["chain mode"; "hops"; "fast-path"; "minor w/hop"; "kpkt-hops/s"]
    [ [ "fast"; Exp_util.i hops; Exp_util.i fast_n; Exp_util.f1 fast_ph;
        Exp_util.f1 (float_of_int hops /. fast_wall /. 1000.0) ];
      [ "slow"; Exp_util.i hops; Exp_util.i slow_n; Exp_util.f1 slow_ph;
        Exp_util.f1 (float_of_int hops /. slow_wall /. 1000.0) ] ];
  Exp_util.note
    "fast path engaged on %d/%d hops; %.1fx fewer minor words per hop"
    fast_n hops (slow_ph /. fast_ph)

(* --- part 3: pool-backed encap/decap ------------------------------ *)

let encap_ops = 10_000

let part_encap () =
  let agent = Addr.host 2 1 and foreign_agent = Addr.host 4 1 in
  let tunneled_rec = Mhrp.Encap.tunnel_by_agent ~agent ~foreign_agent sample in
  let tunneled_wire = Packet.encode tunneled_rec in
  let pool = Ipv4.Buffer_pool.create () in
  let v = View.make wire_small in
  let tv = View.make tunneled_wire in
  (* byte-for-byte equivalence of the two implementations *)
  let enc = Mhrp.Encap.tunnel_by_agent_into ~pool ~agent ~foreign_agent v in
  let enc_ok = Bytes.equal enc tunneled_wire in
  let dec_ok =
    match Mhrp.Encap.detunnel_into ~pool tv, Mhrp.Encap.detunnel tunneled_rec with
    | Some (buf, h), Some (orig, h') ->
      Bytes.equal buf (Packet.encode orig) && Mhrp.Mhrp_header.equal h h'
    | _ -> false
  in
  Ipv4.Buffer_pool.release pool enc;
  Exp_util.rec_flag ~exp "encap_wire_equivalent" enc_ok;
  Exp_util.rec_flag ~exp "detunnel_wire_equivalent" dec_ok;
  (* steady-state allocation: record path rebuilds and re-encodes, the
     pool path recycles two exact-size buffers *)
  let (), rec_alloc =
    Obs.Alloc.measure (fun () ->
        for _ = 1 to encap_ops do
          ignore
            (Packet.encode
               (Mhrp.Encap.tunnel_by_agent ~agent ~foreign_agent sample));
          ignore (Mhrp.Encap.detunnel tunneled_rec)
        done)
  in
  let h0 = Ipv4.Buffer_pool.hits pool and m0 = Ipv4.Buffer_pool.misses pool in
  let (), pool_alloc =
    Obs.Alloc.measure (fun () ->
        for _ = 1 to encap_ops do
          let b = Mhrp.Encap.tunnel_by_agent_into ~pool ~agent ~foreign_agent v in
          Ipv4.Buffer_pool.release pool b;
          (match Mhrp.Encap.detunnel_into ~pool tv with
           | Some (b, _) -> Ipv4.Buffer_pool.release pool b
           | None -> failwith "detunnel_into: None");
        done)
  in
  let rec_w = (Obs.Alloc.per rec_alloc encap_ops).Obs.Alloc.minor_words in
  let pool_w = (Obs.Alloc.per pool_alloc encap_ops).Obs.Alloc.minor_words in
  Exp_util.rec_f ~exp ~labels:[("path", "record")] ~tol:(Obs.Metric.Pct 30.0)
    "encap_minor_words_per_op" rec_w;
  Exp_util.rec_f ~exp ~labels:[("path", "pool")] ~tol:(Obs.Metric.Pct 30.0)
    "encap_minor_words_per_op" pool_w;
  Exp_util.rec_i ~exp "pool_hits" (Ipv4.Buffer_pool.hits pool - h0);
  Exp_util.rec_i ~exp "pool_misses" (Ipv4.Buffer_pool.misses pool - m0);
  Exp_util.rec_i ~exp "pool_pooled" (Ipv4.Buffer_pool.pooled pool);
  Exp_util.table
    ~columns:["encap+decap"; "minor w/op"; "wire-equivalent"]
    [ [ "record (rebuild+re-encode)"; Exp_util.f1 rec_w; "-" ];
      [ "pool (single blit)"; Exp_util.f1 pool_w;
        if enc_ok && dec_ok then "yes" else "NO" ] ]

(* --- part 4: transport segment codec and socket send path --------- *)

let tcp_ops = 20_000
let sock_sends = 400

let tcp_segment =
  Ipv4.Tcp_lite.make ~seq:0x1234_5678 ~ack:0x0fed_cba9
    ~flags:[Ipv4.Tcp_lite.Psh; Ipv4.Tcp_lite.Ack] ~window:4096
    ~src_port:49152 ~dst_port:80 (Bytes.create 512)

let tcp_wire = Ipv4.Tcp_lite.encode tcp_segment

let part_transport () =
  (* the segment codec in isolation: every socket byte crosses encode
     once and decode once, so both word counts gate the send path's
     fixed per-segment cost *)
  let (), enc_alloc =
    Obs.Alloc.measure (fun () ->
        for _ = 1 to tcp_ops do
          ignore (Ipv4.Tcp_lite.encode tcp_segment)
        done)
  in
  let (), dec_alloc =
    Obs.Alloc.measure (fun () ->
        for _ = 1 to tcp_ops do
          match Ipv4.Tcp_lite.decode tcp_wire with
          | Some _ -> ()
          | None -> failwith "tcp decode: None"
        done)
  in
  let enc_w = (Obs.Alloc.per enc_alloc tcp_ops).Obs.Alloc.minor_words in
  let dec_w = (Obs.Alloc.per dec_alloc tcp_ops).Obs.Alloc.minor_words in
  Exp_util.rec_f ~exp ~labels:[("op", "encode")] ~tol:(Obs.Metric.Pct 30.0)
    "tcp_minor_words_per_op" enc_w;
  Exp_util.rec_f ~exp ~labels:[("op", "decode")] ~tol:(Obs.Metric.Pct 30.0)
    "tcp_minor_words_per_op" dec_w;
  (* the full socket send path on a quiet Figure 1 topology: one
     established connection, each op queues 256 stream bytes and runs the
     engine until the ack returns — segmentation, IP encode, two ARP-warm
     hops, receive reassembly, ack processing and timer churn included.
     Retransmissions must be exactly zero: an idle-path RTO misfire would
     silently double the cost. *)
  let f =
    Workload.Topo_gen.figure1 ()
  in
  Netsim.Trace.set_enabled (Topology.trace f.Workload.Topo_gen.topo) false;
  let topo = f.Workload.Topo_gen.topo in
  let server = Transport.Stack.create f.Workload.Topo_gen.m in
  let client = Transport.Stack.create f.Workload.Topo_gen.s in
  let received = ref 0 in
  ignore
    (Transport.Socket.listen server ~port:7 (fun sock ->
         Transport.Socket.recv_cb sock (fun b ->
             received := !received + Bytes.length b)));
  let sock =
    Transport.Socket.connect client
      ~dst:(Mhrp.Agent.address f.Workload.Topo_gen.m) ~dst_port:7 ()
  in
  Topology.run ~until:(Time.of_sec 1.0) topo;
  assert (Transport.Socket.is_established sock);
  let chunk = Bytes.create 256 in
  let send_op () =
    Transport.Socket.send sock chunk;
    Topology.run ~until:(Time.add (Topology.now topo) (Time.of_ms 50)) topo
  in
  send_op ();  (* warm the path before measuring *)
  let (), sock_alloc =
    Obs.Alloc.measure (fun () -> for _ = 1 to sock_sends do send_op () done)
  in
  let sock_w = (Obs.Alloc.per sock_alloc sock_sends).Obs.Alloc.minor_words in
  let rtx =
    (Transport.Stack.counters client).Transport.Counters.retransmissions
  in
  Exp_util.rec_f ~exp ~tol:(Obs.Metric.Pct 30.0)
    "sock_send_minor_words_per_op" sock_w;
  Exp_util.rec_i ~exp "sock_send_retransmissions" rtx;
  Exp_util.rec_i ~exp "sock_send_bytes_delivered" !received;
  Exp_util.table
    ~columns:["transport op"; "minor w/op"]
    [ [ "tcp encode (512B, Psh|Ack)"; Exp_util.f1 enc_w ];
      [ "tcp decode (512B, Psh|Ack)"; Exp_util.f1 dec_w ];
      [ "socket send 256B (round trip)"; Exp_util.f1 sock_w ] ];
  Exp_util.note
    "socket send path: %.0f minor words per 256B send-and-ack round trip, \
     %d retransmissions (gate: exactly 0)"
    sock_w rtx

let run () =
  Exp_util.heading "ALLOC"
    "zero-copy fast path: allocations, throughput, pool behaviour";
  part_header ();
  part_chain ();
  part_encap ();
  part_transport ()

let experiment =
  Exp_util.Experiment.make ~id:"alloc"
    ~title:"zero-copy fast path: allocations, throughput, pool behaviour" run
