(* E6 — scalability comparison (Section 7).

   For a growing number of campuses (one mobile host per campus, each
   moving once to the next campus's cell; a few correspondents then sending
   to every mobile), we count each protocol's control messages and where
   its location state lives.  The paper's claims: MHRP needs no global
   database, no broadcast/multicast and no flooding, so its control cost
   per move is flat in the size of the internetwork, and its state is
   spread across the home agents each organisation runs for itself;
   Sunshine-Postel concentrates all state in one global database, Columbia
   multicasts among all MSRs on a cache miss, and Sony floods every router
   on every move. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

type outcome = {
  proto : string;
  moves : int;
  flows : int;
  ctrl : int;
  delivered : int;
  central_state : int;  (** Bytes at the most-loaded single node. *)
}

let seconds s = Time.of_sec s

(* --- MHRP --- *)

let run_mhrp n =
  let c = TGm.campuses ~campuses:n ~mobiles_per_campus:1 ~correspondents:3 () in
  let topo = c.TGm.c_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let received = ref 0 in
  Array.iter
    (fun m -> Agent.on_app_receive m (fun _ -> incr received))
    c.TGm.c_mobiles;
  Array.iteri
    (fun k m ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(seconds (1.0 +. (0.05 *. float_of_int k)))
            (fun () ->
               Agent.move_to ~topo m c.TGm.c_cells.((k + 1) mod n))))
    c.TGm.c_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds 5.0) (fun () ->
                     Agent.send s
                       (sample_packet ~id:!flows ~src:(Agent.address s)
                          ~dst:(Agent.address m) ()))))
         c.TGm.c_mobiles)
    c.TGm.c_senders;
  Topology.run ~until:(seconds 9.0) topo;
  let all_agents =
    Array.to_list c.TGm.c_routers @ Array.to_list c.TGm.c_mobiles
    @ Array.to_list c.TGm.c_senders
  in
  let ctrl =
    List.fold_left
      (fun acc a -> acc + (Agent.counters a).Mhrp.Counters.control_messages)
      0 all_agents
  in
  let central_state =
    List.fold_left
      (fun acc a ->
         let ha =
           match Agent.home_agent a with
           | Some h -> Mhrp.Home_agent.state_bytes h
           | None -> 0
         in
         let fa =
           match Agent.foreign_agent a with
           | Some f -> Mhrp.Foreign_agent.state_bytes f
           | None -> 0
         in
         max acc (ha + fa + Mhrp.Location_cache.state_bytes (Agent.cache a)))
      0 all_agents
  in
  { proto = "MHRP"; moves = n; flows = !flows; ctrl;
    delivered = !received; central_state }

(* --- Sunshine-Postel --- *)

let run_sunshine n =
  let c = TGm.campuses_plain ~campuses:n ~mobiles_per_campus:1
      ~correspondents:3 () in
  let topo = c.TGm.cp_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let db = Topology.add_host topo "DB" c.TGm.cp_backbone 200 in
  Topology.compute_routes topo;
  let sp = Baselines.Sunshine_postel.create topo ~db_node:db in
  let fwds =
    Array.mapi
      (fun k r ->
         Baselines.Sunshine_postel.add_forwarder sp r
           ~lan:c.TGm.cp_cells.(k))
      c.TGm.cp_routers
  in
  Array.iter (Baselines.Sunshine_postel.make_mobile sp) c.TGm.cp_mobiles;
  let received = ref 0 in
  Array.iter
    (fun m ->
       Node.set_proto_handler m Ipv4.Proto.udp (fun _ _ -> incr received))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k m ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(seconds (1.0 +. (0.05 *. float_of_int k)))
            (fun () ->
               Baselines.Sunshine_postel.move sp m
                 ~forwarder:fwds.((k + 1) mod n)
                 c.TGm.cp_cells.((k + 1) mod n))))
    c.TGm.cp_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds 5.0) (fun () ->
                     Baselines.Sunshine_postel.send sp ~src:s
                       (sample_packet ~id ~src:(Node.primary_addr s)
                          ~dst:(Node.primary_addr m) ()))))
         c.TGm.cp_mobiles)
    c.TGm.cp_senders;
  Topology.run ~until:(seconds 9.0) topo;
  { proto = "Sunshine-Postel"; moves = n; flows = !flows;
    ctrl = Baselines.Sunshine_postel.control_messages sp;
    delivered = !received;
    central_state = Baselines.Sunshine_postel.db_state_bytes sp }

(* --- Columbia --- *)

let run_columbia n =
  let c = TGm.campuses_plain ~campuses:n ~mobiles_per_campus:1
      ~correspondents:3 () in
  let topo = c.TGm.cp_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let co = Baselines.Columbia.create topo in
  let msrs =
    Array.mapi
      (fun k r -> Baselines.Columbia.add_msr co r ~cell:c.TGm.cp_cells.(k))
      c.TGm.cp_routers
  in
  Array.iteri
    (fun k m -> Baselines.Columbia.make_mobile co m ~home:msrs.(k))
    c.TGm.cp_mobiles;
  let received = ref 0 in
  Array.iter
    (fun m ->
       Node.set_proto_handler m Ipv4.Proto.udp (fun _ _ -> incr received))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k m ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(seconds (1.0 +. (0.05 *. float_of_int k)))
            (fun () ->
               Baselines.Columbia.move co m ~to_msr:msrs.((k + 1) mod n))))
    c.TGm.cp_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds 5.0) (fun () ->
                     Baselines.Columbia.send co ~src:s
                       (sample_packet ~id ~src:(Node.primary_addr s)
                          ~dst:(Node.primary_addr m) ()))))
         c.TGm.cp_mobiles)
    c.TGm.cp_senders;
  Topology.run ~until:(seconds 9.0) topo;
  { proto = "Columbia"; moves = n; flows = !flows;
    ctrl = Baselines.Columbia.control_messages co;
    delivered = !received;
    central_state = Baselines.Columbia.msr_cache_bytes co / max 1 n }

(* --- Sony VIP --- *)

let run_sony n =
  let c = TGm.campuses_plain ~campuses:n ~mobiles_per_campus:1
      ~correspondents:3 () in
  let topo = c.TGm.cp_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let sv = Baselines.Sony_vip.create topo in
  Array.iter (Baselines.Sony_vip.add_router sv) c.TGm.cp_routers;
  Array.iteri
    (fun k m ->
       Baselines.Sony_vip.make_host sv m ~home_router:c.TGm.cp_routers.(k))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k s ->
       Baselines.Sony_vip.make_host sv s
         ~home_router:c.TGm.cp_routers.(k mod n))
    c.TGm.cp_senders;
  let received = ref 0 in
  Array.iter
    (fun m -> Baselines.Sony_vip.on_receive sv m (fun _ -> incr received))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k m ->
       let target = (k + 1) mod n in
       let temp =
         Addr.Prefix.host (Net.Lan.prefix c.TGm.cp_cells.(target)) (50 + k)
       in
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(seconds (1.0 +. (0.05 *. float_of_int k)))
            (fun () ->
               Baselines.Sony_vip.move sv m ~lan:c.TGm.cp_cells.(target)
                 ~via_router:c.TGm.cp_routers.(target) ~temp)))
    c.TGm.cp_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds 5.0) (fun () ->
                     Baselines.Sony_vip.send sv ~src:s
                       (sample_packet ~id ~src:(Node.primary_addr s)
                          ~dst:(Node.primary_addr m) ()))))
         c.TGm.cp_mobiles)
    c.TGm.cp_senders;
  Topology.run ~until:(seconds 9.0) topo;
  { proto = "Sony VIP"; moves = n; flows = !flows;
    ctrl = Baselines.Sony_vip.control_messages sv;
    delivered = !received;
    central_state = Baselines.Sony_vip.router_cache_bytes sv / max 1 n }

(* --- Matsushita (autonomous) --- *)

let run_matsushita n =
  let c = TGm.campuses_plain ~campuses:n ~mobiles_per_campus:1
      ~correspondents:3 () in
  let topo = c.TGm.cp_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let ma = Baselines.Matsushita.create topo Baselines.Matsushita.Autonomous in
  Array.iter (Baselines.Matsushita.add_pfs ma) c.TGm.cp_routers;
  Array.iteri
    (fun k m ->
       Baselines.Matsushita.make_mobile ma m ~pfs:c.TGm.cp_routers.(k))
    c.TGm.cp_mobiles;
  let received = ref 0 in
  Array.iter
    (fun m -> Baselines.Matsushita.on_receive ma m (fun _ -> incr received))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k m ->
       let target = (k + 1) mod n in
       let temp =
         Addr.Prefix.host (Net.Lan.prefix c.TGm.cp_cells.(target)) (50 + k)
       in
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(seconds (1.0 +. (0.05 *. float_of_int k)))
            (fun () ->
               Baselines.Matsushita.move ma m ~lan:c.TGm.cp_cells.(target)
                 ~via_router:c.TGm.cp_routers.(target) ~temp)))
    c.TGm.cp_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds 5.0) (fun () ->
                     Baselines.Matsushita.send ma ~src:s
                       (sample_packet ~id ~src:(Node.primary_addr s)
                          ~dst:(Node.primary_addr m) ()))))
         c.TGm.cp_mobiles)
    c.TGm.cp_senders;
  Topology.run ~until:(seconds 9.0) topo;
  { proto = "Matsushita"; moves = n; flows = !flows;
    ctrl = Baselines.Matsushita.control_messages ma;
    delivered = !received; central_state = 8 }

(* --- IBM LSRR --- *)

let run_ibm n =
  let c = TGm.campuses_plain ~campuses:n ~mobiles_per_campus:1
      ~correspondents:3 () in
  let topo = c.TGm.cp_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let ib = Baselines.Ibm_lsrr.create topo in
  let bases =
    Array.mapi
      (fun k r -> Baselines.Ibm_lsrr.add_base ib r ~lan:c.TGm.cp_cells.(k))
      c.TGm.cp_routers
  in
  Array.iteri
    (fun k m -> Baselines.Ibm_lsrr.make_mobile ib m ~home_base:bases.(k))
    c.TGm.cp_mobiles;
  let received = ref 0 in
  Array.iter
    (fun m -> Baselines.Ibm_lsrr.on_receive ib m (fun _ -> incr received))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k m ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(seconds (1.0 +. (0.05 *. float_of_int k)))
            (fun () ->
               Baselines.Ibm_lsrr.move ib m ~base:bases.((k + 1) mod n))))
    c.TGm.cp_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds 5.0) (fun () ->
                     Baselines.Ibm_lsrr.send ib ~src:s
                       (sample_packet ~id ~src:(Node.primary_addr s)
                          ~dst:(Node.primary_addr m) ()))))
         c.TGm.cp_mobiles)
    c.TGm.cp_senders;
  Topology.run ~until:(seconds 9.0) topo;
  { proto = "IBM LSRR"; moves = n; flows = !flows;
    ctrl = Baselines.Ibm_lsrr.control_messages ib;
    delivered = !received; central_state = 8 }

let run () =
  heading "E6" "control traffic and state scaling (Section 7)";
  let slug proto =
    String.map
      (fun c -> match c with ' ' | '-' -> '_' | c -> Char.lowercase_ascii c)
      proto
  in
  (* The grid: campus count x protocol, each point an isolated trial
     (own topology, own engine, fixed seeds) run on the domain pool.
     64 joined the sweep once the indexed-topology overhaul made it
     affordable; the full 256-campus internetwork is E16's job. *)
  let points =
    List.concat_map
      (fun n ->
         List.map
           (fun runner -> (n, runner))
           [ run_mhrp; run_sunshine; run_columbia; run_sony;
             run_matsushita; run_ibm ])
      [4; 8; 16; 64]
  in
  let rows =
    sweep ~exp:"E6" points ~trial:(fun ctx (n, runner) ->
        let o = runner n in
        let reg = ctx.Parallel.Sweep.registry in
        let labels =
          [("protocol", slug o.proto); ("campuses", string_of_int n)]
        in
        rec_i ~reg ~exp:"E6" ~labels "ctrl_msgs" o.ctrl;
        rec_f ~reg ~exp:"E6" ~labels "ctrl_per_move"
          (float_of_int o.ctrl /. float_of_int o.moves);
        rec_i ~reg ~exp:"E6" ~labels "delivered" o.delivered;
        rec_i ~reg ~exp:"E6" ~labels "hot_node_state_bytes" o.central_state;
        [ o.proto; i n; i o.moves; i o.flows; i o.ctrl;
          f1 (float_of_int o.ctrl /. float_of_int o.moves);
          i o.delivered; i o.central_state ])
  in
  table
    ~columns:["protocol"; "campuses"; "moves"; "flows"; "ctrl msgs";
              "ctrl/move"; "delivered"; "hot-node state B"]
    rows;
  note
    "MHRP's ctrl/move is flat as the internetwork grows (each move talks \
     only to the two agents involved and its own home agent); Sony's \
     grows linearly (per-move flooding of every router); Columbia pays a \
     multicast per cache miss; Sunshine-Postel is cheap per move but \
     funnels every lookup through one database whose state grows with the \
     world's mobile population."

let experiment =
  Experiment.make ~id:"E6"
    ~title:"control traffic and state scaling (Section 7)" run
