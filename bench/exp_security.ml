(* E15: the authenticated control plane under attack.

   An adversary X on transit network C attacks the mobile host M twice
   over — forging registrations / location updates that claim M moved to
   X, and capturing M's genuine registration off network C to replay it
   after M has gone home.  Each attack runs with authentication off and
   on; success is the number of MHRP-tunneled packets for M that arrive
   at X.  A final table prices the defence: real serializer output sizes
   for every control message and the location update, with and without
   the authentication extension. *)

open Exp_util

module Counters = Mhrp.Counters
module Control = Mhrp.Control
module Adversary = Auth.Adversary

let auth_config =
  Mhrp.Config.make ~authenticate:true ()

let shared_key = Auth.Siphash.of_string "E15 shared secret"

let agents f = TG.[ f.s; f.m; f.r1; f.r2; f.r3; f.r4 ]

let install_keys env =
  List.iter
    (fun a -> Agent.install_key a ~mobile:env.m_addr ~spi:15 ~key:shared_key)
    (agents env.f)

let sum env field =
  List.fold_left (fun acc a -> acc + field (Agent.counters a)) 0
    (agents env.f)

let attacks_dropped env =
  sum env (fun c -> c.Counters.auth_fail)
  + sum env (fun c -> c.Counters.replay_drop)

type outcome = {
  hijacked : int;
  auth_fail : int;
  replay_drop : int;
  delivered : int;
  sent : int;
}

let outcome env adv =
  { hijacked = Adversary.hijacked adv;
    auth_fail = sum env (fun c -> c.Counters.auth_fail);
    replay_drop = sum env (fun c -> c.Counters.replay_drop);
    delivered = List.length (Workload.Metrics.delivered env.metrics);
    sent = List.length (Workload.Metrics.records env.metrics) }

(* Attacker node on transit network C. *)
let arm ~auth () =
  let env =
    fig_setup ~config:(if auth then auth_config else Mhrp.Config.default) ()
  in
  let xn = Topology.add_host env.f.TG.topo "X" env.f.TG.net_c 66 in
  Topology.compute_routes env.f.TG.topo;
  if auth then install_keys env;
  let adv = Adversary.create ~victim:env.m_addr xn in
  (env, adv)

let cbr env ~start ~count =
  Workload.Traffic.cbr env.traffic ~src:env.f.TG.s ~dst:env.m_addr
    ~start:(Time.of_sec start) ~interval:(Time.of_ms 500) ~count ()

(* Forgery: X fabricates a registration to M's home agent and a location
   update to the correspondent S, both placing M at X. *)
let forgery ~auth =
  let env, adv = arm ~auth () in
  cbr env ~start:0.5 ~count:19;
  let x_addr = Node.primary_addr (Adversary.node adv) in
  fig_at env 1.2 (fun () ->
      Adversary.forge_registration adv
        ~home_agent:(Agent.address env.f.TG.r2) ~foreign_agent:x_addr);
  fig_at env 1.4 (fun () ->
      Adversary.forge_location_update adv
        ~src:(Agent.address env.f.TG.r2) ~dst:(Agent.address env.f.TG.s)
        ~foreign_agent:x_addr);
  fig_run ~until:12.0 env;
  outcome env adv

(* Capture & replay: M visits network C as its own foreign agent (its
   registration crosses the attacker's LAN), goes home, and X — having
   claimed M's abandoned temporary address — replays the recording, once
   inside the timestamp window and once after it has lapsed.  Data
   traffic starts only after M is home again, so every hijacked packet
   is attributable to the replayed binding rather than to correspondent
   caches left pointing at the abandoned address. *)
let replay ~auth =
  let env, adv = arm ~auth () in
  cbr env ~start:2.2 ~count:15;
  let temp =
    Ipv4.Addr.Prefix.host (Net.Lan.prefix env.f.TG.net_c) 77
  in
  Adversary.tap adv env.f.TG.net_c;
  fig_at env 1.0 (fun () ->
      Agent.move_to ~topo:env.f.TG.topo ~own_fa_temp:temp env.f.TG.m
        env.f.TG.net_c);
  fig_move env 2.0 env.f.TG.net_b;
  fig_at env 2.5 (fun () -> Adversary.assume_address adv temp);
  fig_at env 3.0 (fun () -> Adversary.replay_captured adv);
  fig_at env 4.5 (fun () -> Adversary.replay_captured adv);
  fig_run ~until:12.0 env;
  outcome env adv

(* Byte overhead, from the serializers that put these messages on the
   wire in the runs above. *)
let overhead_rows () =
  let m = Addr.host 2 10 and fa = Addr.host 4 1 in
  let controls =
    [ ("reg-request", Control.Reg_request { mobile = m; foreign_agent = fa });
      ("reg-reply", Control.Reg_reply { mobile = m; accepted = true });
      ("fa-connect", Control.Fa_connect { mobile = m; mac = Net.Mac.of_int 10 });
      ("fa-connect-ack", Control.Fa_connect_ack { mobile = m });
      ("fa-disconnect",
       Control.Fa_disconnect { mobile = m; new_foreign_agent = fa });
      ("ha-sync", Control.Ha_sync { mobile = m; foreign_agent = fa }) ]
  in
  let ext payload =
    Auth.Extension.encode
      (Auth.Extension.sign ~key:shared_key ~spi:15
         ~timestamp:(Time.of_sec 1.0) ~nonce:1L payload)
  in
  let row name plain signed =
    let labels = [("message", name)] in
    rec_i ~exp:"E15" ~labels "plain_bytes" plain;
    rec_i ~exp:"E15" ~labels "authenticated_bytes" signed;
    rec_i ~exp:"E15" ~labels "added_bytes" (signed - plain);
    [ name; i plain; i signed; i (signed - plain) ]
  in
  List.map
    (fun (name, msg) ->
       let plain = Control.encode msg in
       row name (Bytes.length plain)
         (Bytes.length plain + Bytes.length (ext plain)))
    controls
  @ [ (let update =
         Ipv4.Icmp.Location_update { mobile = m; foreign_agent = fa }
       in
       let plain = Ipv4.Icmp.encode update in
       row "icmp location-update" (Bytes.length plain)
         (Bytes.length
            (Ipv4.Icmp.encode ~ext:(ext plain) update))) ]

let run () =
  heading "E15" "control-plane attacks: forgery and replay, auth off vs on";
  note "adversary X on transit net C targets M; CBR S->M underneath";
  note "hijacked = tunneled packets for M that arrived at X";
  note "dropped  = auth_fail + replay_drop summed over all agents";
  let scenarios =
    [ ("forgery", forgery ~auth:false, forgery ~auth:true);
      ("replay", replay ~auth:false, replay ~auth:true) ]
  in
  let record name auth (o : outcome) =
    let labels = [("attack", name); ("auth", auth)] in
    rec_i ~exp:"E15" ~labels "hijacked" o.hijacked;
    rec_i ~exp:"E15" ~labels "auth_fail" o.auth_fail;
    rec_i ~exp:"E15" ~labels "replay_drop" o.replay_drop;
    rec_i ~exp:"E15" ~labels "delivered" o.delivered;
    rec_i ~exp:"E15" ~labels "sent" o.sent
  in
  List.iter
    (fun (name, off, on) ->
       record name "off" off;
       record name "on" on)
    scenarios;
  table
    ~columns:[ "attack"; "auth"; "hijacked"; "auth_fail"; "replay_drop";
               "delivered" ]
    (List.concat_map
       (fun (name, off, on) ->
          [ [ name; "off"; i off.hijacked; i off.auth_fail;
              i off.replay_drop;
              Printf.sprintf "%d/%d" off.delivered off.sent ];
            [ name; "on"; i on.hijacked; i on.auth_fail; i on.replay_drop;
              Printf.sprintf "%d/%d" on.delivered on.sent ] ])
       scenarios);
  note "";
  note "authentication extension overhead (serializer output bytes):";
  table
    ~columns:[ "message"; "plain"; "authenticated"; "added" ]
    (overhead_rows ())

let experiment =
  Experiment.make ~id:"E15"
    ~title:"control-plane attacks: forgery and replay, auth off vs on" run
