(* E20 — hierarchy under failure: regional-agent crash recovery and
   inter-region handoff with grace-period forwarding pointers.

   Two parts, both on the two-level regions topology with the soft-state
   recovery timers enabled (1s refresh, 100ms RTO, 3 retries):

   - Crash: a visiting mobile's regional agent's router dies mid-stream.
     Without a standby ("direct") the whole region is cut off until the
     router reboots, after which the mobile's refresh timer re-drives a
     direct home-agent registration; with one ("backup") transit survives
     on the standby router and the mobile fails over to the advertised
     backup regional agent within a few refresh intervals.  Recovery
     latency — the delivery gap measured at the receiver — is gated
     Exact per mode (the simulator is deterministic), the standby must
     beat the reboot path (flag), and no packet may die of TTL
     exhaustion during either recovery (zero forwarding loops, Exact).

   - Handoff: the mobile crosses into a third region while a
     correspondent streams at 10ms spacing through a snooped cache
     entry pointing at the old regional agent.  The handoff's direct
     home-agent registration is lost once, so for one retransmission
     interval every agent still points into the old region.  With
     [Config.regional_grace] = 0 the old regional agent keeps
     re-tunneling along its stale binding to the old foreign agent,
     which transmits each packet onto the old cell toward the mobile's
     departed link-layer address — silent last-hop loss; with a grace
     period the withdrawal installs a forwarding pointer to the new
     regional agent and the stream is diverted there instead.
     Delivered counts are gated Exact per mode, and the pointer mode
     must drop strictly fewer packets (flag) while using the pointer at
     least once (flag). *)

open Exp_util

let exp = "E20"

(* Soft-state timers scaled for simulation: refresh every 1s so a dead
   regional agent is detected within ~1.3s, lifetime long enough that
   expiry never races the scenarios below. *)
let config ?regional_grace () =
  Mhrp.Config.make ~hierarchy:true ~reliable_control:true
    ~control_rto:(Time.of_ms 100) ~control_retries:3
    ~regional_lifetime:(Time.of_sec 60.0)
    ~regional_refresh:(Time.of_sec 1.0) ?regional_grace ()

(* Count packets that died of TTL exhaustion anywhere — a non-zero value
   during recovery means the protocol built a forwarding loop. *)
let watch_ttl_drops topo =
  let drops = ref 0 in
  List.iter
    (fun n ->
       Node.on_drop n (fun _ reason _ ->
           if reason = "ttl-expired" then incr drops))
    (Topology.nodes topo);
  drops

(* CBR stream sender.(0) -> mobile, [spacing] apart over [from_s, to_s];
   returns the send count and a bump-on-delivery cell the caller wires
   to the receiver. *)
let stream rg ~from_s ~to_s ~spacing_ms =
  let topo = rg.TG.rg_topo in
  let sender = rg.TG.rg_senders.(0) in
  let dst = Agent.address rg.TG.rg_mobiles.(0) in
  let sent = ref 0 in
  let t = ref from_s in
  while !t <= to_s +. 1e-9 do
    incr sent;
    let id = !sent in
    ignore
      (Netsim.Engine.schedule (Topology.engine topo)
         ~at:(Time.of_sec !t) (fun () ->
             Agent.send sender
               (sample_packet ~id ~src:(Agent.address sender) ~dst ())));
    t := !t +. (float_of_int spacing_ms /. 1000.0)
  done;
  !sent

(* --- part 1: regional-agent crash ---------------------------------- *)

let crash_at = 2.5

type crash_outcome = {
  mode : string;
  sent : int;
  delivered : int;
  rec_s : float;  (* delivery gap after the crash, seconds *)
  failovers : int;
  refreshes : int;
  ttl_drops : int;
}

let run_crash ~backups =
  let mode = if backups then "backup" else "direct" in
  let rg =
    TG.regions ~config:(config ()) ~backups ~regions:2 ~cells:2
      ~mobiles_per_region:1 ~correspondents:1 ()
  in
  let topo = rg.TG.rg_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let ttl_drops = watch_ttl_drops topo in
  let m = rg.TG.rg_mobiles.(0) in
  let delivered = ref 0 in
  let last_gap = ref 0.0 in
  Agent.on_app_receive m (fun _ ->
      incr delivered;
      let now = Time.to_sec (Topology.now topo) in
      if now > crash_at && !last_gap = 0.0 then last_gap := now -. crash_at);
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 1.0)
       (fun () -> Agent.move_to ~topo m rg.TG.rg_cells.(1).(0)));
  (* direct mode: the region's only router reboots after 6s and the
     mobile's refresh loop re-registers straight with the home agent —
     recovery scales with the outage; backup mode: the router stays
     down past the horizon and the standby takes the region over in
     constant time, whatever the outage length *)
  let outage = if backups then 60.0 else 6.0 in
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec crash_at)
       (fun () ->
          Node.crash_for
            (Agent.node rg.TG.rg_regionals.(1))
            (Time.of_sec outage)));
  let sent = stream rg ~from_s:2.0 ~to_s:12.0 ~spacing_ms:100 in
  Topology.run ~until:(Time.of_sec 14.0) topo;
  let c = Agent.counters m in
  { mode; sent; delivered = !delivered; rec_s = !last_gap;
    failovers = c.Mhrp.Counters.region_failovers;
    refreshes = c.Mhrp.Counters.region_retransmissions;
    ttl_drops = !ttl_drops }

let part_crash () =
  let outcomes =
    sweep ~exp ~labels:[("part", "crash")] [false; true]
      ~trial:(fun ctx backups ->
          let o = run_crash ~backups in
          let reg = ctx.Parallel.Sweep.registry in
          let labels = [("mode", o.mode)] in
          rec_i ~reg ~exp ~labels "sent" o.sent;
          rec_i ~reg ~exp ~labels "delivered" o.delivered;
          rec_f ~reg ~exp ~labels "recovery_ms" (o.rec_s *. 1000.0);
          rec_i ~reg ~exp ~labels "region_failovers" o.failovers;
          rec_i ~reg ~exp ~labels "ttl_expired_drops" o.ttl_drops;
          o)
  in
  let direct = List.nth outcomes 0 and backup = List.nth outcomes 1 in
  rec_flag ~exp "backup_recovers_faster"
    (backup.rec_s > 0.0 && backup.rec_s < direct.rec_s);
  rec_flag ~exp "no_forwarding_loops_crash"
    (direct.ttl_drops = 0 && backup.ttl_drops = 0);
  table
    ~columns:
      [ "mode"; "sent"; "delivered"; "recovery ms"; "failovers";
        "refresh retx"; "ttl drops" ]
    (List.map
       (fun o ->
          [ o.mode; i o.sent; i o.delivered; f1 (o.rec_s *. 1000.0);
            i o.failovers; i o.refreshes; i o.ttl_drops ])
       outcomes);
  note
    "the standby regional agent restores delivery in %.1fs vs %.1fs for \
     reboot-and-reregister, with zero TTL-expired drops in both modes"
    backup.rec_s direct.rec_s

(* --- part 2: inter-region handoff grace pointer --------------------- *)

let handoff_at = 4.0

type handoff_outcome = {
  grace : string;
  sent : int;
  delivered : int;
  dropped : int;
  forwards : int;
  loops : int;
  ttl_drops : int;
}

let run_handoff ~grace_s =
  let grace = Printf.sprintf "%.0fs" grace_s in
  let rg =
    TG.regions
      ~config:(config ~regional_grace:(Time.of_sec grace_s) ())
      ~regions:3 ~cells:1 ~mobiles_per_region:1 ~correspondents:1 ()
  in
  let topo = rg.TG.rg_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let ttl_drops = watch_ttl_drops topo in
  let m = rg.TG.rg_mobiles.(0) in
  let delivered = ref 0 in
  Agent.on_app_receive m (fun _ -> incr delivered);
  List.iter
    (fun (at, cell) ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec at)
            (fun () -> Agent.move_to ~topo m rg.TG.rg_cells.(cell).(0))))
    [(1.0, 1); (handoff_at, 2)];
  (* The failure under test: the handoff's home-agent registration is
     lost once (the [Fault.Control_loss] pattern), so the home agent
     keeps pointing into the old region for one retransmission interval.
     The old regional agent keeps serving its stale binding, so the
     stream dead-ends on the old cell at the mobile's departed
     link-layer address — unless the grace-period pointer diverts it to
     the new region first. *)
  let ha_addr = Addr.Prefix.host (Net.Lan.prefix rg.TG.rg_homes.(0)) 1 in
  let lossy = ref false in
  Node.set_fault_filter (Agent.node m)
    (Some
       (fun _ pkt ->
          not
            (!lossy
             && pkt.Ipv4.Packet.proto = Ipv4.Proto.udp
             && Addr.equal pkt.Ipv4.Packet.dst ha_addr)));
  List.iter
    (fun (at, v) ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec at)
            (fun () -> lossy := v)))
    [(handoff_at, true); (handoff_at +. 0.05, false)];
  let sent = stream rg ~from_s:3.0 ~to_s:5.0 ~spacing_ms:10 in
  Topology.run ~until:(Time.of_sec 12.0) topo;
  let forwards =
    Array.fold_left
      (fun acc a -> acc + (Agent.counters a).Mhrp.Counters.regional_forwards)
      0 rg.TG.rg_regionals
  in
  let agents =
    Array.to_list rg.TG.rg_regionals
    @ List.concat_map Array.to_list (Array.to_list rg.TG.rg_fas)
    @ Array.to_list rg.TG.rg_mobiles
    @ Array.to_list rg.TG.rg_senders
  in
  let loops =
    List.fold_left
      (fun acc a -> acc + (Agent.counters a).Mhrp.Counters.loops_detected)
      0 agents
  in
  { grace; sent; delivered = !delivered; dropped = sent - !delivered;
    forwards; loops; ttl_drops = !ttl_drops }

let part_handoff () =
  let outcomes =
    sweep ~exp ~labels:[("part", "handoff")] [0.0; 2.0]
      ~trial:(fun ctx grace_s ->
          let o = run_handoff ~grace_s in
          let reg = ctx.Parallel.Sweep.registry in
          let labels = [("grace", o.grace)] in
          rec_i ~reg ~exp ~labels "sent" o.sent;
          rec_i ~reg ~exp ~labels "delivered" o.delivered;
          rec_i ~reg ~exp ~labels "dropped" o.dropped;
          rec_i ~reg ~exp ~labels "regional_forwards" o.forwards;
          rec_i ~reg ~exp ~labels "loops_detected" o.loops;
          rec_i ~reg ~exp ~labels "ttl_expired_drops" o.ttl_drops;
          o)
  in
  let without = List.nth outcomes 0 and with_p = List.nth outcomes 1 in
  rec_flag ~exp "pointer_drops_strictly_fewer"
    (with_p.dropped < without.dropped);
  rec_flag ~exp "pointer_used" (with_p.forwards >= 1);
  table
    ~columns:
      [ "grace"; "sent"; "delivered"; "dropped"; "pointer forwards";
        "loops"; "ttl drops" ]
    (List.map
       (fun o ->
          [ o.grace; i o.sent; i o.delivered; i o.dropped; i o.forwards;
            i o.loops; i o.ttl_drops ])
       outcomes);
  note
    "%d grace-period pointer forward(s) — each reporting the new \
     regional agent so stale caches rebind — cut handoff loss from %d \
     to %d of %d"
    with_p.forwards without.dropped with_p.dropped with_p.sent

let run () =
  heading "E20"
    "hierarchy under failure: regional crash recovery + handoff grace \
     pointers";
  part_crash ();
  part_handoff ()

let experiment =
  Experiment.make ~id:"E20"
    ~title:"regional-agent crash recovery and handoff forwarding-pointer \
            sweep"
    run
