(* E13 — replicated home agents (Section 2): "it can replicate the home
   agent function on several support hosts on its own network, although
   these hosts must cooperate to provide a consistent view of the
   database."  We measure the synchronisation cost and the benefit: with a
   replica on the home LAN, local senders keep reaching the departed
   mobile host while the primary's agent process is dead. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

let run_case ~replicated =
  let f = TGm.figure1 () in
  let topo = f.TGm.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Workload.Metrics.watch_receiver metrics f.TGm.m;
  let m_addr = Agent.address f.TGm.m in
  (* a local sender on the home network (interception-by-ARP territory) *)
  let pn = Topology.add_host topo "P" f.TGm.net_b 30 in
  Topology.compute_routes topo;
  let p_agent = Agent.create pn in
  let syncs = ref 0 in
  (if replicated then begin
     let h2n = Topology.add_host topo "H2" f.TGm.net_b 2 in
     Topology.compute_routes topo;
     let h2 = Agent.create h2n in
     Agent.enable_home_agent h2;
     let grp = Mhrp.Replication.group [f.TGm.r2; h2] in
     Agent.add_mobile h2 m_addr;
     ignore grp;
     Workload.Traffic.at traffic (Time.of_sec 10.0) (fun () ->
         syncs := Mhrp.Replication.sync_messages grp)
   end);
  Workload.Mobility.move_at topo f.TGm.m ~at:(Time.of_sec 1.0) f.TGm.net_d;
  (* the primary home-agent process dies (node keeps routing) *)
  Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
      Node.set_arp_proxy (Agent.node f.TGm.r2) (fun _ -> false);
      Node.set_accept_ip (Agent.node f.TGm.r2) (fun _ _ -> false);
      Node.set_rewrite_forward (Agent.node f.TGm.r2) (fun _ _ ->
          Net.Node.Forward));
  for k = 1 to 5 do
    Workload.Traffic.at traffic (Time.of_sec (3.0 +. float_of_int k))
      (fun () ->
         let pkt =
           sample_packet ~id:(100 + k) ~src:(Agent.address p_agent)
             ~dst:m_addr ()
         in
         Workload.Metrics.note_send metrics pkt;
         Agent.send p_agent pkt)
  done;
  Topology.run ~until:(Time.of_sec 12.0) topo;
  let delivered =
    List.length
      (List.filter
         (fun r -> r.Workload.Metrics.delivered_at <> None)
         (Workload.Metrics.records metrics))
  in
  (delivered, !syncs)

let run () =
  heading "E13" "replicated home agents (Section 2)";
  let single, _ = run_case ~replicated:false in
  let replicated, syncs = run_case ~replicated:true in
  rec_i ~exp:"E13" ~labels:[("home_agents", "single")] "delivered_of_5"
    single;
  rec_i ~exp:"E13" ~labels:[("home_agents", "replicated")] "delivered_of_5"
    replicated;
  rec_i ~exp:"E13" "sync_messages" syncs;
  table
    ~columns:["home agents"; "delivered of 5 (primary dead)";
              "sync messages"]
    [ ["single"; i single; "0"];
      ["primary + replica"; i replicated; i syncs] ];
  note
    "the replica mirrors every registration (one sync message per move \
     per replica), answers proxy ARP for the departed host on the home \
     LAN, and tunnels interceptions itself when the primary's agent \
     process is gone."

let experiment =
  Experiment.make ~id:"E13" ~title:"replicated home agents (Section 2)" run
