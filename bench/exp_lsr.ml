(* E18 — distributed link-state routing: convergence and cost.

   Everything before this experiment ran over the omniscient routing
   oracle (Net.Routing): tables appear instantly, for free.  E18 replaces
   the oracle with lib/lsr — hellos, LSA flooding and per-router SPF as
   real packets and timers inside the simulation — and measures what the
   oracle hides:

   - cold-start convergence time across topology size x hello timer,
     with the converged tables checked loop-free and path-equivalent to
     the oracle;
   - reconvergence around a router crash and a link flap under a live
     MHRP workload (Figure 1), with delivery counted through the outage
     and the no-forwarding-loop invariant watched throughout;
   - the control-byte ledger: link-state routing traffic vs MHRP
     mobility control traffic on the same wires, and the oracle's free
     global recomputes vs LSR's per-router SPF runs. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time
module Engine = Netsim.Engine
module Lan = Net.Lan

let lsr_config ~hello_ms =
  Lsr.Config.make ~hello_interval:(Time.of_ms hello_ms)
    ~refresh_interval:(Time.of_sec 10.0) ()

(* Convergence watcher: a periodic poll that timestamps the first instant
   the domain is synchronized.  Clearing [converged_at] (at a fault's heal
   time) re-arms it to catch the reconvergence instant.  The poll is an
   ordinary engine event, so the measurement is deterministic. *)
type watcher = { mutable converged_at : Time.t option }

let watch topo d ~every =
  let w = { converged_at = None } in
  let eng = Topology.engine topo in
  Engine.every eng ~interval:every (fun () ->
      if w.converged_at = None && Lsr.Domain.synchronized d then
        w.converged_at <- Some (Engine.now eng));
  w

(* --- Cold-start trial: size x hello timer --- *)

type cold = {
  routers : int;
  conv_us : int option;
  spf_runs : int;
  lsas_sent : int;
  hellos_sent : int;
  lsr_bytes : int;
  equiv : bool;
}

let run_cold ~campuses ~hello_ms =
  let topo =
    if campuses = 0 then (TGm.figure1_plain ()).TGm.p_topo
    else
      (TGm.campuses_plain ~campuses ~mobiles_per_campus:1 ~correspondents:2
         ())
        .TGm.cp_topo
  in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let d = Lsr.Domain.create ~config:(lsr_config ~hello_ms) topo in
  Lsr.Domain.start d;
  let w = watch topo d ~every:(Time.of_ms 25) in
  Topology.run ~until:(Time.of_sec 15.0) topo;
  let c = Lsr.Domain.totals d in
  { routers = List.length (Lsr.Domain.routers d);
    conv_us = Option.map Time.to_us w.converged_at;
    spf_runs = c.Lsr.Counters.spf_runs;
    lsas_sent = c.Lsr.Counters.lsas_sent;
    hellos_sent = c.Lsr.Counters.hellos_sent;
    lsr_bytes = Lsr.Domain.control_bytes d;
    equiv = Lsr.Domain.equivalent d }

(* --- MHRP-over-LSR trial: delivery through reconvergence --- *)

type mhrp_outcome = {
  sent : int;
  delivered : int;
  reconv_us : int option;  (* from the heal (or from zero when no fault) *)
  ttl_expired : int;
  lsr_wire_bytes : int;  (* every lsrp transmission, per LAN hop *)
  mhrp_ctrl_bytes : int;  (* every MHRP control transmission, per LAN hop *)
  m_equiv : bool;
  m_spf_runs : int;
}

let fault_at = Time.of_sec 10.0
let heal_at = Time.of_sec 11.0

let run_mhrp ~fault =
  let f =
    TGm.figure1
      ~config:
        (Mhrp.Config.make ~advert_interval:(Time.of_sec 1.0)
           ~advert_lifetime:(Time.of_sec 3.0) ())
      ~seed:11 ()
  in
  let topo = f.TGm.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Workload.Metrics.watch_receiver metrics f.TGm.m;
  let inv = Fault.Invariant.watch topo in
  (* The control-byte ledger: one tap pair per node, every LAN traversal
     counted, classified by the fault layer's own control test (MHRP
     registration, advertisement and tunnel traffic) vs IP protocol 89
     (link-state routing). *)
  let mhrp_ctrl = ref 0 and lsr_wire = ref 0 in
  let tap _ pkt =
    let len = Ipv4.Packet.total_length pkt in
    if pkt.Ipv4.Packet.proto = Ipv4.Proto.lsrp then
      lsr_wire := !lsr_wire + len
    else if Fault.Injector.is_control pkt then mhrp_ctrl := !mhrp_ctrl + len
  in
  List.iter
    (fun n ->
       Node.on_transmit n tap;
       Node.on_broadcast n tap)
    (Topology.nodes topo);
  let d = Lsr.Domain.create ~config:(lsr_config ~hello_ms:100) topo in
  Lsr.Domain.start d;
  let w = watch topo d ~every:(Time.of_ms 25) in
  (match fault with
   | `None -> ()
   | `Crash ->
     let inj = Fault.Injector.create ~seed:4242 topo in
     Fault.Injector.inject inj
       [ Fault.Schedule.Crash
           { node = "R3"; at = fault_at;
             duration = Time.diff heal_at fault_at } ]
   | `Flap ->
     let inj = Fault.Injector.create ~seed:4242 topo in
     Fault.Injector.inject inj
       [ Fault.Schedule.Lan_down
           { lan = "netC"; at = fault_at;
             duration = Time.diff heal_at fault_at } ]);
  (* M roams to the wireless cell once routing has settled; the CBR
     stream then runs straight through the fault window. *)
  Workload.Mobility.move_at topo f.TGm.m ~at:(Time.of_sec 5.0) f.TGm.net_d;
  Workload.Traffic.cbr traffic ~src:f.TGm.s ~dst:(Agent.address f.TGm.m)
    ~start:(Time.of_sec 8.0) ~interval:(Time.of_ms 200) ~count:40 ();
  if fault <> `None then
    ignore
      (Engine.schedule (Topology.engine topo) ~at:heal_at (fun () ->
           w.converged_at <- None));
  Topology.run ~until:(Time.of_sec 20.0) topo;
  let base = if fault = `None then Time.zero else heal_at in
  { sent = List.length (Workload.Metrics.records metrics);
    delivered = List.length (Workload.Metrics.delivered metrics);
    reconv_us =
      Option.map (fun t -> Time.to_us t - Time.to_us base) w.converged_at;
    ttl_expired = Fault.Invariant.ttl_expired inv;
    lsr_wire_bytes = !lsr_wire;
    mhrp_ctrl_bytes = !mhrp_ctrl;
    m_equiv = Lsr.Domain.equivalent d;
    m_spf_runs = (Lsr.Domain.totals d).Lsr.Counters.spf_runs }

(* --- the sweep --- *)

type point =
  | Cold of { size : string; campuses : int; hello_ms : int }
  | Mhrp_fault of { fault : [`None | `Crash | `Flap]; name : string }
  | Det  (* determinism repeat of the crash point, not recorded *)

let points =
  List.concat_map
    (fun (size, campuses) ->
       List.map
         (fun hello_ms -> Cold { size; campuses; hello_ms })
         [100; 500])
    [("figure1", 0); ("campus8", 8); ("campus64", 64)]
  @ [ Mhrp_fault { fault = `None; name = "none" };
      Mhrp_fault { fault = `Crash; name = "crash" };
      Mhrp_fault { fault = `Flap; name = "flap" };
      Det; Det ]

let record_cold ~reg ~labels (o : cold) =
  let r = rec_i ~reg ~exp:"E18" ~labels in
  r "routers" o.routers;
  r "conv_us" (Option.value ~default:(-1) o.conv_us);
  r "spf_runs" o.spf_runs;
  r "lsas_sent" o.lsas_sent;
  r "hellos_sent" o.hellos_sent;
  r "lsr_bytes" o.lsr_bytes;
  rec_flag ~reg ~exp:"E18" ~labels "oracle_equivalent" o.equiv

let record_mhrp ~reg ~labels (o : mhrp_outcome) =
  let r = rec_i ~reg ~exp:"E18" ~labels in
  r "sent" o.sent;
  r "delivered" o.delivered;
  r "reconv_us" (Option.value ~default:(-1) o.reconv_us);
  r "ttl_expired_drops" o.ttl_expired;
  r "lsr_wire_bytes" o.lsr_wire_bytes;
  r "mhrp_ctrl_bytes" o.mhrp_ctrl_bytes;
  r "spf_runs" o.m_spf_runs;
  rec_flag ~reg ~exp:"E18" ~labels "oracle_equivalent" o.m_equiv

type outcome = O_cold of cold | O_mhrp of mhrp_outcome

let conv_cell = function
  | Some us -> ms_of_us (float_of_int us)
  | None -> "never"

let run () =
  heading "E18"
    "distributed link-state routing: convergence and cost (lib/lsr)";
  let outcomes =
    sweep ~exp:"E18" points ~trial:(fun ctx point ->
        let reg = ctx.Parallel.Sweep.registry in
        match point with
        | Cold { size; campuses; hello_ms } ->
          let o = run_cold ~campuses ~hello_ms in
          record_cold ~reg
            ~labels:[("topo", size); ("hello_ms", i hello_ms)]
            o;
          O_cold o
        | Mhrp_fault { fault; name } ->
          let o = run_mhrp ~fault in
          record_mhrp ~reg ~labels:[("fault", name)] o;
          O_mhrp o
        | Det -> O_mhrp (run_mhrp ~fault:`Crash))
  in
  let tagged = List.combine points outcomes in
  let swept = List.filter (fun (p, _) -> p <> Det) tagged in
  note "cold-start convergence (poll resolution 25 ms):";
  table
    ~columns:
      ["topology"; "hello ms"; "routers"; "converged"; "spf runs";
       "LSAs"; "hellos"; "lsr bytes"; "= oracle"]
    (List.filter_map
       (function
         | Cold { size; hello_ms; _ }, O_cold o ->
           Some
             [ size; i hello_ms; i o.routers; conv_cell o.conv_us;
               i o.spf_runs; i o.lsas_sent; i o.hellos_sent;
               i o.lsr_bytes; (if o.equiv then "yes" else "NO") ]
         | _ -> None)
       swept);
  note "MHRP delivery through reconvergence (figure 1, hello 100 ms):";
  table
    ~columns:
      ["fault"; "delivered"; "reconverged"; "ttl drops"; "lsr bytes";
       "mhrp ctrl bytes"; "= oracle"]
    (List.filter_map
       (function
         | Mhrp_fault { name; _ }, O_mhrp o ->
           Some
             [ name;
               Printf.sprintf "%d/%d" o.delivered o.sent;
               conv_cell o.reconv_us; i o.ttl_expired; i o.lsr_wire_bytes;
               i o.mhrp_ctrl_bytes; (if o.m_equiv then "yes" else "NO") ]
         | _ -> None)
       swept);
  (* campaign gates *)
  let all_converged =
    List.for_all
      (function
        | _, O_cold o -> o.conv_us <> None
        | _, O_mhrp o -> o.reconv_us <> None)
      swept
  in
  let all_equiv =
    List.for_all
      (function
        | _, O_cold o -> o.equiv
        | _, O_mhrp o -> o.m_equiv)
      swept
  in
  let ttl_total =
    List.fold_left
      (fun acc -> function _, O_mhrp o -> acc + o.ttl_expired | _ -> acc)
      0 swept
  in
  let det =
    match List.filter_map (function Det, o -> Some o | _ -> None) tagged with
    | [O_mhrp a; O_mhrp b] ->
      a.delivered = b.delivered && a.reconv_us = b.reconv_us
      && a.lsr_wire_bytes = b.lsr_wire_bytes
      && a.mhrp_ctrl_bytes = b.mhrp_ctrl_bytes
    | _ -> false
  in
  rec_flag ~exp:"E18" "all_converged" all_converged;
  rec_flag ~exp:"E18" "all_oracle_equivalent" all_equiv;
  rec_flag ~exp:"E18" "no_forwarding_loops" (ttl_total = 0);
  rec_flag ~exp:"E18" "deterministic" det;
  (* The oracle-vs-LSR ledger, run serially so the process-wide oracle
     counter delta is attributable to this one trial. *)
  let oracle_before = Net.Routing.recompute_count () in
  let o = run_cold ~campuses:8 ~hello_ms:500 in
  let oracle_sweeps = Net.Routing.recompute_count () - oracle_before in
  rec_i ~exp:"E18" ~labels:[("topo", "campus8-serial")] "oracle_recomputes"
    oracle_sweeps;
  rec_i ~exp:"E18" ~labels:[("topo", "campus8-serial")] "lsr_spf_runs"
    o.spf_runs;
  note
    "oracle vs distributed, 8 campuses: %d global oracle sweep(s) at 0 \
     bytes vs %d per-router SPF runs costing %d control bytes"
    oracle_sweeps o.spf_runs o.lsr_bytes;
  note "no-loop invariant: %d ttl-expired drops across the campaign"
    ttl_total;
  note "replay determinism (crash trial, twice): %s"
    (if det then "identical" else "DIVERGED")

let experiment =
  Experiment.make ~id:"E18"
    ~title:"distributed link-state routing: convergence and cost (lib/lsr)"
    run
