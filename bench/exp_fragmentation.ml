(* E14 — encapsulation overhead vs the link MTU (Section 4.1's "significant
   savings in space overhead", made concrete).

   A datagram sized near the 1500-byte Ethernet MTU fits unfragmented as
   plain IP, but each protocol's tunnel overhead lowers the payload at
   which fragmentation begins: MHRP's 8/12 bytes cost fragmentation over a
   5x smaller payload window than Matsushita's 40.  Fragment counts are
   computed with the real codecs and the real fragmenter. *)

open Exp_util
module Packet = Ipv4.Packet

let mtu = 1500

let udp_packet payload =
  Packet.make ~id:1 ~proto:Ipv4.Proto.udp ~src:(Addr.host 1 10)
    ~dst:(Addr.host 2 10)
    (Ipv4.Udp.encode
       (Ipv4.Udp.make ~src_port:4000 ~dst_port:4000 (Bytes.create payload)))

let encapsulations =
  [ ("plain IP", 0, fun pkt -> pkt);
    ("MHRP sender (8B)", 8,
     fun pkt -> Mhrp.Encap.tunnel_by_sender ~foreign_agent:(Addr.host 4 1) pkt);
    ("MHRP agent (12B)", 12,
     fun pkt ->
       Mhrp.Encap.tunnel_by_agent ~agent:(Addr.host 2 1)
         ~foreign_agent:(Addr.host 4 1) pkt);
    ("Columbia IPIP (24B)", 24,
     fun pkt ->
       Baselines.Ipip.encap ~outer_src:(Addr.host 2 1)
         ~outer_dst:(Addr.host 4 1) pkt);
    ("Sony VIP (28B)", 28,
     fun pkt ->
       Baselines.Viph.add
         { Baselines.Viph.vip_src = pkt.Packet.src;
           vip_dst = pkt.Packet.dst; hop_count = 0; timestamp = 1 }
         pkt);
    ("Matsushita IPTP (40B)", 40,
     fun pkt ->
       Baselines.Iptp.encap ~outer_src:(Addr.host 2 1)
         ~outer_dst:(Addr.host 4 1) pkt) ]

let fragments_of encap payload =
  List.length (Packet.fragment (encap (udp_packet payload)) ~mtu)

(* largest UDP payload that still travels in one frame *)
let onset encap =
  let rec search lo hi =
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if fragments_of encap mid = 1 then search mid hi else search lo mid
    end
  in
  search 1 2000

let run () =
  heading "E14" "encapsulation overhead vs link MTU (fragmentation onset)";
  let payloads = [1400; 1432; 1440; 1452; 1464; 1472; 1600] in
  let slug name =
    match String.index_opt name ' ' with
    | Some k -> String.lowercase_ascii (String.sub name 0 k)
    | None -> String.lowercase_ascii name
  in
  let rows =
    List.map
      (fun (name, declared, encap) ->
         let proto =
           if String.length name > 5 && String.sub name 0 5 = "MHRP " then
             "mhrp_" ^ slug (String.sub name 5 (String.length name - 5))
           else slug name
         in
         rec_i ~exp:"E14" ~labels:[("protocol", proto)]
           "max_single_frame_payload" (onset encap);
         List.iter
           (fun p ->
              rec_i ~exp:"E14"
                ~labels:[("protocol", proto); ("payload", string_of_int p)]
                "fragments" (fragments_of encap p))
           payloads;
         name :: i declared
         :: i (onset encap)
         :: List.map (fun p -> i (fragments_of encap p)) payloads)
      encapsulations
  in
  table
    ~columns:("protocol" :: "overhead B" :: "max 1-frame payload"
              :: List.map (fun p -> i p ^ "B") payloads)
    rows;
  note
    "each protocol starts fragmenting full-size datagrams exactly its \
     overhead earlier than plain IP (MTU 1500, 28 bytes of IP+UDP \
     headers).  MHRP's small header keeps the widest fragmentation-free \
     window; IPTP's 40 bytes fragments datagrams that every other scheme \
     still carries whole — doubling frames, per-packet processing and \
     loss exposure for MTU-sized traffic."

let experiment =
  Experiment.make ~id:"E14"
    ~title:"encapsulation overhead vs link MTU (fragmentation onset)" run
