(* E16 — large-scale internetwork (Section 7 at production scale).

   The Section 7 comparison (E6) stops at 64 campuses; this experiment
   runs the full 256-campus internetwork (~1030 LANs, ~520 nodes) that
   the fast-path overhaul makes affordable: indexed topology
   registration, one-pass routing graph construction, bulk route-table
   builds and compiled route lookup.  Every mobile moves once and three
   correspondents then send to every mobile — MHRP against the two
   baselines with the starkest contrast, Sony VIP (per-move flooding of
   every router) and Sunshine-Postel (one global database).

   Protocol counters are deterministic and gated exactly; the build /
   route / simulate wall-clock splits are recorded at Info tolerance so
   the perf trajectory accumulates without gating on machine speed. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

let n_campuses = 256

(* Routers occupy backbone host ids 10..(10+255); park the Sunshine
   database well above them on the /16 backbone. *)
let db_host_id = 2000

type outcome = {
  proto : string;
  moves : int;
  flows : int;
  ctrl : int;
  delivered : int;
  central_state : int;  (* bytes at the most-loaded single node *)
  build_s : float;
  route_s : float;
  sim_s : float;
}

let seconds s = Time.of_sec s

(* Moves staggered 10ms apart starting at 1s (256 moves finish by 3.6s),
   sends at 5s, simulated horizon 9s — E6's schedule, compressed. *)
let move_at k = seconds (1.0 +. (0.01 *. float_of_int k))
let send_time = 5.0
let horizon = 9.0

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* --- MHRP --- *)

let run_mhrp n =
  let c, build_s =
    timed (fun () ->
        TGm.campuses ~backbone_prefix_len:16 ~campuses:n
          ~mobiles_per_campus:1 ~correspondents:3 ())
  in
  let topo = c.TGm.c_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let received = ref 0 in
  Array.iter
    (fun m -> Agent.on_app_receive m (fun _ -> incr received))
    c.TGm.c_mobiles;
  Array.iteri
    (fun k m ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo) ~at:(move_at k)
            (fun () ->
               Agent.move_to ~topo m c.TGm.c_cells.((k + 1) mod n))))
    c.TGm.c_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds send_time) (fun () ->
                     Agent.send s
                       (sample_packet ~id ~src:(Agent.address s)
                          ~dst:(Agent.address m) ()))))
         c.TGm.c_mobiles)
    c.TGm.c_senders;
  let (), sim_s =
    timed (fun () -> Topology.run ~until:(seconds horizon) topo)
  in
  let all_agents =
    Array.to_list c.TGm.c_routers @ Array.to_list c.TGm.c_mobiles
    @ Array.to_list c.TGm.c_senders
  in
  let ctrl =
    List.fold_left
      (fun acc a -> acc + (Agent.counters a).Mhrp.Counters.control_messages)
      0 all_agents
  in
  let central_state =
    List.fold_left
      (fun acc a ->
         let ha =
           match Agent.home_agent a with
           | Some h -> Mhrp.Home_agent.state_bytes h
           | None -> 0
         in
         let fa =
           match Agent.foreign_agent a with
           | Some f -> Mhrp.Foreign_agent.state_bytes f
           | None -> 0
         in
         max acc (ha + fa + Mhrp.Location_cache.state_bytes (Agent.cache a)))
      0 all_agents
  in
  { proto = "MHRP"; moves = n; flows = !flows; ctrl;
    delivered = !received; central_state; build_s; route_s = 0.0; sim_s }

(* --- Sunshine-Postel --- *)

let run_sunshine n =
  let c, build_s =
    timed (fun () ->
        TGm.campuses_plain ~backbone_prefix_len:16 ~compute_routes:false
          ~campuses:n ~mobiles_per_campus:1 ~correspondents:3 ())
  in
  let topo = c.TGm.cp_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let db = Topology.add_host topo "DB" c.TGm.cp_backbone db_host_id in
  let (), route_s = timed (fun () -> Topology.compute_routes topo) in
  let sp = Baselines.Sunshine_postel.create topo ~db_node:db in
  let fwds =
    Array.mapi
      (fun k r ->
         Baselines.Sunshine_postel.add_forwarder sp r
           ~lan:c.TGm.cp_cells.(k))
      c.TGm.cp_routers
  in
  Array.iter (Baselines.Sunshine_postel.make_mobile sp) c.TGm.cp_mobiles;
  let received = ref 0 in
  Array.iter
    (fun m ->
       Node.set_proto_handler m Ipv4.Proto.udp (fun _ _ -> incr received))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k m ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo) ~at:(move_at k)
            (fun () ->
               Baselines.Sunshine_postel.move sp m
                 ~forwarder:fwds.((k + 1) mod n)
                 c.TGm.cp_cells.((k + 1) mod n))))
    c.TGm.cp_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds send_time) (fun () ->
                     Baselines.Sunshine_postel.send sp ~src:s
                       (sample_packet ~id ~src:(Node.primary_addr s)
                          ~dst:(Node.primary_addr m) ()))))
         c.TGm.cp_mobiles)
    c.TGm.cp_senders;
  let (), sim_s =
    timed (fun () -> Topology.run ~until:(seconds horizon) topo)
  in
  { proto = "Sunshine-Postel"; moves = n; flows = !flows;
    ctrl = Baselines.Sunshine_postel.control_messages sp;
    delivered = !received;
    central_state = Baselines.Sunshine_postel.db_state_bytes sp;
    build_s; route_s; sim_s }

(* --- Sony VIP --- *)

let run_sony n =
  let c, build_s =
    timed (fun () ->
        TGm.campuses_plain ~backbone_prefix_len:16 ~campuses:n
          ~mobiles_per_campus:1 ~correspondents:3 ())
  in
  let topo = c.TGm.cp_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let sv = Baselines.Sony_vip.create topo in
  Array.iter (Baselines.Sony_vip.add_router sv) c.TGm.cp_routers;
  Array.iteri
    (fun k m ->
       Baselines.Sony_vip.make_host sv m ~home_router:c.TGm.cp_routers.(k))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k s ->
       Baselines.Sony_vip.make_host sv s
         ~home_router:c.TGm.cp_routers.(k mod n))
    c.TGm.cp_senders;
  let received = ref 0 in
  Array.iter
    (fun m -> Baselines.Sony_vip.on_receive sv m (fun _ -> incr received))
    c.TGm.cp_mobiles;
  Array.iteri
    (fun k m ->
       let target = (k + 1) mod n in
       (* exactly one mobile visits each cell, so a fixed temporary host
          id never collides (50 + k would overflow the /24 at k > 205) *)
       let temp =
         Addr.Prefix.host (Net.Lan.prefix c.TGm.cp_cells.(target)) 50
       in
       ignore
         (Netsim.Engine.schedule (Topology.engine topo) ~at:(move_at k)
            (fun () ->
               Baselines.Sony_vip.move sv m ~lan:c.TGm.cp_cells.(target)
                 ~via_router:c.TGm.cp_routers.(target) ~temp)))
    c.TGm.cp_mobiles;
  let flows = ref 0 in
  Array.iter
    (fun s ->
       Array.iter
         (fun m ->
            incr flows;
            let id = !flows in
            ignore
              (Netsim.Engine.schedule (Topology.engine topo)
                 ~at:(seconds send_time) (fun () ->
                     Baselines.Sony_vip.send sv ~src:s
                       (sample_packet ~id ~src:(Node.primary_addr s)
                          ~dst:(Node.primary_addr m) ()))))
         c.TGm.cp_mobiles)
    c.TGm.cp_senders;
  let (), sim_s =
    timed (fun () -> Topology.run ~until:(seconds horizon) topo)
  in
  { proto = "Sony VIP"; moves = n; flows = !flows;
    ctrl = Baselines.Sony_vip.control_messages sv;
    delivered = !received;
    central_state = Baselines.Sony_vip.router_cache_bytes sv / max 1 n;
    build_s; route_s = 0.0; sim_s }

let run () =
  heading "E16"
    (Printf.sprintf "large-scale internetwork: %d campuses" n_campuses);
  let slug proto =
    String.map
      (fun c -> match c with ' ' | '-' -> '_' | c -> Char.lowercase_ascii c)
      proto
  in
  (* Three heavyweight trials — one 256-campus internetwork per
     protocol — sharing nothing, so the domain pool runs them
     concurrently with bit-identical counters. *)
  let rows =
    sweep ~exp:"E16" [run_mhrp; run_sunshine; run_sony]
      ~trial:(fun ctx runner ->
          let o = runner n_campuses in
          let reg = ctx.Parallel.Sweep.registry in
          let labels =
            [("protocol", slug o.proto);
             ("campuses", string_of_int n_campuses)]
          in
          rec_i ~reg ~exp:"E16" ~labels "ctrl_msgs" o.ctrl;
          rec_f ~reg ~exp:"E16" ~labels "ctrl_per_move"
            (float_of_int o.ctrl /. float_of_int o.moves);
          rec_i ~reg ~exp:"E16" ~labels "delivered" o.delivered;
          rec_i ~reg ~exp:"E16" ~labels "hot_node_state_bytes"
            o.central_state;
          (* wall-clock splits: archived, never gated *)
          rec_f ~reg ~exp:"E16" ~labels ~tol:Obs.Metric.Info "build_ms"
            (o.build_s *. 1000.0);
          rec_f ~reg ~exp:"E16" ~labels ~tol:Obs.Metric.Info "route_ms"
            (o.route_s *. 1000.0);
          rec_f ~reg ~exp:"E16" ~labels ~tol:Obs.Metric.Info "sim_ms"
            (o.sim_s *. 1000.0);
          [ o.proto; i n_campuses; i o.moves; i o.flows; i o.ctrl;
            f1 (float_of_int o.ctrl /. float_of_int o.moves); i o.delivered;
            i o.central_state;
            Printf.sprintf "%.0f" (o.build_s *. 1000.0);
            Printf.sprintf "%.0f" (o.sim_s *. 1000.0) ])
  in
  table
    ~columns:["protocol"; "campuses"; "moves"; "flows"; "ctrl msgs";
              "ctrl/move"; "delivered"; "hot-node state B"; "build ms";
              "sim ms"]
    rows;
  note
    "The paper's Section 7 claims at the scale it argues for: at 256 \
     organisations MHRP's ctrl/move stays flat (each move involves two \
     agents plus the mobile's home agent), Sony floods all %d routers per \
     move, and Sunshine-Postel's single database carries every binding in \
     the internetwork."
    n_campuses

let experiment =
  Experiment.make ~id:"E16"
    ~title:"large-scale internetwork (256 campuses, Section 7 at \
            production scale)"
    run
