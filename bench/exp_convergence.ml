(* E4 — cache convergence after movement (Section 6.3): per-packet path
   length of a CBR flow across a mid-flow move, with and without the old
   foreign agent's forwarding pointer.  The "figure" is the hop-count
   series; the table summarises packets-until-optimal. *)

open Exp_util
module TGm = Workload.Topo_gen

let series ~forwarding_pointers =
  let config =
    Mhrp.Config.make ~forwarding_pointers () in
  let env = fig_setup ~config () in
  let net_e, _r5 = add_second_cell env in
  fig_move env 1.0 env.f.TGm.net_d;
  fig_send env 2.0; (* warm S's cache at R4 *)
  fig_move env 3.0 net_e;
  (* 10 packets after the move, 100 ms apart *)
  Workload.Traffic.cbr env.traffic ~src:env.f.TGm.s ~dst:env.m_addr
    ~start:(Netsim.Time.of_sec 3.05) ~interval:(Netsim.Time.of_ms 100)
    ~count:10 ();
  fig_run env;
  let records = List.tl (Workload.Metrics.records env.metrics) in
  List.map
    (fun r ->
       match r.Workload.Metrics.delivered_at with
       | Some _ -> r.Workload.Metrics.hops
       | None -> -1)
    records

(* the converged path length is whatever the tail of the series settles
   to: S -> R1 -> R3 -> R5 -> M *)
let optimal_of hops =
  match List.rev hops with h :: _ -> h | [] -> 0

let packets_until_optimal hops =
  let optimal = optimal_of hops in
  let rec go k = function
    | [] -> k
    | h :: rest -> if h = optimal then k else go (k + 1) rest
  in
  go 0 hops

let run () =
  heading "E4"
    "cache convergence after movement (Section 6.3): hop count series";
  let with_fp = series ~forwarding_pointers:true in
  let without_fp = series ~forwarding_pointers:false in
  let show hops =
    String.concat " "
      (List.map (fun h -> if h < 0 then "x" else string_of_int h) hops)
  in
  note "packet-by-packet LAN hops after the move (x = lost):";
  note "with forwarding pointer:    %s" (show with_fp);
  note "without forwarding pointer: %s" (show without_fp);
  List.iter
    (fun (variant, hops) ->
       let labels = [("variant", variant)] in
       rec_i ~exp:"E4" ~labels "stale_packet_hops" (List.nth hops 0);
       rec_i ~exp:"E4" ~labels "packets_until_optimal"
         (packets_until_optimal hops);
       rec_i ~exp:"E4" ~labels "optimal_hops" (optimal_of hops))
    [("forwarding_pointer", with_fp); ("no_pointer", without_fp)];
  table
    ~columns:["variant"; "stale pkt hops"; "packets until optimal";
              "optimal hops"]
    [ [ "forwarding pointer (Section 2)";
        i (List.nth with_fp 0); i (packets_until_optimal with_fp);
        i (optimal_of with_fp) ];
      [ "no pointer (bounce via home)";
        i (List.nth without_fp 0); i (packets_until_optimal without_fp);
        i (optimal_of without_fp) ] ];
  note
    "the first stale packet takes the longer path (pointer: one extra \
     tunnel; no pointer: chase to the home agent); the location updates \
     it triggers make every later packet optimal."

let experiment =
  Experiment.make ~id:"E4"
    ~title:"cache convergence after movement (Section 6.3): hop count \
            series"
    run
