(* E11 — cache-agent consistency maintenance (Section 5.1): after a move,
   one packet routed through a chain of stale cache agents must trigger
   exactly the update fan-out the paper specifies, leaving every agent on
   the packet's path pointing at the correct foreign agent. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

(* Build a chain of stale agents by hand: k routers each holding the OLD
   foreign agent for M, then route one packet through them after M has
   moved.  The packet accumulates the agents in its previous-source list;
   the correct foreign agent (or home agent) updates them all. *)
let run_case ~stale_agents =
  let env = fig_setup () in
  let net_e, r5 = add_second_cell env in
  ignore r5;
  fig_move env 1.0 env.f.TGm.net_d;
  fig_send env 2.0; (* S learns R4 *)
  fig_move env 3.0 net_e; (* R4 keeps a forwarding pointer to R5 *)
  (* poison a chain of agents (R1 -> R3 -> ... here limited to the
     figure's routers): each believes M is at the NEXT agent, ending at
     the stale R4 *)
  let agents =
    match stale_agents with
    | 1 -> [env.f.TGm.r1]
    | 2 -> [env.f.TGm.r1; env.f.TGm.r3]
    | _ -> [env.f.TGm.r1; env.f.TGm.r3; env.f.TGm.r2]
  in
  fig_at env 3.5 (fun () ->
      let rec chain = function
        | [] -> ()
        | [last] ->
          Mhrp.Location_cache.insert (Agent.cache last)
            ~mobile:env.m_addr ~foreign_agent:(Addr.host 3 2) (* old R4 *)
        | a :: (b :: _ as rest) ->
          Mhrp.Location_cache.insert (Agent.cache a) ~mobile:env.m_addr
            ~foreign_agent:(Agent.address b);
          chain rest
      in
      chain agents;
      (* S itself is stale too: it still points at R4 *)
      Mhrp.Location_cache.insert (Agent.cache env.f.TGm.s)
        ~mobile:env.m_addr ~foreign_agent:(Agent.address (List.hd agents)));
  fig_send env 4.0;
  fig_run env;
  let correct =
    match Agent.mobile env.f.TGm.m with
    | Some mh ->
      (match Mhrp.Mobile_host.current_fa mh with
       | Some fa -> fa
       | None -> Agent.address r5)
    | None -> Agent.address r5
  in
  let now_correct a =
    match Mhrp.Location_cache.peek (Agent.cache a) env.m_addr with
    | Some fa -> Addr.equal fa correct
    | None -> false
  in
  let healed =
    List.length (List.filter now_correct (env.f.TGm.s :: agents))
  in
  let updates =
    List.fold_left
      (fun acc a -> acc + (Agent.counters a).Mhrp.Counters.updates_sent)
      0
      [env.f.TGm.r1; env.f.TGm.r2; env.f.TGm.r3; env.f.TGm.r4; r5]
  in
  let delivered =
    List.exists
      (fun r -> r.Workload.Metrics.delivered_at <> None)
      (List.tl (Workload.Metrics.records env.metrics))
  in
  (healed, List.length agents + 1, updates, delivered)

let run () =
  heading "E11" "cache consistency maintenance fan-out (Section 5.1)";
  let rows =
    List.map
      (fun k ->
         let healed, total, updates, delivered = run_case ~stale_agents:k in
         let labels = [("stale_agents", string_of_int k)] in
         rec_flag ~exp:"E11" ~labels "packet_delivered" delivered;
         rec_i ~exp:"E11" ~labels "caches_healed" healed;
         rec_i ~exp:"E11" ~labels "caches_total" total;
         rec_i ~exp:"E11" ~labels "updates_sent" updates;
         [ i k; (if delivered then "yes" else "NO");
           Printf.sprintf "%d/%d" healed total; i updates ])
      [1; 2; 3]
  in
  table
    ~columns:["stale agents en route"; "packet delivered";
              "caches healed"; "updates sent"]
    rows;
  note
    "every cache agent recorded in the delivered packet's previous-source \
     list receives one location update naming the correct foreign agent \
     (Section 5.1); the single chased packet heals the whole chain."

let experiment =
  Experiment.make ~id:"E11"
    ~title:"cache consistency maintenance fan-out (Section 5.1)" run
