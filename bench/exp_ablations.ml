(* Ablations of DESIGN.md Section 4: the design knobs the paper leaves to
   the implementation, swept to show their effect. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

(* cache capacity vs hit rate: many mobile correspondents, small cache *)
let cache_capacity_run ~capacity =
  let config =
    Mhrp.Config.make ~cache_capacity:capacity ()
  in
  let c =
    TGm.campuses ~config ~campuses:4 ~mobiles_per_campus:4
      ~correspondents:1 ()
  in
  let topo = c.TGm.c_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let s = c.TGm.c_senders.(0) in
  (* all 16 mobiles move to the next campus *)
  Array.iteri
    (fun k m ->
       ignore
         (Netsim.Engine.schedule (Topology.engine topo)
            ~at:(Time.of_sec (1.0 +. (0.02 *. float_of_int k)))
            (fun () ->
               Agent.move_to ~topo m c.TGm.c_cells.((k / 4 + 1) mod 4))))
    c.TGm.c_mobiles;
  (* the sender cycles over all mobiles repeatedly *)
  let id = ref 0 in
  for round = 0 to 7 do
    Array.iteri
      (fun k m ->
         incr id;
         let this = !id in
         ignore
           (Netsim.Engine.schedule (Topology.engine topo)
              ~at:(Time.of_sec
                     (3.0 +. (0.5 *. float_of_int round)
                      +. (0.01 *. float_of_int k)))
              (fun () ->
                 Agent.send s
                   (sample_packet ~id:this ~src:(Agent.address s)
                      ~dst:(Agent.address m) ()))))
      c.TGm.c_mobiles
  done;
  Topology.run ~until:(Time.of_sec 10.0) topo;
  let cache = Agent.cache s in
  let hits = Mhrp.Location_cache.hits cache in
  let misses = Mhrp.Location_cache.misses cache in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  (hit_rate, Mhrp.Location_cache.evictions cache)

(* rate limiting vs update volume toward a non-caching sender *)
let rate_limit_run ~min_interval_ms =
  let config =
    Mhrp.Config.make ~update_min_interval:(Time.of_ms min_interval_ms) ()
  in
  (* snooping off: otherwise R1 starts tunneling for the non-MHRP host
     after the first update (Section 6.2) and the home agent never sees
     the rest of the burst *)
  let env = fig_setup ~config ~snoop_routers:false () in
  fig_move env 1.0 env.f.TGm.net_d;
  (* a plain (non-MHRP) host hammers M: the home agent wants to send it an
     update per intercepted packet *)
  let pn = Topology.add_host env.f.TGm.topo "P" env.f.TGm.net_a 11 in
  Topology.compute_routes env.f.TGm.topo;
  for k = 1 to 20 do
    fig_at env (2.0 +. (0.05 *. float_of_int k)) (fun () ->
        Node.send pn
          (sample_packet ~id:(1000 + k) ~src:(Node.primary_addr pn)
             ~dst:env.m_addr ()))
  done;
  fig_run env;
  let c = Agent.counters env.f.TGm.r2 in
  (c.Mhrp.Counters.updates_sent,
   Mhrp.Rate_limiter.suppressed (Agent.limiter env.f.TGm.r2))

let run () =
  heading "A1" "ablation: cache capacity vs hit rate (16 mobile peers)";
  let rows =
    sweep ~exp:"A" ~labels:[("sweep", "a1")] [2; 4; 8; 16; 32]
      ~trial:(fun ctx cap ->
          let hit_rate, evictions = cache_capacity_run ~capacity:cap in
          let reg = ctx.Parallel.Sweep.registry in
          let labels = [("capacity", string_of_int cap)] in
          rec_f ~reg ~exp:"A" ~labels "hit_rate" hit_rate;
          rec_i ~reg ~exp:"A" ~labels "evictions" evictions;
          [i cap; f2 hit_rate; i evictions])
  in
  table ~columns:["cache entries"; "hit rate"; "evictions"] rows;
  note
    "once the cache holds all 16 correspondent mobiles the hit rate \
     saturates; below that, LRU churn sends packets back through home \
     agents.";

  heading "A2"
    "ablation: location-update rate limiting toward one non-MHRP sender";
  let rows =
    sweep ~exp:"A" ~labels:[("sweep", "a2")] [0; 100; 1000; 5000]
      ~trial:(fun ctx ms ->
          let sent, suppressed = rate_limit_run ~min_interval_ms:ms in
          let reg = ctx.Parallel.Sweep.registry in
          let labels = [("min_interval_ms", string_of_int ms)] in
          rec_i ~reg ~exp:"A" ~labels "updates_sent" sent;
          rec_i ~reg ~exp:"A" ~labels "updates_suppressed" suppressed;
          [i ms; i sent; i suppressed])
  in
  table
    ~columns:["min interval ms"; "updates sent"; "updates suppressed"]
    rows;
  note
    "a host that ignores location updates would otherwise receive one per \
     intercepted packet (Section 4.3's flooding concern); the LRU-timed \
     limiter caps that without touching protocol correctness."

let experiment =
  Experiment.make ~id:"A"
    ~title:"ablations of the implementation-defined knobs (DESIGN.md \
            Section 4)"
    run
