(* Shared helpers for the experiment harness: the experiment descriptor,
   table formatting, metric recording and common scenario plumbing. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

(* The first-class experiment: each [Exp_*] module exports one (or, for
   exp_recovery, two) of these and bench/main.ml just folds the list —
   no inline [(string * run) list], no special-cased id knowledge. *)
module Experiment = struct
  type t = {
    id : string;  (* the id accepted on the command line: "E6", "A", ... *)
    title : string;  (* one line for the usage screen *)
    records_ids : string list;
    (* registry experiment ids [run] records *beyond* [id]: E2 also
       records E9's at-home phase, so a baseline check restricted to a
       run of E2 must include E9 *)
    run : unit -> unit;
  }

  let make ?(records_ids = []) ~id ~title run =
    { id; title; records_ids; run }

  let recorded_ids t = t.id :: t.records_ids
end

let heading id title =
  Format.printf "@.=== %s: %s ===@." id title

let note fmt = Format.printf ("    " ^^ fmt ^^ "@.")

let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
         List.fold_left
           (fun w row -> max w (String.length (List.nth row i)))
           (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Format.printf "  %-*s" (List.nth widths i + 2) cell)
      cells;
    Format.printf "@."
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* Every number an experiment prints is also recorded here, so that
   bench/main.exe --json can dump it and --baseline --check can gate it.
   Counters and gauges default to exact comparison (the simulator is
   deterministic); use [rec_ms]/[~tol:(Pct _)] for timing-derived values.

   [?reg] selects the target registry: serial experiment code keeps the
   process-wide default, while sweep trials MUST pass their private
   [ctx.registry] — recording into the shared one from a worker domain
   is a race. *)
let registry = Obs.Registry.default

let rec_i ?(reg = registry) ~exp ?labels ?tol name v =
  Obs.Registry.counter reg ~exp ?labels ?tol name v

let rec_f ?(reg = registry) ~exp ?labels ?tol name v =
  Obs.Registry.gauge reg ~exp ?labels ?tol name v

let rec_flag ?reg ~exp ?labels name b =
  rec_i ?reg ~exp ?labels name (if b then 1 else 0)

let rec_ms ?(reg = registry) ~exp ?labels name us =
  Obs.Registry.gauge reg ~exp ?labels ~tol:(Obs.Metric.Pct 20.0) name
    (us /. 1000.0)

(* Run a sweep through the multicore runner and archive its wall-clock
   (never gated: Info tolerance, and the jobs label makes the key vary
   with the CLI's --jobs).  Sweep trials get a private registry in
   [ctx]; their metrics land in the default registry in grid order once
   every trial is done. *)
let sweep ~exp ?labels ~trial points =
  Parallel.Sweep.run ~trial points
    ~on_done:(fun s ->
        let labels =
          Option.value labels ~default:[]
          @ [("jobs", string_of_int s.Parallel.Sweep.jobs)]
        in
        rec_f ~exp ~labels ~tol:Obs.Metric.Info "sweep_wall_ms"
          (s.Parallel.Sweep.elapsed_s *. 1000.0))

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let i v = string_of_int v
let ms_of_us us = Printf.sprintf "%.2f" (us /. 1000.0)

(* A standard 64-byte-payload UDP packet, the workloads' unit of traffic. *)
let sample_packet ?(id = 1) ~src ~dst () =
  Ipv4.Packet.make ~id ~proto:Ipv4.Proto.udp ~src ~dst
    (Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:4000 ~dst_port:4000
                        (Bytes.create 64)))

type fig_env = {
  f : TG.figure1;
  metrics : Workload.Metrics.t;
  traffic : Workload.Traffic.t;
  m_addr : Addr.t;
}

let fig_setup ?config ?snoop_routers ?seed () =
  let f = TG.figure1 ?config ?snoop_routers ?seed () in
  Netsim.Trace.set_enabled (Topology.trace f.TG.topo) false;
  let metrics = Workload.Metrics.create f.TG.topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine f.TG.topo) in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  Workload.Metrics.watch_receiver metrics f.TG.s;
  { f; metrics; traffic; m_addr = Agent.address f.TG.m }

let fig_at env sec g = Workload.Traffic.at env.traffic (Time.of_sec sec) g

let fig_send env sec =
  fig_at env sec (fun () ->
      Workload.Traffic.send_udp env.traffic ~src:env.f.TG.s ~dst:env.m_addr
        ())

let fig_move env sec lan =
  Workload.Mobility.move_at env.f.TG.topo env.f.TG.m ~at:(Time.of_sec sec)
    lan

let fig_run ?(until = 20.0) env =
  Topology.run ~until:(Time.of_sec until) env.f.TG.topo

(* Attach a second wireless cell (net E behind R3 via a new router R5),
   used by movement and failure experiments. *)
let add_second_cell env =
  let net_e = Topology.add_lan env.f.TG.topo ~net:5 "netE" in
  let r5n =
    Topology.add_router env.f.TG.topo "R5" [(env.f.TG.net_c, 3); (net_e, 1)]
  in
  Topology.compute_routes env.f.TG.topo;
  let r5 = Agent.create r5n in
  Agent.enable_foreign_agent r5
    ~iface:(Option.get (Node.iface_to r5n (Net.Lan.prefix net_e)));
  (net_e, r5)
