(* E8 — returned ICMP error handling (Section 4.5): the error must travel
   back along the tunnel chain, reversed at each head, to the original
   sender — when routers quote enough of the offending packet.  With the
   RFC 792 minimum quote, the paper concedes, agents can only drop their
   cache entries.  Both behaviours are measured. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

let run_case ~quote_full =
  let f =
    TGm.figure1 ~snoop_routers:false
      ~icmp_quote:(if quote_full then Node.Quote_full else Node.Quote_min)
      ()
  in
  Netsim.Trace.set_enabled (Topology.trace f.TGm.topo) false;
  let metrics = Workload.Metrics.create f.TGm.topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine f.TGm.topo) in
  Workload.Metrics.watch_receiver metrics f.TGm.m;
  let m_addr = Agent.address f.TGm.m in
  let errors_at_sender = ref 0 and reconstructed = ref 0 in
  Agent.on_icmp_error f.TGm.s (fun _ original ->
      incr errors_at_sender;
      match original with
      | Some o when Addr.equal o.Ipv4.Packet.dst m_addr ->
        incr reconstructed
      | _ -> ());
  Workload.Mobility.move_at f.TGm.topo f.TGm.m ~at:(Time.of_sec 1.0)
    f.TGm.net_d;
  (* S learns the location so that it is the tunnel head *)
  Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
      Workload.Traffic.send_udp traffic ~src:f.TGm.s ~dst:m_addr ());
  Workload.Traffic.at traffic (Time.of_sec 3.0) (fun () ->
      Node.update_routes (Agent.node f.TGm.r3) (fun r ->
          Net.Route.remove
            (Net.Route.remove r (Net.Lan.prefix f.TGm.net_c))
            (Net.Lan.prefix f.TGm.net_d)));
  Workload.Traffic.at traffic (Time.of_sec 4.0) (fun () ->
      Workload.Traffic.send_udp traffic ~src:f.TGm.s ~dst:m_addr ());
  Topology.run ~until:(Time.of_sec 10.0) f.TGm.topo;
  let cache_purged =
    Mhrp.Location_cache.peek (Agent.cache f.TGm.s) m_addr = None
  in
  (!errors_at_sender, !reconstructed, cache_purged)

let run () =
  heading "E8" "returned ICMP error handling (Section 4.5)";
  let rows =
    List.map
      (fun quote_full ->
         let errors, reconstructed, purged = run_case ~quote_full in
         let labels =
           [("quote", if quote_full then "full" else "minimum")]
         in
         rec_i ~exp:"E8" ~labels "errors_at_sender" errors;
         rec_i ~exp:"E8" ~labels "original_reconstructed" reconstructed;
         rec_flag ~exp:"E8" ~labels "stale_cache_purged" purged;
         [ (if quote_full then "entire packet (RFC 1122 option)"
            else "IP header + 8 bytes (RFC 792 minimum)");
           i errors; i reconstructed;
           (if purged then "yes" else "NO") ])
      [true; false]
  in
  table
    ~columns:["error quotes"; "errors at sender"; "original reconstructed";
              "stale cache purged"]
    rows;
  note
    "full quote: the error arrives at the original sender with its \
     pre-tunnel packet reconstructed, after each tunnel head reversed its \
     own transformation.  minimum quote: the paper's fallback — the \
     tunnel head can only delete its cache entry, so the sender's next \
     packet takes a fresh path."

let experiment =
  Experiment.make ~id:"E8"
    ~title:"returned ICMP error handling (Section 4.5)" run
