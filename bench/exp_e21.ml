(* E21 — application SLOs over the connection-oriented transport.

   Hundreds of concurrent socket flows — request/response RPC, chat-room
   fan-out through a relay, and long bulk transfers — run over a 4-region
   internetwork while every mobile hops cells (and some hop regions)
   mid-traffic, in flat and hierarchical MHRP, with and without an
   E17-style fault schedule (control loss plus a foreign-agent crash).
   Measured per sweep point: goodput, hand-off-induced stall time,
   retransmission counts, and p50/p95/p99 completion latency, plus the
   exact transport counters.  All application traffic goes through
   [Transport.Socket]; nothing here touches a raw segment. *)

open Exp_util
module TGm = Workload.Topo_gen
module Apps = Workload.Apps
module Time = Netsim.Time
module Stack = Transport.Stack
module Samples = Netsim.Stats.Samples

let config ~hier =
  Mhrp.Config.make ~hierarchy:hier ~reliable_control:true
    ~control_rto:(Time.of_ms 300) ~control_retries:5 ()

(* Scenario shape: 4 regions x 2 cells, 12 mobiles per region, 48
   correspondents -> 96 RPC + 48 bulk + 48 chat connections. *)
let regions = 4
let cells = 2
let mobiles_per_region = 12
let n_mobiles = regions * mobiles_per_region
let n_senders = 48
let rpc_per_mobile = 2
let rpc_count = 10
let bulk_bytes = 32768
let chat_says = 3

let fault_schedule =
  [ Fault.Schedule.Control_loss
      { rate = 0.25; from_ = Time.of_sec 4.0; until = Time.of_sec 14.0 };
    Fault.Schedule.Crash
      { node = "F1_0"; at = Time.of_sec 8.0; duration = Time.of_sec 1.5 } ]

type outcome = {
  conns : int;
  established : int;
  closed : int;
  failed : int;
  segs : int;
  rtx : int;
  dups : int;
  ooo : int;
  data_bytes : int;
  rpc_expected : int;
  rpc_ok : int;
  rpc_lat : float list;
  bulk_total : int;
  bulk_done : int;
  bulk_intact : bool;
  bulk_lat : float list;
  goodput_kbps : float list;
  stall_max_us : int;
  chat_expected : int;
  chat_ok : int;
  chat_lat : float list;
  regional_regs : int;
  ttl_expired : int;
}

let run_point ~hier ~faults =
  let g =
    TGm.regions ~config:(config ~hier) ~seed:11 ~regions ~cells
      ~mobiles_per_region ~correspondents:n_senders ()
  in
  let topo = g.TGm.rg_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let inv = Fault.Invariant.watch topo in
  if faults then begin
    let inj = Fault.Injector.create ~seed:4242 topo in
    Fault.Injector.inject inj fault_schedule
  end;
  let m_stacks = Array.map Stack.create g.TGm.rg_mobiles in
  let s_stacks = Array.map Stack.create g.TGm.rg_senders in
  (* RPC: every mobile is a server; two correspondents call it with one
     request per second, so the request train spans the hand-off wave. *)
  Array.iter
    (fun st -> Apps.Rpc.serve st ~port:80 ~req_bytes:64 ~resp_bytes:256)
    m_stacks;
  let rpcs =
    List.concat
      (List.init n_mobiles (fun im ->
           List.init rpc_per_mobile (fun k ->
               let is = (im + (k * 17)) mod n_senders in
               Apps.Rpc.start ~client:s_stacks.(is)
                 ~server:(Stack.address m_stacks.(im))
                 ~port:80 ~req_bytes:64 ~resp_bytes:256
                 ~start:(Time.of_sec (2.0 +. (0.01 *. float_of_int im)))
                 ~interval:(Time.of_sec 1.0) ~count:rpc_count ())))
  in
  (* Bulk: every mobile pulls a long transfer from a correspondent,
     timed so most are mid-stream when their mobile changes cells. *)
  Array.iter
    (fun st -> Apps.Bulk.serve st ~port:8080 ~bytes:bulk_bytes)
    s_stacks;
  let bulks =
    List.init n_mobiles (fun im ->
        Apps.Bulk.fetch m_stacks.(im)
          ~server:(Stack.address s_stacks.((im + 5) mod n_senders))
          ~port:8080 ~bytes:bulk_bytes
          ~at:(Time.of_sec (5.0 +. (0.15 *. float_of_int im)))
          ())
  in
  (* Chat: one room per region, hosted on a stationary correspondent;
     the region's mobiles join and everyone speaks a few times. *)
  let _rooms =
    List.init regions (fun r ->
        Apps.Chat.room s_stacks.(r * mobiles_per_region / 2) ~port:9000
          ~msg_bytes:64)
  in
  let members =
    List.init n_mobiles (fun im ->
        let r = im / mobiles_per_region in
        let m =
          Apps.Chat.join m_stacks.(im)
            ~server:(Stack.address s_stacks.(r * mobiles_per_region / 2))
            ~port:9000 ~msg_bytes:64
            ~at:(Time.of_sec (1.5 +. (0.02 *. float_of_int im)))
            ()
        in
        for k = 0 to chat_says - 1 do
          Apps.Chat.say m
            ~at:
              (Time.of_sec
                 (5.0
                 +. (0.1 *. float_of_int im)
                 +. (2.0 *. float_of_int k)))
        done;
        m)
  in
  (* Mobility: everyone leaves home for a cell, hops to the other cell
     mid-traffic, and every fourth mobile crosses into the next region. *)
  Array.iteri
    (fun im m ->
      let r = im / mobiles_per_region and j = im mod mobiles_per_region in
      let cell c = g.TGm.rg_cells.(r).(c) in
      Workload.Mobility.move_at topo m
        ~at:(Time.of_sec (1.0 +. (0.05 *. float_of_int im)))
        (cell (j mod cells));
      Workload.Mobility.move_at topo m
        ~at:(Time.of_sec (7.0 +. (0.1 *. float_of_int im)))
        (cell ((j + 1) mod cells));
      if j mod 4 = 0 then
        Workload.Mobility.move_at topo m
          ~at:(Time.of_sec (11.0 +. (0.1 *. float_of_int im)))
          g.TGm.rg_cells.((r + 1) mod regions).(0))
    g.TGm.rg_mobiles;
  Topology.run ~until:(Time.of_sec 30.0) topo;
  (* aggregate transport counters over every stack *)
  let total = Transport.Counters.create () in
  Array.iter
    (fun st -> Transport.Counters.add ~into:total (Stack.counters st))
    m_stacks;
  Array.iter
    (fun st -> Transport.Counters.add ~into:total (Stack.counters st))
    s_stacks;
  let rpc_ok = List.fold_left (fun a c -> a + Apps.Rpc.responses c) 0 rpcs in
  let rpc_lat = List.concat_map Apps.Rpc.latencies_us rpcs in
  let bulk_done = List.length (List.filter Apps.Bulk.complete bulks) in
  let bulk_intact =
    List.for_all (fun b -> not (Apps.Bulk.complete b) || Apps.Bulk.intact b)
      bulks
  in
  let bulk_lat =
    List.filter_map
      (fun b -> Option.map float_of_int (Apps.Bulk.completion_us b))
      bulks
  in
  let goodput_kbps = List.filter_map Apps.Bulk.goodput_kbps bulks in
  let stall_max_us =
    List.fold_left (fun a b -> max a (Apps.Bulk.max_stall_us b)) 0 bulks
  in
  let chat_ok =
    List.fold_left (fun a m -> a + Apps.Chat.received m) 0 members
  in
  let chat_lat = List.concat_map Apps.Chat.latencies_us members in
  let regional_regs =
    Array.fold_left
      (fun acc a ->
        match Mhrp.Agent.regional_agent a with
        | Some r -> acc + Mhrp.Regional.registrations r
        | None -> acc)
      0 g.TGm.rg_regionals
  in
  { conns = total.Transport.Counters.conns_opened;
    established = total.Transport.Counters.conns_established;
    closed = total.Transport.Counters.conns_closed;
    failed = total.Transport.Counters.conns_failed;
    segs = total.Transport.Counters.segs_sent;
    rtx = total.Transport.Counters.retransmissions;
    dups = total.Transport.Counters.duplicates;
    ooo = total.Transport.Counters.out_of_order;
    data_bytes = total.Transport.Counters.data_bytes_received;
    rpc_expected = n_mobiles * rpc_per_mobile * rpc_count;
    rpc_ok;
    rpc_lat;
    bulk_total = n_mobiles;
    bulk_done;
    bulk_intact;
    bulk_lat;
    goodput_kbps;
    stall_max_us;
    chat_expected =
      regions
      * (mobiles_per_region * chat_says * (mobiles_per_region - 1));
    chat_ok;
    chat_lat;
    regional_regs;
    ttl_expired = Fault.Invariant.ttl_expired inv }

let pct samples p =
  if List.length samples = 0 then 0.0
  else begin
    let s = Samples.create () in
    List.iter (Samples.add s) samples;
    Samples.percentile s p
  end

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let record ~reg ~labels o =
  let ri = rec_i ~reg ~exp:"E21" ~labels in
  let rms = rec_ms ~reg ~exp:"E21" ~labels in
  ri "conns_opened" o.conns;
  ri "conns_established" o.established;
  ri "conns_closed" o.closed;
  ri "conns_failed" o.failed;
  ri "segments_sent" o.segs;
  ri "retransmissions" o.rtx;
  ri "duplicate_segments" o.dups;
  ri "out_of_order_segments" o.ooo;
  ri "data_bytes_delivered" o.data_bytes;
  ri "rpc_responses" o.rpc_ok;
  ri "regional_registrations" o.regional_regs;
  ri "bulk_completed" o.bulk_done;
  ri "chat_delivered" o.chat_ok;
  rms "rpc_p50_ms" (pct o.rpc_lat 50.0);
  rms "rpc_p95_ms" (pct o.rpc_lat 95.0);
  rms "rpc_p99_ms" (pct o.rpc_lat 99.0);
  rms "bulk_p50_ms" (pct o.bulk_lat 50.0);
  rms "bulk_p95_ms" (pct o.bulk_lat 95.0);
  rms "bulk_p99_ms" (pct o.bulk_lat 99.0);
  rms "chat_p99_ms" (pct o.chat_lat 99.0);
  rms "stall_max_ms" (float_of_int o.stall_max_us);
  rec_f ~reg ~exp:"E21" ~labels ~tol:(Obs.Metric.Pct 20.0)
    "goodput_kbps_mean" (mean o.goodput_kbps)

let onoff b = if b then "on" else "off"

type point = Grid of { hier : bool; faults : bool } | Det

let points =
  List.concat_map
    (fun hier -> List.map (fun faults -> Grid { hier; faults }) [false; true])
    [false; true]
  @ [Det; Det]

let run () =
  heading "E21"
    "application SLOs over the socket transport (mobility + faults)";
  let outcomes =
    sweep ~exp:"E21" points ~trial:(fun ctx point ->
        let reg = ctx.Parallel.Sweep.registry in
        match point with
        | Grid { hier; faults } ->
          let o = run_point ~hier ~faults in
          record ~reg
            ~labels:
              [ ("mode", if hier then "hier" else "flat");
                ("faults", onoff faults) ]
            o;
          o
        | Det -> run_point ~hier:true ~faults:true)
  in
  let swept, det =
    List.partition (fun (p, _) -> p <> Det) (List.combine points outcomes)
  in
  table
    ~columns:
      [ "mode"; "faults"; "conns"; "est"; "rtx"; "rpc ok"; "rpc p99";
        "bulk"; "goodput"; "stall max"; "chat ok" ]
    (List.filter_map
       (function
         | Grid { hier; faults }, o ->
           Some
             [ (if hier then "hier" else "flat"); onoff faults; i o.conns;
               i o.established; i o.rtx;
               Printf.sprintf "%d/%d" o.rpc_ok o.rpc_expected;
               ms_of_us (pct o.rpc_lat 99.0);
               Printf.sprintf "%d/%d" o.bulk_done o.bulk_total;
               f1 (mean o.goodput_kbps) ^ " kbps";
               ms_of_us (float_of_int o.stall_max_us);
               Printf.sprintf "%d/%d" o.chat_ok o.chat_expected ]
         | Det, _ -> None)
       swept);
  (* campaign invariants *)
  let fault_free_ok =
    List.for_all
      (fun (p, o) ->
        match p with
        | Grid { faults = false; _ } ->
          o.rpc_ok = o.rpc_expected
          && o.bulk_done = o.bulk_total
          && o.chat_ok = o.chat_expected
        | _ -> true)
      swept
  in
  let intact_ok = List.for_all (fun (_, o) -> o.bulk_intact) swept in
  let ttl_total =
    List.fold_left (fun acc (_, o) -> acc + o.ttl_expired) 0 swept
  in
  let a, b =
    match det with [ (_, a); (_, b) ] -> (a, b) | _ -> assert false
  in
  let deterministic =
    a.segs = b.segs && a.rtx = b.rtx && a.rpc_ok = b.rpc_ok
    && a.bulk_done = b.bulk_done && a.chat_ok = b.chat_ok
    && a.stall_max_us = b.stall_max_us
    && a.data_bytes = b.data_bytes
  in
  rec_flag ~exp:"E21" "all_delivered_without_faults" fault_free_ok;
  rec_flag ~exp:"E21" "bulk_transfers_intact" intact_ok;
  rec_flag ~exp:"E21" "no_forwarding_loops" (ttl_total = 0);
  rec_flag ~exp:"E21" "deterministic" deterministic;
  note "fault-free points delivered every request/transfer/message: %s"
    (if fault_free_ok then "yes" else "VIOLATED");
  note "every completed bulk transfer byte-intact: %s"
    (if intact_ok then "yes" else "VIOLATED");
  note "forwarding-loop invariant: %d ttl-expired drops" ttl_total;
  note "replay determinism (same seeds, twice): %s"
    (if deterministic then "identical" else "DIVERGED");
  List.iter
    (fun (p, o) ->
      match p with
      | Grid { hier = true; faults } ->
        note "hier/faults-%s regional registrations: %d (hierarchy engaged)"
          (onoff faults) o.regional_regs
      | _ -> ())
    swept

let experiment =
  Experiment.make ~id:"E21"
    ~title:"application SLOs over the socket transport (mobility + faults)"
    run
