(* E7 — foreign-agent reboot recovery (Section 5.2), and
   E12 — reachability through forwarding pointers while the home agent is
   unreachable (Section 2).  The two share this module's scenario plumbing
   but are separate experiments: [run] is E7, [run_e12] is E12, each
   registered under its own id in bench/main.ml. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

let run_e7 ~verify =
  let config =
    Mhrp.Config.make ~verify_recovered_visitors:verify ()
  in
  let env = fig_setup ~config () in
  fig_move env 1.0 env.f.TGm.net_d;
  fig_send env 2.0;
  fig_at env 3.0 (fun () -> Node.reboot (Agent.node env.f.TGm.r4));
  (* CBR across the reboot: count losses and time to first delivery *)
  Workload.Traffic.cbr env.traffic ~src:env.f.TGm.s ~dst:env.m_addr
    ~start:(Time.of_sec 3.01) ~interval:(Time.of_ms 50) ~count:40 ();
  fig_run env;
  let records = List.tl (Workload.Metrics.records env.metrics) in
  let lost =
    List.length
      (List.filter (fun r -> r.Workload.Metrics.delivered_at = None) records)
  in
  let recovery_us =
    List.fold_left
      (fun acc r ->
         match r.Workload.Metrics.delivered_at, acc with
         | Some at, None
           when Time.(r.Workload.Metrics.sent_at >= Time.of_sec 3.0) ->
           Some (Time.to_us at - 3_000_000)
         | _ -> acc)
      None records
  in
  (lost, recovery_us,
   (Agent.counters env.f.TGm.r4).Mhrp.Counters.recoveries)

let run_e12 ~forwarding_pointers =
  let config =
    Mhrp.Config.make ~forwarding_pointers () in
  let env = fig_setup ~config () in
  let net_e, _r5 = add_second_cell env in
  fig_move env 1.0 env.f.TGm.net_d;
  fig_send env 2.0; (* S caches R4 *)
  (* home agent becomes unreachable; M keeps moving *)
  fig_at env 3.0 (fun () -> Node.set_up (Agent.node env.f.TGm.r2) false);
  fig_move env 3.5 net_e;
  Workload.Traffic.cbr env.traffic ~src:env.f.TGm.s ~dst:env.m_addr
    ~start:(Time.of_sec 4.0) ~interval:(Time.of_ms 100) ~count:10 ();
  fig_run env;
  let records = List.tl (Workload.Metrics.records env.metrics) in
  List.length
    (List.filter (fun r -> r.Workload.Metrics.delivered_at <> None) records)

let run () =
  heading "E7" "foreign-agent reboot recovery (Section 5.2)";
  let rows =
    List.map
      (fun verify ->
         let lost, recovery, recoveries = run_e7 ~verify in
         let labels =
           [("mode", if verify then "verify_visitor" else "trust_ha")]
         in
         rec_i ~exp:"E7" ~labels "packets_lost" lost;
         rec_flag ~exp:"E7" ~labels "recovered" (recovery <> None);
         (match recovery with
          | Some us -> rec_ms ~exp:"E7" ~labels "recovery_ms" (float_of_int us)
          | None -> ());
         rec_i ~exp:"E7" ~labels "visitors_readded" recoveries;
         [ (if verify then "verify visitor first" else "trust home agent");
           i lost;
           (match recovery with
            | Some us -> ms_of_us (float_of_int us)
            | None -> "never");
           i recoveries ])
      [false; true]
  in
  table
    ~columns:["recovery mode"; "packets lost"; "reachable again after ms";
              "visitors re-added"]
    rows;
  note
    "after the reboot the first tunneled packet bounces to the home \
     agent, which recognises the rebooted agent as the registered one and \
     updates it; the agent re-adds the visitor (optionally after an ARP \
     presence check) and service resumes."

let run_e12 () =
  heading "E12" "reachability while the home agent is down (Section 2)";
  let with_fp = run_e12 ~forwarding_pointers:true in
  let without_fp = run_e12 ~forwarding_pointers:false in
  rec_i ~exp:"E12" ~labels:[("pointer", "enabled")] "delivered_of_10"
    with_fp;
  rec_i ~exp:"E12" ~labels:[("pointer", "disabled")] "delivered_of_10"
    without_fp;
  table
    ~columns:["old-FA forwarding pointer"; "delivered of 10"]
    [ ["enabled"; i with_fp]; ["disabled"; i without_fp] ];
  note
    "with the pointer, stale tunnels are redirected by the old foreign \
     agent without touching the (dead) home agent; without it they chase \
     to the home network and die."

let experiment =
  Experiment.make ~id:"E7"
    ~title:"foreign-agent reboot recovery (Section 5.2)" run

let experiment_e12 =
  Experiment.make ~id:"E12"
    ~title:"reachability while the home agent is down (Section 2)" run_e12
