(* E1 — Section 7's per-packet overhead comparison, measured from the real
   serializers on a 64-byte UDP payload.

   Paper's figures: MHRP 8 (sender-built) / 12 (agent-built) bytes, +4 per
   re-tunnel; Columbia IPIP 24; Sony VIP 28 (every packet); Matsushita
   IPTP 40; IBM LSRR 8 to the mobile host plus 8 from it. *)

open Exp_util
module Packet = Ipv4.Packet

let run () =
  heading "E1" "per-packet encapsulation overhead (Section 7)";
  let src = Addr.host 1 10 and dst = Addr.host 2 10 in
  let fa = Addr.host 4 1 and agent = Addr.host 2 1 in
  let pkt = sample_packet ~src ~dst () in
  let base = Packet.total_length pkt in
  let over p = Packet.total_length p - base in
  let mhrp_sender = Mhrp.Encap.tunnel_by_sender ~foreign_agent:fa pkt in
  let mhrp_agent = Mhrp.Encap.tunnel_by_agent ~agent ~foreign_agent:fa pkt in
  let mhrp_retunneled =
    match
      Mhrp.Encap.retunnel ~max_prev_sources:8 ~me:fa
        ~new_dst:(Addr.host 5 1) mhrp_agent
    with
    | Some (Mhrp.Encap.Retunneled p) -> p
    | _ -> failwith "retunnel"
  in
  let ipip =
    Baselines.Ipip.encap ~outer_src:agent ~outer_dst:fa pkt
  in
  let vip =
    Baselines.Viph.add
      { Baselines.Viph.vip_src = src; vip_dst = dst; hop_count = 0;
        timestamp = 1 }
      pkt
  in
  let iptp = Baselines.Iptp.encap ~outer_src:agent ~outer_dst:fa pkt in
  let lsrr =
    { pkt with Packet.options = [Ipv4.Ip_option.lsrr [fa]] }
  in
  let mechanisms =
    [ ("mhrp_sender", over mhrp_sender);
      ("mhrp_agent", over mhrp_agent);
      ("mhrp_retunneled", over mhrp_retunneled);
      ("columbia_ipip", over ipip);
      ("sony_vip", over vip);
      ("matsushita_iptp", over iptp);
      ("ibm_lsrr", over lsrr) ]
  in
  List.iter
    (fun (proto, bytes) ->
       rec_i ~exp:"E1" ~labels:[("protocol", proto)] "added_bytes" bytes)
    mechanisms;
  rec_i ~exp:"E1" "base_packet_bytes" base;
  table
    ~columns:["protocol"; "mechanism"; "added bytes"; "paper says"]
    [ ["MHRP"; "sender-built tunnel (4.1)"; i (over mhrp_sender); "8"];
      ["MHRP"; "agent-built tunnel (4.1)"; i (over mhrp_agent); "12"];
      ["MHRP"; "after one re-tunnel (4.4)"; i (over mhrp_retunneled);
       "12+4"];
      ["Columbia"; "IP-within-IP"; i (over ipip); "24"];
      ["Sony VIP"; "VIP header (every packet)"; i (over vip); "28"];
      ["Matsushita"; "IPTP tunnel"; i (over iptp); "40"];
      ["IBM"; "LSRR option (each way)"; i (over lsrr); "8 (+8 reverse)"] ];
  note "MHRP at home: 0 bytes (no mechanism engaged at all, E9).";
  note "base packet: %d bytes (20 IP + 8 UDP + 64 payload)" base

let experiment =
  Experiment.make ~id:"E1"
    ~title:"per-packet encapsulation overhead (Section 7)" run
