(* E3 — the Figure 3 wire format: sizes for each previous-source list
   length, round-trip integrity, and the Section 4.4 truncation rule. *)

open Exp_util
module Header = Mhrp.Mhrp_header

let run () =
  heading "E3" "MHRP header wire format (Figure 3)";
  let transport = Bytes.create 8 in
  let rows =
    List.map
      (fun n ->
         let sources = List.init n (fun k -> Addr.host 9 (k + 1)) in
         let h =
           Header.make ~prev_sources:sources ~orig_proto:Ipv4.Proto.tcp
             ~mobile:(Addr.host 2 10) ()
         in
         let encoded = Header.encode h transport in
         let decoded, _ = Header.decode encoded in
         let labels = [("prev_sources", string_of_int n)] in
         rec_i ~exp:"E3" ~labels "header_bytes" (Header.length h);
         rec_flag ~exp:"E3" ~labels "roundtrip_ok" (Header.equal h decoded);
         [ i n;
           i (Header.length h);
           i (8 + (4 * n));
           (if Header.equal h decoded then "yes" else "NO") ])
      [0; 1; 2; 4; 8; 16]
  in
  table ~columns:["prev sources"; "header bytes"; "8+4n"; "roundtrip"]
    rows;
  (* truncation *)
  let h =
    Header.make
      ~prev_sources:(List.init 8 (fun k -> Addr.host 9 (k + 1)))
      ~orig_proto:Ipv4.Proto.udp ~mobile:(Addr.host 2 10) ()
  in
  (match Header.append_source_max ~max:8 h (Addr.host 9 99) with
   | `Full ->
     let t = Header.truncate h (Addr.host 9 99) in
     rec_i ~exp:"E3" "truncation_before_bytes" (Header.length h);
     rec_i ~exp:"E3" "truncation_after_bytes" (Header.length t);
     note
       "truncation at max=8: list reset to 1 entry (%d -> %d bytes), 8 \
        stale agents owed a location update (Section 4.4)"
       (Header.length h) (Header.length t)
   | `Ok _ -> note "ERROR: expected the list to be full")

let experiment =
  Experiment.make ~id:"E3" ~title:"MHRP header wire format (Figure 3)" run
