(* The experiment harness: regenerates every table and figure in
   EXPERIMENTS.md (see DESIGN.md Section 3 for the experiment index), then
   runs the bechamel micro-benchmarks.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- E5
   Skip micro-benches:    dune exec bench/main.exe -- tables *)

let experiments =
  [ ("E1", Exp_overhead.run);
    ("E2", Exp_figure1.run);
    ("E3", Exp_header.run);
    ("E4", Exp_convergence.run);
    ("E5", Exp_loops.run);
    ("E6", Exp_scalability.run);
    ("E7", Exp_recovery.run);  (* also prints E12 *)
    ("E8", Exp_icmp.run);
    ("E10", Exp_lsrr.run);
    ("E11", Exp_consistency.run);
    ("E13", Exp_replication.run);
    ("E14", Exp_fragmentation.run);
    ("E15", Exp_security.run);
    ("A", Exp_ablations.run) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
    Format.printf
      "MHRP experiment harness — reproducing the paper's tables and \
       figures@.";
    List.iter (fun (_, run) -> run ()) experiments;
    Micro.run ()
  | ["tables"] -> List.iter (fun (_, run) -> run ()) experiments
  | ["micro"] -> Micro.run ()
  | ids ->
    List.iter
      (fun id ->
         match List.assoc_opt id experiments with
         | Some run -> run ()
         | None ->
           Format.eprintf "unknown experiment %s (known: %s, tables, micro)@."
             id
             (String.concat ", " (List.map fst experiments));
           exit 1)
      ids
