(* The experiment harness: regenerates every table and figure in
   EXPERIMENTS.md (see DESIGN.md Section 3 for the experiment index) and
   the bechamel micro-benchmarks, recording every reported number into the
   Obs registry alongside the pretty-printed tables.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- E5
   All incl. micro:       dune exec bench/main.exe -- tables
   Dump metrics JSON:     dune exec bench/main.exe -- tables --json out.json
   Regression gate:       dune exec bench/main.exe -- tables \
                            --baseline bench/baselines.json --check

   The JSON schema ({schema_version, commit, experiments: {E1..E15, A,
   micro}}) and the baseline workflow are documented in README.md and
   DESIGN.md. *)

let experiments =
  [ ("E1", Exp_overhead.run);
    ("E2", Exp_figure1.run);  (* also records E9's at-home metrics *)
    ("E3", Exp_header.run);
    ("E4", Exp_convergence.run);
    ("E5", Exp_loops.run);
    ("E6", Exp_scalability.run);
    ("E7", Exp_recovery.run);
    ("E8", Exp_icmp.run);
    ("E10", Exp_lsrr.run);
    ("E11", Exp_consistency.run);
    ("E12", Exp_recovery.run_e12);
    ("E13", Exp_replication.run);
    ("E14", Exp_fragmentation.run);
    ("E15", Exp_security.run);
    ("E16", Exp_scale.run);
    ("E17", Exp_faults.run);
    ("A", Exp_ablations.run);
    ("micro", Micro.run) ]

let all_ids = List.map fst experiments

(* E2 records its at-home phase under the separate id E9, so a run of E2
   legitimately produces both keys; the subset check must know that. *)
let recorded_ids ids = if List.mem "E2" ids then "E9" :: ids else ids

let commit () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha -> sha
  | None ->
    let read path =
      try Some (String.trim (In_channel.with_open_bin path In_channel.input_all))
      with Sys_error _ -> None
    in
    (match read ".git/HEAD" with
     | Some head when String.length head > 5
                   && String.sub head 0 5 = "ref: " ->
       let r = String.sub head 5 (String.length head - 5) in
       Option.value ~default:head (read (Filename.concat ".git" r))
     | Some head -> head
     | None -> "unknown")

let usage () =
  Format.eprintf
    "usage: main.exe [IDS|tables|micro] [--json FILE] [--baseline FILE] \
     [--check]@.known ids: %s@."
    (String.concat ", " all_ids);
  exit 1

type opts = {
  ids : string list;  (* in run order; empty means everything *)
  json_out : string option;
  baseline : string option;
  check : bool;
}

let parse_args args =
  let rec go acc = function
    | [] -> acc
    | "--json" :: file :: rest -> go { acc with json_out = Some file } rest
    | "--baseline" :: file :: rest ->
      go { acc with baseline = Some file } rest
    | "--check" :: rest -> go { acc with check = true } rest
    | ("--json" | "--baseline") :: [] ->
      Format.eprintf "missing file argument@.";
      usage ()
    | "tables" :: rest -> go { acc with ids = acc.ids @ all_ids } rest
    | id :: rest when List.mem_assoc id experiments ->
      go { acc with ids = acc.ids @ [id] } rest
    | id :: _ ->
      Format.eprintf "unknown experiment %s (known: %s, tables)@." id
        (String.concat ", " all_ids);
      exit 1
  in
  go { ids = []; json_out = None; baseline = None; check = false } args

let () =
  let opts = parse_args (List.tl (Array.to_list Sys.argv)) in
  let ids =
    match opts.ids with
    | [] ->
      Format.printf
        "MHRP experiment harness — reproducing the paper's tables and \
         figures@.";
      all_ids
    | ids ->
      (* run in the canonical order, deduplicated *)
      List.filter (fun id -> List.mem id ids) all_ids
  in
  List.iter (fun id -> (List.assoc id experiments) ()) ids;
  let registry = Obs.Registry.default in
  (match opts.json_out with
   | None -> ()
   | Some file ->
     let json = Obs.Registry.to_json registry ~commit:(commit ()) in
     Out_channel.with_open_bin file (fun oc ->
         Out_channel.output_string oc (Obs.Json.to_string ~pretty:true json);
         Out_channel.output_char oc '\n');
     Format.printf "@.wrote %s (%d experiments)@." file
       (List.length (Obs.Registry.experiments registry)));
  match opts.baseline with
  | None ->
    if opts.check then begin
      Format.eprintf "--check needs --baseline FILE@.";
      exit 1
    end
  | Some file ->
    (match Obs.Baseline.load_file file with
     | Error e ->
       Format.eprintf "cannot load baseline: %s@." e;
       exit 1
     | Ok baseline ->
       let only =
         if ids = all_ids then None else Some (recorded_ids ids)
       in
       let report =
         Obs.Baseline.compare ?only ~baseline ~current:registry ()
       in
       Format.printf "@.%a@." Obs.Baseline.pp_report report;
       if opts.check && report.Obs.Baseline.drifts <> [] then exit 1)
