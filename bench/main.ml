(* The experiment harness: regenerates every table and figure in
   EXPERIMENTS.md (see DESIGN.md Section 3 for the experiment index) and
   the bechamel micro-benchmarks, recording every reported number into the
   Obs registry alongside the pretty-printed tables.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- E5
   All incl. micro:       dune exec bench/main.exe -- tables
   Parallel sweeps:       dune exec bench/main.exe -- tables --jobs 4
   Dump metrics JSON:     dune exec bench/main.exe -- tables --json out.json
   Regression gate:       dune exec bench/main.exe -- tables \
                            --baseline bench/baselines.json --check

   Each experiment is an [Exp_util.Experiment.t] descriptor exported by
   its module; this file only folds the list.  The heavy sweeps (E6, E16,
   E17, A) fan their independent trials out over a domain pool sized by
   --jobs (default: the machine's recommended domain count); results are
   bit-identical whatever the job count, so --jobs only moves wall-clock.

   The JSON schema ({schema_version, commit, experiments: {E1..E18, A,
   micro}}) and the baseline workflow are documented in README.md and
   DESIGN.md.  --no-info drops Info-tolerance metrics (wall-clock
   readings) from the dump, making dumps from different machines or job
   counts byte-comparable — CI's serial-vs-parallel equivalence check
   diffs exactly those. *)

module Experiment = Exp_util.Experiment

let experiments : Experiment.t list =
  [ Exp_overhead.experiment;
    Exp_figure1.experiment;
    Exp_header.experiment;
    Exp_convergence.experiment;
    Exp_loops.experiment;
    Exp_scalability.experiment;
    Exp_recovery.experiment;
    Exp_icmp.experiment;
    Exp_lsrr.experiment;
    Exp_consistency.experiment;
    Exp_recovery.experiment_e12;
    Exp_replication.experiment;
    Exp_fragmentation.experiment;
    Exp_security.experiment;
    Exp_scale.experiment;
    Exp_faults.experiment;
    Exp_ablations.experiment;
    Exp_lsr.experiment;
    Exp_alloc.experiment;
    Exp_e19.experiment;
    Exp_e20.experiment;
    Exp_e21.experiment;
    Micro.experiment ]

let all_ids = List.map (fun e -> e.Experiment.id) experiments

let find_experiment id =
  List.find_opt (fun e -> e.Experiment.id = id) experiments

(* Registry experiment ids a run of [ids] legitimately produces: each
   experiment's own id plus whatever else its descriptor declares it
   records (E2 also records E9's at-home phase). *)
let recorded_ids ids =
  List.concat_map
    (fun id ->
       match find_experiment id with
       | Some e -> Experiment.recorded_ids e
       | None -> [id])
    ids

let commit () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha -> sha
  | None ->
    let read path =
      try Some (String.trim (In_channel.with_open_bin path In_channel.input_all))
      with Sys_error _ -> None
    in
    (match read ".git/HEAD" with
     | Some head when String.length head > 5
                   && String.sub head 0 5 = "ref: " ->
       let r = String.sub head 5 (String.length head - 5) in
       Option.value ~default:head (read (Filename.concat ".git" r))
     | Some head -> head
     | None -> "unknown")

let usage () =
  Format.eprintf
    "usage: main.exe [IDS|tables|micro|--list] [--jobs N] [--json FILE] \
     [--no-info] [--baseline FILE] [--check]@.known ids:@.";
  List.iter
    (fun e ->
       Format.eprintf "  %-5s %s@." e.Experiment.id e.Experiment.title)
    experiments;
  exit 1

(* --list: the registered experiment descriptors, one per line, to
   stdout — the machine-readable cousin of the usage screen. *)
let list_experiments () =
  List.iter
    (fun e ->
       Format.printf "%-5s %s@." e.Experiment.id e.Experiment.title)
    experiments;
  exit 0

type opts = {
  ids : string list;  (* in run order; empty means everything *)
  json_out : string option;
  include_info : bool;
  baseline : string option;
  check : bool;
}

let parse_args args =
  let rec go acc = function
    | [] -> acc
    | "--list" :: _ -> list_experiments ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 ->
         Parallel.Sweep.set_default_jobs n;
         go acc rest
       | _ ->
         Format.eprintf "--jobs needs a positive integer@.";
         usage ())
    | "--json" :: file :: rest -> go { acc with json_out = Some file } rest
    | "--no-info" :: rest -> go { acc with include_info = false } rest
    | "--baseline" :: file :: rest ->
      go { acc with baseline = Some file } rest
    | "--check" :: rest -> go { acc with check = true } rest
    | ("--json" | "--baseline" | "--jobs") :: [] ->
      Format.eprintf "missing argument@.";
      usage ()
    | "tables" :: rest -> go { acc with ids = acc.ids @ all_ids } rest
    | id :: rest when find_experiment id <> None ->
      go { acc with ids = acc.ids @ [id] } rest
    | id :: _ ->
      Format.eprintf "unknown experiment %s (known: %s, tables)@." id
        (String.concat ", " all_ids);
      exit 1
  in
  go
    { ids = []; json_out = None; include_info = true; baseline = None;
      check = false }
    args

let () =
  let opts = parse_args (List.tl (Array.to_list Sys.argv)) in
  let ids =
    match opts.ids with
    | [] ->
      Format.printf
        "MHRP experiment harness — reproducing the paper's tables and \
         figures@.";
      all_ids
    | ids ->
      (* run in the canonical order, deduplicated *)
      List.filter (fun id -> List.mem id ids) all_ids
  in
  List.iter
    (fun id -> (Option.get (find_experiment id)).Experiment.run ())
    ids;
  let registry = Obs.Registry.default in
  (match opts.json_out with
   | None -> ()
   | Some file ->
     let json =
       Obs.Registry.to_json ~include_info:opts.include_info registry
         ~commit:(commit ())
     in
     Out_channel.with_open_bin file (fun oc ->
         Out_channel.output_string oc (Obs.Json.to_string ~pretty:true json);
         Out_channel.output_char oc '\n');
     Format.printf "@.wrote %s (%d experiments)@." file
       (List.length (Obs.Registry.experiments registry)));
  match opts.baseline with
  | None ->
    if opts.check then begin
      Format.eprintf "--check needs --baseline FILE@.";
      exit 1
    end
  | Some file ->
    (match Obs.Baseline.load_file file with
     | Error e ->
       Format.eprintf "cannot load baseline: %s@." e;
       exit 1
     | Ok baseline ->
       let only =
         if ids = all_ids then None else Some (recorded_ids ids)
       in
       let report =
         Obs.Baseline.compare ?only ~baseline ~current:registry ()
       in
       Format.printf "@.%a@." Obs.Baseline.pp_report report;
       if opts.check && report.Obs.Baseline.drifts <> [] then exit 1)
