(* E17 — MHRP under injected failures (Sections 3 and 5).

   A seeded fault campaign — control-message loss, router crash/reboot,
   link outages, a LAN partition — sweeps loss rate x crash schedule over
   the Figure 1 internetwork and an 8-campus backbone, with the reliable
   control plane ([Config.reliable_control]) off and on.  Measured per
   sweep point: data delivery, control retransmissions, re-registration
   latency after the wireless cell's outage, and the campaign invariants
   (no forwarding loop ever exceeds TTL; packets sent outside disruptive
   windows are all delivered whenever a loss-free control exchange is
   eventually possible). *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time
module Engine = Netsim.Engine

let config ~rtx =
  Mhrp.Config.make ~advert_interval:(Time.of_sec 1.0)
    ~advert_lifetime:(Time.of_sec 3.0) ~reliable_control:rtx
    ~control_rto:(Time.of_ms 300) ~control_retries:5 ()

type outcome = {
  sent : int;
  delivered : int;
  ctrl_rtx : int;
  gave_up : int;
  ctrl_lost : int;
  fault_events : int;
  ttl_expired : int;
  rereg_us : int option;  (* first registration after the cell outage *)
}

let sum_counters agents =
  List.fold_left
    (fun (rtx, gu) a ->
       let c = Agent.counters a in
       ( rtx + c.Mhrp.Counters.reg_retransmissions
         + c.Mhrp.Counters.connect_retransmissions
         + c.Mhrp.Counters.sync_retransmissions,
         gu + c.Mhrp.Counters.retransmit_gave_up ))
    (0, 0) agents

(* Registration completions on a mobile host, in simulated time. *)
let watch_registrations topo agent =
  let times = ref [] in
  Mhrp.Agent.on_registered agent (fun _fa ->
      times := Engine.now (Topology.engine topo) :: !times);
  times

let first_after times ~at =
  List.fold_left
    (fun acc t ->
       if Time.(t >= at) then
         match acc with
         | Some best when Time.(best <= t) -> acc
         | _ -> Some t
       else acc)
    None (List.rev times)

(* --- Figure 1 sweep point --- *)

let fig_crash_schedule =
  [ Fault.Schedule.Crash
      { node = "R4"; at = Time.of_sec 3.0; duration = Time.of_sec 1.0 };
    Fault.Schedule.Lan_down
      { lan = "netD"; at = Time.of_sec 5.0; duration = Time.of_sec 3.5 } ]

let fig_outage_end = Time.of_sec 8.5

let run_figure1 ~loss ~crash ~rtx =
  let env = fig_setup ~config:(config ~rtx) () in
  let inv = Fault.Invariant.watch env.f.TGm.topo in
  let inj = Fault.Injector.create ~seed:4242 env.f.TGm.topo in
  let schedule =
    (if crash then fig_crash_schedule else [])
    @
    if loss > 0.0 then
      [ Fault.Schedule.Control_loss
          { rate = loss; from_ = Time.zero; until = Time.of_sec 30.0 } ]
    else []
  in
  Fault.Injector.inject inj schedule;
  let reg_times = watch_registrations env.f.TGm.topo env.f.TGm.m in
  fig_move env 1.0 env.f.TGm.net_d;
  Workload.Traffic.cbr env.traffic ~src:env.f.TGm.s ~dst:env.m_addr
    ~start:(Time.of_sec 12.0) ~interval:(Time.of_ms 200) ~count:10 ();
  fig_run ~until:30.0 env;
  let records = Workload.Metrics.records env.metrics in
  let delivered = List.length (Workload.Metrics.delivered env.metrics) in
  let agents =
    [ env.f.TGm.s; env.f.TGm.m; env.f.TGm.r1; env.f.TGm.r2; env.f.TGm.r3;
      env.f.TGm.r4 ]
  in
  let ctrl_rtx, gave_up = sum_counters agents in
  { sent = List.length records;
    delivered;
    ctrl_rtx;
    gave_up;
    ctrl_lost = Fault.Injector.control_losses inj;
    fault_events = Fault.Injector.events inj;
    ttl_expired = Fault.Invariant.ttl_expired inv;
    rereg_us =
      (if crash then
         Option.map
           (fun t -> Time.to_us t - Time.to_us (Time.of_sec 5.0))
           (first_after !reg_times ~at:(Time.of_sec 5.0))
       else None) }

(* --- 8-campus sweep point --- *)

let run_campus ~loss ~rtx =
  let c =
    TGm.campuses ~config:(config ~rtx) ~seed:7 ~campuses:8
      ~mobiles_per_campus:1 ~correspondents:4 ()
  in
  let topo = c.TGm.c_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Array.iter (Workload.Metrics.watch_receiver metrics) c.TGm.c_mobiles;
  let inv = Fault.Invariant.watch topo in
  let inj = Fault.Injector.create ~seed:4242 topo in
  (* The crash outlives the 3 s advertisement lifetime, so mobile 0
     (roamed to R1's cell) notices the dead agent and re-registers after
     the reboot rather than relying on bounce recovery. *)
  let schedule =
    [ Fault.Schedule.Crash
        { node = "R1"; at = Time.of_sec 3.0; duration = Time.of_sec 4.0 };
      Fault.Schedule.Partition
        { lans = ["cell2"; "cell3"]; at = Time.of_sec 8.0;
          duration = Time.of_sec 2.0 } ]
    @
    if loss > 0.0 then
      [ Fault.Schedule.Control_loss
          { rate = loss; from_ = Time.zero; until = Time.of_sec 30.0 } ]
    else []
  in
  Fault.Injector.inject inj schedule;
  let reg_times = watch_registrations topo c.TGm.c_mobiles.(0) in
  (* every mobile roams to the next campus's cell *)
  let n = Array.length c.TGm.c_mobiles in
  Array.iteri
    (fun i m ->
       Workload.Mobility.move_at topo m ~at:(Time.of_sec 1.0)
         c.TGm.c_cells.((i + 1) mod n))
    c.TGm.c_mobiles;
  Array.iteri
    (fun j s ->
       Workload.Traffic.cbr traffic ~src:s
         ~dst:(Agent.address c.TGm.c_mobiles.(j))
         ~start:(Time.of_sec 12.0) ~interval:(Time.of_ms 100) ~count:10 ())
    c.TGm.c_senders;
  Topology.run ~until:(Time.of_sec 30.0) topo;
  let agents =
    Array.to_list c.TGm.c_routers
    @ Array.to_list c.TGm.c_mobiles
    @ Array.to_list c.TGm.c_senders
  in
  let ctrl_rtx, gave_up = sum_counters agents in
  { sent = List.length (Workload.Metrics.records metrics);
    delivered = List.length (Workload.Metrics.delivered metrics);
    ctrl_rtx;
    gave_up;
    ctrl_lost = Fault.Injector.control_losses inj;
    fault_events = Fault.Injector.events inj;
    ttl_expired = Fault.Invariant.ttl_expired inv;
    rereg_us =
      Option.map
        (fun t -> Time.to_us t - Time.to_us (Time.of_sec 3.0))
        (first_after !reg_times ~at:(Time.of_sec 3.0)) }

(* --- the sweep --- *)

let record ~reg ~labels o =
  rec_i ~reg ~exp:"E17" ~labels "sent" o.sent;
  rec_i ~reg ~exp:"E17" ~labels "delivered" o.delivered;
  rec_i ~reg ~exp:"E17" ~labels "control_retransmissions" o.ctrl_rtx;
  rec_i ~reg ~exp:"E17" ~labels "retransmit_gave_up" o.gave_up;
  rec_i ~reg ~exp:"E17" ~labels "control_losses" o.ctrl_lost;
  rec_i ~reg ~exp:"E17" ~labels "fault_events" o.fault_events;
  rec_i ~reg ~exp:"E17" ~labels "ttl_expired_drops" o.ttl_expired;
  match o.rereg_us with
  | Some us -> rec_ms ~reg ~exp:"E17" ~labels "rereg_ms" (float_of_int us)
  | None -> ()

let onoff b = if b then "on" else "off"

let row ~topo ~loss ~crash ~rtx o =
  [ topo; f1 loss; onoff crash; onoff rtx;
    Printf.sprintf "%d/%d" o.delivered o.sent;
    i o.ctrl_rtx; i o.gave_up; i o.ctrl_lost;
    (match o.rereg_us with
     | Some us -> ms_of_us (float_of_int us)
     | None -> "-");
    i o.ttl_expired ]

(* The sweep grid: every Figure 1 loss x crash x rtx point, the campus
   loss x rtx points, and two repeats of the worst figure1 point whose
   outcomes back the replay-determinism invariant.  Each point is an
   isolated trial, so the whole campaign fans out over the domain
   pool. *)
type point =
  | Fig of { loss : float; crash : bool; rtx : bool }
  | Campus of { loss : float; rtx : bool }
  | Det  (* determinism repeat: worst-case figure1 point, not recorded *)

let points =
  List.concat_map
    (fun loss ->
       List.concat_map
         (fun crash ->
            List.map (fun rtx -> Fig { loss; crash; rtx }) [false; true])
         [false; true])
    [0.0; 0.1; 0.3]
  @ List.concat_map
      (fun loss ->
         List.map (fun rtx -> Campus { loss; rtx }) [false; true])
      [0.0; 0.3]
  @ [Det; Det]

let run () =
  heading "E17" "MHRP under injected failures (fault campaign)";
  let outcomes =
    sweep ~exp:"E17" points ~trial:(fun ctx point ->
        let reg = ctx.Parallel.Sweep.registry in
        match point with
        | Fig { loss; crash; rtx } ->
          let o = run_figure1 ~loss ~crash ~rtx in
          record ~reg
            ~labels:
              [ ("topo", "figure1"); ("loss", f1 loss);
                ("crash", onoff crash); ("rtx", onoff rtx) ]
            o;
          o
        | Campus { loss; rtx } ->
          let o = run_campus ~loss ~rtx in
          record ~reg
            ~labels:
              [ ("topo", "campus8"); ("loss", f1 loss); ("crash", "on");
                ("rtx", onoff rtx) ]
            o;
          o
        | Det -> run_figure1 ~loss:0.3 ~crash:true ~rtx:true)
  in
  let swept, det =
    List.partition (fun (p, _) -> p <> Det) (List.combine points outcomes)
  in
  let rows =
    List.filter_map
      (function
        | Fig { loss; crash; rtx }, o ->
          Some (row ~topo:"figure1" ~loss ~crash ~rtx o)
        | Campus { loss; rtx }, o ->
          Some (row ~topo:"campus8" ~loss ~crash:true ~rtx o)
        | Det, _ -> None)
      swept
  in
  let ttl_total =
    List.fold_left (fun acc (_, o) -> acc + o.ttl_expired) 0 swept
  in
  let live_ok =
    List.for_all
      (fun (p, o) ->
         let rtx =
           match p with
           | Fig { rtx; _ } | Campus { rtx; _ } -> rtx
           | Det -> false
         in
         (not rtx) || o.delivered >= o.sent)
      swept
  in
  table
    ~columns:["topology"; "loss"; "crash"; "rtx"; "delivered";
              "ctrl rtx"; "gave up"; "ctrl lost"; "rereg ms"; "ttl drops"]
    rows;
  (* campaign invariants *)
  let a, b =
    match det with
    | [(_, a); (_, b)] -> (a, b)
    | _ -> assert false
  in
  let deterministic =
    a.delivered = b.delivered && a.ctrl_rtx = b.ctrl_rtx
    && a.ctrl_lost = b.ctrl_lost && a.fault_events = b.fault_events
  in
  rec_flag ~exp:"E17" "no_forwarding_loops" (ttl_total = 0);
  rec_flag ~exp:"E17" "live_periods_delivered" live_ok;
  rec_flag ~exp:"E17" "deterministic" deterministic;
  note "forwarding-loop invariant: %d ttl-expired drops across the campaign"
    ttl_total;
  note "live-period delivery with retransmission: %s"
    (if live_ok then "all delivered" else "VIOLATED");
  note "replay determinism (same seeds, twice): %s"
    (if deterministic then "identical" else "DIVERGED")

let experiment =
  Experiment.make ~id:"E17"
    ~title:"MHRP under injected failures (fault campaign)" run
