(* E10 — the router slow path for IP options (Section 7's case against the
   IBM LSRR proposals): end-to-end latency of identical payloads sent
   plain, MHRP-tunneled, and LSRR-routed across chains of increasing
   length.  Tunneled MHRP packets are ordinary IP to every router; LSRR
   packets hit the option-parsing slow path at each hop. *)

open Exp_util
module TGm = Workload.Topo_gen
module Time = Netsim.Time

let measure ~n ~variant =
  let ch = TGm.chain ~n () in
  let topo = ch.TGm.ch_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let last = Agent.node ch.TGm.ch_routers.(n - 1) in
  (* endpoints on the first and last stubs *)
  let a = Topology.add_host topo "A" ch.TGm.ch_stubs.(0) 10 in
  let b = Topology.add_host topo "B" ch.TGm.ch_stubs.(n - 1) 10 in
  Topology.compute_routes topo;
  let arrival = ref None in
  Node.set_proto_handler b Ipv4.Proto.udp (fun _ _ ->
      if !arrival = None then
        arrival := Some (Netsim.Engine.now (Topology.engine topo)));
  Node.set_proto_handler b Ipv4.Proto.mhrp (fun node pkt ->
      ignore node;
      match Mhrp.Encap.detunnel pkt with
      | Some _ when !arrival = None ->
        arrival := Some (Netsim.Engine.now (Topology.engine topo))
      | _ -> ());
  let b_addr = Node.primary_addr b in
  let base = sample_packet ~src:(Node.primary_addr a) ~dst:b_addr () in
  let waypoint = Node.primary_addr last in
  let pkt =
    match variant with
    | `Plain -> base
    | `Mhrp -> Mhrp.Encap.tunnel_by_sender ~foreign_agent:b_addr base
    | `Lsrr ->
      (* loose-source-routed through the last router, as the IBM scheme
         routes via base stations; same physical path as the others *)
      { base with
        Ipv4.Packet.options = [Ipv4.Ip_option.lsrr [b_addr]];
        dst = waypoint }
  in
  (* warm ARP caches along the path with a throwaway packet first *)
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 0.5)
       (fun () -> Node.send a { base with Ipv4.Packet.id = 999 }));
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 2.0)
       (fun () ->
          arrival := None;
          Node.send a pkt));
  Topology.run ~until:(Time.of_sec 4.0) topo;
  match !arrival with
  | Some at -> float_of_int (Time.to_us at - 2_000_000)
  | None -> nan

let run () =
  heading "E10" "router slow path for IP options (Section 7 vs IBM LSRR)";
  let rows =
    List.map
      (fun n ->
         let plain = measure ~n ~variant:`Plain in
         let mhrp = measure ~n ~variant:`Mhrp in
         let lsrr = measure ~n ~variant:`Lsrr in
         let labels = [("routers", string_of_int n)] in
         rec_ms ~exp:"E10" ~labels "plain_ms" plain;
         rec_ms ~exp:"E10" ~labels "mhrp_ms" mhrp;
         rec_ms ~exp:"E10" ~labels "lsrr_ms" lsrr;
         rec_f ~exp:"E10" ~labels ~tol:(Obs.Metric.Pct 20.0)
           "lsrr_over_plain" (lsrr /. plain);
         [ i n; ms_of_us plain; ms_of_us mhrp; ms_of_us lsrr;
           f2 (lsrr /. plain) ])
      [2; 4; 8; 12]
  in
  table
    ~columns:["routers on path"; "plain ms"; "MHRP tunnel ms"; "LSRR ms";
              "LSRR/plain"]
    rows;
  note
    "MHRP's tunneled packets carry no IP options, so they ride the \
     router fast path like plain traffic; LSRR packets pay the option \
     slow path (8x per-hop processing here) at every router, and the \
     penalty grows with path length."

let experiment =
  Experiment.make ~id:"E10"
    ~title:"router slow path for IP options (Section 7 vs IBM LSRR)" run
