(* Transparency above IP: a reliable (windowed, retransmitting) transfer
   to a mobile host that keeps moving while the transfer runs.

     dune exec examples/file_transfer.exe

   The transport protocol knows nothing about mobility — it just sends to
   the mobile host's permanent home address.  MHRP's claim (Section 1):
   "no changes are required in mobile hosts above the network level."
   Hand-offs show up only as a few retransmissions. *)

module Time = Netsim.Time
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let () =
  let f = TG.figure1 () in
  let topo = f.TG.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  (* second wireless cell to roam between *)
  let net_e = Topology.add_lan topo ~net:5 "netE" in
  let r5n = Topology.add_router topo "R5" [(f.TG.net_c, 3); (net_e, 1)] in
  Topology.compute_routes topo;
  let r5 = Agent.create r5n in
  Agent.enable_foreign_agent r5
    ~iface:(Option.get (Net.Node.iface_to r5n (Net.Lan.prefix net_e)));

  let bytes = 4 * 1024 * 1024 in
  Format.printf
    "S transfers %d KiB to M with a plain window-8 transport while M \
     roams:@."
    (bytes / 1024);
  Agent.on_registered f.TG.m (fun fa ->
      Format.printf "  [%a] hand-off: M now at %s@." Time.pp
        (Netsim.Engine.now (Topology.engine topo))
        (if Ipv4.Addr.is_zero fa then "home" else Ipv4.Addr.to_string fa));
  let xfer =
    Workload.Reliable.start ~sender:f.TG.s ~receiver:f.TG.m ~bytes
      ~at:(Time.of_sec 0.5) ()
  in
  Workload.Mobility.itinerary topo f.TG.m
    [ (Time.of_sec 1.0, f.TG.net_d);
      (Time.of_sec 2.5, net_e);
      (Time.of_sec 4.0, f.TG.net_b) ];
  Topology.run ~until:(Time.of_sec 120.0) topo;
  let s = Workload.Reliable.stats xfer in
  (match s.Workload.Reliable.completed_at with
   | Some at ->
     Format.printf "@.transfer complete at %a, data intact: %b@." Time.pp
       at
       (Workload.Reliable.received_ok xfer)
   | None -> Format.printf "@.transfer DID NOT complete@.");
  Format.printf
    "%d chunks, %d segments sent, %d retransmissions (%d acks) across 3 \
     hand-offs@."
    s.Workload.Reliable.chunks s.Workload.Reliable.sent
    s.Workload.Reliable.retransmissions s.Workload.Reliable.acks;
  Format.printf
    "the transport never learned that M moved: it sent every byte to \
     M's permanent address %a@."
    Ipv4.Addr.pp (Agent.address f.TG.m)
