(* Quickstart: the paper's Figure 1 example, narrated.

     dune exec examples/quickstart.exe

   Builds the example internetwork (backbone, networks A-D, routers
   R1-R4), makes R2 the home agent for mobile host M and R4 the foreign
   agent for the wireless network D, then walks through Sections 6.1-6.3:
   a packet to M at home, M moving to network D, the first packet
   triangling through the home agent, subsequent packets tunneling
   directly, and M returning home. *)

module Time = Netsim.Time
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let () =
  let f = TG.figure1 () in
  let topo = f.TG.topo in
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  let m_addr = Agent.address f.TG.m in
  Workload.Metrics.watch_receiver metrics f.TG.m;

  Format.printf "Figure 1 internetwork up.@.";
  Format.printf "  mobile host M lives at %a (network B, home agent R2)@."
    Ipv4.Addr.pp m_addr;
  Format.printf "  S (network A) will send to M throughout.@.@.";

  (* watch interesting protocol events *)
  Agent.on_location_update f.TG.s (fun ~mobile ~foreign_agent ->
      Format.printf "  >> S learns: %a is at foreign agent %a@."
        Ipv4.Addr.pp mobile Ipv4.Addr.pp foreign_agent);
  Agent.on_registered f.TG.m (fun fa ->
      if Ipv4.Addr.is_zero fa then
        Format.printf "  >> M registered: back home@."
      else
        Format.printf "  >> M registered with foreign agent %a@."
          Ipv4.Addr.pp fa);

  let send_and_report label sec =
    Workload.Traffic.at traffic (Time.of_sec sec) (fun () ->
        Format.printf "@.[t=%.1fs] %s@." sec label;
        Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ())
  in
  send_and_report "S sends to M at home (plain IP, no overhead)" 0.5;
  Workload.Traffic.at traffic (Time.of_sec 1.0) (fun () ->
      Format.printf "@.[t=1.0s] M moves to the wireless network D@.");
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0) f.TG.net_d;
  send_and_report
    "S sends again: intercepted by home agent R2, tunneled to R4 (6.1)"
    2.0;
  send_and_report
    "S sends again: cache hit, tunneled directly to R4 (6.2)" 3.0;
  Workload.Traffic.at traffic (Time.of_sec 4.0) (fun () ->
      Format.printf "@.[t=4.0s] M returns home@.");
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 4.0) f.TG.net_b;
  send_and_report
    "S sends: stale tunnel chases M home, caches invalidated (6.3)" 5.0;
  send_and_report "S sends: plain IP again" 6.0;

  Topology.run ~until:(Time.of_sec 8.0) topo;

  Format.printf "@.--- per-packet summary ---@.";
  List.iteri
    (fun k r ->
       Format.printf
         "  packet %d: %-9s  %d LAN hops, %d bytes of tunnel overhead@." k
         (if r.Workload.Metrics.delivered_at <> None then "delivered"
          else "lost")
         r.Workload.Metrics.hops
         (r.Workload.Metrics.max_bytes - r.Workload.Metrics.sent_bytes))
    (Workload.Metrics.records metrics);
  Format.printf "@.home agent R2:     %a@." Mhrp.Counters.pp
    (Agent.counters f.TG.r2);
  Format.printf "foreign agent R4:  %a@." Mhrp.Counters.pp
    (Agent.counters f.TG.r4)
