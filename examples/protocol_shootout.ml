(* Protocol shoot-out: the same scenario — a mobile host moving between
   two networks while a correspondent keeps sending — run under MHRP and
   each of the paper's Section 7 comparison protocols, on byte-identical
   substrates.

     dune exec examples/protocol_shootout.exe

   Reported per protocol: delivery, mean wire overhead per packet (from
   real serializers), mean latency and control-message cost. *)

module Time = Netsim.Time
module Node = Net.Node
module Packet = Ipv4.Packet
module Topology = Net.Topology
module TG = Workload.Topo_gen

type result = {
  name : string;
  delivered : int;
  sent : int;
  overhead : float;
  latency_ms : float;
  ctrl : int;
}

let payload_bytes = 64
let packet_count = 8

(* shared scenario shape: move at 1 s, one packet every 500 ms from 2 s *)
let schedule_sends topo send =
  for k = 0 to packet_count - 1 do
    ignore
      (Netsim.Engine.schedule (Topology.engine topo)
         ~at:(Time.of_sec (2.0 +. (0.5 *. float_of_int k)))
         (fun () -> send (k + 1)))
  done

let mk_pkt ~id ~src ~dst =
  Packet.make ~id ~proto:Ipv4.Proto.udp ~src ~dst
    (Ipv4.Udp.encode
       (Ipv4.Udp.make ~src_port:4000 ~dst_port:4000
          (Bytes.create payload_bytes)))

let finish name topo metrics ~sent ~ctrl =
  Topology.run ~until:(Time.of_sec 10.0) topo;
  { name;
    delivered = List.length (Workload.Metrics.delivered metrics);
    sent;
    overhead = Workload.Metrics.mean_overhead_bytes metrics;
    latency_ms = Workload.Metrics.mean_latency_us metrics /. 1000.0;
    ctrl = ctrl () }

let run_mhrp () =
  let f = TG.figure1 () in
  let topo = f.TG.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let metrics = Workload.Metrics.create topo in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  let m_addr = Mhrp.Agent.address f.TG.m in
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0) f.TG.net_d;
  schedule_sends topo (fun id ->
      let pkt = mk_pkt ~id ~src:(Mhrp.Agent.address f.TG.s) ~dst:m_addr in
      Workload.Metrics.note_send metrics pkt;
      Mhrp.Agent.send f.TG.s pkt);
  finish "MHRP" topo metrics ~sent:packet_count ~ctrl:(fun () ->
      List.fold_left
        (fun acc a ->
           acc + (Mhrp.Agent.counters a).Mhrp.Counters.control_messages)
        0
        [f.TG.s; f.TG.m; f.TG.r1; f.TG.r2; f.TG.r3; f.TG.r4])

let run_sunshine () =
  let p = TG.figure1_plain () in
  let topo = p.TG.p_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let m_addr = Node.primary_addr p.TG.p_m in
  let db = Topology.add_host topo "DB" p.TG.p_backbone 20 in
  Topology.compute_routes topo;
  let metrics = Workload.Metrics.create topo in
  let sp = Baselines.Sunshine_postel.create topo ~db_node:db in
  let fwd = Baselines.Sunshine_postel.add_forwarder sp p.TG.p_r4 ~lan:p.TG.p_net_d in
  Baselines.Sunshine_postel.make_mobile sp p.TG.p_m;
  Node.set_proto_handler p.TG.p_m Ipv4.Proto.udp (fun _ pkt ->
      Workload.Metrics.note_delivery metrics pkt);
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 1.0)
       (fun () ->
          Baselines.Sunshine_postel.move sp p.TG.p_m ~forwarder:fwd
            p.TG.p_net_d));
  schedule_sends topo (fun id ->
      let pkt = mk_pkt ~id ~src:(Node.primary_addr p.TG.p_s) ~dst:m_addr in
      Workload.Metrics.note_send metrics pkt;
      Baselines.Sunshine_postel.send sp ~src:p.TG.p_s pkt);
  finish "Sunshine-Postel" topo metrics ~sent:packet_count ~ctrl:(fun () ->
      Baselines.Sunshine_postel.control_messages sp)

let run_columbia () =
  let p = TG.figure1_plain () in
  let topo = p.TG.p_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let m_addr = Node.primary_addr p.TG.p_m in
  let metrics = Workload.Metrics.create topo in
  let co = Baselines.Columbia.create topo in
  let home = Baselines.Columbia.add_msr co p.TG.p_r2 ~cell:p.TG.p_net_b in
  let msr4 = Baselines.Columbia.add_msr co p.TG.p_r4 ~cell:p.TG.p_net_d in
  Baselines.Columbia.make_mobile co p.TG.p_m ~home;
  Node.set_proto_handler p.TG.p_m Ipv4.Proto.udp (fun _ pkt ->
      Workload.Metrics.note_delivery metrics pkt);
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 1.0)
       (fun () -> Baselines.Columbia.move co p.TG.p_m ~to_msr:msr4));
  schedule_sends topo (fun id ->
      let pkt = mk_pkt ~id ~src:(Node.primary_addr p.TG.p_s) ~dst:m_addr in
      Workload.Metrics.note_send metrics pkt;
      Baselines.Columbia.send co ~src:p.TG.p_s pkt);
  finish "Columbia" topo metrics ~sent:packet_count ~ctrl:(fun () ->
      Baselines.Columbia.control_messages co)

let run_sony () =
  let p = TG.figure1_plain () in
  let topo = p.TG.p_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let m_addr = Node.primary_addr p.TG.p_m in
  let metrics = Workload.Metrics.create topo in
  let sv = Baselines.Sony_vip.create topo in
  List.iter (Baselines.Sony_vip.add_router sv)
    [p.TG.p_r1; p.TG.p_r2; p.TG.p_r3; p.TG.p_r4];
  Baselines.Sony_vip.make_host sv p.TG.p_m ~home_router:p.TG.p_r2;
  Baselines.Sony_vip.make_host sv p.TG.p_s ~home_router:p.TG.p_r1;
  Baselines.Sony_vip.on_receive sv p.TG.p_m (fun pkt ->
      Workload.Metrics.note_delivery metrics pkt);
  let temp = Ipv4.Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 1.0)
       (fun () ->
          Baselines.Sony_vip.move sv p.TG.p_m ~lan:p.TG.p_net_d
            ~via_router:p.TG.p_r4 ~temp));
  schedule_sends topo (fun id ->
      let pkt = mk_pkt ~id ~src:(Node.primary_addr p.TG.p_s) ~dst:m_addr in
      Workload.Metrics.note_send metrics pkt;
      Baselines.Sony_vip.send sv ~src:p.TG.p_s pkt);
  finish "Sony VIP" topo metrics ~sent:packet_count ~ctrl:(fun () ->
      Baselines.Sony_vip.control_messages sv)

let run_matsushita mode name =
  let p = TG.figure1_plain () in
  let topo = p.TG.p_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let m_addr = Node.primary_addr p.TG.p_m in
  let metrics = Workload.Metrics.create topo in
  let ma = Baselines.Matsushita.create topo mode in
  Baselines.Matsushita.add_pfs ma p.TG.p_r2;
  Baselines.Matsushita.make_mobile ma p.TG.p_m ~pfs:p.TG.p_r2;
  Baselines.Matsushita.on_receive ma p.TG.p_m (fun pkt ->
      Workload.Metrics.note_delivery metrics pkt);
  let temp = Ipv4.Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 1.0)
       (fun () ->
          Baselines.Matsushita.move ma p.TG.p_m ~lan:p.TG.p_net_d
            ~via_router:p.TG.p_r4 ~temp));
  schedule_sends topo (fun id ->
      let pkt = mk_pkt ~id ~src:(Node.primary_addr p.TG.p_s) ~dst:m_addr in
      Workload.Metrics.note_send metrics pkt;
      Baselines.Matsushita.send ma ~src:p.TG.p_s pkt);
  finish name topo metrics ~sent:packet_count ~ctrl:(fun () ->
      Baselines.Matsushita.control_messages ma)

let run_ibm () =
  let p = TG.figure1_plain () in
  let topo = p.TG.p_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let m_addr = Node.primary_addr p.TG.p_m in
  let metrics = Workload.Metrics.create topo in
  let ib = Baselines.Ibm_lsrr.create topo in
  let home_base = Baselines.Ibm_lsrr.add_base ib p.TG.p_r2 ~lan:p.TG.p_net_b in
  let base4 = Baselines.Ibm_lsrr.add_base ib p.TG.p_r4 ~lan:p.TG.p_net_d in
  Baselines.Ibm_lsrr.make_mobile ib p.TG.p_m ~home_base;
  Baselines.Ibm_lsrr.on_receive ib p.TG.p_m (fun pkt ->
      Workload.Metrics.note_delivery metrics pkt);
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 1.0)
       (fun () -> Baselines.Ibm_lsrr.move ib p.TG.p_m ~base:base4));
  schedule_sends topo (fun id ->
      let pkt = mk_pkt ~id ~src:(Node.primary_addr p.TG.p_s) ~dst:m_addr in
      Workload.Metrics.note_send metrics pkt;
      Baselines.Ibm_lsrr.send ib ~src:p.TG.p_s pkt);
  finish "IBM LSRR" topo metrics ~sent:packet_count ~ctrl:(fun () ->
      Baselines.Ibm_lsrr.control_messages ib)

let () =
  Format.printf
    "One scenario, six protocols: M moves at t=1s; S sends %d packets.@.@."
    packet_count;
  let results =
    [ run_mhrp (); run_sunshine (); run_columbia (); run_sony ();
      run_matsushita Baselines.Matsushita.Forwarding "Matsushita (fwd)";
      run_matsushita Baselines.Matsushita.Autonomous "Matsushita (auto)";
      run_ibm () ]
  in
  Format.printf "%-18s %-10s %-12s %-12s %-6s@." "protocol" "delivered"
    "overhead B" "latency ms" "ctrl";
  Format.printf "%s@." (String.make 62 '-');
  List.iter
    (fun r ->
       Format.printf "%-18s %d/%-8d %-12.1f %-12.2f %-6d@." r.name
         r.delivered r.sent r.overhead r.latency_ms r.ctrl)
    results
