(* Campus roaming: a larger internetwork with several campuses, each
   running a combined home/foreign agent on its campus router (the
   Section 2 combination), and mobile hosts roaming randomly between
   wireless cells while correspondents keep sending.

     dune exec examples/campus_roaming.exe -- [campuses] [mobiles] [seconds]

   Prints live hand-off events and a final delivery/latency report — the
   "continuously used while carried around" workload of the paper's
   introduction. *)

module Time = Netsim.Time
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let () =
  let arg n default =
    if Array.length Sys.argv > n then int_of_string Sys.argv.(n)
    else default
  in
  let campuses = arg 1 4 in
  let mobiles = arg 2 2 in
  let seconds = arg 3 30 in
  let c =
    TG.campuses ~campuses ~mobiles_per_campus:mobiles ~correspondents:4 ()
  in
  let topo = c.TG.c_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Format.printf
    "%d campuses, %d mobile hosts, 4 correspondents, %ds of simulated \
     time@."
    campuses (Array.length c.TG.c_mobiles) seconds;
  Array.iter
    (fun m ->
       Workload.Metrics.watch_receiver metrics m;
       Agent.on_registered m (fun fa ->
           Format.printf "[%a] %s -> %s@." Time.pp
             (Netsim.Engine.now (Topology.engine topo))
             (Net.Node.name (Agent.node m))
             (if Ipv4.Addr.is_zero fa then "home"
              else Ipv4.Addr.to_string fa));
       Workload.Mobility.random_waypoint topo m ~rng:(Topology.rng topo)
         ~lans:c.TG.c_cells ~dwell_mean:(Time.of_sec 5.0)
         ~until:(Time.of_sec (float_of_int (seconds - 5))))
    c.TG.c_mobiles;
  (* each correspondent keeps a CBR flow to one mobile host *)
  Array.iteri
    (fun k s ->
       let m = c.TG.c_mobiles.(k mod Array.length c.TG.c_mobiles) in
       Workload.Traffic.cbr traffic ~src:s ~dst:(Agent.address m)
         ~start:(Time.of_ms 700) ~interval:(Time.of_ms 200)
         ~count:(seconds * 5 - 5) ())
    c.TG.c_senders;
  Topology.run ~until:(Time.of_sec (float_of_int seconds)) topo;
  Format.printf "@.--- results ---@.";
  Format.printf "%a@." Workload.Metrics.pp_summary metrics;
  let total_moves =
    Array.fold_left
      (fun acc m ->
         match Agent.mobile m with
         | Some mh -> acc + mh.Mhrp.Mobile_host.moves
         | None -> acc)
      0 c.TG.c_mobiles
  in
  let total_ctrl =
    Array.fold_left
      (fun acc a -> acc + (Agent.counters a).Mhrp.Counters.control_messages)
      0
      (Array.append c.TG.c_routers
         (Array.append c.TG.c_mobiles c.TG.c_senders))
  in
  Format.printf "hand-offs: %d, control messages: %d (%.1f per hand-off)@."
    total_moves total_ctrl
    (float_of_int total_ctrl /. float_of_int (max 1 total_moves));
  Array.iter
    (fun r ->
       Format.printf "%s: %a@." (Net.Node.name (Agent.node r))
         Mhrp.Counters.pp (Agent.counters r))
    c.TG.c_routers
