(* Failure recovery walkthrough: the Section 5 robustness features, one
   after another, on the Figure 1 internetwork.

     dune exec examples/failure_recovery.exe

   1. The foreign agent reboots and forgets its visitors; the home agent's
      location update restores them (5.2).
   2. A cache-agent loop is manufactured and dissolved (5.3).
   3. A link failure makes the cached path dead; the returned ICMP error
      is reversed through the tunnel chain back to the sender, which drops
      its stale cache entry and recovers (4.5). *)

module Time = Netsim.Time
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let section fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

let () =
  let f = TG.figure1 () in
  let topo = f.TG.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  let m_addr = Agent.address f.TG.m in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  let send sec =
    Workload.Traffic.at traffic (Time.of_sec sec) (fun () ->
        Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ())
  in

  section "setup: M moves to the wireless network D";
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0) f.TG.net_d;
  send 2.0;

  section "1. foreign-agent reboot and recovery (5.2)";
  Workload.Traffic.at traffic (Time.of_sec 3.0) (fun () ->
      Format.printf "[3.0s] R4 reboots: visitor list gone@.";
      Node.reboot (Agent.node f.TG.r4));
  send 4.0;
  send 5.0;
  Workload.Traffic.at traffic (Time.of_sec 5.5) (fun () ->
      Format.printf "[5.5s] R4 visitors after recovery: %d (recoveries: %d)@."
        (match Agent.foreign_agent f.TG.r4 with
         | Some fa -> Mhrp.Foreign_agent.count fa
         | None -> 0)
        (Agent.counters f.TG.r4).Mhrp.Counters.recoveries);

  section "2. manufactured cache loop, detected and dissolved (5.3)";
  Workload.Traffic.at traffic (Time.of_sec 6.0) (fun () ->
      (* poison R1 and R3 to point at each other *)
      Mhrp.Location_cache.insert (Agent.cache f.TG.r1) ~mobile:m_addr
        ~foreign_agent:(Ipv4.Addr.host 0 13);
      Mhrp.Location_cache.insert (Agent.cache f.TG.r3) ~mobile:m_addr
        ~foreign_agent:(Ipv4.Addr.host 0 11);
      Format.printf "[6.0s] R1 and R3 poisoned into a loop@.";
      (* inject a tunneled packet into the loop *)
      let pkt =
        Ipv4.Packet.make ~id:901 ~proto:Ipv4.Proto.udp
          ~src:(Agent.address f.TG.s) ~dst:m_addr
          (Ipv4.Udp.encode
             (Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.create 16)))
      in
      Workload.Metrics.note_send metrics pkt;
      Node.send (Agent.node f.TG.s)
        (Mhrp.Encap.tunnel_by_agent ~agent:(Agent.address f.TG.s)
           ~foreign_agent:(Ipv4.Addr.host 0 11) pkt));
  Workload.Traffic.at traffic (Time.of_sec 7.0) (fun () ->
      Format.printf
        "[7.0s] loops detected: R1=%d R3=%d; poisoned entries left: %s@."
        (Agent.counters f.TG.r1).Mhrp.Counters.loops_detected
        (Agent.counters f.TG.r3).Mhrp.Counters.loops_detected
        (match
           ( Mhrp.Location_cache.peek (Agent.cache f.TG.r1) m_addr,
             Mhrp.Location_cache.peek (Agent.cache f.TG.r3) m_addr )
         with
         | None, None -> "none (dissolved)"
         | _ -> "some"));

  section "3. dead path, reversed ICMP error, sender recovery (4.5)";
  Workload.Traffic.at traffic (Time.of_sec 8.0) (fun () ->
      Format.printf "[8.0s] R3 loses its routes toward networks C and D@.";
      Node.update_routes (Agent.node f.TG.r3) (fun r ->
          Net.Route.remove
            (Net.Route.remove r (Net.Lan.prefix f.TG.net_c))
            (Net.Lan.prefix f.TG.net_d)));
  Agent.on_icmp_error f.TG.s (fun msg original ->
      Format.printf "[%a] S got %a%s@." Time.pp
        (Netsim.Engine.now (Topology.engine topo))
        Ipv4.Icmp.pp msg
        (match original with
         | Some o ->
           Format.asprintf " about its packet to %a" Ipv4.Addr.pp
             o.Ipv4.Packet.dst
         | None -> ""));
  send 9.0;
  (* the home agent's location update may re-teach S the (dead) location
     before the error arrives; the next packet's error purges it for
     good *)
  send 10.5;
  Workload.Traffic.at traffic (Time.of_sec 12.0) (fun () ->
      Format.printf "[12.0s] S cache entry for M: %s@."
        (match Mhrp.Location_cache.peek (Agent.cache f.TG.s) m_addr with
         | Some fa -> Ipv4.Addr.to_string fa
         | None -> "purged (will fall back to the home agent)"));

  Topology.run ~until:(Time.of_sec 13.0) topo;
  Format.printf "@.--- final ---@.%a@." Workload.Metrics.pp_summary metrics
