(* Authenticated hand-off: the Figure 1 internetwork with the
   authenticated control plane switched on, plus an adversary on the
   transit network trying to steal the mobile host's traffic.

     dune exec examples/authenticated_handoff.exe

   The mobile host M roams to network D while a correspondent S keeps
   sending; every registration and location update carries the keyed-MAC
   extension and keeps working.  Midway, the attacker X forges a
   registration claiming M moved to X — the home agent rejects it, the
   trace shows why, and not one packet is hijacked. *)

module Time = Netsim.Time
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let () =
  let config =
    Mhrp.Config.make ~authenticate:true ()
  in
  let f = TG.figure1 ~config () in
  let topo = f.TG.topo in
  let key = Auth.Siphash.of_string "campus registration key" in
  let m_addr = Agent.address f.TG.m in
  List.iter
    (fun a -> Agent.install_key a ~mobile:m_addr ~spi:1 ~key)
    TG.[ f.s; f.m; f.r1; f.r2; f.r3; f.r4 ];
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  Format.printf
    "authenticated control plane on: %a extension on every control \
     message@."
    Auth.Siphash.pp_key key;
  Agent.on_registered f.TG.m (fun fa ->
      Format.printf "[%a] M registered %s@." Time.pp
        (Netsim.Engine.now (Topology.engine topo))
        (if Ipv4.Addr.is_zero fa then "at home"
         else "via " ^ Ipv4.Addr.to_string fa));
  (* the attacker, on transit network C *)
  let xn = Topology.add_host topo "X" f.TG.net_c 66 in
  Topology.compute_routes topo;
  let adv = Auth.Adversary.create ~trace:(Topology.trace topo)
      ~victim:m_addr xn in
  Workload.Traffic.cbr traffic ~src:f.TG.s ~dst:m_addr
    ~start:(Time.of_sec 0.5) ~interval:(Time.of_ms 500) ~count:19 ();
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 2.0) f.TG.net_d;
  Workload.Traffic.at traffic (Time.of_sec 5.0) (fun () ->
      Format.printf "[%a] X forges a registration placing M at itself@."
        Time.pp (Netsim.Engine.now (Topology.engine topo));
      Auth.Adversary.forge_registration adv
        ~home_agent:(Agent.address f.TG.r2)
        ~foreign_agent:(Net.Node.primary_addr xn));
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 8.0) f.TG.net_b;
  Topology.run ~until:(Time.of_sec 12.0) topo;
  List.iter
    (fun e ->
       Format.printf "[%a] %s: %s %s@." Time.pp e.Netsim.Trace.at
         e.Netsim.Trace.node e.Netsim.Trace.kind e.Netsim.Trace.detail)
    (Netsim.Trace.find (Topology.trace topo) ~kind:"auth-fail");
  let r2c = Agent.counters f.TG.r2 in
  Format.printf
    "@.verified registrations at the home agent: %d; rejected: %d@."
    r2c.Mhrp.Counters.auth_ok r2c.Mhrp.Counters.auth_fail;
  Format.printf "packets hijacked by X: %d@." (Auth.Adversary.hijacked adv);
  Format.printf "delivered to M: %d of %d@."
    (List.length (Workload.Metrics.delivered metrics))
    (List.length (Workload.Metrics.records metrics))
