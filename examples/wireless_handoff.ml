(* Wireless hand-off under stress: a host bouncing rapidly between two
   cells ("moved out of range of the transceiver ... simply by being
   carried physically too far from it", Section 3) while a correspondent
   streams to it — including a stretch where the home agent is dead and
   only the old foreign agents' forwarding pointers keep the host
   reachable (Section 2).

     dune exec examples/wireless_handoff.exe *)

module Time = Netsim.Time
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let () =
  let f = TG.figure1 () in
  let topo = f.TG.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  (* second cell E behind a new router R5 *)
  let net_e = Topology.add_lan topo ~net:5 "netE" in
  let r5n = Topology.add_router topo "R5" [(f.TG.net_c, 3); (net_e, 1)] in
  Topology.compute_routes topo;
  let r5 = Agent.create r5n in
  Agent.enable_foreign_agent r5
    ~iface:(Option.get (Node.iface_to r5n (Net.Lan.prefix net_e)));
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  let m_addr = Agent.address f.TG.m in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  Agent.on_registered f.TG.m (fun fa ->
      Format.printf "[%a] hand-off complete: now at %s@." Time.pp
        (Netsim.Engine.now (Topology.engine topo))
        (if Ipv4.Addr.is_zero fa then "home" else Ipv4.Addr.to_string fa));

  Format.printf
    "M ping-pongs between cells D and E every second; S streams 5 \
     packets/s.@.";
  Workload.Mobility.ping_pong topo f.TG.m ~a:f.TG.net_d ~b:net_e
    ~start:(Time.of_sec 1.0) ~period:(Time.of_sec 1.0) ~moves:10;
  Workload.Traffic.cbr traffic ~src:f.TG.s ~dst:m_addr
    ~start:(Time.of_ms 1100) ~interval:(Time.of_ms 200) ~count:70 ();
  (* the home agent dies mid-run; forwarding pointers carry the load *)
  Workload.Traffic.at traffic (Time.of_sec 5.0) (fun () ->
      Format.printf "[5.0s] home agent R2 goes down@.";
      Node.set_up (Agent.node f.TG.r2) false);
  Workload.Traffic.at traffic (Time.of_sec 9.0) (fun () ->
      Format.printf "[9.0s] home agent R2 back up@.";
      Node.set_up (Agent.node f.TG.r2) true);
  Topology.run ~until:(Time.of_sec 16.0) topo;

  Format.printf "@.--- results ---@.";
  Format.printf "%a@." Workload.Metrics.pp_summary metrics;
  let lost =
    List.length
      (List.filter
         (fun r -> r.Workload.Metrics.delivered_at = None)
         (Workload.Metrics.records metrics))
  in
  Format.printf
    "%d packets lost across 10 hand-offs (packets in flight during a \
     hand-off are unbuffered, as in the paper)@."
    lost;
  Format.printf "old-FA re-tunnels via forwarding pointers: R4=%d R5=%d@."
    (Agent.counters f.TG.r4).Mhrp.Counters.retunnels
    (Agent.counters r5).Mhrp.Counters.retunnels
