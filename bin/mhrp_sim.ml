(* mhrp_sim — command-line driver for the MHRP simulator.

   Subcommands:
     figure1   run the paper's Figure 1 example and dump the event trace
     roam      roam mobile hosts over a campus internetwork, print metrics
     handoff   rapid ping-pong hand-offs with optional home-agent outage
     loop      manufacture a cache loop and watch its dissolution
     sweep     grid of independent roaming trials over a domain pool
               (--jobs), metrics merged deterministically in grid order *)

open Cmdliner
module Time = Netsim.Time
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 42 & info ["seed"] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel sweeps.  Results are bit-identical \
     whatever the value; it only moves wall-clock.  Defaults to the \
     machine's recommended domain count."
  in
  Arg.(value & opt int (Parallel.Sweep.default_jobs ())
       & info ["jobs"; "j"] ~docv:"N" ~doc)

(* --- figure1 --- *)

let run_figure1 seed trace_out =
  let f = TG.figure1 ~seed () in
  let topo = f.TG.topo in
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  let m_addr = Agent.address f.TG.m in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  Workload.Traffic.at traffic (Time.of_sec 0.5) (fun () ->
      Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ());
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 1.0) f.TG.net_d;
  Workload.Traffic.cbr traffic ~src:f.TG.s ~dst:m_addr
    ~start:(Time.of_sec 2.0) ~interval:(Time.of_ms 500) ~count:4 ();
  Workload.Mobility.move_at topo f.TG.m ~at:(Time.of_sec 5.0) f.TG.net_b;
  Workload.Traffic.cbr traffic ~src:f.TG.s ~dst:m_addr
    ~start:(Time.of_sec 6.0) ~interval:(Time.of_ms 500) ~count:2 ();
  Topology.run ~until:(Time.of_sec 8.0) topo;
  if trace_out then
    Netsim.Trace.dump Format.std_formatter (Topology.trace topo);
  Format.printf "%a@." Workload.Metrics.pp_summary metrics;
  List.iter
    (fun agent ->
       Format.printf "%-3s %a@."
         (Node.name (Agent.node agent))
         Mhrp.Counters.pp (Agent.counters agent))
    [f.TG.s; f.TG.r1; f.TG.r2; f.TG.r3; f.TG.r4; f.TG.m]

let figure1_cmd =
  let trace =
    Arg.(value & flag & info ["trace"] ~doc:"Dump the full event trace.")
  in
  Cmd.v
    (Cmd.info "figure1"
       ~doc:"Run the paper's Figure 1 example (Sections 6.1-6.3).")
    Term.(const run_figure1 $ seed_arg $ trace)

(* --- roam --- *)

let run_roam seed campuses mobiles seconds use_lsr json_out =
  let c =
    TG.campuses ~seed ~campuses ~mobiles_per_campus:mobiles
      ~correspondents:4 ()
  in
  let topo = c.TG.c_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  (* --lsr swaps the instantaneous oracle tables for the distributed
     control plane: router tables start cold and are rebuilt from hello
     and LSA exchange.  100 ms hellos converge the backbone well before
     the traffic starts at 700 ms. *)
  let lsr_domain =
    if not use_lsr then None
    else begin
      let d =
        Lsr.Domain.create
          ~config:(Lsr.Config.make ~hello_interval:(Time.of_ms 100) ())
          topo
      in
      Lsr.Domain.start d;
      Some d
    end
  in
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Array.iter
    (fun m ->
       Workload.Metrics.watch_receiver metrics m;
       Workload.Mobility.random_waypoint topo m ~rng:(Topology.rng topo)
         ~lans:c.TG.c_cells ~dwell_mean:(Time.of_sec 5.0)
         ~until:(Time.of_sec (float_of_int (max 1 (seconds - 3)))))
    c.TG.c_mobiles;
  Array.iteri
    (fun k s ->
       let m = c.TG.c_mobiles.(k mod Array.length c.TG.c_mobiles) in
       Workload.Traffic.cbr traffic ~src:s ~dst:(Agent.address m)
         ~start:(Time.of_ms 700) ~interval:(Time.of_ms 200)
         ~count:(max 1 ((seconds * 5) - 5)) ())
    c.TG.c_senders;
  Topology.run ~until:(Time.of_sec (float_of_int seconds)) topo;
  Format.printf "%a@." Workload.Metrics.pp_summary metrics;
  let moves =
    Array.fold_left
      (fun acc m ->
         match Agent.mobile m with
         | Some mh -> acc + mh.Mhrp.Mobile_host.moves
         | None -> acc)
      0 c.TG.c_mobiles
  in
  Format.printf "hand-offs: %d@." moves;
  (match lsr_domain with
   | None -> ()
   | Some d ->
     Format.printf "lsr: %a@." Lsr.Counters.pp (Lsr.Domain.totals d);
     Format.printf "lsr converged: %b  oracle-equivalent: %b@."
       (Lsr.Domain.synchronized d) (Lsr.Domain.equivalent d));
  match json_out with
  | None -> ()
  | Some file ->
    let reg = Obs.Registry.create () in
    Workload.Metrics.record_obs metrics reg ~exp:"roam"
      ~labels:[("campuses", string_of_int campuses)] ();
    Obs.Registry.counter reg ~exp:"roam"
      ~labels:[("campuses", string_of_int campuses)] "handoffs" moves;
    let oc = open_out file in
    output_string oc (Obs.Json.to_string ~pretty:true (Obs.Registry.to_json ~commit:"" reg));
    output_char oc '\n';
    close_out oc;
    Format.printf "metrics written to %s@." file

let roam_cmd =
  let campuses =
    Arg.(value & opt int 4 & info ["campuses"] ~docv:"N"
           ~doc:"Number of campuses.")
  in
  let mobiles =
    Arg.(value & opt int 2 & info ["mobiles"] ~docv:"N"
           ~doc:"Mobile hosts per campus.")
  in
  let seconds =
    Arg.(value & opt int 30 & info ["seconds"] ~docv:"S"
           ~doc:"Simulated seconds.")
  in
  let json =
    Arg.(value & opt (some string) None & info ["json"] ~docv:"FILE"
           ~doc:"Also write the run's metrics as JSON (lib/obs schema).")
  in
  let use_lsr =
    Arg.(value & flag
         & info ["lsr"]
             ~doc:"Replace the instantaneous routing oracle with the \
                   distributed link-state control plane (lib/lsr): \
                   routers start with empty tables and build them from \
                   hello and LSA exchange inside the simulation.")
  in
  Cmd.v
    (Cmd.info "roam"
       ~doc:"Random-waypoint roaming over a campus internetwork.")
    Term.(const run_roam $ seed_arg $ campuses $ mobiles $ seconds
          $ use_lsr $ json)

(* --- handoff --- *)

let run_handoff seed period_ms ha_outage =
  let f = TG.figure1 ~seed () in
  let topo = f.TG.topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let net_e = Topology.add_lan topo ~net:5 "netE" in
  let r5n = Topology.add_router topo "R5" [(f.TG.net_c, 3); (net_e, 1)] in
  Topology.compute_routes topo;
  let r5 = Agent.create r5n in
  Agent.enable_foreign_agent r5
    ~iface:(Option.get (Node.iface_to r5n (Net.Lan.prefix net_e)));
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  Workload.Mobility.ping_pong topo f.TG.m ~a:f.TG.net_d ~b:net_e
    ~start:(Time.of_sec 1.0) ~period:(Time.of_ms period_ms) ~moves:10;
  Workload.Traffic.cbr traffic ~src:f.TG.s ~dst:(Agent.address f.TG.m)
    ~start:(Time.of_ms 1100) ~interval:(Time.of_ms 200) ~count:60 ();
  if ha_outage then begin
    Workload.Traffic.at traffic (Time.of_sec 4.0) (fun () ->
        Node.set_up (Agent.node f.TG.r2) false);
    Workload.Traffic.at traffic (Time.of_sec 9.0) (fun () ->
        Node.set_up (Agent.node f.TG.r2) true)
  end;
  Topology.run ~until:(Time.of_sec 16.0) topo;
  Format.printf "%a@." Workload.Metrics.pp_summary metrics;
  Format.printf "forwarding-pointer re-tunnels: R4=%d R5=%d@."
    (Agent.counters f.TG.r4).Mhrp.Counters.retunnels
    (Agent.counters r5).Mhrp.Counters.retunnels

let handoff_cmd =
  let period =
    Arg.(value & opt int 1000 & info ["period"] ~docv:"MS"
           ~doc:"Milliseconds between hand-offs.")
  in
  let outage =
    Arg.(value & flag & info ["ha-outage"]
           ~doc:"Take the home agent down mid-run.")
  in
  Cmd.v
    (Cmd.info "handoff" ~doc:"Rapid hand-offs between two wireless cells.")
    Term.(const run_handoff $ seed_arg $ period $ outage)

(* --- loop --- *)

let run_loop seed size max_list =
  ignore seed;
  let config =
    Mhrp.Config.make ~max_prev_sources:max_list
      ~on_loop:Mhrp.Config.Tunnel_home ()
  in
  let ch = TG.chain ~config ~n:(size + 1) () in
  let topo = ch.TG.ch_topo in
  let routers = ch.TG.ch_routers in
  let mn = Topology.add_host topo "Mh" ch.TG.ch_stubs.(0) 99 in
  Topology.compute_routes topo;
  let m = Agent.create ~config mn in
  Agent.make_mobile m ~home_agent:(Agent.address routers.(0));
  Agent.enable_home_agent routers.(0);
  Agent.add_mobile routers.(0) (Agent.address m);
  let mobile = Agent.address m in
  let ring = Array.sub routers 1 size in
  Array.iteri
    (fun k r ->
       Mhrp.Location_cache.insert (Agent.cache r) ~mobile
         ~foreign_agent:(Agent.address ring.((k + 1) mod size)))
    ring;
  let pkt =
    Ipv4.Packet.make ~id:1 ~proto:Ipv4.Proto.udp ~src:(Ipv4.Addr.host 200 1)
      ~dst:mobile
      (Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.create 16)))
  in
  Node.inject_local (Agent.node ring.(0))
    (Mhrp.Encap.tunnel_by_sender ~foreign_agent:(Agent.address ring.(0)) pkt);
  Topology.run ~until:(Time.of_sec 20.0) topo;
  Netsim.Trace.dump Format.std_formatter (Topology.trace topo);
  Array.iter
    (fun r ->
       Format.printf "%s: %a@." (Node.name (Agent.node r)) Mhrp.Counters.pp
         (Agent.counters r))
    ring

let loop_cmd =
  let size =
    Arg.(value & opt int 3 & info ["size"] ~docv:"L"
           ~doc:"Number of cache agents in the loop.")
  in
  let max_list =
    Arg.(value & opt int 8 & info ["max-list"] ~docv:"K"
           ~doc:"Maximum previous-source list length.")
  in
  Cmd.v
    (Cmd.info "loop"
       ~doc:"Manufacture a cache-agent loop and trace its dissolution.")
    Term.(const run_loop $ seed_arg $ size $ max_list)

(* --- sweep --- *)

(* One independent roaming trial: its own engine, topology and RNG, all
   seeded from the sweep's per-trial seed, with metrics recorded into the
   trial's private registry.  Pure in the Sweep sense: no shared state,
   no printing. *)
let sweep_trial ctx (campuses, trial_no) =
  let seed = ctx.Parallel.Sweep.seed in
  let c =
    TG.campuses ~seed ~campuses ~mobiles_per_campus:2 ~correspondents:4 ()
  in
  let topo = c.TG.c_topo in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Array.iter
    (fun m ->
       Workload.Metrics.watch_receiver metrics m;
       Workload.Mobility.random_waypoint topo m ~rng:(Topology.rng topo)
         ~lans:c.TG.c_cells ~dwell_mean:(Time.of_sec 5.0)
         ~until:(Time.of_sec 17.0))
    c.TG.c_mobiles;
  Array.iteri
    (fun k s ->
       let m = c.TG.c_mobiles.(k mod Array.length c.TG.c_mobiles) in
       Workload.Traffic.cbr traffic ~src:s ~dst:(Agent.address m)
         ~start:(Time.of_ms 700) ~interval:(Time.of_ms 200) ~count:90 ())
    c.TG.c_senders;
  Topology.run ~until:(Time.of_sec 20.0) topo;
  let sent = List.length (Workload.Metrics.records metrics) in
  let delivered = List.length (Workload.Metrics.delivered metrics) in
  let handoffs =
    Array.fold_left
      (fun acc m ->
         match Agent.mobile m with
         | Some mh -> acc + mh.Mhrp.Mobile_host.moves
         | None -> acc)
      0 c.TG.c_mobiles
  in
  let labels =
    [ ("campuses", string_of_int campuses);
      ("trial", string_of_int trial_no) ]
  in
  let reg = ctx.Parallel.Sweep.registry in
  Obs.Registry.counter reg ~exp:"sweep" ~labels "sent" sent;
  Obs.Registry.counter reg ~exp:"sweep" ~labels "delivered" delivered;
  Obs.Registry.counter reg ~exp:"sweep" ~labels "handoffs" handoffs;
  (campuses, trial_no, sent, delivered, handoffs)

let run_sweep seed jobs campuses trials json_out =
  Parallel.Sweep.set_default_jobs jobs;
  let points =
    List.concat_map
      (fun n -> List.init trials (fun t -> (n, t)))
      campuses
  in
  let registry = Obs.Registry.create () in
  let wall = ref 0.0 in
  let outcomes =
    Parallel.Sweep.run ~into:registry ~seed ~trial:sweep_trial points
      ~on_done:(fun s -> wall := s.Parallel.Sweep.elapsed_s)
  in
  Format.printf "%-9s %-6s %-6s %-10s %-9s@." "campuses" "trial" "sent"
    "delivered" "handoffs";
  List.iter
    (fun (n, t, sent, delivered, handoffs) ->
       Format.printf "%-9d %-6d %-6d %-10d %-9d@." n t sent delivered
         handoffs)
    outcomes;
  Format.printf "%d trials over %d domains in %.0f ms@."
    (List.length points) jobs (!wall *. 1000.0);
  match json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc
      (Obs.Json.to_string ~pretty:true
         (Obs.Registry.to_json ~commit:"" registry));
    output_char oc '\n';
    close_out oc;
    Format.printf "metrics written to %s@." file

let sweep_cmd =
  let campuses =
    Arg.(value & opt (list int) [2; 4; 8]
         & info ["campuses"] ~docv:"N,N,.."
             ~doc:"Campus counts to sweep over.")
  in
  let trials =
    Arg.(value & opt int 3 & info ["trials"] ~docv:"T"
           ~doc:"Independently seeded trials per campus count.")
  in
  let json =
    Arg.(value & opt (some string) None & info ["json"] ~docv:"FILE"
           ~doc:"Also write the sweep's metrics as JSON (lib/obs schema).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a campuses x trials grid of independent roaming \
             simulations across a pool of domains.  Trial seeds derive \
             from --seed and the grid position, so the merged metrics \
             are bit-identical for any --jobs value.")
    Term.(const run_sweep $ seed_arg $ jobs_arg $ campuses $ trials $ json)

let () =
  let info =
    Cmd.info "mhrp_sim" ~version:"1.0.0"
      ~doc:"Simulator for the Mobile Host Routing Protocol (Johnson, ICDCS \
            1994)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [figure1_cmd; roam_cmd; handoff_cmd; loop_cmd; sweep_cmd]))
