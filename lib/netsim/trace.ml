type event = {
  at : Time.t;
  node : string;
  kind : string;
  detail : string;
}

type t = {
  mutable events : event list; (* newest first *)
  mutable n : int;
  capacity : int;
  mutable on : bool;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { events = []; n = 0; capacity; on = true }

let enabled t = t.on
let set_enabled t v = t.on <- v

let active = function None -> false | Some t -> t.on

let emit t ~at ~node ~kind detail =
  if t.on then begin
    t.events <- { at; node; kind; detail } :: t.events;
    t.n <- t.n + 1;
    if t.n > t.capacity then begin
      (* Drop the oldest half.  Amortised O(1) per emit. *)
      let keep = t.capacity / 2 in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | e :: rest -> e :: take (k - 1) rest
      in
      t.events <- take keep t.events;
      t.n <- keep
    end
  end

let events t = List.rev t.events
let find t ~kind = List.filter (fun e -> String.equal e.kind kind) (events t)
let count t ~kind = List.length (find t ~kind)

let clear t =
  t.events <- [];
  t.n <- 0

let pp_event ppf e =
  Format.fprintf ppf "[%a] %-12s %-14s %s" Time.pp e.at e.node e.kind e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
