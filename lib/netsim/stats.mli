(** Streaming statistics and histograms for experiment metrics. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summary_to_json : summary -> Obs.Json.t
(** Structured form of a summary, for the benchmark JSON (Obs). *)

(** Online mean/variance accumulator (Welford). *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0.0 when empty. *)

  val stddev : t -> float
  (** Sample standard deviation; 0.0 with fewer than two samples. *)

  val min : t -> float
  val max : t -> float
  (** Raise [Invalid_argument] when empty. *)

  val summary : t -> summary
  val pp : Format.formatter -> t -> unit

  val to_json : t -> Obs.Json.t
  (** [summary_to_json (summary t)]. *)
end

(** Reservoir of all samples, for exact percentiles. *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [\[0, 100\]], nearest-rank.
      Raises [Invalid_argument] when empty or [p] out of range. *)

  val mean : t -> float
  val to_list : t -> float list

  val to_metric : ?tol:Obs.Metric.tol -> t -> Obs.Metric.t
  (** p50/p95/max histogram metric over the samples, ready for
      {!Obs.Registry.set}.  Default tolerance [Exact]. *)
end

(** Integer-bucketed histogram. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int
  val get : t -> int -> int
  (** Occurrences of a bucket value. *)

  val buckets : t -> (int * int) list
  (** (value, occurrences), ascending by value. *)

  val mode : t -> int
  (** Most frequent value.  Raises [Invalid_argument] when empty. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> Obs.Json.t
  (** Buckets as an object keyed by the bucket value, ascending. *)
end
