(** Deterministic pseudo-random number generation.

    A self-contained splitmix64 generator so that simulations are
    reproducible independent of the OCaml stdlib [Random] implementation.
    Each simulation component can [split] its own stream so that adding a
    consumer does not perturb the draws seen by others. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val of_int : int -> t

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t

val next_int64 : t -> int64
(** Uniform over all 2^64 values. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp(1/mean); used for inter-arrival
    times of traffic and movement. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
