type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summary_to_json s =
  Obs.Json.Obj
    [ ("count", Obs.Json.Int s.count);
      ("mean", Obs.Json.Float s.mean);
      ("stddev", Obs.Json.Float s.stddev);
      ("min", Obs.Json.Float s.min);
      ("max", Obs.Json.Float s.max) ]

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  let min t = if t.n = 0 then invalid_arg "Stats.Acc.min: empty" else t.min
  let max t = if t.n = 0 then invalid_arg "Stats.Acc.max: empty" else t.max

  let summary t =
    { count = t.n;
      mean = mean t;
      stddev = stddev t;
      min = (if t.n = 0 then nan else t.min);
      max = (if t.n = 0 then nan else t.max) }

  let pp ppf t =
    if t.n = 0 then Format.fprintf ppf "n=0"
    else
      Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f"
        t.n (mean t) (stddev t) t.min t.max

  let to_json t = summary_to_json (summary t)
end

module Samples = struct
  type t = { mutable xs : float list; mutable n : int }

  let create () = { xs = []; n = 0 }

  let add t x =
    t.xs <- x :: t.xs;
    t.n <- t.n + 1

  let count t = t.n

  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Samples.percentile: empty";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Samples.percentile: p out of range";
    let sorted = List.sort Float.compare t.xs in
    let arr = Array.of_list sorted in
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) - 1
    in
    let rank = if rank < 0 then 0 else rank in
    arr.(rank)

  let mean t =
    if t.n = 0 then 0.0
    else List.fold_left ( +. ) 0.0 t.xs /. float_of_int t.n

  let to_list t = List.rev t.xs

  let to_metric ?(tol = Obs.Metric.Exact) t =
    { Obs.Metric.value = Obs.Metric.hist_of_samples t.xs; tol }
end

module Hist = struct
  type t = { tbl : (int, int) Hashtbl.t; mutable n : int }

  let create () = { tbl = Hashtbl.create 16; n = 0 }

  let add t v =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.tbl v) in
    Hashtbl.replace t.tbl v (cur + 1);
    t.n <- t.n + 1

  let count t = t.n
  let get t v = Option.value ~default:0 (Hashtbl.find_opt t.tbl v)

  let buckets t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let mode t =
    if t.n = 0 then invalid_arg "Stats.Hist.mode: empty";
    let best, _ =
      List.fold_left
        (fun (bk, bv) (k, v) -> if v > bv then (k, v) else (bk, bv))
        (0, -1) (buckets t)
    in
    best

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    List.iter (fun (k, v) -> Format.fprintf ppf "%6d: %d@," k v) (buckets t);
    Format.fprintf ppf "@]"

  let to_json t =
    Obs.Json.Obj
      (List.map
         (fun (k, v) -> (string_of_int k, Obs.Json.Int v))
         (buckets t))
end
