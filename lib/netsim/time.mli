(** Simulated time.

    All simulation timestamps are integer microseconds from the start of the
    simulation.  Integer time keeps the event queue total-ordered and the
    whole simulation bit-for-bit deterministic across runs and platforms. *)

type t = int
(** Microseconds since simulation start.  Always non-negative. *)

val zero : t

val of_us : int -> t
(** [of_us n] is [n] microseconds.  Raises [Invalid_argument] if negative. *)

val of_ms : int -> t
val of_sec : float -> t

val to_us : t -> int
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val diff : t -> t -> t
(** [diff later earlier] is [later - earlier].  Raises [Invalid_argument]
    if the result would be negative. *)

val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as seconds with microsecond precision, e.g. ["1.250000s"]. *)

val to_string : t -> string
