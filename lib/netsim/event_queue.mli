(** Priority queue of timed events.

    A binary min-heap ordered by (time, sequence number): events scheduled
    for the same instant fire in the order they were scheduled, which keeps
    simulations deterministic. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> Time.t -> 'a -> handle
(** [push q at x] schedules [x] at time [at]. *)

val cancel : 'a t -> handle -> bool
(** [cancel q h] removes the event; returns [false] if it already fired or
    was already cancelled. *)

val pop : 'a t -> (Time.t * 'a) option
(** Earliest live event, removing it. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest live event. *)
