(** The discrete-event simulation engine.

    An engine owns the clock and an event queue of thunks.  Components
    schedule callbacks at absolute or relative times; [run] drains the queue
    in timestamp order, advancing the clock to each event as it fires.

    {1 Domain safety}

    [create] is safe to call from any domain, so parallel sweeps
    ({!Parallel.Sweep}) give every trial its own engine.  A given [t] is
    single-domain-only: nothing here is synchronised, so all calls on one
    engine — scheduling, [run], accessors — must come from the domain that
    created it.  Engines share no mutable state with each other. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine with clock at {!Time.zero}.  [seed] (default 42) seeds the
    root random stream from which components [split]. *)

val now : t -> Time.t

val rng : t -> Rng.t
(** The engine's root random stream.  Components needing isolation should
    [Rng.split] it once at setup. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> Event_queue.handle
(** Schedule at an absolute time, which must be [>= now]. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> Event_queue.handle
val cancel : t -> Event_queue.handle -> bool

val every : t -> interval:Time.t -> ?until:Time.t -> (unit -> unit) -> unit
(** [every t ~interval f] runs [f] at [now + interval, now + 2*interval, ...],
    stopping after [until] when given.  Used for periodic agent
    advertisements. *)

val run : ?until:Time.t -> t -> unit
(** Drain the event queue.  With [until], stops (leaving later events
    queued) once the next event would fire after [until], and sets the
    clock to [until]. *)

val pending : t -> int
(** Events currently queued. *)

val events_processed : t -> int
(** Total events fired since creation. *)
