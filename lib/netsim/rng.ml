type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z0 =
  let z = Int64.mul (Int64.logxor z0 (Int64.shift_right_logical z0 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (next_int64 t)
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection-free for our purposes: take the high bits modulo bound; the
     bias is < bound / 2^63, negligible for simulation workloads. *)
  let v = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: bound <= 0";
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  (* 53 random bits -> [0, 1) *)
  Int64.to_float v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean <= 0";
  let u = float t 1.0 in
  (* avoid log 0 *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
