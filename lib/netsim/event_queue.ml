type 'a entry = { at : Time.t; seq : int; id : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable next_id : int;
  pending : (int, unit) Hashtbl.t;
  (* ids currently in the heap and not cancelled *)
}

type handle = int

let create () =
  { heap = [||]; size = 0; next_seq = 0; next_id = 0;
    pending = Hashtbl.create 64 }

let is_empty q = Hashtbl.length q.pending = 0
let length q = Hashtbl.length q.pending

let entry_lt a b =
  match Time.compare a.at b.at with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let dummy = q.heap.(0) in
    let nheap = Array.make ncap dummy in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && entry_lt q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && entry_lt q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q at payload =
  let id = q.next_id in
  q.next_id <- id + 1;
  let e = { at; seq = q.next_seq; id; payload } in
  q.next_seq <- q.next_seq + 1;
  if Array.length q.heap = 0 then q.heap <- Array.make 16 e;
  grow q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1);
  Hashtbl.replace q.pending id ();
  id

let cancel q h =
  if Hashtbl.mem q.pending h then begin
    Hashtbl.remove q.pending h;
    true
  end else false

let remove_top q =
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end

let rec pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    remove_top q;
    if Hashtbl.mem q.pending top.id then begin
      Hashtbl.remove q.pending top.id;
      Some (top.at, top.payload)
    end else pop q (* was cancelled; discard *)
  end

let rec peek_time q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    if Hashtbl.mem q.pending top.id then Some top.at
    else begin
      remove_top q;
      peek_time q
    end
  end
