type t = int

let zero = 0

let of_us n =
  if n < 0 then invalid_arg "Time.of_us: negative" else n

let of_ms n = of_us (n * 1_000)

let of_sec s =
  if s < 0.0 then invalid_arg "Time.of_sec: negative"
  else int_of_float (s *. 1e6 +. 0.5)

let to_us t = t
let to_ms t = float_of_int t /. 1e3
let to_sec t = float_of_int t /. 1e6

let add a b = a + b

let diff later earlier =
  if later < earlier then invalid_arg "Time.diff: negative interval"
  else later - earlier

let compare = Int.compare
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b

let pp ppf t = Format.fprintf ppf "%d.%06ds" (t / 1_000_000) (t mod 1_000_000)
let to_string t = Format.asprintf "%a" pp t
