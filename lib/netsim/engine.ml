type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Event_queue.t;
  root_rng : Rng.t;
  mutable fired : int;
}

let create ?(seed = 42) () =
  { clock = Time.zero;
    queue = Event_queue.create ();
    root_rng = Rng.of_int seed;
    fired = 0 }

let now t = t.clock
let rng t = t.root_rng

let schedule t ~at f =
  if Time.(at < t.clock) then
    invalid_arg "Engine.schedule: time in the past";
  Event_queue.push t.queue at f

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f

let cancel t h = Event_queue.cancel t.queue h

let every t ~interval ?until f =
  if Time.to_us interval <= 0 then invalid_arg "Engine.every: zero interval";
  let rec tick () =
    let next = Time.add t.clock interval in
    match until with
    | Some stop when Time.(next > stop) -> ()
    | _ ->
      ignore (schedule t ~at:next (fun () -> f (); tick ()))
  in
  tick ()

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, f) ->
    t.clock <- at;
    t.fired <- t.fired + 1;
    f ();
    true

let run ?until t =
  let continue () =
    match until, Event_queue.peek_time t.queue with
    | _, None -> false
    | None, Some _ -> true
    | Some stop, Some next -> Time.(next <= stop)
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some stop when Time.(stop > t.clock) -> t.clock <- stop
  | _ -> ()

let pending t = Event_queue.length t.queue
let events_processed t = t.fired
