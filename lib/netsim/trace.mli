(** Structured simulation trace.

    A trace is an append-only log of tagged events with timestamps.  Tests
    assert on event sequences; examples pretty-print them; the bench harness
    counts categories.  Payloads are pre-rendered strings so that the trace
    layer has no dependency on protocol types. *)

type event = {
  at : Time.t;
  node : string;  (** Name of the node where the event occurred. *)
  kind : string;  (** Category tag, e.g. ["tunnel"], ["loc-update"]. *)
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds memory (default 65536 events); older events are
    dropped once full, keeping the most recent. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val active : t option -> bool
(** [active tr] — a trace is present and enabled.  Per-packet emitters
    (and the forwarding fast path, which skips work when nobody
    listens) guard on this before rendering any detail string. *)

val emit : t -> at:Time.t -> node:string -> kind:string -> string -> unit
val events : t -> event list
(** Oldest first. *)

val count : t -> kind:string -> int
val find : t -> kind:string -> event list
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
val dump : Format.formatter -> t -> unit
