type t = {
  mutable ttl_expired : int;
  mutable fault_losses : int;
  mutable drops : int;
}

let watch topo =
  let t = { ttl_expired = 0; fault_losses = 0; drops = 0 } in
  let arm node =
    Net.Node.on_drop node (fun _ reason _pkt ->
        t.drops <- t.drops + 1;
        if String.equal reason "ttl-expired" then
          t.ttl_expired <- t.ttl_expired + 1
        else if String.equal reason "fault-loss" then
          t.fault_losses <- t.fault_losses + 1)
  in
  List.iter arm (Net.Topology.nodes topo);
  Net.Topology.on_node_added topo arm;
  t

let ttl_expired t = t.ttl_expired
let fault_losses t = t.fault_losses
let drops t = t.drops
let no_forwarding_loops t = t.ttl_expired = 0
