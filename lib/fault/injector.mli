(** Compiles a {!Schedule.t} onto a topology's event queue.

    Each schedule item becomes engine timers: link flaps and partitions
    toggle {!Net.Lan.set_up}, crashes run {!Net.Node.crash_for} (volatile
    state dropped on reboot, routing table retained), and control-loss
    windows install a {!Net.Node.set_fault_filter} on every node — present
    and future — that drops MHRP control transmissions with the given
    probability, drawn from the injector's own seeded stream.

    Everything the injector actually does is written to a ledger, one
    entry per state transition at the simulated time it happened, so a
    campaign's fault history can be recorded alongside its metrics and
    two runs with the same seed can be diffed event-for-event. *)

type t

val create : ?seed:int -> Net.Topology.t -> t
(** [seed] (default [0xFA17]) feeds the loss stream only; it is
    independent of the topology's own RNG so adding faults does not
    perturb workload arrival times. *)

val inject : t -> Schedule.t -> unit
(** Compile the schedule onto the engine.  Call before [Topology.run];
    items whose times have already passed will never fire.  Raises
    [Invalid_argument] on an unknown LAN or node name, or a control-loss
    rate outside [0, 1].  May be called more than once; later calls add
    to the same ledger and loss-span set. *)

(** {1 Ledger and accounting} *)

val ledger : t -> (Netsim.Time.t * string) list
(** Every injected transition, oldest first: ["lan-down net-b"],
    ["crash r4"], ["reboot r4"], ["partition [...]"], ["heal [...]"],
    ["control-loss 0.30 on"/"off"]. *)

val events : t -> int

val windows : t -> (Netsim.Time.t * Netsim.Time.t) list
(** The disruptive spans [(start, end)] of every item, sorted by start —
    the periods during which delivery guarantees are suspended. *)

val lan_flaps : t -> int
val crashes : t -> int
val partitions : t -> int
val loss_windows : t -> int

val control_losses : t -> int
(** Control transmissions actually dropped by the loss filter. *)

val is_control : Ipv4.Packet.t -> bool
(** The loss filter's own classifier, exported for byte accounting:
    [true] for MHRP control traffic in any of its encodings (port-434
    UDP, the MHRP ICMP messages, either inside an MHRP tunnel).
    Link-state routing traffic ({!Ipv4.Proto.lsrp}) is {e not} control
    in this sense — faults reach it through link flaps, crashes and
    partitions rather than the MHRP control-loss dice. *)

val pp_ledger : Format.formatter -> t -> unit
