module Time = Netsim.Time
module Engine = Netsim.Engine

type t = {
  topo : Net.Topology.t;
  rng : Netsim.Rng.t;
  mutable ledger : (Time.t * string) list;  (* newest first *)
  mutable spans : (Time.t * Time.t) list;  (* every disruptive span *)
  mutable loss_spans : (float * Time.t * Time.t) list;
  mutable filter_installed : bool;
  mutable lan_flaps : int;
  mutable crashes : int;
  mutable partitions : int;
  mutable loss_windows : int;
  mutable control_losses : int;
}

let create ?(seed = 0xFA17) topo =
  { topo; rng = Netsim.Rng.of_int seed; ledger = []; spans = [];
    loss_spans = []; filter_installed = false; lan_flaps = 0; crashes = 0;
    partitions = 0; loss_windows = 0; control_losses = 0 }

let engine t = Net.Topology.engine t.topo

let note t msg = t.ledger <- (Engine.now (engine t), msg) :: t.ledger

let at_time t ~at f = ignore (Engine.schedule (engine t) ~at f)

(* --- control-message classification --- *)

let is_control_port (udp : Ipv4.Udp.t) =
  udp.Ipv4.Udp.src_port = Mhrp.Control.port
  || udp.Ipv4.Udp.dst_port = Mhrp.Control.port

let is_control_udp payload =
  match Ipv4.Udp.decode payload with
  | udp -> is_control_port udp
  | exception Invalid_argument _ -> false

let is_control_icmp payload =
  match Ipv4.Icmp.decode_opt payload with
  | Some
      (Ipv4.Icmp.Location_update _ | Ipv4.Icmp.Agent_advertisement _
      | Ipv4.Icmp.Agent_solicitation) -> true
  | Some _ | None | (exception Invalid_argument _) -> false

(* Control traffic rides three encodings: port-434 UDP datagrams, the
   MHRP ICMP messages, and either of those inside an MHRP tunnel (a
   registration reply to a visiting host travels encapsulated).  Control
   messages are far smaller than any MTU, so a fragment is never one. *)
let is_control (pkt : Ipv4.Packet.t) =
  (not (Ipv4.Packet.is_fragment pkt))
  &&
  let proto = pkt.Ipv4.Packet.proto in
  if proto = Ipv4.Proto.udp then is_control_udp pkt.Ipv4.Packet.payload
  else if proto = Ipv4.Proto.icmp then is_control_icmp pkt.Ipv4.Packet.payload
  else if proto = Ipv4.Proto.mhrp then
    match Mhrp.Mhrp_header.decode pkt.Ipv4.Packet.payload with
    | exception Invalid_argument _ -> false
    | header, transport ->
      let orig = header.Mhrp.Mhrp_header.orig_proto in
      if orig = Ipv4.Proto.udp then is_control_udp transport
      else if orig = Ipv4.Proto.icmp then is_control_icmp transport
      else false
  else false

let loss_rate_now t =
  let now = Engine.now (engine t) in
  List.fold_left
    (fun acc (rate, from_, until) ->
       if Time.(now >= from_) && Time.(now < until) then Float.max acc rate
       else acc)
    0.0 t.loss_spans

(* Loss is per message, not per hop: the dice roll happens only at the
   node that originated the datagram (it owns the source address), so a
   multi-hop control exchange faces exactly the scheduled rate.  A reply
   tunneled back to a visiting host keeps the replier as outer source,
   so it too is rolled once, at its origin. *)
let control_filter t node pkt =
  if not (Net.Node.has_address node pkt.Ipv4.Packet.src) then true
  else if not (is_control pkt) then true
  else begin
    let rate = loss_rate_now t in
    (* Always draw when a loss span could apply, never otherwise: the
       stream then depends only on the control-traffic sequence, not on
       which spans happen to be active, keeping campaigns replayable. *)
    if rate <= 0.0 then true
    else if Netsim.Rng.float t.rng 1.0 < rate then begin
      t.control_losses <- t.control_losses + 1;
      false
    end
    else true
  end

let install_filter t =
  if not t.filter_installed then begin
    t.filter_installed <- true;
    let arm node = Net.Node.set_fault_filter node (Some (control_filter t)) in
    List.iter arm (Net.Topology.nodes t.topo);
    Net.Topology.on_node_added t.topo arm
  end

(* --- schedule compilation --- *)

let lan_of t name =
  try Net.Topology.lan t.topo name
  with Not_found -> invalid_arg ("Fault.Injector: unknown lan " ^ name)

let node_of t name =
  try Net.Topology.node t.topo name
  with Not_found -> invalid_arg ("Fault.Injector: unknown node " ^ name)

let span t ~at ~duration = t.spans <- (at, Time.add at duration) :: t.spans

let lan_flap t name ~at ~duration =
  let lan = lan_of t name in
  t.lan_flaps <- t.lan_flaps + 1;
  span t ~at ~duration;
  at_time t ~at (fun () ->
      Net.Lan.set_up lan false;
      note t (Printf.sprintf "lan-down %s" name));
  at_time t ~at:(Time.add at duration) (fun () ->
      Net.Lan.set_up lan true;
      note t (Printf.sprintf "lan-up %s" name))

let inject_item t = function
  | Schedule.Lan_down { lan; at; duration } -> lan_flap t lan ~at ~duration
  | Schedule.Crash { node; at; duration } ->
    let n = node_of t node in
    t.crashes <- t.crashes + 1;
    span t ~at ~duration;
    at_time t ~at (fun () ->
        note t (Printf.sprintf "crash %s" node);
        Net.Node.crash_for n duration);
    at_time t ~at:(Time.add at duration) (fun () ->
        note t (Printf.sprintf "reboot %s" node))
  | Schedule.Partition { lans; at; duration } ->
    t.partitions <- t.partitions + 1;
    span t ~at ~duration;
    let ls = List.map (lan_of t) lans in
    let label = String.concat " " lans in
    at_time t ~at (fun () ->
        List.iter (fun l -> Net.Lan.set_up l false) ls;
        note t (Printf.sprintf "partition [%s]" label));
    at_time t ~at:(Time.add at duration) (fun () ->
        List.iter (fun l -> Net.Lan.set_up l true) ls;
        note t (Printf.sprintf "heal [%s]" label))
  | Schedule.Control_loss { rate; from_; until } ->
    if rate < 0.0 || rate > 1.0 then
      invalid_arg "Injector.inject: control-loss rate outside [0, 1]";
    t.loss_windows <- t.loss_windows + 1;
    t.spans <- (from_, until) :: t.spans;
    t.loss_spans <- (rate, from_, until) :: t.loss_spans;
    install_filter t;
    at_time t ~at:from_ (fun () ->
        note t (Printf.sprintf "control-loss %.2f on" rate));
    at_time t ~at:until (fun () ->
        note t (Printf.sprintf "control-loss %.2f off" rate))

let inject t schedule = List.iter (inject_item t) schedule

(* --- observation --- *)

let ledger t = List.rev t.ledger
let events t = List.length t.ledger
let windows t =
  List.sort (fun (a, _) (b, _) -> Time.compare a b) t.spans

let lan_flaps t = t.lan_flaps
let crashes t = t.crashes
let partitions t = t.partitions
let loss_windows t = t.loss_windows
let control_losses t = t.control_losses

let pp_ledger ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline
    (fun ppf (at, msg) -> Format.fprintf ppf "%a %s" Time.pp at msg)
    ppf (ledger t)
