type item =
  | Lan_down of {
      lan : string;
      at : Netsim.Time.t;
      duration : Netsim.Time.t;
    }
  | Crash of {
      node : string;
      at : Netsim.Time.t;
      duration : Netsim.Time.t;
    }
  | Partition of {
      lans : string list;
      at : Netsim.Time.t;
      duration : Netsim.Time.t;
    }
  | Control_loss of {
      rate : float;
      from_ : Netsim.Time.t;
      until : Netsim.Time.t;
    }

type t = item list

let pp_span ppf (at, duration) =
  Format.fprintf ppf "at %a for %a" Netsim.Time.pp at Netsim.Time.pp duration

let pp_item ppf = function
  | Lan_down { lan; at; duration } ->
    Format.fprintf ppf "lan-down %s %a" lan pp_span (at, duration)
  | Crash { node; at; duration } ->
    Format.fprintf ppf "crash %s %a" node pp_span (at, duration)
  | Partition { lans; at; duration } ->
    Format.fprintf ppf "partition [%s] %a" (String.concat " " lans) pp_span
      (at, duration)
  | Control_loss { rate; from_; until } ->
    Format.fprintf ppf "control-loss %.2f from %a until %a" rate
      Netsim.Time.pp from_ Netsim.Time.pp until

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_item ppf t
