(** Campaign-wide invariant watcher.

    Taps every node's drop stream (present and future nodes alike) and
    counts the drops that matter to the fault experiments:

    - ["ttl-expired"] drops witness a forwarding loop.  MHRP's routing
      never loops — tunnels point at agents, agents deliver locally — so
      a fault campaign must end with {!no_forwarding_loops} true no
      matter what was injected.
    - ["fault-loss"] drops are the injector's own doing and cross-check
      {!Injector.control_losses}. *)

type t

val watch : Net.Topology.t -> t
(** Install drop taps on all current nodes and subscribe to future
    ones.  Install before running the workload. *)

val ttl_expired : t -> int
val fault_losses : t -> int

val drops : t -> int
(** All drops, any reason. *)

val no_forwarding_loops : t -> bool
(** [ttl_expired t = 0]. *)
