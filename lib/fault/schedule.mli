(** Declarative failure schedules for fault-injection campaigns.

    A schedule is pure data: the set of faults a campaign injects, each
    pinned to simulated time.  {!Injector.inject} compiles it onto the
    engine's timer queue, so two runs of the same schedule over the same
    topology and seed replay identically. *)

type item =
  | Lan_down of {
      lan : string;  (** LAN name, as registered with the topology. *)
      at : Netsim.Time.t;
      duration : Netsim.Time.t;
    }  (** Link flap: the LAN carries no frames during the span. *)
  | Crash of {
      node : string;  (** Node name. *)
      at : Netsim.Time.t;
      duration : Netsim.Time.t;
    }
      (** Router/host crash and reboot: down for the span, then
          {!Net.Node.reboot} drops volatile state (ARP caches, visitor
          lists) while the routing table survives. *)
  | Partition of {
      lans : string list;
      at : Netsim.Time.t;
      duration : Netsim.Time.t;
    }  (** Several LANs fail together, splitting the internetwork. *)
  | Control_loss of {
      rate : float;  (** Per-message loss probability in [0, 1]. *)
      from_ : Netsim.Time.t;
      until : Netsim.Time.t;
    }
      (** Every MHRP control message (port-434 datagrams — also inside
          MHRP tunnels — location updates, agent advertisements and
          solicitations) is lost with this probability, drawn from the
          injector's own seeded stream.  The roll happens once per
          message, at its originating node, not per hop.  Data packets
          pass. *)

type t = item list

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit
