(* One BFS per node over the LAN-adjacency graph (all edges cost one LAN
   traversal), expanding only through routers, which matches IP: hosts do
   not forward.  Neighbour order is sorted by node name so the resulting
   tables are deterministic. *)

type graph = {
  nodes : Node.t array;  (* sorted by name *)
  index : (string, int) Hashtbl.t;
  adj : (int * Lan.t) list array;  (* neighbour, connecting LAN *)
}

let build ~nodes ~lans =
  let nodes =
    List.sort (fun a b -> String.compare (Node.name a) (Node.name b)) nodes
    |> Array.of_list
  in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.replace index (Node.name n) i) nodes;
  let adj = Array.make (Array.length nodes) [] in
  let attached_to lan =
    let on_lan n =
      List.exists (fun (_, l, _) -> l == lan) (Node.ifaces n)
    in
    Array.to_list nodes
    |> List.filter on_lan
    |> List.map (fun n -> Hashtbl.find index (Node.name n))
  in
  List.iter
    (fun lan ->
       if Lan.is_up lan then begin
         let members = attached_to lan in
         List.iter
           (fun u ->
              List.iter
                (fun v -> if u <> v then adj.(u) <- (v, lan) :: adj.(u))
                members)
           members
       end)
    lans;
  Array.iteri
    (fun i l ->
       adj.(i) <-
         List.sort
           (fun (a, la) (b, lb) ->
              match Int.compare a b with
              | 0 -> String.compare (Lan.name la) (Lan.name lb)
              | c -> c)
           l)
    adj;
  { nodes; index; adj }

(* BFS from [s]; only routers (and [s] itself) are expanded. *)
let bfs g s =
  let n = Array.length g.nodes in
  let dist = Array.make n max_int in
  let prev = Array.make n (-1) in
  let via_lan = Array.make n None in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    if u = s || Node.is_router g.nodes.(u) then
      List.iter
        (fun (v, lan) ->
           if dist.(v) = max_int then begin
             dist.(v) <- dist.(u) + 1;
             prev.(v) <- u;
             via_lan.(v) <- Some lan;
             Queue.push v q
           end)
        g.adj.(u)
  done;
  (dist, prev, via_lan)

let first_hop prev s target =
  let rec walk v = if prev.(v) = s then v else walk prev.(v) in
  if prev.(target) = -1 then None
  else if target = s then None
  else Some (walk target)

let addr_on node lan =
  List.find_map
    (fun (_, l, addr) -> if l == lan then addr else None)
    (Node.ifaces node)

let iface_on node lan =
  List.find_map
    (fun (i, l, _) -> if l == lan then Some i else None)
    (Node.ifaces node)

let compute ~nodes ~lans =
  let g = build ~nodes ~lans in
  let n = Array.length g.nodes in
  let routers_on lan =
    List.filter
      (fun i ->
         Node.is_router g.nodes.(i)
         && List.exists (fun (_, l, _) -> l == lan) (Node.ifaces g.nodes.(i)))
      (List.init n (fun i -> i))
  in
  Array.iteri
    (fun s node ->
       let dist, prev, via_lan = bfs g s in
       let table = ref Route.empty in
       List.iter
         (fun lan ->
            if Lan.is_up lan then begin
              let prefix = Lan.prefix lan in
              match iface_on node lan with
              | Some i -> table := Route.add !table prefix (Route.Direct i)
              | None ->
                let candidates = routers_on lan in
                let best =
                  List.fold_left
                    (fun acc r ->
                       if dist.(r) = max_int then acc
                       else
                         match acc with
                         | None -> Some r
                         | Some b -> if dist.(r) < dist.(b) then Some r
                           else acc)
                    None candidates
                in
                match best with
                | None -> () (* unreachable network *)
                | Some egress ->
                  let hop =
                    match first_hop prev s egress with
                    | Some h -> h
                    | None -> egress (* egress is a direct neighbour *)
                  in
                  (* the LAN over which s reaches [hop] *)
                  let connecting =
                    if prev.(hop) = s then via_lan.(hop) else None
                  in
                  let connecting =
                    match connecting with
                    | Some l -> Some l
                    | None ->
                      (* hop is adjacent to s by construction *)
                      List.find_map
                        (fun (v, l) -> if v = hop then Some l else None)
                        g.adj.(s)
                  in
                  match connecting with
                  | None -> ()
                  | Some l ->
                    match addr_on g.nodes.(hop) l with
                    | None -> () (* neighbour has no address there *)
                    | Some gw ->
                      table := Route.add !table prefix (Route.Via gw)
            end)
         lans;
       Node.set_routes node !table)
    g.nodes

let path_length ~nodes ~src ~dst_lan =
  let lans =
    (* collect every LAN any node is attached to *)
    List.concat_map (fun n -> List.map (fun (_, l, _) -> l) (Node.ifaces n))
      nodes
  in
  let g = build ~nodes ~lans in
  match Hashtbl.find_opt g.index (Node.name src) with
  | None -> None
  | Some s ->
    if List.exists (fun (_, l, _) -> l == dst_lan) (Node.ifaces src) then
      Some 1
    else begin
      let dist, _, _ = bfs g s in
      let best = ref None in
      Array.iteri
        (fun i node ->
           if Node.is_router node && dist.(i) < max_int
              && List.exists (fun (_, l, _) -> l == dst_lan)
                   (Node.ifaces node)
           then
             match !best with
             | None -> best := Some dist.(i)
             | Some b -> if dist.(i) < b then best := Some dist.(i))
        g.nodes;
      Option.map (fun d -> d + 1) !best
    end
