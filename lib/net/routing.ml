(* One BFS per node over the LAN-adjacency graph (all edges cost one LAN
   traversal), expanding only through routers, which matches IP: hosts do
   not forward.  Neighbour order is sorted by node name so the resulting
   tables are deterministic.

   The graph is built in one pass over the nodes' interfaces: a per-LAN
   membership table (keyed by Lan.id) replaces the per-LAN re-scan of
   every node's interface list, taking construction from O(L*N*I) to
   O(N*I + E).  The BFS scratch arrays live in the graph and are reset
   per source, so the full-table sweep allocates nothing per node. *)

type graph = {
  nodes : Node.t array;  (* sorted by name *)
  index : (string, int) Hashtbl.t;
  adj : (int * Lan.t) list array;  (* neighbour, connecting LAN *)
  lans : Lan.t list;  (* as passed to [build], original order *)
  routers_on : (int, int list) Hashtbl.t;
  (* Lan.id -> attached router indices, ascending *)
  dist : int array;  (* BFS scratch, reset by [bfs] *)
  prev : int array;
  via_lan : Lan.t option array;
}

let build ~nodes ~lans =
  let nodes =
    List.sort (fun a b -> String.compare (Node.name a) (Node.name b)) nodes
    |> Array.of_list
  in
  let n = Array.length nodes in
  let index = Hashtbl.create (max 32 n) in
  Array.iteri (fun i node -> Hashtbl.replace index (Node.name node) i) nodes;
  (* Deduplicate the LAN list by identity (callers like [path_length]
     collect it from interfaces, with repeats); keep first-occurrence
     order so edge insertion order, and hence tie-breaking, is unchanged. *)
  let seen = Hashtbl.create (max 16 (List.length lans)) in
  let uniq_lans =
    List.filter
      (fun lan ->
         if Hashtbl.mem seen (Lan.id lan) then false
         else begin
           Hashtbl.replace seen (Lan.id lan) ();
           true
         end)
      lans
  in
  (* Per-LAN membership from one pass over the interfaces: node indices in
     ascending order, each node at most once per LAN (multi-homing on a
     single LAN counts once, as the old per-LAN scan did). *)
  let members_rev : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i node ->
       let seen_lans = ref [] in
       List.iter
         (fun (_, lan, _) ->
            let id = Lan.id lan in
            if not (List.mem id !seen_lans) then begin
              seen_lans := id :: !seen_lans;
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt members_rev id)
              in
              Hashtbl.replace members_rev id (i :: prev)
            end)
         (Node.ifaces node))
    nodes;
  let members lan =
    match Hashtbl.find_opt members_rev (Lan.id lan) with
    | Some l -> List.rev l
    | None -> []
  in
  let adj = Array.make n [] in
  List.iter
    (fun lan ->
       if Lan.is_up lan then begin
         let ms = members lan in
         List.iter
           (fun u ->
              List.iter
                (fun v -> if u <> v then adj.(u) <- (v, lan) :: adj.(u))
                ms)
           ms
       end)
    uniq_lans;
  Array.iteri
    (fun i l ->
       adj.(i) <-
         List.sort
           (fun (a, la) (b, lb) ->
              match Int.compare a b with
              | 0 -> String.compare (Lan.name la) (Lan.name lb)
              | c -> c)
           l)
    adj;
  let routers_on = Hashtbl.create 64 in
  List.iter
    (fun lan ->
       Hashtbl.replace routers_on (Lan.id lan)
         (List.filter (fun i -> Node.is_router nodes.(i)) (members lan)))
    uniq_lans;
  { nodes; index; adj; lans; routers_on;
    dist = Array.make n max_int;
    prev = Array.make n (-1);
    via_lan = Array.make n None }

(* BFS from [s]; only routers (and [s] itself) are expanded.  Results live
   in the graph's scratch arrays until the next [bfs] call. *)
let bfs g s =
  let n = Array.length g.nodes in
  let dist = g.dist and prev = g.prev and via_lan = g.via_lan in
  Array.fill dist 0 n max_int;
  Array.fill prev 0 n (-1);
  Array.fill via_lan 0 n None;
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    if u = s || Node.is_router g.nodes.(u) then
      List.iter
        (fun (v, lan) ->
           if dist.(v) = max_int then begin
             dist.(v) <- dist.(u) + 1;
             prev.(v) <- u;
             via_lan.(v) <- Some lan;
             Queue.push v q
           end)
        g.adj.(u)
  done;
  (dist, prev, via_lan)

let first_hop prev s target =
  let rec walk v = if prev.(v) = s then v else walk prev.(v) in
  if prev.(target) = -1 then None
  else if target = s then None
  else Some (walk target)

let addr_on node lan =
  List.find_map
    (fun (_, l, addr) -> if l == lan then addr else None)
    (Node.ifaces node)

let iface_on node lan =
  List.find_map
    (fun (i, l, _) -> if l == lan then Some i else None)
    (Node.ifaces node)

(* Full-table sweeps performed process-wide.  Atomic because parallel
   sweep trials build topologies from worker domains; the total after a
   sweep has joined its workers is deterministic (a sum of per-trial
   increments), even though interleavings are not. *)
let recomputes = Atomic.make 0

let recompute_count () = Atomic.get recomputes

let compute_graph g =
  Atomic.incr recomputes;
  let routers_on lan =
    Option.value ~default:[] (Hashtbl.find_opt g.routers_on (Lan.id lan))
  in
  Array.iteri
    (fun s node ->
       let dist, prev, via_lan = bfs g s in
       let pairs = ref [] in
       let add prefix target = pairs := (prefix, target) :: !pairs in
       List.iter
         (fun lan ->
            if Lan.is_up lan then begin
              let prefix = Lan.prefix lan in
              match iface_on node lan with
              | Some i -> add prefix (Route.Direct i)
              | None ->
                let candidates = routers_on lan in
                let best =
                  List.fold_left
                    (fun acc r ->
                       if dist.(r) = max_int then acc
                       else
                         match acc with
                         | None -> Some r
                         | Some b -> if dist.(r) < dist.(b) then Some r
                           else acc)
                    None candidates
                in
                match best with
                | None -> () (* unreachable network *)
                | Some egress ->
                  let hop =
                    match first_hop prev s egress with
                    | Some h -> h
                    | None -> egress (* egress is a direct neighbour *)
                  in
                  (* the LAN over which s reaches [hop] *)
                  let connecting =
                    if prev.(hop) = s then via_lan.(hop) else None
                  in
                  let connecting =
                    match connecting with
                    | Some l -> Some l
                    | None ->
                      (* hop is adjacent to s by construction *)
                      List.find_map
                        (fun (v, l) -> if v = hop then Some l else None)
                        g.adj.(s)
                  in
                  match connecting with
                  | None -> ()
                  | Some l ->
                    match addr_on g.nodes.(hop) l with
                    | None -> () (* neighbour has no address there *)
                    | Some gw -> add prefix (Route.Via gw)
            end)
         g.lans;
       Node.set_routes node (Route.bulk (List.rev !pairs)))
    g.nodes

let compute ~nodes ~lans = compute_graph (build ~nodes ~lans)

let path_length_graph g ~src ~dst_lan =
  match Hashtbl.find_opt g.index (Node.name src) with
  | None -> None
  | Some s ->
    if List.exists (fun (_, l, _) -> l == dst_lan) (Node.ifaces src) then
      Some 1
    else begin
      let dist, _, _ = bfs g s in
      let best = ref None in
      Array.iteri
        (fun i node ->
           if Node.is_router node && dist.(i) < max_int
              && List.exists (fun (_, l, _) -> l == dst_lan)
                   (Node.ifaces node)
           then
             match !best with
             | None -> best := Some dist.(i)
             | Some b -> if dist.(i) < b then best := Some dist.(i))
        g.nodes;
      Option.map (fun d -> d + 1) !best
    end

let graph_of_nodes nodes =
  let lans =
    (* collect every LAN any node is attached to *)
    List.concat_map (fun n -> List.map (fun (_, l, _) -> l) (Node.ifaces n))
      nodes
  in
  build ~nodes ~lans

let path_length ~nodes ~src ~dst_lan =
  path_length_graph (graph_of_nodes nodes) ~src ~dst_lan
