(** Per-node IP routing tables with longest-prefix match.

    Host-specific (/32) routes are ordinary entries that happen to be
    longest, which is exactly how the paper's optional "host-specific route"
    mode (Section 3) integrates with standard routing. *)

type target =
  | Direct of int
      (** Destination is on the LAN of the interface with this index. *)
  | Via of Ipv4.Addr.t  (** Forward through this gateway address. *)

type entry = {
  prefix : Ipv4.Addr.Prefix.t;
  target : target;
}

type t

val empty : t
val add : t -> Ipv4.Addr.Prefix.t -> target -> t
(** Replaces any existing entry with the same prefix. *)

val remove : t -> Ipv4.Addr.Prefix.t -> t
val add_host : t -> Ipv4.Addr.t -> target -> t
(** A /32 entry. *)

val remove_host : t -> Ipv4.Addr.t -> t
val add_default : t -> target -> t
(** A /0 entry. *)

val bulk : (Ipv4.Addr.Prefix.t * target) list -> t
(** The table [List.fold_left (fun t (p, tg) -> add t p tg) empty pairs],
    built in O(n log n) instead of O(n²) — the route computation's bulk
    path. *)

val lookup : t -> Ipv4.Addr.t -> target option
(** Longest-prefix match. *)

val entries : t -> entry list
(** Longest prefix first. *)

val size : t -> int

val compiled_footprint_bytes : t -> int
(** Heap bytes pinned by the compiled lookup structures (the compact
    int-keyed tables plus the deduplicated target array; forces
    compilation) — the E19 scale sweep's per-router state accounting.
    With prefix-aggregated routes, a region's mobile hosts collapse to
    one entry here regardless of population. *)

val pp : Format.formatter -> t -> unit
