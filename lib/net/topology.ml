type t = {
  engine : Netsim.Engine.t;
  tr : Netsim.Trace.t;
  mac_alloc : Mac.Alloc.t;
  rng : Netsim.Rng.t;
  icmp_quote : Node.icmp_quote;
  (* Registration keeps a name-indexed hashtable (O(1) duplicate check and
     lookup) plus a newest-first list per kind; the creation-order views
     the accessors return are rebuilt lazily, so N registrations cost O(N)
     total instead of the O(N^2) of list appends with linear scans. *)
  lan_index : (string, Lan.t) Hashtbl.t;
  node_index : (string, Node.t) Hashtbl.t;
  mutable lans_rev : Lan.t list;
  mutable nodes_rev : Node.t list;
  mutable lan_list : Lan.t list option;  (* in creation order *)
  mutable node_list : Node.t list option;
  mutable node_added_hooks : (Node.t -> unit) list;
  mutable reg_ops : int;
}

let create ?(seed = 42) ?(trace_capacity = 65536)
    ?(icmp_quote = Node.Quote_full) () =
  let engine = Netsim.Engine.create ~seed () in
  { engine;
    tr = Netsim.Trace.create ~capacity:trace_capacity ();
    mac_alloc = Mac.Alloc.create ();
    rng = Netsim.Rng.split (Netsim.Engine.rng engine);
    icmp_quote;
    lan_index = Hashtbl.create 64;
    node_index = Hashtbl.create 64;
    lans_rev = [];
    nodes_rev = [];
    lan_list = None;
    node_list = None;
    node_added_hooks = [];
    reg_ops = 0 }

let engine t = t.engine
let trace t = t.tr
let rng t = t.rng

let registration_ops t = t.reg_ops

let add_lan t ?latency ?bandwidth_bps ?loss ?mtu ?(prefix_len = 24) ~net
    name =
  t.reg_ops <- t.reg_ops + 1;
  if Hashtbl.mem t.lan_index name then
    invalid_arg ("Topology.add_lan: duplicate name " ^ name);
  let lan =
    Lan.create ~engine:t.engine ~name ?latency ?bandwidth_bps ?loss ?mtu
      ~rng:(Netsim.Rng.split t.rng) (Ipv4.Addr.net_len net prefix_len)
  in
  Hashtbl.replace t.lan_index name lan;
  t.lans_rev <- lan :: t.lans_rev;
  t.lan_list <- None;
  lan

let add_node t ~router name =
  t.reg_ops <- t.reg_ops + 1;
  if Hashtbl.mem t.node_index name then
    invalid_arg ("Topology: duplicate node name " ^ name);
  let node =
    Node.create ~engine:t.engine ~mac_alloc:t.mac_alloc ~trace:t.tr ~router
      ~icmp_quote:t.icmp_quote name
  in
  Hashtbl.replace t.node_index name node;
  t.nodes_rev <- node :: t.nodes_rev;
  t.node_list <- None;
  List.iter (fun f -> f node) t.node_added_hooks;
  node

let add_router t name attachments =
  let node = add_node t ~router:true name in
  List.iter
    (fun (lan, host_id) ->
       let addr = Ipv4.Addr.Prefix.host (Lan.prefix lan) host_id in
       ignore (Node.attach node ~addr lan))
    attachments;
  node

let add_host t ?(router = false) name lan host_id =
  let node = add_node t ~router name in
  let addr = Ipv4.Addr.Prefix.host (Lan.prefix lan) host_id in
  ignore (Node.attach node ~addr lan);
  node

let node t name =
  match Hashtbl.find_opt t.node_index name with
  | Some n -> n
  | None -> raise Not_found

let on_node_added t f = t.node_added_hooks <- f :: t.node_added_hooks

let lan t name =
  match Hashtbl.find_opt t.lan_index name with
  | Some l -> l
  | None -> raise Not_found

let nodes t =
  match t.node_list with
  | Some ns -> ns
  | None ->
    let ns = List.rev t.nodes_rev in
    t.node_list <- Some ns;
    ns

let lans t =
  match t.lan_list with
  | Some ls -> ls
  | None ->
    let ls = List.rev t.lans_rev in
    t.lan_list <- Some ls;
    ls

let compute_routes t = Routing.compute ~nodes:(nodes t) ~lans:(lans t)

let move_host t node new_lan =
  ignore t;
  let home = Node.primary_addr node in
  List.iter (fun (i, _, _) -> Node.detach node i) (Node.ifaces node);
  let addr =
    if Ipv4.Addr.Prefix.mem home (Lan.prefix new_lan) then Some home
    else None
  in
  ignore (Node.attach node ?addr new_lan)

let run ?until t = Netsim.Engine.run ?until t.engine
let now t = Netsim.Engine.now t.engine

let total_frames t =
  List.fold_left (fun acc l -> acc + Lan.frames_sent l) 0 (lans t)

let total_bytes t =
  List.fold_left (fun acc l -> acc + Lan.bytes_sent l) 0 (lans t)
