type t = {
  engine : Netsim.Engine.t;
  tr : Netsim.Trace.t;
  mac_alloc : Mac.Alloc.t;
  rng : Netsim.Rng.t;
  icmp_quote : Node.icmp_quote;
  mutable lan_list : Lan.t list;  (* in creation order *)
  mutable node_list : Node.t list;
  mutable node_added_hooks : (Node.t -> unit) list;
}

let create ?(seed = 42) ?(trace_capacity = 65536)
    ?(icmp_quote = Node.Quote_full) () =
  let engine = Netsim.Engine.create ~seed () in
  { engine;
    tr = Netsim.Trace.create ~capacity:trace_capacity ();
    mac_alloc = Mac.Alloc.create ();
    rng = Netsim.Rng.split (Netsim.Engine.rng engine);
    icmp_quote;
    lan_list = [];
    node_list = [];
    node_added_hooks = [] }

let engine t = t.engine
let trace t = t.tr
let rng t = t.rng

let add_lan t ?latency ?bandwidth_bps ?loss ?mtu ~net name =
  if List.exists (fun l -> String.equal (Lan.name l) name) t.lan_list then
    invalid_arg ("Topology.add_lan: duplicate name " ^ name);
  let lan =
    Lan.create ~engine:t.engine ~name ?latency ?bandwidth_bps ?loss ?mtu
      ~rng:(Netsim.Rng.split t.rng) (Ipv4.Addr.net net)
  in
  t.lan_list <- t.lan_list @ [lan];
  lan

let add_node t ~router name =
  if List.exists (fun n -> String.equal (Node.name n) name) t.node_list
  then invalid_arg ("Topology: duplicate node name " ^ name);
  let node =
    Node.create ~engine:t.engine ~mac_alloc:t.mac_alloc ~trace:t.tr ~router
      ~icmp_quote:t.icmp_quote name
  in
  t.node_list <- t.node_list @ [node];
  List.iter (fun f -> f node) t.node_added_hooks;
  node

let add_router t name attachments =
  let node = add_node t ~router:true name in
  List.iter
    (fun (lan, host_id) ->
       let addr = Ipv4.Addr.Prefix.host (Lan.prefix lan) host_id in
       ignore (Node.attach node ~addr lan))
    attachments;
  node

let add_host t ?(router = false) name lan host_id =
  let node = add_node t ~router name in
  let addr = Ipv4.Addr.Prefix.host (Lan.prefix lan) host_id in
  ignore (Node.attach node ~addr lan);
  node

let node t name =
  List.find (fun n -> String.equal (Node.name n) name) t.node_list

let on_node_added t f = t.node_added_hooks <- f :: t.node_added_hooks

let lan t name =
  List.find (fun l -> String.equal (Lan.name l) name) t.lan_list

let nodes t = t.node_list
let lans t = t.lan_list

let compute_routes t = Routing.compute ~nodes:t.node_list ~lans:t.lan_list

let move_host t node new_lan =
  ignore t;
  let home = Node.primary_addr node in
  List.iter (fun (i, _, _) -> Node.detach node i) (Node.ifaces node);
  let addr =
    if Ipv4.Addr.Prefix.mem home (Lan.prefix new_lan) then Some home
    else None
  in
  ignore (Node.attach node ?addr new_lan)

let run ?until t = Netsim.Engine.run ?until t.engine
let now t = Netsim.Engine.now t.engine

let total_frames t =
  List.fold_left (fun acc l -> acc + Lan.frames_sent l) 0 t.lan_list

let total_bytes t =
  List.fold_left (fun acc l -> acc + Lan.bytes_sent l) 0 t.lan_list
