type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.Addr.t;
  target_mac : Mac.t option;
  target_ip : Ipv4.Addr.t;
}

let request ~sender_mac ~sender_ip ~target_ip =
  { op = Request; sender_mac; sender_ip; target_mac = None; target_ip }

let reply ~sender_mac ~sender_ip ~target_mac ~target_ip =
  { op = Reply; sender_mac; sender_ip; target_mac = Some target_mac;
    target_ip }

let gratuitous ~mac ~ip =
  { op = Reply; sender_mac = mac; sender_ip = ip; target_mac = None;
    target_ip = ip }

let wire_length = 28

let pp ppf t =
  match t.op with
  | Request ->
    Format.fprintf ppf "arp who-has %a tell %a" Ipv4.Addr.pp t.target_ip
      Ipv4.Addr.pp t.sender_ip
  | Reply ->
    Format.fprintf ppf "arp %a is-at %a" Ipv4.Addr.pp t.sender_ip Mac.pp
      t.sender_mac
