type t = int

let broadcast = 0xFFFF_FFFF_FFFF

let of_int n =
  if n < 0 || n > broadcast then invalid_arg "Mac.of_int: out of range"
  else if n = broadcast then invalid_arg "Mac.of_int: broadcast reserved"
  else n

let to_int t = t
let is_broadcast t = t = broadcast
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xFF) ((t lsr 32) land 0xFF) ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF) ((t lsr 8) land 0xFF) (t land 0xFF)

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Alloc = struct
  type mac = t
  type t = { mutable next : int }

  let base = 0x0200_0000_0000

  let create () = { next = 1 }

  let fresh t =
    let m = base lor t.next in
    t.next <- t.next + 1;
    of_int m
end
