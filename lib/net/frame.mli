(** Link-layer frames carried on a {!Lan}. *)

type content =
  | Ip of bytes  (** A serialized {!Ipv4.Packet}. *)
  | Arp of Arp.t

type t = {
  src : Mac.t;
  dst : Mac.t;  (** May be {!Mac.broadcast}. *)
  content : content;
}

val ip : src:Mac.t -> dst:Mac.t -> bytes -> t
val arp : src:Mac.t -> dst:Mac.t -> Arp.t -> t

val wire_length : t -> int
(** Payload bytes plus the 18-byte Ethernet header/FCS, for byte and
    serialization-time accounting. *)

val pp : Format.formatter -> t -> unit
