type station = Frame.t -> unit

(* Unique id per LAN instance, used as an O(1) identity hash key by the
   routing graph builder (structural hashing of a LAN would walk the
   engine and rng it embeds).  Atomic so topologies may be constructed
   concurrently from several domains (the parallel sweep runner builds
   one per trial); ids are only ever compared for equality or hashed, so
   the values a trial draws cannot affect simulation results. *)
let next_id = Atomic.make 0

type t = {
  id : int;
  engine : Netsim.Engine.t;
  name : string;
  prefix : Ipv4.Addr.Prefix.t;
  latency : Netsim.Time.t;
  bandwidth_bps : int;
  loss : float;
  mtu : int;
  rng : Netsim.Rng.t option;
  stations : (Mac.t, station) Hashtbl.t;
  mutable sorted_macs : Mac.t list option;
  (* cache of [stations] in MAC order, invalidated on attach/detach, so
     broadcast fan-out does not re-sort the membership per frame *)
  mutable monitors_rev : station list;  (* newest first *)
  mutable monitors : station list option;
  (* registration-order view of [monitors_rev], rebuilt lazily at delivery
     so registration is O(1) per monitor instead of list-append quadratic *)
  mutable up : bool;
  mutable frames : int;
  mutable bytes : int;
}

let create ~engine ~name ?(latency = Netsim.Time.of_us 500)
    ?(bandwidth_bps = 10_000_000) ?(loss = 0.0) ?(mtu = 1500) ?rng prefix =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Lan.create: loss";
  if loss > 0.0 && rng = None then
    invalid_arg "Lan.create: loss > 0 requires rng";
  if bandwidth_bps <= 0 then invalid_arg "Lan.create: bandwidth";
  if mtu < 68 then invalid_arg "Lan.create: mtu below the IP minimum";
  let id = Atomic.fetch_and_add next_id 1 in
  { id; engine; name; prefix; latency; bandwidth_bps; loss; mtu; rng;
    stations = Hashtbl.create 8; sorted_macs = None; monitors_rev = [];
    monitors = None; up = true; frames = 0; bytes = 0 }

let id t = t.id
let name t = t.name
let prefix t = t.prefix
let mtu t = t.mtu

let attach t mac station =
  if Hashtbl.mem t.stations mac then
    invalid_arg
      (Printf.sprintf "Lan.attach: %s already on %s" (Mac.to_string mac)
         t.name);
  Hashtbl.replace t.stations mac station;
  t.sorted_macs <- None

let detach t mac =
  Hashtbl.remove t.stations mac;
  t.sorted_macs <- None

let add_monitor t monitor =
  t.monitors_rev <- monitor :: t.monitors_rev;
  t.monitors <- None

let monitors t =
  match t.monitors with
  | Some ms -> ms
  | None ->
    let ms = List.rev t.monitors_rev in
    t.monitors <- Some ms;
    ms

let attached t mac = Hashtbl.mem t.stations mac

let stations t =
  match t.sorted_macs with
  | Some macs -> macs
  | None ->
    let macs =
      Hashtbl.fold (fun mac _ acc -> mac :: acc) t.stations []
      |> List.sort Mac.compare
    in
    t.sorted_macs <- Some macs;
    macs

let tx_delay t frame =
  let bits = Frame.wire_length frame * 8 in
  Netsim.Time.of_us (bits * 1_000_000 / t.bandwidth_bps)

let lost t =
  t.loss > 0.0
  && (match t.rng with
      | Some rng -> Netsim.Rng.float rng 1.0 < t.loss
      | None -> false)

let send t frame =
  if t.up && not (lost t) then begin
    t.frames <- t.frames + 1;
    t.bytes <- t.bytes + Frame.wire_length frame;
    let delay = Netsim.Time.add t.latency (tx_delay t frame) in
    let deliver () =
      if t.up then begin
        List.iter (fun monitor -> monitor frame) (monitors t);
        if Mac.is_broadcast frame.Frame.dst then
          (* Deliver in deterministic (MAC-sorted) order, skipping the
             sender, matching how tests expect broadcast fan-out. *)
          List.iter
            (fun mac ->
               if not (Mac.equal mac frame.Frame.src) then
                 match Hashtbl.find_opt t.stations mac with
                 | Some station -> station frame
                 | None -> ())
            (stations t)
        else
          match Hashtbl.find_opt t.stations frame.Frame.dst with
          | Some station -> station frame
          | None -> ()
      end
    in
    ignore (Netsim.Engine.schedule_after t.engine ~delay deliver)
  end

let set_up t v = t.up <- v
let is_up t = t.up
let frames_sent t = t.frames
let bytes_sent t = t.bytes
