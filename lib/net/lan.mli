(** A broadcast network segment — one of the paper's "networks".

    Each LAN owns an IP prefix (one of the "network numbers" of Section 1)
    and a set of attached stations keyed by MAC address.  Frames are
    delivered after a latency plus serialization delay; a destination MAC of
    {!Mac.broadcast} reaches every station except the sender.  Wireless
    cells (like network D of Figure 1) are LANs whose stations come and go
    as mobile hosts move. *)

type t

type station = Frame.t -> unit
(** Called when a frame addressed to (or broadcast past) this station
    arrives. *)

val create :
  engine:Netsim.Engine.t -> name:string -> ?latency:Netsim.Time.t ->
  ?bandwidth_bps:int -> ?loss:float -> ?mtu:int -> ?rng:Netsim.Rng.t ->
  Ipv4.Addr.Prefix.t -> t
(** Defaults: 500µs latency, 10 Mb/s, no loss, 1500-byte MTU.  [rng] is
    required when [loss > 0]. *)

val mtu : t -> int

val id : t -> int
(** Process-unique identity of this LAN instance.  Stable for the LAN's
    lifetime; used as an O(1) hash key by the routing graph builder. *)

val name : t -> string
val prefix : t -> Ipv4.Addr.Prefix.t

val attach : t -> Mac.t -> station -> unit
(** Raises [Invalid_argument] if the MAC is already attached. *)

val detach : t -> Mac.t -> unit

(** Register a promiscuous tap: called for every frame the LAN delivers,
    whatever its destination MAC — a NIC in promiscuous mode on a
    broadcast segment.  Monitors observe only; they cannot suppress
    delivery.  Used by the security experiments' eavesdropping
    adversary. *)
val add_monitor : t -> station -> unit
val attached : t -> Mac.t -> bool
val stations : t -> Mac.t list

val send : t -> Frame.t -> unit
(** Queue the frame for delivery.  Silently dropped when the LAN is down,
    the destination is absent (like real Ethernet), or the loss draw
    fires. *)

val set_up : t -> bool -> unit
val is_up : t -> bool

val frames_sent : t -> int
val bytes_sent : t -> int
