(** Link-level (48-bit, Ethernet-style) addresses. *)

type t = private int

val broadcast : t
val of_int : int -> t
(** Raises [Invalid_argument] if out of 48-bit range or equal to the
    broadcast address. *)

val to_int : t -> int
val is_broadcast : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Alloc : sig
  type mac = t
  type t

  val create : unit -> t
  val fresh : t -> mac
  (** Sequential unique addresses starting at 02:00:00:00:00:01 (the
      locally-administered bit set). *)
end
