(** A host or router.

    A node owns interfaces onto {!Lan}s, an ARP cache, a routing table, and
    a protocol stack.  The stack is pluggable through three hook points that
    are exactly the extension points the paper's agents need:

    - {b protocol handlers} — per-IP-protocol local delivery (MHRP
      decapsulation, ICMP location updates, baseline tunnels);
    - {b accept_ip} — claim packets whose destination is not one of this
      node's addresses (a home agent capturing a departed mobile host's
      traffic off its home LAN, Section 2; a foreign agent recognising a
      visiting host's address);
    - {b rewrite_forward} — observe or transform packets being forwarded (a
      cache agent tunneling packets for cached mobile hosts and snooping
      location updates, Sections 4.3 and 6.2).

    Plain IP behaviour — longest-prefix forwarding, TTL decrement with ICMP
    time-exceeded, ICMP destination-unreachable on routing or ARP failure,
    echo replies, RFC 791 loose-source-route processing — lives here, so
    every protocol under test runs over the same substrate. *)

type t

type forward_action =
  | Forward  (** Normal IP forwarding. *)
  | Replace of Ipv4.Packet.t  (** Forward this transformed packet instead. *)
  | Consume  (** The stack disposed of the packet itself. *)
  | Drop of string

(** How much of an offending packet ICMP errors quote — Section 4.5 hinges
    on the difference. *)
type icmp_quote = Quote_min  (** IP header + 8 bytes (RFC 792). *)
                | Quote_full  (** The entire packet (RFC 1122 allows). *)

val create :
  engine:Netsim.Engine.t -> mac_alloc:Mac.Alloc.t ->
  ?trace:Netsim.Trace.t -> ?router:bool -> ?proc_delay:Netsim.Time.t ->
  ?option_slow_factor:int -> ?icmp_quote:icmp_quote ->
  ?arp_timeout:Netsim.Time.t -> ?arp_entry_ttl:Netsim.Time.t ->
  string -> t
(** [create ~engine ~mac_alloc name].  [router] (default false) enables
    forwarding.  [proc_delay] is the per-packet processing cost (default
    50µs for routers, 20µs for hosts); packets carrying IP options cost
    [option_slow_factor] times that (default 8) — the router "slow path" of
    Section 7.  [arp_timeout] spaces ARP retries (default 500ms);
    [arp_entry_ttl] ages resolved entries out of the cache (default 60s,
    as contemporary BSD stacks did), after which a fresh ARP exchange is
    required — without aging, a departed host's stale binding would
    swallow frames silently forever. *)

val name : t -> string
val engine : t -> Netsim.Engine.t
val is_router : t -> bool
val trace : t -> Netsim.Trace.t option

(** {1 Interfaces and addresses} *)

val attach : t -> ?addr:Ipv4.Addr.t -> Lan.t -> int
(** Attach to a LAN, returning the interface index.  [addr] is the
    interface address; a visiting mobile host attaches without one. *)

val detach : t -> int -> unit
(** Leave the LAN; the interface index is retired. *)

val ifaces : t -> (int * Lan.t * Ipv4.Addr.t option) list
val iface_lan : t -> int -> Lan.t
val iface_mac : t -> int -> Mac.t
val iface_addr : t -> int -> Ipv4.Addr.t option
val iface_to : t -> Ipv4.Addr.Prefix.t -> int option
(** Interface attached to the LAN with this prefix, if any. *)

val addresses : t -> Ipv4.Addr.t list
(** All addresses this node answers to (interface addresses plus extras). *)

val add_address : t -> Ipv4.Addr.t -> unit
(** Claim an extra address — a mobile host keeps answering to its home
    address wherever it is attached. *)

val remove_address : t -> Ipv4.Addr.t -> unit
val has_address : t -> Ipv4.Addr.t -> bool

val primary_addr : t -> Ipv4.Addr.t
(** The node's canonical address (first configured).  Raises [Failure] if
    the node has none. *)

(** {1 Routing} *)

val routes : t -> Route.t
val set_routes : t -> Route.t -> unit
val update_routes : t -> (Route.t -> Route.t) -> unit

(** {1 Stack hooks} *)

val set_proto_handler : t -> Ipv4.Proto.t -> (t -> Ipv4.Packet.t -> unit) -> unit
val clear_proto_handler : t -> Ipv4.Proto.t -> unit
val set_accept_ip : t -> (t -> Ipv4.Packet.t -> bool) -> unit
val set_rewrite_forward : t -> (t -> Ipv4.Packet.t -> forward_action) -> unit
val set_arp_proxy : t -> (Ipv4.Addr.t -> bool) -> unit
(** Answer ARP requests for these addresses with this node's MAC —
    the home agent's proxy ARP (Section 2). *)

val on_reboot : t -> (t -> unit) -> unit
(** Called after a reboot so stacks can drop volatile state (a foreign
    agent forgetting its visitor list, Section 5.2). *)

val on_deliver : t -> (t -> Ipv4.Packet.t -> unit) -> unit
(** Metrics tap: every packet locally consumed.  All taps multicast:
    each registration adds an observer (called in registration order)
    rather than replacing the previous one, so workload metrics and
    invariant checkers can watch the same node. *)

val on_forward : t -> (t -> Ipv4.Packet.t -> unit) -> unit
(** Metrics tap: every packet this node forwards (including rewritten and
    source-routed ones). *)

val on_transmit : t -> (t -> Ipv4.Packet.t -> unit) -> unit
(** Metrics tap: every unicast IP frame this node puts on a LAN —
    originations, forwards, tunnel re-injections and last-hop deliveries
    alike.  Experiments count per-packet LAN traversals with it. *)

val on_broadcast : t -> (t -> Ipv4.Packet.t -> unit) -> unit
(** Metrics tap: every link-level IP broadcast this node puts on a LAN
    ({!broadcast_ip}: agent advertisements, link-state hellos and LSA
    floods).  Kept separate from {!on_transmit} so hop-count metrics
    over unicast traffic are not polluted by periodic beacons, while
    control-byte accounting can still see every control transmission. *)

val on_drop : t -> (t -> string -> Ipv4.Packet.t -> unit) -> unit

val set_fault_filter : t -> (t -> Ipv4.Packet.t -> bool) option -> unit
(** Fault injection hook, checked on every outgoing IP packet (unicast
    and broadcast, after fragmentation).  A [false] verdict loses the
    packet, counted as a ["fault-loss"] drop.  [None] (the default)
    transmits everything. *)

(** {1 Sending} *)

val send : t -> Ipv4.Packet.t -> unit
(** Route and transmit a locally-originated packet. *)

val forward_now : t -> Ipv4.Packet.t -> unit
(** Route and transmit without TTL decrement or rewrite hooks: used by
    stacks re-injecting a packet they have transformed (tunneling). *)

val send_ip_to_mac : t -> iface:int -> dst_mac:Mac.t -> Ipv4.Packet.t -> unit
(** Transmit directly to a known MAC, bypassing routing and ARP — a foreign
    agent delivering over the last hop to a visiting mobile host whose
    link address it learned at registration (Section 2). *)

val broadcast_ip : t -> iface:int -> Ipv4.Packet.t -> unit
(** Link-level broadcast of an IP packet (agent advertisements). *)

val inject_local : t -> Ipv4.Packet.t -> unit
(** Deliver a packet to this node's own stack as if it had arrived — a
    mobile host acting as its own foreign agent hands itself the
    reconstructed inner packet this way. *)

val gratuitous_arp : t -> iface:int -> Ipv4.Addr.t -> unit
(** Broadcast an ARP reply binding the given IP to this node's MAC on that
    LAN (Section 2's capture/reclaim manoeuvre). *)

val arp_cache_lookup : t -> Ipv4.Addr.t -> Mac.t option
val arp_cache_size : t -> int

val arp_probe : t -> iface:int -> Ipv4.Addr.t -> unit
(** Broadcast an ARP request without queueing a packet behind it,
    dropping any cached entry for the target first so the answer (or
    its absence) reflects the LAN {e now}.  A rebooted foreign agent
    verifies a visiting host's presence this way (Section 5.2); check
    {!arp_cache_lookup} after a round-trip. *)

(** {1 Failure injection} *)

val is_up : t -> bool
val set_up : t -> bool -> unit
(** Going down silently discards traffic; state is retained. *)

val reboot : t -> unit
(** Clear ARP cache and pending queues, run [on_reboot] hooks. *)

val crash_for : t -> Netsim.Time.t -> unit
(** Down now, back up (with [reboot]) after the given delay. *)

(** {1 Counters} *)

val packets_forwarded : t -> int

val packets_fast_forwarded : t -> int
(** The subset of {!packets_forwarded} received on the zero-copy view
    path: no decode, in-place TTL/checksum rewrite, and — unless egress
    needs fragmentation — the received buffer reused for the outgoing
    frame.  The path engages on transit routers with no accept/rewrite
    hooks, no forward taps and tracing off, for option-free unicast
    packets; everything else falls back to the decoded path with
    identical wire semantics.  Counted at receive time, so a hop whose
    egress falls back (fragmentation) still counts.  The allocation CI
    lane gates this counter to catch accidental de-optimisation. *)

val packets_delivered : t -> int
val packets_originated : t -> int
val packets_dropped : t -> int

val pp : Format.formatter -> t -> unit
