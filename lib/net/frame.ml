type content =
  | Ip of bytes
  | Arp of Arp.t

type t = {
  src : Mac.t;
  dst : Mac.t;
  content : content;
}

let ip ~src ~dst bytes = { src; dst; content = Ip bytes }
let arp ~src ~dst a = { src; dst; content = Arp a }

let ethernet_overhead = 18

let wire_length t =
  let payload =
    match t.content with
    | Ip b -> Bytes.length b
    | Arp _ -> Arp.wire_length
  in
  payload + ethernet_overhead

let pp ppf t =
  match t.content with
  | Ip b ->
    Format.fprintf ppf "%a -> %a ip(%d bytes)" Mac.pp t.src Mac.pp t.dst
      (Bytes.length b)
  | Arp a -> Format.fprintf ppf "%a -> %a %a" Mac.pp t.src Mac.pp t.dst
               Arp.pp a
