type target =
  | Direct of int
  | Via of Ipv4.Addr.t

type entry = {
  prefix : Ipv4.Addr.Prefix.t;
  target : target;
}

(* Entries sorted by descending prefix length, so lookup is the first
   match.  Tables are small (tens of entries); a list keeps this simple
   and persistent (cheap snapshots when moving hosts). *)
type t = entry list

let empty = []

let add t prefix target =
  let rest =
    List.filter (fun e -> not (Ipv4.Addr.Prefix.equal e.prefix prefix)) t
  in
  let entry = { prefix; target } in
  let longer e = e.prefix.Ipv4.Addr.Prefix.len >= prefix.Ipv4.Addr.Prefix.len in
  let before, after = List.partition longer rest in
  before @ (entry :: after)

let remove t prefix =
  List.filter (fun e -> not (Ipv4.Addr.Prefix.equal e.prefix prefix)) t

let add_host t addr target =
  add t (Ipv4.Addr.Prefix.make addr 32) target

let remove_host t addr = remove t (Ipv4.Addr.Prefix.make addr 32)

let add_default t target =
  add t (Ipv4.Addr.Prefix.make Ipv4.Addr.zero 0) target

let lookup t addr =
  let rec go = function
    | [] -> None
    | e :: rest ->
      if Ipv4.Addr.Prefix.mem addr e.prefix then Some e.target else go rest
  in
  go t

let entries t = t
let size t = List.length t

let pp_target ppf = function
  | Direct i -> Format.fprintf ppf "direct(if%d)" i
  | Via a -> Format.fprintf ppf "via %a" Ipv4.Addr.pp a

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
       Format.fprintf ppf "%-18s %a@," (Ipv4.Addr.Prefix.to_string e.prefix)
         pp_target e.target)
    t;
  Format.fprintf ppf "@]"
