type target =
  | Direct of int
  | Via of Ipv4.Addr.t

type entry = {
  prefix : Ipv4.Addr.Prefix.t;
  target : target;
}

(* Entries sorted by descending prefix length, so lookup is the first
   match.  The persistent list keeps snapshots cheap (moving hosts), but
   host-specific /32 routes grow with the mobile population, so [lookup]
   consults a compiled form: compact int-keyed tables (two unboxed words
   per route instead of a boxed entry behind a generic [Hashtbl] bucket)
   — one exact-match table over the /32 entries (which, being longest,
   always win), then one table per remaining distinct prefix length,
   probed in descending-length order with the masked address as key.
   Prefixes of equal length are disjoint or equal (and equal ones are
   deduplicated by [add]/[bulk]), so each per-length probe has at most
   one possible match and the first hit is the longest-prefix match.
   Table values index a small array of deduplicated boxed targets: a
   region's worth of /32s pointing at one gateway shares a single boxed
   [Via].  The compiled form is built lazily on the first lookup after a
   change — one O(n) pass, no dearer than the single list scan it
   replaces — and cached on the (immutable) table value. *)
type t = {
  entries : entry list;
  mutable compiled : compiled option;
}

and compiled = {
  hosts : Ipv4.Int_table.t;  (* packed addr -> index into [targets] *)
  lens : int array;  (* distinct lengths < 32, descending *)
  len_tbls : Ipv4.Int_table.t array;  (* masked packed addr -> index *)
  masks : int array;  (* Prefix.mask lens.(i), precomputed *)
  targets : target array;  (* deduplicated *)
}

let empty = { entries = []; compiled = None }

let of_entries entries = { entries; compiled = None }

let add t prefix target =
  let rest =
    List.filter
      (fun e -> not (Ipv4.Addr.Prefix.equal e.prefix prefix))
      t.entries
  in
  let entry = { prefix; target } in
  let longer e = e.prefix.Ipv4.Addr.Prefix.len >= prefix.Ipv4.Addr.Prefix.len in
  let before, after = List.partition longer rest in
  of_entries (before @ (entry :: after))

let remove t prefix =
  of_entries
    (List.filter
       (fun e -> not (Ipv4.Addr.Prefix.equal e.prefix prefix))
       t.entries)

let add_host t addr target =
  add t (Ipv4.Addr.Prefix.make addr 32) target

let remove_host t addr = remove t (Ipv4.Addr.Prefix.make addr 32)

let add_default t target =
  add t (Ipv4.Addr.Prefix.make Ipv4.Addr.zero 0) target

(* Bulk construction for the route computation, which otherwise pays
   O(n) [add]s of O(n) each per node.  Reproduces the fold-of-[add]
   result exactly: a later duplicate prefix replaces the earlier one and
   sits at the position of its last insertion; entries are ordered by
   descending prefix length, insertion-ordered within a length. *)
let bulk pairs =
  let last : (Ipv4.Addr.Prefix.t, int * target) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iteri
    (fun seq (prefix, target) -> Hashtbl.replace last prefix (seq, target))
    pairs;
  let survivors =
    Hashtbl.fold
      (fun prefix (seq, target) acc -> (seq, { prefix; target }) :: acc)
      last []
  in
  let in_insertion_order =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) survivors
    |> List.map snd
  in
  of_entries
    (List.stable_sort
       (fun a b ->
          Int.compare b.prefix.Ipv4.Addr.Prefix.len
            a.prefix.Ipv4.Addr.Prefix.len)
       in_insertion_order)

let compile t =
  match t.compiled with
  | Some c -> c
  | None ->
    let target_idx : (target, int) Hashtbl.t = Hashtbl.create 16 in
    let rev_targets = ref [] and n_targets = ref 0 in
    let idx_of tg =
      match Hashtbl.find_opt target_idx tg with
      | Some i -> i
      | None ->
        let i = !n_targets in
        incr n_targets;
        Hashtbl.add target_idx tg i;
        rev_targets := tg :: !rev_targets;
        i
    in
    let hosts = Ipv4.Int_table.create () in
    (* entries are descending by length, so each sub-32 length forms a
       contiguous run; collect one table per run (ascending at the head
       while prepending, reversed to descending below). *)
    let rev_len_tbls = ref [] in
    List.iter
      (fun e ->
         let len = e.prefix.Ipv4.Addr.Prefix.len in
         let key = Ipv4.Addr.to_key e.prefix.Ipv4.Addr.Prefix.base in
         let idx = idx_of e.target in
         if len = 32 then Ipv4.Int_table.replace hosts key idx
         else
           let tbl =
             match !rev_len_tbls with
             | (l, tbl) :: _ when l = len -> tbl
             | _ ->
               let tbl = Ipv4.Int_table.create () in
               rev_len_tbls := (len, tbl) :: !rev_len_tbls;
               tbl
           in
           Ipv4.Int_table.replace tbl key idx)
      t.entries;
    let by_len = List.rev !rev_len_tbls in
    let lens = Array.of_list (List.map fst by_len) in
    let c =
      { hosts; lens;
        len_tbls = Array.of_list (List.map snd by_len);
        masks = Array.map Ipv4.Addr.Prefix.mask lens;
        targets = Array.of_list (List.rev !rev_targets) }
    in
    t.compiled <- Some c;
    c

let lookup t addr =
  let c = compile t in
  let key = Ipv4.Addr.to_key addr in
  match Ipv4.Int_table.find c.hosts key ~default:(-1) with
  | -1 ->
    let n = Array.length c.lens in
    let rec go i =
      if i >= n then None
      else
        match
          Ipv4.Int_table.find c.len_tbls.(i) (key land c.masks.(i))
            ~default:(-1)
        with
        | -1 -> go (i + 1)
        | idx -> Some c.targets.(idx)
    in
    go 0
  | idx -> Some c.targets.(idx)

let entries t = t.entries
let size t = List.length t.entries

let compiled_footprint_bytes t =
  let c = compile t in
  Array.fold_left
    (fun acc tbl -> acc + Ipv4.Int_table.footprint_bytes tbl)
    (Ipv4.Int_table.footprint_bytes c.hosts
     + ((Array.length c.targets + 1) * 8))
    c.len_tbls

let pp_target ppf = function
  | Direct i -> Format.fprintf ppf "direct(if%d)" i
  | Via a -> Format.fprintf ppf "via %a" Ipv4.Addr.pp a

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
       Format.fprintf ppf "%-18s %a@," (Ipv4.Addr.Prefix.to_string e.prefix)
         pp_target e.target)
    t.entries;
  Format.fprintf ppf "@]"
