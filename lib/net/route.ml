type target =
  | Direct of int
  | Via of Ipv4.Addr.t

type entry = {
  prefix : Ipv4.Addr.Prefix.t;
  target : target;
}

(* Entries sorted by descending prefix length, so lookup is the first
   match.  The persistent list keeps snapshots cheap (moving hosts), but
   host-specific /32 routes grow with the mobile population, so [lookup]
   consults a compiled form: an exact-match hashtable over the /32
   entries (which, being longest, always win) falling back to the sorted
   sub-32 list.  The compiled form is built lazily on the first lookup
   after a change — one O(n) pass, no dearer than the single list scan it
   replaces — and cached on the (immutable) table value. *)
type t = {
  entries : entry list;
  mutable compiled : compiled option;
}

and compiled = {
  hosts : (Ipv4.Addr.t, target) Hashtbl.t;  (* the /32 entries *)
  rest : entry list;  (* length < 32, still descending *)
}

let empty = { entries = []; compiled = None }

let of_entries entries = { entries; compiled = None }

let add t prefix target =
  let rest =
    List.filter
      (fun e -> not (Ipv4.Addr.Prefix.equal e.prefix prefix))
      t.entries
  in
  let entry = { prefix; target } in
  let longer e = e.prefix.Ipv4.Addr.Prefix.len >= prefix.Ipv4.Addr.Prefix.len in
  let before, after = List.partition longer rest in
  of_entries (before @ (entry :: after))

let remove t prefix =
  of_entries
    (List.filter
       (fun e -> not (Ipv4.Addr.Prefix.equal e.prefix prefix))
       t.entries)

let add_host t addr target =
  add t (Ipv4.Addr.Prefix.make addr 32) target

let remove_host t addr = remove t (Ipv4.Addr.Prefix.make addr 32)

let add_default t target =
  add t (Ipv4.Addr.Prefix.make Ipv4.Addr.zero 0) target

(* Bulk construction for the route computation, which otherwise pays
   O(n) [add]s of O(n) each per node.  Reproduces the fold-of-[add]
   result exactly: a later duplicate prefix replaces the earlier one and
   sits at the position of its last insertion; entries are ordered by
   descending prefix length, insertion-ordered within a length. *)
let bulk pairs =
  let last : (Ipv4.Addr.Prefix.t, int * target) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iteri
    (fun seq (prefix, target) -> Hashtbl.replace last prefix (seq, target))
    pairs;
  let survivors =
    Hashtbl.fold
      (fun prefix (seq, target) acc -> (seq, { prefix; target }) :: acc)
      last []
  in
  let in_insertion_order =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) survivors
    |> List.map snd
  in
  of_entries
    (List.stable_sort
       (fun a b ->
          Int.compare b.prefix.Ipv4.Addr.Prefix.len
            a.prefix.Ipv4.Addr.Prefix.len)
       in_insertion_order)

let compile t =
  match t.compiled with
  | Some c -> c
  | None ->
    let host_entries, rest =
      List.partition (fun e -> e.prefix.Ipv4.Addr.Prefix.len = 32) t.entries
    in
    let hosts = Hashtbl.create (max 8 (List.length host_entries)) in
    List.iter
      (fun e -> Hashtbl.replace hosts e.prefix.Ipv4.Addr.Prefix.base e.target)
      host_entries;
    let c = { hosts; rest } in
    t.compiled <- Some c;
    c

let lookup t addr =
  let c = compile t in
  match Hashtbl.find_opt c.hosts addr with
  | Some target -> Some target
  | None ->
    let rec go = function
      | [] -> None
      | e :: rest ->
        if Ipv4.Addr.Prefix.mem addr e.prefix then Some e.target else go rest
    in
    go c.rest

let entries t = t.entries
let size t = List.length t.entries

let pp_target ppf = function
  | Direct i -> Format.fprintf ppf "direct(if%d)" i
  | Via a -> Format.fprintf ppf "via %a" Ipv4.Addr.pp a

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
       Format.fprintf ppf "%-18s %a@," (Ipv4.Addr.Prefix.to_string e.prefix)
         pp_target e.target)
    t.entries;
  Format.fprintf ppf "@]"
