module Time = Netsim.Time
module Engine = Netsim.Engine

type forward_action =
  | Forward
  | Replace of Ipv4.Packet.t
  | Consume
  | Drop of string

type icmp_quote = Quote_min | Quote_full

type iface_state = {
  lan : Lan.t;
  mac : Mac.t;
  mutable addr : Ipv4.Addr.t option;
  mutable active : bool;
}

type t = {
  engine : Engine.t;
  mac_alloc : Mac.Alloc.t;
  name : string;
  router : bool;
  proc_delay : Time.t;
  option_slow_factor : int;
  icmp_quote : icmp_quote;
  arp_timeout : Time.t;
  arp_entry_ttl : Time.t;
  tr : Netsim.Trace.t option;
  mutable ifaces : iface_state array;
  mutable extra_addrs : Ipv4.Addr.t list;
  mutable table : Route.t;
  arp_cache : (Ipv4.Addr.t, Mac.t * Time.t) Hashtbl.t;
  (* binding plus the time it was learned *)
  mutable arp_pending : (Ipv4.Addr.t * int * Ipv4.Packet.t) list;
  reassembly : Ipv4.Packet.Reassembly.t;
  arp_tries : (Ipv4.Addr.t, int) Hashtbl.t;
  proto_handlers : (int, t -> Ipv4.Packet.t -> unit) Hashtbl.t;
  (* [None] means the built-in default (refuse / plain Forward).  Kept
     as options so the forwarding fast path can see at a glance that no
     stack is watching and skip the full decode (see [fast_rx]). *)
  mutable accept_ip : (t -> Ipv4.Packet.t -> bool) option;
  mutable rewrite_forward : (t -> Ipv4.Packet.t -> forward_action) option;
  mutable arp_proxy : Ipv4.Addr.t -> bool;
  mutable reboot_hooks : (t -> unit) list;
  mutable deliver_taps : (t -> Ipv4.Packet.t -> unit) list;
  mutable forward_taps : (t -> Ipv4.Packet.t -> unit) list;
  mutable transmit_taps : (t -> Ipv4.Packet.t -> unit) list;
  mutable broadcast_taps : (t -> Ipv4.Packet.t -> unit) list;
  mutable drop_taps : (t -> string -> Ipv4.Packet.t -> unit) list;
  (* Fault injection: when set, a [false] verdict loses the outgoing
     packet (counted as a drop) just before it would reach the wire. *)
  mutable fault_filter : (t -> Ipv4.Packet.t -> bool) option;
  mutable up : bool;
  mutable n_forwarded : int;
  mutable n_fast_forwarded : int;
  (* subset of [n_forwarded] that took the zero-copy view path *)
  mutable n_delivered : int;
  mutable n_originated : int;
  mutable n_dropped : int;
}

let arp_max_tries = 3

let create ~engine ~mac_alloc ?trace ?(router = false) ?proc_delay
    ?(option_slow_factor = 8) ?(icmp_quote = Quote_min)
    ?(arp_timeout = Time.of_ms 500) ?(arp_entry_ttl = Time.of_sec 60.0)
    name =
  let proc_delay =
    match proc_delay with
    | Some d -> d
    | None -> if router then Time.of_us 50 else Time.of_us 20
  in
  { engine; mac_alloc; name; router; proc_delay; option_slow_factor;
    icmp_quote;
    arp_timeout; arp_entry_ttl; tr = trace;
    ifaces = [||]; extra_addrs = []; table = Route.empty;
    arp_cache = Hashtbl.create 16;
    arp_pending = [];
    reassembly = Ipv4.Packet.Reassembly.create ();
    arp_tries = Hashtbl.create 8;
    proto_handlers = Hashtbl.create 8;
    accept_ip = None;
    rewrite_forward = None;
    arp_proxy = (fun _ -> false);
    reboot_hooks = [];
    deliver_taps = [];
    forward_taps = [];
    transmit_taps = [];
    broadcast_taps = [];
    drop_taps = [];
    fault_filter = None;
    up = true;
    n_forwarded = 0; n_fast_forwarded = 0; n_delivered = 0;
    n_originated = 0; n_dropped = 0 }

let name t = t.name
let engine t = t.engine
let is_router t = t.router
let trace t = t.tr

(* Format only when someone is listening: with tracing absent or
   disabled the arguments are consumed without rendering ([ikfprintf]),
   so per-packet trace calls cost nothing on benchmark runs. *)
let tracef t kind fmt =
  match t.tr with
  | Some tr when Netsim.Trace.enabled tr ->
    Format.kasprintf
      (fun detail ->
         Netsim.Trace.emit tr ~at:(Engine.now t.engine) ~node:t.name ~kind
           detail)
      fmt
  | _ -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* --- addresses --- *)

let iface_addrs t =
  Array.to_list t.ifaces
  |> List.filter_map (fun i -> if i.active then i.addr else None)

let addresses t = iface_addrs t @ t.extra_addrs

(* Checked on every received packet (rx_ip) — scan the interface array
   directly rather than materialising the address list per call. *)
let has_address t a =
  let n = Array.length t.ifaces in
  let rec on_iface i =
    i < n
    && ((t.ifaces.(i).active
         && match t.ifaces.(i).addr with
            | Some x -> Ipv4.Addr.equal x a
            | None -> false)
        || on_iface (i + 1))
  in
  on_iface 0 || List.exists (Ipv4.Addr.equal a) t.extra_addrs

let add_address t a =
  if not (List.exists (Ipv4.Addr.equal a) t.extra_addrs) then
    (* append: the first-claimed (home) address stays primary even when a
       temporary address is added later *)
    t.extra_addrs <- t.extra_addrs @ [a]

let remove_address t a =
  t.extra_addrs <-
    List.filter (fun x -> not (Ipv4.Addr.equal x a)) t.extra_addrs

let primary_addr t =
  match addresses t with
  | [] -> failwith (t.name ^ ": no address")
  | a :: _ -> a

(* --- routing --- *)

let routes t = t.table
let set_routes t table = t.table <- table
let update_routes t f = t.table <- f t.table

(* --- hooks --- *)

let set_proto_handler t proto h = Hashtbl.replace t.proto_handlers proto h
let clear_proto_handler t proto = Hashtbl.remove t.proto_handlers proto
let set_accept_ip t f = t.accept_ip <- Some f
let set_rewrite_forward t f = t.rewrite_forward <- Some f
let set_arp_proxy t f = t.arp_proxy <- f
let on_reboot t f = t.reboot_hooks <- f :: t.reboot_hooks
(* Taps multicast in registration order so a late observer (say, an
   invariant checker) cannot silently displace an earlier one (say, the
   workload metrics). *)
let on_deliver t f = t.deliver_taps <- t.deliver_taps @ [f]
let on_forward t f = t.forward_taps <- t.forward_taps @ [f]
let on_transmit t f = t.transmit_taps <- t.transmit_taps @ [f]
let on_broadcast t f = t.broadcast_taps <- t.broadcast_taps @ [f]
let on_drop t f = t.drop_taps <- t.drop_taps @ [f]
let set_fault_filter t f = t.fault_filter <- f

(* --- interface lookups --- *)

let iface t i =
  if i < 0 || i >= Array.length t.ifaces || not t.ifaces.(i).active then
    invalid_arg (Printf.sprintf "%s: no active interface %d" t.name i);
  t.ifaces.(i)

let ifaces t =
  Array.to_list (Array.mapi (fun i s -> (i, s)) t.ifaces)
  |> List.filter_map (fun (i, s) ->
      if s.active then Some (i, s.lan, s.addr) else None)

let iface_lan t i = (iface t i).lan
let iface_mac t i = (iface t i).mac
let iface_addr t i = (iface t i).addr

let iface_to t prefix =
  let found = ref None in
  Array.iteri
    (fun i s ->
       if s.active && !found = None
          && Ipv4.Addr.Prefix.equal (Lan.prefix s.lan) prefix
       then found := Some i)
    t.ifaces;
  !found

let iface_for_next_hop t next_hop =
  let found = ref None in
  Array.iteri
    (fun i s ->
       if s.active && !found = None
          && Ipv4.Addr.Prefix.mem next_hop (Lan.prefix s.lan)
       then found := Some i)
    t.ifaces;
  !found

(* --- drops and counters --- *)

let drop t reason pkt =
  t.n_dropped <- t.n_dropped + 1;
  tracef t "drop" "%s: %a" reason Ipv4.Packet.pp pkt;
  List.iter (fun f -> f t reason pkt) t.drop_taps

(* --- ARP cache with entry aging --- *)

let arp_learn t addr mac =
  Hashtbl.replace t.arp_cache addr (mac, Engine.now t.engine)

let arp_fresh t addr =
  match Hashtbl.find_opt t.arp_cache addr with
  | Some (mac, at)
    when Stdlib.( < )
        (Time.to_us (Engine.now t.engine) - Time.to_us at)
        (Time.to_us t.arp_entry_ttl) ->
    Some mac
  | Some _ ->
    Hashtbl.remove t.arp_cache addr;
    None
  | None -> None

(* --- transmit --- *)

let send_arp_request t i target_ip =
  let s = iface t i in
  let sender_ip = Option.value ~default:Ipv4.Addr.zero s.addr in
  let a = Arp.request ~sender_mac:s.mac ~sender_ip ~target_ip in
  tracef t "arp-tx" "%a" Arp.pp a;
  Lan.send s.lan (Frame.arp ~src:s.mac ~dst:Mac.broadcast a)

(* Weak-host loopback: a packet addressed to one of our own addresses is
   delivered locally, never put on the wire (a router tunneling to its
   own address — the home agent doubling as its region's regional agent —
   would otherwise ARP for itself and blackhole the packet).  Tied to
   [deliver_local] below, which is mutually recursive with this send
   group through [forward_now]. *)
let deliver_local_ref : (t -> Ipv4.Packet.t -> unit) ref =
  ref (fun _ _ -> assert false)

(* ICMP error generation, used by forwarding failures.  Never generated in
   response to another ICMP error (RFC 1122) or to a broadcast. *)
let rec frame_out t i ~dst_mac pkt =
  let s = iface t i in
  let mtu = Lan.mtu s.lan in
  if Ipv4.Packet.total_length pkt > mtu then
    if pkt.Ipv4.Packet.dont_fragment then begin
      t.n_dropped <- t.n_dropped + 1;
      tracef t "drop" "needs fragmentation but DF set: %a" Ipv4.Packet.pp
        pkt;
      List.iter (fun f -> f t "df-mtu" pkt) t.drop_taps;
      (* ICMP destination unreachable, "fragmentation needed and DF set"
         (type 3 code 4) *)
      if not (has_address t pkt.Ipv4.Packet.src) then
        icmp_error t
          (fun original ->
             Ipv4.Icmp.Dest_unreachable { code = 4; original })
          pkt
    end
    else
      List.iter
        (fun fragment -> frame_out t i ~dst_mac fragment)
        (Ipv4.Packet.fragment pkt ~mtu)
  else begin
    match t.fault_filter with
    | Some f when not (f t pkt) -> drop t "fault-loss" pkt
    | _ ->
      List.iter (fun f -> f t pkt) t.transmit_taps;
      let frame =
        Frame.ip ~src:s.mac ~dst:dst_mac (Ipv4.Packet.encode pkt)
      in
      Lan.send s.lan frame
  end

and icmp_error t make_msg (offending : Ipv4.Packet.t) =
  let is_icmp_error =
    offending.Ipv4.Packet.proto = Ipv4.Proto.icmp
    && (match Ipv4.Icmp.decode_opt offending.Ipv4.Packet.payload with
        | Some (Ipv4.Icmp.Dest_unreachable _ | Ipv4.Icmp.Time_exceeded _
               | Ipv4.Icmp.Redirect _) -> true
        | Some _ | None -> false
        | exception Invalid_argument _ -> true)
  in
  if (not is_icmp_error)
     && not (Ipv4.Addr.equal offending.Ipv4.Packet.src Ipv4.Addr.broadcast)
     && not (Ipv4.Addr.is_zero offending.Ipv4.Packet.src)
     && addresses t <> []
  then begin
    let encoded = Ipv4.Packet.encode offending in
    let quoted =
      match t.icmp_quote with
      | Quote_full -> encoded
      | Quote_min ->
        let n = min (Bytes.length encoded)
            (Ipv4.Packet.header_length offending + 8) in
        Bytes.sub encoded 0 n
    in
    let msg = make_msg quoted in
    let reply =
      Ipv4.Packet.make ~proto:Ipv4.Proto.icmp ~src:(primary_addr t)
        ~dst:offending.Ipv4.Packet.src (Ipv4.Icmp.encode msg)
    in
    tracef t "icmp-tx" "%a to %a" Ipv4.Icmp.pp msg Ipv4.Addr.pp
      offending.Ipv4.Packet.src;
    route_and_send t reply
  end

and resolve_and_emit t i ~next_hop pkt =
  match arp_fresh t next_hop with
  | Some mac -> frame_out t i ~dst_mac:mac pkt
  | None ->
    t.arp_pending <- (next_hop, i, pkt) :: t.arp_pending;
    if not (Hashtbl.mem t.arp_tries next_hop) then begin
      Hashtbl.replace t.arp_tries next_hop 1;
      send_arp_request t i next_hop;
      arm_arp_timer t i next_hop
    end

and arm_arp_timer t i next_hop =
  ignore
    (Engine.schedule_after t.engine ~delay:t.arp_timeout (fun () ->
         match Hashtbl.find_opt t.arp_tries next_hop with
         | None -> () (* resolved meanwhile *)
         | Some tries when tries < arp_max_tries ->
           Hashtbl.replace t.arp_tries next_hop (tries + 1);
           if t.up then begin
             send_arp_request t i next_hop;
             arm_arp_timer t i next_hop
           end
         | Some _ ->
           Hashtbl.remove t.arp_tries next_hop;
           let stuck, rest =
             List.partition
               (fun (ip, _, _) -> Ipv4.Addr.equal ip next_hop)
               t.arp_pending
           in
           t.arp_pending <- rest;
           List.iter
             (fun (_, _, pkt) ->
                drop t "arp-timeout" pkt;
                if t.router && not (has_address t pkt.Ipv4.Packet.src) then
                  icmp_error t
                    (fun original -> Ipv4.Icmp.host_unreachable ~original)
                    pkt)
             stuck))

and route_and_send t pkt =
  if not t.up then ()
  else if has_address t pkt.Ipv4.Packet.dst then begin
    tracef t "loopback" "%a" Ipv4.Packet.pp pkt;
    !deliver_local_ref t pkt
  end
  else
    match Route.lookup t.table pkt.Ipv4.Packet.dst with
    | None ->
      drop t "no-route" pkt;
      if not (has_address t pkt.Ipv4.Packet.src) then
        icmp_error t
          (fun original ->
             Ipv4.Icmp.Dest_unreachable { code = 0; original })
          pkt
    | Some (Route.Direct i) ->
      (match iface t i with
       | exception Invalid_argument _ -> drop t "iface-down" pkt
       | _ -> resolve_and_emit t i ~next_hop:pkt.Ipv4.Packet.dst pkt)
    | Some (Route.Via gw) ->
      match iface_for_next_hop t gw with
      | None -> drop t "gateway-unreachable" pkt
      | Some i -> resolve_and_emit t i ~next_hop:gw pkt

(* --- public senders --- *)

let delayed t ~slow f =
  let d =
    if slow then
      Time.of_us (Time.to_us t.proc_delay * t.option_slow_factor)
    else t.proc_delay
  in
  ignore (Engine.schedule_after t.engine ~delay:d (fun () -> if t.up then f ()))

let send t pkt =
  t.n_originated <- t.n_originated + 1;
  tracef t "tx" "%a" Ipv4.Packet.pp pkt;
  delayed t ~slow:(Ipv4.Packet.has_options pkt) (fun () ->
      route_and_send t pkt)

let forward_now t pkt =
  delayed t ~slow:(Ipv4.Packet.has_options pkt) (fun () ->
      route_and_send t pkt)

let send_ip_to_mac t ~iface:i ~dst_mac pkt =
  delayed t ~slow:false (fun () -> frame_out t i ~dst_mac pkt)

let broadcast_ip t ~iface:i pkt =
  delayed t ~slow:false (fun () ->
      match iface t i with
      | exception Invalid_argument _ -> drop t "iface-down" pkt
      | s ->
        (match t.fault_filter with
         | Some f when not (f t pkt) -> drop t "fault-loss" pkt
         | _ ->
           List.iter (fun f -> f t pkt) t.broadcast_taps;
           let frame =
             Frame.ip ~src:s.mac ~dst:Mac.broadcast (Ipv4.Packet.encode pkt)
           in
           Lan.send s.lan frame))

let gratuitous_arp t ~iface:i ip =
  let s = iface t i in
  let a = Arp.gratuitous ~mac:s.mac ~ip in
  tracef t "arp-tx" "gratuitous %a" Arp.pp a;
  Lan.send s.lan (Frame.arp ~src:s.mac ~dst:Mac.broadcast a)

(* Drop any cached entry first: a probe asks whether the target is on
   the LAN *now*, and a stale cached answer would make the verification
   vacuous. *)
let arp_probe t ~iface:i target =
  Hashtbl.remove t.arp_cache target;
  send_arp_request t i target

let arp_cache_lookup t a = arp_fresh t a
let arp_cache_size t = Hashtbl.length t.arp_cache

(* --- receive path --- *)

let flush_arp_pending t resolved_ip =
  Hashtbl.remove t.arp_tries resolved_ip;
  let ready, rest =
    List.partition
      (fun (ip, _, _) -> Ipv4.Addr.equal ip resolved_ip)
      t.arp_pending
  in
  t.arp_pending <- rest;
  (* restore scheduling order *)
  List.iter
    (fun (_, i, pkt) -> resolve_and_emit t i ~next_hop:resolved_ip pkt)
    (List.rev ready)

let handle_arp t i (a : Arp.t) =
  (* Learn the sender binding from every ARP we hear: replies and
     gratuitous broadcasts update caches (Section 2 relies on this). *)
  (match a.Arp.op with
   | Arp.Reply ->
     arp_learn t a.Arp.sender_ip a.Arp.sender_mac;
     flush_arp_pending t a.Arp.sender_ip
   | Arp.Request ->
     (* Standard ARP: learn requester binding only if we already track it
        or the request is addressed to us (keeps caches small). *)
     if Hashtbl.mem t.arp_cache a.Arp.sender_ip then
       arp_learn t a.Arp.sender_ip a.Arp.sender_mac);
  match a.Arp.op with
  | Arp.Reply -> ()
  | Arp.Request ->
    let target = a.Arp.target_ip in
    let mine =
      match (iface t i).addr with
      | Some my -> Ipv4.Addr.equal my target || has_address t target
      | None -> has_address t target
    in
    if mine || t.arp_proxy target then begin
      arp_learn t a.Arp.sender_ip a.Arp.sender_mac;
      let s = iface t i in
      let reply =
        Arp.reply ~sender_mac:s.mac ~sender_ip:target
          ~target_mac:a.Arp.sender_mac ~target_ip:a.Arp.sender_ip
      in
      tracef t "arp-tx" "%a%s" Arp.pp reply
        (if mine then "" else " (proxy)");
      Lan.send s.lan (Frame.arp ~src:s.mac ~dst:a.Arp.sender_mac reply)
    end

let builtin_icmp t (pkt : Ipv4.Packet.t) =
  match Ipv4.Icmp.decode_opt pkt.Ipv4.Packet.payload with
  | None -> () (* unknown type: silently discarded, RFC 1122 *)
  | exception Invalid_argument _ -> drop t "bad-icmp" pkt
  | Some (Ipv4.Icmp.Echo_request { ident; seq; data }) ->
    let reply = Ipv4.Icmp.Echo_reply { ident; seq; data } in
    let out =
      Ipv4.Packet.make ~proto:Ipv4.Proto.icmp ~src:(primary_addr t)
        ~dst:pkt.Ipv4.Packet.src (Ipv4.Icmp.encode reply)
    in
    forward_now t out
  | Some _ -> () (* errors/replies with no registered handler: ignore *)

(* RFC 791 loose-source-route: a listed hop receives the packet addressed
   to itself, records its own address in the consumed slot, redirects the
   packet at the next listed address, and forwards. *)
let advance_lsrr t (pkt : Ipv4.Packet.t) =
  let rec go acc = function
    | [] -> None
    | (Ipv4.Ip_option.Lsrr { pointer; route } as o) :: rest ->
      (match Ipv4.Ip_option.lsrr_next o with
       | None -> None
       | Some (next_dst, _) ->
         let idx = (pointer - 4) / 4 in
         let route' = Array.copy route in
         route'.(idx) <- primary_addr t;
         let o' = Ipv4.Ip_option.Lsrr { pointer = pointer + 4;
                                        route = route' } in
         Some
           { pkt with
             Ipv4.Packet.dst = next_dst;
             options = List.rev_append acc (o' :: rest) })
    | o :: rest -> go (o :: acc) rest
  in
  go [] pkt.Ipv4.Packet.options

let rec deliver_local t (pkt : Ipv4.Packet.t) =
  if Ipv4.Packet.is_fragment pkt then begin
    (* reassemble at the destination; forwarders never see this path *)
    let now = Time.to_us (Engine.now t.engine) in
    ignore
      (Ipv4.Packet.Reassembly.expire t.reassembly ~now
         ~older_than_us:30_000_000);
    match Ipv4.Packet.Reassembly.add t.reassembly ~now pkt with
    | Some whole -> deliver_local t whole
    | None -> () (* waiting for the rest *)
  end
  else deliver_local_whole t pkt

and deliver_local_whole t (pkt : Ipv4.Packet.t) =
  match advance_lsrr t pkt with
  | Some pkt' ->
    tracef t "lsrr" "source-routing on to %a" Ipv4.Addr.pp
      pkt'.Ipv4.Packet.dst;
    t.n_forwarded <- t.n_forwarded + 1;
    List.iter (fun f -> f t pkt') t.forward_taps;
    forward_now t pkt'
  | None ->
    t.n_delivered <- t.n_delivered + 1;
    tracef t "rx" "%a" Ipv4.Packet.pp pkt;
    List.iter (fun f -> f t pkt) t.deliver_taps;
    match Hashtbl.find_opt t.proto_handlers pkt.Ipv4.Packet.proto with
    | Some h -> h t pkt
    | None ->
      if pkt.Ipv4.Packet.proto = Ipv4.Proto.icmp then builtin_icmp t pkt
      else drop t "no-proto-handler" pkt

let () = deliver_local_ref := deliver_local
let inject_local t pkt = if t.up then deliver_local t pkt

let forward t (pkt : Ipv4.Packet.t) =
  match Ipv4.Packet.decr_ttl pkt with
  | None ->
    drop t "ttl-expired" pkt;
    icmp_error t
      (fun original -> Ipv4.Icmp.Time_exceeded { code = 0; original })
      pkt
  | Some pkt ->
    match
      (match t.rewrite_forward with Some f -> f t pkt | None -> Forward)
    with
    | Consume -> ()
    | Drop reason -> drop t reason pkt
    | Replace pkt' ->
      t.n_forwarded <- t.n_forwarded + 1;
      tracef t "fwd" "rewritten: %a" Ipv4.Packet.pp pkt';
      List.iter (fun f -> f t pkt') t.forward_taps;
      forward_now t pkt'
    | Forward ->
      t.n_forwarded <- t.n_forwarded + 1;
      tracef t "fwd" "%a" Ipv4.Packet.pp pkt;
      List.iter (fun f -> f t pkt) t.forward_taps;
      forward_now t pkt

let rx_ip t (pkt : Ipv4.Packet.t) =
  if Ipv4.Addr.equal pkt.Ipv4.Packet.dst Ipv4.Addr.broadcast
     || has_address t pkt.Ipv4.Packet.dst
  then deliver_local t pkt
  else if (match t.accept_ip with Some f -> f t pkt | None -> false)
  then begin
    tracef t "intercept" "%a" Ipv4.Packet.pp pkt;
    deliver_local t pkt
  end
  else if t.router then forward t pkt
  else drop t "not-mine" pkt

(* The classical receive path: full decode, then the hook-driven stack. *)
let rx_ip_bytes t bytes =
  match Ipv4.Packet.decode bytes with
  | pkt -> rx_ip t pkt
  | exception Invalid_argument msg ->
    tracef t "drop" "malformed packet: %s" msg;
    t.n_dropped <- t.n_dropped + 1

(* --- zero-copy forwarding fast path ---

   A transit router whose stack is not watching (no accept_ip claim, no
   rewrite hook, no forward taps, tracing off) forwards a packet without
   ever decoding it: validate the header through a {!Ipv4.Packet.View},
   rewrite TTL and patch the checksum in place, and hand the *received*
   buffer straight to the outgoing frame.  Mutating the received buffer
   is sound because a unicast frame's payload has exactly one owner
   after delivery (DESIGN.md Section 11): LAN monitors have already run
   synchronously, and anything they keep is decoded (copied), never the
   raw buffer.  Every condition the fast path cannot preserve
   byte-for-byte — options, fragmentation at the egress MTU, TTL
   expiry, ARP misses, fault filters, transmit taps — falls back to the
   classical path on the same bytes, so wire semantics, counters, drops
   and ICMP errors are identical either way; only allocation and CPU
   cost differ.  Hooks installed between receipt and the (delayed)
   transmit are honoured by re-checking at emit time, mirroring where
   the classical path consults them. *)

module View = Ipv4.Packet.View

let fast_forward_eligible t =
  t.router
  && (match t.accept_ip with None -> true | Some _ -> false)
  && (match t.rewrite_forward with None -> true | Some _ -> false)
  && (match t.forward_taps with [] -> true | _ :: _ -> false)
  && not (Netsim.Trace.active t.tr)

let fast_frame_out t i ~dst_mac v =
  let s = iface t i in
  let needs_slow_emit =
    View.total_length v > Lan.mtu s.lan
    || (match t.fault_filter with Some _ -> true | None -> false)
    || (match t.transmit_taps with [] -> false | _ :: _ -> true)
  in
  if needs_slow_emit then frame_out t i ~dst_mac (View.decode v)
  else Lan.send s.lan (Frame.ip ~src:s.mac ~dst:dst_mac (View.to_wire v))

let fast_resolve_and_emit t i ~next_hop v =
  match arp_fresh t next_hop with
  | Some mac -> fast_frame_out t i ~dst_mac:mac v
  | None ->
    (* ARP miss: park the decoded packet on the classical pending queue;
       the eventual flush re-encodes it to the same bytes. *)
    resolve_and_emit t i ~next_hop (View.decode v)

let fast_route_and_send t v =
  if not t.up then ()
  else
    let dst = View.dst v in
    match Route.lookup t.table dst with
    | None ->
      let pkt = View.decode v in
      drop t "no-route" pkt;
      if not (has_address t pkt.Ipv4.Packet.src) then
        icmp_error t
          (fun original ->
             Ipv4.Icmp.Dest_unreachable { code = 0; original })
          pkt
    | Some (Route.Direct i) ->
      (match iface t i with
       | exception Invalid_argument _ -> drop t "iface-down" (View.decode v)
       | _ -> fast_resolve_and_emit t i ~next_hop:dst v)
    | Some (Route.Via gw) ->
      match iface_for_next_hop t gw with
      | None -> drop t "gateway-unreachable" (View.decode v)
      | Some i -> fast_resolve_and_emit t i ~next_hop:gw v

let fast_forward t v =
  t.n_forwarded <- t.n_forwarded + 1;
  t.n_fast_forwarded <- t.n_fast_forwarded + 1;
  View.decr_ttl v;
  delayed t ~slow:false (fun () -> fast_route_and_send t v)

let fast_rx t bytes =
  let v = View.make bytes in
  if not (View.valid v)
     (* options may be malformed (decode rejects them) and cost the
        slow-path delay factor; whole-buffer views only, so the egress
        frame carries no trailing bytes the classical encode would trim *)
     || View.has_options v
     || View.total_length v <> Bytes.length bytes
  then rx_ip_bytes t bytes
  else
    let dst = View.dst v in
    if Ipv4.Addr.equal dst Ipv4.Addr.broadcast || has_address t dst
       || View.ttl v <= 1
    then rx_ip_bytes t bytes
    else fast_forward t v

let on_frame t i (frame : Frame.t) =
  if t.up then
    match frame.Frame.content with
    | Frame.Arp a -> handle_arp t i a
    | Frame.Ip bytes ->
      (* A MAC-broadcast frame's payload is shared by every station on
         the LAN and must never be mutated in place. *)
      if fast_forward_eligible t && not (Mac.is_broadcast frame.Frame.dst)
      then fast_rx t bytes
      else rx_ip_bytes t bytes

(* --- attachment --- *)

let attach t ?addr lan =
  let mac = Mac.Alloc.fresh t.mac_alloc in
  let s = { lan; mac; addr; active = true } in
  let i = Array.length t.ifaces in
  t.ifaces <- Array.append t.ifaces [| s |];
  Lan.attach lan mac (fun frame -> on_frame t i frame);
  i

let detach t i =
  let s = iface t i in
  s.active <- false;
  Lan.detach s.lan s.mac

(* --- failure injection --- *)

let is_up t = t.up
let set_up t v = t.up <- v

let reboot t =
  Hashtbl.reset t.arp_cache;
  Hashtbl.reset t.arp_tries;
  t.arp_pending <- [];
  tracef t "reboot" "state cleared";
  List.iter (fun f -> f t) t.reboot_hooks

let crash_for t d =
  set_up t false;
  tracef t "crash" "down for %a" Time.pp d;
  ignore
    (Engine.schedule_after t.engine ~delay:d (fun () ->
         set_up t true;
         reboot t))

(* --- counters --- *)

let packets_forwarded t = t.n_forwarded
let packets_fast_forwarded t = t.n_fast_forwarded
let packets_delivered t = t.n_delivered
let packets_originated t = t.n_originated
let packets_dropped t = t.n_dropped

let pp ppf t =
  Format.fprintf ppf "%s%s [%s] fwd=%d rx=%d tx=%d drop=%d" t.name
    (if t.router then " (router)" else "")
    (String.concat "," (List.map Ipv4.Addr.to_string (addresses t)))
    t.n_forwarded t.n_delivered t.n_originated t.n_dropped
