(** The Address Resolution Protocol (RFC 826) at the level the paper uses
    it: request/reply plus the two MHRP manoeuvres of Section 2 —
    a home agent broadcasting a "gratuitous" reply to capture a departed
    mobile host's traffic, and the returning host broadcasting its own to
    reclaim it. *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.Addr.t;
  target_mac : Mac.t option;  (** [None] in requests. *)
  target_ip : Ipv4.Addr.t;
}

val request : sender_mac:Mac.t -> sender_ip:Ipv4.Addr.t ->
  target_ip:Ipv4.Addr.t -> t

val reply : sender_mac:Mac.t -> sender_ip:Ipv4.Addr.t ->
  target_mac:Mac.t -> target_ip:Ipv4.Addr.t -> t

val gratuitous : mac:Mac.t -> ip:Ipv4.Addr.t -> t
(** A broadcast reply that binds [ip -> mac] in every listener's cache —
    sender and target IP both [ip], per the convention. *)

val wire_length : int
(** 28 bytes: the Ethernet ARP packet size, for byte accounting. *)

val pp : Format.formatter -> t -> unit
