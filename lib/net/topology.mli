(** Container wiring an engine, LANs and nodes into an internetwork.

    Provides the builder vocabulary the experiments use ("add a backbone,
    three campus networks and a wireless cell, compute routes"), plus the
    link-level half of host movement: detaching a mobile host's interface
    from one LAN and attaching it to another.  Protocol-level movement
    (agent discovery, registration) lives in the MHRP library. *)

type t

val create :
  ?seed:int -> ?trace_capacity:int -> ?icmp_quote:Node.icmp_quote ->
  unit -> t
(** [icmp_quote] (default [Quote_full]) is applied to every node created
    through this topology: how much of an offending packet its ICMP errors
    quote.  [Quote_full] is what Section 4.5's error reversal needs;
    [Quote_min] exercises the degraded path. *)

val engine : t -> Netsim.Engine.t
val trace : t -> Netsim.Trace.t
val rng : t -> Netsim.Rng.t

val add_lan :
  t -> ?latency:Netsim.Time.t -> ?bandwidth_bps:int -> ?loss:float ->
  ?mtu:int -> ?prefix_len:int -> net:int -> string -> Lan.t
(** A LAN whose prefix is {!Ipv4.Addr.net_len}[ net prefix_len]
    (default prefix length 24, i.e. {!Ipv4.Addr.net}[ net]).  Pass a
    shorter [prefix_len] — on a base clear of the /24 plan — for
    segments that must address hundreds of stations, like the backbone
    of the 256-campus experiment. *)

val add_router : t -> string -> (Lan.t * int) list -> Node.t
(** [add_router t name [(lan, host_id); ...]] — a router with one
    interface per listed LAN, addressed as host [host_id] of that LAN's
    prefix. *)

val add_host : t -> ?router:bool -> string -> Lan.t -> int -> Node.t
(** A (single-homed) host, addressed as the given host id of the LAN. *)

val node : t -> string -> Node.t
(** Raises [Not_found]. *)

val on_node_added : t -> (Node.t -> unit) -> unit
(** Called for every node added after registration — lets measurement
    taps cover nodes created mid-experiment. *)

val lan : t -> string -> Lan.t
val nodes : t -> Node.t list
val lans : t -> Lan.t list

val registration_ops : t -> int
(** Elementary operations spent registering LANs and nodes so far: one per
    [add_lan]/[add_node] name probe.  Regression tests assert this stays
    linear in the number of registrations (wall-clock budgets are flaky in
    CI; this counter is deterministic). *)

val compute_routes : t -> unit
(** Run {!Routing.compute} over the current topology. *)

val move_host : t -> Node.t -> Lan.t -> unit
(** Link-level move: detach the node's interfaces and attach it to the
    given LAN.  If the node's home address belongs to the LAN's prefix the
    interface is configured with it (the host is home); otherwise the
    interface carries no address, as for a visiting mobile host. *)

val run : ?until:Netsim.Time.t -> t -> unit
val now : t -> Netsim.Time.t

val total_frames : t -> int
val total_bytes : t -> int
