(** Computation of the "standard internetwork routing" substrate.

    The paper assumes ordinary IP routing delivers packets to a host's
    network; MHRP rides on top.  We provide that substrate with a global
    shortest-path computation (one BFS per node over the LAN-adjacency
    graph, transit through routers only), filling every node's routing
    table with one entry per reachable network prefix.

    Host-specific (/32) routes installed later by protocol code survive
    only until the next [compute]; recompute before protocol setup.

    This computation is an {b oracle}: it reads the whole topology in one
    pass and installs every table instantaneously at the current simulated
    time, with no packets exchanged, no convergence delay and no
    control-byte cost.  It is the right substrate for experiments that
    assume routing "just works" underneath the mobility protocols — but it
    cannot exhibit reconvergence behaviour.  The {!Lsr} library provides
    the contrasting in-simulation distributed protocol; {!recompute_count}
    exists so experiments can report the oracle's work honestly alongside
    LSR's per-router SPF counts. *)

type graph
(** The LAN-adjacency graph over a snapshot of nodes and LANs, plus the
    BFS scratch state.  Building it is O(N·I + E); reuse one graph across
    queries instead of rebuilding per call.  A graph goes stale when
    topology changes (attach/detach, LANs going up or down) — rebuild it
    then. *)

val build : nodes:Node.t list -> lans:Lan.t list -> graph
(** Snapshot the adjacency of [nodes] across the (up) [lans].  The LAN
    list may contain repeats; they are deduplicated by identity. *)

val compute : nodes:Node.t list -> lans:Lan.t list -> unit
(** Replace every node's routing table.  Nodes attached to a LAN get a
    [Direct] entry; others get [Via] the first-hop router toward the
    nearest router attached to that LAN.  Unreachable prefixes get no
    entry.  Deterministic: ties break on node name.  Equivalent to
    [compute_graph (build ~nodes ~lans)]. *)

val compute_graph : graph -> unit
(** [compute] on an already-built graph. *)

val path_length : nodes:Node.t list -> src:Node.t -> dst_lan:Lan.t -> int option
(** Number of LAN hops from [src] to the nearest router attached to
    [dst_lan] (plus one for final LAN delivery when [src] is not attached),
    computed on the same graph as [compute] — used by experiments to
    report ideal path lengths.  Builds a throwaway graph per call; batch
    queries should go through {!graph_of_nodes} and {!path_length_graph}. *)

val graph_of_nodes : Node.t list -> graph
(** The graph over every LAN any of [nodes] is attached to — the graph
    {!path_length} builds internally, exposed so repeated path queries can
    share one build. *)

val path_length_graph : graph -> src:Node.t -> dst_lan:Lan.t -> int option
(** {!path_length} against a prebuilt graph. *)

val recompute_count : unit -> int
(** Number of global full-table computations ({!compute} /
    {!compute_graph}) performed so far, process-wide and monotone.  Each
    one is a complete omniscient rebuild of every node's table — the
    oracle's unit of SPF work, comparable against [Lsr]'s per-router
    [spf_runs] counter.  Thread-safe; under a parallel sweep, read it
    before and after the whole sweep (the delta is deterministic), not
    from inside concurrent trials. *)
