(** Computation of the "standard internetwork routing" substrate.

    The paper assumes ordinary IP routing delivers packets to a host's
    network; MHRP rides on top.  We provide that substrate with a global
    shortest-path computation (one Dijkstra per node over the LAN-adjacency
    graph, transit through routers only), filling every node's routing
    table with one entry per reachable network prefix.

    Host-specific (/32) routes installed later by protocol code survive
    only until the next [compute]; recompute before protocol setup. *)

val compute : nodes:Node.t list -> lans:Lan.t list -> unit
(** Replace every node's routing table.  Nodes attached to a LAN get a
    [Direct] entry; others get [Via] the first-hop router toward the
    nearest router attached to that LAN.  Unreachable prefixes get no
    entry.  Deterministic: ties break on node name. *)

val path_length : nodes:Node.t list -> src:Node.t -> dst_lan:Lan.t -> int option
(** Number of LAN hops from [src] to the nearest router attached to
    [dst_lan] (plus one for final LAN delivery when [src] is not attached),
    computed on the same graph as [compute] — used by experiments to
    report ideal path lengths. *)
