(** Matsushita's packet-forwarding proposal (Wada, Ohnishi, Marsh).

    A Packet Forwarding Server (PFS) on the mobile host's home network
    tunnels packets to the host's temporary address with IPTP — 40 bytes
    of overhead per packet ({!Iptp}).  In {e forwarding mode} all traffic
    goes through the PFS (no route optimisation); in {e autonomous mode}
    senders cache the temporary address after a PFS binding notice and
    tunnel directly. *)

type mode = Forwarding | Autonomous

type t

val create : Net.Topology.t -> mode -> t
val mode : t -> mode

val add_pfs : t -> Net.Node.t -> unit
(** The node (a home-network router) becomes a PFS. *)

val make_mobile : t -> Net.Node.t -> pfs:Net.Node.t -> unit

val move :
  t -> Net.Node.t -> lan:Net.Lan.t -> via_router:Net.Node.t ->
  temp:Ipv4.Addr.t -> unit
(** Obtain the temporary address and register it with the PFS. *)

val send : t -> src:Net.Node.t -> Ipv4.Packet.t -> unit
val on_receive : t -> Net.Node.t -> (Ipv4.Packet.t -> unit) -> unit

val control_messages : t -> int
