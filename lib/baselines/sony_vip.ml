module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module Node = Net.Node

type host = {
  h_node : Node.t;
  vip : Addr.t;
  mutable phys : Addr.t;
  h_cache : (Addr.t, Addr.t) Hashtbl.t;  (* peer vip -> phys *)
  mutable h_receive : Packet.t -> unit;
  h_last : (Addr.t, Packet.t) Hashtbl.t;  (* vip -> last packet, for retry *)
}

type router = {
  r_node : Node.t;
  amt : (Addr.t, Addr.t * int) Hashtbl.t;
  (* vip -> (phys, timestamp): snooped bindings are guarded by the VIP
     header's timestamp so an old packet still in flight cannot regress a
     newer mapping — the VIP design's version field *)
}

type t = {
  topo : Net.Topology.t;
  flood_reliability : float;
  rng : Netsim.Rng.t;
  mutable routers : router list;
  hosts : (Addr.t, host) Hashtbl.t;  (* by vip *)
  authoritative : (Addr.t, Addr.t) Hashtbl.t;  (* vip -> phys, at home *)
  home_router : (Addr.t, Node.t) Hashtbl.t;  (* vip -> home router node *)
  mutable ctrl : int;
  mutable timestamp : int;
}

let create ?(flood_reliability = 1.0) topo =
  if flood_reliability < 0.0 || flood_reliability > 1.0 then
    invalid_arg "Sony_vip.create: flood_reliability";
  { topo; flood_reliability;
    rng = Netsim.Rng.split (Net.Topology.rng topo);
    routers = []; hosts = Hashtbl.create 16;
    authoritative = Hashtbl.create 16; home_router = Hashtbl.create 16;
    ctrl = 0; timestamp = 0 }

let learn tbl ~vip ~phys ~stamp =
  let newer =
    match Hashtbl.find_opt tbl vip with
    | Some (_, old_stamp) -> stamp >= old_stamp
    | None -> true
  in
  if newer then
    if not (Addr.equal vip phys) then Hashtbl.replace tbl vip (phys, stamp)
    else Hashtbl.remove tbl vip

let add_router t node =
  let r = { r_node = node; amt = Hashtbl.create 32 } in
  t.routers <- t.routers @ [r];
  (* the home router answers ARP for its hosts' VIPs while they hold a
     different physical address, and claims those packets for rewrite *)
  let away vip =
    (match Hashtbl.find_opt t.home_router vip with
     | Some home -> home == node
     | None -> false)
    && (match Hashtbl.find_opt t.authoritative vip with
        | Some phys -> not (Addr.equal phys vip)
        | None -> false)
  in
  Node.set_arp_proxy node away;
  Node.set_accept_ip node (fun _ pkt -> away pkt.Packet.dst);
  Node.set_proto_handler node Ipv4.Proto.vip (fun _ pkt ->
      match Viph.peek pkt with
      | None -> ()
      | Some h when away h.Viph.vip_dst ->
        let phys =
          Option.value ~default:h.Viph.vip_dst
            (Hashtbl.find_opt t.authoritative h.Viph.vip_dst)
        in
        Node.forward_now node { pkt with Packet.dst = phys }
      | Some _ -> ());
  Node.set_rewrite_forward node (fun _ pkt ->
      match Viph.peek pkt with
      | None -> Node.Forward
      | Some h ->
        (* snoop source mapping from packets in transit *)
        learn r.amt ~vip:h.Viph.vip_src ~phys:pkt.Packet.src
          ~stamp:h.Viph.timestamp;
        (* authoritative rewrite at the destination's home router *)
        (match Hashtbl.find_opt t.home_router h.Viph.vip_dst with
         | Some home when home == node ->
           let phys =
             Option.value ~default:h.Viph.vip_dst
               (Hashtbl.find_opt t.authoritative h.Viph.vip_dst)
           in
           if Addr.equal pkt.Packet.dst phys then Node.Forward
           else Node.Replace { pkt with Packet.dst = phys }
         | _ ->
           (* unresolved packet: rewrite from our own cache if we can *)
           if Addr.equal pkt.Packet.dst h.Viph.vip_dst then
             match Hashtbl.find_opt r.amt h.Viph.vip_dst with
             | Some (phys, _) when not (Addr.equal phys pkt.Packet.dst) ->
               Node.Replace { pkt with Packet.dst = phys }
             | _ -> Node.Forward
           else Node.Forward))

let wrap t host (pkt : Packet.t) =
  let vip_dst = pkt.Packet.dst in
  let phys_dst =
    Option.value ~default:vip_dst (Hashtbl.find_opt host.h_cache vip_dst)
  in
  t.timestamp <- t.timestamp + 1;
  let header =
    { Viph.vip_src = host.vip; vip_dst; hop_count = 0;
      timestamp = t.timestamp }
  in
  Viph.add header
    { pkt with Packet.src = host.phys; dst = phys_dst }

let send t ~src pkt =
  match Hashtbl.find_opt t.hosts (Node.primary_addr src) with
  | None -> Node.send src pkt (* not a VIP host: plain IP *)
  | Some host ->
    Hashtbl.replace host.h_last pkt.Packet.dst pkt;
    Node.send src (wrap t host pkt)

let setup_host t host =
  Node.set_proto_handler host.h_node Ipv4.Proto.vip (fun _ pkt ->
      match Viph.strip pkt with
      | None -> ()
      | Some (h, inner) ->
        if Addr.equal h.Viph.vip_dst host.vip then begin
          (if not (Addr.equal h.Viph.vip_src pkt.Packet.src) then
             Hashtbl.replace host.h_cache h.Viph.vip_src pkt.Packet.src
           else Hashtbl.remove host.h_cache h.Viph.vip_src);
          host.h_receive
            { inner with
              Packet.src = h.Viph.vip_src;
              dst = h.Viph.vip_dst }
        end
        (* else: misdelivered to a reused physical address — a real VIP
           host discards and signals an error; with our address plan
           physical addresses are never reused, so this cannot arise *));
  Node.set_proto_handler host.h_node Ipv4.Proto.icmp (fun _ pkt ->
      (* Stale mapping sent our packet into a void: fall back to routing
         by VIP (via the home network) and retransmit once. *)
      match Ipv4.Icmp.decode_opt pkt.Packet.payload with
      | Some (Ipv4.Icmp.Dest_unreachable { original; _ }) ->
        (match Packet.decode_prefix original with
         | Some (qpkt, _) ->
           (match Viph.peek qpkt with
            | Some h when Addr.equal h.Viph.vip_src host.vip ->
              Hashtbl.remove host.h_cache h.Viph.vip_dst;
              (match Hashtbl.find_opt host.h_last h.Viph.vip_dst with
               | Some p ->
                 Hashtbl.remove host.h_last h.Viph.vip_dst;
                 Node.send host.h_node (wrap t host p)
               | None -> ())
            | _ -> ())
         | None -> ())
      | _ -> ())

let make_host t node ~home_router =
  let vip = Node.primary_addr node in
  Node.add_address node vip;
  let host =
    { h_node = node; vip; phys = vip; h_cache = Hashtbl.create 8;
      h_receive = (fun _ -> ()); h_last = Hashtbl.create 8 }
  in
  Hashtbl.replace t.hosts vip host;
  Hashtbl.replace t.home_router vip home_router;
  Hashtbl.replace t.authoritative vip vip;
  setup_host t host

let on_receive t node f =
  match Hashtbl.find_opt t.hosts (Node.primary_addr node) with
  | Some host -> host.h_receive <- f
  | None -> invalid_arg "Sony_vip.on_receive: not a VIP host"

let flood_invalidate t vip =
  (* One message per router; each is reached with [flood_reliability] —
     survivors keep a stale mapping (the paper's critique). *)
  List.iter
    (fun r ->
       t.ctrl <- t.ctrl + 1;
       if Netsim.Rng.float t.rng 1.0 < t.flood_reliability then
         Hashtbl.remove r.amt vip)
    t.routers

let move t node ~lan ~via_router ~temp =
  let vip = Node.primary_addr node in
  match Hashtbl.find_opt t.hosts vip with
  | None -> invalid_arg "Sony_vip.move: not a VIP host"
  | Some host ->
    if not (Ipv4.Addr.Prefix.mem temp (Net.Lan.prefix lan))
       && not (Addr.equal temp vip)
    then invalid_arg "Sony_vip.move: temp address not in LAN prefix";
    if not (Addr.equal host.phys host.vip) then
      Node.remove_address node host.phys;
    Net.Topology.move_host t.topo node lan;
    host.phys <- temp;
    if not (Addr.equal temp vip) then Node.add_address node temp;
    (* route via the local router *)
    (match Node.ifaces node with
     | (i, l, _) :: _ ->
       let gw =
         match Node.iface_to via_router (Net.Lan.prefix l) with
         | Some ri -> Node.iface_addr via_router ri
         | None -> None
       in
       (match gw with
        | Some g ->
          Node.set_routes node
            (Net.Route.add_default
               (Net.Route.add Net.Route.empty (Net.Lan.prefix l)
                  (Net.Route.Direct i))
               (Net.Route.Via g))
        | None -> ())
     | [] -> ());
    (* register with the home router (one unicast) and flood *)
    t.ctrl <- t.ctrl + 1;
    Hashtbl.replace t.authoritative vip temp;
    flood_invalidate t vip

let control_messages t = t.ctrl

let router_cache_bytes t =
  (* two addresses plus a timestamp per entry *)
  List.fold_left (fun acc r -> acc + (12 * Hashtbl.length r.amt)) 0
    t.routers

let stale_entries t =
  List.fold_left
    (fun acc r ->
       Hashtbl.fold
         (fun vip (phys, _) acc ->
            match Hashtbl.find_opt t.authoritative vip with
            | Some auth when not (Addr.equal auth phys) -> acc + 1
            | _ -> acc)
         r.amt acc)
    0 t.routers
