module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module Node = Net.Node

let port = 435

(* Registry messages: tag(1) mobile(4) forwarder(4). *)
type msg =
  | Register of { mobile : Addr.t; fwd : Addr.t }
  | Query of { mobile : Addr.t }
  | Answer of { mobile : Addr.t; fwd : Addr.t }

let put_addr buf i a =
  let v = Addr.to_int a in
  Bytes.set buf i (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set buf (i + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set buf (i + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (i + 3) (Char.chr (v land 0xFF))

let get_addr buf i =
  Addr.of_int
    ((Char.code (Bytes.get buf i) lsl 24)
     lor (Char.code (Bytes.get buf (i + 1)) lsl 16)
     lor (Char.code (Bytes.get buf (i + 2)) lsl 8)
     lor Char.code (Bytes.get buf (i + 3)))

let encode_msg m =
  let buf = Bytes.make 9 '\000' in
  (match m with
   | Register { mobile; fwd } ->
     Bytes.set buf 0 '\001';
     put_addr buf 1 mobile;
     put_addr buf 5 fwd
   | Query { mobile } ->
     Bytes.set buf 0 '\002';
     put_addr buf 1 mobile
   | Answer { mobile; fwd } ->
     Bytes.set buf 0 '\003';
     put_addr buf 1 mobile;
     put_addr buf 5 fwd);
  buf

let decode_msg buf =
  if Bytes.length buf < 9 then None
  else
    match Bytes.get buf 0 with
    | '\001' -> Some (Register { mobile = get_addr buf 1; fwd = get_addr buf 5 })
    | '\002' -> Some (Query { mobile = get_addr buf 1 })
    | '\003' -> Some (Answer { mobile = get_addr buf 1; fwd = get_addr buf 5 })
    | _ -> None

type forwarder = {
  f_node : Node.t;
  f_iface : int;
  f_addr : Addr.t;
}

type sender_state = {
  s_cache : (Addr.t, Addr.t) Hashtbl.t;  (* mobile -> forwarder *)
  s_pending : (Addr.t, Packet.t list) Hashtbl.t;
  s_last : (Addr.t, Packet.t * int) Hashtbl.t;  (* for retransmission *)
}

type t = {
  topo : Net.Topology.t;
  db_node : Node.t;
  db : (Addr.t, Addr.t) Hashtbl.t;
  mobiles : (Addr.t, unit) Hashtbl.t;
  senders : (string, sender_state) Hashtbl.t;
  mutable forwarders : forwarder list;
  mutable ctrl : int;
  mutable lookups : int;
}

let max_retransmits = 3

let create topo ~db_node =
  let t =
    { topo; db_node; db = Hashtbl.create 64; mobiles = Hashtbl.create 16;
      senders = Hashtbl.create 16; forwarders = []; ctrl = 0; lookups = 0 }
  in
  Node.set_proto_handler db_node Ipv4.Proto.udp (fun node pkt ->
      match Ipv4.Udp.decode pkt.Packet.payload with
      | exception Invalid_argument _ -> ()
      | udp ->
        if udp.Ipv4.Udp.dst_port = port then
          match decode_msg udp.Ipv4.Udp.data with
          | Some (Register { mobile; fwd }) ->
            Hashtbl.replace t.db mobile fwd
          | Some (Query { mobile }) ->
            t.lookups <- t.lookups + 1;
            let fwd =
              Option.value ~default:Addr.zero
                (Hashtbl.find_opt t.db mobile)
            in
            t.ctrl <- t.ctrl + 1;
            let reply =
              Ipv4.Udp.make ~src_port:port ~dst_port:port
                (encode_msg (Answer { mobile; fwd }))
            in
            Node.send node
              (Packet.make ~proto:Ipv4.Proto.udp
                 ~src:(Node.primary_addr node) ~dst:pkt.Packet.src
                 (Ipv4.Udp.encode reply))
          | Some (Answer _) | None -> ());
  t

let forwarder_node f = f.f_node

let add_forwarder t node ~lan =
  match Node.iface_to node (Net.Lan.prefix lan) with
  | None -> invalid_arg "Sunshine_postel.add_forwarder: not on LAN"
  | Some i ->
    let addr =
      match Node.iface_addr node i with
      | Some a -> a
      | None -> invalid_arg "Sunshine_postel.add_forwarder: no address"
    in
    let f = { f_node = node; f_iface = i; f_addr = addr } in
    t.forwarders <- t.forwarders @ [f];
    f

let sender_state t node =
  match Hashtbl.find_opt t.senders (Node.name node) with
  | Some st -> st
  | None ->
    let st =
      { s_cache = Hashtbl.create 8; s_pending = Hashtbl.create 8;
        s_last = Hashtbl.create 8 }
    in
    Hashtbl.replace t.senders (Node.name node) st;
    st

let lsrr_final_dst (pkt : Packet.t) =
  List.find_map
    (fun o ->
       match o with
       | Ipv4.Ip_option.Lsrr { route; _ } when Array.length route > 0 ->
         Some route.(Array.length route - 1)
       | _ -> None)
    pkt.Packet.options

let send_via t ~src st fwd (pkt : Packet.t) =
  ignore t;
  Hashtbl.replace st.s_last pkt.Packet.dst (pkt, 0);
  let routed =
    { pkt with
      Packet.dst = fwd;
      options = [Ipv4.Ip_option.lsrr [pkt.Packet.dst]] }
  in
  Node.send src routed

let query_db t ~src mobile =
  t.ctrl <- t.ctrl + 1;
  let q =
    Ipv4.Udp.make ~src_port:port ~dst_port:port
      (encode_msg (Query { mobile }))
  in
  Node.send src
    (Packet.make ~proto:Ipv4.Proto.udp ~src:(Node.primary_addr src)
       ~dst:(Node.primary_addr t.db_node) (Ipv4.Udp.encode q))

let setup_sender t node =
  let st = sender_state t node in
  Node.set_proto_handler node Ipv4.Proto.udp (fun _ pkt ->
      match Ipv4.Udp.decode pkt.Packet.payload with
      | exception Invalid_argument _ -> ()
      | udp ->
        if udp.Ipv4.Udp.dst_port = port then
          match decode_msg udp.Ipv4.Udp.data with
          | Some (Answer { mobile; fwd }) ->
            if not (Addr.is_zero fwd) then begin
              Hashtbl.replace st.s_cache mobile fwd;
              let queued =
                Option.value ~default:[]
                  (Hashtbl.find_opt st.s_pending mobile)
              in
              Hashtbl.remove st.s_pending mobile;
              List.iter (fun p -> send_via t ~src:node st fwd p)
                (List.rev queued)
            end
            else Hashtbl.remove st.s_pending mobile
          | Some _ | None -> ());
  Node.set_proto_handler node Ipv4.Proto.icmp (fun _ pkt ->
      match Ipv4.Icmp.decode_opt pkt.Packet.payload with
      | Some (Ipv4.Icmp.Dest_unreachable { original; _ }) ->
        (match Packet.decode_prefix original with
         | Some (qpkt, _) ->
           (* The failed packet was source-routed through a stale
              forwarder: invalidate, re-query, retransmit.  After the
              forwarder advanced the LSRR the mobile host is the IP
              destination; before that it is the final route entry. *)
           let mobile_of =
             if Hashtbl.mem t.mobiles qpkt.Packet.dst then
               Some qpkt.Packet.dst
             else lsrr_final_dst qpkt
           in
           (match mobile_of with
            | Some mobile when Hashtbl.mem t.mobiles mobile ->
              Hashtbl.remove st.s_cache mobile;
              (match Hashtbl.find_opt st.s_last mobile with
               | Some (p, tries) when tries < max_retransmits ->
                 Hashtbl.replace st.s_last mobile (p, tries + 1);
                 Hashtbl.replace st.s_pending mobile
                   (p
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt st.s_pending mobile));
                 query_db t ~src:node mobile
               | _ -> ())
            | _ -> ())
         | None -> ())
      | _ -> ())

let make_mobile t node =
  Node.add_address node (Node.primary_addr node);
  Hashtbl.replace t.mobiles (Node.primary_addr node) ()

let move t mobile_node ~forwarder:fwd lan =
  let mobile = Node.primary_addr mobile_node in
  (* The old forwarder drops its delivery route: packets sent down a stale
     forwarder pointer then die (ARP failure on the home or old network)
     with ICMP host unreachable — IEN 135's signal that the sender must
     consult the database again. *)
  List.iter
    (fun old ->
       if old.f_node != fwd.f_node then
         Node.update_routes old.f_node (fun r ->
             Net.Route.remove_host r mobile))
    t.forwarders;
  Net.Topology.move_host t.topo mobile_node lan;
  (* Connect notification to the forwarder (modelled locally, counted as a
     control message) installs a host route delivering locally. *)
  t.ctrl <- t.ctrl + 1;
  Node.update_routes fwd.f_node (fun r ->
      Net.Route.add_host r mobile (Net.Route.Direct fwd.f_iface));
  (match Node.ifaces mobile_node with
   | (i, l, _) :: _ ->
     Node.set_routes mobile_node
       (Net.Route.add_default
          (Net.Route.add Net.Route.empty (Net.Lan.prefix l)
             (Net.Route.Direct i))
          (Net.Route.Via fwd.f_addr))
   | [] -> ());
  (* Register the new forwarder in the global database. *)
  t.ctrl <- t.ctrl + 1;
  let reg =
    Ipv4.Udp.make ~src_port:port ~dst_port:port
      (encode_msg (Register { mobile; fwd = fwd.f_addr }))
  in
  Node.send mobile_node
    (Packet.make ~proto:Ipv4.Proto.udp ~src:mobile
       ~dst:(Node.primary_addr t.db_node) (Ipv4.Udp.encode reg))

let send t ~src (pkt : Packet.t) =
  if not (Hashtbl.mem t.mobiles pkt.Packet.dst) then Node.send src pkt
  else begin
    if not (Hashtbl.mem t.senders (Node.name src)) then setup_sender t src;
    let st = sender_state t src in
    match Hashtbl.find_opt st.s_cache pkt.Packet.dst with
    | Some fwd -> send_via t ~src st fwd pkt
    | None ->
      let queued =
        Option.value ~default:[] (Hashtbl.find_opt st.s_pending pkt.Packet.dst)
      in
      Hashtbl.replace st.s_pending pkt.Packet.dst (pkt :: queued);
      if queued = [] then query_db t ~src pkt.Packet.dst
  end

let control_messages t = t.ctrl
let db_lookups t = t.lookups
let db_state_bytes t = 8 * Hashtbl.length t.db
