(** Sony's Virtual IP header (Teraoka et al., SIGCOMM '91).

    Every host has a permanent VIP address and a physical IP address; every
    data packet carries a 28-byte VIP header between the IP header and the
    transport header — the overhead the MHRP paper quotes.  The IP header's
    addresses hold the physical addresses used for routing; the VIP header
    holds the permanent identities. *)

val overhead : int
(** 28. *)

type t = {
  vip_src : Ipv4.Addr.t;
  vip_dst : Ipv4.Addr.t;
  hop_count : int;
  timestamp : int;  (** Cache-versioning field of the VIP design. *)
}

val add : t -> Ipv4.Packet.t -> Ipv4.Packet.t
(** Insert the VIP header; the packet's protocol becomes
    {!Ipv4.Proto.vip}. *)

val strip : Ipv4.Packet.t -> (t * Ipv4.Packet.t) option
(** Remove it, restoring the original transport protocol. *)

val peek : Ipv4.Packet.t -> t option
