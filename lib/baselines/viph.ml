let overhead = 28

type t = {
  vip_src : Ipv4.Addr.t;
  vip_dst : Ipv4.Addr.t;
  hop_count : int;
  timestamp : int;
}

let put_u32 buf i v =
  Bytes.set buf i (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set buf (i + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set buf (i + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (i + 3) (Char.chr (v land 0xFF))

let get_u32 buf i =
  (Char.code (Bytes.get buf i) lsl 24)
  lor (Char.code (Bytes.get buf (i + 1)) lsl 16)
  lor (Char.code (Bytes.get buf (i + 2)) lsl 8)
  lor Char.code (Bytes.get buf (i + 3))

(* Layout (28 bytes): orig_proto(1) pad(3) vip_src(4) vip_dst(4)
   hop_count(4) timestamp(4) reserved(8). *)
let add t (pkt : Ipv4.Packet.t) =
  let buf = Bytes.make (overhead + Bytes.length pkt.Ipv4.Packet.payload) '\000' in
  Bytes.set buf 0 (Char.chr pkt.Ipv4.Packet.proto);
  put_u32 buf 4 (Ipv4.Addr.to_int t.vip_src);
  put_u32 buf 8 (Ipv4.Addr.to_int t.vip_dst);
  put_u32 buf 12 t.hop_count;
  put_u32 buf 16 t.timestamp;
  Bytes.blit pkt.Ipv4.Packet.payload 0 buf overhead
    (Bytes.length pkt.Ipv4.Packet.payload);
  { pkt with Ipv4.Packet.proto = Ipv4.Proto.vip; payload = buf }

let peek (pkt : Ipv4.Packet.t) =
  if pkt.Ipv4.Packet.proto <> Ipv4.Proto.vip
     || Bytes.length pkt.Ipv4.Packet.payload < overhead
  then None
  else begin
    let buf = pkt.Ipv4.Packet.payload in
    Some
      { vip_src = Ipv4.Addr.of_int (get_u32 buf 4);
        vip_dst = Ipv4.Addr.of_int (get_u32 buf 8);
        hop_count = get_u32 buf 12;
        timestamp = get_u32 buf 16 }
  end

let strip (pkt : Ipv4.Packet.t) =
  match peek pkt with
  | None -> None
  | Some t ->
    let buf = pkt.Ipv4.Packet.payload in
    let proto = Char.code (Bytes.get buf 0) in
    let transport =
      Bytes.sub buf overhead (Bytes.length buf - overhead)
    in
    Some (t, { pkt with Ipv4.Packet.proto = proto; payload = transport })
