(** The Sunshine-Postel proposal (IEN 135, 1980), the paper's oldest
    comparison point.

    A single {e global database} records each mobile host's current
    forwarder.  Senders query the database, then source-route packets
    through the forwarder (we use the real LSRR option).  When a mobile
    host has moved, the old forwarder answers new packets with ICMP host
    unreachable; the sender must re-query the database and retransmit.

    The MHRP paper's critique (Section 7): the global database limits
    scalability — every sender's cold start and every staleness event is a
    round trip to one central service, whose state grows with the world's
    mobile-host population. *)

type t
type forwarder

val create : Net.Topology.t -> db_node:Net.Node.t -> t
(** [db_node] hosts the global registry. *)

val add_forwarder : t -> Net.Node.t -> lan:Net.Lan.t -> forwarder
val forwarder_node : forwarder -> Net.Node.t

val make_mobile : t -> Net.Node.t -> unit

val move : t -> Net.Node.t -> forwarder:forwarder -> Net.Lan.t -> unit
(** Link-level move plus registration of the new forwarder in the global
    database (and removal from the old forwarder's visitor list). *)

val send : t -> src:Net.Node.t -> Ipv4.Packet.t -> unit
(** Query-then-source-route data path with local forwarder caching and
    unreachable-triggered re-query and retransmission. *)

val control_messages : t -> int
(** Registrations, queries and answers. *)

val db_lookups : t -> int
val db_state_bytes : t -> int
