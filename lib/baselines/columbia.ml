module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module Node = Net.Node

let port = 436

type msg =
  | Who_has of { mobile : Addr.t }
  | Serving of { mobile : Addr.t; msr : Addr.t }

let encode_msg m =
  let buf = Bytes.make 9 '\000' in
  let put i a =
    let v = Addr.to_int a in
    Bytes.set buf i (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set buf (i + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set buf (i + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set buf (i + 3) (Char.chr (v land 0xFF))
  in
  (match m with
   | Who_has { mobile } ->
     Bytes.set buf 0 '\001';
     put 1 mobile
   | Serving { mobile; msr } ->
     Bytes.set buf 0 '\002';
     put 1 mobile;
     put 5 msr);
  buf

let decode_msg buf =
  if Bytes.length buf < 9 then None
  else begin
    let get i =
      Addr.of_int
        ((Char.code (Bytes.get buf i) lsl 24)
         lor (Char.code (Bytes.get buf (i + 1)) lsl 16)
         lor (Char.code (Bytes.get buf (i + 2)) lsl 8)
         lor Char.code (Bytes.get buf (i + 3)))
    in
    match Bytes.get buf 0 with
    | '\001' -> Some (Who_has { mobile = get 1 })
    | '\002' -> Some (Serving { mobile = get 1; msr = get 5 })
    | _ -> None
  end

type msr = {
  m_node : Node.t;
  m_iface : int;  (* cell interface *)
  m_addr : Addr.t;
  visitors : (Addr.t, unit) Hashtbl.t;
  cache : (Addr.t, Addr.t) Hashtbl.t;  (* mobile -> serving MSR *)
  queued : (Addr.t, Packet.t list) Hashtbl.t;
}

type t = {
  topo : Net.Topology.t;
  mutable msrs : msr list;
  homes : (Addr.t, msr) Hashtbl.t;  (* mobile -> home MSR *)
  mutable ctrl : int;
}

let create topo = { topo; msrs = []; homes = Hashtbl.create 16; ctrl = 0 }

let msr_node m = m.m_node

let send_msg t ~from ~dst m =
  t.ctrl <- t.ctrl + 1;
  let udp =
    Ipv4.Udp.make ~src_port:port ~dst_port:port (encode_msg m)
  in
  Node.send from.m_node
    (Packet.make ~proto:Ipv4.Proto.udp ~src:from.m_addr ~dst
       (Ipv4.Udp.encode udp))

(* Ask every other MSR who serves [mobile] — the broadcast/multicast
   dependency the paper criticises.  Each query is one message per peer. *)
let who_has t msr mobile =
  List.iter
    (fun peer ->
       if peer != msr then
         send_msg t ~from:msr ~dst:peer.m_addr (Who_has { mobile }))
    t.msrs

let tunnel_to t msr ~serving_msr (pkt : Packet.t) =
  ignore t;
  Node.forward_now msr.m_node
    (Ipip.encap ~outer_src:msr.m_addr ~outer_dst:serving_msr pkt)

let handle_for_mobile t msr (pkt : Packet.t) =
  let mobile = pkt.Packet.dst in
  if Hashtbl.mem msr.visitors mobile then
    (* direct delivery over the cell through the host route *)
    Node.forward_now msr.m_node pkt
  else
    match Hashtbl.find_opt msr.cache mobile with
    | Some serving_msr when not (Addr.equal serving_msr msr.m_addr) ->
      tunnel_to t msr ~serving_msr pkt
    | _ ->
      let q = Option.value ~default:[] (Hashtbl.find_opt msr.queued mobile)
      in
      Hashtbl.replace msr.queued mobile (pkt :: q);
      if q = [] then who_has t msr mobile

let setup_msr t msr =
  let node = msr.m_node in
  let claims dst =
    (* traffic for our own mobiles (home advertisement) and for current
       visitors *)
    (match Hashtbl.find_opt t.homes dst with
     | Some home -> home == msr
     | None -> false)
    || Hashtbl.mem msr.visitors dst
  in
  Node.set_accept_ip node (fun _ pkt -> claims pkt.Packet.dst);
  (* answer ARP for our own mobiles when they are not on this LAN — the
     link-level half of "advertising reachability" *)
  Node.set_arp_proxy node (fun dst ->
      claims dst && not (Hashtbl.mem msr.visitors dst));
  Node.set_rewrite_forward node (fun _ pkt ->
      let dst = pkt.Packet.dst in
      let is_my_mobile =
        match Hashtbl.find_opt t.homes dst with
        | Some home -> home == msr
        | None -> false
      in
      if (is_my_mobile || Hashtbl.mem msr.visitors dst)
         && pkt.Packet.proto <> Ipv4.Proto.ipip
      then begin
        handle_for_mobile t msr pkt;
        Node.Consume
      end
      else Node.Forward);
  Node.set_proto_handler node Ipv4.Proto.ipip (fun _ pkt ->
      match Ipip.decap pkt with
      | None -> ()
      | Some inner ->
        if Hashtbl.mem msr.visitors inner.Packet.dst then
          Node.forward_now node inner
        else
          (* stale tunnel: find the right MSR and re-tunnel *)
          handle_for_mobile t msr inner);
  (* Packets claimed off the LAN or in transit for a mobile host arrive
     through local delivery whatever their protocol; dispatch them to the
     mobile-host path before looking for MSR control traffic. *)
  let dispatch control _ (pkt : Packet.t) =
    if not (Node.has_address node pkt.Packet.dst) then
      handle_for_mobile t msr pkt
    else control pkt
  in
  Node.set_proto_handler node Ipv4.Proto.tcp (dispatch (fun _ -> ()));
  Node.set_proto_handler node Ipv4.Proto.icmp (dispatch (fun _ -> ()));
  Node.set_proto_handler node Ipv4.Proto.udp
    (dispatch (fun pkt ->
         match Ipv4.Udp.decode pkt.Packet.payload with
         | exception Invalid_argument _ -> ()
         | udp ->
           if udp.Ipv4.Udp.dst_port = port then
             match decode_msg udp.Ipv4.Udp.data with
             | Some (Who_has { mobile }) ->
               if Hashtbl.mem msr.visitors mobile then
                 send_msg t ~from:msr ~dst:pkt.Packet.src
                   (Serving { mobile; msr = msr.m_addr })
             | Some (Serving { mobile; msr = serving }) ->
               Hashtbl.replace msr.cache mobile serving;
               let q =
                 Option.value ~default:[]
                   (Hashtbl.find_opt msr.queued mobile)
               in
               Hashtbl.remove msr.queued mobile;
               List.iter
                 (fun p -> tunnel_to t msr ~serving_msr:serving p)
                 (List.rev q)
             | None -> ()))

let add_msr t node ~cell =
  match Node.iface_to node (Net.Lan.prefix cell) with
  | None -> invalid_arg "Columbia.add_msr: node not on cell"
  | Some i ->
    let addr =
      match Node.iface_addr node i with
      | Some a -> a
      | None -> invalid_arg "Columbia.add_msr: no address on cell"
    in
    let msr =
      { m_node = node; m_iface = i; m_addr = addr;
        visitors = Hashtbl.create 8; cache = Hashtbl.create 16;
        queued = Hashtbl.create 8 }
    in
    t.msrs <- t.msrs @ [msr];
    setup_msr t msr;
    msr

let make_mobile t node ~home =
  Node.add_address node (Node.primary_addr node);
  Hashtbl.replace t.homes (Node.primary_addr node) home

let move t mobile_node ~to_msr =
  let mobile = Node.primary_addr mobile_node in
  (* implicit disconnect from the previous serving MSR *)
  List.iter
    (fun msr ->
       if Hashtbl.mem msr.visitors mobile then begin
         Hashtbl.remove msr.visitors mobile;
         Node.update_routes msr.m_node (fun r ->
             Net.Route.remove_host r mobile)
       end)
    t.msrs;
  Net.Topology.move_host t.topo mobile_node
    (Node.iface_lan to_msr.m_node to_msr.m_iface);
  (* registration with the new MSR (one local message) *)
  t.ctrl <- t.ctrl + 1;
  Hashtbl.replace to_msr.visitors mobile ();
  Hashtbl.replace to_msr.cache mobile to_msr.m_addr;
  Node.update_routes to_msr.m_node (fun r ->
      Net.Route.add_host r mobile (Net.Route.Direct to_msr.m_iface));
  match Node.ifaces mobile_node with
  | (i, l, _) :: _ ->
    Node.set_routes mobile_node
      (Net.Route.add_default
         (Net.Route.add Net.Route.empty (Net.Lan.prefix l)
            (Net.Route.Direct i))
         (Net.Route.Via to_msr.m_addr))
  | [] -> ()

let send t ~src pkt =
  ignore t;
  Node.send src pkt

let control_messages t = t.ctrl

let msr_cache_bytes t =
  List.fold_left
    (fun acc msr -> acc + (8 * Hashtbl.length msr.cache))
    0 t.msrs
