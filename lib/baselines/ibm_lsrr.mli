(** The IBM loose-source-route proposals (Perkins & Rekhter).

    A mobile host registers with a {e base station} on the network it
    visits.  Every packet it sends carries an LSRR option through the base
    station, so the recorded route received by the correspondent names the
    base station; correspondents reverse the recorded route for their
    replies.  Overhead is 8 bytes each way — matching MHRP's forward
    overhead, but paid on {e both} directions, and every optioned packet
    takes the router slow path (experiment E10).

    After a move, correspondents keep sending down the stale reversed
    route until the mobile host happens to send them a fresh packet (or
    the stale base station's unreachable error arrives); initial contact
    reaches the mobile host through a base station on its home network
    that re-source-routes toward the current base station. *)

type t
type base

val create : Net.Topology.t -> t

val add_base : t -> Net.Node.t -> lan:Net.Lan.t -> base
val base_node : base -> Net.Node.t

val make_mobile : t -> Net.Node.t -> home_base:base -> unit

val move : t -> Net.Node.t -> base:base -> unit
(** Attach to the base station's LAN and register (the registration
    travels to the home base station so initial contact keeps working). *)

val send : t -> src:Net.Node.t -> Ipv4.Packet.t -> unit
(** From a mobile host: source-routed out through its base station.  From
    a correspondent: down the reversed recorded route when one is known,
    else via the destination's home base station. *)

val on_receive : t -> Net.Node.t -> (Ipv4.Packet.t -> unit) -> unit
(** Also performs the recorded-route reversal bookkeeping for the node. *)

val control_messages : t -> int

val lsrr_overhead : int
(** 8 bytes: the LSRR option with one address, padded. *)
