let overhead = 40
let shim_length = 20 (* IPTP header; outer IP header supplies the rest *)
let magic = 0x4954 (* "IT" *)

let encap ~outer_src ~outer_dst (pkt : Ipv4.Packet.t) =
  let inner = Ipv4.Packet.encode pkt in
  let shim = Bytes.make shim_length '\000' in
  Bytes.set shim 0 (Char.chr (magic lsr 8));
  Bytes.set shim 1 (Char.chr (magic land 0xFF));
  Bytes.set shim 2 (Char.chr ((Bytes.length inner lsr 8) land 0xFF));
  Bytes.set shim 3 (Char.chr (Bytes.length inner land 0xFF));
  (* remaining 16 bytes: sequence, auth and mode fields of IPTP, unused
     by the simulation *)
  Ipv4.Packet.make ~id:pkt.Ipv4.Packet.id ~proto:Ipv4.Proto.iptp
    ~src:outer_src ~dst:outer_dst
    (Bytes.cat shim inner)

let decap (pkt : Ipv4.Packet.t) =
  if pkt.Ipv4.Packet.proto <> Ipv4.Proto.iptp then None
  else begin
    let payload = pkt.Ipv4.Packet.payload in
    if Bytes.length payload < shim_length then None
    else begin
      let tag =
        (Char.code (Bytes.get payload 0) lsl 8)
        lor Char.code (Bytes.get payload 1)
      in
      let len =
        (Char.code (Bytes.get payload 2) lsl 8)
        lor Char.code (Bytes.get payload 3)
      in
      if tag <> magic || Bytes.length payload < shim_length + len then None
      else
        match Ipv4.Packet.decode (Bytes.sub payload shim_length len) with
        | inner -> Some inner
        | exception Invalid_argument _ -> None
    end
  end
