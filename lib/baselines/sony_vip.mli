(** Sony's Virtual IP protocol (Teraoka et al., SIGCOMM '91).

    Every host has a permanent VIP address and a location-dependent
    physical IP address; {e every} data packet carries a 28-byte VIP
    header ({!Viph}).  Senders and routers cache VIP-to-physical mappings
    snooped from forwarded packets; a packet whose mapping is unknown is
    sent with the physical destination set to the VIP address, reaching
    the home network router, which rewrites it authoritatively.

    On movement the home router {e floods} cache-invalidation messages to
    all routers — one message per router per move, and (per the paper's
    critique) some entries may survive the flood, later causing
    misdelivery and error-driven correction.  [flood_reliability] models
    the imperfect propagation: each router is reached with that
    probability. *)

type t

val create : ?flood_reliability:float -> Net.Topology.t -> t
val add_router : t -> Net.Node.t -> unit

val make_host : t -> Net.Node.t -> home_router:Net.Node.t -> unit
(** VIP = the node's primary address; physical address initially equal. *)

val move :
  t -> Net.Node.t -> lan:Net.Lan.t -> via_router:Net.Node.t ->
  temp:Ipv4.Addr.t -> unit
(** Obtain a new physical (temporary) address on the target network,
    register it with the home router, flood invalidations. *)

val send : t -> src:Net.Node.t -> Ipv4.Packet.t -> unit
(** [pkt.dst] is the destination's VIP. *)

val on_receive : t -> Net.Node.t -> (Ipv4.Packet.t -> unit) -> unit

val control_messages : t -> int
(** Registrations plus flood traffic. *)

val router_cache_bytes : t -> int
val stale_entries : t -> int
(** Cache entries across routers that disagree with the authoritative
    mapping — survivors of imperfect floods. *)
