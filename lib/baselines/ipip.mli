(** The Columbia protocol's IP-within-IP encapsulation (Ioannidis et al.,
    SIGCOMM '91).

    A complete new IP header is prepended plus a 4-byte shim, so each
    tunneled packet carries 24 bytes of overhead — the figure the MHRP
    paper quotes in its Section 7 comparison.  Contrast with MHRP's 8/12
    bytes: the whole original packet (header included) rides inside. *)

val overhead : int
(** 24: a 20-byte outer IP header plus the 4-byte shim. *)

val encap : outer_src:Ipv4.Addr.t -> outer_dst:Ipv4.Addr.t ->
  Ipv4.Packet.t -> Ipv4.Packet.t
(** Wrap the whole original packet (protocol {!Ipv4.Proto.ipip}). *)

val decap : Ipv4.Packet.t -> Ipv4.Packet.t option
(** Unwrap; [None] if not a well-formed IPIP packet. *)

val inner_dst : Ipv4.Packet.t -> Ipv4.Addr.t option
(** Destination of the encapsulated packet, without a full decode. *)
