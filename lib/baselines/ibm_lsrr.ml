module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module Node = Net.Node

let lsrr_overhead = 8

type base = {
  b_node : Node.t;
  b_iface : int;
  b_addr : Addr.t;
}

type mobile = {
  mo_node : Node.t;
  mo_home_base : base;
  mutable mo_base : base;  (* current *)
}

type peer_state = {
  reversed : (Addr.t, Addr.t) Hashtbl.t;  (* peer -> base to route via *)
  p_last : (Addr.t, Packet.t) Hashtbl.t;
  mutable p_receive : Packet.t -> unit;
}

type t = {
  topo : Net.Topology.t;
  mobiles : (Addr.t, mobile) Hashtbl.t;
  current_base : (Addr.t, Addr.t) Hashtbl.t;
      (* mobile -> current base address, known to the home base *)
  peers : (string, peer_state) Hashtbl.t;
  mutable ctrl : int;
}

let create topo =
  { topo; mobiles = Hashtbl.create 16; current_base = Hashtbl.create 16;
    peers = Hashtbl.create 16; ctrl = 0 }

let base_node b = b.b_node

let add_base t node ~lan =
  match Node.iface_to node (Net.Lan.prefix lan) with
  | None -> invalid_arg "Ibm_lsrr.add_base: node not on LAN"
  | Some i ->
    let addr =
      match Node.iface_addr node i with
      | Some a -> a
      | None -> invalid_arg "Ibm_lsrr.add_base: no address"
    in
    let b = { b_node = node; b_iface = i; b_addr = addr } in
    (* The home base re-source-routes intercepted packets toward the
       mobile host's current base station. *)
    let claims dst =
      match Hashtbl.find_opt t.mobiles dst with
      | Some m -> m.mo_home_base.b_node == node
      | None -> false
    in
    Node.set_accept_ip node (fun _ pkt -> claims pkt.Packet.dst);
    (* answer ARP on the home LAN for mobiles that have moved away *)
    Node.set_arp_proxy node (fun dst ->
        claims dst
        && (match Hashtbl.find_opt t.current_base dst with
            | Some cur -> not (Addr.equal cur b.b_addr)
            | None -> false));
    Node.set_rewrite_forward node (fun _ pkt ->
        match Hashtbl.find_opt t.mobiles pkt.Packet.dst with
        | Some m
          when m.mo_home_base.b_node == node
            && pkt.Packet.options = [] ->
          (match Hashtbl.find_opt t.current_base pkt.Packet.dst with
           | Some cur when not (Addr.equal cur b.b_addr) ->
             Node.Replace
               { pkt with
                 Packet.dst = cur;
                 options = [Ipv4.Ip_option.lsrr [pkt.Packet.dst]] }
           | _ -> Node.Forward)
        | _ -> Node.Forward);
    (* Same path for packets claimed off the local LAN. *)
    Node.set_proto_handler node Ipv4.Proto.udp (fun _ pkt ->
        if not (Node.has_address node pkt.Packet.dst) then
          match Hashtbl.find_opt t.current_base pkt.Packet.dst with
          | Some cur ->
            Node.forward_now node
              { pkt with
                Packet.dst = cur;
                options = [Ipv4.Ip_option.lsrr [pkt.Packet.dst]] }
          | None -> ());
    b

let make_mobile t node ~home_base =
  Node.add_address node (Node.primary_addr node);
  Hashtbl.replace t.mobiles (Node.primary_addr node)
    { mo_node = node; mo_home_base = home_base; mo_base = home_base };
  Hashtbl.replace t.current_base (Node.primary_addr node)
    home_base.b_addr

let move t node ~base =
  let mobile = Node.primary_addr node in
  match Hashtbl.find_opt t.mobiles mobile with
  | None -> invalid_arg "Ibm_lsrr.move: not a mobile host"
  | Some m ->
    (* The old base keeps its (now dangling) host route: packets sent down
       stale reversed routes die there with host-unreachable, which is the
       staleness behaviour the paper describes. *)
    m.mo_base <- base;
    Net.Topology.move_host t.topo node
      (Node.iface_lan base.b_node base.b_iface);
    Node.update_routes base.b_node (fun r ->
        Net.Route.add_host r mobile (Net.Route.Direct base.b_iface));
    (match Node.ifaces node with
     | (i, l, _) :: _ ->
       Node.set_routes node
         (Net.Route.add_default
            (Net.Route.add Net.Route.empty (Net.Lan.prefix l)
               (Net.Route.Direct i))
            (Net.Route.Via base.b_addr))
     | [] -> ());
    (* Registration travels to the home base station. *)
    t.ctrl <- t.ctrl + 1;
    Hashtbl.replace t.current_base mobile base.b_addr

let lsrr_final_dst (pkt : Packet.t) =
  List.find_map
    (fun o ->
       match o with
       | Ipv4.Ip_option.Lsrr { route; _ } when Array.length route > 0 ->
         Some route.(Array.length route - 1)
       | _ -> None)
    pkt.Packet.options

let peer_state t node =
  match Hashtbl.find_opt t.peers (Node.name node) with
  | Some st -> st
  | None ->
    let st =
      { reversed = Hashtbl.create 8; p_last = Hashtbl.create 8;
        p_receive = (fun _ -> ()) }
    in
    Hashtbl.replace t.peers (Node.name node) st;
    let learn_and_deliver _ (pkt : Packet.t) =
      (* An exhausted LSRR's recorded route names the base station the
         packet came through: save the reversal for replies. *)
      (match pkt.Packet.options with
       | [Ipv4.Ip_option.Lsrr { route; _ }] when Array.length route > 0 ->
         Hashtbl.replace st.reversed pkt.Packet.src
           route.(Array.length route - 1)
       | _ -> ());
      st.p_receive { pkt with Packet.options = [] }
    in
    Node.set_proto_handler node Ipv4.Proto.udp learn_and_deliver;
    Node.set_proto_handler node Ipv4.Proto.tcp learn_and_deliver;
    Node.set_proto_handler node Ipv4.Proto.icmp (fun _ pkt ->
        match Ipv4.Icmp.decode_opt pkt.Packet.payload with
        | Some (Ipv4.Icmp.Dest_unreachable { original; _ }) ->
          (match Packet.decode_prefix original with
           | Some (qpkt, _) ->
             (* after the base advanced the LSRR the mobile host is the IP
                destination; before that it is the final route entry *)
             let final =
               if Hashtbl.mem t.mobiles qpkt.Packet.dst then
                 Some qpkt.Packet.dst
               else lsrr_final_dst qpkt
             in
             (match final with
              | Some final when Hashtbl.mem t.mobiles final ->
                (* stale reversed route: forget it, retransmit via the
                   home base station *)
                Hashtbl.remove st.reversed final;
                (match Hashtbl.find_opt st.p_last final with
                 | Some p ->
                   Hashtbl.remove st.p_last final;
                   Node.send node p
                 | None -> ())
              | _ -> ())
           | None -> ())
        | _ -> ());
    st

let on_receive t node f =
  let st = peer_state t node in
  st.p_receive <- f

let send t ~src (pkt : Packet.t) =
  let dst = pkt.Packet.dst in
  match Hashtbl.find_opt t.mobiles (Node.primary_addr src) with
  | Some m ->
    (* From a mobile host: out through the current base station so the
       recorded route lets the correspondent reply. *)
    Node.send src
      { pkt with
        Packet.dst = m.mo_base.b_addr;
        options = [Ipv4.Ip_option.lsrr [dst]] }
  | None ->
    let st = peer_state t src in
    if Hashtbl.mem t.mobiles dst then begin
      Hashtbl.replace st.p_last dst pkt;
      match Hashtbl.find_opt st.reversed dst with
      | Some base_addr ->
        Node.send src
          { pkt with
            Packet.dst = base_addr;
            options = [Ipv4.Ip_option.lsrr [dst]] }
      | None -> Node.send src pkt (* via the home network / home base *)
    end
    else Node.send src pkt

let control_messages t = t.ctrl
