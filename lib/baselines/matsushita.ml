module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module Node = Net.Node

let port = 437

type mode = Forwarding | Autonomous

type mobile = {
  mo_node : Node.t;
  home : Addr.t;
  mutable temp : Addr.t;  (** zero while at home *)
  mutable mo_receive : Packet.t -> unit;
}

type sender_state = {
  s_cache : (Addr.t, Addr.t) Hashtbl.t;  (* mobile -> temp *)
  s_last : (Addr.t, Packet.t) Hashtbl.t;
}

type t = {
  topo : Net.Topology.t;
  md : mode;
  mobiles : (Addr.t, mobile) Hashtbl.t;
  pfs_of : (Addr.t, Node.t) Hashtbl.t;
  senders : (string, sender_state) Hashtbl.t;
  mutable ctrl : int;
}

let create topo md =
  { topo; md; mobiles = Hashtbl.create 16; pfs_of = Hashtbl.create 16;
    senders = Hashtbl.create 16; ctrl = 0 }

let mode t = t.md

(* Binding notice: mobile(4) temp(4), sent PFS -> sender in autonomous
   mode so the sender can tunnel directly. *)
let encode_notice ~mobile ~temp =
  let buf = Bytes.make 8 '\000' in
  let put i a =
    let v = Addr.to_int a in
    Bytes.set buf i (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set buf (i + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set buf (i + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set buf (i + 3) (Char.chr (v land 0xFF))
  in
  put 0 mobile;
  put 4 temp;
  buf

let decode_notice buf =
  if Bytes.length buf < 8 then None
  else begin
    let get i =
      Addr.of_int
        ((Char.code (Bytes.get buf i) lsl 24)
         lor (Char.code (Bytes.get buf (i + 1)) lsl 16)
         lor (Char.code (Bytes.get buf (i + 2)) lsl 8)
         lor Char.code (Bytes.get buf (i + 3)))
    in
    Some (get 0, get 4)
  end

let pfs_tunnel t pfs_node (pkt : Packet.t) =
  match Hashtbl.find_opt t.mobiles pkt.Packet.dst with
  | Some m when not (Addr.is_zero m.temp) ->
    Node.forward_now pfs_node
      (Iptp.encap ~outer_src:(Node.primary_addr pfs_node)
         ~outer_dst:m.temp pkt);
    if t.md = Autonomous then begin
      (* tell the sender where to tunnel next time *)
      t.ctrl <- t.ctrl + 1;
      let udp =
        Ipv4.Udp.make ~src_port:port ~dst_port:port
          (encode_notice ~mobile:pkt.Packet.dst ~temp:m.temp)
      in
      Node.send pfs_node
        (Packet.make ~proto:Ipv4.Proto.udp
           ~src:(Node.primary_addr pfs_node) ~dst:pkt.Packet.src
           (Ipv4.Udp.encode udp))
    end
  | Some _ -> Node.forward_now pfs_node pkt (* at home: pass through *)
  | None -> Node.forward_now pfs_node pkt

let add_pfs t node =
  let claims dst =
    match Hashtbl.find_opt t.pfs_of dst with
    | Some pfs ->
      pfs == node
      && (match Hashtbl.find_opt t.mobiles dst with
          | Some m -> not (Addr.is_zero m.temp)
          | None -> false)
    | None -> false
  in
  Node.set_accept_ip node (fun _ pkt -> claims pkt.Packet.dst);
  Node.set_arp_proxy node claims;
  (* Claimed packets arrive by local delivery whatever their protocol. *)
  let dispatch _ (pkt : Packet.t) =
    if claims pkt.Packet.dst && pkt.Packet.proto <> Ipv4.Proto.iptp then
      pfs_tunnel t node pkt
  in
  Node.set_proto_handler node Ipv4.Proto.udp dispatch;
  Node.set_proto_handler node Ipv4.Proto.tcp dispatch;
  Node.set_proto_handler node Ipv4.Proto.icmp dispatch;
  Node.set_rewrite_forward node (fun _ pkt ->
      if claims pkt.Packet.dst && pkt.Packet.proto <> Ipv4.Proto.iptp
      then begin
        pfs_tunnel t node pkt;
        Node.Consume
      end
      else Node.Forward)

let setup_mobile m =
  Node.set_proto_handler m.mo_node Ipv4.Proto.iptp (fun _ pkt ->
      match Iptp.decap pkt with
      | Some inner when Addr.equal inner.Packet.dst m.home ->
        m.mo_receive inner
      | Some _ | None -> ())

let make_mobile t node ~pfs =
  let home = Node.primary_addr node in
  Node.add_address node home;
  let m =
    { mo_node = node; home; temp = Addr.zero; mo_receive = (fun _ -> ()) }
  in
  Hashtbl.replace t.mobiles home m;
  Hashtbl.replace t.pfs_of home pfs;
  setup_mobile m

let on_receive t node f =
  match Hashtbl.find_opt t.mobiles (Node.primary_addr node) with
  | Some m -> m.mo_receive <- f
  | None -> invalid_arg "Matsushita.on_receive: not a mobile host"

let move t node ~lan ~via_router ~temp =
  let home = Node.primary_addr node in
  match Hashtbl.find_opt t.mobiles home with
  | None -> invalid_arg "Matsushita.move: not a mobile host"
  | Some m ->
    let returning = Ipv4.Addr.Prefix.mem home (Net.Lan.prefix lan) in
    if (not returning)
       && not (Ipv4.Addr.Prefix.mem temp (Net.Lan.prefix lan))
    then invalid_arg "Matsushita.move: temp address not in LAN prefix";
    if not (Addr.is_zero m.temp) then Node.remove_address node m.temp;
    Net.Topology.move_host t.topo node lan;
    m.temp <- (if returning then Addr.zero else temp);
    if not returning then Node.add_address node temp;
    (match Node.ifaces node with
     | (i, l, _) :: _ ->
       let gw =
         match Node.iface_to via_router (Net.Lan.prefix l) with
         | Some ri -> Node.iface_addr via_router ri
         | None -> None
       in
       (match gw with
        | Some g ->
          Node.set_routes node
            (Net.Route.add_default
               (Net.Route.add Net.Route.empty (Net.Lan.prefix l)
                  (Net.Route.Direct i))
               (Net.Route.Via g))
        | None -> ())
     | [] -> ());
    (* registration with the PFS *)
    t.ctrl <- t.ctrl + 1

let sender_state t node =
  match Hashtbl.find_opt t.senders (Node.name node) with
  | Some st -> st
  | None ->
    let st = { s_cache = Hashtbl.create 8; s_last = Hashtbl.create 8 } in
    Hashtbl.replace t.senders (Node.name node) st;
    Node.set_proto_handler node Ipv4.Proto.udp (fun _ pkt ->
        match Ipv4.Udp.decode pkt.Packet.payload with
        | exception Invalid_argument _ -> ()
        | udp ->
          if udp.Ipv4.Udp.dst_port = port then
            match decode_notice udp.Ipv4.Udp.data with
            | Some (mobile, temp) ->
              if Addr.is_zero temp then Hashtbl.remove st.s_cache mobile
              else Hashtbl.replace st.s_cache mobile temp
            | None -> ());
    Node.set_proto_handler node Ipv4.Proto.icmp (fun _ pkt ->
        (* stale direct tunnel: fall back to the PFS path *)
        match Ipv4.Icmp.decode_opt pkt.Packet.payload with
        | Some (Ipv4.Icmp.Dest_unreachable { original; _ }) ->
          (match Packet.decode_prefix original with
           | Some (qpkt, _) when qpkt.Packet.proto = Ipv4.Proto.iptp ->
             let stale =
               Hashtbl.fold
                 (fun mobile temp acc ->
                    if Addr.equal temp qpkt.Packet.dst then mobile :: acc
                    else acc)
                 st.s_cache []
             in
             List.iter
               (fun mobile ->
                  Hashtbl.remove st.s_cache mobile;
                  match Hashtbl.find_opt st.s_last mobile with
                  | Some p ->
                    Hashtbl.remove st.s_last mobile;
                    Node.send node p
                  | None -> ())
               stale
           | _ -> ())
        | _ -> ());
    st

let send t ~src (pkt : Packet.t) =
  if not (Hashtbl.mem t.mobiles pkt.Packet.dst) then Node.send src pkt
  else begin
    let st = sender_state t src in
    Hashtbl.replace st.s_last pkt.Packet.dst pkt;
    match t.md with
    | Forwarding -> Node.send src pkt
    | Autonomous ->
      match Hashtbl.find_opt st.s_cache pkt.Packet.dst with
      | Some temp ->
        Node.send src
          (Iptp.encap ~outer_src:(Node.primary_addr src) ~outer_dst:temp
             pkt)
      | None -> Node.send src pkt
  end

let control_messages t = t.ctrl
