(** The Columbia protocol (Ioannidis, Duchamp, Maguire, SIGCOMM '91).

    Mobile Support Routers (MSRs) tunnel packets to each other with
    IP-within-IP (24 bytes of overhead, {!Ipip}).  A mobile host's home
    MSRs advertise reachability to it wherever it is, so every packet from
    outside the campus first travels to the home MSR — no route
    optimisation outside the home campus.  When an MSR must deliver to a
    mobile host whose serving MSR it does not have cached, it multicasts a
    WHO-HAS query among all MSRs — the broadcast dependency the MHRP paper
    cites against the design's scalability (Section 7). *)

type t
type msr

val create : Net.Topology.t -> t

val add_msr : t -> Net.Node.t -> cell:Net.Lan.t -> msr
(** The node becomes an MSR serving the given wireless cell. *)

val msr_node : msr -> Net.Node.t

val make_mobile : t -> Net.Node.t -> home:msr -> unit
(** Register a mobile host; its home MSR advertises (intercepts) its
    address permanently. *)

val move : t -> Net.Node.t -> to_msr:msr -> unit
(** Attach the mobile host to the target MSR's cell and register there.
    Other MSRs' caches go stale and are refreshed by WHO-HAS queries. *)

val send : t -> src:Net.Node.t -> Ipv4.Packet.t -> unit
(** Plain IP send: interception at the home MSR does the rest. *)

val control_messages : t -> int
(** Registrations plus WHO-HAS queries and replies (a query costs one
    message per other MSR, as a multicast does). *)

val msr_cache_bytes : t -> int
(** Total location state cached across MSRs. *)
