(** Matsushita's Internet Packet Transmission Protocol (Wada et al.).

    Tunneling adds a complete new IP header plus a separate 20-byte IPTP
    header — 40 bytes per packet, the figure the MHRP paper quotes. *)

val overhead : int
(** 40. *)

val encap : outer_src:Ipv4.Addr.t -> outer_dst:Ipv4.Addr.t ->
  Ipv4.Packet.t -> Ipv4.Packet.t
(** Protocol {!Ipv4.Proto.iptp}; the entire original packet rides behind
    the IPTP header. *)

val decap : Ipv4.Packet.t -> Ipv4.Packet.t option
