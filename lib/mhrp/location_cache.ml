(* Backed by a compact int-keyed table ({!Ipv4.Int_table}): the key is
   the packed mobile address, the value packs the foreign agent into the
   low 32 bits and the LRU tick into the bits above.  A cache entry is
   two unboxed words instead of a boxed record behind a generic
   [Hashtbl] bucket — the difference between ~21 and ~150 bytes per
   tracked mobile host at million-host scale (E19).

   Ticks are unique (monotonically increasing, one per touch), so the
   LRU victim and the [entries] order are fully determined by the
   operation history — the re-backing is observationally identical to
   the boxed representation. *)

type t = {
  capacity : int;
  tbl : Ipv4.Int_table.t;  (* packed mobile -> (used lsl 32) lor fa *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let fa_of v = v land 0xFFFF_FFFF
let used_of v = v lsr 32
let pack ~used ~fa = (used lsl 32) lor fa

(* 30 tick bits fit above the 32 address bits in a 63-bit int.  On the
   (never yet reached) rollover, rank-compress the ticks: relative
   recency — the only thing LRU reads — is preserved exactly. *)
let max_tick = (1 lsl 30) - 1

let create ~capacity =
  if capacity <= 0 then invalid_arg "Location_cache.create: capacity";
  { capacity;
    tbl = Ipv4.Int_table.create ~capacity:(min capacity 4096) ();
    tick = 0; hits = 0; misses = 0; evictions = 0 }

let capacity t = t.capacity
let size t = Ipv4.Int_table.length t.tbl

let renormalize t =
  let pairs = Ipv4.Int_table.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
  let pairs =
    List.sort (fun (_, a) (_, b) -> Int.compare (used_of a) (used_of b)) pairs
  in
  List.iteri
    (fun i (k, v) ->
       Ipv4.Int_table.replace t.tbl k (pack ~used:(i + 1) ~fa:(fa_of v)))
    pairs;
  t.tick <- List.length pairs

let next_tick t =
  if t.tick >= max_tick then renormalize t;
  t.tick <- t.tick + 1;
  t.tick

let find t mobile =
  let k = Ipv4.Addr.to_key mobile in
  match Ipv4.Int_table.find t.tbl k ~default:(-1) with
  | -1 ->
    t.misses <- t.misses + 1;
    None
  | v ->
    Ipv4.Int_table.replace t.tbl k (pack ~used:(next_tick t) ~fa:(fa_of v));
    t.hits <- t.hits + 1;
    Some (Ipv4.Addr.of_key (fa_of v))

let peek t mobile =
  match Ipv4.Int_table.find t.tbl (Ipv4.Addr.to_key mobile) ~default:(-1) with
  | -1 -> None
  | v -> Some (Ipv4.Addr.of_key (fa_of v))

let evict_lru t =
  let victim = ref (-1) and victim_used = ref max_int in
  Ipv4.Int_table.iter
    (fun k v ->
       let used = used_of v in
       if used < !victim_used then begin
         victim := k;
         victim_used := used
       end)
    t.tbl;
  if !victim >= 0 then begin
    Ipv4.Int_table.remove t.tbl !victim;
    t.evictions <- t.evictions + 1
  end

let insert t ~mobile ~foreign_agent =
  if Ipv4.Addr.is_zero foreign_agent then
    invalid_arg "Location_cache.insert: zero foreign agent (use delete)";
  let k = Ipv4.Addr.to_key mobile in
  if
    (not (Ipv4.Int_table.mem t.tbl k))
    && Ipv4.Int_table.length t.tbl >= t.capacity
  then evict_lru t;
  Ipv4.Int_table.replace t.tbl k
    (pack ~used:(next_tick t) ~fa:(Ipv4.Addr.to_key foreign_agent))

let delete t mobile = Ipv4.Int_table.remove t.tbl (Ipv4.Addr.to_key mobile)

let update t ~mobile ~foreign_agent =
  if Ipv4.Addr.is_zero foreign_agent then delete t mobile
  else insert t ~mobile ~foreign_agent

let clear t = Ipv4.Int_table.reset t.tbl

let entries t =
  Ipv4.Int_table.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare (used_of b) (used_of a))
  |> List.map (fun (k, v) ->
      (Ipv4.Addr.of_key k, Ipv4.Addr.of_key (fa_of v)))

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let state_bytes t = 16 * Ipv4.Int_table.length t.tbl
let footprint_bytes t = Ipv4.Int_table.footprint_bytes t.tbl
