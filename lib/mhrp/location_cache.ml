type entry = {
  foreign_agent : Ipv4.Addr.t;
  mutable used : int;
}

type t = {
  capacity : int;
  tbl : (Ipv4.Addr.t, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Location_cache.create: capacity";
  { capacity; tbl = Hashtbl.create capacity; tick = 0; hits = 0;
    misses = 0; evictions = 0 }

let capacity t = t.capacity
let size t = Hashtbl.length t.tbl

let touch t e =
  t.tick <- t.tick + 1;
  e.used <- t.tick

let find t mobile =
  match Hashtbl.find_opt t.tbl mobile with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Some e.foreign_agent
  | None ->
    t.misses <- t.misses + 1;
    None

let peek t mobile =
  Option.map (fun e -> e.foreign_agent) (Hashtbl.find_opt t.tbl mobile)

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun mobile e ->
       match !victim with
       | None -> victim := Some (mobile, e.used)
       | Some (_, used) -> if e.used < used then victim := Some (mobile, e.used))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (mobile, _) ->
    Hashtbl.remove t.tbl mobile;
    t.evictions <- t.evictions + 1

let insert t ~mobile ~foreign_agent =
  if Ipv4.Addr.is_zero foreign_agent then
    invalid_arg "Location_cache.insert: zero foreign agent (use delete)";
  match Hashtbl.find_opt t.tbl mobile with
  | Some _ ->
    Hashtbl.remove t.tbl mobile;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.tbl mobile { foreign_agent; used = t.tick }
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.tbl mobile { foreign_agent; used = t.tick }

let delete t mobile = Hashtbl.remove t.tbl mobile

let update t ~mobile ~foreign_agent =
  if Ipv4.Addr.is_zero foreign_agent then delete t mobile
  else insert t ~mobile ~foreign_agent

let clear t = Hashtbl.reset t.tbl

let entries t =
  Hashtbl.fold (fun mobile e acc -> (mobile, e) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b.used a.used)
  |> List.map (fun (mobile, e) -> (mobile, e.foreign_agent))

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let state_bytes t = 16 * Hashtbl.length t.tbl
