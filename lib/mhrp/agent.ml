module Time = Netsim.Time
module Engine = Netsim.Engine
module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module Node = Net.Node

(* The all-ones address marks "explicitly disconnected" in the home-agent
   database — a state Section 3 needs but whose encoding the paper leaves
   open (zero is taken: it means "at home"). *)
let disconnected_marker = Addr.broadcast

type t = {
  node : Node.t;
  config : Config.t;
  counters : Counters.t;
  cache : Location_cache.t;
  limiter : Rate_limiter.t;
  sa : Auth.Sa_table.t;
  mutable auth_nonce : int;
  cache_agent : bool;
  snoop : bool;
  mutable ha : Home_agent.t option;
  mutable fa : (Foreign_agent.t * int) option;  (* state, serving iface *)
  mutable mh : Mobile_host.t option;
  mutable regional : Regional.t option;  (* Config.hierarchy *)
  mutable regional_parent : Addr.t option;  (* FA role: my regional agent *)
  mutable regional_backup_parent : Addr.t option;
      (* FA role: standby regional agent advertised at connect time *)
  mutable region_sync_peer : Addr.t option;
      (* regional role: backup to mirror binding writes to *)
  mutable region_peer_captured : bool;
      (* regional role: we captured an unresponsive peer's address *)
  rsync_seq : (int, int) Hashtbl.t;
      (* packed mobile -> newest Region_sync generation sent *)
  rsync_acked : (int, int) Hashtbl.t;
      (* packed mobile -> highest generation the backup confirmed *)
  fa_miss_probes : (int, unit) Hashtbl.t;
      (* packed mobile -> visitor-miss ARP probe in flight *)
  mutable regional_sweep_timer : bool;
  mutable app_tap : Packet.t -> unit;
  mutable update_tap : mobile:Addr.t -> foreign_agent:Addr.t -> unit;
  mutable registered_tap : Addr.t -> unit;
  mutable registration_tap : mobile:Addr.t -> foreign_agent:Addr.t -> unit;
  mutable icmp_error_tap : Ipv4.Icmp.t -> Packet.t option -> unit;
  mutable ha_sync_ack_tap : peer:Addr.t -> mobile:Addr.t -> unit;
  mutable advert_timer : bool;
}

let node t = t.node
let config t = t.config
let counters t = t.counters
let cache t = t.cache
let limiter t = t.limiter
let address t = Node.primary_addr t.node
let home_agent t = t.ha
let foreign_agent t = Option.map fst t.fa
let mobile t = t.mh
let regional_agent t = t.regional
let regional_parent t = t.regional_parent

let on_app_receive t f = t.app_tap <- f
let on_location_update t f = t.update_tap <- f
let on_registered t f = t.registered_tap <- f
let on_registration t f = t.registration_tap <- f
let on_icmp_error t f = t.icmp_error_tap <- f
let on_ha_sync_ack t f = t.ha_sync_ack_tap <- f

let engine t = Node.engine t.node
let now t = Engine.now (engine t)

let tracef t kind fmt =
  Format.kasprintf
    (fun detail ->
       match Node.trace t.node with
       | None -> ()
       | Some tr ->
         Netsim.Trace.emit tr ~at:(now t) ~node:(Node.name t.node) ~kind
           detail)
    fmt

(* --- authentication (RFC 2002-style extension; experiment E15) --- *)

let sa_table t = t.sa

let install_key t ~mobile ~spi ~key =
  Auth.Sa_table.install t.sa ~mobile ~spi ~key

let next_nonce t =
  t.auth_nonce <- t.auth_nonce + 1;
  (* Unique across all senders without coordination: own address in the
     high half, a local counter in the low half. *)
  Int64.logor
    (Int64.shift_left (Int64.of_int (Addr.to_int (address t))) 32)
    (Int64.of_int (t.auth_nonce land 0xFFFF_FFFF))

let auth_ext t ~mobile payload =
  if not t.config.Config.authenticate then None
  else
    match Auth.Sa_table.find t.sa mobile with
    | None -> None
    | Some sa ->
      Some
        (Auth.Extension.encode
           (Auth.Extension.sign ~key:sa.Auth.Sa_table.key
              ~spi:sa.Auth.Sa_table.spi ~timestamp:(now t)
              ~nonce:(next_nonce t) payload))

let auth_append t ~mobile payload =
  match auth_ext t ~mobile payload with
  | None -> payload
  | Some ext -> Bytes.cat payload ext

(* Gate a state mutation on the extension at the tail of [wire], which
   must authenticate [canonical] — the message's canonical re-encoding,
   not the wire prefix, so a checksum covering the extension can never
   enter its own MAC.  [kind] tags the rejection trace event. *)
let authorize t ~mobile ~src ~wire ~canonical ~kind =
  if not t.config.Config.authenticate then true
  else begin
    let verdict =
      match Auth.Extension.split wire with
      | None -> None
      | Some (_, ext) ->
        Some
          (Auth.Sa_table.verify t.sa ~mobile ~now:(now t)
             ~payload:canonical ext)
    in
    match verdict with
    | Some Auth.Sa_table.Ok ->
      t.counters.Counters.auth_ok <- t.counters.Counters.auth_ok + 1;
      true
    | Some ((Auth.Sa_table.Stale | Auth.Sa_table.Replayed) as v) ->
      t.counters.Counters.replay_drop <-
        t.counters.Counters.replay_drop + 1;
      tracef t kind "replay of message about %a from %a (%a)" Addr.pp
        mobile Addr.pp src Auth.Sa_table.pp_verdict v;
      false
    | Some v ->
      t.counters.Counters.auth_fail <- t.counters.Counters.auth_fail + 1;
      tracef t kind "rejected message about %a from %a (%a)" Addr.pp
        mobile Addr.pp src Auth.Sa_table.pp_verdict v;
      false
    | None ->
      t.counters.Counters.auth_fail <- t.counters.Counters.auth_fail + 1;
      tracef t kind "unauthenticated message about %a from %a" Addr.pp
        mobile Addr.pp src;
      false
  end

(* --- home-agent database shorthands --- *)

let ha_location t mobile =
  match t.ha with
  | Some ha -> Home_agent.location ha mobile
  | None -> None

let ha_claims t dst =
  (* Should this node capture packets addressed to [dst]?  Yes while the
     mobile host it serves is away or explicitly disconnected. *)
  match ha_location t dst with
  | Some fa -> not (Addr.is_zero fa)
  | None -> false

(* A regional agent that captured its crashed mirror peer's address
   answers for it until the peer is heard from again. *)
let region_peer_claims t dst =
  t.region_peer_captured
  && (match t.region_sync_peer with
      | Some peer -> Addr.equal peer dst
      | None -> false)

let claims t dst = ha_claims t dst || region_peer_claims t dst

(* --- location updates (Section 4.3) --- *)

let send_location_update t ~dst ~mobile ~foreign_agent =
  if (not (Node.has_address t.node dst)) && not (Addr.is_zero dst) then
    if Rate_limiter.allow t.limiter ~now:(now t) dst then begin
      t.counters.Counters.updates_sent <-
        t.counters.Counters.updates_sent + 1;
      t.counters.Counters.control_messages <-
        t.counters.Counters.control_messages + 1;
      tracef t "loc-update-tx" "to %a: %a at %a" Addr.pp dst Addr.pp mobile
        Addr.pp foreign_agent;
      let msg = Ipv4.Icmp.Location_update { mobile; foreign_agent } in
      (* The MAC covers the extension-free encoding; the wire carries
         message + extension under one checksum. *)
      let ext = auth_ext t ~mobile (Ipv4.Icmp.encode msg) in
      let pkt =
        Packet.make ~proto:Ipv4.Proto.icmp ~src:(address t) ~dst
          (Ipv4.Icmp.encode ?ext msg)
      in
      Node.send t.node pkt
    end

let cache_update t ~mobile ~foreign_agent =
  if t.cache_agent && not (Node.has_address t.node mobile) then begin
    (* Never cache an alias of this very node as the foreign agent for
       itself; everything else is fair game. *)
    Location_cache.update t.cache ~mobile ~foreign_agent;
    tracef t "cache" "%a -> %a" Addr.pp mobile Addr.pp foreign_agent
  end

(* --- control-message plumbing --- *)

let control_datagram t msg =
  Ipv4.Udp.encode
    (Ipv4.Udp.make ~src_port:Control.port ~dst_port:Control.port
       (auth_append t ~mobile:(Control.mobile msg) (Control.encode msg)))

let send_control t ~dst msg =
  t.counters.Counters.control_messages <-
    t.counters.Counters.control_messages + 1;
  tracef t "ctrl-tx" "to %a: %a" Addr.pp dst Control.pp msg;
  let pkt =
    Packet.make ~proto:Ipv4.Proto.udp ~src:(address t) ~dst
      (control_datagram t msg)
  in
  Node.send t.node pkt

(* Ack + timeout + exponential-backoff retransmission for unicast control
   exchanges ([Config.reliable_control]): without it a single lost
   registration or connect notification strands the mobile host (the
   implicit-disconnection watchdog only re-solicits from a settled phase,
   never from mid-registration).  [still_pending] decides at each firing
   whether the exchange is still live — an ack, a superseding exchange or
   a phase change all cancel the loop without bookkeeping. *)
let arm_control_retry t ~still_pending ~resend ~give_up =
  if t.config.Config.reliable_control then begin
    let rec arm ~delay ~retries_left =
      ignore
        (Engine.schedule_after (engine t) ~delay (fun () ->
             if Node.is_up t.node && still_pending () then
               if retries_left <= 0 then begin
                 t.counters.Counters.retransmit_gave_up <-
                   t.counters.Counters.retransmit_gave_up + 1;
                 tracef t "ctrl-give-up" "control exchange abandoned";
                 give_up ()
               end
               else begin
                 resend ();
                 arm ~delay:(Time.add delay delay)
                   ~retries_left:(retries_left - 1)
               end))
    in
    arm ~delay:t.config.Config.control_rto
      ~retries_left:t.config.Config.control_retries
  end

(* --- hierarchy soft-state parameters ([Config.regional_lifetime]) --- *)

(* The lifetime a registration advertises on the wire (u16 seconds; 0 =
   hard state). *)
let regional_lifetime_s t =
  let lt = t.config.Config.regional_lifetime in
  if Time.to_us lt = 0 then 0
  else max 1 (int_of_float (ceil (Time.to_sec lt)))

(* How often a registered mobile refreshes its regional binding:
   [Config.regional_refresh], or a third of the lifetime (the
   3-refreshes-per-lifetime convention of agent advertisements). *)
let regional_refresh_interval t =
  let r = t.config.Config.regional_refresh in
  if Time.to_us r > 0 then r
  else Time.of_us (max 1 (Time.to_us t.config.Config.regional_lifetime / 3))

let regional_expiry t ~lifetime_s =
  if lifetime_s > 0 then
    Some (Time.add (now t) (Time.of_sec (float_of_int lifetime_s)))
  else None

(* --- cache-aware application sending (Sections 4.1, 6.2) --- *)

let send t (pkt : Packet.t) =
  let dst = pkt.Packet.dst in
  match ha_location t dst with
  | Some fa when not (Addr.is_zero fa) && not (Addr.equal fa disconnected_marker) ->
    (* Authoritative: we are this destination's home agent. *)
    t.counters.Counters.tunnels_built <-
      t.counters.Counters.tunnels_built + 1;
    Node.send t.node (Encap.tunnel_by_sender ~foreign_agent:fa pkt)
  | _ ->
    let cached =
      if t.cache_agent then Location_cache.find t.cache dst else None
    in
    match cached with
    | Some fa ->
      t.counters.Counters.tunnels_built <-
        t.counters.Counters.tunnels_built + 1;
      tracef t "tunnel" "sender-built for %a via %a" Addr.pp dst Addr.pp fa;
      Node.send t.node (Encap.tunnel_by_sender ~foreign_agent:fa pkt)
    | None -> Node.send t.node pkt

let send_udp t ?(src_port = 4000) ?(dst_port = 4000) ?(id = 0) ~dst data =
  let udp = Ipv4.Udp.make ~src_port ~dst_port data in
  send t
    (Packet.make ~id ~proto:Ipv4.Proto.udp ~src:(address t) ~dst
       (Ipv4.Udp.encode udp))

let send_ping t ?(id = 0) ?(seq = 0) ~dst () =
  let msg =
    Ipv4.Icmp.Echo_request { ident = id; seq; data = Bytes.create 16 }
  in
  send t
    (Packet.make ~id ~proto:Ipv4.Proto.icmp ~src:(address t) ~dst
       (Ipv4.Icmp.encode msg))

(* --- ICMP error helper (host unreachable for disconnected hosts) --- *)

let send_unreachable t (offending : Packet.t) =
  if not (Node.has_address t.node offending.Packet.src) then begin
    let encoded = Packet.encode offending in
    let n =
      min (Bytes.length encoded) (Packet.header_length offending + 8)
    in
    let msg = Ipv4.Icmp.host_unreachable ~original:(Bytes.sub encoded 0 n) in
    let pkt =
      Packet.make ~proto:Ipv4.Proto.icmp ~src:(address t)
        ~dst:offending.Packet.src (Ipv4.Icmp.encode msg)
    in
    Node.send t.node pkt
  end

(* --- tunneling operations --- *)

let regional_binding t mobile =
  match t.regional with
  | Some r -> Regional.find r mobile
  | None -> None

(* A live inter-region forwarding pointer ([Config.regional_grace]): the
   mobile left this region but its old regional agent chases in-flight
   packets to the new one for a grace period. *)
let regional_forward t mobile =
  match t.regional with
  | None -> None
  | Some r ->
    (match Regional.forward r ~now:(now t) mobile with
     | Some target when not (Node.has_address t.node target) -> Some target
     | _ -> None)

(* Initial interception of a plain packet for an away mobile host
   (Sections 2, 6.1): tunnel to its current foreign agent and tell the
   sender where it is.  When the home agent doubles as the mobile's
   regional agent (the host is visiting a cell of its own home region),
   the recorded location is one of our own addresses: tunnel straight to
   the regional binding's foreign agent instead — a tunnel to ourselves
   would come back with us already among the tunnel heads and dissolve
   as a one-hop loop. *)
let ha_intercept t (pkt : Packet.t) =
  let mobile = pkt.Packet.dst in
  t.counters.Counters.intercepts <- t.counters.Counters.intercepts + 1;
  match ha_location t mobile with
  | Some fa when Addr.equal fa disconnected_marker ->
    tracef t "intercept" "%a is disconnected" Addr.pp mobile;
    send_unreachable t pkt
  | Some fa when not (Addr.is_zero fa) ->
    let target, report =
      if not (Node.has_address t.node fa) then (Some fa, fa)
      else
        match regional_binding t mobile with
        | Some fa' -> (Some fa', fa)
        | None ->
          (match regional_forward t mobile with
           | Some target -> (Some target, target)
           | None -> (None, fa))
    in
    (match target with
     | Some target ->
       t.counters.Counters.tunnels_built <-
         t.counters.Counters.tunnels_built + 1;
       tracef t "tunnel" "intercepted for %a, to fa %a" Addr.pp mobile
         Addr.pp target;
       Node.forward_now t.node
         (Encap.tunnel_by_agent ~agent:(address t) ~foreign_agent:target
            pkt);
       send_location_update t ~dst:pkt.Packet.src ~mobile
         ~foreign_agent:report
     | None ->
       (* our own regional binding expired with the location entry still
          naming us: the host is gone *)
       tracef t "intercept" "%a: own regional binding expired" Addr.pp
         mobile;
       send_unreachable t pkt)
  | Some _ ->
    (* At home after all (stale ARP in some neighbour): pass it on to the
       home LAN. *)
    Node.forward_now t.node pkt
  | None -> Node.forward_now t.node pkt

(* Re-tunnel a packet we cannot deliver (Section 4.4), handling list
   overflow and loop detection (Section 5.3). *)
let do_retunnel t (pkt : Packet.t) ~mobile ~new_dst ~report_fa =
  match
    Encap.retunnel ~max_prev_sources:t.config.Config.max_prev_sources
      ~me:(address t) ~new_dst pkt
  with
  | None -> ()
  | Some (Encap.Retunneled p) ->
    t.counters.Counters.retunnels <- t.counters.Counters.retunnels + 1;
    tracef t "retunnel" "%a -> %a" Addr.pp mobile Addr.pp new_dst;
    Node.forward_now t.node p
  | Some (Encap.Retunneled_overflow { packet; notify }) ->
    t.counters.Counters.retunnels <- t.counters.Counters.retunnels + 1;
    t.counters.Counters.list_truncations <-
      t.counters.Counters.list_truncations + 1;
    let reported = Option.value report_fa ~default:Addr.zero in
    List.iter
      (fun dst ->
         send_location_update t ~dst ~mobile ~foreign_agent:reported)
      notify;
    tracef t "retunnel" "list overflow: notified %d, on to %a"
      (List.length notify) Addr.pp new_dst;
    Node.forward_now t.node packet
  | Some (Encap.Loop_detected { members }) ->
    t.counters.Counters.loops_detected <-
      t.counters.Counters.loops_detected + 1;
    tracef t "loop" "detected, %d members" (List.length members);
    (* We are a member of the loop ourselves: drop our own stale entry
       along with everyone else's — including a regional binding; a loop
       through the regional agent means its binding is as stale as any
       cache entry, and keeping it would rebuild the same loop for every
       subsequent packet. *)
    Location_cache.delete t.cache mobile;
    (match t.regional with
     | Some r -> Regional.withdraw r mobile
     | None -> ());
    List.iter
      (fun dst ->
         send_location_update t ~dst ~mobile ~foreign_agent:Addr.zero)
      members;
    t.counters.Counters.loops_dissolved <-
      t.counters.Counters.loops_dissolved + 1;
    (match t.config.Config.on_loop with
     | Config.Discard_packet -> ()
     | Config.Tunnel_home ->
       match Encap.detunnel pkt with
       | None -> ()
       | Some (original, _) ->
         Node.forward_now t.node
           (Encap.tunnel_by_agent ~agent:(address t) ~foreign_agent:mobile
              original))

(* Stale foreign agent (or any cache agent handed a tunneled packet for a
   host it no longer serves): to the cached new location, else toward the
   home network (Section 4.4). *)
let retunnel_stale t (pkt : Packet.t) (header : Mhrp_header.t) =
  let mobile = header.Mhrp_header.mobile in
  let cached =
    if t.cache_agent then Location_cache.find t.cache mobile else None
  in
  match cached with
  | Some fa when not (Node.has_address t.node fa) ->
    do_retunnel t pkt ~mobile ~new_dst:fa ~report_fa:(Some fa)
  | Some _ | None ->
    do_retunnel t pkt ~mobile ~new_dst:mobile ~report_fa:None

(* Correct foreign agent: strip the header, update every stale cache agent
   recorded in it (Section 5.1), deliver over the last hop. *)
let deliver_to_visitor t fa_state fa_iface (pkt : Packet.t) =
  (* Report the address the tunnel actually ended at: the foreign agent's
     own address, or the temporary address of a host serving as its own
     foreign agent.  Under hierarchical registration with an explicit
     refresh interval configured — the failure-recovery deployment
     profile — a foreign agent advertises its regional parent instead,
     so correspondent caches keep pointing at the region's stable entry
     point: intra-region handoffs stay invisible to them, a regional
     failover or mirror-peer takeover keeps them valid, and an
     inter-region handoff can be chased through the old regional
     agent's forwarding pointer.  On the slow lifetime/3 fallback
     cadence that entry point is too loosely maintained to pin caches
     to, so the foreign agent keeps reporting itself. *)
  let endpoint =
    match t.regional_parent with
    | Some regional
      when t.config.Config.hierarchy
           && Time.to_us t.config.Config.regional_refresh > 0 -> regional
    | _ -> pkt.Packet.dst
  in
  match Encap.detunnel pkt with
  | None -> ()
  | Some (original, header) ->
    let mobile = header.Mhrp_header.mobile in
    t.counters.Counters.detunnels <- t.counters.Counters.detunnels + 1;
    List.iter
      (fun dst ->
         if not (Node.has_address t.node dst) then
           send_location_update t ~dst ~mobile ~foreign_agent:endpoint)
      header.Mhrp_header.prev_sources;
    tracef t "deliver" "to visitor %a" Addr.pp mobile;
    if Node.has_address t.node original.Packet.dst then
      (* We are the mobile host serving as its own foreign agent. *)
      Node.inject_local t.node original
    else
      match Foreign_agent.find fa_state mobile with
      | None -> ()
      | Some { Foreign_agent.mac = Some mac; iface; _ } ->
        Node.send_ip_to_mac t.node ~iface ~dst_mac:mac original
      | Some { Foreign_agent.mac = None; _ } ->
        (* Recovered visitor (Section 5.2): deliver through ARP on the
           serving LAN via a host route. *)
        Node.update_routes t.node (fun r ->
            Net.Route.add_host r mobile (Net.Route.Direct fa_iface));
        Node.forward_now t.node original

(* Home agent receiving a tunneled packet for one of its mobile hosts —
   the packet bounced off a stale or rebooted foreign agent
   (Sections 5.1, 5.2). *)
let ha_handle_tunneled t ha (pkt : Packet.t) (header : Mhrp_header.t) =
  let mobile = header.Mhrp_header.mobile in
  let targets =
    let list = header.Mhrp_header.prev_sources in
    let with_src =
      if List.exists (Addr.equal pkt.Packet.src) list then list
      else list @ [pkt.Packet.src]
    in
    List.filter (fun a -> not (Node.has_address t.node a)) with_src
  in
  match Home_agent.location ha mobile with
  | None -> retunnel_stale t pkt header
  | Some fa when Addr.is_zero fa ->
    (* The mobile host is at home: reconstruct and deliver on the home
       network; stale caches learn it is home (Section 6.3). *)
    (match Encap.detunnel pkt with
     | None -> ()
     | Some (original, _) ->
       t.counters.Counters.detunnels <- t.counters.Counters.detunnels + 1;
       List.iter
         (fun dst ->
            send_location_update t ~dst ~mobile ~foreign_agent:Addr.zero)
         targets;
       Node.forward_now t.node original)
  | Some fa when Addr.equal fa disconnected_marker ->
    List.iter
      (fun dst ->
         send_location_update t ~dst ~mobile ~foreign_agent:Addr.zero)
      targets;
    (match Encap.detunnel pkt with
     | Some (original, _) -> send_unreachable t original
     | None -> ())
  | Some fa when List.exists (Addr.equal fa) targets ->
    (* Section 5.2: the agent that bounced this packet home IS the
       registered foreign agent — it must have rebooted.  Tell everyone
       (including it) and discard the packet. *)
    tracef t "fa-recovery" "%a bounced by its own fa %a" Addr.pp mobile
      Addr.pp fa;
    List.iter
      (fun dst -> send_location_update t ~dst ~mobile ~foreign_agent:fa)
      targets
  | Some fa ->
    (* Section 5.1: update every stale agent this packet visited, then
       tunnel on to the correct foreign agent. *)
    List.iter
      (fun dst -> send_location_update t ~dst ~mobile ~foreign_agent:fa)
      targets;
    do_retunnel t pkt ~mobile ~new_dst:fa ~report_fa:(Some fa)

(* Dispatch for packets of protocol MHRP delivered to this node (addressed
   here, or intercepted for a mobile host). *)
(* The mobile host itself received a packet tunneled to its home address:
   it is back home (or the tunnel chased it here).  Deliver to ourselves
   and tell everyone who forwarded the packet that we are at home, so they
   delete their cache entries (Section 6.3). *)
let mh_handle_tunneled_to_self t (pkt : Packet.t) (header : Mhrp_header.t) =
  match Encap.detunnel pkt with
  | None -> ()
  | Some (original, _) ->
    let mobile = header.Mhrp_header.mobile in
    t.counters.Counters.detunnels <- t.counters.Counters.detunnels + 1;
    let targets =
      let list = header.Mhrp_header.prev_sources in
      if List.exists (Addr.equal pkt.Packet.src) list then list
      else list @ [pkt.Packet.src]
    in
    List.iter
      (fun dst ->
         send_location_update t ~dst ~mobile ~foreign_agent:Addr.zero)
      targets;
    Node.inject_local t.node original

(* Regional agent receiving a tunneled packet for a mobile host bound in
   its region ([Config.hierarchy]): re-tunnel to the serving foreign
   agent.  Overflow notifications report this agent's own address, not
   the inner foreign agent — the region stays opaque, so external caches
   survive intra-region handoffs. *)
(* Hierarchical counterpart of the Section 5.2 reboot recovery: a foreign
   agent handed a tunneled packet for a mobile host missing from its
   visitor list (a reboot lost the list, or a lost withdrawal left the
   regional binding stale) probes the cell.  An answer means the host is
   still here — re-add it, the regional binding was right after all.  No
   answer means the binding is stale: report a visitor-list miss so the
   regional parent drops it ([Control.Fa_visitor_miss]) — the bounce the
   flat path gets from the home agent's ICMP location updates, which
   never reaches a regional binding.  Skipped while a forwarding-pointer
   cache entry still says where the host went: that entry re-tunnels the
   packet correctly, and the probe would only add control traffic. *)
let fa_probe_missing_visitor t ~mobile =
  match t.fa, t.regional_parent with
  | Some (fa_state, fa_iface), Some regional
    when t.config.Config.hierarchy
      && (not (Foreign_agent.mem fa_state mobile))
      && (not (Node.has_address t.node mobile))
      && (not t.cache_agent || Location_cache.find t.cache mobile = None) ->
    let km = Addr.to_key mobile in
    if not (Hashtbl.mem t.fa_miss_probes km) then begin
      Hashtbl.replace t.fa_miss_probes km ();
      Node.arp_probe t.node ~iface:fa_iface mobile;
      ignore
        (Engine.schedule_after (engine t) ~delay:(Time.of_ms 50) (fun () ->
             Hashtbl.remove t.fa_miss_probes km;
             if Node.is_up t.node then
               match Node.arp_cache_lookup t.node mobile with
               | Some mac ->
                 if not (Foreign_agent.mem fa_state mobile) then begin
                   Foreign_agent.add fa_state
                     { Foreign_agent.mobile; mac = Some mac;
                       iface = fa_iface };
                   t.counters.Counters.recoveries <-
                     t.counters.Counters.recoveries + 1;
                   tracef t "fa-recovery" "re-added visitor %a after probe"
                     Addr.pp mobile
                 end
               | None ->
                 (* report the address the mobiles register — the one
                    advertised on the serving interface, which is what
                    the regional binding records *)
                 let fa_self =
                   match
                     List.find_opt
                       (fun (i, _, _) -> i = fa_iface)
                       (Node.ifaces t.node)
                   with
                   | Some (_, _, Some a) -> a
                   | _ -> address t
                 in
                 tracef t "fa-recovery"
                   "%a did not answer probe: reporting miss to %a" Addr.pp
                   mobile Addr.pp regional;
                 send_control t ~dst:regional
                   (Control.Fa_visitor_miss
                      { mobile; foreign_agent = fa_self })))
    end
  | _ -> ()

(* Dispatch a tunneled packet through our regional role: retunnel to the
   bound foreign agent, chase an inter-region forwarding pointer, or
   [fallback].  Shared by the pure-regional node and the combined
   home-and-regional node, whose home-agent location entry names one of
   its own addresses. *)
let regional_dispatch t (pkt : Packet.t) (header : Mhrp_header.t) ~fallback
  =
  let mobile = header.Mhrp_header.mobile in
  match regional_binding t mobile with
  | Some fa when not (Node.has_address t.node fa) ->
    t.counters.Counters.regional_retunnels <-
      t.counters.Counters.regional_retunnels + 1;
    do_retunnel t pkt ~mobile ~new_dst:fa ~report_fa:(Some (address t))
  | _ ->
    match regional_forward t mobile with
    | Some target ->
      (* inter-region handoff grace period: chase the mobile to its new
         regional agent, and report that agent so stale caches rebind to
         the new region *)
      t.counters.Counters.regional_forwards <-
        t.counters.Counters.regional_forwards + 1;
      tracef t "regional" "forwarding %a to new region %a" Addr.pp mobile
        Addr.pp target;
      do_retunnel t pkt ~mobile ~new_dst:target ~report_fa:(Some target)
    | None -> fallback ()

(* A tunnel this node built to one of its own addresses, looped straight
   back by the network layer: the home agent and the regional agent are
   the same node, and some home-agent path (a registration reply, an
   intercept racing the regional binding write) tunneled to the recorded
   location — us.  Strip our own encapsulation and send the inner packet
   through the regional binding; running it through the normal dispatch
   instead would read our own address among the tunnel heads as a
   one-hop loop and dissolve the binding. *)
let handle_self_tunnel t (pkt : Packet.t) (header : Mhrp_header.t) =
  let mobile = header.Mhrp_header.mobile in
  match Encap.detunnel pkt with
  | None -> tracef t "drop" "malformed self-tunnel"
  | Some (original, _) ->
    t.counters.Counters.detunnels <- t.counters.Counters.detunnels + 1;
    let target =
      match regional_binding t mobile with
      | Some fa when not (Node.has_address t.node fa) -> Some fa
      | _ -> regional_forward t mobile
    in
    (match target with
     | Some fa ->
       t.counters.Counters.tunnels_built <-
         t.counters.Counters.tunnels_built + 1;
       tracef t "tunnel" "self-tunnel for %a on to fa %a" Addr.pp mobile
         Addr.pp fa;
       Node.forward_now t.node
         (Encap.tunnel_by_agent ~agent:(address t) ~foreign_agent:fa
            original)
     | None ->
       tracef t "drop" "self-tunnel for %a: no regional binding" Addr.pp
         mobile;
       send_unreachable t original)

let handle_mhrp t (pkt : Packet.t) =
  match Encap.header_of pkt with
  | None -> tracef t "drop" "malformed mhrp packet"
  | Some header ->
    let mobile = header.Mhrp_header.mobile in
    match t.fa with
    | Some (fa_state, fa_iface) when Foreign_agent.mem fa_state mobile ->
      deliver_to_visitor t fa_state fa_iface pkt
    | _ when Node.has_address t.node pkt.Packet.src ->
      handle_self_tunnel t pkt header
    | _ ->
      if Node.has_address t.node mobile then
        mh_handle_tunneled_to_self t pkt header
      else
        match t.ha with
        | Some ha when Home_agent.serves ha mobile ->
          let location_is_self =
            match Home_agent.location ha mobile with
            | Some loc ->
              (not (Addr.is_zero loc)) && Node.has_address t.node loc
            | None -> false
          in
          if location_is_self then
            (* the mobile is visiting its own home region and we are
               both its home and regional agent: serve the regional
               role — the home-agent path would bounce the packet at
               ourselves as a loop *)
            regional_dispatch t pkt header
              ~fallback:(fun () -> ha_handle_tunneled t ha pkt header)
          else ha_handle_tunneled t ha pkt header
        | _ ->
          regional_dispatch t pkt header
            ~fallback:(fun () ->
                fa_probe_missing_visitor t ~mobile;
                retunnel_stale t pkt header)

(* --- Section 4.5: returned ICMP errors --- *)

let is_unreachable = function
  | Ipv4.Icmp.Dest_unreachable _ -> true
  | _ -> false

let resend_error t msg ~dst ~quoted =
  t.counters.Counters.icmp_errors_reversed <-
    t.counters.Counters.icmp_errors_reversed + 1;
  let encoded = Packet.encode quoted in
  let n = min (Bytes.length encoded) (Packet.header_length quoted + 8 + 64)
  in
  (* Quote generously (header + transport prefix) so the next reversal
     still has the whole MHRP header available. *)
  let original = Bytes.sub encoded 0 n in
  let msg' =
    match msg with
    | Ipv4.Icmp.Dest_unreachable { code; _ } ->
      Ipv4.Icmp.Dest_unreachable { code; original }
    | Ipv4.Icmp.Time_exceeded { code; _ } ->
      Ipv4.Icmp.Time_exceeded { code; original }
    | Ipv4.Icmp.Redirect { gateway; _ } ->
      Ipv4.Icmp.Redirect { gateway; original }
    | other -> other
  in
  tracef t "icmp-reverse" "to %a" Addr.pp dst;
  let pkt =
    Packet.make ~proto:Ipv4.Proto.icmp ~src:(address t) ~dst
      (Ipv4.Icmp.encode msg')
  in
  Node.send t.node pkt

let handle_icmp_error t (msg : Ipv4.Icmp.t) quoted_bytes =
  match Packet.decode_prefix quoted_bytes with
  | None -> t.icmp_error_tap msg None
  | Some (qpkt, _) ->
    if Encap.is_tunneled qpkt && Node.has_address t.node qpkt.Packet.src
    then begin
      (* We are the head of the most recent tunnel this packet was in. *)
      match Mhrp_header.decode_prefix qpkt.Packet.payload with
      | None -> t.icmp_error_tap msg None
      | Some (header, hlen) ->
        let mobile = header.Mhrp_header.mobile in
        if is_unreachable msg && t.cache_agent then begin
          (* The path to our cached location failed — not necessarily the
             mobile host itself (Section 4.5): drop the entry. *)
          Location_cache.delete t.cache mobile;
          tracef t "cache" "dropped %a after unreachable" Addr.pp mobile
        end;
        let payload = qpkt.Packet.payload in
        if Bytes.length payload < hlen + 8 then
          (* Not enough of the original quoted: nothing more can be done
             beyond the cache deletion (Section 4.5). *)
          t.icmp_error_tap msg None
        else begin
          let transport =
            Bytes.sub payload hlen (Bytes.length payload - hlen)
          in
          match header.Mhrp_header.prev_sources with
          | [] ->
            (* We built the header as the original sender: reverse to the
               pre-tunnel packet and treat the error as ours. *)
            let original =
              { qpkt with
                Packet.proto = header.Mhrp_header.orig_proto;
                dst = mobile;
                payload = transport }
            in
            t.counters.Counters.icmp_errors_reversed <-
              t.counters.Counters.icmp_errors_reversed + 1;
            t.icmp_error_tap msg (Some original)
          | [sender] ->
            (* We did the initial (agent-built) encapsulation: restore the
               original packet and return the error to the sender. *)
            let original =
              { qpkt with
                Packet.proto = header.Mhrp_header.orig_proto;
                src = sender;
                dst = mobile;
                payload = transport }
            in
            resend_error t msg ~dst:sender ~quoted:original
          | _ :: _ :: _ ->
            (* We re-tunneled it: reverse one step of the tunnel chain. *)
            match Mhrp_header.drop_last_source header with
            | None -> ()
            | Some (header', prev_head) ->
              let quoted =
                { qpkt with
                  Packet.src = prev_head;
                  dst = address t;
                  payload = Mhrp_header.encode header' transport }
              in
              resend_error t msg ~dst:prev_head ~quoted
        end
    end
    else t.icmp_error_tap msg (Some qpkt)

(* --- agent discovery (Section 3) --- *)

let broadcast_advert t =
  let home = t.ha <> None in
  let foreign = t.fa <> None in
  if home || foreign then
    List.iter
      (fun (i, _, addr) ->
         match addr with
         | None -> ()
         | Some agent ->
           t.counters.Counters.control_messages <-
             t.counters.Counters.control_messages + 1;
           let msg =
             Ipv4.Icmp.Agent_advertisement { agent; home; foreign }
           in
           let pkt =
             Packet.make ~proto:Ipv4.Proto.icmp ~src:agent
               ~dst:Addr.broadcast (Ipv4.Icmp.encode msg)
           in
           Node.broadcast_ip t.node ~iface:i pkt)
      (Node.ifaces t.node)

let solicit t =
  List.iter
    (fun (i, _, _) ->
       t.counters.Counters.control_messages <-
         t.counters.Counters.control_messages + 1;
       let pkt =
         Packet.make ~proto:Ipv4.Proto.icmp ~src:(address t)
           ~dst:Addr.broadcast (Ipv4.Icmp.encode Ipv4.Icmp.Agent_solicitation)
       in
       Node.broadcast_ip t.node ~iface:i pkt)
    (Node.ifaces t.node)

let start_advert_timer t =
  if not t.advert_timer then begin
    t.advert_timer <- true;
    Engine.every (engine t) ~interval:t.config.Config.advert_interval
      (fun () -> if Node.is_up t.node then broadcast_advert t)
  end

(* --- Section 5.2: foreign-agent state recovery --- *)

let fa_recovery_check t ~mobile ~foreign_agent =
  match t.fa with
  | Some (fa_state, fa_iface)
    when Node.has_address t.node foreign_agent
      && (not (Foreign_agent.mem fa_state mobile))
      && not (Node.has_address t.node mobile) ->
    let add mac =
      Foreign_agent.add fa_state
        { Foreign_agent.mobile; mac; iface = fa_iface };
      t.counters.Counters.recoveries <- t.counters.Counters.recoveries + 1;
      tracef t "fa-recovery" "re-added visitor %a" Addr.pp mobile
    in
    if t.config.Config.verify_recovered_visitors then begin
      (* Verify presence with a local query (the paper suggests an ARP
         query) before believing the home agent. *)
      Node.arp_probe t.node ~iface:fa_iface mobile;
      ignore
        (Engine.schedule_after (engine t) ~delay:(Time.of_ms 50) (fun () ->
             match Node.arp_cache_lookup t.node mobile with
             | Some mac -> add (Some mac)
             | None ->
               tracef t "fa-recovery" "%a did not answer query" Addr.pp
                 mobile))
    end
    else add None
  | _ -> ()

(* --- mobile-host registration machinery (Section 3) --- *)

let current_iface t =
  match Node.ifaces t.node with
  | (i, lan, _) :: _ -> (i, lan)
  | [] -> failwith (Node.name t.node ^ ": no interface")

let notify_old_fa t mh ~new_foreign_agent =
  match mh.Mobile_host.old_fa with
  | Some old_fa when not (Addr.equal old_fa new_foreign_agent) ->
    t.counters.Counters.fa_disconnects <-
      t.counters.Counters.fa_disconnects + 1;
    send_control t ~dst:old_fa
      (Control.Fa_disconnect
         { mobile = mh.Mobile_host.home; new_foreign_agent });
    mh.Mobile_host.old_fa <- None
  | _ -> mh.Mobile_host.old_fa <- None

let complete_registration t mh ~foreign_agent =
  mh.Mobile_host.registrations_completed <-
    mh.Mobile_host.registrations_completed + 1;
  mh.Mobile_host.last_advert <- now t;
  if Addr.is_zero foreign_agent then begin
    mh.Mobile_host.phase <- Mobile_host.At_home;
    notify_old_fa t mh ~new_foreign_agent:Addr.zero
  end
  else begin
    mh.Mobile_host.phase <- Mobile_host.Registered foreign_agent;
    notify_old_fa t mh ~new_foreign_agent:foreign_agent
  end;
  tracef t "registered" "%a" Mobile_host.pp_phase mh.Mobile_host.phase;
  t.registered_tap foreign_agent

let register_with_home_agent t mh ~foreign_agent =
  let request () =
    send_control t ~dst:mh.Mobile_host.home_agent
      (Control.Reg_request { mobile = mh.Mobile_host.home; foreign_agent })
  in
  request ();
  mh.Mobile_host.reg_seq <- mh.Mobile_host.reg_seq + 1;
  let gen = mh.Mobile_host.reg_seq in
  arm_control_retry t
    ~still_pending:(fun () ->
        (* the home agent's reply acks; a newer registration supersedes *)
        mh.Mobile_host.reg_seq = gen && mh.Mobile_host.reg_acked < gen)
    ~resend:(fun () ->
        t.counters.Counters.reg_retransmissions <-
          t.counters.Counters.reg_retransmissions + 1;
        request ())
    ~give_up:(fun () -> ())

(* Bind to the serving foreign agent at the regional agent
   ([Config.hierarchy]) — the only registration an intra-region handoff
   sends.  Exhausting the retransmissions ([Config.reliable_control])
   declares the regional agent dead and fails over. *)
let rec register_with_region t mh ~regional ~foreign_agent =
  let lifetime_s = regional_lifetime_s t in
  let request () =
    send_control t ~dst:regional
      (Control.Reg_region
         { mobile = mh.Mobile_host.home; foreign_agent; lifetime_s })
  in
  request ();
  mh.Mobile_host.rr_seq <- mh.Mobile_host.rr_seq + 1;
  let gen = mh.Mobile_host.rr_seq in
  arm_control_retry t
    ~still_pending:(fun () ->
        mh.Mobile_host.rr_seq = gen && mh.Mobile_host.rr_acked < gen)
    ~resend:(fun () ->
        t.counters.Counters.region_retransmissions <-
          t.counters.Counters.region_retransmissions + 1;
        request ())
    ~give_up:(fun () -> region_failover t mh ~failed:regional)

(* Regional-agent crash recovery: the retransmission loop gave up, so the
   regional agent is presumed down.  Re-anchor at the advertised backup
   when one exists (the home agent must be repointed — external tunnels
   land on the regional agent, and the crashed one blackholes them), else
   fall back to a direct, flat registration with the current foreign
   agent; the next hierarchical connect ack restores aggregation. *)
and region_failover t mh ~failed =
  let still_current =
    match mh.Mobile_host.regional with
    | Some r -> Addr.equal r failed
    | None -> false
  in
  if still_current then begin
    t.counters.Counters.region_failovers <-
      t.counters.Counters.region_failovers + 1;
    match mh.Mobile_host.phase with
    | (Mobile_host.Registered fa | Mobile_host.Registering fa)
      when not (Addr.is_zero fa) -> begin
        match mh.Mobile_host.regional_backup with
        | Some backup when not (Addr.equal backup failed) ->
          tracef t "region-failover" "%a unresponsive: backup %a takes over"
            Addr.pp failed Addr.pp backup;
          mh.Mobile_host.regional <- Some backup;
          register_with_home_agent t mh ~foreign_agent:backup;
          register_with_region t mh ~regional:backup ~foreign_agent:fa
        | _ ->
          tracef t "region-failover"
            "%a unresponsive: registering directly with home agent" Addr.pp
            failed;
          mh.Mobile_host.regional <- None;
          register_with_home_agent t mh ~foreign_agent:fa
      end
    | _ -> mh.Mobile_host.regional <- None
  end

(* Fire-and-forget withdrawal (no ack, no retry): a stale binding is
   soft state the data-path machinery — and now its lifetime — corrects,
   and an acked withdrawal could race with — and falsely acknowledge —
   the registration to the next region.  On an inter-region handoff
   ([new_regional]) with a grace period configured, the withdrawal
   becomes a [Region_forward]: the old regional agent keeps a forwarding
   pointer so in-flight packets are re-tunneled instead of dropped.  A
   no-op outside hierarchy mode: [mh.regional] is only ever set by a
   hierarchical connect ack. *)
let withdraw_regional ?new_regional t mh =
  match mh.Mobile_host.regional with
  | None -> ()
  | Some regional ->
    (match new_regional with
     | Some next
       when Time.to_us t.config.Config.regional_grace > 0
         && not (Addr.equal next regional) ->
       send_control t ~dst:regional
         (Control.Region_forward
            { mobile = mh.Mobile_host.home; new_regional = next })
     | _ ->
       send_control t ~dst:regional
         (Control.Reg_region
            { mobile = mh.Mobile_host.home; foreign_agent = Addr.zero;
              lifetime_s = 0 }));
    mh.Mobile_host.regional <- None

let connect_via_foreign_agent t mh fa_addr =
  mh.Mobile_host.phase <- Mobile_host.Registering fa_addr;
  let i, lan = current_iface t in
  Node.set_routes t.node
    (Net.Route.add_default
       (Net.Route.add Net.Route.empty (Net.Lan.prefix lan)
          (Net.Route.Direct i))
       (Net.Route.Via fa_addr));
  t.counters.Counters.fa_connects <- t.counters.Counters.fa_connects + 1;
  let connect () =
    send_control t ~dst:fa_addr
      (Control.Fa_connect
         { mobile = mh.Mobile_host.home; mac = Node.iface_mac t.node i })
  in
  connect ();
  arm_control_retry t
    ~still_pending:(fun () ->
        (* the connect ack moves us to Registered; a further move changes
           the foreign agent or the phase *)
        match mh.Mobile_host.phase with
        | Mobile_host.Registering fa -> Addr.equal fa fa_addr
        | _ -> false)
    ~resend:(fun () ->
        t.counters.Counters.connect_retransmissions <-
          t.counters.Counters.connect_retransmissions + 1;
        connect ())
    ~give_up:(fun () ->
        (* fall back to agent discovery: the next advertisement (from
           this or any other agent) restarts the connection attempt *)
        mh.Mobile_host.phase <- Mobile_host.Searching)

let connect_home t mh ha_addr =
  mh.Mobile_host.phase <- Mobile_host.Registering Addr.zero;
  let i, lan = current_iface t in
  Node.set_routes t.node
    (Net.Route.add_default
       (Net.Route.add Net.Route.empty (Net.Lan.prefix lan)
          (Net.Route.Direct i))
       (Net.Route.Via ha_addr));
  (* Reconnecting to the home network: broadcast gratuitous ARP replies so
     neighbours (and the home agent) replace the home agent's link address
     with ours again (Section 2), retransmitted for reliability. *)
  let rec burst k =
    if k < t.config.Config.gratuitous_arp_count then begin
      Node.gratuitous_arp t.node ~iface:i mh.Mobile_host.home;
      ignore
        (Engine.schedule_after (engine t) ~delay:(Time.of_ms 100) (fun () ->
             burst (k + 1)))
    end
  in
  burst 0;
  withdraw_regional t mh;
  register_with_home_agent t mh ~foreign_agent:Addr.zero;
  complete_registration t mh ~foreign_agent:Addr.zero

let mh_handle_advert t ~agent ~home ~foreign =
  match t.mh with
  | None -> ()
  | Some mh ->
    (* hearing our current agent (or the home agent while home) refreshes
       the implicit-disconnection clock (Section 3) *)
    (match mh.Mobile_host.phase with
     | Mobile_host.Registered fa | Mobile_host.Registering fa
       when Addr.equal agent fa ->
       mh.Mobile_host.last_advert <- now t
     | Mobile_host.At_home
       when Addr.equal agent mh.Mobile_host.home_agent ->
       mh.Mobile_host.last_advert <- now t
     | _ -> ());
    match mh.Mobile_host.phase with
    | Mobile_host.Searching ->
      if home && Addr.equal agent mh.Mobile_host.home_agent then begin
        tracef t "discovery" "home agent heard: %a" Addr.pp agent;
        connect_home t mh agent
      end
      else if foreign then begin
        tracef t "discovery" "foreign agent heard: %a" Addr.pp agent;
        connect_via_foreign_agent t mh agent
      end
    | Mobile_host.At_home | Mobile_host.Registering _
    | Mobile_host.Registered _ | Mobile_host.Disconnected -> ()

(* --- control-message handling --- *)

(* Apply a registration to the home-agent database with its side effects
   (ARP capture bursts when the host departs its home LAN), without
   replying — shared by direct registrations and replica synchronisation
   (Section 2's replicated home agents). *)
let register_mobile t ~mobile ~foreign_agent =
  match t.ha with
  | None -> ()
  | Some ha when Home_agent.serves ha mobile ->
    let previous = Home_agent.location ha mobile in
    Home_agent.register ha ~mobile ~foreign_agent;
    t.counters.Counters.registrations <-
      t.counters.Counters.registrations + 1;
    tracef t "register" "%a now at %a" Addr.pp mobile Addr.pp foreign_agent;
    (* Departure from home: capture the host's traffic on the home LAN by
       poisoning neighbour ARP caches, retransmitted for reliability
       (Section 2).  Proxy ARP is in force via the arp_proxy hook. *)
    (match previous with
     | Some prev
       when Addr.is_zero prev && not (Addr.is_zero foreign_agent) ->
       List.iter
         (fun (i, lan, _) ->
            if Ipv4.Addr.Prefix.mem mobile (Net.Lan.prefix lan) then begin
              let rec burst k =
                if k < t.config.Config.gratuitous_arp_count then begin
                  Node.gratuitous_arp t.node ~iface:i mobile;
                  ignore
                    (Engine.schedule_after (engine t)
                       ~delay:(Time.of_ms 100) (fun () -> burst (k + 1)))
                end
              in
              burst 0
            end)
         (Node.ifaces t.node)
     | _ -> ())
  | Some _ -> ()

let ha_handle_registration t ha ~mobile ~foreign_agent =
  if Home_agent.serves ha mobile then begin
    register_mobile t ~mobile ~foreign_agent;
    t.registration_tap ~mobile ~foreign_agent;
    (* The reply reaches a visiting host through its new tunnel. *)
    send t
      (Packet.make ~proto:Ipv4.Proto.udp ~src:(address t) ~dst:mobile
         (control_datagram t (Control.Reg_reply { mobile; accepted = true })));
    t.counters.Counters.control_messages <-
      t.counters.Counters.control_messages + 1
  end

let fa_handle_connect t ~mobile ~mac =
  match t.fa with
  | None -> ()
  | Some (fa_state, fa_iface) ->
    (* Find the interface whose LAN the mobile host's link address is
       attached to; default to the serving interface. *)
    let iface =
      List.find_map
        (fun (i, lan, _) ->
           if Net.Lan.attached lan mac then Some i else None)
        (Node.ifaces t.node)
      |> Option.value ~default:fa_iface
    in
    Foreign_agent.add fa_state
      { Foreign_agent.mobile; mac = Some mac; iface };
    t.counters.Counters.fa_connects <- t.counters.Counters.fa_connects + 1;
    tracef t "visitor" "%a connected (mac %a)" Addr.pp mobile Net.Mac.pp mac;
    t.counters.Counters.control_messages <-
      t.counters.Counters.control_messages + 1;
    (* Under hierarchy, a foreign agent with a provisioned regional
       parent tells the mobile host to register through it instead of
       the home agent. *)
    let ack_msg =
      match t.regional_parent with
      | Some regional when t.config.Config.hierarchy ->
        Control.Fa_connect_ack_r
          { mobile; regional;
            backup =
              Option.value t.regional_backup_parent ~default:Addr.zero }
      | _ -> Control.Fa_connect_ack { mobile }
    in
    let ack =
      Packet.make ~proto:Ipv4.Proto.udp ~src:(address t) ~dst:mobile
        (control_datagram t ack_msg)
    in
    Node.send_ip_to_mac t.node ~iface ~dst_mac:mac ack

let fa_handle_disconnect t ~mobile ~new_foreign_agent =
  match t.fa with
  | None -> ()
  | Some (fa_state, _) ->
    Foreign_agent.remove fa_state mobile;
    t.counters.Counters.fa_disconnects <-
      t.counters.Counters.fa_disconnects + 1;
    tracef t "visitor" "%a disconnected (now %a)" Addr.pp mobile Addr.pp
      new_foreign_agent;
    (* Forwarding pointer (Section 2): the old foreign agent may cache the
       new location, kept as an ordinary cache entry. *)
    if t.config.Config.forwarding_pointers
       && not (Addr.is_zero new_foreign_agent)
    then cache_update t ~mobile ~foreign_agent:new_foreign_agent

let mh_handle_reg_reply t ~mobile ~accepted =
  (* Section 3's notifications are independent, not a handshake: the home
     agent's reply only confirms.  Registration already completed when the
     notifications were sent, so a temporarily unreachable home agent does
     not stall the move (the forwarding-pointer scenario of Section 2). *)
  match t.mh with
  | Some mh when Addr.equal mobile mh.Mobile_host.home ->
    tracef t "registered" "home agent %s"
      (if accepted then "confirmed" else "refused");
    (* the reply acknowledges every outstanding registration request,
       stopping its retransmission loop *)
    mh.Mobile_host.reg_acked <- mh.Mobile_host.reg_seq;
    ignore accepted
  | _ -> ()

let mh_handle_connect_ack t ~mobile =
  match t.mh with
  | Some mh when Addr.equal mobile mh.Mobile_host.home -> begin
      match mh.Mobile_host.phase with
      | Mobile_host.Registering fa when not (Addr.is_zero fa) ->
        (* a plain (non-hierarchical) foreign agent: any old regional
           binding is now stale *)
        withdraw_regional t mh;
        register_with_home_agent t mh ~foreign_agent:fa;
        complete_registration t mh ~foreign_agent:fa
      | _ -> ()
    end
  | _ -> ()

(* Hierarchical connect ack: the home agent learns (at most once per
   region) that the host lives behind the regional agent; every handoff
   under the same regional agent only rebinds there.  This is the
   aggregation that cuts long-haul control traffic per handoff (E19). *)
let mh_handle_connect_ack_r t ~mobile ~regional ~backup =
  match t.mh with
  | Some mh when Addr.equal mobile mh.Mobile_host.home -> begin
      match mh.Mobile_host.phase with
      | Mobile_host.Registering fa when not (Addr.is_zero fa) ->
        let same_region =
          match mh.Mobile_host.regional with
          | Some prev -> Addr.equal prev regional
          | None -> false
        in
        if not same_region then begin
          (* leaving a region: trade the withdrawal for a grace-period
             forwarding pointer when one is configured *)
          withdraw_regional ~new_regional:regional t mh;
          register_with_home_agent t mh ~foreign_agent:regional
        end;
        mh.Mobile_host.regional <- Some regional;
        mh.Mobile_host.regional_backup <-
          (if Addr.is_zero backup then None else Some backup);
        register_with_region t mh ~regional ~foreign_agent:fa;
        complete_registration t mh ~foreign_agent:fa
      | _ -> ()
    end
  | _ -> ()

let mh_handle_reg_region_ack t ~mobile =
  match t.mh with
  | Some mh when Addr.equal mobile mh.Mobile_host.home ->
    tracef t "registered" "regional agent confirmed";
    mh.Mobile_host.rr_acked <- mh.Mobile_host.rr_seq
  | _ -> ()

(* The mirror peer exhausted every binding-sync retransmission: it is
   down.  Capture its regional address on the shared LANs — the
   Section 2 gratuitous-ARP manoeuvre — so correspondents whose caches
   still tunnel into the region through the dead agent reach this
   node's mirrored binding table instead; the proxy-ARP hook answers
   later queries.  Released the moment the peer is heard from again
   (its own post-reboot syncs, or an ack to ours). *)
let region_peer_takeover t =
  match t.region_sync_peer with
  | Some peer when not t.region_peer_captured ->
    t.region_peer_captured <- true;
    t.counters.Counters.region_takeovers <-
      t.counters.Counters.region_takeovers + 1;
    tracef t "regional" "peer %a unresponsive: capturing its address"
      Addr.pp peer;
    List.iter
      (fun (i, lan, _) ->
         if Ipv4.Addr.Prefix.mem peer (Net.Lan.prefix lan) then begin
           let rec burst k =
             if k < t.config.Config.gratuitous_arp_count then begin
               Node.gratuitous_arp t.node ~iface:i peer;
               ignore
                 (Engine.schedule_after (engine t) ~delay:(Time.of_ms 100)
                    (fun () -> burst (k + 1)))
             end
           in
           burst 0
         end)
      (Node.ifaces t.node)
  | _ -> ()

let region_peer_release t ~peer =
  if t.region_peer_captured
     && (match t.region_sync_peer with
         | Some p -> Addr.equal p peer
         | None -> false)
  then begin
    t.region_peer_captured <- false;
    tracef t "regional" "peer %a is back: releasing its address" Addr.pp
      peer
  end

(* Mirror a binding write to the configured backup regional agent so it
   can take over the region on a crash, retransmitted under
   [Config.reliable_control] until the backup confirms (the same
   generation-counter discipline as the mobile's own exchanges). *)
let sync_region_binding t ~mobile ~foreign_agent ~lifetime_s =
  match t.region_sync_peer with
  | None -> ()
  | Some peer ->
    let km = Addr.to_key mobile in
    let gen =
      (match Hashtbl.find_opt t.rsync_seq km with Some g -> g | None -> 0)
      + 1
    in
    Hashtbl.replace t.rsync_seq km gen;
    let msg = Control.Region_sync { mobile; foreign_agent; lifetime_s } in
    send_control t ~dst:peer msg;
    (* A newer generation superseding this one must NOT cancel the retry
       chain: any ack covers every earlier generation, so only an ack
       (or a reboot resetting the tables) counts as the peer answering.
       Otherwise a refresh cadence shorter than the full retry schedule
       would re-arm forever and the peer's death would never surface. *)
    arm_control_retry t
      ~still_pending:(fun () ->
          Hashtbl.mem t.rsync_seq km
          && (match Hashtbl.find_opt t.rsync_acked km with
              | Some a -> a < gen
              | None -> true))
      ~resend:(fun () ->
          t.counters.Counters.region_sync_retransmissions <-
            t.counters.Counters.region_sync_retransmissions + 1;
          send_control t ~dst:peer msg)
      ~give_up:(fun () -> region_peer_takeover t)

let regional_handle_registration t ~mobile ~foreign_agent ~lifetime_s =
  match t.regional with
  | None -> ()
  | Some r ->
    if Addr.is_zero foreign_agent then begin
      Regional.withdraw r mobile;
      tracef t "regional" "%a withdrawn" Addr.pp mobile;
      (* no ack: see [withdraw_regional] *)
      sync_region_binding t ~mobile ~foreign_agent:Addr.zero ~lifetime_s:0
    end
    else begin
      (match
         Regional.register r ?expires_at:(regional_expiry t ~lifetime_s)
           ~mobile ~foreign_agent ()
       with
       | `Fresh ->
         t.counters.Counters.regional_registrations <-
           t.counters.Counters.regional_registrations + 1;
         tracef t "regional" "%a now at %a" Addr.pp mobile Addr.pp
           foreign_agent
       | `Refresh ->
         (* pure keep-alive: the binding is unchanged, only its lifetime
            re-arms — not a registration, or refreshes would inflate the
            E19 aggregation counters *)
         tracef t "regional" "%a refreshed at %a" Addr.pp mobile Addr.pp
           foreign_agent);
      sync_region_binding t ~mobile ~foreign_agent ~lifetime_s;
      (* the ack reaches the visiting host through the binding we just
         wrote, exactly as the home agent's reply rides its tunnel *)
      t.counters.Counters.control_messages <-
        t.counters.Counters.control_messages + 1;
      let reply =
        Packet.make ~proto:Ipv4.Proto.udp ~src:(address t) ~dst:mobile
          (control_datagram t (Control.Reg_region_ack { mobile }))
      in
      t.counters.Counters.tunnels_built <-
        t.counters.Counters.tunnels_built + 1;
      Node.send t.node
        (Encap.tunnel_by_sender ~foreign_agent reply)
    end

(* Backup regional agent: apply a mirrored binding without re-propagating
   (cf. [Ha_sync]), confirming under a reliable control plane so the
   primary stops retransmitting. *)
let regional_handle_sync t ~src ~mobile ~foreign_agent ~lifetime_s =
  region_peer_release t ~peer:src;
  match t.regional with
  | None -> ()
  | Some r ->
    if Addr.is_zero foreign_agent then Regional.withdraw r mobile
    else begin
      ignore
        (Regional.register r ?expires_at:(regional_expiry t ~lifetime_s)
           ~mobile ~foreign_agent ());
      tracef t "regional" "synced %a -> %a" Addr.pp mobile Addr.pp
        foreign_agent
    end;
    if t.config.Config.reliable_control then
      send_control t ~dst:src (Control.Region_sync_ack { mobile })

let regional_handle_sync_ack t ~src ~mobile =
  region_peer_release t ~peer:src;
  let km = Addr.to_key mobile in
  match Hashtbl.find_opt t.rsync_seq km with
  | Some gen -> Hashtbl.replace t.rsync_acked km gen
  | None -> ()

(* The hierarchical invalidation bounce: the serving foreign agent says
   it does not know this visitor (and the cell did not answer a probe),
   so the binding is stale — but only if it still points there; a racing
   re-registration to a different foreign agent must win. *)
let regional_handle_visitor_miss t ~mobile ~foreign_agent =
  match t.regional with
  | None -> ()
  | Some r ->
    if Regional.invalidate r ~mobile ~foreign_agent then begin
      t.counters.Counters.regional_invalidations <-
        t.counters.Counters.regional_invalidations + 1;
      tracef t "regional" "%a invalidated: %a reports no such visitor"
        Addr.pp mobile Addr.pp foreign_agent
    end

(* Inter-region handoff: replace the departing mobile's binding with a
   grace-period forwarding pointer toward its new regional agent. *)
let regional_handle_forward t ~mobile ~new_regional =
  match t.regional with
  | None -> ()
  | Some r ->
    Regional.withdraw r mobile;
    sync_region_binding t ~mobile ~foreign_agent:Addr.zero ~lifetime_s:0;
    let grace = t.config.Config.regional_grace in
    if Time.to_us grace > 0 && not (Node.has_address t.node new_regional)
    then begin
      Regional.set_forward r ~mobile ~new_regional
        ~expires_at:(Time.add (now t) grace);
      tracef t "regional" "%a left region: forwarding to %a for %a" Addr.pp
        mobile Addr.pp new_regional Time.pp grace
    end

let handle_control t (pkt : Packet.t) =
  match Ipv4.Udp.decode pkt.Packet.payload with
  | exception Invalid_argument _ -> ()
  | udp ->
    match Control.decode udp.Ipv4.Udp.data with
    | None -> ()
    | Some msg
      when not
             (authorize t ~mobile:(Control.mobile msg) ~src:pkt.Packet.src
                ~wire:udp.Ipv4.Udp.data ~canonical:(Control.encode msg)
                ~kind:"auth-fail") -> ()
    | Some msg ->
      tracef t "ctrl-rx" "%a" Control.pp msg;
      match msg with
      | Control.Reg_request { mobile; foreign_agent } ->
        (match t.ha with
         | Some ha -> ha_handle_registration t ha ~mobile ~foreign_agent
         | None -> ())
      | Control.Reg_reply { mobile; accepted } ->
        mh_handle_reg_reply t ~mobile ~accepted
      | Control.Fa_connect { mobile; mac } ->
        fa_handle_connect t ~mobile ~mac
      | Control.Fa_connect_ack { mobile } -> mh_handle_connect_ack t ~mobile
      | Control.Fa_disconnect { mobile; new_foreign_agent } ->
        fa_handle_disconnect t ~mobile ~new_foreign_agent
      | Control.Ha_sync { mobile; foreign_agent } ->
        (* replica synchronisation: apply without re-propagating; under a
           reliable control plane, confirm so the originator can stop
           retransmitting *)
        register_mobile t ~mobile ~foreign_agent;
        if t.config.Config.reliable_control then
          send_control t ~dst:pkt.Packet.src (Control.Ha_sync_ack { mobile })
      | Control.Ha_sync_ack { mobile } ->
        t.ha_sync_ack_tap ~peer:pkt.Packet.src ~mobile
      | Control.Fa_connect_ack_r { mobile; regional; backup } ->
        mh_handle_connect_ack_r t ~mobile ~regional ~backup
      | Control.Reg_region { mobile; foreign_agent; lifetime_s } ->
        regional_handle_registration t ~mobile ~foreign_agent ~lifetime_s
      | Control.Reg_region_ack { mobile } ->
        mh_handle_reg_region_ack t ~mobile
      | Control.Fa_visitor_miss { mobile; foreign_agent } ->
        regional_handle_visitor_miss t ~mobile ~foreign_agent
      | Control.Region_sync { mobile; foreign_agent; lifetime_s } ->
        regional_handle_sync t ~src:pkt.Packet.src ~mobile ~foreign_agent
          ~lifetime_s
      | Control.Region_sync_ack { mobile } ->
        regional_handle_sync_ack t ~src:pkt.Packet.src ~mobile
      | Control.Region_forward { mobile; new_regional } ->
        regional_handle_forward t ~mobile ~new_regional

(* --- ICMP handling --- *)

let handle_icmp t (pkt : Packet.t) =
  match Ipv4.Icmp.decode_opt pkt.Packet.payload with
  | None -> () (* unknown type: silently discard (RFC 1122) *)
  | exception Invalid_argument _ -> ()
  | Some msg ->
    match msg with
    | Ipv4.Icmp.Location_update { mobile; foreign_agent } ->
      t.counters.Counters.updates_received <-
        t.counters.Counters.updates_received + 1;
      if
        authorize t ~mobile ~src:pkt.Packet.src ~wire:pkt.Packet.payload
          ~canonical:
            (Ipv4.Icmp.encode
               (Ipv4.Icmp.Location_update { mobile; foreign_agent }))
          ~kind:"forged-update"
      then begin
        tracef t "loc-update-rx" "%a at %a" Addr.pp mobile Addr.pp
          foreign_agent;
        cache_update t ~mobile ~foreign_agent;
        fa_recovery_check t ~mobile ~foreign_agent;
        t.update_tap ~mobile ~foreign_agent
      end
    | Ipv4.Icmp.Echo_request { ident; seq; data } ->
      let reply = Ipv4.Icmp.Echo_reply { ident; seq; data } in
      send t
        (Packet.make ~id:pkt.Packet.id ~proto:Ipv4.Proto.icmp
           ~src:(address t) ~dst:pkt.Packet.src (Ipv4.Icmp.encode reply))
    | Ipv4.Icmp.Echo_reply _ -> t.app_tap pkt
    | Ipv4.Icmp.Dest_unreachable { original; _ }
    | Ipv4.Icmp.Time_exceeded { original; _ }
    | Ipv4.Icmp.Redirect { original; _ } ->
      handle_icmp_error t msg original
    | Ipv4.Icmp.Agent_advertisement { agent; home; foreign } ->
      mh_handle_advert t ~agent ~home ~foreign
    | Ipv4.Icmp.Agent_solicitation ->
      if t.ha <> None || t.fa <> None then broadcast_advert t

(* --- local-delivery dispatch --- *)

(* Packets can be delivered to this node either because they are addressed
   to it or because a hook intercepted them for a mobile host; route the
   latter to home-agent processing whatever their protocol. *)
let dispatch t proto_handler (pkt : Packet.t) =
  let dst = pkt.Packet.dst in
  if Node.has_address t.node dst || Addr.equal dst Addr.broadcast then
    proto_handler t pkt
  else if Encap.is_tunneled pkt then handle_mhrp t pkt
  else if ha_claims t dst then ha_intercept t pkt
  else proto_handler t pkt

let handle_udp t (pkt : Packet.t) =
  match Ipv4.Udp.decode pkt.Packet.payload with
  | exception Invalid_argument _ -> ()
  | udp ->
    if udp.Ipv4.Udp.dst_port = Control.port then handle_control t pkt
    else t.app_tap pkt

(* --- forwarding hook (router cache agents, Sections 4.3, 6.2) --- *)

let rewrite_forward t (pkt : Packet.t) =
  let dst = pkt.Packet.dst in
  if ha_claims t dst then begin
    if Encap.is_tunneled pkt then begin
      handle_mhrp t pkt;
      Node.Consume
    end
    else begin
      ha_intercept t pkt;
      Node.Consume
    end
  end
  else if t.snoop then begin
    (* Examine forwarded packets: cache location updates in transit and
       tunnel for destinations we have cached (Section 4.3: routers should
       make this a configuration option — it is ours). *)
    (if pkt.Packet.proto = Ipv4.Proto.icmp then
       match Ipv4.Icmp.decode_opt pkt.Packet.payload with
       | Some (Ipv4.Icmp.Location_update { mobile; foreign_agent }) ->
         if
           authorize t ~mobile ~src:pkt.Packet.src
             ~wire:pkt.Packet.payload
             ~canonical:
               (Ipv4.Icmp.encode
                  (Ipv4.Icmp.Location_update { mobile; foreign_agent }))
             ~kind:"forged-update"
         then cache_update t ~mobile ~foreign_agent
       | Some _ | None -> ()
       | exception Invalid_argument _ -> ());
    if (not (Encap.is_tunneled pkt)) && t.cache_agent then
      match Location_cache.find t.cache dst with
      | Some fa when not (Node.has_address t.node fa) ->
        t.counters.Counters.tunnels_built <-
          t.counters.Counters.tunnels_built + 1;
        tracef t "tunnel" "forwarding cache hit for %a via %a" Addr.pp dst
          Addr.pp fa;
        Node.Replace
          (Encap.tunnel_by_agent ~agent:(address t) ~foreign_agent:fa pkt)
      | Some _ | None -> Node.Forward
    else Node.Forward
  end
  else Node.Forward

(* --- construction --- *)

let create ?(config = Config.default) ?(cache_agent = true)
    ?(snoop = false) node =
  let t =
    { node; config;
      counters = Counters.create ();
      cache = Location_cache.create ~capacity:config.Config.cache_capacity;
      limiter =
        Rate_limiter.create ~capacity:config.Config.update_rate_entries
          ~min_interval:config.Config.update_min_interval;
      sa =
        Auth.Sa_table.create ~window:config.Config.auth_timestamp_window
          ~capacity:config.Config.auth_nonce_capacity;
      auth_nonce = 0;
      cache_agent; snoop;
      ha = None; fa = None; mh = None;
      regional = None; regional_parent = None;
      regional_backup_parent = None; region_sync_peer = None;
      region_peer_captured = false;
      rsync_seq = Hashtbl.create 4; rsync_acked = Hashtbl.create 4;
      fa_miss_probes = Hashtbl.create 4; regional_sweep_timer = false;
      app_tap = (fun _ -> ());
      update_tap = (fun ~mobile:_ ~foreign_agent:_ -> ());
      registered_tap = (fun _ -> ());
      registration_tap = (fun ~mobile:_ ~foreign_agent:_ -> ());
      ha_sync_ack_tap = (fun ~peer:_ ~mobile:_ -> ());
      icmp_error_tap = (fun _ _ -> ());
      advert_timer = false }
  in
  Node.set_proto_handler node Ipv4.Proto.mhrp (fun _ pkt ->
      dispatch t (fun t pkt -> handle_mhrp t pkt) pkt);
  Node.set_proto_handler node Ipv4.Proto.icmp (fun _ pkt ->
      dispatch t handle_icmp pkt);
  Node.set_proto_handler node Ipv4.Proto.udp (fun _ pkt ->
      dispatch t handle_udp pkt);
  Node.set_proto_handler node Ipv4.Proto.tcp (fun _ pkt ->
      dispatch t (fun t pkt -> t.app_tap pkt) pkt);
  Node.set_accept_ip node (fun _ pkt -> claims t pkt.Packet.dst);
  Node.set_arp_proxy node (fun addr -> claims t addr);
  Node.set_rewrite_forward node (fun _ pkt -> rewrite_forward t pkt);
  Node.on_reboot node (fun _ ->
      (match t.fa with Some (fa_state, _) -> Foreign_agent.clear fa_state
                     | None -> ());
      (match t.ha with Some ha -> Home_agent.reboot ha | None -> ());
      (* regional bindings are soft state, lost like visitor lists *)
      (match t.regional with Some r -> Regional.clear r | None -> ());
      t.region_peer_captured <- false;
      Hashtbl.reset t.rsync_seq;
      Hashtbl.reset t.rsync_acked;
      Hashtbl.reset t.fa_miss_probes;
      Location_cache.clear t.cache;
      (* A mirrored regional agent reclaims its own address: the peer
         may have captured it with gratuitous ARP while this node was
         down (the same burst, in reverse, repairs neighbour caches) *)
      (match t.regional, t.region_sync_peer with
       | Some _, Some _ ->
         List.iter
           (fun (i, _, addr) ->
              match addr with
              | Some a ->
                let rec burst k =
                  if k < t.config.Config.gratuitous_arp_count then begin
                    Node.gratuitous_arp t.node ~iface:i a;
                    ignore
                      (Engine.schedule_after (engine t)
                         ~delay:(Time.of_ms 100) (fun () -> burst (k + 1)))
                  end
                in
                burst 0
              | None -> ())
           (Node.ifaces t.node)
       | _ -> ()));
  t

let enable_home_agent t =
  if t.ha = None then begin
    t.ha <-
      Some (Home_agent.create ~persistent:t.config.Config.ha_persistent ());
    start_advert_timer t
  end

let enable_foreign_agent t ~iface =
  (match t.fa with
   | None -> t.fa <- Some (Foreign_agent.create (), iface)
   | Some (state, _) -> t.fa <- Some (state, iface));
  start_advert_timer t

let enable_regional_agent ?backup t =
  if t.regional = None then t.regional <- Some (Regional.create ());
  (match backup with
   | Some peer -> t.region_sync_peer <- Some peer
   | None -> ());
  (* Soft-state sweep: evict bindings whose lifetime ran out unrefreshed.
     Swept at a quarter lifetime so an expired binding lingers at most
     25% past its advertised lifetime; armed only when lifetimes are in
     play, so pre-failover configurations run a timer-free table. *)
  if t.config.Config.hierarchy
     && Time.to_us t.config.Config.regional_lifetime > 0
     && not t.regional_sweep_timer
  then begin
    t.regional_sweep_timer <- true;
    let interval =
      Time.of_us (max 1 (Time.to_us t.config.Config.regional_lifetime / 4))
    in
    Engine.every (engine t) ~interval (fun () ->
        if Node.is_up t.node then
          match t.regional with
          | Some r ->
            List.iter
              (fun (mobile, fa) ->
                 t.counters.Counters.regional_expirations <-
                   t.counters.Counters.regional_expirations + 1;
                 tracef t "regional" "%a expired (was at %a)" Addr.pp
                   mobile Addr.pp fa)
              (Regional.expire r ~now:(now t))
          | None -> ())
  end

let set_regional_parent ?backup t regional =
  t.regional_parent <- Some regional;
  t.regional_backup_parent <- backup

let add_mobile t mobile =
  match t.ha with
  | None -> failwith "Agent.add_mobile: not a home agent"
  | Some ha -> Home_agent.add_mobile ha mobile

let make_mobile t ~home_agent =
  let home = address t in
  Node.add_address t.node home;
  (* keep answering to the home address across moves *)
  let mh = Mobile_host.create ~home ~home_agent in
  mh.Mobile_host.last_advert <- now t;
  t.mh <- Some mh;
  (* Implicit-disconnection watchdog (Section 3): a host carried out of
     range hears no more advertisements from its agent; when the lifetime
     lapses it starts searching for a new one. *)
  let lifetime = t.config.Config.advert_lifetime in
  let check_interval =
    Time.of_us (max 1 (Time.to_us lifetime / 3))
  in
  Engine.every (engine t) ~interval:check_interval (fun () ->
      if Node.is_up t.node then
        match t.mh with
        | Some mh ->
          (match mh.Mobile_host.phase with
           | Mobile_host.Registered _ | Mobile_host.At_home ->
             if
               Time.(
                 diff (now t) mh.Mobile_host.last_advert > lifetime)
             then begin
               mh.Mobile_host.implicit_disconnects <-
                 mh.Mobile_host.implicit_disconnects + 1;
               (match Mobile_host.current_fa mh with
                | Some fa -> mh.Mobile_host.old_fa <- Some fa
                | None -> ());
               mh.Mobile_host.phase <- Mobile_host.Searching;
               tracef t "discovery"
                 "agent advertisements expired: searching";
               solicit t
             end
           | Mobile_host.Searching | Mobile_host.Registering _
           | Mobile_host.Disconnected -> ())
        | None -> ());
  (* Regional soft-state refresh ([Config.regional_lifetime]): re-send
     the binding at a fraction of its lifetime so it never expires while
     the host is alive.  The refresh doubles as a liveness probe — under
     a reliable control plane an unacked exchange is left to its
     retransmission loop (whose exhaustion triggers failover) rather
     than being superseded by the next refresh, which would reset the
     loop forever and mask the dead agent. *)
  if t.config.Config.hierarchy
     && (Time.to_us t.config.Config.regional_refresh > 0
         || Time.to_us t.config.Config.regional_lifetime > 0)
  then
    Engine.every (engine t) ~interval:(regional_refresh_interval t)
      (fun () ->
         if Node.is_up t.node then
           match t.mh with
           | Some mh -> begin
               match mh.Mobile_host.regional, mh.Mobile_host.phase with
               | Some regional, Mobile_host.Registered fa
                 when (not (Addr.is_zero fa))
                   && ((not t.config.Config.reliable_control)
                       || mh.Mobile_host.rr_acked >= mh.Mobile_host.rr_seq)
                 ->
                 register_with_region t mh ~regional ~foreign_agent:fa
               | None, Mobile_host.Registered fa
                 when (not (Addr.is_zero fa))
                   && mh.Mobile_host.reg_acked < mh.Mobile_host.reg_seq ->
                 (* Post-failover direct registration that the home agent
                    never confirmed — the whole region may have been
                    unreachable while its transit router was down.  Keep
                    re-sending at the refresh cadence (each attempt
                    supersedes the previous retry loop) until the home
                    agent answers, or delivery is never restored. *)
                 register_with_home_agent t mh ~foreign_agent:fa
               | _ -> ()
             end
           | None -> ())

(* --- movement (Section 3) --- *)

let leave_own_fa_mode t mh =
  match mh.Mobile_host.own_fa_temp with
  | None -> ()
  | Some temp ->
    Node.remove_address t.node temp;
    (match t.fa with
     | Some (fa_state, _) ->
       Foreign_agent.remove fa_state mh.Mobile_host.home
     | None -> ());
    mh.Mobile_host.own_fa_temp <- None

let move_to ~topo ?own_fa_temp t lan =
  match t.mh with
  | None -> invalid_arg "Agent.move_to: not a mobile host"
  | Some mh ->
    mh.Mobile_host.moves <- mh.Mobile_host.moves + 1;
    (match Mobile_host.current_fa mh with
     | Some fa when not (Addr.is_zero fa) -> mh.Mobile_host.old_fa <- Some fa
     | _ -> ());
    leave_own_fa_mode t mh;
    Net.Topology.move_host topo t.node lan;
    Node.set_routes t.node Net.Route.empty;
    match own_fa_temp with
    | None ->
      mh.Mobile_host.phase <- Mobile_host.Searching;
      tracef t "move" "to %s, soliciting" (Net.Lan.name lan);
      solicit t
    | Some temp ->
      (* Serve as own foreign agent at a temporary address (Section 2).
         Obtaining the address and gateway is outside the protocol; we
         model the result: the address is configured and a default route
         via an existing router on the LAN is known. *)
      if not (Ipv4.Addr.Prefix.mem temp (Net.Lan.prefix lan)) then
        invalid_arg "Agent.move_to: temporary address not in LAN prefix";
      Node.add_address t.node temp;
      mh.Mobile_host.own_fa_temp <- Some temp;
      let i, _ = current_iface t in
      enable_foreign_agent t ~iface:i;
      (match t.fa with
       | Some (fa_state, _) ->
         Foreign_agent.add fa_state
           { Foreign_agent.mobile = mh.Mobile_host.home;
             mac = Some (Node.iface_mac t.node i); iface = i }
       | None -> ());
      let gateway =
        List.find_map
          (fun n ->
             if Node.is_router n && not (Node.name n = Node.name t.node)
             then
               List.find_map
                 (fun (_, l, addr) -> if l == lan then addr else None)
                 (Node.ifaces n)
             else None)
          (Net.Topology.nodes topo)
      in
      (match gateway with
       | None -> invalid_arg "Agent.move_to: no router on target LAN"
       | Some gw ->
         Node.set_routes t.node
           (Net.Route.add_default
              (Net.Route.add Net.Route.empty (Net.Lan.prefix lan)
                 (Net.Route.Direct i))
              (Net.Route.Via gw)));
      mh.Mobile_host.phase <- Mobile_host.Registering temp;
      tracef t "move" "to %s as own fa %a" (Net.Lan.name lan) Addr.pp temp;
      withdraw_regional t mh;
      register_with_home_agent t mh ~foreign_agent:temp;
      complete_registration t mh ~foreign_agent:temp

let disconnect t =
  match t.mh with
  | None -> invalid_arg "Agent.disconnect: not a mobile host"
  | Some mh ->
    tracef t "move" "explicit disconnect";
    (match Mobile_host.current_fa mh with
     | Some fa when not (Addr.is_zero fa) -> mh.Mobile_host.old_fa <- Some fa
     | _ -> ());
    leave_own_fa_mode t mh;
    withdraw_regional t mh;
    (* Home agent first, then the old foreign agent (Section 3). *)
    register_with_home_agent t mh ~foreign_agent:disconnected_marker;
    notify_old_fa t mh ~new_foreign_agent:Addr.zero;
    mh.Mobile_host.phase <- Mobile_host.Disconnected
