(** MHRP control messages: registration and (dis)connect notifications.

    Section 3 specifies when a mobile host notifies its home agent and its
    old/new foreign agents but not the message encoding; we carry these
    notifications as UDP datagrams on a well-known port, the choice Mobile
    IP later standardised (port 434). *)

val port : int
(** 434. *)

type t =
  | Reg_request of { mobile : Ipv4.Addr.t; foreign_agent : Ipv4.Addr.t }
      (** Mobile host -> home agent.  A zero foreign agent means
          "reconnecting to my home network" (Section 3). *)
  | Reg_reply of { mobile : Ipv4.Addr.t; accepted : bool }
      (** Home agent -> mobile host. *)
  | Fa_connect of { mobile : Ipv4.Addr.t; mac : Net.Mac.t }
      (** Mobile host -> new foreign agent, carrying the link address the
          agent will deliver to (Section 2: "saved from the connection
          notification message"). *)
  | Fa_connect_ack of { mobile : Ipv4.Addr.t }
  | Fa_disconnect of { mobile : Ipv4.Addr.t; new_foreign_agent : Ipv4.Addr.t }
      (** Mobile host -> old foreign agent.  A non-zero new agent lets the
          old agent keep a forwarding-pointer cache entry (Section 2). *)
  | Ha_sync of { mobile : Ipv4.Addr.t; foreign_agent : Ipv4.Addr.t }
      (** Home agent -> replica home agent: mirror a registration so the
          replicas "provide a consistent view of the database"
          (Section 2).  Never re-propagated. *)
  | Ha_sync_ack of { mobile : Ipv4.Addr.t }
      (** Replica -> originating home agent: confirm a mirrored
          registration, enabling retransmission of lost syncs when the
          control plane runs reliably ([Config.reliable_control]). *)
  | Fa_connect_ack_r of
      { mobile : Ipv4.Addr.t;
        regional : Ipv4.Addr.t;
        backup : Ipv4.Addr.t }
      (** Foreign agent -> mobile host, replacing {!Fa_connect_ack} under
          [Config.hierarchy] when the agent has a regional parent: the
          connect is accepted and registrations should go through this
          regional agent.  [backup] is the standby regional agent the
          mobile should fail over to when the primary stops acking
          ([Ipv4.Addr.zero] when the region has none). *)
  | Reg_region of
      { mobile : Ipv4.Addr.t;
        foreign_agent : Ipv4.Addr.t;
        lifetime_s : int }
      (** Mobile host -> regional agent: bind the host to its current
          foreign agent within the region.  A zero foreign agent
          withdraws the binding (departure or return home).  This is the
          only registration an intra-region handoff sends — the home
          agent keeps pointing at the regional agent throughout.
          [lifetime_s] is the soft-state lifetime in seconds (u16 on the
          wire; 0 means the binding never expires) after which the
          regional agent evicts the binding unless refreshed. *)
  | Reg_region_ack of { mobile : Ipv4.Addr.t }
      (** Regional agent -> mobile host. *)
  | Fa_visitor_miss of { mobile : Ipv4.Addr.t; foreign_agent : Ipv4.Addr.t }
      (** Foreign agent -> regional agent: a tunneled packet arrived for a
          mobile that is not on the visitor list and does not answer an
          ARP probe on the cell.  The regional agent drops its binding if
          it still points at this foreign agent — the hierarchical
          counterpart of the flat path's ICMP bounce invalidation. *)
  | Region_sync of
      { mobile : Ipv4.Addr.t;
        foreign_agent : Ipv4.Addr.t;
        lifetime_s : int }
      (** Primary regional agent -> backup: mirror a binding so the backup
          can take over on a crash.  A zero foreign agent mirrors a
          withdrawal.  Retransmitted under [Config.reliable_control] until
          {!Region_sync_ack} arrives. *)
  | Region_sync_ack of { mobile : Ipv4.Addr.t }
      (** Backup -> primary regional agent. *)
  | Region_forward of { mobile : Ipv4.Addr.t; new_regional : Ipv4.Addr.t }
      (** Mobile host -> old regional agent on an inter-region handoff:
          instead of withdrawing outright, leave a grace-period forwarding
          pointer ([Config.regional_grace]) so in-flight packets are
          re-tunneled to the new region instead of dropped. *)

val mobile : t -> Ipv4.Addr.t
(** The mobile host the message is about — the key under which its
    security association is looked up when authentication is on. *)

val encode : t -> bytes
val decode : bytes -> t option
(** [None] on malformed input.  Trailing bytes beyond the message are
    ignored, so an appended authentication extension decodes cleanly. *)

val pp : Format.formatter -> t -> unit
