(** Per-destination rate limiting of location update messages.

    Section 4.3: because not all hosts implement MHRP, a sender of
    location updates "must provide some mechanism for limiting the rate at
    which it sends these messages to any single IP address", suggesting a
    bounded list of (address, last-sent time) with LRU replacement —
    exactly what this is. *)

type t

val create : capacity:int -> min_interval:Netsim.Time.t -> t

val allow : t -> now:Netsim.Time.t -> Ipv4.Addr.t -> bool
(** True (recording the send) if at least [min_interval] has passed since
    the last allowed send to this address — or if the address aged out of
    the LRU list, which deliberately errs on the side of sending. *)

val suppressed : t -> int
(** Sends refused so far. *)

val allowed : t -> int

val size : t -> int
(** Addresses still inside their quiet period: entries older than
    [min_interval] (which can no longer suppress anything) are purged
    lazily on each {!allow}, so this does not overstate active senders. *)
