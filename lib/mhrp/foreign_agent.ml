type visitor = {
  mobile : Ipv4.Addr.t;
  mac : Net.Mac.t option;
  iface : int;
}

type t = { tbl : (Ipv4.Addr.t, visitor) Hashtbl.t }

let create () = { tbl = Hashtbl.create 8 }
let add t v = Hashtbl.replace t.tbl v.mobile v
let remove t mobile = Hashtbl.remove t.tbl mobile
let find t mobile = Hashtbl.find_opt t.tbl mobile
let mem t mobile = Hashtbl.mem t.tbl mobile

let visitors t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.tbl []
  |> List.sort (fun a b -> Ipv4.Addr.compare a.mobile b.mobile)

let clear t = Hashtbl.reset t.tbl
let count t = Hashtbl.length t.tbl
let state_bytes t = 12 * Hashtbl.length t.tbl
