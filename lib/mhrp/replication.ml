type t = {
  agents : Agent.t list;
  mutable syncs : int;
}

let group agents =
  (match agents with
   | [] -> invalid_arg "Replication.group: empty group"
   | _ -> ());
  List.iter
    (fun a ->
       if Agent.home_agent a = None then
         invalid_arg "Replication.group: member is not a home agent")
    agents;
  let t = { agents; syncs = 0 } in
  List.iter
    (fun a ->
       Agent.on_registration a (fun ~mobile ~foreign_agent ->
           List.iter
             (fun peer ->
                if peer != a then begin
                  t.syncs <- t.syncs + 1;
                  (* mirror over the wire: replicas may sit anywhere on
                     the organisation's network *)
                  Net.Node.send (Agent.node a)
                    (Ipv4.Packet.make ~proto:Ipv4.Proto.udp
                       ~src:(Agent.address a) ~dst:(Agent.address peer)
                       (Agent.control_datagram a
                          (Control.Ha_sync { mobile; foreign_agent })))
                end)
             t.agents))
    agents;
  t

let members t = t.agents

let add_mobile t mobile = List.iter (fun a -> Agent.add_mobile a mobile) t.agents

let sync_messages t = t.syncs

let consistent t mobile =
  let locations =
    List.filter_map
      (fun a ->
         match Agent.home_agent a with
         | Some ha -> Home_agent.location ha mobile
         | None -> None)
    t.agents
  in
  match locations with
  | [] -> false
  | first :: rest -> List.for_all (Ipv4.Addr.equal first) rest
