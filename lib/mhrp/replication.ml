type t = {
  agents : Agent.t list;
  mutable syncs : int;
  (* Reliable control plane: one outstanding sync per (origin, peer,
     mobile), tagged with a generation so a newer registration for the
     same mobile host supersedes the retransmission loop of the old one. *)
  pending : (Ipv4.Addr.t * Ipv4.Addr.t * Ipv4.Addr.t, int) Hashtbl.t;
  mutable gen : int;
}

let sync_datagram a ~mobile ~foreign_agent ~peer =
  Ipv4.Packet.make ~proto:Ipv4.Proto.udp ~src:(Agent.address a)
    ~dst:(Agent.address peer)
    (Agent.control_datagram a (Control.Ha_sync { mobile; foreign_agent }))

let mirror t a peer ~mobile ~foreign_agent =
  t.syncs <- t.syncs + 1;
  (* mirror over the wire: replicas may sit anywhere on the
     organisation's network *)
  Net.Node.send (Agent.node a) (sync_datagram a ~mobile ~foreign_agent ~peer);
  let config = Agent.config a in
  if config.Config.reliable_control then begin
    t.gen <- t.gen + 1;
    let gen = t.gen in
    let key = (Agent.address a, Agent.address peer, mobile) in
    Hashtbl.replace t.pending key gen;
    let node = Agent.node a in
    let counters = Agent.counters a in
    let engine = Net.Node.engine node in
    let rec arm ~delay ~retries_left =
      ignore
        (Netsim.Engine.schedule_after engine ~delay (fun () ->
             if Net.Node.is_up node
                && Hashtbl.find_opt t.pending key = Some gen
             then
               if retries_left <= 0 then begin
                 counters.Counters.retransmit_gave_up <-
                   counters.Counters.retransmit_gave_up + 1;
                 Hashtbl.remove t.pending key
               end
               else begin
                 counters.Counters.sync_retransmissions <-
                   counters.Counters.sync_retransmissions + 1;
                 Net.Node.send node
                   (sync_datagram a ~mobile ~foreign_agent ~peer);
                 arm ~delay:(Netsim.Time.add delay delay)
                   ~retries_left:(retries_left - 1)
               end))
    in
    arm ~delay:config.Config.control_rto
      ~retries_left:config.Config.control_retries
  end

let group agents =
  (match agents with
   | [] -> invalid_arg "Replication.group: empty group"
   | _ -> ());
  List.iter
    (fun a ->
       if Agent.home_agent a = None then
         invalid_arg "Replication.group: member is not a home agent")
    agents;
  let t = { agents; syncs = 0; pending = Hashtbl.create 16; gen = 0 } in
  List.iter
    (fun a ->
       Agent.on_registration a (fun ~mobile ~foreign_agent ->
           List.iter
             (fun peer ->
                if peer != a then mirror t a peer ~mobile ~foreign_agent)
             t.agents);
       Agent.on_ha_sync_ack a (fun ~peer ~mobile ->
           Hashtbl.remove t.pending (Agent.address a, peer, mobile)))
    agents;
  t

let members t = t.agents

let add_mobile t mobile = List.iter (fun a -> Agent.add_mobile a mobile) t.agents

let sync_messages t = t.syncs

let consistent t mobile =
  let locations =
    List.filter_map
      (fun a ->
         match Agent.home_agent a with
         | Some ha -> Home_agent.location ha mobile
         | None -> None)
    t.agents
  in
  match locations with
  | [] -> false
  | first :: rest -> List.for_all (Ipv4.Addr.equal first) rest
