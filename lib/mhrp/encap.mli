(** The MHRP encapsulation transformations (Sections 4.1 and 4.4).

    Unlike typical encapsulation protocols, MHRP does not wrap the packet
    in a complete new IP header: it edits the necessary fields of the
    existing header and inserts the small MHRP header between the IP header
    and the transport header.  These are pure functions on {!Ipv4.Packet}
    values; the agents drive them and perform the message sends they call
    for. *)

val tunnel_by_sender :
  foreign_agent:Ipv4.Addr.t -> Ipv4.Packet.t -> Ipv4.Packet.t
(** Section 4.1, built by the original sender (a cache agent with a hit):
    protocol and destination move into the MHRP header, the source is kept,
    the previous-source list is empty — 8 bytes of overhead. *)

val tunnel_by_agent :
  agent:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> Ipv4.Packet.t ->
  Ipv4.Packet.t
(** Section 4.1, built by the home agent or an intermediate cache agent:
    additionally the original source moves into the previous-source list
    and the agent becomes the IP source — 12 bytes of overhead. *)

val is_tunneled : Ipv4.Packet.t -> bool

val header_of : Ipv4.Packet.t -> Mhrp_header.t option
(** The MHRP header of a tunneled packet, if well-formed. *)

val detunnel : Ipv4.Packet.t -> (Ipv4.Packet.t * Mhrp_header.t) option
(** Section 4.4 at the correct foreign agent: strip the MHRP header and
    reconstruct the original packet (source from the first list entry when
    the header was agent-built).  [None] if the packet is not a
    well-formed MHRP packet. *)

type retunnel_result =
  | Retunneled of Ipv4.Packet.t
  | Retunneled_overflow of {
      packet : Ipv4.Packet.t;
      notify : Ipv4.Addr.t list;
      (** The truncated-away list entries: Section 4.4 requires a location
          update to each before the list is reset. *)
    }
  | Loop_detected of { members : Ipv4.Addr.t list }
      (** This node's address was already in the list (Section 5.3): the
          addresses that form the loop, each owed a cache-delete update. *)

val retunnel :
  max_prev_sources:int -> me:Ipv4.Addr.t -> new_dst:Ipv4.Addr.t ->
  Ipv4.Packet.t -> retunnel_result option
(** Section 4.4 at a stale foreign agent (or the home agent forwarding a
    bounced packet): append the incoming tunnel head to the list (with the
    overflow fan-out when full), make this agent the IP source and
    [new_dst] — the next foreign agent or the mobile host's home address —
    the IP destination.  [None] if the packet is not MHRP. *)

val added_bytes : original:Ipv4.Packet.t -> tunneled:Ipv4.Packet.t -> int
(** Wire-size difference — the overhead the paper quotes as 8/12 bytes. *)

(** {1 Zero-copy wire-level encap/decap}

    Pool-backed equivalents of {!tunnel_by_sender}, {!tunnel_by_agent}
    and {!detunnel} that never build an {!Ipv4.Packet.t}: they read the
    original through an {!Ipv4.Packet.View}, draw an exact-size buffer
    from an {!Ipv4.Buffer_pool}, write the new headers directly and blit
    the transport payload once.  The produced bytes are byte-identical
    to encoding the record-path result (QCheck-verified), so the two
    paths are freely interchangeable on the wire.

    All three require an option-free original ([View.has_options v =
    false]) and raise [Invalid_argument] otherwise — the record path
    preserves IP options in the rebuilt envelope, which a fixed-layout
    single blit cannot; callers fall back to the record path for those.
    The returned buffer is owned by the caller until handed to a frame
    (DESIGN.md Section 11). *)

val tunnel_by_sender_into :
  pool:Ipv4.Buffer_pool.t -> foreign_agent:Ipv4.Addr.t ->
  Ipv4.Packet.View.t -> bytes
(** Wire bytes of [tunnel_by_sender ~foreign_agent (View.decode v)]. *)

val tunnel_by_agent_into :
  pool:Ipv4.Buffer_pool.t -> agent:Ipv4.Addr.t ->
  foreign_agent:Ipv4.Addr.t -> Ipv4.Packet.View.t -> bytes
(** Wire bytes of [tunnel_by_agent ~agent ~foreign_agent (View.decode v)]. *)

val detunnel_into :
  pool:Ipv4.Buffer_pool.t -> Ipv4.Packet.View.t ->
  (bytes * Mhrp_header.t) option
(** Wire bytes of the reconstructed original, paired with the parsed
    MHRP header: [detunnel (View.decode v)] with the packet encoded.
    [None] exactly when the record path returns [None] (not MHRP,
    truncated or checksum-corrupt MHRP header). *)
