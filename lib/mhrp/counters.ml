type t = {
  mutable tunnels_built : int;
  mutable retunnels : int;
  mutable detunnels : int;
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable loops_detected : int;
  mutable loops_dissolved : int;
  mutable list_truncations : int;
  mutable registrations : int;
  mutable fa_connects : int;
  mutable fa_disconnects : int;
  mutable intercepts : int;
  mutable icmp_errors_reversed : int;
  mutable recoveries : int;
  mutable control_messages : int;
  mutable auth_ok : int;
  mutable auth_fail : int;
  mutable replay_drop : int;
  mutable reg_retransmissions : int;
  mutable connect_retransmissions : int;
  mutable sync_retransmissions : int;
  mutable retransmit_gave_up : int;
  mutable regional_registrations : int;
  mutable regional_retunnels : int;
  mutable region_retransmissions : int;
  mutable regional_forwards : int;
  mutable regional_invalidations : int;
  mutable regional_expirations : int;
  mutable region_failovers : int;
  mutable region_sync_retransmissions : int;
  mutable region_takeovers : int;
}

let create () =
  { tunnels_built = 0; retunnels = 0; detunnels = 0; updates_sent = 0;
    updates_received = 0; loops_detected = 0; loops_dissolved = 0;
    list_truncations = 0; registrations = 0; fa_connects = 0;
    fa_disconnects = 0; intercepts = 0; icmp_errors_reversed = 0;
    recoveries = 0; control_messages = 0; auth_ok = 0; auth_fail = 0;
    replay_drop = 0; reg_retransmissions = 0; connect_retransmissions = 0;
    sync_retransmissions = 0; retransmit_gave_up = 0;
    regional_registrations = 0; regional_retunnels = 0;
    region_retransmissions = 0; regional_forwards = 0;
    regional_invalidations = 0; regional_expirations = 0;
    region_failovers = 0; region_sync_retransmissions = 0;
    region_takeovers = 0 }

let total_overhead_messages t = t.control_messages

let pp ppf t =
  Format.fprintf ppf
    "tunnels=%d retunnels=%d detunnels=%d updates=%d/%d loops=%d/%d \
     trunc=%d reg=%d fa+=%d fa-=%d intercepts=%d icmp-rev=%d recov=%d \
     ctrl=%d auth=%d/%d replay=%d rtx=%d/%d/%d gave-up=%d \
     regional=%d/%d rrtx=%d rfwd=%d rinv=%d rexp=%d rfail=%d rsrtx=%d \
     rtake=%d"
    t.tunnels_built t.retunnels t.detunnels t.updates_sent
    t.updates_received t.loops_detected t.loops_dissolved
    t.list_truncations t.registrations t.fa_connects t.fa_disconnects
    t.intercepts t.icmp_errors_reversed t.recoveries t.control_messages
    t.auth_ok t.auth_fail t.replay_drop t.reg_retransmissions
    t.connect_retransmissions t.sync_retransmissions t.retransmit_gave_up
    t.regional_registrations t.regional_retunnels t.region_retransmissions
    t.regional_forwards t.regional_invalidations t.regional_expirations
    t.region_failovers t.region_sync_retransmissions t.region_takeovers
