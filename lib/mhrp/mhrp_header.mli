(** The MHRP encapsulation header (Figure 3).

    Inserted between the IP header and the transport header when a packet
    is tunneled (Figure 2).  Wire layout (8 + 4·count bytes):

    {v
    0        1        2                 3
    +--------+--------+--------+--------+
    | count  | oproto |  header checksum|
    +--------+--------+--------+--------+
    |      IP address of mobile host    |
    +-----------------------------------+
    |  previous IP source address 1     |
    |  ...                              |
    +-----------------------------------+
    v}

    The paper's Figure 3 fixes the field set (count, checksum, original
    protocol, mobile host address, previous-source list) and the sizes
    (8 octets empty, 12 with one entry, +4 per entry); the exact byte order
    within the fixed part is our choice.

    [prev_sources] is ordered oldest first: entry 0 is the original sender
    when the header was built by an agent rather than the sender
    (Section 4.1); each later entry is the head of a previous tunnel
    (Section 4.4). *)

type t = {
  orig_proto : Ipv4.Proto.t;
  mobile : Ipv4.Addr.t;
  prev_sources : Ipv4.Addr.t list;
}

val fixed_length : int
(** 8. *)

val length : t -> int
(** 8 + 4·|prev_sources|. *)

val make :
  ?prev_sources:Ipv4.Addr.t list -> orig_proto:Ipv4.Proto.t ->
  mobile:Ipv4.Addr.t -> unit -> t

val append_source : t -> Ipv4.Addr.t -> [ `Ok of t | `Full ]
(** Add a tunnel head to the list, refusing beyond [max] entries — the
    caller then performs the truncation fan-out of Section 4.4.  [max] is
    supplied by {!truncate}. *)

val append_source_max : max:int -> t -> Ipv4.Addr.t -> [ `Ok of t | `Full ]

val truncate : t -> Ipv4.Addr.t -> t
(** Section 4.4 overflow step: reset the list to exactly the new single
    entry. *)

val mem_source : t -> Ipv4.Addr.t -> bool
(** Loop detection test (Section 5.3). *)

val original_sender : t -> Ipv4.Addr.t option
(** First list entry, when the header was built by an agent. *)

val drop_last_source : t -> (t * Ipv4.Addr.t) option
(** Remove the newest list entry — the reversal step of the ICMP
    error-handling procedure (Section 4.5). *)

val encode : t -> bytes -> bytes
(** [encode t transport] is the tunneled packet payload: MHRP header
    followed by the original transport bytes. *)

val decode : bytes -> t * bytes
(** Inverse of [encode].  Raises [Invalid_argument] on truncation or
    checksum mismatch. *)

val decode_prefix : bytes -> (t * int) option
(** Parse just the header from a (possibly truncated) payload, returning
    it with its length — used on the quoted packet inside ICMP errors,
    which may carry only part of the original (Section 4.5).  [None] if
    even the header is incomplete or corrupt. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
