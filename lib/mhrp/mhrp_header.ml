type t = {
  orig_proto : Ipv4.Proto.t;
  mobile : Ipv4.Addr.t;
  prev_sources : Ipv4.Addr.t list;
}

let fixed_length = 8
let length t = fixed_length + (4 * List.length t.prev_sources)

let make ?(prev_sources = []) ~orig_proto ~mobile () =
  { orig_proto; mobile; prev_sources }

let append_source_max ~max t addr =
  if List.length t.prev_sources >= max then `Full
  else `Ok { t with prev_sources = t.prev_sources @ [addr] }

let append_source t addr = append_source_max ~max:max_int t addr

let truncate t addr = { t with prev_sources = [addr] }

let mem_source t addr = List.exists (Ipv4.Addr.equal addr) t.prev_sources

let original_sender t =
  match t.prev_sources with [] -> None | a :: _ -> Some a

let drop_last_source t =
  match List.rev t.prev_sources with
  | [] -> None
  | last :: rest ->
    Some ({ t with prev_sources = List.rev rest }, last)

let put_u8 buf i v = Bytes.set buf i (Char.chr (v land 0xFF))

let put_addr buf i a =
  let v = Ipv4.Addr.to_int a in
  put_u8 buf i (v lsr 24);
  put_u8 buf (i + 1) (v lsr 16);
  put_u8 buf (i + 2) (v lsr 8);
  put_u8 buf (i + 3) v

let get_u8 buf i = Char.code (Bytes.get buf i)

let get_addr buf i =
  Ipv4.Addr.of_int
    ((get_u8 buf i lsl 24) lor (get_u8 buf (i + 1) lsl 16)
     lor (get_u8 buf (i + 2) lsl 8) lor get_u8 buf (i + 3))

let encode t transport =
  let count = List.length t.prev_sources in
  if count > 255 then invalid_arg "Mhrp_header.encode: list too long";
  let hlen = length t in
  let buf = Bytes.make (hlen + Bytes.length transport) '\000' in
  put_u8 buf 0 count;
  put_u8 buf 1 t.orig_proto;
  (* checksum at 2..3 *)
  put_addr buf 4 t.mobile;
  List.iteri (fun i a -> put_addr buf (8 + (4 * i)) a) t.prev_sources;
  Ipv4.Checksum.set buf ~at:2 ~off:0 ~len:hlen;
  Bytes.blit transport 0 buf hlen (Bytes.length transport);
  buf

let parse buf =
  if Bytes.length buf < fixed_length then None
  else begin
    let count = get_u8 buf 0 in
    let hlen = fixed_length + (4 * count) in
    if Bytes.length buf < hlen then None
    else if not (Ipv4.Checksum.valid ~off:0 ~len:hlen buf) then None
    else begin
      let prev_sources =
        List.init count (fun i -> get_addr buf (8 + (4 * i)))
      in
      Some
        ({ orig_proto = get_u8 buf 1; mobile = get_addr buf 4;
           prev_sources },
         hlen)
    end
  end

let decode buf =
  match parse buf with
  | None -> invalid_arg "Mhrp_header.decode: truncated or corrupt"
  | Some (t, hlen) -> (t, Bytes.sub buf hlen (Bytes.length buf - hlen))

let decode_prefix = parse

let equal a b =
  a.orig_proto = b.orig_proto
  && Ipv4.Addr.equal a.mobile b.mobile
  && List.length a.prev_sources = List.length b.prev_sources
  && List.for_all2 Ipv4.Addr.equal a.prev_sources b.prev_sources

let pp ppf t =
  Format.fprintf ppf "mhrp{proto=%a mobile=%a prev=[%s]}" Ipv4.Proto.pp
    t.orig_proto Ipv4.Addr.pp t.mobile
    (String.concat ";" (List.map Ipv4.Addr.to_string t.prev_sources))
