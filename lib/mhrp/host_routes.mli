(** Host-specific route operation (Section 3).

    "It may also be possible to support an entire routing domain with one
    (or more) home agents or foreign agents by selectively using
    host-specific IP routes": while a mobile host is away, its home agent
    advertises a host route for it {e within the home routing domain}, so
    packets anywhere in the domain reach the home agent without an agent
    on every network; a visiting mobile host's route is likewise
    advertised within the visited domain.  Such routes "would not be
    propagated outside that routing domain".

    We model the intra-domain routing protocol's effect directly: every
    router in the domain copies its existing next hop toward the
    advertisement's origin as a host-specific route for the mobile host. *)

val advertise :
  domain:Net.Node.t list -> mobile:Ipv4.Addr.t -> towards:Ipv4.Addr.t ->
  unit
(** Install, on every domain router that can already reach [towards], a
    host route for [mobile] with the same next hop it uses for
    [towards].  Nodes with no route toward the origin are skipped. *)

val withdraw : domain:Net.Node.t list -> mobile:Ipv4.Addr.t -> unit
(** Remove the host routes ("advertised only while the mobile host was
    disconnected from its home network"). *)

val advertised : domain:Net.Node.t list -> mobile:Ipv4.Addr.t -> int
(** Number of domain routers currently holding a host route for the
    mobile host. *)
