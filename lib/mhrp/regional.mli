(** Regional-agent binding table ([Config.hierarchy]).

    Under hierarchical registration — regional foreign-agent aggregation
    in the spirit of the ROADMAP's H-MLBN item — the home agent records a
    mobile host as visiting its {e regional} agent, and this table holds
    the second hop: which foreign agent inside the region currently
    serves the host.  Intra-region handoffs rewrite only this binding;
    the home agent and every external location cache keep pointing at
    the regional agent, so a region's mobile population costs the rest
    of the internetwork one entry and zero control messages per local
    handoff.

    Bindings are soft state: a registration may carry an absolute expiry
    ([Config.regional_lifetime]), after which {!expire} evicts it unless
    the mobile refreshed — lost withdrawals and dead foreign agents
    self-heal.  Inter-region handoffs can leave a short-lived forwarding
    pointer ({!set_forward}) so in-flight packets chase the mobile to its
    new regional agent.  Pure state; {!Agent} drives it and owns the
    timers. *)

type t

val create : unit -> t

val register :
  t ->
  ?expires_at:Netsim.Time.t ->
  mobile:Ipv4.Addr.t ->
  foreign_agent:Ipv4.Addr.t ->
  unit ->
  [ `Fresh | `Refresh ]
(** Bind the mobile host to a foreign agent inside the region.  [`Fresh]
    when the binding is new or moved (counted in {!registrations});
    [`Refresh] when it is unchanged (counted in {!refreshes} — a pure
    keep-alive must not inflate the handoff counters E19 gates).  Either
    way [expires_at] (re)arms the binding's expiry; omitting it makes the
    binding hard state.  Raises [Invalid_argument] on a zero foreign
    agent — that means {!withdraw}. *)

val withdraw : t -> Ipv4.Addr.t -> unit
(** Drop the binding (host left the region or returned home). *)

val invalidate : t -> mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> bool
(** Drop the binding {e only if} it currently points at [foreign_agent] —
    the visitor-list-miss bounce: that agent reported it no longer serves
    the host, but a racing re-registration to a different agent must
    win.  Returns whether a binding was dropped. *)

val find : t -> Ipv4.Addr.t -> Ipv4.Addr.t option

val expires_at : t -> Ipv4.Addr.t -> Netsim.Time.t option
(** The binding's current expiry, if it has a lifetime. *)

val expire : t -> now:Netsim.Time.t -> (Ipv4.Addr.t * Ipv4.Addr.t) list
(** Evict every binding whose lifetime has passed; returns the evicted
    (mobile, foreign agent) pairs sorted by mobile address.  O(lifetimed
    bindings) — intended for a periodic sweep, not the data path. *)

val set_forward :
  t ->
  mobile:Ipv4.Addr.t ->
  new_regional:Ipv4.Addr.t ->
  expires_at:Netsim.Time.t ->
  unit
(** Install a grace-period forwarding pointer: packets tunneled here for
    [mobile] should be re-tunneled to [new_regional] until
    [expires_at]. *)

val forward : t -> now:Netsim.Time.t -> Ipv4.Addr.t -> Ipv4.Addr.t option
(** The live forwarding pointer for a departed mobile, if any.  An
    expired pointer is removed on lookup and reported as [None]. *)

val forwards_size : t -> int
(** Live + not-yet-swept forwarding pointers. *)

val size : t -> int

val clear : t -> unit
(** Drop every binding, lifetime and forwarding pointer (reboot: the
    table is soft state, rebuilt by re-registrations), keeping the
    counters. *)

val bindings : t -> (Ipv4.Addr.t * Ipv4.Addr.t) list
(** (mobile, foreign agent), sorted by mobile address. *)

val registrations : t -> int
(** Bindings written fresh or moved (intra-region registrations absorbed
    here instead of reaching the home agent — E19's aggregation metric).
    Pure refreshes are counted separately in {!refreshes}. *)

val refreshes : t -> int
(** Keep-alive re-registrations that left the binding unchanged. *)

val withdrawals : t -> int

val expirations : t -> int
(** Bindings evicted by {!expire} (lifetime ran out unrefreshed). *)

val invalidations : t -> int
(** Bindings dropped by {!invalidate} (visitor-list-miss bounces). *)

val state_bytes : t -> int
(** Modeled 8 bytes per binding (two addresses), mirroring
    {!Home_agent.state_bytes}, plus 4 per lifetime and 8 per forwarding
    pointer. *)

val footprint_bytes : t -> int
(** Actual heap bytes pinned by the backing {!Ipv4.Int_table}s.  The
    lifetime and forwarding tables are allocated on first use, so a
    region that never uses failover pins the pre-failover byte count
    exactly. *)
