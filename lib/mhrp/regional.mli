(** Regional-agent binding table ([Config.hierarchy]).

    Under hierarchical registration — regional foreign-agent aggregation
    in the spirit of the ROADMAP's H-MLBN item — the home agent records a
    mobile host as visiting its {e regional} agent, and this table holds
    the second hop: which foreign agent inside the region currently
    serves the host.  Intra-region handoffs rewrite only this binding;
    the home agent and every external location cache keep pointing at
    the regional agent, so a region's mobile population costs the rest
    of the internetwork one entry and zero control messages per local
    handoff.  Pure state; {!Agent} drives it. *)

type t

val create : unit -> t

val register : t -> mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit
(** Bind the mobile host to a foreign agent inside the region.  Raises
    [Invalid_argument] on a zero foreign agent — that means
    {!withdraw}. *)

val withdraw : t -> Ipv4.Addr.t -> unit
(** Drop the binding (host left the region or returned home). *)

val find : t -> Ipv4.Addr.t -> Ipv4.Addr.t option
val size : t -> int

val clear : t -> unit
(** Drop every binding (reboot: the table is soft state, rebuilt by
    re-registrations), keeping the counters. *)

val bindings : t -> (Ipv4.Addr.t * Ipv4.Addr.t) list
(** (mobile, foreign agent), sorted by mobile address. *)

val registrations : t -> int
(** Bindings written (intra-region registrations absorbed here instead
    of reaching the home agent — E19's aggregation metric). *)

val withdrawals : t -> int

val state_bytes : t -> int
(** Modeled 8 bytes per binding (two addresses), mirroring
    {!Home_agent.state_bytes}. *)

val footprint_bytes : t -> int
(** Actual heap bytes pinned by the backing {!Ipv4.Int_table}. *)
