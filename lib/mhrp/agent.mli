(** The MHRP protocol engine: one instance per participating node.

    An agent composes the paper's roles on a single node — any combination
    of home agent, foreign agent, mobile host and cache agent (Section 2:
    "may be combined in different ways on one or more hosts or routers") —
    and installs the IP-stack hooks that realise them:

    - the MHRP protocol handler (tunneled-packet processing, Section 4.4);
    - the ICMP handler (location updates Section 4.3, returned errors
      Section 4.5, agent discovery Section 3);
    - the control-message handler (registrations, Section 3);
    - interception hooks and proxy ARP for home agents (Section 2);
    - forwarding hooks for router cache agents (Sections 4.3, 6.2).

    Every node that "implements MHRP" — including plain correspondent
    hosts that merely want to cache mobile locations — is an [Agent];
    hosts without one ignore location updates exactly as the paper's
    backward-compatibility argument requires. *)

type t

val create :
  ?config:Config.t -> ?cache_agent:bool -> ?snoop:bool -> Net.Node.t -> t
(** [cache_agent] (default true): maintain and use a location cache.
    [snoop] (default false): as a router, examine forwarded packets for
    location updates and cacheable destinations — the configuration
    option of Section 4.3. *)

val node : t -> Net.Node.t
val config : t -> Config.t
val counters : t -> Counters.t
val cache : t -> Location_cache.t
val limiter : t -> Rate_limiter.t
val address : t -> Ipv4.Addr.t

(** {1 Roles} *)

val enable_home_agent : t -> unit
val enable_foreign_agent : t -> iface:int -> unit
(** Serve visiting mobile hosts on the LAN of this interface. *)

val home_agent : t -> Home_agent.t option
val foreign_agent : t -> Foreign_agent.t option

val enable_regional_agent : ?backup:Ipv4.Addr.t -> t -> unit
(** Serve as the regional agent of a hierarchy ([Config.hierarchy]):
    maintain the region's mobile->foreign-agent binding table and
    re-tunnel arriving packets through it.  The home agent registers
    visiting hosts at this agent's address; intra-region handoffs only
    rewrite bindings here.  With a positive [Config.regional_lifetime], a
    periodic sweep evicts bindings whose soft-state lifetime ran out
    unrefreshed.  [backup] names a standby regional agent to mirror every
    binding write to ([Control.Region_sync], retransmitted under
    [Config.reliable_control]) so it can take the region over on a
    crash. *)

val set_regional_parent : ?backup:Ipv4.Addr.t -> t -> Ipv4.Addr.t -> unit
(** Foreign-agent role under hierarchy: the regional agent this foreign
    agent belongs to, handed to mobile hosts at connect time
    ([Control.Fa_connect_ack_r]) along with the region's standby agent
    [backup] when one is provisioned — the failover target mobiles use
    when the primary stops acknowledging.  Provisioning the tree is
    outside the protocol, like agent addresses themselves. *)

val regional_agent : t -> Regional.t option
val regional_parent : t -> Ipv4.Addr.t option

val add_mobile : t -> Ipv4.Addr.t -> unit
(** Home-agent role: begin serving this (initially at-home) mobile host.
    Raises [Failure] without the role. *)

val make_mobile : t -> home_agent:Ipv4.Addr.t -> unit
(** This node is a mobile host with the given home agent.  Its home
    address (the node's primary address) is kept claimed across moves. *)

val mobile : t -> Mobile_host.t option

(** {1 Mobile-host movement (Section 3)} *)

val move_to :
  topo:Net.Topology.t -> ?own_fa_temp:Ipv4.Addr.t -> t -> Net.Lan.t -> unit
(** Carry the host to another network: detach, attach, solicit agents, and
    register through whatever agent answers (recognising the home agent
    when the destination is the home network).  With [own_fa_temp], skip
    agent discovery and serve as own foreign agent at that temporary
    address (Section 2).  Notification order follows Section 3: new
    foreign agent, then home agent, then old foreign agent. *)

val disconnect : t -> unit
(** Planned disconnection: notify the home agent, then the old foreign
    agent (Section 3).  The home agent records the host as disconnected —
    we register the all-ones address, a value the paper leaves open — and
    answers subsequent traffic with host-unreachable errors. *)

(** {1 Data path} *)

val send : t -> Ipv4.Packet.t -> unit
(** Cache-aware send: tunnel straight to the foreign agent on a cache hit
    (Section 6.2), or authoritatively from the home-agent database;
    otherwise plain IP. *)

val send_udp :
  t -> ?src_port:int -> ?dst_port:int -> ?id:int -> dst:Ipv4.Addr.t ->
  bytes -> unit

val send_ping : t -> ?id:int -> ?seq:int -> dst:Ipv4.Addr.t -> unit -> unit

val on_app_receive : t -> (Ipv4.Packet.t -> unit) -> unit
(** Non-control traffic delivered to this node (after any
    decapsulation). *)

val on_location_update :
  t -> (mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit) -> unit

val on_registered : t -> (Ipv4.Addr.t -> unit) -> unit
(** Mobile host: registration completed with the given foreign agent
    (zero = home). *)

val on_registration :
  t -> (mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit) -> unit
(** Home agent: a mobile host (re)registered.  {!Replication} mirrors the
    database to replica home agents from this tap. *)

val register_mobile :
  t -> mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit
(** Apply a registration directly to this home agent's database, with its
    interception side effects but no reply — the entry point replica home
    agents use (Section 2's replicated home agents). *)

val on_icmp_error : t -> (Ipv4.Icmp.t -> Ipv4.Packet.t option -> unit) -> unit
(** An ICMP error reached this node as original sender; the packet is the
    reconstructed offending packet when enough of it was quoted. *)

val on_ha_sync_ack :
  t -> (peer:Ipv4.Addr.t -> mobile:Ipv4.Addr.t -> unit) -> unit
(** Home agent: a replica confirmed one of our [Ha_sync] messages
    ([Config.reliable_control]).  {!Replication} stops retransmitting the
    mirrored registration from this tap. *)

(** {1 Authentication (RFC 2002-style extension, experiment E15)}

    With [Config.authenticate] on, every control message and location
    update this agent originates carries an authentication extension
    (keyed MAC + timestamp + nonce) signed under the mobile host's
    security association, and every received one is verified {e before}
    any routing state mutates.  Verification outcomes land in
    [Counters.auth_ok]/[auth_fail]/[replay_drop] and, on rejection, in
    trace kinds ["auth-fail"] (control) and ["forged-update"] (location
    updates).  Messages about mobile hosts without an installed
    association are rejected. *)

val install_key :
  t -> mobile:Ipv4.Addr.t -> spi:int -> key:Auth.Siphash.key -> unit
(** Provision the security association for a mobile host (key
    distribution itself is outside the protocol, as in Mobile IP). *)

val sa_table : t -> Auth.Sa_table.t

val control_datagram : t -> Control.t -> bytes
(** The UDP datagram bytes (header + message + extension when
    authenticating) this agent would send for a control message — the
    real serializer, used by {!Replication} and the overhead
    measurements of E15. *)

(** {1 Internals exposed for tests and experiments} *)

val send_location_update :
  t -> dst:Ipv4.Addr.t -> mobile:Ipv4.Addr.t ->
  foreign_agent:Ipv4.Addr.t -> unit
(** Rate-limited (Section 4.3). *)

val solicit : t -> unit
(** Broadcast an agent solicitation on the node's interfaces. *)

val broadcast_advert : t -> unit
