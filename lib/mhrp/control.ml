let port = 434

type t =
  | Reg_request of { mobile : Ipv4.Addr.t; foreign_agent : Ipv4.Addr.t }
  | Reg_reply of { mobile : Ipv4.Addr.t; accepted : bool }
  | Fa_connect of { mobile : Ipv4.Addr.t; mac : Net.Mac.t }
  | Fa_connect_ack of { mobile : Ipv4.Addr.t }
  | Fa_disconnect of { mobile : Ipv4.Addr.t; new_foreign_agent : Ipv4.Addr.t }
  | Ha_sync of { mobile : Ipv4.Addr.t; foreign_agent : Ipv4.Addr.t }
  | Ha_sync_ack of { mobile : Ipv4.Addr.t }
  | Fa_connect_ack_r of
      { mobile : Ipv4.Addr.t;
        regional : Ipv4.Addr.t;
        backup : Ipv4.Addr.t }
  | Reg_region of
      { mobile : Ipv4.Addr.t;
        foreign_agent : Ipv4.Addr.t;
        lifetime_s : int }
  | Reg_region_ack of { mobile : Ipv4.Addr.t }
  | Fa_visitor_miss of { mobile : Ipv4.Addr.t; foreign_agent : Ipv4.Addr.t }
  | Region_sync of
      { mobile : Ipv4.Addr.t;
        foreign_agent : Ipv4.Addr.t;
        lifetime_s : int }
  | Region_sync_ack of { mobile : Ipv4.Addr.t }
  | Region_forward of { mobile : Ipv4.Addr.t; new_regional : Ipv4.Addr.t }

let put_u8 buf i v = Bytes.set buf i (Char.chr (v land 0xFF))

let put_addr buf i a =
  let v = Ipv4.Addr.to_int a in
  put_u8 buf i (v lsr 24);
  put_u8 buf (i + 1) (v lsr 16);
  put_u8 buf (i + 2) (v lsr 8);
  put_u8 buf (i + 3) v

let put_mac buf i m =
  let v = Net.Mac.to_int m in
  for k = 0 to 5 do
    put_u8 buf (i + k) (v lsr ((5 - k) * 8))
  done

let get_u8 buf i = Char.code (Bytes.get buf i)

let get_addr buf i =
  Ipv4.Addr.of_int
    ((get_u8 buf i lsl 24) lor (get_u8 buf (i + 1) lsl 16)
     lor (get_u8 buf (i + 2) lsl 8) lor get_u8 buf (i + 3))

let get_mac buf i =
  let v = ref 0 in
  for k = 0 to 5 do
    v := (!v lsl 8) lor get_u8 buf (i + k)
  done;
  Net.Mac.of_int !v

let encode = function
  | Reg_request { mobile; foreign_agent } ->
    let buf = Bytes.make 9 '\000' in
    put_u8 buf 0 1;
    put_addr buf 1 mobile;
    put_addr buf 5 foreign_agent;
    buf
  | Reg_reply { mobile; accepted } ->
    let buf = Bytes.make 6 '\000' in
    put_u8 buf 0 2;
    put_addr buf 1 mobile;
    put_u8 buf 5 (if accepted then 1 else 0);
    buf
  | Fa_connect { mobile; mac } ->
    let buf = Bytes.make 11 '\000' in
    put_u8 buf 0 3;
    put_addr buf 1 mobile;
    put_mac buf 5 mac;
    buf
  | Fa_connect_ack { mobile } ->
    let buf = Bytes.make 5 '\000' in
    put_u8 buf 0 4;
    put_addr buf 1 mobile;
    buf
  | Fa_disconnect { mobile; new_foreign_agent } ->
    let buf = Bytes.make 9 '\000' in
    put_u8 buf 0 5;
    put_addr buf 1 mobile;
    put_addr buf 5 new_foreign_agent;
    buf
  | Ha_sync { mobile; foreign_agent } ->
    let buf = Bytes.make 9 '\000' in
    put_u8 buf 0 6;
    put_addr buf 1 mobile;
    put_addr buf 5 foreign_agent;
    buf
  | Ha_sync_ack { mobile } ->
    let buf = Bytes.make 5 '\000' in
    put_u8 buf 0 7;
    put_addr buf 1 mobile;
    buf
  | Fa_connect_ack_r { mobile; regional; backup } ->
    let buf = Bytes.make 13 '\000' in
    put_u8 buf 0 8;
    put_addr buf 1 mobile;
    put_addr buf 5 regional;
    put_addr buf 9 backup;
    buf
  | Reg_region { mobile; foreign_agent; lifetime_s } ->
    let buf = Bytes.make 11 '\000' in
    put_u8 buf 0 9;
    put_addr buf 1 mobile;
    put_addr buf 5 foreign_agent;
    put_u8 buf 9 (lifetime_s lsr 8);
    put_u8 buf 10 lifetime_s;
    buf
  | Reg_region_ack { mobile } ->
    let buf = Bytes.make 5 '\000' in
    put_u8 buf 0 10;
    put_addr buf 1 mobile;
    buf
  | Fa_visitor_miss { mobile; foreign_agent } ->
    let buf = Bytes.make 9 '\000' in
    put_u8 buf 0 11;
    put_addr buf 1 mobile;
    put_addr buf 5 foreign_agent;
    buf
  | Region_sync { mobile; foreign_agent; lifetime_s } ->
    let buf = Bytes.make 11 '\000' in
    put_u8 buf 0 12;
    put_addr buf 1 mobile;
    put_addr buf 5 foreign_agent;
    put_u8 buf 9 (lifetime_s lsr 8);
    put_u8 buf 10 lifetime_s;
    buf
  | Region_sync_ack { mobile } ->
    let buf = Bytes.make 5 '\000' in
    put_u8 buf 0 13;
    put_addr buf 1 mobile;
    buf
  | Region_forward { mobile; new_regional } ->
    let buf = Bytes.make 9 '\000' in
    put_u8 buf 0 14;
    put_addr buf 1 mobile;
    put_addr buf 5 new_regional;
    buf

let decode buf =
  let n = Bytes.length buf in
  if n < 5 then None
  else
    match get_u8 buf 0 with
    | 1 when n >= 9 ->
      Some (Reg_request { mobile = get_addr buf 1;
                          foreign_agent = get_addr buf 5 })
    | 2 when n >= 6 ->
      Some (Reg_reply { mobile = get_addr buf 1;
                        accepted = get_u8 buf 5 <> 0 })
    | 3 when n >= 11 ->
      (match get_mac buf 5 with
       | mac -> Some (Fa_connect { mobile = get_addr buf 1; mac })
       | exception Invalid_argument _ -> None)
    | 4 -> Some (Fa_connect_ack { mobile = get_addr buf 1 })
    | 5 when n >= 9 ->
      Some (Fa_disconnect { mobile = get_addr buf 1;
                            new_foreign_agent = get_addr buf 5 })
    | 6 when n >= 9 ->
      Some (Ha_sync { mobile = get_addr buf 1;
                      foreign_agent = get_addr buf 5 })
    | 7 -> Some (Ha_sync_ack { mobile = get_addr buf 1 })
    | 8 when n >= 13 ->
      Some (Fa_connect_ack_r { mobile = get_addr buf 1;
                               regional = get_addr buf 5;
                               backup = get_addr buf 9 })
    | 9 when n >= 11 ->
      Some (Reg_region { mobile = get_addr buf 1;
                         foreign_agent = get_addr buf 5;
                         lifetime_s = (get_u8 buf 9 lsl 8) lor get_u8 buf 10 })
    | 10 -> Some (Reg_region_ack { mobile = get_addr buf 1 })
    | 11 when n >= 9 ->
      Some (Fa_visitor_miss { mobile = get_addr buf 1;
                              foreign_agent = get_addr buf 5 })
    | 12 when n >= 11 ->
      Some (Region_sync { mobile = get_addr buf 1;
                          foreign_agent = get_addr buf 5;
                          lifetime_s = (get_u8 buf 9 lsl 8) lor get_u8 buf 10 })
    | 13 -> Some (Region_sync_ack { mobile = get_addr buf 1 })
    | 14 when n >= 9 ->
      Some (Region_forward { mobile = get_addr buf 1;
                             new_regional = get_addr buf 5 })
    | _ -> None

let mobile = function
  | Reg_request { mobile; _ }
  | Reg_reply { mobile; _ }
  | Fa_connect { mobile; _ }
  | Fa_connect_ack { mobile }
  | Fa_disconnect { mobile; _ }
  | Ha_sync { mobile; _ }
  | Ha_sync_ack { mobile }
  | Fa_connect_ack_r { mobile; _ }
  | Reg_region { mobile; _ }
  | Reg_region_ack { mobile }
  | Fa_visitor_miss { mobile; _ }
  | Region_sync { mobile; _ }
  | Region_sync_ack { mobile }
  | Region_forward { mobile; _ } -> mobile

let pp ppf = function
  | Reg_request { mobile; foreign_agent } ->
    Format.fprintf ppf "reg-request mobile=%a fa=%a" Ipv4.Addr.pp mobile
      Ipv4.Addr.pp foreign_agent
  | Reg_reply { mobile; accepted } ->
    Format.fprintf ppf "reg-reply mobile=%a %s" Ipv4.Addr.pp mobile
      (if accepted then "accepted" else "denied")
  | Fa_connect { mobile; mac } ->
    Format.fprintf ppf "fa-connect mobile=%a mac=%a" Ipv4.Addr.pp mobile
      Net.Mac.pp mac
  | Fa_connect_ack { mobile } ->
    Format.fprintf ppf "fa-connect-ack mobile=%a" Ipv4.Addr.pp mobile
  | Fa_disconnect { mobile; new_foreign_agent } ->
    Format.fprintf ppf "fa-disconnect mobile=%a new-fa=%a" Ipv4.Addr.pp
      mobile Ipv4.Addr.pp new_foreign_agent
  | Ha_sync { mobile; foreign_agent } ->
    Format.fprintf ppf "ha-sync mobile=%a fa=%a" Ipv4.Addr.pp mobile
      Ipv4.Addr.pp foreign_agent
  | Ha_sync_ack { mobile } ->
    Format.fprintf ppf "ha-sync-ack mobile=%a" Ipv4.Addr.pp mobile
  | Fa_connect_ack_r { mobile; regional; backup } ->
    Format.fprintf ppf "fa-connect-ack-r mobile=%a regional=%a backup=%a"
      Ipv4.Addr.pp mobile Ipv4.Addr.pp regional Ipv4.Addr.pp backup
  | Reg_region { mobile; foreign_agent; lifetime_s } ->
    Format.fprintf ppf "reg-region mobile=%a fa=%a lifetime=%ds" Ipv4.Addr.pp
      mobile Ipv4.Addr.pp foreign_agent lifetime_s
  | Reg_region_ack { mobile } ->
    Format.fprintf ppf "reg-region-ack mobile=%a" Ipv4.Addr.pp mobile
  | Fa_visitor_miss { mobile; foreign_agent } ->
    Format.fprintf ppf "fa-visitor-miss mobile=%a fa=%a" Ipv4.Addr.pp mobile
      Ipv4.Addr.pp foreign_agent
  | Region_sync { mobile; foreign_agent; lifetime_s } ->
    Format.fprintf ppf "region-sync mobile=%a fa=%a lifetime=%ds" Ipv4.Addr.pp
      mobile Ipv4.Addr.pp foreign_agent lifetime_s
  | Region_sync_ack { mobile } ->
    Format.fprintf ppf "region-sync-ack mobile=%a" Ipv4.Addr.pp mobile
  | Region_forward { mobile; new_regional } ->
    Format.fprintf ppf "region-forward mobile=%a new-regional=%a" Ipv4.Addr.pp
      mobile Ipv4.Addr.pp new_regional
