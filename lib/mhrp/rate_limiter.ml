type t = {
  capacity : int;
  min_interval : Netsim.Time.t;
  tbl : (Ipv4.Addr.t, Netsim.Time.t) Hashtbl.t;
  mutable n_allowed : int;
  mutable n_suppressed : int;
}

let create ~capacity ~min_interval =
  if capacity <= 0 then invalid_arg "Rate_limiter.create: capacity";
  { capacity; min_interval; tbl = Hashtbl.create capacity; n_allowed = 0;
    n_suppressed = 0 }

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun addr at ->
       match !victim with
       | None -> victim := Some (addr, at)
       | Some (_, best) ->
         if Netsim.Time.compare at best < 0 then victim := Some (addr, at))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (addr, _) -> Hashtbl.remove t.tbl addr

let allow t ~now addr =
  let ok =
    match Hashtbl.find_opt t.tbl addr with
    | None -> true
    | Some last ->
      Netsim.Time.(diff now last >= t.min_interval)
  in
  if ok then begin
    if (not (Hashtbl.mem t.tbl addr))
       && Hashtbl.length t.tbl >= t.capacity
    then evict_oldest t;
    Hashtbl.replace t.tbl addr now;
    t.n_allowed <- t.n_allowed + 1
  end
  else t.n_suppressed <- t.n_suppressed + 1;
  ok

let suppressed t = t.n_suppressed
let allowed t = t.n_allowed
let size t = Hashtbl.length t.tbl
