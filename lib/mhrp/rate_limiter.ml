type t = {
  capacity : int;
  min_interval : Netsim.Time.t;
  tbl : (Ipv4.Addr.t, Netsim.Time.t) Hashtbl.t;
  (* Send-order queue backing O(1) eviction.  An allowed send pushes
     (addr, at); a later send to the same address leaves the old queue
     entry behind as a tombstone, recognized (and skipped) because its
     timestamp no longer matches the table's. *)
  order : (Ipv4.Addr.t * Netsim.Time.t) Queue.t;
  mutable n_allowed : int;
  mutable n_suppressed : int;
}

let create ~capacity ~min_interval =
  if capacity <= 0 then invalid_arg "Rate_limiter.create: capacity";
  { capacity; min_interval; tbl = Hashtbl.create capacity;
    order = Queue.create (); n_allowed = 0; n_suppressed = 0 }

let live t addr at =
  match Hashtbl.find_opt t.tbl addr with
  | Some at' -> Netsim.Time.compare at at' = 0
  | None -> false

(* An entry older than [min_interval] suppresses nothing — any send to
   that address would be allowed — so dropping it never changes an
   [allow] verdict; it only keeps [size] an honest count of addresses
   still inside their quiet period.  Aged entries and tombstones are
   drained from the queue front; each queue slot is visited once over
   its lifetime, so the scan is O(1) amortized. *)
let purge t ~now =
  let rec drain () =
    match Queue.peek_opt t.order with
    | Some (addr, at)
      when not (live t addr at) ->
      ignore (Queue.pop t.order);
      drain ()
    | Some (addr, at)
      when Netsim.Time.(diff now at >= t.min_interval) ->
      ignore (Queue.pop t.order);
      Hashtbl.remove t.tbl addr;
      drain ()
    | _ -> ()
  in
  drain ()

(* Only reached at capacity with every entry inside its quiet period, so
   the queue front (minus tombstones) is the genuinely oldest sender. *)
let evict_oldest t =
  let rec pop () =
    match Queue.pop t.order with
    | addr, at when live t addr at -> Hashtbl.remove t.tbl addr
    | _ -> pop ()
    | exception Queue.Empty -> ()
  in
  pop ()

let allow t ~now addr =
  purge t ~now;
  let ok =
    match Hashtbl.find_opt t.tbl addr with
    | None -> true
    | Some last ->
      Netsim.Time.(diff now last >= t.min_interval)
  in
  if ok then begin
    if (not (Hashtbl.mem t.tbl addr))
       && Hashtbl.length t.tbl >= t.capacity
    then evict_oldest t;
    Hashtbl.replace t.tbl addr now;
    Queue.push (addr, now) t.order;
    t.n_allowed <- t.n_allowed + 1
  end
  else t.n_suppressed <- t.n_suppressed + 1;
  ok

let suppressed t = t.n_suppressed
let allowed t = t.n_allowed
let size t = Hashtbl.length t.tbl
