(** Protocol parameters.

    Defaults follow the paper where it is specific and reasonable early-90s
    engineering practice where it is not; every knob exists because some
    experiment or ablation varies it. *)

type on_loop =
  | Discard_packet
      (** After dissolving the loop, drop the packet (Section 5.3). *)
  | Tunnel_home
      (** After dissolving, re-tunnel toward the home agent
          (Section 5.3's alternative). *)

type t = {
  max_prev_sources : int;
  (** Maximum length of the MHRP header's previous-source list before
      truncation triggers the update fan-out of Section 4.4.  Ablated in
      experiment E5. *)
  cache_capacity : int;
  (** Cache-agent entries (LRU beyond this, Section 2: "finite cache
      space ... any local cache replacement policy"). *)
  update_min_interval : Netsim.Time.t;
  (** Per-destination floor between location update transmissions
      (Section 4.3's flooding-avoidance requirement). *)
  update_rate_entries : int;
  (** Size of the LRU list backing the rate limiter. *)
  advert_interval : Netsim.Time.t;
  (** Period of agent advertisements (Section 3). *)
  advert_lifetime : Netsim.Time.t;
  (** How long a mobile host trusts its current agent without hearing an
      advertisement.  Expiry means the host "notices its own movement"
      (Section 3, implicit disconnection): it returns to searching and
      solicits.  Conventionally ~3 advertisement periods (RFC 1256).
      When MHRP runs over the distributed routing plane rather than the
      oracle (E18), this lifetime also bounds how long a mobile host
      keeps trusting an agent that a routing outage has made
      unreachable: it should comfortably exceed the routing
      reconvergence time ([Lsr.Config] dead detection + SPF, about
      [dead_count * hello_interval]), or cells detach on every routing
      blip. *)
  forwarding_pointers : bool;
  (** Old foreign agents keep a cache entry pointing at the new foreign
      agent (Section 2). *)
  on_loop : on_loop;
  verify_recovered_visitors : bool;
  (** A rebooted foreign agent told by a location update that a mobile host
      is "its" verifies presence with a local query before re-adding it
      (Section 5.2). *)
  gratuitous_arp_count : int;
  (** Retransmissions of the home agent's capture ARP (Section 2:
      "perhaps retransmitted a few times for reliability"). *)
  ha_persistent : bool;
  (** The home agent's location database survives reboots (Section 2:
      "should also be recorded on disk"). *)
  authenticate : bool;
  (** Require a valid authentication extension (keyed MAC + anti-replay,
      RFC 2002 style) on registrations, control messages and location
      updates before mutating any routing state — the countermeasure to
      the hijacking adversary of experiment E15.  Messages about mobile
      hosts with no installed security association are rejected. *)
  auth_timestamp_window : Netsim.Time.t;
  (** Maximum |sender clock - receiver clock| skew accepted on an
      authenticated message; also bounds how stale a captured message can
      be when replayed. *)
  auth_nonce_capacity : int;
  (** Per-association sliding window of recently accepted nonces. *)
  reliable_control : bool;
  (** Acknowledge and retransmit unicast control messages (registration
      requests, foreign-agent connects, home-agent syncs).  Without this,
      a single lost registration strands the mobile host until the next
      advertisement cycle — or forever, if the loss repeats. *)
  control_rto : Netsim.Time.t;
  (** Initial control retransmission timeout; doubles per retry
      (exponential backoff). *)
  control_retries : int;
  (** Retransmissions before giving up on a control exchange. *)
  hierarchy : bool;
  (** Hierarchical registration (regional foreign-agent aggregation, the
      ROADMAP's H-MLBN-style extension).  Foreign agents provisioned with
      a regional parent ({!Agent.set_regional_parent}) hand it to mobile
      hosts at connect time; the home agent then records the {e regional}
      agent as the host's location, and intra-region handoffs update only
      the regional agent's binding table — the home agent is never
      contacted, cutting long-haul control traffic per handoff (E19).
      Off by default: flat mode is byte-identical to the pre-hierarchy
      protocol. *)
  regional_lifetime : Netsim.Time.t;
  (** Soft-state lifetime of a regional binding.  [Reg_region] carries it
      on the wire (u16 seconds); the regional agent evicts bindings not
      refreshed within it, so lost withdrawals and crashed foreign agents
      self-heal instead of blackholing.  [Netsim.Time.zero] disables
      expiry (bindings are hard state, the pre-failover behaviour).
      Default 300 s — far beyond existing experiment horizons so enabling
      the knob does not perturb gated counters. *)
  regional_refresh : Netsim.Time.t;
  (** How often a registered mobile re-sends [Reg_region] to keep its
      binding alive.  [Netsim.Time.zero] (the default) derives a third of
      [regional_lifetime], mirroring the 3-adverts-per-lifetime
      convention.  The refresh doubles as a liveness probe: a refresh that
      exhausts its retransmissions triggers regional-agent failover.  An
      explicit interval also selects the failure-recovery profile: foreign
      agents then report their regional parent (not themselves) in
      delivery location updates, pinning correspondent caches to the
      region's stable entry point so failover, mirror-peer takeover and
      grace-pointer chasing stay invisible to senders (E20). *)
  regional_grace : Netsim.Time.t;
  (** Lifetime of the forwarding pointer an old regional agent keeps after
      an inter-region handoff ([Region_forward]): tunneled packets that
      race the home agent's update are re-tunneled to the new regional
      agent instead of dropped.  [Netsim.Time.zero] disables pointers —
      the mobile withdraws its old binding outright. *)
}

val default : t
(** max list 8, cache 64 entries, 1 s update interval, 64 rate entries,
    10 s advertisements with a 30 s lifetime, forwarding pointers on,
    discard on loop, no visitor verification, 3 gratuitous ARPs,
    persistent home agent; authentication off (2 s timestamp window and a
    64-nonce replay window when enabled); unreliable control plane (300 ms
    initial RTO and 5 retries when [reliable_control] is enabled). *)

val make :
  ?max_prev_sources:int ->
  ?cache_capacity:int ->
  ?update_min_interval:Netsim.Time.t ->
  ?update_rate_entries:int ->
  ?advert_interval:Netsim.Time.t ->
  ?advert_lifetime:Netsim.Time.t ->
  ?forwarding_pointers:bool ->
  ?on_loop:on_loop ->
  ?verify_recovered_visitors:bool ->
  ?gratuitous_arp_count:int ->
  ?ha_persistent:bool ->
  ?authenticate:bool ->
  ?auth_timestamp_window:Netsim.Time.t ->
  ?auth_nonce_capacity:int ->
  ?reliable_control:bool ->
  ?control_rto:Netsim.Time.t ->
  ?control_retries:int ->
  ?hierarchy:bool ->
  ?regional_lifetime:Netsim.Time.t ->
  ?regional_refresh:Netsim.Time.t ->
  ?regional_grace:Netsim.Time.t ->
  unit ->
  t
(** [make ()] is [default]; each label overrides one field.  Prefer this
    over [{ default with ... }] record syntax: new fields added to [t]
    keep call sites compiling without edits.  The bare record type stays
    public for exhaustive construction and pattern matching. *)
