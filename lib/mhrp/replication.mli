(** Replicated home agents (Section 2).

    "If that organization requires increased reliability of service for
    its own mobile hosts, it can replicate the home agent function on
    several support hosts on its own network, although these hosts must
    cooperate to provide a consistent view of the database."

    A group ties several home-agent {!Agent}s together: every registration
    accepted by one member is mirrored to the others with an [Ha_sync]
    control message, so each holds the full database and intercepts
    independently.  With several group members on the home LAN, whichever
    is up captures the mobile host's traffic: ARP resolution for a
    departed host is answered by every live member's proxy ARP, and the
    gratuitous-ARP capture is re-asserted by the member that processes the
    registration. *)

type t

val group : Agent.t list -> t
(** Wire the agents into one replica group.  Each must already have the
    home-agent role.  Raises [Invalid_argument] on an empty list or a
    member without the role. *)

val members : t -> Agent.t list

val add_mobile : t -> Ipv4.Addr.t -> unit
(** Serve a mobile host on every member. *)

val sync_messages : t -> int
(** Synchronisation messages sent so far — originals only; with
    [Config.reliable_control] each sync is also retransmitted with
    exponential backoff until the replica's [Ha_sync_ack] arrives
    (counted in the originator's [Counters.sync_retransmissions]). *)

val consistent : t -> Ipv4.Addr.t -> bool
(** All members agree on the mobile host's current location. *)
