(** A cache agent's location cache (Sections 2 and 4.3).

    Maps a mobile host's (home) address to the address of its
    currently-believed foreign agent.  Finite capacity with LRU
    replacement — the paper leaves the policy to the implementation
    ("maintained by any local cache replacement policy") and suggests
    reusing the host-specific redirect table with LRU timestamps
    (Section 4.3).  Entries may be stale; the protocol corrects them. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int
val size : t -> int

val find : t -> Ipv4.Addr.t -> Ipv4.Addr.t option
(** Refreshes the entry's recency on hit. *)

val peek : t -> Ipv4.Addr.t -> Ipv4.Addr.t option
(** Like [find] without touching recency (for assertions). *)

val insert : t -> mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit
(** Add or overwrite; evicts the least-recently-used entry when full.
    Raises [Invalid_argument] if [foreign_agent] is zero — a zero update
    means {!delete}. *)

val delete : t -> Ipv4.Addr.t -> unit

val update : t -> mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit
(** Apply a location update message: insert, or delete when the reported
    foreign agent is zero ("the host is at home"). *)

val clear : t -> unit
val entries : t -> (Ipv4.Addr.t * Ipv4.Addr.t) list
(** (mobile, foreign agent), most recently used first. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val state_bytes : t -> int
(** Approximate memory footprint (entries × 16 bytes: two addresses, a
    type tag and a timestamp — the Section 4.3 table entry), reported by
    the scalability experiment. *)

val footprint_bytes : t -> int
(** Actual heap bytes pinned by the backing {!Ipv4.Int_table} (flat
    arrays plus headers) — the implementation-level counterpart of the
    modeled {!state_bytes}, gated by the E19 scale sweep. *)
