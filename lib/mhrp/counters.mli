(** Per-agent protocol event counters, read by tests and experiments. *)

type t = {
  mutable tunnels_built : int;
      (** Initial encapsulations (home agent or cache agent). *)
  mutable retunnels : int;  (** Section 4.4 re-tunnel operations. *)
  mutable detunnels : int;  (** Packets stripped and delivered locally. *)
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable loops_detected : int;
  mutable loops_dissolved : int;
  mutable list_truncations : int;
  mutable registrations : int;  (** Home-agent database writes. *)
  mutable fa_connects : int;
  mutable fa_disconnects : int;
  mutable intercepts : int;  (** Packets captured for away mobile hosts. *)
  mutable icmp_errors_reversed : int;  (** Section 4.5 reversal steps. *)
  mutable recoveries : int;  (** Section 5.2 visitor re-adds. *)
  mutable control_messages : int;
      (** All control traffic originated (registrations, notifications,
          updates, advertisements): the scalability experiment's
          per-protocol cost metric. *)
  mutable auth_ok : int;
      (** Messages whose authentication extension verified. *)
  mutable auth_fail : int;
      (** Messages rejected for a missing extension, unknown association,
          SPI mismatch or bad MAC. *)
  mutable replay_drop : int;
      (** Correctly MACed messages rejected as stale or replayed. *)
  mutable reg_retransmissions : int;
      (** Registration requests re-sent after an unacknowledged RTO
          ([Config.reliable_control]). *)
  mutable connect_retransmissions : int;
      (** Foreign-agent connect notifications re-sent. *)
  mutable sync_retransmissions : int;
      (** Home-agent replica syncs re-sent. *)
  mutable retransmit_gave_up : int;
      (** Control exchanges abandoned after [Config.control_retries]. *)
  mutable regional_registrations : int;
      (** Regional-agent binding writes ([Config.hierarchy]) — intra-region
          registrations absorbed without contacting the home agent. *)
  mutable regional_retunnels : int;
      (** Tunneled packets a regional agent re-tunneled to the serving
          foreign agent through its binding table. *)
  mutable region_retransmissions : int;
      (** Regional registrations re-sent under [Config.reliable_control]. *)
  mutable regional_forwards : int;
      (** Tunneled packets a regional agent re-tunneled along an
          inter-region forwarding pointer during the handoff grace
          period. *)
  mutable regional_invalidations : int;
      (** Regional bindings dropped on a foreign agent's visitor-list-miss
          bounce (the hierarchical counterpart of the flat path's ICMP
          invalidation). *)
  mutable regional_expirations : int;
      (** Regional bindings evicted because their soft-state lifetime ran
          out unrefreshed ([Config.regional_lifetime]). *)
  mutable region_failovers : int;
      (** Times a mobile host abandoned an unresponsive regional agent —
          switching to the advertised backup, or falling back to direct
          home-agent registration when the region has none. *)
  mutable region_sync_retransmissions : int;
      (** Primary-to-backup binding mirrors re-sent under
          [Config.reliable_control]. *)
  mutable region_takeovers : int;
      (** Times this regional agent captured its unresponsive mirror
          peer's address (gratuitous ARP + proxy) so traffic tunneled at
          the dead peer reaches the mirrored binding table. *)
}

val create : unit -> t
val total_overhead_messages : t -> int
(** [control_messages]. *)

val pp : Format.formatter -> t -> unit
