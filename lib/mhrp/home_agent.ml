(* Backed by a compact int-keyed table: packed mobile address -> packed
   foreign-agent address (zero while at home).  One binding is two
   unboxed words; see {!Ipv4.Int_table}. *)

type t = {
  db : Ipv4.Int_table.t;
  persistent : bool;
}

let create ?(persistent = true) () =
  { db = Ipv4.Int_table.create (); persistent }

let add_mobile t mobile =
  Ipv4.Int_table.replace t.db (Ipv4.Addr.to_key mobile) 0

let serves t mobile = Ipv4.Int_table.mem t.db (Ipv4.Addr.to_key mobile)

let register t ~mobile ~foreign_agent =
  if not (serves t mobile) then
    invalid_arg "Home_agent.register: not my mobile host";
  Ipv4.Int_table.replace t.db (Ipv4.Addr.to_key mobile)
    (Ipv4.Addr.to_key foreign_agent)

let location t mobile =
  match Ipv4.Int_table.find t.db (Ipv4.Addr.to_key mobile) ~default:(-1) with
  | -1 -> None
  | fa -> Some (Ipv4.Addr.of_key fa)

let is_away t mobile =
  Ipv4.Int_table.find t.db (Ipv4.Addr.to_key mobile) ~default:0 <> 0

let away_mobiles t =
  Ipv4.Int_table.fold
    (fun mobile fa acc ->
       if fa = 0 then acc else Ipv4.Addr.of_key mobile :: acc)
    t.db []
  |> List.sort Ipv4.Addr.compare

let mobiles t =
  Ipv4.Int_table.fold
    (fun mobile _ acc -> Ipv4.Addr.of_key mobile :: acc)
    t.db []
  |> List.sort Ipv4.Addr.compare

let reboot t = if not t.persistent then Ipv4.Int_table.reset t.db
let state_bytes t = 8 * Ipv4.Int_table.length t.db
let footprint_bytes t = Ipv4.Int_table.footprint_bytes t.db
