type t = {
  db : (Ipv4.Addr.t, Ipv4.Addr.t) Hashtbl.t;
  persistent : bool;
}

let create ?(persistent = true) () =
  { db = Hashtbl.create 16; persistent }

let add_mobile t mobile = Hashtbl.replace t.db mobile Ipv4.Addr.zero
let serves t mobile = Hashtbl.mem t.db mobile

let register t ~mobile ~foreign_agent =
  if not (serves t mobile) then
    invalid_arg "Home_agent.register: not my mobile host";
  Hashtbl.replace t.db mobile foreign_agent

let location t mobile = Hashtbl.find_opt t.db mobile

let is_away t mobile =
  match location t mobile with
  | Some fa -> not (Ipv4.Addr.is_zero fa)
  | None -> false

let away_mobiles t =
  Hashtbl.fold
    (fun mobile fa acc ->
       if Ipv4.Addr.is_zero fa then acc else mobile :: acc)
    t.db []
  |> List.sort Ipv4.Addr.compare

let mobiles t =
  Hashtbl.fold (fun mobile _ acc -> mobile :: acc) t.db []
  |> List.sort Ipv4.Addr.compare

let reboot t = if not t.persistent then Hashtbl.reset t.db
let state_bytes t = 8 * Hashtbl.length t.db
