module Node = Net.Node
module Route = Net.Route

let advertise ~domain ~mobile ~towards =
  List.iter
    (fun node ->
       if Node.has_address node towards then
         (* the origin delivers locally through its own mechanisms *)
         ()
       else
         match Route.lookup (Node.routes node) towards with
         | Some target ->
           Node.update_routes node (fun r ->
               Route.add_host r mobile target)
         | None -> ())
    domain

let withdraw ~domain ~mobile =
  List.iter
    (fun node ->
       Node.update_routes node (fun r -> Route.remove_host r mobile))
    domain

let advertised ~domain ~mobile =
  List.length
    (List.filter
       (fun node ->
          List.exists
            (fun e ->
               Ipv4.Addr.Prefix.equal e.Route.prefix
                 (Ipv4.Addr.Prefix.make mobile 32))
            (Route.entries (Node.routes node)))
       domain)
