type on_loop =
  | Discard_packet
  | Tunnel_home

type t = {
  max_prev_sources : int;
  cache_capacity : int;
  update_min_interval : Netsim.Time.t;
  update_rate_entries : int;
  advert_interval : Netsim.Time.t;
  advert_lifetime : Netsim.Time.t;
  forwarding_pointers : bool;
  on_loop : on_loop;
  verify_recovered_visitors : bool;
  gratuitous_arp_count : int;
  ha_persistent : bool;
  authenticate : bool;
  auth_timestamp_window : Netsim.Time.t;
  auth_nonce_capacity : int;
  reliable_control : bool;
  control_rto : Netsim.Time.t;
  control_retries : int;
}

let default =
  { max_prev_sources = 8;
    cache_capacity = 64;
    update_min_interval = Netsim.Time.of_sec 1.0;
    update_rate_entries = 64;
    advert_interval = Netsim.Time.of_sec 10.0;
    advert_lifetime = Netsim.Time.of_sec 30.0;
    forwarding_pointers = true;
    on_loop = Discard_packet;
    verify_recovered_visitors = false;
    gratuitous_arp_count = 3;
    ha_persistent = true;
    authenticate = false;
    auth_timestamp_window = Netsim.Time.of_sec 2.0;
    auth_nonce_capacity = 64;
    reliable_control = false;
    control_rto = Netsim.Time.of_ms 300;
    control_retries = 5 }
