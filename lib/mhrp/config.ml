type on_loop =
  | Discard_packet
  | Tunnel_home

type t = {
  max_prev_sources : int;
  cache_capacity : int;
  update_min_interval : Netsim.Time.t;
  update_rate_entries : int;
  advert_interval : Netsim.Time.t;
  advert_lifetime : Netsim.Time.t;
  forwarding_pointers : bool;
  on_loop : on_loop;
  verify_recovered_visitors : bool;
  gratuitous_arp_count : int;
  ha_persistent : bool;
  authenticate : bool;
  auth_timestamp_window : Netsim.Time.t;
  auth_nonce_capacity : int;
  reliable_control : bool;
  control_rto : Netsim.Time.t;
  control_retries : int;
  hierarchy : bool;
  regional_lifetime : Netsim.Time.t;
  regional_refresh : Netsim.Time.t;
  regional_grace : Netsim.Time.t;
}

let default =
  { max_prev_sources = 8;
    cache_capacity = 64;
    update_min_interval = Netsim.Time.of_sec 1.0;
    update_rate_entries = 64;
    advert_interval = Netsim.Time.of_sec 10.0;
    advert_lifetime = Netsim.Time.of_sec 30.0;
    forwarding_pointers = true;
    on_loop = Discard_packet;
    verify_recovered_visitors = false;
    gratuitous_arp_count = 3;
    ha_persistent = true;
    authenticate = false;
    auth_timestamp_window = Netsim.Time.of_sec 2.0;
    auth_nonce_capacity = 64;
    reliable_control = false;
    control_rto = Netsim.Time.of_ms 300;
    control_retries = 5;
    hierarchy = false;
    regional_lifetime = Netsim.Time.of_sec 300.0;
    regional_refresh = Netsim.Time.zero;
    regional_grace = Netsim.Time.of_sec 2.0 }

let make ?max_prev_sources ?cache_capacity ?update_min_interval
    ?update_rate_entries ?advert_interval ?advert_lifetime
    ?forwarding_pointers ?on_loop ?verify_recovered_visitors
    ?gratuitous_arp_count ?ha_persistent ?authenticate
    ?auth_timestamp_window ?auth_nonce_capacity ?reliable_control
    ?control_rto ?control_retries ?hierarchy ?regional_lifetime
    ?regional_refresh ?regional_grace () =
  let v default = Option.value ~default in
  { max_prev_sources = v default.max_prev_sources max_prev_sources;
    cache_capacity = v default.cache_capacity cache_capacity;
    update_min_interval = v default.update_min_interval update_min_interval;
    update_rate_entries = v default.update_rate_entries update_rate_entries;
    advert_interval = v default.advert_interval advert_interval;
    advert_lifetime = v default.advert_lifetime advert_lifetime;
    forwarding_pointers = v default.forwarding_pointers forwarding_pointers;
    on_loop = v default.on_loop on_loop;
    verify_recovered_visitors =
      v default.verify_recovered_visitors verify_recovered_visitors;
    gratuitous_arp_count = v default.gratuitous_arp_count gratuitous_arp_count;
    ha_persistent = v default.ha_persistent ha_persistent;
    authenticate = v default.authenticate authenticate;
    auth_timestamp_window =
      v default.auth_timestamp_window auth_timestamp_window;
    auth_nonce_capacity = v default.auth_nonce_capacity auth_nonce_capacity;
    reliable_control = v default.reliable_control reliable_control;
    control_rto = v default.control_rto control_rto;
    control_retries = v default.control_retries control_retries;
    hierarchy = v default.hierarchy hierarchy;
    regional_lifetime = v default.regional_lifetime regional_lifetime;
    regional_refresh = v default.regional_refresh regional_refresh;
    regional_grace = v default.regional_grace regional_grace }
