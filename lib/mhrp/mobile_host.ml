type phase =
  | At_home
  | Searching
  | Registering of Ipv4.Addr.t
  | Registered of Ipv4.Addr.t
  | Disconnected

type t = {
  home : Ipv4.Addr.t;
  home_agent : Ipv4.Addr.t;
  mutable phase : phase;
  mutable old_fa : Ipv4.Addr.t option;
  mutable own_fa_temp : Ipv4.Addr.t option;
  mutable moves : int;
  mutable registrations_completed : int;
  mutable last_advert : Netsim.Time.t;
  mutable implicit_disconnects : int;
  mutable reg_seq : int;
  mutable reg_acked : int;
  mutable regional : Ipv4.Addr.t option;
  mutable regional_backup : Ipv4.Addr.t option;
  mutable rr_seq : int;
  mutable rr_acked : int;
}

let create ~home ~home_agent =
  { home; home_agent; phase = At_home; old_fa = None; own_fa_temp = None;
    moves = 0; registrations_completed = 0;
    last_advert = Netsim.Time.zero; implicit_disconnects = 0;
    reg_seq = 0; reg_acked = 0; regional = None; regional_backup = None;
    rr_seq = 0; rr_acked = 0 }

let current_fa t =
  match t.phase with
  | Registered fa | Registering fa -> Some fa
  | At_home | Searching | Disconnected -> None

let is_home t = t.phase = At_home

let pp_phase ppf = function
  | At_home -> Format.pp_print_string ppf "at-home"
  | Searching -> Format.pp_print_string ppf "searching"
  | Registering fa ->
    Format.fprintf ppf "registering(%a)" Ipv4.Addr.pp fa
  | Registered fa -> Format.fprintf ppf "registered(%a)" Ipv4.Addr.pp fa
  | Disconnected -> Format.pp_print_string ppf "disconnected"
