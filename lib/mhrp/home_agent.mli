(** Home-agent state: the location database (Section 2).

    For every mobile host whose home network this agent serves, the
    database records the address of its current foreign agent — zero while
    the host is at home.  The paper requires the database to be recorded on
    disk "to survive any crashes and subsequent reboots"; [persistent]
    simulates that property.  Pure state; the protocol driving it lives in
    {!Agent}. *)

type t

val create : ?persistent:bool -> unit -> t

val add_mobile : t -> Ipv4.Addr.t -> unit
(** Begin serving a mobile host (initially at home). *)

val serves : t -> Ipv4.Addr.t -> bool

val register : t -> mobile:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit
(** Record a registration; zero foreign agent = returned home.
    Raises [Invalid_argument] for a mobile host this agent does not
    serve. *)

val location : t -> Ipv4.Addr.t -> Ipv4.Addr.t option
(** Current foreign agent; [Some zero] when at home; [None] when not
    served here. *)

val is_away : t -> Ipv4.Addr.t -> bool
val away_mobiles : t -> Ipv4.Addr.t list
val mobiles : t -> Ipv4.Addr.t list
val reboot : t -> unit
(** Clears the database unless persistent. *)

val state_bytes : t -> int
(** 8 bytes per record: two addresses — the paper's "amount of state ...
    is small" claim, measured in experiment E6. *)

val footprint_bytes : t -> int
(** Actual heap bytes pinned by the backing {!Ipv4.Int_table}, gated by
    the E19 scale sweep. *)
