(* Backed by the same compact int-keyed table as the home-agent
   database: packed mobile address -> packed foreign-agent address.
   See {!Ipv4.Int_table}. *)

type t = {
  bindings : Ipv4.Int_table.t;
  mutable registrations : int;
  mutable withdrawals : int;
}

let create () =
  { bindings = Ipv4.Int_table.create (); registrations = 0;
    withdrawals = 0 }

let register t ~mobile ~foreign_agent =
  if Ipv4.Addr.is_zero foreign_agent then
    invalid_arg "Regional.register: zero foreign agent (use withdraw)";
  Ipv4.Int_table.replace t.bindings (Ipv4.Addr.to_key mobile)
    (Ipv4.Addr.to_key foreign_agent);
  t.registrations <- t.registrations + 1

let withdraw t mobile =
  let k = Ipv4.Addr.to_key mobile in
  if Ipv4.Int_table.mem t.bindings k then begin
    Ipv4.Int_table.remove t.bindings k;
    t.withdrawals <- t.withdrawals + 1
  end

let find t mobile =
  match
    Ipv4.Int_table.find t.bindings (Ipv4.Addr.to_key mobile) ~default:(-1)
  with
  | -1 -> None
  | fa -> Some (Ipv4.Addr.of_key fa)

let size t = Ipv4.Int_table.length t.bindings

let bindings t =
  Ipv4.Int_table.fold
    (fun mobile fa acc ->
       (Ipv4.Addr.of_key mobile, Ipv4.Addr.of_key fa) :: acc)
    t.bindings []
  |> List.sort (fun (a, _) (b, _) -> Ipv4.Addr.compare a b)

let clear t = Ipv4.Int_table.reset t.bindings
let registrations t = t.registrations
let withdrawals t = t.withdrawals
let state_bytes t = 8 * Ipv4.Int_table.length t.bindings
let footprint_bytes t = Ipv4.Int_table.footprint_bytes t.bindings
