(* Backed by the same compact int-keyed table as the home-agent
   database: packed mobile address -> packed foreign-agent address.
   See {!Ipv4.Int_table}.

   The failover extensions (binding lifetimes, inter-region forwarding
   pointers) each hang off a lazily created side table: a regional agent
   that never sees a lifetime or a forwarding pointer pins exactly the
   bytes it did before failover existed, which keeps E19's exact
   footprint gate honest. *)

type t = {
  bindings : Ipv4.Int_table.t;
  mutable expiry : Ipv4.Int_table.t option;
      (* packed mobile -> absolute expiry (us); only bindings registered
         with a lifetime appear here *)
  mutable forwards : Ipv4.Int_table.t option;
      (* packed mobile -> packed new regional agent *)
  mutable forward_expiry : Ipv4.Int_table.t option;
  mutable registrations : int;
  mutable refreshes : int;
  mutable withdrawals : int;
  mutable expirations : int;
  mutable invalidations : int;
}

let create () =
  { bindings = Ipv4.Int_table.create (); expiry = None; forwards = None;
    forward_expiry = None; registrations = 0; refreshes = 0;
    withdrawals = 0; expirations = 0; invalidations = 0 }

let force tbl set =
  match tbl with
  | Some t -> t
  | None ->
    let t = Ipv4.Int_table.create () in
    set t;
    t

let register t ?expires_at ~mobile ~foreign_agent () =
  if Ipv4.Addr.is_zero foreign_agent then
    invalid_arg "Regional.register: zero foreign agent (use withdraw)";
  let km = Ipv4.Addr.to_key mobile in
  let kf = Ipv4.Addr.to_key foreign_agent in
  let outcome =
    if Ipv4.Int_table.find t.bindings km ~default:(-1) = kf then begin
      t.refreshes <- t.refreshes + 1;
      `Refresh
    end
    else begin
      Ipv4.Int_table.replace t.bindings km kf;
      t.registrations <- t.registrations + 1;
      `Fresh
    end
  in
  (match expires_at with
   | Some at ->
     let e = force t.expiry (fun e -> t.expiry <- Some e) in
     Ipv4.Int_table.replace e km at
   | None ->
     (match t.expiry with
      | Some e -> Ipv4.Int_table.remove e km
      | None -> ()));
  outcome

let withdraw t mobile =
  let k = Ipv4.Addr.to_key mobile in
  if Ipv4.Int_table.mem t.bindings k then begin
    Ipv4.Int_table.remove t.bindings k;
    (match t.expiry with
     | Some e -> Ipv4.Int_table.remove e k
     | None -> ());
    t.withdrawals <- t.withdrawals + 1
  end

let invalidate t ~mobile ~foreign_agent =
  let km = Ipv4.Addr.to_key mobile in
  if Ipv4.Int_table.find t.bindings km ~default:(-1)
     = Ipv4.Addr.to_key foreign_agent
  then begin
    Ipv4.Int_table.remove t.bindings km;
    (match t.expiry with
     | Some e -> Ipv4.Int_table.remove e km
     | None -> ());
    t.invalidations <- t.invalidations + 1;
    true
  end
  else false

let find t mobile =
  match
    Ipv4.Int_table.find t.bindings (Ipv4.Addr.to_key mobile) ~default:(-1)
  with
  | -1 -> None
  | fa -> Some (Ipv4.Addr.of_key fa)

let expires_at t mobile =
  match t.expiry with
  | None -> None
  | Some e ->
    (match Ipv4.Int_table.find e (Ipv4.Addr.to_key mobile) ~default:(-1) with
     | -1 -> None
     | at -> Some at)

let expire t ~now =
  match t.expiry with
  | None -> []
  | Some e ->
    let dead =
      Ipv4.Int_table.fold
        (fun km at acc -> if Netsim.Time.(at <= now) then km :: acc else acc)
        e []
      (* fold order is table-internal; sort for deterministic eviction *)
      |> List.sort compare
    in
    List.filter_map
      (fun km ->
         Ipv4.Int_table.remove e km;
         match Ipv4.Int_table.find t.bindings km ~default:(-1) with
         | -1 -> None
         | kf ->
           Ipv4.Int_table.remove t.bindings km;
           t.expirations <- t.expirations + 1;
           Some (Ipv4.Addr.of_key km, Ipv4.Addr.of_key kf))
      dead

let set_forward t ~mobile ~new_regional ~expires_at =
  let km = Ipv4.Addr.to_key mobile in
  let f = force t.forwards (fun f -> t.forwards <- Some f) in
  let fe = force t.forward_expiry (fun fe -> t.forward_expiry <- Some fe) in
  Ipv4.Int_table.replace f km (Ipv4.Addr.to_key new_regional);
  Ipv4.Int_table.replace fe km expires_at

let forward t ~now mobile =
  match t.forwards, t.forward_expiry with
  | Some f, Some fe ->
    let km = Ipv4.Addr.to_key mobile in
    (match Ipv4.Int_table.find f km ~default:(-1) with
     | -1 -> None
     | target ->
       let at = Ipv4.Int_table.find fe km ~default:(-1) in
       if at = -1 || Netsim.Time.(at <= now) then begin
         Ipv4.Int_table.remove f km;
         Ipv4.Int_table.remove fe km;
         None
       end
       else Some (Ipv4.Addr.of_key target))
  | _ -> None

let forwards_size t =
  match t.forwards with None -> 0 | Some f -> Ipv4.Int_table.length f

let size t = Ipv4.Int_table.length t.bindings

let bindings t =
  Ipv4.Int_table.fold
    (fun mobile fa acc ->
       (Ipv4.Addr.of_key mobile, Ipv4.Addr.of_key fa) :: acc)
    t.bindings []
  |> List.sort (fun (a, _) (b, _) -> Ipv4.Addr.compare a b)

let clear t =
  Ipv4.Int_table.reset t.bindings;
  (match t.expiry with Some e -> Ipv4.Int_table.reset e | None -> ());
  (match t.forwards with Some f -> Ipv4.Int_table.reset f | None -> ());
  (match t.forward_expiry with
   | Some fe -> Ipv4.Int_table.reset fe
   | None -> ())

let registrations t = t.registrations
let refreshes t = t.refreshes
let withdrawals t = t.withdrawals
let expirations t = t.expirations
let invalidations t = t.invalidations

let state_bytes t =
  let expiry_len =
    match t.expiry with None -> 0 | Some e -> Ipv4.Int_table.length e
  in
  (8 * Ipv4.Int_table.length t.bindings)
  + (4 * expiry_len)
  + (8 * forwards_size t)

let footprint_bytes t =
  let opt = function
    | None -> 0
    | Some tbl -> Ipv4.Int_table.footprint_bytes tbl
  in
  Ipv4.Int_table.footprint_bytes t.bindings
  + opt t.expiry + opt t.forwards + opt t.forward_expiry
