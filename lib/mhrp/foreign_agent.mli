(** Foreign-agent state: the list of locally visiting mobile hosts
    (Section 2).

    Each entry maps a visiting host's home address to what the agent needs
    for last-hop delivery: the interface it is reachable on and, when known
    from the connection notification, its link address.  A visitor re-added
    by the Section 5.2 recovery procedure has no recorded link address and
    is delivered to via ARP instead.  Volatile: a reboot clears it. *)

type visitor = {
  mobile : Ipv4.Addr.t;
  mac : Net.Mac.t option;
  iface : int;
}

type t

val create : unit -> t
val add : t -> visitor -> unit
val remove : t -> Ipv4.Addr.t -> unit
val find : t -> Ipv4.Addr.t -> visitor option
val mem : t -> Ipv4.Addr.t -> bool
val visitors : t -> visitor list
val clear : t -> unit
val count : t -> int
val state_bytes : t -> int
