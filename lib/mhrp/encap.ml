let tunnel_by_sender ~foreign_agent (pkt : Ipv4.Packet.t) =
  let header =
    Mhrp_header.make ~orig_proto:pkt.Ipv4.Packet.proto
      ~mobile:pkt.Ipv4.Packet.dst ()
  in
  { pkt with
    Ipv4.Packet.proto = Ipv4.Proto.mhrp;
    dst = foreign_agent;
    payload = Mhrp_header.encode header pkt.Ipv4.Packet.payload }

let tunnel_by_agent ~agent ~foreign_agent (pkt : Ipv4.Packet.t) =
  let header =
    Mhrp_header.make ~prev_sources:[pkt.Ipv4.Packet.src]
      ~orig_proto:pkt.Ipv4.Packet.proto ~mobile:pkt.Ipv4.Packet.dst ()
  in
  { pkt with
    Ipv4.Packet.proto = Ipv4.Proto.mhrp;
    src = agent;
    dst = foreign_agent;
    payload = Mhrp_header.encode header pkt.Ipv4.Packet.payload }

let is_tunneled (pkt : Ipv4.Packet.t) =
  pkt.Ipv4.Packet.proto = Ipv4.Proto.mhrp

let header_of pkt =
  if not (is_tunneled pkt) then None
  else
    match Mhrp_header.decode pkt.Ipv4.Packet.payload with
    | header, _ -> Some header
    | exception Invalid_argument _ -> None

let detunnel (pkt : Ipv4.Packet.t) =
  if not (is_tunneled pkt) then None
  else
    match Mhrp_header.decode pkt.Ipv4.Packet.payload with
    | exception Invalid_argument _ -> None
    | header, transport ->
      let src =
        match Mhrp_header.original_sender header with
        | Some s -> s
        | None -> pkt.Ipv4.Packet.src (* sender-built header *)
      in
      let original =
        { pkt with
          Ipv4.Packet.proto = header.Mhrp_header.orig_proto;
          src;
          dst = header.Mhrp_header.mobile;
          payload = transport }
      in
      Some (original, header)

type retunnel_result =
  | Retunneled of Ipv4.Packet.t
  | Retunneled_overflow of {
      packet : Ipv4.Packet.t;
      notify : Ipv4.Addr.t list;
    }
  | Loop_detected of { members : Ipv4.Addr.t list }

let retunnel ~max_prev_sources ~me ~new_dst (pkt : Ipv4.Packet.t) =
  if not (is_tunneled pkt) then None
  else
    match Mhrp_header.decode pkt.Ipv4.Packet.payload with
    | exception Invalid_argument _ -> None
    | header, transport ->
      let incoming = pkt.Ipv4.Packet.src in
      (* Section 5.3: if our own address already appears among the tunnel
         heads (or we are about to record ourselves twice), one pass
         around a cache-agent loop has completed. *)
      if Mhrp_header.mem_source header me || Ipv4.Addr.equal incoming me
      then
        Some
          (Loop_detected
             { members =
                 header.Mhrp_header.prev_sources
                 @ (if Mhrp_header.mem_source header incoming then []
                    else [incoming]) })
      else begin
        let rebuild header' =
          { pkt with
            Ipv4.Packet.src = me;
            dst = new_dst;
            payload = Mhrp_header.encode header' transport }
        in
        match
          Mhrp_header.append_source_max ~max:max_prev_sources header
            incoming
        with
        | `Ok header' -> Some (Retunneled (rebuild header'))
        | `Full ->
          let notify = header.Mhrp_header.prev_sources in
          let header' = Mhrp_header.truncate header incoming in
          Some (Retunneled_overflow { packet = rebuild header'; notify })
      end

let added_bytes ~original ~tunneled =
  Ipv4.Packet.total_length tunneled - Ipv4.Packet.total_length original

(* --- zero-copy wire-level encap/decap ---

   The record-based functions above decode, rebuild and re-encode a
   whole packet per tunnel operation.  These build the outgoing wire
   bytes directly from a {!Ipv4.Packet.View} of the original, into a
   buffer drawn from a {!Ipv4.Buffer_pool}: prepend the new IP + MHRP
   headers, blit the transport payload once, checksum in place.  Output
   is byte-identical to [Packet.encode (tunnel_by_* (View.decode v))]
   (QCheck-verified), so either path may serve any packet.  Option-free
   originals only — the record path keeps IP options in the tunnel
   envelope, a rebuild these single-blit functions cannot do — callers
   fall back on [has_options].  The returned buffer is owned by the
   caller (release it, or hand it to a frame whose receiver then owns
   it — DESIGN.md Section 11). *)

module View = Ipv4.Packet.View

let blit_addr buf i a =
  let v = Ipv4.Addr.to_int a in
  Bytes.set_uint16_be buf i (v lsr 16);
  Bytes.set_uint16_be buf (i + 2) (v land 0xFFFF)

let read_addr buf i =
  Ipv4.Addr.of_int
    ((Bytes.get_uint16_be buf i lsl 16) lor Bytes.get_uint16_be buf (i + 2))

let tunnel_into ~pool ~src ~dst ~prev_sources v =
  if View.has_options v then
    invalid_arg "Encap.tunnel_into: original carries IP options";
  let vbuf = View.buffer v and voff = View.offset v in
  let ihl = View.header_length v in
  let transport_len = View.total_length v - ihl in
  let n_prev = List.length prev_sources in
  let mh_len = Mhrp_header.fixed_length + (4 * n_prev) in
  let tlen = 20 + mh_len + transport_len in
  if n_prev > 255 then invalid_arg "Encap.tunnel_into: list too long";
  if tlen > 0xFFFF then invalid_arg "Encap.tunnel_into: packet too long";
  let buf = Ipv4.Buffer_pool.take pool tlen in
  (* IP envelope: tos, id, flags and TTL travel over from the original *)
  Bytes.set buf 0 '\x45';
  Bytes.set buf 1 (Bytes.get vbuf (voff + 1));
  Bytes.set_uint16_be buf 2 tlen;
  Bytes.blit vbuf (voff + 4) buf 4 4;  (* id + flags/fragment offset *)
  Bytes.set buf 8 (Bytes.get vbuf (voff + 8));
  Bytes.set buf 9 (Char.chr Ipv4.Proto.mhrp);
  blit_addr buf 12 src;
  blit_addr buf 16 dst;
  (* MHRP header, checksummed over its own bytes *)
  Bytes.set buf 20 (Char.chr n_prev);
  Bytes.set buf 21 (Char.chr (View.proto v));
  Bytes.set buf 22 '\000';
  Bytes.set buf 23 '\000';
  blit_addr buf 24 (View.dst v);  (* the mobile: the original destination *)
  List.iteri (fun k a -> blit_addr buf (28 + (4 * k)) a) prev_sources;
  Ipv4.Checksum.set buf ~at:22 ~off:20 ~len:mh_len;
  (* the transport payload moves exactly once *)
  Bytes.blit vbuf (voff + ihl) buf (20 + mh_len) transport_len;
  Ipv4.Checksum.set buf ~at:10 ~off:0 ~len:20;
  buf

let tunnel_by_sender_into ~pool ~foreign_agent v =
  tunnel_into ~pool ~src:(View.src v) ~dst:foreign_agent ~prev_sources:[] v

let tunnel_by_agent_into ~pool ~agent ~foreign_agent v =
  tunnel_into ~pool ~src:agent ~dst:foreign_agent
    ~prev_sources:[View.src v] v

let detunnel_into ~pool v =
  if View.proto v <> Ipv4.Proto.mhrp then None
  else if View.has_options v then
    invalid_arg "Encap.detunnel_into: envelope carries IP options"
  else begin
    let vbuf = View.buffer v and voff = View.offset v in
    let ihl = View.header_length v in
    let plen = View.total_length v - ihl in
    let mh_off = voff + ihl in
    if plen < Mhrp_header.fixed_length then None
    else begin
      let count = Char.code (Bytes.get vbuf mh_off) in
      let mh_len = Mhrp_header.fixed_length + (4 * count) in
      if plen < mh_len
         || not (Ipv4.Checksum.valid ~off:mh_off ~len:mh_len vbuf)
      then None
      else begin
        let header =
          Mhrp_header.make
            ~prev_sources:
              (List.init count (fun k -> read_addr vbuf (mh_off + 8 + (4 * k))))
            ~orig_proto:(Char.code (Bytes.get vbuf (mh_off + 1)))
            ~mobile:(read_addr vbuf (mh_off + 4)) ()
        in
        let transport_len = plen - mh_len in
        let tlen = 20 + transport_len in
        let buf = Ipv4.Buffer_pool.take pool tlen in
        Bytes.set buf 0 '\x45';
        Bytes.set buf 1 (Bytes.get vbuf (voff + 1));
        Bytes.set_uint16_be buf 2 tlen;
        Bytes.blit vbuf (voff + 4) buf 4 4;
        Bytes.set buf 8 (Bytes.get vbuf (voff + 8));
        Bytes.set buf 9 (Char.chr header.Mhrp_header.orig_proto);
        blit_addr buf 12
          (match Mhrp_header.original_sender header with
           | Some s -> s
           | None -> View.src v);
        blit_addr buf 16 header.Mhrp_header.mobile;
        Bytes.blit vbuf (mh_off + mh_len) buf 20 transport_len;
        Ipv4.Checksum.set buf ~at:10 ~off:0 ~len:20;
        Some (buf, header)
      end
    end
  end
