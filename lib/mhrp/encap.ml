let tunnel_by_sender ~foreign_agent (pkt : Ipv4.Packet.t) =
  let header =
    Mhrp_header.make ~orig_proto:pkt.Ipv4.Packet.proto
      ~mobile:pkt.Ipv4.Packet.dst ()
  in
  { pkt with
    Ipv4.Packet.proto = Ipv4.Proto.mhrp;
    dst = foreign_agent;
    payload = Mhrp_header.encode header pkt.Ipv4.Packet.payload }

let tunnel_by_agent ~agent ~foreign_agent (pkt : Ipv4.Packet.t) =
  let header =
    Mhrp_header.make ~prev_sources:[pkt.Ipv4.Packet.src]
      ~orig_proto:pkt.Ipv4.Packet.proto ~mobile:pkt.Ipv4.Packet.dst ()
  in
  { pkt with
    Ipv4.Packet.proto = Ipv4.Proto.mhrp;
    src = agent;
    dst = foreign_agent;
    payload = Mhrp_header.encode header pkt.Ipv4.Packet.payload }

let is_tunneled (pkt : Ipv4.Packet.t) =
  pkt.Ipv4.Packet.proto = Ipv4.Proto.mhrp

let header_of pkt =
  if not (is_tunneled pkt) then None
  else
    match Mhrp_header.decode pkt.Ipv4.Packet.payload with
    | header, _ -> Some header
    | exception Invalid_argument _ -> None

let detunnel (pkt : Ipv4.Packet.t) =
  if not (is_tunneled pkt) then None
  else
    match Mhrp_header.decode pkt.Ipv4.Packet.payload with
    | exception Invalid_argument _ -> None
    | header, transport ->
      let src =
        match Mhrp_header.original_sender header with
        | Some s -> s
        | None -> pkt.Ipv4.Packet.src (* sender-built header *)
      in
      let original =
        { pkt with
          Ipv4.Packet.proto = header.Mhrp_header.orig_proto;
          src;
          dst = header.Mhrp_header.mobile;
          payload = transport }
      in
      Some (original, header)

type retunnel_result =
  | Retunneled of Ipv4.Packet.t
  | Retunneled_overflow of {
      packet : Ipv4.Packet.t;
      notify : Ipv4.Addr.t list;
    }
  | Loop_detected of { members : Ipv4.Addr.t list }

let retunnel ~max_prev_sources ~me ~new_dst (pkt : Ipv4.Packet.t) =
  if not (is_tunneled pkt) then None
  else
    match Mhrp_header.decode pkt.Ipv4.Packet.payload with
    | exception Invalid_argument _ -> None
    | header, transport ->
      let incoming = pkt.Ipv4.Packet.src in
      (* Section 5.3: if our own address already appears among the tunnel
         heads (or we are about to record ourselves twice), one pass
         around a cache-agent loop has completed. *)
      if Mhrp_header.mem_source header me || Ipv4.Addr.equal incoming me
      then
        Some
          (Loop_detected
             { members =
                 header.Mhrp_header.prev_sources
                 @ (if Mhrp_header.mem_source header incoming then []
                    else [incoming]) })
      else begin
        let rebuild header' =
          { pkt with
            Ipv4.Packet.src = me;
            dst = new_dst;
            payload = Mhrp_header.encode header' transport }
        in
        match
          Mhrp_header.append_source_max ~max:max_prev_sources header
            incoming
        with
        | `Ok header' -> Some (Retunneled (rebuild header'))
        | `Full ->
          let notify = header.Mhrp_header.prev_sources in
          let header' = Mhrp_header.truncate header incoming in
          Some (Retunneled_overflow { packet = rebuild header'; notify })
      end

let added_bytes ~original ~tunneled =
  Ipv4.Packet.total_length tunneled - Ipv4.Packet.total_length original
