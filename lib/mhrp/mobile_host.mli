(** Mobile-host state machine (Section 3).

    A mobile host always uses only its home address.  It is [At_home],
    [Searching] for an agent after a link-level move, mid-registration,
    [Registered] with a foreign agent (possibly itself, when serving as its
    own foreign agent with a temporary tunnel endpoint, Section 2), or
    explicitly [Disconnected].  Pure state; {!Agent} drives transitions. *)

type phase =
  | At_home
  | Searching
  | Registering of Ipv4.Addr.t  (** Connected to this FA, awaiting HA. *)
  | Registered of Ipv4.Addr.t  (** Foreign agent address. *)
  | Disconnected

type t = {
  home : Ipv4.Addr.t;
  home_agent : Ipv4.Addr.t;
  mutable phase : phase;
  mutable old_fa : Ipv4.Addr.t option;
      (** Foreign agent to notify of the (implicit) disconnect once the
          new registration completes (Section 3). *)
  mutable own_fa_temp : Ipv4.Addr.t option;
      (** Temporary address while serving as own foreign agent. *)
  mutable moves : int;
  mutable registrations_completed : int;
  mutable last_advert : Netsim.Time.t;
      (** When the current agent (foreign or home) was last heard
          advertising — the Section 3 implicit-disconnection clock. *)
  mutable implicit_disconnects : int;
  mutable reg_seq : int;
      (** Generation number of the newest registration request sent
          ([Config.reliable_control]): a retransmission loop stops once a
          newer exchange supersedes it. *)
  mutable reg_acked : int;
      (** Highest generation confirmed by a registration reply. *)
  mutable regional : Ipv4.Addr.t option;
      (** The regional agent the host is registered through
          ([Config.hierarchy]).  While the next handoff stays under the
          same regional agent, the home agent is not contacted. *)
  mutable regional_backup : Ipv4.Addr.t option;
      (** The standby regional agent advertised at connect time
          ([Fa_connect_ack_r]); the failover target when the primary stops
          acknowledging regional registrations. *)
  mutable rr_seq : int;
      (** Generation of the newest regional registration sent
          ([Config.reliable_control]). *)
  mutable rr_acked : int;
      (** Highest generation confirmed by a regional ack. *)
}

val create : home:Ipv4.Addr.t -> home_agent:Ipv4.Addr.t -> t
val current_fa : t -> Ipv4.Addr.t option
(** The registered foreign agent, if visiting. *)

val is_home : t -> bool
val pp_phase : Format.formatter -> phase -> unit
