type t = {
  mutable segs_sent : int;
  mutable segs_received : int;
  mutable data_segs_sent : int;
  mutable data_bytes_sent : int;
  mutable data_bytes_received : int;
  mutable retransmissions : int;
  mutable acks_received : int;
  mutable out_of_order : int;
  mutable duplicates : int;
  mutable resets_sent : int;
  mutable resets_received : int;
  mutable conns_opened : int;
  mutable conns_accepted : int;
  mutable conns_established : int;
  mutable conns_closed : int;
  mutable conns_failed : int;
}

let create () =
  { segs_sent = 0; segs_received = 0; data_segs_sent = 0;
    data_bytes_sent = 0; data_bytes_received = 0; retransmissions = 0;
    acks_received = 0; out_of_order = 0; duplicates = 0; resets_sent = 0;
    resets_received = 0; conns_opened = 0; conns_accepted = 0;
    conns_established = 0; conns_closed = 0; conns_failed = 0 }

let add ~into c =
  into.segs_sent <- into.segs_sent + c.segs_sent;
  into.segs_received <- into.segs_received + c.segs_received;
  into.data_segs_sent <- into.data_segs_sent + c.data_segs_sent;
  into.data_bytes_sent <- into.data_bytes_sent + c.data_bytes_sent;
  into.data_bytes_received <- into.data_bytes_received + c.data_bytes_received;
  into.retransmissions <- into.retransmissions + c.retransmissions;
  into.acks_received <- into.acks_received + c.acks_received;
  into.out_of_order <- into.out_of_order + c.out_of_order;
  into.duplicates <- into.duplicates + c.duplicates;
  into.resets_sent <- into.resets_sent + c.resets_sent;
  into.resets_received <- into.resets_received + c.resets_received;
  into.conns_opened <- into.conns_opened + c.conns_opened;
  into.conns_accepted <- into.conns_accepted + c.conns_accepted;
  into.conns_established <- into.conns_established + c.conns_established;
  into.conns_closed <- into.conns_closed + c.conns_closed;
  into.conns_failed <- into.conns_failed + c.conns_failed

let pp ppf c =
  Format.fprintf ppf
    "segs=%d/%d data=%d(%dB) rtx=%d acks=%d ooo=%d dup=%d rst=%d/%d \
     conns=%d/%d est=%d closed=%d failed=%d"
    c.segs_sent c.segs_received c.data_segs_sent c.data_bytes_sent
    c.retransmissions c.acks_received c.out_of_order c.duplicates
    c.resets_sent c.resets_received c.conns_opened c.conns_accepted
    c.conns_established c.conns_closed c.conns_failed
