module Tcp = Ipv4.Tcp_lite
module Packet = Ipv4.Packet
module Addr = Ipv4.Addr

type tcp_rx = src:Addr.t -> Tcp.t -> unit
type udp_rx = src:Addr.t -> Ipv4.Udp.t -> unit

type t = {
  agent : Mhrp.Agent.t;
  engine : Netsim.Engine.t;
  conns : (int * int * int, tcp_rx) Hashtbl.t;
  (* (local port, packed remote addr, remote port) -> connection *)
  listeners : (int, tcp_rx) Hashtbl.t;
  udp_ports : (int, udp_rx) Hashtbl.t;
  counters : Counters.t;
  mutable ip_id : int;
  mutable iss : int;
  mutable ephemeral : int;
  mutable tap_installed : bool;
}

let create agent =
  { agent;
    engine = Net.Node.engine (Mhrp.Agent.node agent);
    conns = Hashtbl.create 16;
    listeners = Hashtbl.create 4;
    udp_ports = Hashtbl.create 4;
    counters = Counters.create ();
    ip_id = 0;
    iss = 1000;
    ephemeral = 49152;
    tap_installed = false }

let agent t = t.agent
let engine t = t.engine
let address t = Mhrp.Agent.address t.agent
let counters t = t.counters

(* 16-bit IP identification, wrapping but skipping 0 (the "no
   fragmentation context" value).  One counter per stack: every
   transmission — retransmissions included — gets a fresh ID, because
   reassembly keys fragments by (src, id, proto) and two in-flight
   transmissions sharing an ID could mis-reassemble. *)
let fresh_ip_id t =
  t.ip_id <- (if t.ip_id >= 0xFFFF then 1 else t.ip_id + 1);
  t.ip_id

(* Initial send sequence numbers, one stride per connection: transfers
   stay far below the stride, so sequence spaces of a node's connections
   never collide and plain integer comparison is safe. *)
let fresh_iss t =
  let v = t.iss in
  t.iss <- t.iss + 1_000_000;
  v

let fresh_ephemeral_port t =
  let p = t.ephemeral in
  t.ephemeral <- (if p >= 0xFFFF then 49152 else p + 1);
  p

let transmit_tcp t ~dst seg =
  let pkt =
    Packet.make ~id:(fresh_ip_id t) ~proto:Ipv4.Proto.tcp ~src:(address t)
      ~dst (Tcp.encode seg)
  in
  Mhrp.Agent.send t.agent pkt

let transmit_udp t ?id ?tap ~dst udp =
  let id = match id with Some id -> id | None -> fresh_ip_id t in
  let pkt =
    Packet.make ~id ~proto:Ipv4.Proto.udp ~src:(address t) ~dst
      (Ipv4.Udp.encode udp)
  in
  (match tap with Some f -> f pkt | None -> ());
  Mhrp.Agent.send t.agent pkt

(* A deliberately RFC-shaped reset for a segment that reached no
   connection and no listener: acknowledge exactly what arrived so the
   peer can match it, and never reset a reset. *)
let send_rst_for t ~src (seg : Tcp.t) =
  if not (Tcp.has_flag seg Tcp.Rst) then begin
    let reply =
      if Tcp.has_flag seg Tcp.Ack then
        Tcp.make ~seq:seg.Tcp.ack ~flags:[Tcp.Rst]
          ~src_port:seg.Tcp.dst_port ~dst_port:seg.Tcp.src_port Bytes.empty
      else
        let advance =
          Bytes.length seg.Tcp.data
          + (if Tcp.has_flag seg Tcp.Syn then 1 else 0)
          + if Tcp.has_flag seg Tcp.Fin then 1 else 0
        in
        Tcp.make ~seq:0 ~ack:(seg.Tcp.seq + advance)
          ~flags:[Tcp.Rst; Tcp.Ack] ~src_port:seg.Tcp.dst_port
          ~dst_port:seg.Tcp.src_port Bytes.empty
    in
    t.counters.Counters.resets_sent <-
      t.counters.Counters.resets_sent + 1;
    t.counters.Counters.segs_sent <- t.counters.Counters.segs_sent + 1;
    transmit_tcp t ~dst:src reply
  end

let dispatch_tcp t ~src (seg : Tcp.t) =
  let key = (seg.Tcp.dst_port, Addr.to_key src, seg.Tcp.src_port) in
  match Hashtbl.find_opt t.conns key with
  | Some rx -> rx ~src seg
  | None ->
    (match Hashtbl.find_opt t.listeners seg.Tcp.dst_port with
     | Some rx -> rx ~src seg
     | None -> send_rst_for t ~src seg)

let dispatch_udp t ~src (udp : Ipv4.Udp.t) =
  match Hashtbl.find_opt t.udp_ports udp.Ipv4.Udp.dst_port with
  | Some rx -> rx ~src udp
  | None -> ()

let handle_packet t (pkt : Packet.t) =
  if pkt.Packet.proto = Ipv4.Proto.tcp then
    match Tcp.decode pkt.Packet.payload with
    | Some seg -> dispatch_tcp t ~src:pkt.Packet.src seg
    | None -> ()
  else if pkt.Packet.proto = Ipv4.Proto.udp then
    match Ipv4.Udp.decode pkt.Packet.payload with
    | udp -> dispatch_udp t ~src:pkt.Packet.src udp
    | exception Invalid_argument _ -> ()

(* The app tap is claimed lazily, on the first registration that needs
   to receive: a send-only stack (datagram generators) leaves the
   agent's tap — often Workload.Metrics' delivery watcher — exactly as
   it found it. *)
let ensure_tap t =
  if not t.tap_installed then begin
    t.tap_installed <- true;
    Mhrp.Agent.on_app_receive t.agent (handle_packet t)
  end

let register_conn t ~local_port ~remote ~remote_port rx =
  let key = (local_port, Addr.to_key remote, remote_port) in
  if Hashtbl.mem t.conns key then
    invalid_arg "Transport.Stack: connection already registered";
  ensure_tap t;
  Hashtbl.replace t.conns key rx

let unregister_conn t ~local_port ~remote ~remote_port =
  Hashtbl.remove t.conns (local_port, Addr.to_key remote, remote_port)

let register_listener t ~port rx =
  if Hashtbl.mem t.listeners port then
    invalid_arg "Transport.Stack: port already has a listener";
  ensure_tap t;
  Hashtbl.replace t.listeners port rx

let unregister_listener t ~port = Hashtbl.remove t.listeners port

let register_udp t ~port rx =
  if Hashtbl.mem t.udp_ports port then
    invalid_arg "Transport.Stack: UDP port already bound";
  ensure_tap t;
  Hashtbl.replace t.udp_ports port rx

let connections t = Hashtbl.length t.conns
