(** Connection-oriented transport over MHRP: the socket API.

    This is the single application-facing interface of the transport
    layer.  Applications [listen], [connect], [send] byte streams and
    receive them through [recv_cb]; underneath, each socket runs a
    three-way handshake, sliding-window transfer with cumulative acks,
    go-back-N retransmission on an exponentially-backed-off RTO timer,
    and an orderly FIN teardown — all over {!Ipv4.Tcp_lite} segments
    carried by {!Mhrp.Agent.send}, so connections survive hand-offs
    transparently.

    No application-level code should construct raw TCP segments;
    {!Stack}'s low-level hooks exist only for this module.

    Everything is driven by the node's {!Netsim.Engine}, with no global
    state: simulations built on sockets are bit-identical under
    [--jobs N]. *)

type t

(** {1 Opening connections} *)

type listener

val listen :
  Stack.t -> port:int -> ?mss:int -> ?window:int -> ?rto:Netsim.Time.t ->
  ?rto_max:Netsim.Time.t -> ?max_retries:int -> (t -> unit) -> listener
(** [listen stack ~port accept] accepts connections on [port].  [accept]
    runs when the SYN arrives — before the SYN|ACK is sent and before
    any data can exist — so callbacks installed there never miss bytes.
    Raises [Invalid_argument] if the port already has a listener. *)

val close_listener : listener -> unit
(** Stop accepting; established connections are unaffected. *)

val connect :
  Stack.t -> ?src_port:int -> ?mss:int -> ?window:int -> ?rto:Netsim.Time.t ->
  ?rto_max:Netsim.Time.t -> ?max_retries:int -> dst:Ipv4.Addr.t ->
  dst_port:int -> unit -> t
(** Active open: sends the SYN immediately and returns the socket in the
    syn-sent state.  [send] may be called right away — bytes queue and
    flush once established.  Defaults: an ephemeral [src_port],
    [mss] 512 bytes, [window] 4096 bytes in flight, [rto] 300 ms doubling
    up to [rto_max] 5 s, giving up after [max_retries] 12 consecutive
    unacknowledged timeouts. *)

(** {1 The stream} *)

val send : t -> bytes -> unit
(** Append to the send stream.  Transmits up to the window immediately
    when established, queues otherwise.  Raises [Invalid_argument] after
    [close]. *)

val recv_cb : t -> (bytes -> unit) -> unit
(** [recv_cb t f] calls [f] with each in-order chunk of the peer's
    stream, exactly once per byte, in order — out-of-order segments are
    buffered and delivered when the gap fills. *)

val close : t -> unit
(** Orderly shutdown: a FIN is sent once all queued data has been
    transmitted; the connection finishes tearing down as acks and the
    peer's FIN arrive.  Idempotent. *)

val abort : t -> unit
(** Send a RST and drop the connection immediately. *)

(** {1 Events} *)

val on_established : t -> (unit -> unit) -> unit
val on_drained : t -> (unit -> unit) -> unit
(** Every byte queued so far has been acknowledged. *)

val on_peer_close : t -> (unit -> unit) -> unit
(** The peer's FIN arrived: no more data will be delivered. *)

val on_error : t -> (string -> unit) -> unit
(** Reset by peer, or retransmission limit reached; the socket is closed
    when this fires. *)

val on_closed : t -> (unit -> unit) -> unit

(** {1 Introspection} *)

val counters : t -> Counters.t
(** This connection's counters; the stack aggregates them too. *)

val state : t -> string
val is_established : t -> bool
val is_closed : t -> bool
val local_port : t -> int
val remote : t -> Ipv4.Addr.t
val remote_port : t -> int
val stack : t -> Stack.t

val bytes_queued : t -> int
(** Stream bytes not yet acknowledged (queued or in flight). *)

(** {1 Datagrams}

    The unreliable little sibling, for workloads that want tracked
    one-shot packets (constant-bit-rate generators, probes). *)

module Dgram : sig
  type t

  val create : ?tap:(Ipv4.Packet.t -> unit) -> Stack.t -> port:int -> t
  (** A datagram endpoint bound to [port] for sending; [tap] observes
      each outgoing packet (e.g. {!Workload.Metrics.note_send}).
      Creating one claims nothing — a send-only endpoint leaves the
      agent's receive tap alone. *)

  val sendto : t -> ?id:int -> dst:Ipv4.Addr.t -> dst_port:int -> bytes -> unit
  (** One UDP datagram.  [id] pins the IP identification (workload
      generators track their own id sequences); default is the stack's
      fresh-id counter. *)

  val on_recv :
    t -> (src:Ipv4.Addr.t -> src_port:int -> bytes -> unit) -> unit
  (** Bind the port for receiving (this installs the stack's receive
      tap).  Raises [Invalid_argument] if the port is already bound. *)
end
