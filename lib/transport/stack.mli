(** Per-node transport stack: TCP/UDP demultiplexing over an MHRP agent.

    One stack per agent.  The stack owns the agent's application-receive
    tap — but claims it {e lazily}, on the first registration that can
    receive (a listener, a connection, a bound datagram port).  A stack
    used only to send datagrams never touches the tap, so metric
    watchers installed with {!Workload.Metrics.watch_receiver} keep
    working unchanged next to send-only traffic generators.

    At most one receiving stack per agent: installing a second replaces
    the first's tap, exactly like any other call to
    {!Mhrp.Agent.on_app_receive}.

    Determinism: all state is per-stack (no globals), IP identification
    and initial sequence numbers come from per-stack counters, and every
    timer runs on the node's {!Netsim.Engine} — a simulation using
    stacks stays bit-identical under [--jobs N]. *)

type t

val create : Mhrp.Agent.t -> t
val agent : t -> Mhrp.Agent.t
val engine : t -> Netsim.Engine.t
val address : t -> Ipv4.Addr.t

val counters : t -> Counters.t
(** Aggregate over every socket and datagram port of this stack. *)

val connections : t -> int
(** Currently-registered TCP connections (any state before close). *)

(** {1 Internals — the plumbing {!Socket} is built on}

    Applications should not call these; use {!Socket}. *)

type tcp_rx = src:Ipv4.Addr.t -> Ipv4.Tcp_lite.t -> unit
type udp_rx = src:Ipv4.Addr.t -> Ipv4.Udp.t -> unit

val register_conn :
  t -> local_port:int -> remote:Ipv4.Addr.t -> remote_port:int -> tcp_rx ->
  unit
(** Raises [Invalid_argument] if the 4-tuple is taken. *)

val unregister_conn :
  t -> local_port:int -> remote:Ipv4.Addr.t -> remote_port:int -> unit

val register_listener : t -> port:int -> tcp_rx -> unit
val unregister_listener : t -> port:int -> unit
val register_udp : t -> port:int -> udp_rx -> unit

val fresh_ip_id : t -> int
(** 16-bit, wraps skipping 0; fresh per transmission (retransmissions
    included) so fragment reassembly keys never collide. *)

val fresh_iss : t -> int
val fresh_ephemeral_port : t -> int

val transmit_tcp : t -> dst:Ipv4.Addr.t -> Ipv4.Tcp_lite.t -> unit
(** Encode, wrap in a fresh-ID IP packet and hand to
    {!Mhrp.Agent.send} (mobility-transparent: tunneled when needed). *)

val transmit_udp :
  t -> ?id:int -> ?tap:(Ipv4.Packet.t -> unit) -> dst:Ipv4.Addr.t ->
  Ipv4.Udp.t -> unit
(** [id] overrides the stack's IP-id counter (workload generators keep
    their own tracked id sequences); [tap] sees the application-level
    packet just before it is sent. *)

val send_rst_for : t -> src:Ipv4.Addr.t -> Ipv4.Tcp_lite.t -> unit
(** Reset whatever connection the peer thinks [seg] belongs to (never
    sent in response to a reset). *)
