(** Transport counters, kept per connection and aggregated per stack.

    All counts are deterministic functions of the simulation, so
    experiments gate them exactly. *)

type t = {
  mutable segs_sent : int;  (** Every segment transmitted. *)
  mutable segs_received : int;  (** Every well-formed segment demuxed. *)
  mutable data_segs_sent : int;
  (** Segments carrying payload, retransmissions included. *)
  mutable data_bytes_sent : int;
  mutable data_bytes_received : int;
  (** Payload bytes delivered to the application, in order, once. *)
  mutable retransmissions : int;  (** Segments re-sent by the RTO timer. *)
  mutable acks_received : int;
  mutable out_of_order : int;  (** Data segments buffered above a gap. *)
  mutable duplicates : int;  (** Data segments wholly below [rcv_nxt]. *)
  mutable resets_sent : int;
  mutable resets_received : int;
  mutable conns_opened : int;  (** Active opens ([connect]). *)
  mutable conns_accepted : int;  (** Passive opens (listener SYNs). *)
  mutable conns_established : int;
  mutable conns_closed : int;  (** Orderly FIN teardowns completed. *)
  mutable conns_failed : int;  (** Handshakes or transfers given up. *)
}

val create : unit -> t
val add : into:t -> t -> unit
val pp : Format.formatter -> t -> unit
