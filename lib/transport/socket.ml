module Tcp = Ipv4.Tcp_lite
module Time = Netsim.Time
module Engine = Netsim.Engine

let adv_window = 0xFFFF
let default_mss = 512
let default_window = 4096
let default_rto = Time.of_ms 300
let default_rto_max = Time.of_sec 5.0
let default_max_retries = 12

(* How long a fully-torn-down endpoint lingers to re-ack a lost final
   segment before its demux entry is released. *)
let time_wait_delay = Time.of_ms 1000

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let state_name = function
  | Syn_sent -> "syn-sent"
  | Syn_received -> "syn-received"
  | Established -> "established"
  | Fin_wait_1 -> "fin-wait-1"
  | Fin_wait_2 -> "fin-wait-2"
  | Close_wait -> "close-wait"
  | Closing -> "closing"
  | Last_ack -> "last-ack"
  | Time_wait -> "time-wait"
  | Closed -> "closed"

type t = {
  stack : Stack.t;
  engine : Engine.t;
  local_port : int;
  remote : Ipv4.Addr.t;
  remote_port : int;
  mss : int;
  swnd : int;  (* our in-flight cap, bytes *)
  rto_init : Time.t;
  rto_max : Time.t;
  max_retries : int;
  counters : Counters.t;
  mutable state : state;
  (* Send side.  The stream is a Buffer that is never trimmed: the byte
     with sequence number [s] lives at index [s - (iss + 1)], so
     retransmission needs no separate queue.  Transfers are bounded well
     below the per-connection ISS stride, so this stays modest. *)
  iss : int;
  sendbuf : Buffer.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable peer_wnd : int;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable drain_mark : int;
  (* Receive side: a cumulative-ack cursor plus a seq-sorted
     out-of-order list drained when the gap fills. *)
  mutable irs : int;
  mutable rcv_nxt : int;
  mutable ooo : (int * bytes) list;
  mutable peer_fin_seq : int option;
  mutable peer_fin_done : bool;
  (* One retransmission timer per connection, exponential backoff. *)
  mutable timer : Netsim.Event_queue.handle option;
  mutable rto_cur : Time.t;
  mutable retries : int;
  mutable established_cb : (unit -> unit) option;
  mutable recv : (bytes -> unit) option;
  mutable drained_cb : (unit -> unit) option;
  mutable peer_close_cb : (unit -> unit) option;
  mutable error_cb : (string -> unit) option;
  mutable closed_cb : (unit -> unit) option;
}

let make_sock stack ~local_port ~remote ~remote_port ~iss ~mss ~window ~rto
    ~rto_max ~max_retries ~state =
  { stack;
    engine = Stack.engine stack;
    local_port;
    remote;
    remote_port;
    mss;
    swnd = window;
    rto_init = rto;
    rto_max;
    max_retries;
    counters = Counters.create ();
    state;
    iss;
    sendbuf = Buffer.create 256;
    snd_una = iss;
    snd_nxt = iss;
    peer_wnd = adv_window;
    fin_queued = false;
    fin_sent = false;
    drain_mark = iss + 1;
    irs = 0;
    rcv_nxt = 0;
    ooo = [];
    peer_fin_seq = None;
    peer_fin_done = false;
    timer = None;
    rto_cur = rto;
    retries = 0;
    established_cb = None;
    recv = None;
    drained_cb = None;
    peer_close_cb = None;
    error_cb = None;
    closed_cb = None }

(* Every count lands both on the connection and on its stack's
   aggregate. *)
let bump t f =
  f t.counters;
  f (Stack.counters t.stack)

let data_end t = t.iss + 1 + Buffer.length t.sendbuf

let emit t ?(data = Bytes.empty) ?(retransmit = false) ~flags ~seq () =
  let ack = if List.mem Tcp.Ack flags then t.rcv_nxt else 0 in
  let seg =
    Tcp.make ~seq ~ack ~flags ~window:adv_window ~src_port:t.local_port
      ~dst_port:t.remote_port data
  in
  bump t (fun c -> c.Counters.segs_sent <- c.Counters.segs_sent + 1);
  let len = Bytes.length data in
  if len > 0 then begin
    bump t (fun c ->
        c.Counters.data_segs_sent <- c.Counters.data_segs_sent + 1);
    bump t (fun c ->
        c.Counters.data_bytes_sent <- c.Counters.data_bytes_sent + len)
  end;
  if retransmit then
    bump t (fun c ->
        c.Counters.retransmissions <- c.Counters.retransmissions + 1);
  Stack.transmit_tcp t.stack ~dst:t.remote seg

let send_ack t = emit t ~flags:[ Tcp.Ack ] ~seq:t.snd_nxt ()

let cancel_timer t =
  match t.timer with
  | Some h ->
    ignore (Engine.cancel t.engine h);
    t.timer <- None
  | None -> ()

let unregister t =
  Stack.unregister_conn t.stack ~local_port:t.local_port ~remote:t.remote
    ~remote_port:t.remote_port

let become_closed t =
  if t.state <> Closed then begin
    t.state <- Closed;
    cancel_timer t;
    unregister t;
    match t.closed_cb with Some f -> f () | None -> ()
  end

let fail t reason =
  if t.state <> Closed then begin
    bump t (fun c -> c.Counters.conns_failed <- c.Counters.conns_failed + 1);
    cancel_timer t;
    t.state <- Closed;
    unregister t;
    (match t.error_cb with Some f -> f reason | None -> ());
    match t.closed_cb with Some f -> f () | None -> ()
  end

let enter_time_wait t =
  if t.state <> Time_wait && t.state <> Closed then begin
    bump t (fun c -> c.Counters.conns_closed <- c.Counters.conns_closed + 1);
    t.state <- Time_wait;
    cancel_timer t;
    ignore
      (Engine.schedule_after t.engine ~delay:time_wait_delay (fun () ->
           become_closed t))
  end

let timer_allowed t =
  match t.state with Closed | Time_wait -> false | _ -> true

let rec try_send t =
  (match t.state with
  | Established | Close_wait ->
    let wnd = min t.swnd (max t.peer_wnd t.mss) in
    let limit = t.snd_una + wnd in
    let de = data_end t in
    while t.snd_nxt < de && t.snd_nxt < limit do
      let off = t.snd_nxt - (t.iss + 1) in
      let len = min t.mss (min (de - t.snd_nxt) (limit - t.snd_nxt)) in
      let chunk = Bytes.of_string (Buffer.sub t.sendbuf off len) in
      emit t ~data:chunk ~flags:[ Tcp.Psh; Tcp.Ack ] ~seq:t.snd_nxt ();
      t.snd_nxt <- t.snd_nxt + len
    done;
    if t.fin_queued && (not t.fin_sent) && t.snd_nxt = de then begin
      emit t ~flags:[ Tcp.Fin; Tcp.Ack ] ~seq:t.snd_nxt ();
      t.fin_sent <- true;
      t.snd_nxt <- t.snd_nxt + 1;
      t.state <- (match t.state with Close_wait -> Last_ack | _ -> Fin_wait_1)
    end
  | _ -> ());
  arm_timer t

and arm_timer t =
  if t.timer = None && t.snd_una < t.snd_nxt && timer_allowed t then
    t.timer <-
      Some
        (Engine.schedule_after t.engine ~delay:t.rto_cur (fun () ->
             t.timer <- None;
             on_timer t))

and on_timer t =
  if t.snd_una < t.snd_nxt && timer_allowed t then
    if t.retries >= t.max_retries then fail t "retransmission limit reached"
    else begin
      t.retries <- t.retries + 1;
      t.rto_cur <- min (t.rto_cur * 2) t.rto_max;
      resend t;
      arm_timer t
    end

and resend t =
  match t.state with
  | Syn_sent -> emit t ~retransmit:true ~flags:[ Tcp.Syn ] ~seq:t.iss ()
  | Syn_received ->
    emit t ~retransmit:true ~flags:[ Tcp.Syn; Tcp.Ack ] ~seq:t.iss ()
  | _ ->
    (* Go-back-N: replay the whole outstanding window from [snd_una].
       After a hand-off blackout this refills the pipe in one RTO
       instead of trickling one segment per timeout. *)
    let wnd = min t.swnd (max t.peer_wnd t.mss) in
    let stop = min t.snd_nxt (t.snd_una + wnd) in
    let de = data_end t in
    let seq = ref t.snd_una in
    while !seq < stop do
      if !seq < de then begin
        let off = !seq - (t.iss + 1) in
        let len = min t.mss (min (de - !seq) (stop - !seq)) in
        let chunk = Bytes.of_string (Buffer.sub t.sendbuf off len) in
        emit t ~retransmit:true ~data:chunk ~flags:[ Tcp.Psh; Tcp.Ack ]
          ~seq:!seq ();
        seq := !seq + len
      end
      else begin
        emit t ~retransmit:true ~flags:[ Tcp.Fin; Tcp.Ack ] ~seq:!seq ();
        seq := !seq + 1
      end
    done

let establish t =
  t.state <- Established;
  bump t (fun c ->
      c.Counters.conns_established <- c.Counters.conns_established + 1);
  (match t.established_cb with Some f -> f () | None -> ());
  try_send t

let handle_ack t (seg : Tcp.t) =
  if Tcp.has_flag seg Tcp.Ack then begin
    t.peer_wnd <- seg.Tcp.window;
    if Bytes.length seg.Tcp.data = 0 && not (Tcp.has_flag seg Tcp.Syn) then
      bump t (fun c ->
          c.Counters.acks_received <- c.Counters.acks_received + 1);
    let ack = seg.Tcp.ack in
    if ack > t.snd_una && ack <= t.snd_nxt then begin
      t.snd_una <- ack;
      t.retries <- 0;
      t.rto_cur <- t.rto_init;
      cancel_timer t;
      if t.state = Syn_received && t.snd_una > t.iss then establish t;
      let de = data_end t in
      if t.fin_sent && t.snd_una = de + 1 then
        (match t.state with
        | Fin_wait_1 -> t.state <- Fin_wait_2
        | Closing -> enter_time_wait t
        | Last_ack ->
          bump t (fun c ->
              c.Counters.conns_closed <- c.Counters.conns_closed + 1);
          become_closed t
        | _ -> ());
      if t.snd_una = de && t.drain_mark < de then begin
        t.drain_mark <- de;
        match t.drained_cb with Some f -> f () | None -> ()
      end;
      try_send t
    end
  end

let deliver t data =
  bump t (fun c ->
      c.Counters.data_bytes_received <-
        c.Counters.data_bytes_received + Bytes.length data);
  match t.recv with Some f -> f data | None -> ()

let insert_ooo t seq data =
  if List.mem_assoc seq t.ooo then
    bump t (fun c -> c.Counters.duplicates <- c.Counters.duplicates + 1)
  else begin
    bump t (fun c -> c.Counters.out_of_order <- c.Counters.out_of_order + 1);
    t.ooo <-
      List.sort (fun (a, _) (b, _) -> compare a b) ((seq, data) :: t.ooo)
  end

let rec drain_ooo t =
  match t.ooo with
  | (s, d) :: rest when s <= t.rcv_nxt ->
    let len = Bytes.length d in
    if s + len > t.rcv_nxt then begin
      let skip = t.rcv_nxt - s in
      deliver t (Bytes.sub d skip (len - skip));
      t.rcv_nxt <- s + len
    end;
    t.ooo <- rest;
    drain_ooo t
  | _ -> ()

let consume_fin t =
  t.rcv_nxt <- t.rcv_nxt + 1;
  t.peer_fin_done <- true;
  (match t.peer_close_cb with Some f -> f () | None -> ());
  match t.state with
  | Established -> t.state <- Close_wait
  | Fin_wait_1 -> t.state <- Closing
  | Fin_wait_2 -> enter_time_wait t
  | _ -> ()

let handle_data t (seg : Tcp.t) =
  let len = Bytes.length seg.Tcp.data in
  let has_fin = Tcp.has_flag seg Tcp.Fin in
  let has_syn = Tcp.has_flag seg Tcp.Syn in
  (* A pure ack needs no reply (acking acks never converges); anything
     occupying sequence space — data, FIN, a replayed SYN — gets the
     cumulative ack back, duplicates included. *)
  if len > 0 || has_fin || has_syn then begin
    if has_fin && not t.peer_fin_done then
      t.peer_fin_seq <- Some (seg.Tcp.seq + len);
    (if len > 0 then
       let seg_end = seg.Tcp.seq + len in
       if seg_end <= t.rcv_nxt then
         bump t (fun c -> c.Counters.duplicates <- c.Counters.duplicates + 1)
       else if seg.Tcp.seq > t.rcv_nxt then
         insert_ooo t seg.Tcp.seq seg.Tcp.data
       else begin
         let skip = t.rcv_nxt - seg.Tcp.seq in
         deliver t (Bytes.sub seg.Tcp.data skip (len - skip));
         t.rcv_nxt <- seg_end;
         drain_ooo t
       end);
    (match t.peer_fin_seq with
    | Some s when s = t.rcv_nxt && not t.peer_fin_done -> consume_fin t
    | _ -> ());
    if t.state <> Closed then send_ack t
  end

let rx t ~src:_ (seg : Tcp.t) =
  if t.state <> Closed then begin
    bump t (fun c ->
        c.Counters.segs_received <- c.Counters.segs_received + 1);
    if Tcp.has_flag seg Tcp.Rst then begin
      bump t (fun c ->
          c.Counters.resets_received <- c.Counters.resets_received + 1);
      fail t "connection reset by peer"
    end
    else
      match t.state with
      | Syn_sent ->
        if
          Tcp.has_flag seg Tcp.Syn
          && Tcp.has_flag seg Tcp.Ack
          && seg.Tcp.ack = t.iss + 1
        then begin
          t.irs <- seg.Tcp.seq;
          t.rcv_nxt <- seg.Tcp.seq + 1;
          t.peer_wnd <- seg.Tcp.window;
          t.snd_una <- seg.Tcp.ack;
          t.retries <- 0;
          t.rto_cur <- t.rto_init;
          cancel_timer t;
          send_ack t;
          establish t
        end
      | Syn_received when Tcp.has_flag seg Tcp.Syn ->
        (* our SYN|ACK was lost; the peer replayed its SYN *)
        bump t (fun c ->
            c.Counters.duplicates <- c.Counters.duplicates + 1);
        emit t ~retransmit:true ~flags:[ Tcp.Syn; Tcp.Ack ] ~seq:t.iss ();
        arm_timer t
      | _ ->
        handle_ack t seg;
        if t.state <> Closed then handle_data t seg
  end

let connect stack ?src_port ?(mss = default_mss) ?(window = default_window)
    ?(rto = default_rto) ?(rto_max = default_rto_max)
    ?(max_retries = default_max_retries) ~dst ~dst_port () =
  let local_port =
    match src_port with
    | Some p -> p
    | None -> Stack.fresh_ephemeral_port stack
  in
  let t =
    make_sock stack ~local_port ~remote:dst ~remote_port:dst_port
      ~iss:(Stack.fresh_iss stack) ~mss ~window ~rto ~rto_max ~max_retries
      ~state:Syn_sent
  in
  Stack.register_conn stack ~local_port ~remote:dst ~remote_port:dst_port
    (rx t);
  bump t (fun c -> c.Counters.conns_opened <- c.Counters.conns_opened + 1);
  emit t ~flags:[ Tcp.Syn ] ~seq:t.iss ();
  t.snd_nxt <- t.iss + 1;
  arm_timer t;
  t

type listener = {
  l_stack : Stack.t;
  l_port : int;
  mutable l_open : bool;
}

let listen stack ~port ?(mss = default_mss) ?(window = default_window)
    ?(rto = default_rto) ?(rto_max = default_rto_max)
    ?(max_retries = default_max_retries) accept_cb =
  let l = { l_stack = stack; l_port = port; l_open = true } in
  Stack.register_listener stack ~port (fun ~src seg ->
      if Tcp.has_flag seg Tcp.Rst then ()
      else if Tcp.has_flag seg Tcp.Syn && not (Tcp.has_flag seg Tcp.Ack) then begin
        let t =
          make_sock stack ~local_port:port ~remote:src
            ~remote_port:seg.Tcp.src_port ~iss:(Stack.fresh_iss stack) ~mss
            ~window ~rto ~rto_max ~max_retries ~state:Syn_received
        in
        t.irs <- seg.Tcp.seq;
        t.rcv_nxt <- seg.Tcp.seq + 1;
        t.peer_wnd <- seg.Tcp.window;
        Stack.register_conn stack ~local_port:port ~remote:src
          ~remote_port:seg.Tcp.src_port (rx t);
        bump t (fun c ->
            c.Counters.conns_accepted <- c.Counters.conns_accepted + 1);
        bump t (fun c ->
            c.Counters.segs_received <- c.Counters.segs_received + 1);
        (* the application installs its callbacks now, before any data *)
        accept_cb t;
        emit t ~flags:[ Tcp.Syn; Tcp.Ack ] ~seq:t.iss ();
        t.snd_nxt <- t.iss + 1;
        arm_timer t
      end
      else Stack.send_rst_for stack ~src seg);
  l

let close_listener l =
  if l.l_open then begin
    l.l_open <- false;
    Stack.unregister_listener l.l_stack ~port:l.l_port
  end

let send t data =
  (match t.state with
  | Closed -> invalid_arg "Transport.Socket.send: connection is closed"
  | _ when t.fin_queued ->
    invalid_arg "Transport.Socket.send: close already requested"
  | _ -> ());
  Buffer.add_bytes t.sendbuf data;
  match t.state with Established | Close_wait -> try_send t | _ -> ()

let close t =
  match t.state with
  | Closed | Time_wait -> ()
  | _ when t.fin_queued -> ()
  | Syn_sent ->
    (* nothing the peer has acted on yet: quietly drop *)
    cancel_timer t;
    t.state <- Closed;
    unregister t
  | _ ->
    t.fin_queued <- true;
    try_send t

let abort t =
  match t.state with
  | Closed -> ()
  | _ ->
    bump t (fun c -> c.Counters.resets_sent <- c.Counters.resets_sent + 1);
    emit t ~flags:[ Tcp.Rst ] ~seq:t.snd_nxt ();
    cancel_timer t;
    t.state <- Closed;
    unregister t;
    (match t.closed_cb with Some f -> f () | None -> ())

let recv_cb t f = t.recv <- Some f
let on_established t f = t.established_cb <- Some f
let on_drained t f = t.drained_cb <- Some f
let on_peer_close t f = t.peer_close_cb <- Some f
let on_error t f = t.error_cb <- Some f
let on_closed t f = t.closed_cb <- Some f
let counters t = t.counters
let state t = state_name t.state
let is_established t = t.state = Established
let is_closed t = t.state = Closed
let local_port t = t.local_port
let remote t = t.remote
let remote_port t = t.remote_port
let stack t = t.stack
let bytes_queued t = data_end t - t.snd_una
(* unacknowledged stream bytes, FIN excluded *)

module Dgram = struct
  type nonrec t = {
    d_stack : Stack.t;
    d_port : int;
    d_tap : (Ipv4.Packet.t -> unit) option;
  }

  let create ?tap stack ~port = { d_stack = stack; d_port = port; d_tap = tap }

  let sendto t ?id ~dst ~dst_port data =
    let udp = Ipv4.Udp.make ~src_port:t.d_port ~dst_port data in
    Stack.transmit_udp t.d_stack ?id ?tap:t.d_tap ~dst udp

  let on_recv t f =
    Stack.register_udp t.d_stack ~port:t.d_port (fun ~src udp ->
        f ~src ~src_port:udp.Ipv4.Udp.src_port udp.Ipv4.Udp.data)
end
