(* Hot-path variant: mandatory labels (each optional argument boxes a
   [Some] — measurable at per-packet rates) and unchecked reads, sound
   because the range is validated once at entry. *)
(* Unchecked unaligned 16-bit load (the ocplib-endian primitives): one
   memory access per summed word where [Bytes.get_uint16_be] spends a
   bounds check and two shifts.  Callers validate the range once.

   The words are summed in NATIVE byte order and the folded result is
   swapped once at the end: one's-complement addition commutes with
   byte swapping (RFC 1071 Section 2(B), "byte order independence"), so
   this equals the big-endian word sum while spending zero per-word
   swaps on little-endian machines. *)
external get_16u : bytes -> int -> int = "%caml_bytes_get16u"
external bswap16 : int -> int = "%bswap16"

let to_be16 w = if Sys.big_endian then w else bswap16 w

let of_range buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.of_range: range";
  let native_sum =
    if len = 20 then
      (* the option-free IPv4 header, by far the hottest length: ten
         words unrolled *)
      get_16u buf off + get_16u buf (off + 2) + get_16u buf (off + 4)
      + get_16u buf (off + 6) + get_16u buf (off + 8)
      + get_16u buf (off + 10) + get_16u buf (off + 12)
      + get_16u buf (off + 14) + get_16u buf (off + 16)
      + get_16u buf (off + 18)
    else begin
      let sum = ref 0 in
      let i = ref off in
      let stop = off + len in
      while !i + 1 < stop do
        sum := !sum + get_16u buf !i;
        i := !i + 2
      done;
      (* a trailing odd byte is padded with zero on its right in
         big-endian terms: in native order that's the byte itself on
         little-endian, the byte shifted on big-endian *)
      if !i < stop then begin
        let b = Char.code (Bytes.unsafe_get buf !i) in
        sum := !sum + (if Sys.big_endian then b lsl 8 else b)
      end;
      !sum
    end
  in
  (* fold carries, then swap the 16-bit result into big-endian terms *)
  let s = ref native_sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot (to_be16 !s) land 0xFFFF

let of_bytes ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  of_range buf ~off ~len

(* A correct buffer checksums to 0x0000 (complement of 0xFFFF). *)
let valid_range buf ~off ~len = of_range buf ~off ~len = 0
let valid ?(off = 0) ?len buf = of_bytes ~off ?len buf = 0

let set buf ~at ~off ~len =
  Bytes.set buf at '\000';
  Bytes.set buf (at + 1) '\000';
  let c = of_bytes ~off ~len buf in
  Bytes.set buf at (Char.chr ((c lsr 8) land 0xFF));
  Bytes.set buf (at + 1) (Char.chr (c land 0xFF))

(* Incremental update (RFC 1624 idea, done in plain arithmetic): the
   stored checksum is ~S where S is the folded one's-complement sum of
   the covered range, and [of_bytes]'s fold loop maps any positive sum
   onto the representative in [1, 0xFFFF] (multiples of 0xFFFF land on
   0xFFFF, never 0).  Replacing one 16-bit word changes the sum by
   [new_word - old_word]; re-normalising onto the same representative
   reproduces [set]'s output bit for bit.  The equivalence needs the
   covered range to sum to something positive both before and after the
   change — always true of an IPv4 header, whose first byte is 0x45 —
   and is property-tested against the full recompute in
   test_properties.ml. *)
let update buf ~at ~old_word ~new_word =
  if old_word < 0 || old_word > 0xFFFF || new_word < 0 || new_word > 0xFFFF
  then invalid_arg "Checksum.update: word out of range";
  let stored = Bytes.get_uint16_be buf at in
  let s = 0xFFFF - stored in
  let s = s - old_word + new_word in
  (* representative of s mod 0xFFFF in [1, 0xFFFF]; s is in
     [1 - 0xFFFF, 2 * 0xFFFF] here so two conditional folds suffice *)
  let s = if s <= 0 then s + 0xFFFF else s in
  let s = if s > 0xFFFF then s - 0xFFFF else s in
  Bytes.set_uint16_be buf at (0xFFFF - s)
