let of_bytes ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.of_bytes: range";
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  (* one 16-bit big-endian read per word instead of two byte reads *)
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be buf !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  (* fold carries *)
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let valid ?(off = 0) ?len buf =
  (* A correct buffer checksums to 0x0000 (complement of 0xFFFF). *)
  of_bytes ~off ?len buf = 0

let set buf ~at ~off ~len =
  Bytes.set buf at '\000';
  Bytes.set buf (at + 1) '\000';
  let c = of_bytes ~off ~len buf in
  Bytes.set buf at (Char.chr ((c lsr 8) land 0xFF));
  Bytes.set buf (at + 1) (Char.chr (c land 0xFF))
