type t =
  | End_of_options
  | Nop
  | Lsrr of { pointer : int; route : Addr.t array }
  | Record_route of { pointer : int; route : Addr.t array }

let lsrr addrs = Lsrr { pointer = 4; route = Array.of_list addrs }

let route_next pointer route =
  let idx = (pointer - 4) / 4 in
  if idx >= Array.length route then None else Some (route.(idx), pointer + 4)

let lsrr_next = function
  | Lsrr { pointer; route } ->
    (match route_next pointer route with
     | None -> None
     | Some (a, p) -> Some (a, Lsrr { pointer = p; route }))
  | Record_route { pointer; route } ->
    (match route_next pointer route with
     | None -> None
     | Some (a, p) -> Some (a, Record_route { pointer = p; route }))
  | End_of_options | Nop -> None

let lsrr_exhausted = function
  | Lsrr { pointer; route } | Record_route { pointer; route } ->
    (pointer - 4) / 4 >= Array.length route
  | End_of_options | Nop -> true

let encoded_length = function
  | End_of_options | Nop -> 1
  | Lsrr { route; _ } | Record_route { route; _ } ->
    3 + (4 * Array.length route)

let put_u8 buf i v = Bytes.set buf i (Char.chr (v land 0xFF))

let put_addr buf i a =
  let v = Addr.to_int a in
  put_u8 buf i (v lsr 24);
  put_u8 buf (i + 1) (v lsr 16);
  put_u8 buf (i + 2) (v lsr 8);
  put_u8 buf (i + 3) v

let get_u8 buf i = Char.code (Bytes.get buf i)

let get_addr buf i =
  Addr.of_int
    ((get_u8 buf i lsl 24) lor (get_u8 buf (i + 1) lsl 16)
     lor (get_u8 buf (i + 2) lsl 8) lor get_u8 buf (i + 3))

let encode_one buf off = function
  | End_of_options -> put_u8 buf off 0; off + 1
  | Nop -> put_u8 buf off 1; off + 1
  | Lsrr { pointer; route } | Record_route { pointer; route } as o ->
    let ty = match o with Lsrr _ -> 131 | _ -> 7 in
    let len = 3 + (4 * Array.length route) in
    put_u8 buf off ty;
    put_u8 buf (off + 1) len;
    put_u8 buf (off + 2) pointer;
    Array.iteri (fun i a -> put_addr buf (off + 3 + (4 * i)) a) route;
    off + len

let encode_all opts =
  let raw = List.fold_left (fun n o -> n + encoded_length o) 0 opts in
  let padded = (raw + 3) / 4 * 4 in
  if padded > 40 then invalid_arg "Ip_option.encode_all: options too long";
  let buf = Bytes.make padded '\000' in
  let off = List.fold_left (fun off o -> encode_one buf off o) 0 opts in
  ignore off;
  buf

let decode_all buf =
  let n = Bytes.length buf in
  let rec go off acc =
    if off >= n then List.rev acc
    else
      match get_u8 buf off with
      | 0 -> List.rev acc (* EOL: rest is padding *)
      | 1 -> go (off + 1) (Nop :: acc)
      | (131 | 7) as ty ->
        if off + 2 >= n then invalid_arg "Ip_option.decode_all: truncated";
        let len = get_u8 buf (off + 1) in
        let pointer = get_u8 buf (off + 2) in
        if len < 3 || off + len > n || (len - 3) mod 4 <> 0 then
          invalid_arg "Ip_option.decode_all: bad source-route length";
        let count = (len - 3) / 4 in
        let route =
          Array.init count (fun i -> get_addr buf (off + 3 + (4 * i)))
        in
        let o =
          if ty = 131 then Lsrr { pointer; route }
          else Record_route { pointer; route }
        in
        go (off + len) (o :: acc)
      | ty ->
        ignore ty;
        invalid_arg "Ip_option.decode_all: unknown option type"
  in
  go 0 []

let pp ppf = function
  | End_of_options -> Format.pp_print_string ppf "eol"
  | Nop -> Format.pp_print_string ppf "nop"
  | Lsrr { pointer; route } ->
    Format.fprintf ppf "lsrr(ptr=%d,[%s])" pointer
      (String.concat ";" (Array.to_list (Array.map Addr.to_string route)))
  | Record_route { pointer; route } ->
    Format.fprintf ppf "rr(ptr=%d,[%s])" pointer
      (String.concat ";" (Array.to_list (Array.map Addr.to_string route)))
