(** IP header options (RFC 791), in particular Loose Source Route and
    Record (LSRR), which the IBM mobile-IP proposals build on (Section 7).

    Any packet carrying options is processed on the router "slow path";
    {!Net} charges extra per-hop latency for it, which experiment E10
    measures. *)

type t =
  | End_of_options  (** type 0 *)
  | Nop  (** type 1 *)
  | Lsrr of { pointer : int; route : Addr.t array }
      (** type 131.  [pointer] is the RFC 791 octet offset (>= 4) of the
          next route entry to process. *)
  | Record_route of { pointer : int; route : Addr.t array }  (** type 7 *)

val lsrr : Addr.t list -> t
(** Fresh LSRR with pointer at the first entry. *)

val lsrr_next : t -> (Addr.t * t) option
(** [lsrr_next o] is the next hop of an LSRR/RR option and the option with
    its pointer advanced; [None] if exhausted or not a source route. *)

val lsrr_exhausted : t -> bool

val encoded_length : t -> int
(** Exact on-wire length in bytes (before 4-byte padding of the whole
    options area). *)

val encode_all : t list -> bytes
(** Encode a list of options, padded with zeros to a 4-byte multiple.
    Result length <= 40 (raises [Invalid_argument] beyond). *)

val decode_all : bytes -> t list
(** Inverse of [encode_all]; trailing padding is dropped.
    Raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> t -> unit
