(** IPv4 packets with byte-exact wire encoding.

    The payload is opaque [bytes]; transport and encapsulation layers
    ({!Udp}, {!Tcp_lite}, {!Icmp}, MHRP) provide their own codecs over it.
    This mirrors a real stack's layering and makes every overhead figure in
    the benchmarks a measurement of real serialized bytes. *)

type t = {
  tos : int;
  id : int;  (** IP identification. *)
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;  (** Bytes; always a multiple of 8. *)
  ttl : int;
  proto : Proto.t;
  src : Addr.t;
  dst : Addr.t;
  options : Ip_option.t list;
  payload : bytes;
}

val make :
  ?tos:int -> ?id:int -> ?dont_fragment:bool -> ?more_fragments:bool ->
  ?frag_offset:int -> ?ttl:int -> ?options:Ip_option.t list ->
  proto:Proto.t -> src:Addr.t -> dst:Addr.t -> bytes -> t
(** Default [ttl] is 64, [tos] 0, [id] 0, no options, no fragmentation
    fields set. *)

val is_fragment : t -> bool
(** More-fragments set or a non-zero offset. *)

val fragment : t -> mtu:int -> t list
(** Split into fragments whose wire size fits [mtu] (payload cut on 8-byte
    boundaries; options travel only in the first fragment, RFC 791's
    non-copied treatment).  Returns [\[t\]] unchanged if it already fits.
    Raises [Invalid_argument] if the packet has [dont_fragment] set and
    does not fit, or if [mtu] cannot hold the header plus 8 payload
    bytes. *)

(** Reassembly of fragmented packets at the destination. *)
module Reassembly : sig
  type packet = t
  type t

  val create : unit -> t

  val add : t -> now:int -> packet -> packet option
  (** Feed a fragment ([now] in µs for aging); returns the whole packet
      once every byte has arrived.  Non-fragments are returned
      immediately. *)

  val expire : t -> now:int -> older_than_us:int -> int
  (** Drop incomplete buffers older than the given age; returns how many
      were discarded. *)

  val pending : t -> int
end

val default_ttl : int

val header_length : t -> int
(** 20 plus encoded options, always a multiple of 4. *)

val total_length : t -> int
(** [header_length + payload length]: the wire size of the packet. *)

val has_options : t -> bool

val encode : t -> bytes
(** Serialize with correct length fields and header checksum.
    Raises [Invalid_argument] if the packet exceeds 65535 bytes or any
    field is out of range. *)

val decode : bytes -> t
(** Raises [Invalid_argument] on malformed input or bad checksum. *)

val decode_prefix : bytes -> (t * int) option
(** Parse a possibly-truncated packet — the leading bytes of an offending
    packet quoted inside an ICMP error.  The header must be complete and
    checksum-valid; the returned payload holds only the bytes present, and
    the [int] is how many payload bytes the full packet had. *)

val decr_ttl : t -> t option
(** [None] when the TTL hits zero — caller should emit ICMP time
    exceeded. *)

(** Zero-copy slice views over encoded packets.

    A view is a window [\[off, off+len)] onto a buffer holding a wire
    packet.  The forwarding fast path validates, reads fields and
    rewrites TTL (patching the header checksum incrementally) straight
    through a view, never materialising a {!t}; decoding happens only at
    protocol endpoints.  Views alias their buffer — mutation is visible
    to every other holder.  DESIGN.md Section 11 spells out the
    ownership rules (who may mutate a buffer, and when) that keep this
    sound. *)
module View : sig
  type packet := t
  type t

  val make : ?off:int -> ?len:int -> bytes -> t
  (** View of [\[off, off+len)] (default: the whole buffer).  Raises
      [Invalid_argument] if the range does not fit the buffer; the
      *contents* are not inspected — call {!valid} for that. *)

  val buffer : t -> bytes
  val offset : t -> int
  val length : t -> int

  val valid : t -> bool
  (** Structural acceptance, mirroring {!decode}: complete IPv4 header,
      valid header checksum, total length within the slice.  Total —
      never raises, whatever the bytes.  Does not parse option contents
      (the fast path handles only option-free headers). *)

  (** Field accessors.  Unchecked: call only after {!valid}. *)

  val header_length : t -> int
  val total_length : t -> int
  val tos : t -> int
  val id : t -> int
  val ttl : t -> int
  val proto : t -> Proto.t
  val src : t -> Addr.t
  val dst : t -> Addr.t
  val has_options : t -> bool
  val dont_fragment : t -> bool
  val is_fragment : t -> bool

  val set_ttl : t -> int -> unit
  (** Rewrite the TTL byte in place and incrementally patch the header
      checksum ({!Checksum.update}) — byte-for-byte what
      decode → set → {!encode} would produce.  Raises [Invalid_argument]
      outside [0, 255]. *)

  val decr_ttl : t -> unit
  (** [set_ttl (ttl - 1)].  Raises [Invalid_argument] at zero — the fast
      path checks TTL before committing to forward. *)

  val to_wire : t -> bytes
  (** The viewed bytes.  Returns the underlying buffer itself (no copy)
      when the view covers it exactly, so the fast path can hand a
      received buffer straight back to the wire. *)

  val decode : t -> packet
  (** Full decode of the slice, for endpoints and slow-path fallbacks. *)

  val decode_prefix : t -> (packet * int) option
end

val pp : Format.formatter -> t -> unit
(** One-line summary: [src -> dst proto len=N ttl=N]. *)
