type t = {
  src_port : int;
  dst_port : int;
  data : bytes;
}

let header_length = 8

let make ~src_port ~dst_port data = { src_port; dst_port; data }

let put_u16 buf i v =
  Bytes.set buf i (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (i + 1) (Char.chr (v land 0xFF))

let get_u8 buf i = Char.code (Bytes.get buf i)
let get_u16 buf i = (get_u8 buf i lsl 8) lor get_u8 buf (i + 1)

let encode t =
  if t.src_port < 0 || t.src_port > 0xFFFF || t.dst_port < 0
     || t.dst_port > 0xFFFF
  then invalid_arg "Udp.encode: port out of range";
  let len = header_length + Bytes.length t.data in
  if len > 0xFFFF then invalid_arg "Udp.encode: datagram too long";
  let buf = Bytes.make len '\000' in
  put_u16 buf 0 t.src_port;
  put_u16 buf 2 t.dst_port;
  put_u16 buf 4 len;
  Bytes.blit t.data 0 buf 8 (Bytes.length t.data);
  Checksum.set buf ~at:6 ~off:0 ~len;
  buf

let decode buf =
  if Bytes.length buf < header_length then
    invalid_arg "Udp.decode: too short";
  let len = get_u16 buf 4 in
  if len < header_length || len > Bytes.length buf then
    invalid_arg "Udp.decode: bad length";
  if not (Checksum.valid ~off:0 ~len buf) then
    invalid_arg "Udp.decode: bad checksum";
  { src_port = get_u16 buf 0;
    dst_port = get_u16 buf 2;
    data = Bytes.sub buf 8 (len - 8) }

let pp ppf t =
  Format.fprintf ppf "udp %d->%d (%d bytes)" t.src_port t.dst_port
    (Bytes.length t.data)
