(** IP protocol numbers used by the simulator.

    Standard numbers follow the IANA registry of the period; the mobile-host
    protocols use numbers from the then-unassigned range, documented here so
    every module agrees. *)

type t = int

val icmp : t (** 1 *)

val ipip : t
(** 4 — IP-within-IP, used by the Columbia protocol (Ioannidis et al.). *)

val tcp : t (** 6 *)

val udp : t (** 17 *)

val mhrp : t
(** 99 — the MHRP encapsulation protocol (Section 4.1).  The paper defines a
    new IP protocol number without fixing its value; we use 99 (unassigned
    in 1994). *)

val iptp : t
(** 98 — Matsushita's Internet Packet Transmission Protocol. *)

val vip : t
(** 97 — Sony's Virtual IP header. *)

val lsrp : t
(** 89 — the in-simulation link-state routing protocol (the [Lsr]
    library): hello beacons and LSA floods, broadcast link-locally
    between routers.  89 is OSPF's number, which is exactly the niche
    this protocol fills.  (Named [lsrp] because [lsr] is an OCaml
    keyword.) *)

val name : t -> string
(** Human-readable name, e.g. ["udp"]; unknown numbers print as
    ["proto-N"]. *)

val pp : Format.formatter -> t -> unit
