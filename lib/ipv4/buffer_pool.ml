(* A freelist of packet buffers, keyed by exact byte length.

   Frames carry bare [bytes] whose length *is* the wire length (byte
   accounting and MTU checks read [Bytes.length]), so the pool hands out
   exact-size buffers rather than capacity classes: workloads are
   dominated by a handful of packet sizes (64-byte UDP payloads, tunnel
   headers of a few fixed widths), so exact keying still reuses almost
   every buffer.  Returned buffers hold stale bytes — every taker
   overwrites the full buffer (encoders write each byte of header and
   payload), which is why no clearing pass is needed.

   Ownership discipline (DESIGN.md Section 11): [take] transfers the
   buffer to the caller; [release] transfers it back and the caller must
   drop every reference — a released buffer will be handed to someone
   else and overwritten.  Never release a buffer that has been given to
   a frame: the receiver owns it from delivery onward. *)

type cls = {
  mutable free : bytes list;
  mutable n_free : int;
}

type t = {
  classes : (int, cls) Hashtbl.t;
  max_per_class : int;
  max_total_bytes : int;
  mutable pooled_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable releases : int;
  mutable discards : int;  (* releases bounced off a full class *)
  mutable cap_discards : int;  (* releases bounced off the byte cap *)
}

let create ?(max_per_class = 64) ?(max_total_bytes = 16 * 1024 * 1024) () =
  if max_per_class < 0 then invalid_arg "Buffer_pool.create: max_per_class";
  if max_total_bytes < 0 then
    invalid_arg "Buffer_pool.create: max_total_bytes";
  { classes = Hashtbl.create 8; max_per_class; max_total_bytes;
    pooled_bytes = 0; hits = 0; misses = 0; releases = 0; discards = 0;
    cap_discards = 0 }

let class_for t len =
  match Hashtbl.find_opt t.classes len with
  | Some c -> c
  | None ->
    let c = { free = []; n_free = 0 } in
    Hashtbl.replace t.classes len c;
    c

let take t len =
  if len < 0 then invalid_arg "Buffer_pool.take: negative length";
  let c = class_for t len in
  match c.free with
  | buf :: rest ->
    c.free <- rest;
    c.n_free <- c.n_free - 1;
    t.pooled_bytes <- t.pooled_bytes - len;
    t.hits <- t.hits + 1;
    buf
  | [] ->
    t.misses <- t.misses + 1;
    Bytes.create len

let release t buf =
  t.releases <- t.releases + 1;
  let len = Bytes.length buf in
  let c = class_for t len in
  if c.n_free >= t.max_per_class then t.discards <- t.discards + 1
  else if t.pooled_bytes + len > t.max_total_bytes then
    (* the per-class bound alone is no bound at all: a burst of packets
       at many distinct large sizes would pin max_per_class buffers in
       every class forever.  The byte cap drops the excess for the GC. *)
    t.cap_discards <- t.cap_discards + 1
  else begin
    c.free <- buf :: c.free;
    c.n_free <- c.n_free + 1;
    t.pooled_bytes <- t.pooled_bytes + len
  end

let hits t = t.hits
let misses t = t.misses
let releases t = t.releases
let discards t = t.discards
let cap_discards t = t.cap_discards
let pooled_bytes t = t.pooled_bytes

let pooled t =
  Hashtbl.fold (fun _ c acc -> acc + c.n_free) t.classes 0
