(** ICMP (RFC 792) messages, extended with MHRP's "location update".

    Section 4.3 of the paper defines the location update as a new ICMP
    message type — chosen for its similarity to ICMP redirect and because
    hosts silently discard unknown ICMP types (RFC 1122), giving backward
    compatibility.  The paper does not fix a type number; we use 41
    (unassigned at the time). *)

type t =
  | Echo_request of { ident : int; seq : int; data : bytes }
  | Echo_reply of { ident : int; seq : int; data : bytes }
  | Dest_unreachable of { code : int; original : bytes }
      (** [original] is the leading bytes of the offending IP packet:
          RFC 792 mandates IP header + 8 bytes, RFC 1122 allows more —
          Section 4.5 of the paper depends on this distinction. *)
  | Time_exceeded of { code : int; original : bytes }
  | Redirect of { gateway : Addr.t; original : bytes }
  | Location_update of { mobile : Addr.t; foreign_agent : Addr.t }
      (** MHRP: [mobile] is currently served by [foreign_agent].
          A zero [foreign_agent] means "the host is at home: delete any
          cache entry" (Sections 3 and 6.3). *)
  | Agent_advertisement of { agent : Addr.t; home : bool; foreign : bool }
      (** Periodic multicast by home/foreign agents (Section 3), modeled on
          ICMP router discovery (RFC 1256, type 9). *)
  | Agent_solicitation
      (** A mobile host probing for agents (type 10). *)

val type_code : t -> int * int
(** The on-wire (type, code) pair. *)

val location_update_type : int
(** 41. *)

val host_unreachable : original:bytes -> t
(** [Dest_unreachable] with code 1. *)

val encode : ?ext:bytes -> t -> bytes
(** [ext] is appended after the message body and covered by the ICMP
    checksum — the carriage slot for the MHRP authentication extension
    on location updates.  Decoding ignores trailing bytes, so receivers
    without the extension still parse the message (the same
    backward-compatibility argument as the type number). *)

val decode : bytes -> t
(** Raises [Invalid_argument] on malformed input, bad checksum, or an ICMP
    type this simulator does not model (matching RFC 1122 hosts, callers
    should treat that as "silently discard"). *)

val decode_opt : bytes -> t option
(** [None] instead of an exception — the "silently discard" path for
    unknown types, truncations and checksum mismatches alike. *)

val pp : Format.formatter -> t -> unit
