type t = {
  tos : int;
  id : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;
  ttl : int;
  proto : Proto.t;
  src : Addr.t;
  dst : Addr.t;
  options : Ip_option.t list;
  payload : bytes;
}

let default_ttl = 64

let make ?(tos = 0) ?(id = 0) ?(dont_fragment = false)
    ?(more_fragments = false) ?(frag_offset = 0) ?(ttl = default_ttl)
    ?(options = []) ~proto ~src ~dst payload =
  if frag_offset < 0 || frag_offset mod 8 <> 0 then
    invalid_arg "Packet.make: fragment offset must be a multiple of 8";
  { tos; id; dont_fragment; more_fragments; frag_offset; ttl; proto; src;
    dst; options; payload }

let is_fragment t = t.more_fragments || t.frag_offset > 0

let options_bytes t =
  match t.options with [] -> Bytes.empty | opts -> Ip_option.encode_all opts

let header_length t = 20 + Bytes.length (options_bytes t)
let total_length t = header_length t + Bytes.length t.payload
let has_options t = t.options <> []

let put_u8 buf i v = Bytes.set buf i (Char.chr (v land 0xFF))

let put_u16 buf i v =
  put_u8 buf i (v lsr 8);
  put_u8 buf (i + 1) v

let put_addr buf i a =
  let v = Addr.to_int a in
  put_u16 buf i (v lsr 16);
  put_u16 buf (i + 2) (v land 0xFFFF)

let get_u8 buf i = Char.code (Bytes.get buf i)
let get_u16 buf i = (get_u8 buf i lsl 8) lor get_u8 buf (i + 1)

let get_addr buf i =
  Addr.of_int ((get_u16 buf i lsl 16) lor get_u16 buf (i + 2))

let check_field name v max =
  if v < 0 || v > max then
    invalid_arg (Printf.sprintf "Packet.encode: %s out of range" name)

let encode t =
  check_field "tos" t.tos 0xFF;
  check_field "id" t.id 0xFFFF;
  check_field "ttl" t.ttl 0xFF;
  check_field "proto" t.proto 0xFF;
  let opts = options_bytes t in
  let hlen = 20 + Bytes.length opts in
  let ihl = hlen / 4 in
  if ihl > 15 then invalid_arg "Packet.encode: header too long";
  let tlen = hlen + Bytes.length t.payload in
  if tlen > 0xFFFF then invalid_arg "Packet.encode: packet too long";
  let buf = Bytes.make tlen '\000' in
  put_u8 buf 0 ((4 lsl 4) lor ihl);
  put_u8 buf 1 t.tos;
  put_u16 buf 2 tlen;
  put_u16 buf 4 t.id;
  let flags =
    (if t.dont_fragment then 0x4000 else 0)
    lor (if t.more_fragments then 0x2000 else 0)
    lor (t.frag_offset / 8)
  in
  put_u16 buf 6 flags;
  put_u8 buf 8 t.ttl;
  put_u8 buf 9 t.proto;
  (* checksum at 10..11, set below *)
  put_addr buf 12 t.src;
  put_addr buf 16 t.dst;
  Bytes.blit opts 0 buf 20 (Bytes.length opts);
  Bytes.blit t.payload 0 buf hlen (Bytes.length t.payload);
  Checksum.set buf ~at:10 ~off:0 ~len:hlen;
  buf

let decode buf =
  if Bytes.length buf < 20 then invalid_arg "Packet.decode: too short";
  let vi = get_u8 buf 0 in
  if vi lsr 4 <> 4 then invalid_arg "Packet.decode: not IPv4";
  let hlen = (vi land 0xF) * 4 in
  if hlen < 20 || hlen > Bytes.length buf then
    invalid_arg "Packet.decode: bad header length";
  if not (Checksum.valid ~off:0 ~len:hlen buf) then
    invalid_arg "Packet.decode: bad header checksum";
  let tlen = get_u16 buf 2 in
  if tlen < hlen || tlen > Bytes.length buf then
    invalid_arg "Packet.decode: bad total length";
  let options =
    if hlen = 20 then []
    else Ip_option.decode_all (Bytes.sub buf 20 (hlen - 20))
  in
  let flags = get_u16 buf 6 in
  { tos = get_u8 buf 1;
    id = get_u16 buf 4;
    dont_fragment = flags land 0x4000 <> 0;
    more_fragments = flags land 0x2000 <> 0;
    frag_offset = (flags land 0x1FFF) * 8;
    ttl = get_u8 buf 8;
    proto = get_u8 buf 9;
    src = get_addr buf 12;
    dst = get_addr buf 16;
    options;
    payload = Bytes.sub buf hlen (tlen - hlen) }

let decode_prefix buf =
  if Bytes.length buf < 20 then None
  else begin
    let vi = get_u8 buf 0 in
    let hlen = (vi land 0xF) * 4 in
    if vi lsr 4 <> 4 || hlen < 20 || hlen > Bytes.length buf
       || not (Checksum.valid ~off:0 ~len:hlen buf)
    then None
    else begin
      let tlen = get_u16 buf 2 in
      if tlen < hlen then None
      else begin
        let avail = min (Bytes.length buf) tlen - hlen in
        let options =
          if hlen = 20 then []
          else
            match Ip_option.decode_all (Bytes.sub buf 20 (hlen - 20)) with
            | opts -> opts
            | exception Invalid_argument _ -> []
        in
        let flags = get_u16 buf 6 in
        Some
          ({ tos = get_u8 buf 1;
             id = get_u16 buf 4;
             dont_fragment = flags land 0x4000 <> 0;
             more_fragments = flags land 0x2000 <> 0;
             frag_offset = (flags land 0x1FFF) * 8;
             ttl = get_u8 buf 8;
             proto = get_u8 buf 9;
             src = get_addr buf 12;
             dst = get_addr buf 16;
             options;
             payload = Bytes.sub buf hlen avail },
           tlen - hlen)
      end
    end
  end

let decr_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

(* Zero-copy slice views over encoded packets: the forwarding fast path
   reads fields and rewrites TTL/checksum in place without ever building
   a [t].  A view only points into its buffer; see DESIGN.md Section 11
   for the ownership rules that make in-place mutation sound. *)
module View = struct
  type t = {
    buf : bytes;
    off : int;
    len : int;
  }

  let make ?(off = 0) ?len buf =
    let len = match len with Some l -> l | None -> Bytes.length buf - off in
    if off < 0 || len < 0 || off + len > Bytes.length buf then
      invalid_arg "Packet.View.make: range";
    { buf; off; len }

  let buffer v = v.buf
  let offset v = v.off
  let length v = v.len

  let u8 v i = Char.code (Bytes.get v.buf (v.off + i))
  let u16 v i = Bytes.get_uint16_be v.buf (v.off + i)

  (* Accepts exactly what [decode] accepts structurally: a complete
     IPv4 header with a valid checksum and a total length that fits the
     slice.  Never raises, whatever the bytes — checked by a QCheck
     totality property.  (Option *contents* are not parsed here; the
     fast path only handles option-free headers and falls back to
     [decode] — which does parse and may reject them — otherwise.) *)
  let valid v =
    v.len >= 20
    && (let b0 = u8 v 0 in
        b0 lsr 4 = 4
        && (let hlen = (b0 land 0xF) * 4 in
            hlen >= 20 && hlen <= v.len
            && Checksum.valid_range v.buf ~off:v.off ~len:hlen
            && (let tlen = u16 v 2 in
                tlen >= hlen && tlen <= v.len)))

  let header_length v = (u8 v 0 land 0xF) * 4
  let total_length v = u16 v 2
  let tos v = u8 v 1
  let id v = u16 v 4
  let ttl v = u8 v 8
  let proto v = u8 v 9
  let src v = Addr.of_int ((u16 v 12 lsl 16) lor u16 v 14)
  let dst v = Addr.of_int ((u16 v 16 lsl 16) lor u16 v 18)
  let has_options v = header_length v > 20
  let dont_fragment v = u16 v 6 land 0x4000 <> 0

  let is_fragment v =
    let flags = u16 v 6 in
    flags land 0x2000 <> 0 || flags land 0x1FFF <> 0

  (* TTL shares its 16-bit checksum word with the protocol byte. *)
  let set_ttl v new_ttl =
    if new_ttl < 0 || new_ttl > 0xFF then
      invalid_arg "Packet.View.set_ttl: out of range";
    let old_word = u16 v 8 in
    let new_word = (new_ttl lsl 8) lor (old_word land 0xFF) in
    if new_word <> old_word then begin
      Bytes.set v.buf (v.off + 8) (Char.chr new_ttl);
      Checksum.update v.buf ~at:(v.off + 10) ~old_word ~new_word
    end

  (* [set_ttl (ttl - 1)] with the TTL/protocol word read once: the TTL
     always changes, so no unchanged-word test either. *)
  let decr_ttl v =
    let old_word = u16 v 8 in
    let t = old_word lsr 8 in
    if t < 1 then invalid_arg "Packet.View.decr_ttl: ttl is zero";
    Bytes.set v.buf (v.off + 8) (Char.chr (t - 1));
    Checksum.update v.buf ~at:(v.off + 10) ~old_word
      ~new_word:(((t - 1) lsl 8) lor (old_word land 0xFF))

  let to_wire v =
    if v.off = 0 && v.len = Bytes.length v.buf then v.buf
    else Bytes.sub v.buf v.off v.len

  let decode v = decode (to_wire v)
  let decode_prefix v = decode_prefix (to_wire v)
end

let pp ppf t =
  Format.fprintf ppf "%a -> %a %a len=%d ttl=%d%s" Addr.pp t.src Addr.pp
    t.dst Proto.pp t.proto (total_length t) t.ttl
    (if has_options t then " +opts" else "")

let fragment t ~mtu =
  if total_length t <= mtu then [t]
  else if t.dont_fragment then
    invalid_arg "Packet.fragment: dont_fragment set"
  else begin
    let first_hlen = header_length t in
    (* subsequent fragments carry no options (treated as not-copied) *)
    let rest_hlen = 20 in
    if mtu < first_hlen + 8 then invalid_arg "Packet.fragment: tiny mtu";
    let chunk_for hlen = (mtu - hlen) / 8 * 8 in
    let total = Bytes.length t.payload in
    let rec split off acc =
      if off >= total then List.rev acc
      else begin
        let hlen = if off = 0 then first_hlen else rest_hlen in
        let chunk = min (chunk_for hlen) (total - off) in
        let last = off + chunk >= total in
        let frag =
          { t with
            more_fragments = (not last) || t.more_fragments;
            frag_offset = t.frag_offset + off;
            options = (if off = 0 then t.options else []);
            payload = Bytes.sub t.payload off chunk }
        in
        split (off + chunk) (frag :: acc)
      end
    in
    split 0 []
  end

module Reassembly = struct
  type packet = t

  type buffer = {
    mutable chunks : (int * bytes) list;  (* offset, data *)
    mutable total : int option;  (* payload length, known from last frag *)
    mutable first : packet option;  (* fragment with offset 0 *)
    mutable started_at : int;
  }

  type nonrec t = {
    buffers : (Addr.t * Addr.t * int * int, buffer) Hashtbl.t;
    (* keyed by src, dst, id, proto *)
  }

  let create () = { buffers = Hashtbl.create 8 }

  let complete buf =
    match buf.total, buf.first with
    | Some total, Some first ->
      let covered = Array.make total false in
      List.iter
        (fun (off, data) ->
           for i = off to min (total - 1) (off + Bytes.length data - 1) do
             covered.(i) <- true
           done)
        buf.chunks;
      if Array.for_all Fun.id covered then begin
        let payload = Bytes.create total in
        List.iter
          (fun (off, data) ->
             Bytes.blit data 0 payload off
               (min (Bytes.length data) (total - off)))
          buf.chunks;
        Some
          { first with
            more_fragments = false;
            frag_offset = 0;
            payload }
      end
      else None
    | _ -> None

  let add t ~now (pkt : packet) =
    if not (is_fragment pkt) then Some pkt
    else begin
      let key = (pkt.src, pkt.dst, pkt.id, pkt.proto) in
      let buf =
        match Hashtbl.find_opt t.buffers key with
        | Some b -> b
        | None ->
          let b =
            { chunks = []; total = None; first = None; started_at = now }
          in
          Hashtbl.replace t.buffers key b;
          b
      in
      buf.chunks <- (pkt.frag_offset, pkt.payload) :: buf.chunks;
      if pkt.frag_offset = 0 then buf.first <- Some pkt;
      if not pkt.more_fragments then
        buf.total <- Some (pkt.frag_offset + Bytes.length pkt.payload);
      match complete buf with
      | Some whole ->
        Hashtbl.remove t.buffers key;
        Some whole
      | None -> None
    end

  let expire t ~now ~older_than_us =
    let stale =
      Hashtbl.fold
        (fun key buf acc ->
           if now - buf.started_at > older_than_us then key :: acc else acc)
        t.buffers []
    in
    List.iter (Hashtbl.remove t.buffers) stale;
    List.length stale

  let pending t = Hashtbl.length t.buffers
end
