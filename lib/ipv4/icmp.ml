type t =
  | Echo_request of { ident : int; seq : int; data : bytes }
  | Echo_reply of { ident : int; seq : int; data : bytes }
  | Dest_unreachable of { code : int; original : bytes }
  | Time_exceeded of { code : int; original : bytes }
  | Redirect of { gateway : Addr.t; original : bytes }
  | Location_update of { mobile : Addr.t; foreign_agent : Addr.t }
  | Agent_advertisement of { agent : Addr.t; home : bool; foreign : bool }
  | Agent_solicitation

let location_update_type = 41

let type_code = function
  | Echo_reply _ -> (0, 0)
  | Dest_unreachable { code; _ } -> (3, code)
  | Redirect _ -> (5, 1) (* redirect for host *)
  | Echo_request _ -> (8, 0)
  | Time_exceeded { code; _ } -> (11, code)
  | Location_update _ -> (location_update_type, 0)
  | Agent_advertisement _ -> (9, 0)
  | Agent_solicitation -> (10, 0)

let host_unreachable ~original = Dest_unreachable { code = 1; original }

let put_u16 buf i v =
  Bytes.set buf i (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (i + 1) (Char.chr (v land 0xFF))

let put_addr buf i a =
  let v = Addr.to_int a in
  put_u16 buf i (v lsr 16);
  put_u16 buf (i + 2) (v land 0xFFFF)

let get_u8 buf i = Char.code (Bytes.get buf i)
let get_u16 buf i = (get_u8 buf i lsl 8) lor get_u8 buf (i + 1)

let get_addr buf i =
  Addr.of_int ((get_u16 buf i lsl 16) lor get_u16 buf (i + 2))

let body = function
  | Echo_request { data; _ } | Echo_reply { data; _ } -> data
  | Dest_unreachable { original; _ }
  | Time_exceeded { original; _ }
  | Redirect { original; _ } -> original
  | Location_update _ | Agent_advertisement _ | Agent_solicitation ->
    Bytes.empty

let encode ?ext t =
  let ty, code = type_code t in
  let data = body t in
  let ext_len = match ext with None -> 0 | Some e -> Bytes.length e in
  let len = 8 + Bytes.length data
            + (match t with
               | Location_update _ | Agent_advertisement _ -> 8
               | _ -> 0)
            + ext_len in
  let buf = Bytes.make len '\000' in
  Bytes.set buf 0 (Char.chr ty);
  Bytes.set buf 1 (Char.chr code);
  (* checksum at 2..3 *)
  (match t with
   | Echo_request { ident; seq; _ } | Echo_reply { ident; seq; _ } ->
     put_u16 buf 4 ident;
     put_u16 buf 6 seq
   | Dest_unreachable _ | Time_exceeded _ -> () (* 4 unused bytes *)
   | Redirect { gateway; _ } -> put_addr buf 4 gateway
   | Location_update { mobile; foreign_agent } ->
     put_addr buf 8 mobile;
     put_addr buf 12 foreign_agent
   | Agent_advertisement { agent; home; foreign } ->
     put_addr buf 8 agent;
     Bytes.set buf 12
       (Char.chr ((if home then 1 else 0) lor (if foreign then 2 else 0)))
   | Agent_solicitation -> ());
  (match t with
   | Location_update _ | Agent_advertisement _ | Agent_solicitation -> ()
   | _ -> Bytes.blit data 0 buf 8 (Bytes.length data));
  (match ext with
   | None -> ()
   | Some e -> Bytes.blit e 0 buf (len - ext_len) ext_len);
  Checksum.set buf ~at:2 ~off:0 ~len;
  buf

let decode_opt buf =
  if Bytes.length buf < 8 then None
  else if not (Checksum.valid buf) then None
  else begin
    let ty = get_u8 buf 0 in
    let code = get_u8 buf 1 in
    let rest = Bytes.sub buf 8 (Bytes.length buf - 8) in
    match ty with
    | 0 ->
      Some (Echo_reply { ident = get_u16 buf 4; seq = get_u16 buf 6;
                         data = rest })
    | 8 ->
      Some (Echo_request { ident = get_u16 buf 4; seq = get_u16 buf 6;
                           data = rest })
    | 3 -> Some (Dest_unreachable { code; original = rest })
    | 11 -> Some (Time_exceeded { code; original = rest })
    | 5 -> Some (Redirect { gateway = get_addr buf 4; original = rest })
    | 41 ->
      if Bytes.length buf < 16 then None
      else
        Some (Location_update { mobile = get_addr buf 8;
                                foreign_agent = get_addr buf 12 })
    | 9 ->
      if Bytes.length buf < 16 then None
      else begin
        let flags = get_u8 buf 12 in
        Some (Agent_advertisement { agent = get_addr buf 8;
                                    home = flags land 1 <> 0;
                                    foreign = flags land 2 <> 0 })
      end
    | 10 -> Some Agent_solicitation
    | _ -> None
  end

let decode buf =
  match decode_opt buf with
  | Some t -> t
  | None -> invalid_arg "Icmp.decode: unknown type or truncated"

let pp ppf = function
  | Echo_request { ident; seq; _ } ->
    Format.fprintf ppf "echo-request id=%d seq=%d" ident seq
  | Echo_reply { ident; seq; _ } ->
    Format.fprintf ppf "echo-reply id=%d seq=%d" ident seq
  | Dest_unreachable { code; _ } ->
    Format.fprintf ppf "dest-unreachable code=%d" code
  | Time_exceeded { code; _ } ->
    Format.fprintf ppf "time-exceeded code=%d" code
  | Redirect { gateway; _ } ->
    Format.fprintf ppf "redirect gw=%a" Addr.pp gateway
  | Location_update { mobile; foreign_agent } ->
    Format.fprintf ppf "location-update mobile=%a fa=%a" Addr.pp mobile
      Addr.pp foreign_agent
  | Agent_advertisement { agent; home; foreign } ->
    Format.fprintf ppf "agent-advertisement %a%s%s" Addr.pp agent
      (if home then " home" else "") (if foreign then " foreign" else "")
  | Agent_solicitation -> Format.pp_print_string ppf "agent-solicitation"
