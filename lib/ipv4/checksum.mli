(** RFC 1071 Internet checksum: 16-bit one's-complement sum. *)

val of_bytes : ?off:int -> ?len:int -> bytes -> int
(** Checksum of a byte range (whole buffer by default).  A trailing odd
    byte is padded with zero, per the RFC. *)

val valid : ?off:int -> ?len:int -> bytes -> bool
(** A buffer whose stored checksum field is correct sums to zero. *)

val set : bytes -> at:int -> off:int -> len:int -> unit
(** [set buf ~at ~off ~len] zeroes the 16-bit field at [at], computes the
    checksum of [\[off, off+len)] and stores it at [at] (big-endian). *)
