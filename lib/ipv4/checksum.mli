(** RFC 1071 Internet checksum: 16-bit one's-complement sum. *)

val of_bytes : ?off:int -> ?len:int -> bytes -> int
(** Checksum of a byte range (whole buffer by default).  A trailing odd
    byte is padded with zero, per the RFC. *)

val valid : ?off:int -> ?len:int -> bytes -> bool
(** A buffer whose stored checksum field is correct sums to zero. *)

val of_range : bytes -> off:int -> len:int -> int
(** {!of_bytes} with mandatory labels: every optional argument boxes a
    [Some], which the per-packet forwarding fast path can't afford.
    Same range validation, same result. *)

val valid_range : bytes -> off:int -> len:int -> bool
(** {!valid}, via {!of_range}. *)

val set : bytes -> at:int -> off:int -> len:int -> unit
(** [set buf ~at ~off ~len] zeroes the 16-bit field at [at], computes the
    checksum of [\[off, off+len)] and stores it at [at] (big-endian). *)

val update : bytes -> at:int -> old_word:int -> new_word:int -> unit
(** Incrementally patch the checksum stored at [at] after one 16-bit
    big-endian word of the covered range changed from [old_word] to
    [new_word] — the router fast path's TTL rewrite, RFC 1624.  Produces
    bit-for-bit what a full {!set} over the modified range would,
    provided the range's one's-complement sum is positive before and
    after the change (always true of an IPv4 header).  The caller writes
    the new word itself; this touches only the checksum field.  Raises
    [Invalid_argument] if either word is outside [0, 0xFFFF]. *)
