(** Compact open-addressed map from non-negative [int] keys to [int]
    payloads.

    This is the memory-lean backing store for per-mobile-host state
    ([Mhrp.Location_cache], [Mhrp.Home_agent], the compiled host-route
    tables in [Net.Route]).  A binding occupies exactly two flat-array
    slots (two words), versus the ~7 words per binding of a generic
    [Hashtbl] over boxed entries; steady-state operations ([find],
    [replace] of an existing key, [remove]) allocate nothing.

    Keys are packed {!Addr.t} values (see {!Addr.to_key}): tagged
    immediates in [\[0, 0xFFFF_FFFF\]].  Negative keys are rejected ([-1]
    is the internal empty-slot sentinel).  Values are arbitrary ints —
    callers pack small records (address + tick, prefix index, ...) into
    the 63 available bits.

    Collisions resolve by linear probing over a power-of-two capacity;
    removal repairs the probe sequence by backward shifting, so there
    are no tombstones and long-lived tables never degrade.  The table
    grows (doubling) at 3/4 load and never shrinks.

    Determinism: the slot layout — and hence {!iter}/{!fold} order — is
    a pure function of the operation history, identical across runs and
    domains.  Callers that expose ordering must sort, exactly as they
    did over [Hashtbl]. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] makes an empty table.  [capacity] is a size
    hint, rounded up to a power of two (minimum 8). *)

val length : t -> int
(** Number of bindings. *)

val capacity : t -> int
(** Current slot count (a power of two, [>= length]). *)

val footprint_bytes : t -> int
(** Heap bytes pinned by the table's arrays (slots plus headers), for
    deterministic state-size accounting. *)

val mem : t -> int -> bool

val find : t -> int -> default:int -> int
(** Allocation-free lookup: the bound value, or [default] if absent. *)

val find_opt : t -> int -> int option

val replace : t -> int -> int -> unit
(** Insert or overwrite.  Raises [Invalid_argument] on a negative key. *)

val remove : t -> int -> unit
(** Remove if present; no-op otherwise. *)

val reset : t -> unit
(** Drop all bindings, keeping the current capacity. *)

val iter : (int -> int -> unit) -> t -> unit
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
