(** A freelist of packet buffers, keyed by exact byte length.

    The encap/decap fast path builds outgoing wire packets into pooled
    buffers instead of fresh allocations: [take] pops a previously
    released buffer of the right size (or allocates on a miss), the
    caller overwrites it completely, and whoever ends up owning the
    bytes [release]s them when done.  Exact-length keying matters
    because frames carry bare [bytes] whose length is the wire length.

    Ownership rules — DESIGN.md Section 11: [take] transfers the buffer
    to the caller; [release] transfers it back, after which the caller
    must hold no reference (the buffer will be reissued and
    overwritten).  A buffer handed to a frame belongs to the frame's
    receiver and must not be released by the sender.  Buffers come back
    dirty: takers must overwrite every byte they transmit.

    Not domain-safe: one pool per domain (the parallel sweep runner
    already gives each trial its own world). *)

type t

val create : ?max_per_class:int -> ?max_total_bytes:int -> unit -> t
(** [max_per_class] (default 64) bounds how many free buffers of one
    size are retained; excess releases are dropped for the GC.
    [max_total_bytes] (default 16 MiB) bounds the bytes pinned across
    {e all} size classes — without it a burst of large packets at many
    distinct sizes pins [max_per_class] buffers per class forever. *)

val take : t -> int -> bytes
(** A buffer of exactly the requested length, contents unspecified. *)

val release : t -> bytes -> unit
(** Return a buffer to the pool.  The caller must drop its references. *)

(** {1 Counters} (deterministic; gated by the allocation CI lane) *)

val hits : t -> int
(** [take]s served from the freelist. *)

val misses : t -> int
(** [take]s that had to allocate. *)

val releases : t -> int
val discards : t -> int
(** Releases dropped because the size class was full. *)

val cap_discards : t -> int
(** Releases dropped because pooling the buffer would exceed
    [max_total_bytes]. *)

val pooled : t -> int
(** Free buffers currently held, across all size classes. *)

val pooled_bytes : t -> int
(** Bytes currently pinned by free buffers ([<= max_total_bytes]). *)
