type flag = Fin | Syn | Rst | Psh | Ack | Urg

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : flag list;
  window : int;
  data : bytes;
}

let header_length = 20

let make ?(seq = 0) ?(ack = 0) ?(flags = []) ?(window = 8192) ~src_port
    ~dst_port data =
  { src_port; dst_port; seq; ack; flags; window; data }

let flag_bit = function
  | Fin -> 0x01
  | Syn -> 0x02
  | Rst -> 0x04
  | Psh -> 0x08
  | Ack -> 0x10
  | Urg -> 0x20

let flags_to_int flags =
  List.fold_left (fun acc f -> acc lor flag_bit f) 0 flags

let flags_of_int v =
  List.filter
    (fun f -> v land flag_bit f <> 0)
    [Fin; Syn; Rst; Psh; Ack; Urg]

let put_u16 buf i v =
  Bytes.set buf i (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (i + 1) (Char.chr (v land 0xFF))

let put_u32 buf i v =
  put_u16 buf i ((v lsr 16) land 0xFFFF);
  put_u16 buf (i + 2) (v land 0xFFFF)

let get_u8 buf i = Char.code (Bytes.get buf i)
let get_u16 buf i = (get_u8 buf i lsl 8) lor get_u8 buf (i + 1)
let get_u32 buf i = (get_u16 buf i lsl 16) lor get_u16 buf (i + 2)

let encode t =
  let check name v max =
    if v < 0 || v > max then
      invalid_arg (Printf.sprintf "Tcp_lite.encode: %s out of range" name)
  in
  check "src_port" t.src_port 0xFFFF;
  check "dst_port" t.dst_port 0xFFFF;
  check "seq" t.seq 0xFFFF_FFFF;
  check "ack" t.ack 0xFFFF_FFFF;
  check "window" t.window 0xFFFF;
  let len = header_length + Bytes.length t.data in
  let buf = Bytes.make len '\000' in
  put_u16 buf 0 t.src_port;
  put_u16 buf 2 t.dst_port;
  put_u32 buf 4 t.seq;
  put_u32 buf 8 t.ack;
  Bytes.set buf 12 (Char.chr ((header_length / 4) lsl 4));
  Bytes.set buf 13 (Char.chr (flags_to_int t.flags));
  put_u16 buf 14 t.window;
  (* checksum at 16..17; urgent pointer zero *)
  Bytes.blit t.data 0 buf header_length (Bytes.length t.data);
  Checksum.set buf ~at:16 ~off:0 ~len;
  buf

let decode buf =
  if Bytes.length buf < header_length then None
  else
    let data_off = (get_u8 buf 12 lsr 4) * 4 in
    if data_off < header_length || data_off > Bytes.length buf then None
    else if not (Checksum.valid ~off:0 ~len:(Bytes.length buf) buf) then
      None
    else
      Some
        { src_port = get_u16 buf 0;
          dst_port = get_u16 buf 2;
          seq = get_u32 buf 4;
          ack = get_u32 buf 8;
          flags = flags_of_int (get_u8 buf 13);
          window = get_u16 buf 14;
          data = Bytes.sub buf data_off (Bytes.length buf - data_off) }

let decode_exn buf =
  match decode buf with
  | Some t -> t
  | None -> invalid_arg "Tcp_lite.decode_exn: malformed segment"

let has_flag t f = List.mem f t.flags

let pp ppf t =
  let flag_name = function
    | Fin -> "F" | Syn -> "S" | Rst -> "R"
    | Psh -> "P" | Ack -> "A" | Urg -> "U"
  in
  Format.fprintf ppf "tcp %d->%d seq=%d ack=%d [%s] (%d bytes)" t.src_port
    t.dst_port t.seq t.ack
    (String.concat "" (List.map flag_name t.flags))
    (Bytes.length t.data)
