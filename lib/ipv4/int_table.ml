(* Open-addressed hash table from non-negative int keys (packed [Addr]
   keys) to int payloads, backed by two flat int arrays.

   The generic [Hashtbl] costs ~7 words per binding for an int->record
   map (bucket cons, boxed entry, header words); at a million mobile
   hosts that is the difference between fitting in cache and paging.
   This table stores a binding in exactly two array slots — 16 bytes at
   a 100% load, ~21 bytes at the 3/4 load bound — with no per-binding
   allocation at all on the steady state ([replace] of an existing key,
   [find], [remove] allocate nothing).

   Linear probing over a power-of-two capacity; the empty slot is keyed
   by -1, which is why keys must be non-negative (packed 32-bit
   addresses always are).  Deletion uses the classical backward-shift
   repair instead of tombstones, so a long-lived table never degrades:
   the probe-sequence invariant is restored on every removal.

   The slot permutation is a pure function of the insertion/removal
   history, so iteration order — like [Hashtbl]'s — is deterministic
   across runs and domains; callers that expose order sort, exactly as
   they did over [Hashtbl.fold]. *)

type t = {
  mutable keys : int array;  (* -1 = empty *)
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable len : int;
}

let empty_key = -1

(* Fibonacci multiplicative hash: full-width odd multiply, fold the high
   bits down so the low [log2 capacity] bits used by the mask are well
   mixed even for sequential address keys. *)
let hash k =
  let h = k * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 29)

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ?(capacity = 8) () =
  if capacity < 0 then invalid_arg "Int_table.create: capacity";
  let cap = pow2_at_least (max 8 capacity) 8 in
  { keys = Array.make cap empty_key; vals = Array.make cap 0;
    mask = cap - 1; len = 0 }

let length t = t.len
let capacity t = t.mask + 1

(* keys + vals arrays, one word per slot each, plus two headers *)
let footprint_bytes t = (((t.mask + 1) * 2) + 2) * 8

let slot_of t k =
  let mask = t.mask in
  let keys = t.keys in
  let rec probe i =
    let ki = Array.unsafe_get keys i in
    if ki = k then i
    else if ki = empty_key then -1
    else probe ((i + 1) land mask)
  in
  probe (hash k land mask)

let mem t k = k >= 0 && slot_of t k >= 0

let find t k ~default =
  if k < 0 then default
  else
    let i = slot_of t k in
    if i < 0 then default else Array.unsafe_get t.vals i

let find_opt t k =
  if k < 0 then None
  else
    let i = slot_of t k in
    if i < 0 then None else Some (Array.unsafe_get t.vals i)

let insert_fresh t k v =
  (* precondition: k absent, table not full *)
  let mask = t.mask in
  let keys = t.keys in
  let rec probe i =
    if Array.unsafe_get keys i = empty_key then begin
      Array.unsafe_set keys i k;
      Array.unsafe_set t.vals i v
    end
    else probe ((i + 1) land mask)
  in
  probe (hash k land mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k -> if k <> empty_key then insert_fresh t k old_vals.(i))
    old_keys

let replace t k v =
  if k < 0 then invalid_arg "Int_table.replace: negative key";
  let i = slot_of t k in
  if i >= 0 then t.vals.(i) <- v
  else begin
    (* grow at 3/4 load so probe chains stay short *)
    if (t.len + 1) * 4 > (t.mask + 1) * 3 then grow t;
    insert_fresh t k v;
    t.len <- t.len + 1
  end

let remove t k =
  if k >= 0 then begin
    let i = slot_of t k in
    if i >= 0 then begin
      t.len <- t.len - 1;
      let mask = t.mask in
      let keys = t.keys and vals = t.vals in
      (* Backward-shift repair: walk the cluster after the hole; any
         element whose home slot lies cyclically at or before the hole
         moves into it, re-opening the hole further down. *)
      let rec repair hole j =
        let j = j land mask in
        let kj = Array.unsafe_get keys j in
        if kj = empty_key then Array.unsafe_set keys hole empty_key
        else
          let home = hash kj land mask in
          let movable =
            if j > hole then home <= hole || home > j
            else home <= hole && home > j
          in
          if movable then begin
            Array.unsafe_set keys hole kj;
            Array.unsafe_set vals hole (Array.unsafe_get vals j);
            repair j (j + 1)
          end
          else repair hole (j + 1)
      in
      repair i (i + 1)
    end
  end

let reset t =
  Array.fill t.keys 0 (t.mask + 1) empty_key;
  t.len <- 0

let iter f t =
  let keys = t.keys in
  for i = 0 to t.mask do
    let k = Array.unsafe_get keys i in
    if k <> empty_key then f k (Array.unsafe_get t.vals i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
