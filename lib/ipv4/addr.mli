(** IPv4 addresses and network prefixes.

    Addresses are stored as non-negative [int]s in host order (fits easily
    in OCaml's 63-bit ints).  The simulator allocates addresses as
    [10.net_hi.net_lo.host], one /24 per simulated network, mirroring the
    paper's "network number + host number" structure (Section 1). *)

type t = private int
(** An IPv4 address, [0 <= t <= 0xFFFF_FFFF]. *)

val of_int : int -> t
(** Raises [Invalid_argument] if out of range. *)

val to_int : t -> int

val to_key : t -> int
(** [to_key a] packs [a] into a tagged immediate int key for the compact
    {!Int_table} maps: the 32 address bits live in the low bits of an
    unboxed OCaml int, so a key is never allocated and never negative.
    [of_key (to_key a) = a] for every address. *)

val of_key : int -> t
(** Inverse of {!to_key}.  Raises [Invalid_argument] if the key is not a
    packed address (outside [\[0, 0xFFFF_FFFF\]]). *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d].  Raises [Invalid_argument] if any
    octet is out of [\[0, 255\]]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parses dotted-quad.  Raises [Invalid_argument] on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val zero : t
(** [0.0.0.0] — used by MHRP as the "at home" foreign-agent registration
    address (Section 3). *)

val broadcast : t
(** [255.255.255.255]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Network prefixes. *)
module Prefix : sig
  type addr = t

  type t = private { base : addr; len : int }
  (** Invariant: the host bits of [base] are zero. *)

  val make : addr -> int -> t
  (** [make a len] masks [a] to [len] bits.  Raises [Invalid_argument] if
      [len] is outside [\[0, 32\]]. *)

  val mask : int -> int
  (** [mask len] is the network mask of a [len]-bit prefix as an int
      ([0xFFFFFF00] for /24) — for masking packed {!Addr.to_key} keys
      without allocating. *)

  val of_string : string -> t
  (** Parses ["a.b.c.d/len"]. *)

  val mem : addr -> t -> bool
  val network_of : addr -> int -> t
  (** Prefix of the given length containing the address. *)

  val host : t -> int -> addr
  (** [host p n] is the [n]th host address within [p].
      Raises [Invalid_argument] if [n] does not fit in the host bits. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** Simulator address plan: network [i] is the /24 [10.(i lsr 8).(i land
    255).0/24]; host [h] of network [i] is its [h]th address. *)
val net : int -> Prefix.t

val net_len : int -> int -> Prefix.t
(** [net_len i len] — network [i]'s base address with an explicit prefix
    length, for segments that must address more than 254 stations (the
    wide backbones of the large-scale experiments).  The caller picks a
    base aligned to [len] that stays clear of the /24 plan ([net i]
    for small [i]); [net_len i 24 = net i]. *)

val host : int -> int -> t
(** [host net_id host_id]. *)

val net_of : t -> int option
(** Network id of an address allocated by [net]/[host]; [None] if the
    address is outside [10.0.0.0/8]. *)
