(** A minimal TCP segment codec (RFC 793 header, no options).

    The simulator does not model TCP's state machine — the paper's protocol
    operates strictly below transport — but workloads send realistic
    20-byte-header segments so that packet sizes and the MHRP rule of
    "insert between IP header and transport header" (Figure 2) are exercised
    against real transport bytes. *)

type flag = Fin | Syn | Rst | Psh | Ack | Urg

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** 32-bit. *)
  ack : int;  (** 32-bit. *)
  flags : flag list;
  window : int;
  data : bytes;
}

val header_length : int
(** 20. *)

val make :
  ?seq:int -> ?ack:int -> ?flags:flag list -> ?window:int ->
  src_port:int -> dst_port:int -> bytes -> t

val encode : t -> bytes
val decode : bytes -> t
val has_flag : t -> flag -> bool
val pp : Format.formatter -> t -> unit
