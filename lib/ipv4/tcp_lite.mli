(** A minimal TCP segment codec (RFC 793 header, no options).

    The connection state machine lives above, in [Transport.Socket]; this
    module is the pure wire codec it rides on.  Workloads send realistic
    20-byte-header segments so that packet sizes and the MHRP rule of
    "insert between IP header and transport header" (Figure 2) are exercised
    against real transport bytes. *)

type flag = Fin | Syn | Rst | Psh | Ack | Urg

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** 32-bit. *)
  ack : int;  (** 32-bit. *)
  flags : flag list;
  window : int;
  data : bytes;
}

val header_length : int
(** 20. *)

val make :
  ?seq:int -> ?ack:int -> ?flags:flag list -> ?window:int ->
  src_port:int -> dst_port:int -> bytes -> t

val encode : t -> bytes

val decode : bytes -> t option
(** Total over hostile bytes: [None] on truncation, a data offset pointing
    outside the buffer, or a checksum mismatch — never an exception.  The
    stack feeds every TCP payload that reaches a node through this, so a
    corrupted segment must degrade to a drop, not a crash. *)

val decode_exn : bytes -> t
(** [decode], raising [Invalid_argument] on malformed input — for tests
    and corpus generators where malformed means a bug. *)

val has_flag : t -> flag -> bool
val pp : Format.formatter -> t -> unit
