(** UDP (RFC 768) payload codec: the 8-byte header plus data. *)

type t = {
  src_port : int;
  dst_port : int;
  data : bytes;
}

val header_length : int
(** 8. *)

val make : src_port:int -> dst_port:int -> bytes -> t

val encode : t -> bytes
(** Checksum is computed over header+data (pseudo-header omitted: the
    simulator never corrupts packets in ways a pseudo-header would
    catch). *)

val decode : bytes -> t
(** Raises [Invalid_argument] on truncation or checksum mismatch. *)

val pp : Format.formatter -> t -> unit
