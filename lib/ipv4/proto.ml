type t = int

let icmp = 1
let ipip = 4
let tcp = 6
let udp = 17
let mhrp = 99
let iptp = 98
let vip = 97
let lsrp = 89

let name = function
  | 1 -> "icmp"
  | 4 -> "ipip"
  | 6 -> "tcp"
  | 17 -> "udp"
  | 99 -> "mhrp"
  | 98 -> "iptp"
  | 97 -> "vip"
  | 89 -> "lsr"
  | n -> Printf.sprintf "proto-%d" n

let pp ppf t = Format.pp_print_string ppf (name t)
