type t = int

let max_addr = 0xFFFF_FFFF

let of_int n =
  if n < 0 || n > max_addr then invalid_arg "Addr.of_int: out of range"
  else n

let to_int t = t

(* The packed [Int_table] key is the address itself: [t] is already a
   non-negative tagged immediate, so packing is the identity and the
   range check of [of_int] is exactly the key-validity check. *)
let to_key t = t
let of_key k = of_int k

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Addr.of_octets" in
  check a; check b; check c; check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets t =
  ((t lsr 24) land 0xFF, (t lsr 16) land 0xFF, (t lsr 8) land 0xFF,
   t land 0xFF)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [a; b; c; d] ->
    (try
       let parse x =
         if String.length x = 0 || String.length x > 3 then raise Exit;
         String.iter (fun ch -> if ch < '0' || ch > '9' then raise Exit) x;
         int_of_string x
       in
       let a = parse a and b = parse b and c = parse c and d = parse d in
       if a > 255 || b > 255 || c > 255 || d > 255 then None
       else Some (of_octets a b c d)
     with Exit | Failure _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg ("Addr.of_string: " ^ s)

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let pp ppf t = Format.pp_print_string ppf (to_string t)

let zero = 0
let broadcast = max_addr
let is_zero t = t = 0
let equal = Int.equal
let compare = Int.compare
let hash t = Hashtbl.hash t

module Prefix = struct
  type addr = t
  type t = { base : addr; len : int }

  let mask len =
    if len = 0 then 0 else (max_addr lsl (32 - len)) land max_addr

  let make a len =
    if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
    { base = a land mask len; len }

  let of_string s =
    match String.index_opt s '/' with
    | None -> invalid_arg ("Prefix.of_string: missing /: " ^ s)
    | Some i ->
      let a = of_string (String.sub s 0 i) in
      let len =
        try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        with Failure _ -> invalid_arg ("Prefix.of_string: " ^ s)
      in
      make a len

  let mem a t = a land mask t.len = t.base
  let network_of a len = make a len

  let host t n =
    let host_bits = 32 - t.len in
    if host_bits < 63 && (n < 0 || (host_bits < 32 && n lsr host_bits <> 0))
    then invalid_arg "Prefix.host: host number out of range";
    t.base lor n

  let equal a b = a.base = b.base && a.len = b.len

  let compare a b =
    match Int.compare a.base b.base with
    | 0 -> Int.compare a.len b.len
    | c -> c

  let to_string t = Printf.sprintf "%s/%d" (to_string t.base) t.len
  let pp ppf t = Format.pp_print_string ppf (to_string t)
end

let net_len i len =
  if i < 0 || i > 0xFFFF then invalid_arg "Addr.net: network id out of range";
  Prefix.make (of_octets 10 (i lsr 8) (i land 0xFF) 0) len

let net i = net_len i 24

let host net_id host_id = Prefix.host (net net_id) host_id

let net_of t =
  let a, b, c, _ = to_octets t in
  if a <> 10 then None else Some ((b lsl 8) lor c)
