(** RFC 2002-style authentication extension.

    A fixed-size TLV appended to the bytes of a control message or
    location update:

    {v
      +------+--------+---------+-------------+-----------+----------+
      | type | length |   SPI   |  timestamp  |   nonce   |   MAC    |
      |  1B  |   1B   |   4B    |     8B      |    8B     |    8B    |
      +------+--------+---------+-------------+-----------+----------+
    v}

    30 bytes on the wire (type 32, length 28).  The MAC is SipHash-2-4
    over the protected payload followed by the extension itself with the
    MAC field zeroed, so the tag binds the SPI, timestamp and nonce as
    well as the message.  All fields are big-endian. *)

type t = {
  spi : int;  (** Security parameter index naming the association. *)
  timestamp : Netsim.Time.t;  (** Sender's clock when signing. *)
  nonce : int64;  (** Unique per signed message; replay detector key. *)
  mac : int64;  (** SipHash-2-4 tag. *)
}

val length : int
(** Encoded size in bytes (30). *)

val encode : t -> bytes

val decode : bytes -> t option
(** Exactly [length] bytes holding a well-formed extension; [None]
    otherwise (wrong type, wrong length byte, timestamp out of range). *)

val decode_at : bytes -> int -> t option
(** Decode an extension starting at the given offset. *)

val split : bytes -> (bytes * t) option
(** [split buf] takes a trailing extension off a message: the payload
    bytes and the decoded extension, or [None] if the buffer is too
    short or does not end in a well-formed extension. *)

val sign :
  key:Siphash.key ->
  spi:int ->
  timestamp:Netsim.Time.t ->
  nonce:int64 ->
  bytes ->
  t
(** Build an extension whose MAC authenticates the given payload. *)

val verify : key:Siphash.key -> bytes -> t -> bool
(** Recompute the MAC over [payload ++ ext{mac=0}] and compare. *)

val pp : Format.formatter -> t -> unit
