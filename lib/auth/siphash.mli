(** SipHash-2-4 (Aumasson & Bernstein, 2012): a keyed 64-bit MAC over
    bytes, the kind of keyed one-way function Mobile IP's authentication
    extension presumes a security association to name.

    Chosen because it is a genuine cryptographic PRF small enough to
    implement exactly in pure OCaml (no external dependencies), so the
    simulator's wire-format byte counts and verification behaviour are
    real, not stubs.  Verified against the reference test vectors in the
    test suite. *)

type key
(** A 128-bit secret, the shared key of a security association. *)

val key : k0:int64 -> k1:int64 -> key

val of_string : string -> key
(** The first 16 bytes of the string, little-endian, zero-padded — a
    convenience for test and experiment keys, not a KDF. *)

val mac : key -> bytes -> int64
(** The SipHash-2-4 tag of the message. *)

val pp_key : Format.formatter -> key -> unit
