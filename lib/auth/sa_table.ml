type sa = { spi : int; key : Siphash.key; replay : Replay.t }

type t = {
  window : Netsim.Time.t;
  capacity : int;
  by_mobile : (Ipv4.Addr.t, sa) Hashtbl.t;
}

type verdict = Ok | No_sa | Bad_spi | Bad_mac | Stale | Replayed

let create ~window ~capacity = { window; capacity; by_mobile = Hashtbl.create 16 }

let install t ~mobile ~spi ~key =
  Hashtbl.replace t.by_mobile mobile
    { spi; key; replay = Replay.create ~window:t.window ~capacity:t.capacity }

let find t mobile = Hashtbl.find_opt t.by_mobile mobile

let verify t ~mobile ~now ~payload (ext : Extension.t) =
  match Hashtbl.find_opt t.by_mobile mobile with
  | None -> No_sa
  | Some sa ->
    if sa.spi <> ext.spi then Bad_spi
      (* MAC first: an attacker without the key must not be able to
         advance the replay state with well-formed but forged nonces. *)
    else if not (Extension.verify ~key:sa.key payload ext) then Bad_mac
    else begin
      match
        Replay.check sa.replay ~now ~timestamp:ext.timestamp ~nonce:ext.nonce
      with
      | Replay.Fresh -> Ok
      | Replay.Stale_timestamp -> Stale
      | Replay.Replayed_nonce -> Replayed
    end

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
     | Ok -> "ok"
     | No_sa -> "no-sa"
     | Bad_spi -> "bad-spi"
     | Bad_mac -> "bad-mac"
     | Stale -> "stale"
     | Replayed -> "replayed")
