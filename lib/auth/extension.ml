type t = {
  spi : int;
  timestamp : Netsim.Time.t;
  nonce : int64;
  mac : int64;
}

let ext_type = 32
let ext_body_len = 28 (* spi(4) + timestamp(8) + nonce(8) + mac(8) *)
let length = 2 + ext_body_len

let get_u8 buf i = Char.code (Bytes.get buf i)

let put_u32 buf i v =
  for k = 0 to 3 do
    Bytes.set buf (i + k) (Char.chr ((v lsr (8 * (3 - k))) land 0xFF))
  done

let get_u32 buf i =
  let v = ref 0 in
  for k = 0 to 3 do
    v := (!v lsl 8) lor get_u8 buf (i + k)
  done;
  !v

let put_u64 buf i v =
  for k = 0 to 7 do
    Bytes.set buf (i + k)
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical v (8 * (7 - k))) land 0xFF))
  done

let get_u64 buf i =
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 buf (i + k)))
  done;
  !v

let encode { spi; timestamp; nonce; mac } =
  let buf = Bytes.make length '\000' in
  Bytes.set buf 0 (Char.chr ext_type);
  Bytes.set buf 1 (Char.chr ext_body_len);
  put_u32 buf 2 spi;
  put_u64 buf 6 (Int64.of_int (Netsim.Time.to_us timestamp));
  put_u64 buf 14 nonce;
  put_u64 buf 22 mac;
  buf

let decode_at buf off =
  if off < 0 || off + length > Bytes.length buf then None
  else if get_u8 buf off <> ext_type then None
  else if get_u8 buf (off + 1) <> ext_body_len then None
  else begin
    let ts = get_u64 buf (off + 6) in
    (* A 64-bit wire timestamp only names a simulation time if it fits in
       a non-negative OCaml int; anything else is a malformed extension,
       not an exception. *)
    if Int64.compare ts 0L < 0
       || Int64.compare ts (Int64.of_int max_int) > 0 then None
    else
      Some
        {
          spi = get_u32 buf (off + 2);
          timestamp = Netsim.Time.of_us (Int64.to_int ts);
          nonce = get_u64 buf (off + 14);
          mac = get_u64 buf (off + 22);
        }
  end

let decode buf =
  if Bytes.length buf <> length then None else decode_at buf 0

let split buf =
  let n = Bytes.length buf in
  if n < length then None
  else
    match decode_at buf (n - length) with
    | None -> None
    | Some ext -> Some (Bytes.sub buf 0 (n - length), ext)

(* The MAC covers the payload followed by the extension with the MAC
   field zeroed, so verification re-derives exactly what the signer
   hashed. *)
let signed_input payload ext =
  let ext_bytes = encode { ext with mac = 0L } in
  let buf = Bytes.create (Bytes.length payload + length) in
  Bytes.blit payload 0 buf 0 (Bytes.length payload);
  Bytes.blit ext_bytes 0 buf (Bytes.length payload) length;
  buf

let sign ~key ~spi ~timestamp ~nonce payload =
  let ext = { spi; timestamp; nonce; mac = 0L } in
  { ext with mac = Siphash.mac key (signed_input payload ext) }

let verify ~key payload ext =
  Int64.equal ext.mac (Siphash.mac key (signed_input payload ext))

let pp ppf { spi; timestamp; nonce; mac } =
  Format.fprintf ppf "auth-ext spi=%d ts=%a nonce=%Lx mac=%Lx" spi
    Netsim.Time.pp timestamp nonce mac
