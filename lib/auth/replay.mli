(** Replay protection: timestamp window + time-bounded seen-nonce table.

    A message is fresh iff its timestamp is within [window] of the
    receiver's clock {e and} its nonce has not been seen on a previously
    accepted message whose timestamp could still pass that check.  The
    timestamp window bounds how old a captured message can be when
    replayed; the nonce table catches replays inside that interval.

    Nonces are evicted by {e time}, not by count: a recorded nonce leaves
    the table only once [now] has advanced more than twice [window] past
    its timestamp, at which point no clock skew allowed by the timestamp
    check can make a replay of it acceptable.  (Count-based FIFO eviction
    would let an attacker flush a captured message's nonce with a burst of
    fresh messages and replay it while its timestamp is still valid.)
    Only accepted (fresh) messages are recorded, so rejected garbage
    cannot perturb the table either. *)

type verdict = Fresh | Stale_timestamp | Replayed_nonce

type t

val create : window:Netsim.Time.t -> capacity:int -> t
(** [capacity] sizes the initial table; the live-nonce set itself is
    bounded by the accepted-message rate over a [2*window] span, not by
    [capacity].  Raises [Invalid_argument] if [capacity <= 0]. *)

val check :
  t -> now:Netsim.Time.t -> timestamp:Netsim.Time.t -> nonce:int64 -> verdict
(** Judge a message and, if [Fresh], record its nonce (dropping nonces
    whose timestamps have aged beyond any replayable skew). *)

val size : t -> int
(** Nonces currently recorded. *)

val pp_verdict : Format.formatter -> verdict -> unit
