(** Replay protection: timestamp window + sliding seen-nonce window.

    A message is fresh iff its timestamp is within [window] of the
    receiver's clock {e and} its nonce has not been seen among the last
    [capacity] accepted messages.  The timestamp window bounds how old a
    captured message can be when replayed; the nonce window catches
    replays inside that interval.  Only accepted (fresh) messages are
    recorded, so an attacker cannot flush the window with garbage. *)

type verdict = Fresh | Stale_timestamp | Replayed_nonce

type t

val create : window:Netsim.Time.t -> capacity:int -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val check :
  t -> now:Netsim.Time.t -> timestamp:Netsim.Time.t -> nonce:int64 -> verdict
(** Judge a message and, if [Fresh], record its nonce (evicting the
    oldest recorded nonce when the window is full). *)

val pp_verdict : Format.formatter -> verdict -> unit
