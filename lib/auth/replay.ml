type verdict = Fresh | Stale_timestamp | Replayed_nonce

(* A nonce must stay recorded for as long as a message carrying it could
   still pass the timestamp check: evicting by insertion count (the old
   FIFO scheme) let an attacker flush a captured message's nonce with
   [capacity] fresh messages and replay it inside the window.  Eviction is
   therefore time-based: a nonce leaves the table only once every
   timestamp that could accompany it is stale.  A nonce with timestamp
   [ts] is judged against [now] with |now - ts| <= window, so it is
   finally dead once [now > ts + 2*window] (a receiver clock at
   [ts + window] still accepted it; one window later nothing can). *)
type t = {
  window : Netsim.Time.t;
  seen : (int64, Netsim.Time.t) Hashtbl.t;  (* nonce -> its timestamp *)
  order : (int64 * Netsim.Time.t) Queue.t;  (* insertion order *)
}

let create ~window ~capacity =
  if capacity <= 0 then invalid_arg "Replay.create: capacity must be positive";
  { window; seen = Hashtbl.create (2 * capacity); order = Queue.create () }

(* Insertion order is not timestamp order (skew up to [window] either way
   is legal), but live timestamps differ by at most 2*window, so draining
   expired entries from the queue front keeps the table within a bounded
   lag of the exact expiry set — and keeping a nonce slightly long can
   only reject a replay, never a fresh message (nonces are unique). *)
let expire t ~now =
  let dead ts =
    Netsim.Time.(now > ts)
    && Netsim.Time.(
         diff now ts > Netsim.Time.add t.window t.window)
  in
  let rec drain () =
    match Queue.peek_opt t.order with
    | Some (nonce, ts) when dead ts ->
      ignore (Queue.pop t.order);
      (* Replays re-record a nonce only via [remember]'s Hashtbl.replace,
         never a second queue entry, so the table entry matches. *)
      Hashtbl.remove t.seen nonce;
      drain ()
    | _ -> ()
  in
  drain ()

let remember t ~timestamp nonce =
  Hashtbl.replace t.seen nonce timestamp;
  Queue.push (nonce, timestamp) t.order

let check t ~now ~timestamp ~nonce =
  expire t ~now;
  let skew =
    if Netsim.Time.(timestamp > now) then Netsim.Time.diff timestamp now
    else Netsim.Time.diff now timestamp
  in
  if Netsim.Time.(skew > t.window) then Stale_timestamp
  else if Hashtbl.mem t.seen nonce then Replayed_nonce
  else begin
    (* Only fresh messages are recorded: a rejected message must not be
       able to perturb the state that makes its replay detectable. *)
    remember t ~timestamp nonce;
    Fresh
  end

let size t = Hashtbl.length t.seen

let pp_verdict ppf = function
  | Fresh -> Format.pp_print_string ppf "fresh"
  | Stale_timestamp -> Format.pp_print_string ppf "stale-timestamp"
  | Replayed_nonce -> Format.pp_print_string ppf "replayed-nonce"
