type verdict = Fresh | Stale_timestamp | Replayed_nonce

type t = {
  window : Netsim.Time.t;
  capacity : int;
  seen : (int64, unit) Hashtbl.t;
  order : int64 Queue.t;
}

let create ~window ~capacity =
  if capacity <= 0 then invalid_arg "Replay.create: capacity must be positive";
  { window; capacity; seen = Hashtbl.create (2 * capacity); order = Queue.create () }

let remember t nonce =
  if Queue.length t.order >= t.capacity then
    Hashtbl.remove t.seen (Queue.pop t.order);
  Hashtbl.replace t.seen nonce ();
  Queue.push nonce t.order

let check t ~now ~timestamp ~nonce =
  let skew =
    if Netsim.Time.(timestamp > now) then Netsim.Time.diff timestamp now
    else Netsim.Time.diff now timestamp
  in
  if Netsim.Time.(skew > t.window) then Stale_timestamp
  else if Hashtbl.mem t.seen nonce then Replayed_nonce
  else begin
    (* Only fresh messages advance the window: a rejected message must
       not be able to evict the nonces that make its replay detectable. *)
    remember t nonce;
    Fresh
  end

let pp_verdict ppf = function
  | Fresh -> Format.pp_print_string ppf "fresh"
  | Stale_timestamp -> Format.pp_print_string ppf "stale-timestamp"
  | Replayed_nonce -> Format.pp_print_string ppf "replayed-nonce"
