type key = { k0 : int64; k1 : int64 }

let key ~k0 ~k1 = { k0; k1 }

(* Read up to [n] bytes of [get i] as a little-endian word. *)
let word_le get off n =
  let w = ref 0L in
  for i = n - 1 downto 0 do
    w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int (get (off + i)))
  done;
  !w

let of_string s =
  let byte i = if i < String.length s then Char.code s.[i] else 0 in
  { k0 = word_le byte 0 8; k1 = word_le byte 8 8 }

let ( +% ) = Int64.add
let ( ^% ) = Int64.logxor

let rotl x b =
  Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

let mac { k0; k1 } msg =
  let v0 = ref (k0 ^% 0x736f6d6570736575L)
  and v1 = ref (k1 ^% 0x646f72616e646f6dL)
  and v2 = ref (k0 ^% 0x6c7967656e657261L)
  and v3 = ref (k1 ^% 0x7465646279746573L) in
  let sipround () =
    v0 := !v0 +% !v1;
    v1 := rotl !v1 13;
    v1 := !v1 ^% !v0;
    v0 := rotl !v0 32;
    v2 := !v2 +% !v3;
    v3 := rotl !v3 16;
    v3 := !v3 ^% !v2;
    v0 := !v0 +% !v3;
    v3 := rotl !v3 21;
    v3 := !v3 ^% !v0;
    v2 := !v2 +% !v1;
    v1 := rotl !v1 17;
    v1 := !v1 ^% !v2;
    v2 := rotl !v2 32
  in
  let absorb m =
    v3 := !v3 ^% m;
    sipround ();
    sipround ();
    v0 := !v0 ^% m
  in
  let len = Bytes.length msg in
  let byte i = Char.code (Bytes.get msg i) in
  for b = 0 to (len / 8) - 1 do
    absorb (word_le byte (b * 8) 8)
  done;
  (* Final word: the trailing bytes with the low 8 bits of the length in
     the top byte. *)
  absorb
    (Int64.logor
       (word_le byte (len land lnot 7) (len land 7))
       (Int64.shift_left (Int64.of_int (len land 0xFF)) 56));
  v2 := !v2 ^% 0xFFL;
  sipround ();
  sipround ();
  sipround ();
  sipround ();
  !v0 ^% !v1 ^% !v2 ^% !v3

let pp_key ppf { k0; k1 } = Format.fprintf ppf "key(%Lx,%Lx)" k0 k1
