(* The attacker speaks MHRP's wire formats but not its implementation:
   every message below is hand-crafted bytes, exactly what a hostile
   node on the internetwork could emit without running the protocol
   stack.  (It also keeps the dependency arrow pointing the right way:
   lib/mhrp authenticates against lib/auth, so lib/auth cannot call into
   lib/mhrp.) *)

let control_port = 434 (* Mhrp.Control.port *)
let reg_request_type = 1

type t = {
  node : Net.Node.t;
  victim : Ipv4.Addr.t;
  trace : Netsim.Trace.t option;
  mutable captured : Ipv4.Packet.t list;
  mutable forged : int;
  mutable replayed : int;
  mutable hijacked : int;
}

let emit t kind detail =
  match t.trace with
  | None -> ()
  | Some tr ->
    Netsim.Trace.emit tr
      ~at:(Netsim.Engine.now (Net.Node.engine t.node))
      ~node:(Net.Node.name t.node) ~kind detail

let get_u8 buf i = Char.code (Bytes.get buf i)

let get_addr buf i =
  Ipv4.Addr.of_int
    ((get_u8 buf i lsl 24) lor (get_u8 buf (i + 1) lsl 16)
     lor (get_u8 buf (i + 2) lsl 8) lor get_u8 buf (i + 3))

let put_addr buf i a =
  let v = Ipv4.Addr.to_int a in
  for k = 0 to 3 do
    Bytes.set buf (i + k) (Char.chr ((v lsr (8 * (3 - k))) land 0xFF))
  done

let create ?trace ~victim node =
  let t =
    { node; victim; trace; captured = []; forged = 0; replayed = 0;
      hijacked = 0 }
  in
  (* Anything tunneled to us with the victim's address in the MHRP
     header (offset 4) is traffic we stole. *)
  Net.Node.set_proto_handler node Ipv4.Proto.mhrp (fun _ pkt ->
      let p = pkt.Ipv4.Packet.payload in
      if Bytes.length p >= 8 && Ipv4.Addr.equal (get_addr p 4) t.victim
      then begin
        t.hijacked <- t.hijacked + 1;
        emit t "hijack"
          (Printf.sprintf "stole packet for %s from %s"
             (Ipv4.Addr.to_string t.victim)
             (Ipv4.Addr.to_string pkt.Ipv4.Packet.src))
      end);
  t

let node t = t.node
let forged t = t.forged
let replayed t = t.replayed
let hijacked t = t.hijacked
let captured t = List.length t.captured

let send_udp t ~src ~dst data =
  let udp =
    Ipv4.Udp.encode
      (Ipv4.Udp.make ~src_port:control_port ~dst_port:control_port data)
  in
  Net.Node.send t.node
    (Ipv4.Packet.make ~proto:Ipv4.Proto.udp ~src ~dst udp)

let forge_registration t ~home_agent ~foreign_agent =
  let buf = Bytes.make 9 '\000' in
  Bytes.set buf 0 (Char.chr reg_request_type);
  put_addr buf 1 t.victim;
  put_addr buf 5 foreign_agent;
  t.forged <- t.forged + 1;
  emit t "forged-update"
    (Printf.sprintf "forged registration: %s at fa=%s -> ha=%s"
       (Ipv4.Addr.to_string t.victim)
       (Ipv4.Addr.to_string foreign_agent)
       (Ipv4.Addr.to_string home_agent));
  (* Spoof the victim as the IP source, as the genuine registration
     would carry. *)
  send_udp t ~src:t.victim ~dst:home_agent buf

let forge_location_update t ~src ~dst ~foreign_agent =
  let icmp =
    Ipv4.Icmp.encode
      (Ipv4.Icmp.Location_update { mobile = t.victim; foreign_agent })
  in
  t.forged <- t.forged + 1;
  emit t "forged-update"
    (Printf.sprintf "forged location update to %s: %s at fa=%s (src spoofed as %s)"
       (Ipv4.Addr.to_string dst)
       (Ipv4.Addr.to_string t.victim)
       (Ipv4.Addr.to_string foreign_agent)
       (Ipv4.Addr.to_string src));
  Net.Node.send t.node
    (Ipv4.Packet.make ~proto:Ipv4.Proto.icmp ~src ~dst icmp)

let own_macs t =
  List.map (fun (i, _, _) -> Net.Node.iface_mac t.node i)
    (Net.Node.ifaces t.node)

(* A frame is a victim registration if it decodes as UDP to the control
   port with a type-1 body naming the victim.  All the decoders raise on
   junk; junk is simply not a registration. *)
let registration_of_frame t frame =
  if List.exists (Net.Mac.equal frame.Net.Frame.src) (own_macs t) then None
  else
    match frame.Net.Frame.content with
    | Net.Frame.Arp _ -> None
    | Net.Frame.Ip raw ->
      (match Ipv4.Packet.decode raw with
       | exception Invalid_argument _ -> None
       | pkt ->
         if pkt.Ipv4.Packet.proto <> Ipv4.Proto.udp then None
         else
           match Ipv4.Udp.decode pkt.Ipv4.Packet.payload with
           | exception Invalid_argument _ -> None
           | udp ->
             if udp.Ipv4.Udp.dst_port <> control_port then None
             else
               let data = udp.Ipv4.Udp.data in
               if Bytes.length data >= 9
                  && get_u8 data 0 = reg_request_type
                  && Ipv4.Addr.equal (get_addr data 1) t.victim
               then Some pkt
               else None)

let tap t lan =
  Net.Lan.add_monitor lan (fun frame ->
      match registration_of_frame t frame with
      | None -> ()
      | Some pkt ->
        t.captured <- t.captured @ [ pkt ];
        emit t "capture"
          (Printf.sprintf "captured registration for %s (%d bytes)"
             (Ipv4.Addr.to_string t.victim)
             (Bytes.length pkt.Ipv4.Packet.payload)))

let replay_captured t =
  List.iter
    (fun pkt ->
       t.replayed <- t.replayed + 1;
       emit t "replay"
         (Printf.sprintf "replaying captured registration for %s to %s"
            (Ipv4.Addr.to_string t.victim)
            (Ipv4.Addr.to_string pkt.Ipv4.Packet.dst));
       (* Byte-identical payload, fresh IP envelope. *)
       Net.Node.send t.node
         (Ipv4.Packet.make ~proto:pkt.Ipv4.Packet.proto
            ~src:pkt.Ipv4.Packet.src ~dst:pkt.Ipv4.Packet.dst
            pkt.Ipv4.Packet.payload))
    t.captured

let assume_address t addr =
  Net.Node.add_address t.node addr;
  List.iter
    (fun (i, _, _) -> Net.Node.gratuitous_arp t.node ~iface:i addr)
    (Net.Node.ifaces t.node)
