(** An in-simulator attacker targeting one mobile host.

    The adversary is an ordinary {!Net.Node.t} the experiment attaches
    somewhere on the internetwork.  It does not run the MHRP stack; it
    emits hand-crafted wire bytes — exactly the capability a hostile
    host on a transit network has:

    - {b forgery}: fabricate a registration or ICMP location update
      claiming the victim moved to a foreign agent of the attacker's
      choosing (typically itself), redirecting the victim's traffic;
    - {b capture & replay}: promiscuously record the victim's genuine
      (possibly authenticated) registrations off a LAN and re-send them
      later, re-installing a stale binding.

    Success is measured by the hijack counter: MHRP-encapsulated packets
    that arrive at the attacker carrying the victim's address. *)

type t

val create : ?trace:Netsim.Trace.t -> victim:Ipv4.Addr.t -> Net.Node.t -> t
(** Arm a node: installs an MHRP protocol handler that counts tunneled
    packets stolen from [victim].  Events go to [trace] under kinds
    ["forged-update"], ["capture"], ["replay"] and ["hijack"]. *)

val node : t -> Net.Node.t

(** {1 Attacks} *)

val forge_registration :
  t -> home_agent:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit
(** Send the home agent a fabricated registration (IP source spoofed as
    the victim) placing the victim at [foreign_agent]. *)

val forge_location_update :
  t -> src:Ipv4.Addr.t -> dst:Ipv4.Addr.t -> foreign_agent:Ipv4.Addr.t -> unit
(** Send [dst] a fabricated ICMP location update, its IP source spoofed
    as [src] (normally the victim's home agent, whom caches trust). *)

val tap : t -> Net.Lan.t -> unit
(** Start promiscuously capturing the victim's registrations crossing
    the given LAN (frames the attacker itself sent are ignored). *)

val replay_captured : t -> unit
(** Re-send every captured registration, byte-identical payload in a
    fresh IP envelope. *)

val assume_address : t -> Ipv4.Addr.t -> unit
(** Claim an address (e.g. the foreign agent named in a captured
    registration) and announce it with gratuitous ARP on every attached
    LAN, so hijacked tunnels terminate at the attacker. *)

(** {1 Counters} *)

val forged : t -> int
val replayed : t -> int
val captured : t -> int

val hijacked : t -> int
(** Tunneled packets for the victim that reached the attacker. *)
