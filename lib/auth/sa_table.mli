(** Security-association table.

    One association per mobile host: the SPI naming it, the shared
    SipHash key, and that association's replay state.  Every agent
    that authenticates control traffic about a mobile host (its home
    agent, foreign agents, cache maintainers and correspondents) holds
    the association under the mobile's home address, mirroring how
    Mobile IP keys the mobility security association. *)

type sa = { spi : int; key : Siphash.key; replay : Replay.t }

type t

type verdict = Ok | No_sa | Bad_spi | Bad_mac | Stale | Replayed

val create : window:Netsim.Time.t -> capacity:int -> t
(** [window]/[capacity] parameterise the replay detector of every
    association subsequently installed. *)

val install : t -> mobile:Ipv4.Addr.t -> spi:int -> key:Siphash.key -> unit
(** Install (or replace) the association for a mobile host.  Replacing
    resets its replay state. *)

val find : t -> Ipv4.Addr.t -> sa option

val verify :
  t ->
  mobile:Ipv4.Addr.t ->
  now:Netsim.Time.t ->
  payload:bytes ->
  Extension.t ->
  verdict
(** Check an extension protecting [payload] for a message about
    [mobile]: association lookup, SPI match, MAC, then replay.  [Ok]
    records the nonce; every other verdict leaves replay state
    untouched. *)

val pp_verdict : Format.formatter -> verdict -> unit
