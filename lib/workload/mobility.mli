(** Movement models driving mobile hosts between networks.

    Section 3 defines movement as sequences of link-level attachment plus
    registration; these helpers schedule such sequences. *)

val move_at :
  Net.Topology.t -> Mhrp.Agent.t -> at:Netsim.Time.t -> Net.Lan.t -> unit
(** One scheduled move. *)

val itinerary :
  Net.Topology.t -> Mhrp.Agent.t -> (Netsim.Time.t * Net.Lan.t) list -> unit
(** A scripted commuter pattern (e.g. home → cell 1 → cell 2 → home). *)

val random_waypoint :
  Net.Topology.t -> Mhrp.Agent.t -> rng:Netsim.Rng.t ->
  lans:Net.Lan.t array -> dwell_mean:Netsim.Time.t ->
  until:Netsim.Time.t -> unit
(** Move to a uniformly random LAN (never the current one), dwell for an
    exponentially-distributed time with the given mean, repeat until the
    deadline. *)

val commuter :
  Net.Topology.t -> Mhrp.Agent.t -> home:Net.Lan.t -> work:Net.Lan.t ->
  leave_home:Netsim.Time.t -> day_length:Netsim.Time.t -> days:int -> unit
(** The daily pattern of the paper's introduction: leave home, spend the
    day attached at work, return in the evening, every day. *)

val ping_pong :
  Net.Topology.t -> Mhrp.Agent.t -> a:Net.Lan.t -> b:Net.Lan.t ->
  start:Netsim.Time.t -> period:Netsim.Time.t -> moves:int -> unit
(** Alternate between two cells every [period] — the frequently-moving
    host of Section 2's forwarding-pointer discussion. *)
