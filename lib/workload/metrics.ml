module Packet = Ipv4.Packet

type key = Ipv4.Addr.t * int

type record = {
  key : key;
  sent_at : Netsim.Time.t;
  sent_bytes : int;
  mutable hops : int;
  mutable max_bytes : int;
  mutable delivered_at : Netsim.Time.t option;
  mutable dropped : string option;
}

type t = {
  engine : Netsim.Engine.t;
  tbl : (key, record) Hashtbl.t;
  mutable order : record list;  (* newest first *)
}

(* The key ties a tunneled packet back to the application packet: the IP
   id is preserved by every encapsulation here, but the source address is
   rewritten, so we key on id plus the *original* source, recoverable from
   whichever encapsulation header is present (MHRP's previous-source list,
   or the inner packet of IPIP/IPTP, or the VIP source). *)
let keys_of (pkt : Packet.t) =
  let id = pkt.Packet.id in
  let base = [(pkt.Packet.src, id)] in
  let proto = pkt.Packet.proto in
  if proto = Ipv4.Proto.mhrp then
    match Mhrp.Mhrp_header.decode_prefix pkt.Packet.payload with
    | Some (h, _) ->
      (match Mhrp.Mhrp_header.original_sender h with
       | Some s -> (s, id) :: base
       | None -> base)
    | None -> base
  else if proto = Ipv4.Proto.ipip then
    match Baselines.Ipip.decap pkt with
    | Some inner -> (inner.Packet.src, inner.Packet.id) :: base
    | None -> base
  else if proto = Ipv4.Proto.iptp then
    match Baselines.Iptp.decap pkt with
    | Some inner -> (inner.Packet.src, inner.Packet.id) :: base
    | None -> base
  else if proto = Ipv4.Proto.vip then
    match Baselines.Viph.peek pkt with
    | Some h -> (h.Baselines.Viph.vip_src, id) :: base
    | None -> base
  else base

let find_record t pkt =
  List.find_map (fun k -> Hashtbl.find_opt t.tbl k) (keys_of pkt)

let on_forward t _node pkt =
  match find_record t pkt with
  | None -> ()
  | Some r ->
    r.hops <- r.hops + 1;
    let b = Packet.total_length pkt in
    if b > r.max_bytes then r.max_bytes <- b

let on_drop t _node reason pkt =
  match find_record t pkt with
  | None -> ()
  | Some r -> if r.delivered_at = None then r.dropped <- Some reason

let create topo =
  let t =
    { engine = Net.Topology.engine topo; tbl = Hashtbl.create 256;
      order = [] }
  in
  let watch node =
    Net.Node.on_transmit node (fun n pkt -> on_forward t n pkt);
    Net.Node.on_drop node (fun n reason pkt -> on_drop t n reason pkt)
  in
  List.iter watch (Net.Topology.nodes topo);
  (* nodes created after the metrics (extra cells, late hosts) are
     covered too *)
  Net.Topology.on_node_added topo watch;
  t

let note_send t (pkt : Packet.t) =
  let key = (pkt.Packet.src, pkt.Packet.id) in
  let r =
    { key;
      sent_at = Netsim.Engine.now t.engine;
      sent_bytes = Packet.total_length pkt;
      hops = 0;
      max_bytes = Packet.total_length pkt;
      delivered_at = None;
      dropped = None }
  in
  Hashtbl.replace t.tbl key r;
  t.order <- r :: t.order

let note_delivery t (pkt : Packet.t) =
  match find_record t pkt with
  | None -> ()
  | Some r ->
    if r.delivered_at = None then begin
      r.delivered_at <- Some (Netsim.Engine.now t.engine);
      r.dropped <- None
    end

let watch_receiver t agent =
  Mhrp.Agent.on_app_receive agent (fun pkt -> note_delivery t pkt)

let find t key = Hashtbl.find_opt t.tbl key
let records t = List.rev t.order
let delivered t = List.filter (fun r -> r.delivered_at <> None) (records t)
let dropped t = List.filter (fun r -> r.dropped <> None) (records t)

let delivery_ratio t =
  let all = records t in
  if all = [] then 0.0
  else
    float_of_int (List.length (delivered t))
    /. float_of_int (List.length all)

let mean_over f t =
  let ds = delivered t in
  if ds = [] then 0.0
  else
    List.fold_left (fun acc r -> acc +. f r) 0.0 ds
    /. float_of_int (List.length ds)

let mean_hops t = mean_over (fun r -> float_of_int r.hops) t

let mean_latency_us t =
  mean_over
    (fun r ->
       match r.delivered_at with
       | Some at -> float_of_int (Netsim.Time.to_us at - Netsim.Time.to_us r.sent_at)
       | None -> 0.0)
    t

let mean_overhead_bytes t =
  mean_over (fun r -> float_of_int (r.max_bytes - r.sent_bytes)) t

let record_obs t registry ~exp ?(labels = []) () =
  let counter = Obs.Registry.counter registry ~exp ~labels in
  let gauge = Obs.Registry.gauge registry ~exp ~labels in
  counter "packets" (List.length (records t));
  counter "delivered" (List.length (delivered t));
  gauge "delivery_ratio" (delivery_ratio t);
  gauge "mean_hops" (mean_hops t);
  gauge ~tol:(Obs.Metric.Pct 20.0) "mean_latency_us" (mean_latency_us t);
  gauge "mean_overhead_bytes" (mean_overhead_bytes t);
  (* the latency distribution rides along as a histogram, via the shared
     Stats reservoir *)
  let samples = Netsim.Stats.Samples.create () in
  List.iter
    (fun r ->
       match r.delivered_at with
       | Some at ->
         Netsim.Stats.Samples.add samples
           (float_of_int (Netsim.Time.to_us at - Netsim.Time.to_us r.sent_at))
       | None -> ())
    (records t);
  Obs.Registry.set registry ~exp ~labels "latency_us"
    (Netsim.Stats.Samples.to_metric ~tol:(Obs.Metric.Pct 20.0) samples)

let pp_summary ppf t =
  Format.fprintf ppf
    "packets=%d delivered=%.1f%% hops=%.2f latency=%.0fus overhead=%.1fB"
    (List.length (records t))
    (100.0 *. delivery_ratio t)
    (mean_hops t) (mean_latency_us t) (mean_overhead_bytes t)
