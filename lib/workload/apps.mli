(** Application workloads over {!Transport.Socket}.

    Three app shapes for exercising connections across hand-offs, built
    purely on the socket API (no raw segments anywhere):

    - {!Rpc}: request/response with per-request completion latency;
    - {!Chat}: a fan-out room where every message is timestamped, giving
      client-to-client latencies through a relay;
    - {!Bulk}: a long single transfer tracking goodput and the longest
      mid-stream stall (the hand-off metric).

    All latency accounting starts at intended send time, so time spent
    blocked by a hand-off or failure counts against the SLO. *)

module Rpc : sig
  type client

  val serve :
    Transport.Stack.t -> port:int -> req_bytes:int -> resp_bytes:int -> unit
  (** Answer every complete [req_bytes]-byte request on [port] with a
      [resp_bytes]-byte response, on every accepted connection. *)

  val start :
    client:Transport.Stack.t -> server:Ipv4.Addr.t -> ?port:int ->
    ?req_bytes:int -> ?resp_bytes:int -> ?rto:Netsim.Time.t ->
    start:Netsim.Time.t -> interval:Netsim.Time.t -> count:int -> unit ->
    client
  (** One connection, [count] requests, one per [interval]. *)

  val responses : client -> int
  val expected : client -> int

  val latencies_us : client -> float list
  (** Request-to-response latencies in completion order. *)

  val socket : client -> Transport.Socket.t option
end

module Chat : sig
  type room

  val room : Transport.Stack.t -> port:int -> msg_bytes:int -> room
  (** Host a room: each complete [msg_bytes]-byte message from any
      member is relayed to every other member. *)

  val relayed : room -> int
  val members : room -> int

  type member

  val join :
    Transport.Stack.t -> server:Ipv4.Addr.t -> port:int -> msg_bytes:int ->
    at:Netsim.Time.t -> unit -> member

  val say : member -> at:Netsim.Time.t -> unit
  (** Send one message at time [at] (dropped if the member is not yet
      connected).  Messages embed their send time in the first 8 bytes;
      [msg_bytes] must be at least 8. *)

  val sent : member -> int
  val received : member -> int

  val latencies_us : member -> float list
  (** Sender-to-this-member latencies through the relay, in arrival
      order. *)
end

module Bulk : sig
  val serve : Transport.Stack.t -> port:int -> bytes:int -> unit
  (** Push [bytes] of a checkable pattern to each accepted connection,
      then close. *)

  type fetch

  val fetch :
    Transport.Stack.t -> server:Ipv4.Addr.t -> ?port:int -> bytes:int ->
    at:Netsim.Time.t -> unit -> fetch

  val complete : fetch -> bool
  val intact : fetch -> bool
  (** Every byte arrived, in order, matching the pattern. *)

  val completion_us : fetch -> int option
  (** Connect-to-last-byte time. *)

  val max_stall_us : fetch -> int
  (** Longest gap between consecutive deliveries — the transfer's worst
      hand-off-induced stall. *)

  val received : fetch -> int
  val goodput_kbps : fetch -> float option
  val socket : fetch -> Transport.Socket.t option
end
