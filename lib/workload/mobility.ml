let move_at topo agent ~at lan =
  let engine = Net.Topology.engine topo in
  ignore
    (Netsim.Engine.schedule engine ~at (fun () ->
         Mhrp.Agent.move_to ~topo agent lan))

let itinerary topo agent stops =
  List.iter (fun (at, lan) -> move_at topo agent ~at lan) stops

let current_lan agent =
  match Net.Node.ifaces (Mhrp.Agent.node agent) with
  | (_, lan, _) :: _ -> Some lan
  | [] -> None

let random_waypoint topo agent ~rng ~lans ~dwell_mean ~until =
  if Array.length lans < 2 then
    invalid_arg "Mobility.random_waypoint: need at least two LANs";
  let engine = Net.Topology.engine topo in
  let rec step () =
    let dwell =
      Netsim.Time.of_us
        (1 + int_of_float
               (Netsim.Rng.exponential rng
                  (float_of_int (Netsim.Time.to_us dwell_mean))))
    in
    let at = Netsim.Time.add (Netsim.Engine.now engine) dwell in
    if Netsim.Time.(at <= until) then
      ignore
        (Netsim.Engine.schedule engine ~at (fun () ->
             let here = current_lan agent in
             let candidates =
               Array.to_list lans
               |> List.filter (fun l ->
                   match here with
                   | Some h -> not (h == l)
                   | None -> true)
             in
             let target =
               Netsim.Rng.pick rng (Array.of_list candidates)
             in
             Mhrp.Agent.move_to ~topo agent target;
             step ()))
  in
  step ()

let commuter topo agent ~home ~work ~leave_home ~day_length ~days =
  for day = 0 to days - 1 do
    let day_start =
      Netsim.Time.of_us
        (Netsim.Time.to_us leave_home
         + (day * 2 * Netsim.Time.to_us day_length))
    in
    move_at topo agent ~at:day_start work;
    move_at topo agent
      ~at:(Netsim.Time.add day_start day_length)
      home
  done

let ping_pong topo agent ~a ~b ~start ~period ~moves =
  for k = 0 to moves - 1 do
    let at =
      Netsim.Time.add start
        (Netsim.Time.of_us (k * Netsim.Time.to_us period))
    in
    move_at topo agent ~at (if k mod 2 = 0 then a else b)
  done
