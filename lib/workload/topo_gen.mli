(** Topology generators for the experiments.

    [figure1] reproduces the paper's example internetwork exactly; the
    parameterised generators scale it for the scalability and convergence
    experiments. *)

(** The paper's Figure 1, with MHRP agents installed:

    {v
      net A ---- R1 ---\
                        backbone
      net B ---- R2 ---/   |
      (home of M)          R3 ---- net C ---- R4 ---- net D (wireless)
    v}

    [S] is a host on network A; [M] is a mobile host whose home is
    network B; [R2] is M's home agent; [R4] is the foreign agent for the
    wireless network D.  R1 and R3 are plain routers whose agents can act
    as cache agents (R1 serves network A's non-MHRP hosts in
    Section 6.2). *)
type figure1 = {
  topo : Net.Topology.t;
  net_a : Net.Lan.t;
  net_b : Net.Lan.t;
  net_c : Net.Lan.t;
  net_d : Net.Lan.t;
  backbone : Net.Lan.t;
  s : Mhrp.Agent.t;
  m : Mhrp.Agent.t;
  r1 : Mhrp.Agent.t;
  r2 : Mhrp.Agent.t;  (** Home agent for M. *)
  r3 : Mhrp.Agent.t;
  r4 : Mhrp.Agent.t;  (** Foreign agent on network D. *)
}

val figure1 :
  ?config:Mhrp.Config.t -> ?seed:int -> ?snoop_routers:bool ->
  ?icmp_quote:Net.Node.icmp_quote -> unit -> figure1

(** The same Figure 1 internetwork without MHRP agents, for running the
    baseline protocols over an identical substrate. *)
type plain = {
  p_topo : Net.Topology.t;
  p_net_a : Net.Lan.t;
  p_net_b : Net.Lan.t;
  p_net_c : Net.Lan.t;
  p_net_d : Net.Lan.t;
  p_backbone : Net.Lan.t;
  p_s : Net.Node.t;
  p_m : Net.Node.t;
  p_r1 : Net.Node.t;
  p_r2 : Net.Node.t;
  p_r3 : Net.Node.t;
  p_r4 : Net.Node.t;
}

val figure1_plain : ?seed:int -> unit -> plain

(** A backbone with [campuses] campus routers, each serving one home
    network with [mobiles_per_campus] mobile hosts and one wireless cell
    with a foreign agent, plus [correspondents] sender hosts spread over
    campuses.  Every campus router is home agent for its own mobiles and
    foreign agent for its cell — the Section 2 combination. *)
type campus = {
  c_topo : Net.Topology.t;
  c_backbone : Net.Lan.t;
  c_routers : Mhrp.Agent.t array;  (** campus router agents *)
  c_cells : Net.Lan.t array;  (** wireless cell of campus i *)
  c_homes : Net.Lan.t array;
  c_mobiles : Mhrp.Agent.t array;  (** all mobile hosts *)
  c_senders : Mhrp.Agent.t array;
}

val campuses :
  ?config:Mhrp.Config.t -> ?seed:int -> ?backbone_prefix_len:int ->
  campuses:int -> mobiles_per_campus:int -> correspondents:int -> unit ->
  campus
(** [backbone_prefix_len] (default 24) widens the backbone's host field;
    pass 16 for internetworks beyond ~240 campuses, whose routers would
    overflow a /24 backbone. *)

(** The campus topology without MHRP agents, for the baseline protocols:
    [cp_routers].(i) connects the backbone, [cp_homes].(i) and
    [cp_cells].(i); mobiles and senders are plain hosts. *)
type campus_plain = {
  cp_topo : Net.Topology.t;
  cp_backbone : Net.Lan.t;
  cp_routers : Net.Node.t array;
  cp_cells : Net.Lan.t array;
  cp_homes : Net.Lan.t array;
  cp_mobiles : Net.Node.t array;
  cp_senders : Net.Node.t array;
}

val campuses_plain :
  ?seed:int -> ?backbone_prefix_len:int -> ?compute_routes:bool ->
  campuses:int -> mobiles_per_campus:int -> correspondents:int -> unit ->
  campus_plain
(** [backbone_prefix_len] as in {!campuses}.  [compute_routes] (default
    true) may be disabled by callers that only need the wired topology —
    construction-cost benchmarks, or experiments that add nodes before
    the one route computation. *)

(** A two-level regional hierarchy (E19): [regions] regional routers on
    a backbone, each a home agent for its own [mobiles_per_region] mobile
    hosts and a regional agent for visitors, with [cells] wireless cells
    per region behind dedicated foreign-agent routers.  Every foreign
    agent is provisioned with its regional parent; whether the connect
    handshake advertises it is decided by [Config.hierarchy], so one
    wiring serves both flat and hierarchical runs. *)
type region = {
  rg_topo : Net.Topology.t;
  rg_backbone : Net.Lan.t;
  rg_regionals : Mhrp.Agent.t array;
      (** regional router of region r: home + regional agent *)
  rg_backups : Mhrp.Agent.t array;
      (** standby regional agent of region r ([backups:true]), empty
          otherwise.  Primary and standby mirror bindings to each other
          ([Control.Region_sync]); foreign agents advertise the standby
          at connect time as the mobiles' failover target. *)
  rg_fas : Mhrp.Agent.t array array;  (** [rg_fas.(r).(c)]: cell FA *)
  rg_cells : Net.Lan.t array array;
  rg_homes : Net.Lan.t array;
  rg_mobiles : Mhrp.Agent.t array;
      (** region r's mobiles at indices [r * mobiles_per_region ..] *)
  rg_senders : Mhrp.Agent.t array;
}

val regions :
  ?config:Mhrp.Config.t -> ?seed:int -> ?backups:bool -> regions:int ->
  cells:int -> mobiles_per_region:int -> correspondents:int -> unit ->
  region

(** A chain of [n] routers r0 - r1 - ... - r(n-1), each with a stub LAN,
    used to build long tunnels and cache-agent loops. *)
type chain = {
  ch_topo : Net.Topology.t;
  ch_routers : Mhrp.Agent.t array;
  ch_stubs : Net.Lan.t array;
  ch_links : Net.Lan.t array;
}

val chain : ?config:Mhrp.Config.t -> ?seed:int -> n:int -> unit -> chain
