(** Per-packet measurement: hops, latency, wire overhead, delivery.

    Tracked packets are keyed by (source address, IP id); the workload
    allocates unique ids per flow.  The IP id survives MHRP tunneling
    (only protocol/addresses are rewritten), so a packet is followed
    end-to-end across any number of tunnels. *)

type key = Ipv4.Addr.t * int

type record = {
  key : key;
  sent_at : Netsim.Time.t;
  sent_bytes : int;  (** Wire size before any tunneling. *)
  mutable hops : int;  (** LAN traversals observed (unicast transmissions). *)
  mutable max_bytes : int;  (** Largest wire size seen en route. *)
  mutable delivered_at : Netsim.Time.t option;
  mutable dropped : string option;
}

type t

val create : Net.Topology.t -> t
(** Installs forward/drop taps on every node currently in the topology. *)

val note_send : t -> Ipv4.Packet.t -> unit
(** Call with the application-level packet just before handing it to
    {!Mhrp.Agent.send} (or {!Net.Node.send}). *)

val note_delivery : t -> Ipv4.Packet.t -> unit
(** Call from the destination's app-receive tap. *)

val watch_receiver : t -> Mhrp.Agent.t -> unit
(** Register [note_delivery] as the agent's app tap. *)

val find : t -> key -> record option
val records : t -> record list
(** In send order. *)

val delivered : t -> record list
val dropped : t -> record list

val delivery_ratio : t -> float
val mean_hops : t -> float
(** Over delivered packets. *)

val mean_latency_us : t -> float
val mean_overhead_bytes : t -> float
(** Mean of [max_bytes - sent_bytes] over delivered packets. *)

val record_obs :
  t -> Obs.Registry.t -> exp:string -> ?labels:(string * string) list ->
  unit -> unit
(** Flow-level aggregates (packet/delivery counts, mean hops, latency and
    wire overhead, plus a latency p50/p95/max histogram) recorded into the
    registry under the given experiment id.  Counts, hops and overhead are
    gated exactly; latencies at ±20%. *)

val pp_summary : Format.formatter -> t -> unit
