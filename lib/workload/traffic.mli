(** Traffic generation over the transport layer, wired into {!Metrics}.

    Every flow runs through {!Transport.Socket}: datagrams through
    {!Transport.Socket.Dgram} endpoints (one per source agent, created
    lazily), request/response exchanges through real connected sockets.
    Application code here never constructs raw TCP or UDP wire bytes.

    Allocates unique IP ids so each datagram is individually
    trackable. *)

type t

val create : ?first_id:int -> Metrics.t -> Netsim.Engine.t -> t

val fresh_id : t -> int
(** Next tracked IP id (16-bit, wraps skipping 0).
    @deprecated Only metric-tracked datagram helpers below should need
    ids; new application code should use {!Transport.Socket} directly
    and leave id allocation to the stack. *)

val send_udp : t -> src:Mhrp.Agent.t -> dst:Ipv4.Addr.t -> ?size:int ->
  unit -> unit
(** Send one UDP datagram now ([size] bytes of payload, default 64),
    recording it in the metrics.  Backed by a per-source
    {!Transport.Socket.Dgram} endpoint on port 4000. *)

val at : t -> Netsim.Time.t -> (unit -> unit) -> unit
(** Schedule an action at an absolute time. *)

val cbr :
  t -> src:Mhrp.Agent.t -> dst:Ipv4.Addr.t -> ?size:int ->
  start:Netsim.Time.t -> interval:Netsim.Time.t -> count:int -> unit -> unit
(** Constant-bit-rate flow: [count] datagrams, one per [interval]. *)

val ping :
  t -> src:Mhrp.Agent.t -> dst:Ipv4.Addr.t -> at:Netsim.Time.t -> unit
(** One echo request (the reply is the destination's business).  ICMP
    sits below the transport layer, so this is the one flow not on a
    socket. *)

val request_response :
  t -> client:Mhrp.Agent.t -> server:Mhrp.Agent.t -> ?size:int ->
  start:Netsim.Time.t -> interval:Netsim.Time.t -> count:int -> unit ->
  unit
(** A connected request/response exchange over {!Transport.Socket}: the
    client opens one connection to the server's port 80 at [start] and
    writes a [size]-byte request per [interval]; the server answers each
    complete request with a [size]-byte response.  Mobile servers
    exercise tunneling on requests and plain routing on responses.
    Installs both agents' transport stacks (one such workload per
    client/server pair). *)

val responses_received : t -> int
(** Complete responses the request/response clients got back. *)
