(** Traffic generation over MHRP agents, wired into {!Metrics}.

    Allocates unique IP ids so each packet is individually trackable. *)

type t

val create : ?first_id:int -> Metrics.t -> Netsim.Engine.t -> t
val fresh_id : t -> int

val send_udp : t -> src:Mhrp.Agent.t -> dst:Ipv4.Addr.t -> ?size:int ->
  unit -> unit
(** Send one UDP datagram now ([size] bytes of payload, default 64),
    recording it in the metrics. *)

val at : t -> Netsim.Time.t -> (unit -> unit) -> unit
(** Schedule an action at an absolute time. *)

val cbr :
  t -> src:Mhrp.Agent.t -> dst:Ipv4.Addr.t -> ?size:int ->
  start:Netsim.Time.t -> interval:Netsim.Time.t -> count:int -> unit -> unit
(** Constant-bit-rate flow: [count] datagrams, one per [interval]. *)

val ping :
  t -> src:Mhrp.Agent.t -> dst:Ipv4.Addr.t -> at:Netsim.Time.t -> unit
(** One echo request (the reply is the destination's business). *)

val request_response :
  t -> client:Mhrp.Agent.t -> server:Mhrp.Agent.t -> ?size:int ->
  start:Netsim.Time.t -> interval:Netsim.Time.t -> count:int -> unit ->
  unit
(** A TCP-segment request/response exchange: the client sends [count]
    20-byte-header segments; the server's app tap answers each with a
    response segment.  Both directions are tracked in the metrics, so
    mobile servers exercise tunneling on requests and plain routing on
    responses.  Installs the server's app tap (one such workload per
    server). *)

val responses_received : t -> int
(** Responses the request/response clients got back. *)
