module Topology = Net.Topology
module Lan = Net.Lan
module Node = Net.Node
module Agent = Mhrp.Agent

type figure1 = {
  topo : Topology.t;
  net_a : Lan.t;
  net_b : Lan.t;
  net_c : Lan.t;
  net_d : Lan.t;
  backbone : Lan.t;
  s : Agent.t;
  m : Agent.t;
  r1 : Agent.t;
  r2 : Agent.t;
  r3 : Agent.t;
  r4 : Agent.t;
}

let fa_iface_for agent lan =
  match Node.iface_to (Agent.node agent) (Lan.prefix lan) with
  | Some i -> i
  | None -> failwith "fa_iface_for: agent not attached to LAN"

let figure1 ?(config = Mhrp.Config.default) ?(seed = 42)
    ?(snoop_routers = true) ?icmp_quote () =
  let topo = Topology.create ~seed ?icmp_quote () in
  let backbone = Topology.add_lan topo ~net:0 "backbone" in
  let net_a = Topology.add_lan topo ~net:1 "netA" in
  let net_b = Topology.add_lan topo ~net:2 "netB" in
  let net_c = Topology.add_lan topo ~net:3 "netC" in
  let net_d =
    Topology.add_lan topo ~net:4 ~latency:(Netsim.Time.of_ms 2)
      ~bandwidth_bps:2_000_000 "netD"
  in
  let r1n = Topology.add_router topo "R1" [(backbone, 11); (net_a, 1)] in
  let r2n = Topology.add_router topo "R2" [(backbone, 12); (net_b, 1)] in
  let r3n = Topology.add_router topo "R3" [(backbone, 13); (net_c, 1)] in
  let r4n = Topology.add_router topo "R4" [(net_c, 2); (net_d, 1)] in
  let sn = Topology.add_host topo "S" net_a 10 in
  let mn = Topology.add_host topo "M" net_b 10 in
  Topology.compute_routes topo;
  let r1 = Agent.create ~config ~snoop:snoop_routers r1n in
  let r2 = Agent.create ~config ~snoop:snoop_routers r2n in
  let r3 = Agent.create ~config ~snoop:snoop_routers r3n in
  let r4 = Agent.create ~config ~snoop:snoop_routers r4n in
  let s = Agent.create ~config sn in
  let m = Agent.create ~config mn in
  Agent.enable_home_agent r2;
  Agent.add_mobile r2 (Node.primary_addr mn);
  Agent.enable_foreign_agent r4 ~iface:(fa_iface_for r4 net_d);
  Agent.make_mobile m
    ~home_agent:(Ipv4.Addr.Prefix.host (Lan.prefix net_b) 1);
  { topo; net_a; net_b; net_c; net_d; backbone; s; m; r1; r2; r3; r4 }

type plain = {
  p_topo : Topology.t;
  p_net_a : Lan.t;
  p_net_b : Lan.t;
  p_net_c : Lan.t;
  p_net_d : Lan.t;
  p_backbone : Lan.t;
  p_s : Node.t;
  p_m : Node.t;
  p_r1 : Node.t;
  p_r2 : Node.t;
  p_r3 : Node.t;
  p_r4 : Node.t;
}

let figure1_plain ?(seed = 42) () =
  let topo = Topology.create ~seed () in
  let backbone = Topology.add_lan topo ~net:0 "backbone" in
  let net_a = Topology.add_lan topo ~net:1 "netA" in
  let net_b = Topology.add_lan topo ~net:2 "netB" in
  let net_c = Topology.add_lan topo ~net:3 "netC" in
  let net_d =
    Topology.add_lan topo ~net:4 ~latency:(Netsim.Time.of_ms 2)
      ~bandwidth_bps:2_000_000 "netD"
  in
  let p_r1 = Topology.add_router topo "R1" [(backbone, 11); (net_a, 1)] in
  let p_r2 = Topology.add_router topo "R2" [(backbone, 12); (net_b, 1)] in
  let p_r3 = Topology.add_router topo "R3" [(backbone, 13); (net_c, 1)] in
  let p_r4 = Topology.add_router topo "R4" [(net_c, 2); (net_d, 1)] in
  let p_s = Topology.add_host topo "S" net_a 10 in
  let p_m = Topology.add_host topo "M" net_b 10 in
  Topology.compute_routes topo;
  { p_topo = topo; p_net_a = net_a; p_net_b = net_b; p_net_c = net_c;
    p_net_d = net_d; p_backbone = backbone; p_s; p_m; p_r1; p_r2; p_r3;
    p_r4 }

type campus = {
  c_topo : Topology.t;
  c_backbone : Lan.t;
  c_routers : Agent.t array;
  c_cells : Lan.t array;
  c_homes : Lan.t array;
  c_mobiles : Agent.t array;
  c_senders : Agent.t array;
}

(* The backbone is the one segment whose station count grows with the
   campus count: its /24 tops out around 240 routers.  Large-scale
   experiments pass [backbone_prefix_len] < 24, which moves the backbone
   to the 10.255.0.0 base — clear of the /24 plan used for homes and
   cells — and widens its host field. *)
let add_backbone topo ~prefix_len =
  if prefix_len = 24 then Topology.add_lan topo ~net:0 "backbone"
  else Topology.add_lan topo ~net:0xFF00 ~prefix_len "backbone"

let campuses ?(config = Mhrp.Config.default) ?(seed = 42)
    ?(backbone_prefix_len = 24) ~campuses ~mobiles_per_campus
    ~correspondents () =
  if campuses <= 0 || mobiles_per_campus < 0 || correspondents < 0 then
    invalid_arg "Topo_gen.campuses";
  let topo = Topology.create ~seed () in
  let backbone = add_backbone topo ~prefix_len:backbone_prefix_len in
  let homes =
    Array.init campuses (fun i ->
        Topology.add_lan topo ~net:(1 + (2 * i))
          (Printf.sprintf "home%d" i))
  in
  let cells =
    Array.init campuses (fun i ->
        Topology.add_lan topo ~net:(2 + (2 * i))
          ~latency:(Netsim.Time.of_ms 2)
          (Printf.sprintf "cell%d" i))
  in
  let router_nodes =
    Array.init campuses (fun i ->
        Topology.add_router topo
          (Printf.sprintf "R%d" i)
          [(backbone, 10 + i); (homes.(i), 1); (cells.(i), 1)])
  in
  let mobile_nodes =
    Array.init (campuses * mobiles_per_campus) (fun k ->
        let c = k / mobiles_per_campus and j = k mod mobiles_per_campus in
        Topology.add_host topo
          (Printf.sprintf "M%d_%d" c j)
          homes.(c) (10 + j))
  in
  let sender_nodes =
    Array.init correspondents (fun k ->
        let c = k mod campuses in
        Topology.add_host topo (Printf.sprintf "S%d" k) homes.(c)
          (100 + (k / campuses)))
  in
  Topology.compute_routes topo;
  let routers =
    Array.mapi
      (fun i n ->
         let a = Agent.create ~config ~snoop:true n in
         Agent.enable_home_agent a;
         Agent.enable_foreign_agent a ~iface:(fa_iface_for a cells.(i));
         a)
      router_nodes
  in
  Array.iteri
    (fun k mn ->
       let c = k / mobiles_per_campus in
       ignore c;
       Agent.add_mobile routers.(k / mobiles_per_campus)
         (Node.primary_addr mn))
    mobile_nodes;
  let mobiles =
    Array.mapi
      (fun k mn ->
         let c = k / mobiles_per_campus in
         let a = Agent.create ~config mn in
         Agent.make_mobile a
           ~home_agent:(Ipv4.Addr.Prefix.host (Lan.prefix homes.(c)) 1);
         a)
      mobile_nodes
  in
  let senders =
    Array.map (fun n -> Agent.create ~config n) sender_nodes
  in
  { c_topo = topo; c_backbone = backbone; c_routers = routers;
    c_cells = cells; c_homes = homes; c_mobiles = mobiles;
    c_senders = senders }

type campus_plain = {
  cp_topo : Topology.t;
  cp_backbone : Lan.t;
  cp_routers : Node.t array;
  cp_cells : Lan.t array;
  cp_homes : Lan.t array;
  cp_mobiles : Node.t array;
  cp_senders : Node.t array;
}

let campuses_plain ?(seed = 42) ?(backbone_prefix_len = 24)
    ?(compute_routes = true) ~campuses ~mobiles_per_campus ~correspondents
    () =
  if campuses <= 0 || mobiles_per_campus < 0 || correspondents < 0 then
    invalid_arg "Topo_gen.campuses_plain";
  let topo = Topology.create ~seed () in
  let backbone = add_backbone topo ~prefix_len:backbone_prefix_len in
  let homes =
    Array.init campuses (fun i ->
        Topology.add_lan topo ~net:(1 + (2 * i))
          (Printf.sprintf "home%d" i))
  in
  let cells =
    Array.init campuses (fun i ->
        Topology.add_lan topo ~net:(2 + (2 * i))
          ~latency:(Netsim.Time.of_ms 2)
          (Printf.sprintf "cell%d" i))
  in
  let routers =
    Array.init campuses (fun i ->
        Topology.add_router topo
          (Printf.sprintf "R%d" i)
          [(backbone, 10 + i); (homes.(i), 1); (cells.(i), 1)])
  in
  let mobiles =
    Array.init (campuses * mobiles_per_campus) (fun k ->
        let c = k / mobiles_per_campus and j = k mod mobiles_per_campus in
        Topology.add_host topo
          (Printf.sprintf "M%d_%d" c j)
          homes.(c) (10 + j))
  in
  let senders =
    Array.init correspondents (fun k ->
        let c = k mod campuses in
        Topology.add_host topo (Printf.sprintf "S%d" k) homes.(c)
          (100 + (k / campuses)))
  in
  if compute_routes then Topology.compute_routes topo;
  { cp_topo = topo; cp_backbone = backbone; cp_routers = routers;
    cp_cells = cells; cp_homes = homes; cp_mobiles = mobiles;
    cp_senders = senders }

type region = {
  rg_topo : Topology.t;
  rg_backbone : Lan.t;
  rg_regionals : Agent.t array;
  rg_backups : Agent.t array;
  rg_fas : Agent.t array array;
  rg_cells : Lan.t array array;
  rg_homes : Lan.t array;
  rg_mobiles : Agent.t array;
  rg_senders : Agent.t array;
}

(* Two-level hierarchy for E19: each region is one regional router (home
   agent for the region's own mobiles, regional agent for its visitors)
   behind which [cells] wireless cells hang, each with its own
   foreign-agent router.  The regional routers meet on the backbone.
   Foreign agents are provisioned with their regional parent whether or
   not [config] enables hierarchy — the connect ack only advertises it
   when [Config.hierarchy] is set, so the same wiring serves both
   modes. *)
let regions ?(config = Mhrp.Config.default) ?(seed = 42) ?(backups = false)
    ~regions ~cells ~mobiles_per_region ~correspondents () =
  if regions <= 0 || cells <= 0 || mobiles_per_region < 0
     || correspondents < 0
  then invalid_arg "Topo_gen.regions";
  let topo = Topology.create ~seed () in
  let backbone = Topology.add_lan topo ~net:0 "backbone" in
  let span = cells + 2 in
  let homes =
    Array.init regions (fun r ->
        Topology.add_lan topo ~net:(1 + (r * span))
          (Printf.sprintf "home%d" r))
  in
  let rnets =
    Array.init regions (fun r ->
        Topology.add_lan topo ~net:(2 + (r * span))
          (Printf.sprintf "rnet%d" r))
  in
  let cell_lans =
    Array.init regions (fun r ->
        Array.init cells (fun c ->
            Topology.add_lan topo
              ~net:(3 + (r * span) + c)
              ~latency:(Netsim.Time.of_ms 2)
              (Printf.sprintf "cell%d_%d" r c)))
  in
  let regional_nodes =
    Array.init regions (fun r ->
        Topology.add_router topo
          (Printf.sprintf "RR%d" r)
          [(backbone, 10 + r); (rnets.(r), 1); (homes.(r), 1)])
  in
  let backup_nodes =
    if not backups then [||]
    else
      Array.init regions (fun r ->
          Topology.add_router topo
            (Printf.sprintf "RB%d" r)
            [(backbone, 100 + r); (rnets.(r), 2)])
  in
  let fa_nodes =
    Array.init regions (fun r ->
        Array.init cells (fun c ->
            Topology.add_router topo
              (Printf.sprintf "F%d_%d" r c)
              [(rnets.(r), 10 + c); (cell_lans.(r).(c), 1)]))
  in
  let mobile_nodes =
    Array.init (regions * mobiles_per_region) (fun k ->
        let r = k / mobiles_per_region and j = k mod mobiles_per_region in
        Topology.add_host topo
          (Printf.sprintf "M%d_%d" r j)
          homes.(r) (10 + j))
  in
  let sender_nodes =
    Array.init correspondents (fun k ->
        let r = k mod regions in
        Topology.add_host topo (Printf.sprintf "S%d" k) homes.(r)
          (200 + (k / regions)))
  in
  Topology.compute_routes topo;
  let backup_agents =
    Array.map
      (fun n ->
         let a = Agent.create ~config ~snoop:true n in
         a)
      backup_nodes
  in
  let regionals =
    Array.mapi
      (fun r n ->
         let a = Agent.create ~config ~snoop:true n in
         Agent.enable_home_agent a;
         (if backups then
            Agent.enable_regional_agent
              ~backup:(Agent.address backup_agents.(r)) a
          else Agent.enable_regional_agent a);
         a)
      regional_nodes
  in
  (* The standby mirrors back to the primary, so a recovered primary
     learns bindings written during the takeover. *)
  Array.iteri
    (fun r a ->
       Agent.enable_regional_agent
         ~backup:(Agent.address regionals.(r)) a)
    backup_agents;
  let fas =
    Array.mapi
      (fun r row ->
         Array.mapi
           (fun c n ->
              let a = Agent.create ~config ~snoop:true n in
              Agent.enable_foreign_agent a
                ~iface:(fa_iface_for a cell_lans.(r).(c));
              (if backups then
                 Agent.set_regional_parent
                   ~backup:(Agent.address backup_agents.(r))
                   a (Agent.address regionals.(r))
               else
                 Agent.set_regional_parent a (Agent.address regionals.(r)));
              a)
           row)
      fa_nodes
  in
  Array.iteri
    (fun k mn ->
       Agent.add_mobile regionals.(k / mobiles_per_region)
         (Node.primary_addr mn))
    mobile_nodes;
  let mobiles =
    Array.mapi
      (fun k mn ->
         let r = k / mobiles_per_region in
         let a = Agent.create ~config mn in
         Agent.make_mobile a
           ~home_agent:(Ipv4.Addr.Prefix.host (Lan.prefix homes.(r)) 1);
         a)
      mobile_nodes
  in
  let senders =
    Array.map (fun n -> Agent.create ~config n) sender_nodes
  in
  { rg_topo = topo; rg_backbone = backbone; rg_regionals = regionals;
    rg_backups = backup_agents; rg_fas = fas; rg_cells = cell_lans;
    rg_homes = homes; rg_mobiles = mobiles; rg_senders = senders }

type chain = {
  ch_topo : Topology.t;
  ch_routers : Agent.t array;
  ch_stubs : Lan.t array;
  ch_links : Lan.t array;
}

let chain ?(config = Mhrp.Config.default) ?(seed = 42) ~n () =
  if n < 2 then invalid_arg "Topo_gen.chain: need at least two routers";
  let topo = Topology.create ~seed () in
  let stubs =
    Array.init n (fun i ->
        Topology.add_lan topo ~net:(10 + i) (Printf.sprintf "stub%d" i))
  in
  let links =
    Array.init (n - 1) (fun i ->
        Topology.add_lan topo ~net:(100 + i) (Printf.sprintf "link%d" i))
  in
  let nodes =
    Array.init n (fun i ->
        let attach = [(stubs.(i), 1)] in
        let attach =
          if i > 0 then (links.(i - 1), 2) :: attach else attach
        in
        let attach = if i < n - 1 then (links.(i), 1) :: attach else attach
        in
        Topology.add_router topo (Printf.sprintf "C%d" i) attach)
  in
  Topology.compute_routes topo;
  let routers =
    Array.map (fun node -> Agent.create ~config ~snoop:true node) nodes
  in
  { ch_topo = topo; ch_routers = routers; ch_stubs = stubs;
    ch_links = links }
