module Time = Netsim.Time
module Engine = Netsim.Engine
module Socket = Transport.Socket
module Stack = Transport.Stack

let at engine time f = ignore (Engine.schedule engine ~at:time f)
let now_us engine = Time.to_us (Engine.now engine)

(* Cut a byte stream into fixed-size messages: calls [f] with each
   complete [size]-byte message as the stream accumulates. *)
let framer size f =
  let buf = Buffer.create (2 * size) in
  let off = ref 0 in
  fun data ->
    Buffer.add_bytes buf data;
    while Buffer.length buf - !off >= size do
      f (Bytes.of_string (Buffer.sub buf !off size));
      off := !off + size
    done;
    if !off = Buffer.length buf then begin
      Buffer.clear buf;
      off := 0
    end

module Rpc = struct
  type client = {
    engine : Engine.t;
    resp_bytes : int;
    expected : int;
    mutable sock : Socket.t option;
    sent_at : Time.t Queue.t;
    mutable responses : int;
    mutable lat_us : float list;  (* reverse completion order *)
  }

  let serve stack ~port ~req_bytes ~resp_bytes =
    ignore
      (Socket.listen stack ~port (fun sock ->
           Socket.recv_cb sock
             (framer req_bytes (fun _req ->
                  Socket.send sock (Bytes.create resp_bytes)))))

  let start ~client ~server ?(port = 80) ?(req_bytes = 64)
      ?(resp_bytes = 256) ?rto ~start ~interval ~count () =
    let engine = Stack.engine client in
    let t =
      { engine;
        resp_bytes;
        expected = count;
        sock = None;
        sent_at = Queue.create ();
        responses = 0;
        lat_us = [] }
    in
    at engine start (fun () ->
        let sock =
          Socket.connect client ?rto ~dst:server ~dst_port:port ()
        in
        t.sock <- Some sock;
        Socket.recv_cb sock
          (framer resp_bytes (fun _resp ->
               t.responses <- t.responses + 1;
               match Queue.take_opt t.sent_at with
               | Some sent ->
                 t.lat_us <-
                   float_of_int (now_us engine - Time.to_us sent)
                   :: t.lat_us
               | None -> ()));
        for k = 0 to count - 1 do
          let time =
            Time.add start (Time.of_us (k * Time.to_us interval))
          in
          at engine time (fun () ->
              if not (Socket.is_closed sock) then begin
                (* latency clock starts at the intended send time, so
                   hand-off stalls in the send path count too *)
                Queue.add (Engine.now engine) t.sent_at;
                Socket.send sock (Bytes.create req_bytes)
              end)
        done);
    t

  let responses t = t.responses
  let expected t = t.expected
  let latencies_us t = List.rev t.lat_us
  let socket t = t.sock
end

module Chat = struct
  type room = {
    r_msg_bytes : int;
    mutable members : Socket.t list;  (* reverse join order *)
    mutable relayed : int;
  }

  let room stack ~port ~msg_bytes =
    let r = { r_msg_bytes = msg_bytes; members = []; relayed = 0 } in
    ignore
      (Socket.listen stack ~port (fun sock ->
           r.members <- sock :: r.members;
           Socket.recv_cb sock
             (framer msg_bytes (fun msg ->
                  List.iter
                    (fun peer ->
                      if peer != sock && not (Socket.is_closed peer) then begin
                        r.relayed <- r.relayed + 1;
                        Socket.send peer msg
                      end)
                    r.members))));
    r

  let relayed r = r.relayed
  let members r = List.length r.members

  type member = {
    engine : Engine.t;
    msg_bytes : int;
    mutable sock : Socket.t option;
    mutable sent : int;
    mutable received : int;
    mutable lat_us : float list;
  }

  let join stack ~server ~port ~msg_bytes ~at:t0 () =
    let engine = Stack.engine stack in
    let m =
      { engine; msg_bytes; sock = None; sent = 0; received = 0; lat_us = [] }
    in
    at engine t0 (fun () ->
        let sock = Socket.connect stack ~dst:server ~dst_port:port () in
        m.sock <- Some sock;
        Socket.recv_cb sock
          (framer msg_bytes (fun msg ->
               m.received <- m.received + 1;
               let sent_us = Int64.to_int (Bytes.get_int64_be msg 0) in
               m.lat_us <-
                 float_of_int (now_us engine - sent_us) :: m.lat_us)));
    m

  (* Messages carry their send time in the first 8 bytes, so every
     receiving member can compute a full client-to-client latency. *)
  let say m ~at:t0 =
    if m.msg_bytes < 8 then invalid_arg "Chat.say: msg_bytes < 8";
    at m.engine t0 (fun () ->
        match m.sock with
        | Some sock when not (Socket.is_closed sock) ->
          let msg = Bytes.make m.msg_bytes '\000' in
          Bytes.set_int64_be msg 0 (Int64.of_int (now_us m.engine));
          m.sent <- m.sent + 1;
          Socket.send sock msg
        | _ -> ())

  let sent m = m.sent
  let received m = m.received
  let latencies_us m = List.rev m.lat_us
end

module Bulk = struct
  let pattern bytes = Bytes.init bytes (fun i -> Char.chr (i land 0xFF))

  let serve stack ~port ~bytes =
    ignore
      (Socket.listen stack ~port (fun sock ->
           Socket.send sock (pattern bytes);
           Socket.close sock))

  type fetch = {
    engine : Engine.t;
    total : int;
    mutable started_at : Time.t;
    mutable last_byte_at : Time.t;
    mutable max_gap_us : int;
    mutable received : int;
    mutable intact : bool;
    mutable completed_at : Time.t option;
    mutable sock : Socket.t option;
  }

  let fetch stack ~server ?(port = 8080) ~bytes ~at:t0 () =
    let engine = Stack.engine stack in
    let t =
      { engine;
        total = bytes;
        started_at = t0;
        last_byte_at = t0;
        max_gap_us = 0;
        received = 0;
        intact = true;
        completed_at = None;
        sock = None }
    in
    at engine t0 (fun () ->
        let sock = Socket.connect stack ~dst:server ~dst_port:port () in
        t.sock <- Some sock;
        Socket.on_peer_close sock (fun () -> Socket.close sock);
        Socket.recv_cb sock (fun data ->
            let now = Engine.now engine in
            (* a transfer's longest silence = its hand-off stall *)
            let gap = Time.to_us now - Time.to_us t.last_byte_at in
            if gap > t.max_gap_us then t.max_gap_us <- gap;
            t.last_byte_at <- now;
            for i = 0 to Bytes.length data - 1 do
              if Bytes.get data i <> Char.chr ((t.received + i) land 0xFF)
              then t.intact <- false
            done;
            t.received <- t.received + Bytes.length data;
            if t.received = t.total && t.completed_at = None then
              t.completed_at <- Some now));
    t

  let complete t = t.completed_at <> None
  let intact t = t.intact && t.received = t.total

  let completion_us t =
    match t.completed_at with
    | Some c -> Some (Time.to_us c - Time.to_us t.started_at)
    | None -> None

  let max_stall_us t = t.max_gap_us
  let received t = t.received

  let goodput_kbps t =
    match completion_us t with
    | Some us when us > 0 ->
      Some (float_of_int (8 * t.total) /. (float_of_int us /. 1000.))
    | _ -> None

  let socket t = t.sock
end
