(** A reliable sliding-window transfer over {!Ipv4.Tcp_lite} segments.

    The paper's user-visible claim is transparency: "no changes are
    required in mobile hosts above the IP level" and connections survive
    movement because a mobile host "always uses only its home address".
    This module is the demonstration workload: a window + retransmission
    transport running unmodified over {!Mhrp.Agent.send}, whose transfers
    complete across any number of hand-offs — packets lost in a hand-off
    window are simply retransmitted to the same (home) address.

    One transfer per (sender, receiver) pair at a time: it owns both
    agents' app taps while running. *)

type t

type stats = {
  chunks : int;  (** Data segments the transfer needed. *)
  sent : int;  (** Data segments actually transmitted. *)
  retransmissions : int;
  acks : int;
  completed_at : Netsim.Time.t option;
}

val start :
  ?chunk:int -> ?window:int -> ?rto:Netsim.Time.t ->
  sender:Mhrp.Agent.t -> receiver:Mhrp.Agent.t -> bytes:int ->
  at:Netsim.Time.t -> unit -> t
(** Begin transferring [bytes] of data at time [at].  Defaults: 512-byte
    chunks, window of 8 segments, 300 ms retransmission timeout. *)

val stats : t -> stats
val complete : t -> bool
val received_ok : t -> bool
(** All bytes arrived intact and in order at the receiver. *)
