(** A reliable byte-stream transfer over {!Transport.Socket}.

    The paper's user-visible claim is transparency: "no changes are
    required in mobile hosts above the IP level" and connections survive
    movement because a mobile host "always uses only its home address".
    This module is the demonstration workload: one connected socket
    carrying a sized transfer, whose delivery completes across any
    number of hand-offs — segments lost in a hand-off window are simply
    retransmitted to the same (home) address by the socket's RTO timer.

    One transfer per (sender, receiver) pair at a time: it owns both
    agents' transport stacks (and therefore their app taps) while
    running. *)

type t

type stats = {
  chunks : int;  (** Data segments a loss-free transfer needs. *)
  sent : int;  (** Data segments actually transmitted. *)
  retransmissions : int;
  acks : int;  (** Pure acknowledgment segments the sender received. *)
  completed_at : Netsim.Time.t option;
}

val start :
  ?chunk:int -> ?window:int -> ?rto:Netsim.Time.t ->
  sender:Mhrp.Agent.t -> receiver:Mhrp.Agent.t -> bytes:int ->
  at:Netsim.Time.t -> unit -> t
(** Begin transferring [bytes] of data at time [at]: the sender connects
    to the receiver's port 5002, writes the whole payload, and the
    socket's sliding window does the rest.  [chunk] becomes the
    connection's MSS and [window] its in-flight cap (in segments).
    Defaults: 512-byte chunks, window of 8 segments, 300 ms initial
    retransmission timeout. *)

val stats : t -> stats
val complete : t -> bool

val received_ok : t -> bool
(** All bytes arrived intact and in order at the receiver. *)
