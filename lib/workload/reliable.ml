module Time = Netsim.Time
module Engine = Netsim.Engine
module Packet = Ipv4.Packet
module Tcp = Ipv4.Tcp_lite

type stats = {
  chunks : int;
  sent : int;
  retransmissions : int;
  acks : int;
  completed_at : Time.t option;
}

type t = {
  engine : Engine.t;
  sender : Mhrp.Agent.t;
  receiver : Mhrp.Agent.t;
  chunk : int;
  window : int;
  rto : Time.t;
  total_chunks : int;
  data : bytes;
  (* sender state *)
  mutable base : int;  (* first unacked chunk *)
  mutable next : int;  (* next chunk to send *)
  mutable sent : int;
  mutable retransmissions : int;
  mutable acks : int;
  mutable completed_at : Time.t option;
  mutable timer_armed : bool;
  (* receiver state *)
  received : (int, bytes) Hashtbl.t;
  mutable delivered_prefix : int;  (* chunks received in order *)
  (* IP identification counters, one per direction.  Reassembly keys
     fragments by (src, id, proto): deriving the ID from the chunk (or
     ack) number gave two distinct in-flight transmissions the same ID
     whenever they shared a chunk number mod 0xFFFE — notably every
     go-back-N retransmission — so their fragments could mis-reassemble.
     Every transmission (retransmissions included) gets a fresh ID. *)
  mutable sender_ip_id : int;
  mutable receiver_ip_id : int;
}

let seq_of_chunk t k = k * t.chunk

(* 16-bit wraparound, skipping 0 (the "no fragmentation context" ID). *)
let next_ip_id cur = if cur >= 0xFFFF then 1 else cur + 1

let chunk_data t k =
  let off = k * t.chunk in
  Bytes.sub t.data off (min t.chunk (Bytes.length t.data - off))

let send_segment t k ~retransmit =
  t.sent <- t.sent + 1;
  if retransmit then t.retransmissions <- t.retransmissions + 1;
  let seg =
    Tcp.make ~seq:(seq_of_chunk t k) ~ack:0 ~flags:[Tcp.Psh] ~src_port:5001
      ~dst_port:5002 (chunk_data t k)
  in
  t.sender_ip_id <- next_ip_id t.sender_ip_id;
  Mhrp.Agent.send t.sender
    (Packet.make
       ~id:t.sender_ip_id
       ~proto:Ipv4.Proto.tcp
       ~src:(Mhrp.Agent.address t.sender)
       ~dst:(Mhrp.Agent.address t.receiver)
       (Tcp.encode seg))

let rec fill_window t =
  while t.next < t.total_chunks && t.next < t.base + t.window do
    send_segment t t.next ~retransmit:false;
    t.next <- t.next + 1
  done;
  arm_timer t

and arm_timer t =
  if (not t.timer_armed) && t.base < t.total_chunks then begin
    t.timer_armed <- true;
    let base_at_arm = t.base in
    ignore
      (Engine.schedule_after t.engine ~delay:t.rto (fun () ->
           t.timer_armed <- false;
           if t.completed_at = None then
             if t.base = base_at_arm then begin
               (* nothing acked within the RTO: go-back-N *)
               let stop = min t.next (t.base + t.window) in
               for k = t.base to stop - 1 do
                 send_segment t k ~retransmit:true
               done;
               arm_timer t
             end
             else arm_timer t))
  end

let sender_handle_ack t (seg : Tcp.t) =
  t.acks <- t.acks + 1;
  let acked_chunks = seg.Tcp.ack / t.chunk in
  if acked_chunks > t.base then begin
    t.base <- acked_chunks;
    if t.base >= t.total_chunks then
      t.completed_at <- Some (Engine.now t.engine)
    else fill_window t
  end

let receiver_handle_data t (seg : Tcp.t) =
  let k = seg.Tcp.seq / t.chunk in
  if k < t.total_chunks && not (Hashtbl.mem t.received k) then
    Hashtbl.replace t.received k seg.Tcp.data;
  while Hashtbl.mem t.received t.delivered_prefix do
    t.delivered_prefix <- t.delivered_prefix + 1
  done;
  (* cumulative ack *)
  let ack = t.delivered_prefix * t.chunk in
  let reply =
    Tcp.make ~seq:0 ~ack ~flags:[Tcp.Ack] ~src_port:5002 ~dst_port:5001
      Bytes.empty
  in
  t.receiver_ip_id <- next_ip_id t.receiver_ip_id;
  Mhrp.Agent.send t.receiver
    (Packet.make
       ~id:t.receiver_ip_id
       ~proto:Ipv4.Proto.tcp
       ~src:(Mhrp.Agent.address t.receiver)
       ~dst:(Mhrp.Agent.address t.sender)
       (Tcp.encode reply))

let start ?(chunk = 512) ?(window = 8) ?(rto = Time.of_ms 300) ~sender
    ~receiver ~bytes ~at () =
  if chunk <= 0 || window <= 0 || bytes <= 0 then
    invalid_arg "Reliable.start";
  let engine = Net.Node.engine (Mhrp.Agent.node sender) in
  let data = Bytes.init bytes (fun i -> Char.chr (i land 0xFF)) in
  let t =
    { engine; sender; receiver; chunk; window; rto;
      total_chunks = (bytes + chunk - 1) / chunk;
      data;
      base = 0; next = 0; sent = 0; retransmissions = 0; acks = 0;
      completed_at = None; timer_armed = false;
      received = Hashtbl.create 64; delivered_prefix = 0;
      sender_ip_id = 0; receiver_ip_id = 0 }
  in
  Mhrp.Agent.on_app_receive receiver (fun pkt ->
      if pkt.Packet.proto = Ipv4.Proto.tcp then
        match Tcp.decode pkt.Packet.payload with
        | seg when Tcp.has_flag seg Tcp.Psh -> receiver_handle_data t seg
        | _ -> ()
        | exception Invalid_argument _ -> ());
  Mhrp.Agent.on_app_receive sender (fun pkt ->
      if pkt.Packet.proto = Ipv4.Proto.tcp then
        match Tcp.decode pkt.Packet.payload with
        | seg when Tcp.has_flag seg Tcp.Ack -> sender_handle_ack t seg
        | _ -> ()
        | exception Invalid_argument _ -> ());
  ignore (Engine.schedule engine ~at (fun () -> fill_window t));
  t

let stats t =
  { chunks = t.total_chunks; sent = t.sent;
    retransmissions = t.retransmissions; acks = t.acks;
    completed_at = t.completed_at }

let complete t = t.completed_at <> None

let received_ok t =
  t.delivered_prefix = t.total_chunks
  && (let ok = ref true in
      for k = 0 to t.total_chunks - 1 do
        match Hashtbl.find_opt t.received k with
        | Some data -> if not (Bytes.equal data (chunk_data t k)) then ok := false
        | None -> ok := false
      done;
      !ok)
