module Time = Netsim.Time
module Engine = Netsim.Engine
module Socket = Transport.Socket
module Stack = Transport.Stack

type stats = {
  chunks : int;
  sent : int;
  retransmissions : int;
  acks : int;
  completed_at : Time.t option;
}

type t = {
  engine : Engine.t;
  chunk : int;
  total_chunks : int;
  bytes : int;
  data : bytes;
  recvbuf : Buffer.t;
  mutable sock : Socket.t option;
  mutable completed_at : Time.t option;
}

(* The transfer must ride out arbitrarily long hand-off and failure
   blackouts, like the raw go-back-N loop it replaces: in practice the
   backoff cap bounds the retry interval, so a huge retry budget means
   "never give up within a simulation". *)
let retry_budget = 1_000

let start ?(chunk = 512) ?(window = 8) ?(rto = Time.of_ms 300) ~sender
    ~receiver ~bytes ~at () =
  if chunk <= 0 || window <= 0 || bytes <= 0 then invalid_arg "Reliable.start";
  let engine = Net.Node.engine (Mhrp.Agent.node sender) in
  let data = Bytes.init bytes (fun i -> Char.chr (i land 0xFF)) in
  let t =
    { engine;
      chunk;
      total_chunks = (bytes + chunk - 1) / chunk;
      bytes;
      data;
      recvbuf = Buffer.create bytes;
      sock = None;
      completed_at = None }
  in
  let receiver_stack = Stack.create receiver in
  ignore
    (Socket.listen receiver_stack ~port:5002 ~mss:chunk
       ~window:(window * chunk) ~rto ~max_retries:retry_budget (fun sock ->
         Socket.recv_cb sock (fun b -> Buffer.add_bytes t.recvbuf b)));
  let sender_stack = Stack.create sender in
  ignore
    (Engine.schedule engine ~at (fun () ->
         let sock =
           Socket.connect sender_stack ~src_port:5001 ~mss:chunk
             ~window:(window * chunk) ~rto ~max_retries:retry_budget
             ~dst:(Mhrp.Agent.address receiver) ~dst_port:5002 ()
         in
         t.sock <- Some sock;
         Socket.on_drained sock (fun () ->
             t.completed_at <- Some (Engine.now engine));
         Socket.send sock data));
  t

let stats t =
  match t.sock with
  | None ->
    { chunks = t.total_chunks; sent = 0; retransmissions = 0; acks = 0;
      completed_at = None }
  | Some sock ->
    let c = Socket.counters sock in
    { chunks = t.total_chunks;
      sent = c.Transport.Counters.data_segs_sent;
      retransmissions = c.Transport.Counters.retransmissions;
      acks = c.Transport.Counters.acks_received;
      completed_at = t.completed_at }

let complete t = t.completed_at <> None

let received_ok t =
  Buffer.length t.recvbuf = t.bytes
  && Bytes.equal (Buffer.to_bytes t.recvbuf) t.data
