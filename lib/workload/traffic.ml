type t = {
  metrics : Metrics.t;
  engine : Netsim.Engine.t;
  mutable next_id : int;
  mutable responses : int;
}

let create ?(first_id = 1) metrics engine =
  { metrics; engine; next_id = first_id; responses = 0 }

let fresh_id t =
  let id = t.next_id in
  (* IP ids are 16-bit; wrap but skip 0 (untracked default). *)
  t.next_id <- (if id >= 0xFFFF then 1 else id + 1);
  id

let send_udp t ~src ~dst ?(size = 64) () =
  let id = fresh_id t in
  let udp =
    Ipv4.Udp.make ~src_port:4000 ~dst_port:4000 (Bytes.create size)
  in
  let pkt =
    Ipv4.Packet.make ~id ~proto:Ipv4.Proto.udp
      ~src:(Mhrp.Agent.address src) ~dst (Ipv4.Udp.encode udp)
  in
  Metrics.note_send t.metrics pkt;
  Mhrp.Agent.send src pkt

let at t time f = ignore (Netsim.Engine.schedule t.engine ~at:time f)

let cbr t ~src ~dst ?size ~start ~interval ~count () =
  for k = 0 to count - 1 do
    let time =
      Netsim.Time.add start
        (Netsim.Time.of_us (k * Netsim.Time.to_us interval))
    in
    at t time (fun () -> send_udp t ~src ~dst ?size ())
  done

let request_response t ~client ~server ?(size = 32) ~start ~interval
    ~count () =
  let server_addr = Mhrp.Agent.address server in
  let client_addr = Mhrp.Agent.address client in
  (* the server answers request segments with response segments *)
  Mhrp.Agent.on_app_receive server (fun pkt ->
      if pkt.Ipv4.Packet.proto = Ipv4.Proto.tcp then
        match Ipv4.Tcp_lite.decode pkt.Ipv4.Packet.payload with
        | exception Invalid_argument _ -> ()
        | seg ->
          Metrics.note_delivery t.metrics pkt;
          let reply =
            Ipv4.Tcp_lite.make ~seq:seg.Ipv4.Tcp_lite.ack
              ~ack:(seg.Ipv4.Tcp_lite.seq + Bytes.length seg.Ipv4.Tcp_lite.data)
              ~flags:[Ipv4.Tcp_lite.Ack]
              ~src_port:seg.Ipv4.Tcp_lite.dst_port
              ~dst_port:seg.Ipv4.Tcp_lite.src_port (Bytes.create size)
          in
          let id = fresh_id t in
          let out =
            Ipv4.Packet.make ~id ~proto:Ipv4.Proto.tcp ~src:server_addr
              ~dst:pkt.Ipv4.Packet.src (Ipv4.Tcp_lite.encode reply)
          in
          Metrics.note_send t.metrics out;
          Mhrp.Agent.send server out);
  Mhrp.Agent.on_app_receive client (fun pkt ->
      if pkt.Ipv4.Packet.proto = Ipv4.Proto.tcp then begin
        Metrics.note_delivery t.metrics pkt;
        t.responses <- t.responses + 1
      end);
  for k = 0 to count - 1 do
    let time =
      Netsim.Time.add start
        (Netsim.Time.of_us (k * Netsim.Time.to_us interval))
    in
    at t time (fun () ->
        let seg =
          Ipv4.Tcp_lite.make ~seq:(k * size) ~ack:0
            ~flags:[Ipv4.Tcp_lite.Psh] ~src_port:5001 ~dst_port:80
            (Bytes.create size)
        in
        let id = fresh_id t in
        let pkt =
          Ipv4.Packet.make ~id ~proto:Ipv4.Proto.tcp ~src:client_addr
            ~dst:server_addr (Ipv4.Tcp_lite.encode seg)
        in
        Metrics.note_send t.metrics pkt;
        Mhrp.Agent.send client pkt)
  done

let responses_received t = t.responses

let ping t ~src ~dst ~at:time =
  at t time (fun () ->
      let id = fresh_id t in
      let msg =
        Ipv4.Icmp.Echo_request { ident = id; seq = 0; data = Bytes.create 16 }
      in
      let pkt =
        Ipv4.Packet.make ~id ~proto:Ipv4.Proto.icmp
          ~src:(Mhrp.Agent.address src) ~dst (Ipv4.Icmp.encode msg)
      in
      Metrics.note_send t.metrics pkt;
      Mhrp.Agent.send src pkt)
