type t = {
  metrics : Metrics.t;
  engine : Netsim.Engine.t;
  mutable next_id : int;
  mutable responses : int;
  stacks : (int, Transport.Stack.t) Hashtbl.t;
  dgrams : (int, Transport.Socket.Dgram.t) Hashtbl.t;
}

let create ?(first_id = 1) metrics engine =
  { metrics;
    engine;
    next_id = first_id;
    responses = 0;
    stacks = Hashtbl.create 8;
    dgrams = Hashtbl.create 8 }

let fresh_id t =
  let id = t.next_id in
  (* IP ids are 16-bit; wrap but skip 0 (untracked default). *)
  t.next_id <- (if id >= 0xFFFF then 1 else id + 1);
  id

(* One transport stack per distinct source agent, created on first use.
   Datagram sources never claim the agent's receive tap, so
   [Metrics.watch_receiver] on the same simulation keeps seeing
   deliveries. *)
let stack_for t agent =
  let key = Ipv4.Addr.to_key (Mhrp.Agent.address agent) in
  match Hashtbl.find_opt t.stacks key with
  | Some s -> s
  | None ->
    let s = Transport.Stack.create agent in
    Hashtbl.replace t.stacks key s;
    s

let dgram_for t agent =
  let key = Ipv4.Addr.to_key (Mhrp.Agent.address agent) in
  match Hashtbl.find_opt t.dgrams key with
  | Some d -> d
  | None ->
    let d =
      Transport.Socket.Dgram.create
        ~tap:(Metrics.note_send t.metrics)
        (stack_for t agent) ~port:4000
    in
    Hashtbl.replace t.dgrams key d;
    d

let send_udp t ~src ~dst ?(size = 64) () =
  let id = fresh_id t in
  Transport.Socket.Dgram.sendto (dgram_for t src) ~id ~dst ~dst_port:4000
    (Bytes.create size)

let at t time f = ignore (Netsim.Engine.schedule t.engine ~at:time f)

let cbr t ~src ~dst ?size ~start ~interval ~count () =
  for k = 0 to count - 1 do
    let time =
      Netsim.Time.add start
        (Netsim.Time.of_us (k * Netsim.Time.to_us interval))
    in
    at t time (fun () -> send_udp t ~src ~dst ?size ())
  done

let request_response t ~client ~server ?(size = 32) ~start ~interval
    ~count () =
  let server_stack = stack_for t server in
  (* the server echoes a [size]-byte response per complete request *)
  ignore
    (Transport.Socket.listen server_stack ~port:80 (fun sock ->
         let pending = ref 0 in
         Transport.Socket.recv_cb sock (fun data ->
             pending := !pending + Bytes.length data;
             while !pending >= size do
               pending := !pending - size;
               Transport.Socket.send sock (Bytes.create size)
             done)));
  at t start (fun () ->
      let sock =
        Transport.Socket.connect (stack_for t client) ~src_port:5001
          ~dst:(Mhrp.Agent.address server) ~dst_port:80 ()
      in
      let got = ref 0 in
      Transport.Socket.recv_cb sock (fun data ->
          got := !got + Bytes.length data;
          while !got >= size do
            got := !got - size;
            t.responses <- t.responses + 1
          done);
      Transport.Socket.send sock (Bytes.create size);
      for k = 1 to count - 1 do
        let time =
          Netsim.Time.add start
            (Netsim.Time.of_us (k * Netsim.Time.to_us interval))
        in
        at t time (fun () ->
            if not (Transport.Socket.is_closed sock) then
              Transport.Socket.send sock (Bytes.create size))
      done)

let responses_received t = t.responses

let ping t ~src ~dst ~at:time =
  at t time (fun () ->
      let id = fresh_id t in
      let msg =
        Ipv4.Icmp.Echo_request { ident = id; seq = 0; data = Bytes.create 16 }
      in
      let pkt =
        Ipv4.Packet.make ~id ~proto:Ipv4.Proto.icmp
          ~src:(Mhrp.Agent.address src) ~dst (Ipv4.Icmp.encode msg)
      in
      Metrics.note_send t.metrics pkt;
      Mhrp.Agent.send src pkt)
