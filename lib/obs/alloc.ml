type t = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

let zero = { minor_words = 0.0; major_words = 0.0; promoted_words = 0.0 }

(* On OCaml 5 [Gc.quick_stat]'s allocation counters are only flushed at
   minor collections, so an unflushed delta is quantized to whole minor
   heaps (~256k words) — near-zero measurements would read 0 or one
   full heap depending on where the young pointer happened to start.
   Forcing a minor collection on each side makes the delta word-exact. *)
let measure f =
  Gc.minor ();
  let s0 = Gc.quick_stat () in
  let r = f () in
  Gc.minor ();
  let s1 = Gc.quick_stat () in
  ( r,
    { minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
      major_words = s1.Gc.major_words -. s0.Gc.major_words;
      promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words } )

let per t n =
  if n <= 0 then invalid_arg "Alloc.per: n <= 0";
  let d = float_of_int n in
  { minor_words = t.minor_words /. d;
    major_words = t.major_words /. d;
    promoted_words = t.promoted_words /. d }

let pp ppf t =
  Format.fprintf ppf "minor=%.1fw major=%.1fw promoted=%.1fw" t.minor_words
    t.major_words t.promoted_words
