(** The regression gate: compare a freshly measured registry against the
    committed [bench/baselines.json], under each metric's own tolerance.

    The baseline side is authoritative for both the expected value and the
    tolerance, so loosening or tightening a gate is a reviewed edit to the
    committed file.  Metrics present on only one side are drifts too: a
    silently vanished measurement is exactly the failure this gate
    exists to catch, and a new one means the baseline must be
    regenerated deliberately (see README). *)

type drift = {
  path : string;  (** ["E6/ctrl_msgs{protocol=MHRP,campuses=8}"] *)
  reason : string;
}

type report = {
  checked : int;  (** Metrics compared (excludes [Info]-tolerance ones). *)
  drifts : drift list;  (** Sorted by path; empty means the gate passes. *)
}

val compare :
  ?only:string list -> baseline:Registry.t -> current:Registry.t -> unit ->
  report
(** [only] restricts the comparison to those experiment ids (used when the
    harness ran a subset); by default every experiment on either side is
    compared. *)

val load_file : string -> (Registry.t, string) result
(** Read and parse a baseline JSON file. *)

val pp_report : Format.formatter -> report -> unit
