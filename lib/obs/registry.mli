(** The metric registry: every experiment and micro-benchmark records each
    number it reports here, keyed by experiment id and metric name, with
    optional labels (protocol name, parameter sweep values).

    The registry is what [bench/main.exe --json] serializes and what the
    baseline checker compares.  A process-wide {!default} registry serves
    the experiment harness so the [Exp_*] modules need no plumbing; tests
    and parallel sweep trials create their own instances with {!create}
    and fold them back with {!merge_into}.

    Domain-safety: one registry instance must only be mutated from one
    domain at a time.  The parallel sweep runner respects this by giving
    every trial a private registry and merging into the shared one from
    the coordinating domain only, after the worker domains have been
    joined. *)

type t

val create : unit -> t
val default : t
val reset : t -> unit

val key : string -> (string * string) list -> string
(** [key name labels] renders ["name{k=v,k2=v2}"] (just [name] when
    [labels] is empty) — the flat metric key used in the JSON. *)

val counter :
  t -> exp:string -> ?labels:(string * string) list -> ?tol:Metric.tol ->
  string -> int -> unit
(** Record an integer measurement.  Default tolerance {!Metric.Exact}. *)

val gauge :
  t -> exp:string -> ?labels:(string * string) list -> ?tol:Metric.tol ->
  string -> float -> unit
(** Record a scalar sample.  Default tolerance {!Metric.Exact} — the
    simulator is deterministic, so even float-valued results reproduce
    bit-for-bit; pass [~tol:(Pct 20.0)] for timing-derived values. *)

val hist :
  t -> exp:string -> ?labels:(string * string) list -> ?tol:Metric.tol ->
  string -> float list -> unit
(** Summarize samples into a p50/p95/max histogram metric. *)

val set :
  t -> exp:string -> ?labels:(string * string) list -> string -> Metric.t ->
  unit
(** Record a pre-built metric (the hook used by [Netsim.Stats] and
    [Workload.Metrics] conversions). *)

exception Duplicate_metric of string
(** Carries ["exp/key"] of the offending metric. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] copies every metric of [src] into [into].
    Raises {!Duplicate_metric} if [into] already holds a metric under the
    same experiment id and key — two sweep trials recording the same
    metric is a bug (a missing sweep-point label), not a
    last-writer-wins situation.  Merging the per-trial registries of a
    sweep in grid order therefore yields exactly the registry a serial
    run would have produced. *)

val experiments : t -> string list
(** Sorted experiment ids currently holding at least one metric. *)

val metrics : t -> exp:string -> (string * Metric.t) list
(** Metrics of one experiment, sorted by key; [] for unknown ids. *)

val find : t -> exp:string -> string -> Metric.t option

val schema_version : int

val to_json : ?include_info:bool -> t -> commit:string -> Json.t
(** [{schema_version; commit; experiments: {id: {key: metric}}}] with
    experiment ids and metric keys sorted, so output is canonical.
    [include_info] (default [true]): when [false], metrics with
    {!Metric.Info} tolerance — wall-clock timings and other run-specific
    readings — are omitted (experiments left with no metrics disappear
    entirely), which makes dumps from runs that differ only in machine
    speed or [--jobs] byte-comparable. *)

val of_json : Json.t -> (t, string) result
(** Rebuild a registry from {!to_json} output (the [commit] field is
    ignored; a [schema_version] mismatch is an error). *)
