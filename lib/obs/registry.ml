type t = { tbl : (string, (string, Metric.t) Hashtbl.t) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }
let default = create ()
let reset t = Hashtbl.reset t.tbl

let key name labels =
  match labels with
  | [] -> name
  | labels ->
    let rendered =
      String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    in
    name ^ "{" ^ rendered ^ "}"

let exp_table t exp =
  match Hashtbl.find_opt t.tbl exp with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace t.tbl exp tbl;
    tbl

let set t ~exp ?(labels = []) name metric =
  Hashtbl.replace (exp_table t exp) (key name labels) metric

let counter t ~exp ?labels ?(tol = Metric.Exact) name v =
  set t ~exp ?labels name { Metric.value = Metric.Counter v; tol }

let gauge t ~exp ?labels ?(tol = Metric.Exact) name v =
  set t ~exp ?labels name { Metric.value = Metric.Gauge v; tol }

let hist t ~exp ?labels ?(tol = Metric.Exact) name samples =
  set t ~exp ?labels name
    { Metric.value = Metric.hist_of_samples samples; tol }

exception Duplicate_metric of string

let merge_into ~into src =
  Hashtbl.iter
    (fun exp src_tbl ->
       let dst_tbl = exp_table into exp in
       (* Deterministic insertion order regardless of the source table's
          internal layout: sort the keys before inserting. *)
       let keys =
         Hashtbl.fold (fun k v acc -> (k, v) :: acc) src_tbl []
         |> List.sort (fun (a, _) (b, _) -> String.compare a b)
       in
       List.iter
         (fun (k, m) ->
            if Hashtbl.mem dst_tbl k then
              raise (Duplicate_metric (exp ^ "/" ^ k));
            Hashtbl.replace dst_tbl k m)
         keys)
    src.tbl

let experiments t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl []
  |> List.sort String.compare

let metrics t ~exp =
  match Hashtbl.find_opt t.tbl exp with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t ~exp name =
  Option.bind (Hashtbl.find_opt t.tbl exp) (fun tbl ->
      Hashtbl.find_opt tbl name)

let schema_version = 1

let to_json ?(include_info = true) t ~commit =
  let keep (m : Metric.t) = include_info || m.Metric.tol <> Metric.Info in
  let exps =
    List.filter_map
      (fun exp ->
         match
           List.filter_map
             (fun (k, m) -> if keep m then Some (k, Metric.to_json m) else None)
             (metrics t ~exp)
         with
         | [] when not include_info -> None
         | fields -> Some (exp, Json.Obj fields))
      (experiments t)
  in
  Json.Obj
    [ ("schema_version", Json.Int schema_version);
      ("commit", Json.String commit);
      ("experiments", Json.Obj exps) ]

let ( let* ) r f = Result.bind r f

let of_json j =
  let* () =
    match Option.bind (Json.member "schema_version" j) Json.to_int with
    | Some v when v = schema_version -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf "schema_version %d, this build reads %d" v
           schema_version)
    | None -> Error "missing schema_version"
  in
  let* exps =
    match Option.bind (Json.member "experiments" j) Json.to_obj with
    | Some fields -> Ok fields
    | None -> Error "missing experiments object"
  in
  let t = create () in
  let rec load_exps = function
    | [] -> Ok t
    | (exp, v) :: rest ->
      let* fields =
        match Json.to_obj v with
        | Some fields -> Ok fields
        | None -> Error (Printf.sprintf "experiment %s is not an object" exp)
      in
      let rec load_metrics = function
        | [] -> Ok ()
        | (k, mj) :: rest ->
          (match Metric.of_json mj with
           | Ok m ->
             Hashtbl.replace (exp_table t exp) k m;
             load_metrics rest
           | Error e -> Error (Printf.sprintf "%s/%s: %s" exp k e))
      in
      let* () = load_metrics fields in
      load_exps rest
  in
  load_exps exps
