(** One measured value, tagged with the tolerance the baseline checker
    applies to it.

    The tolerance travels with the metric into the JSON file, so the
    committed [bench/baselines.json] is self-describing: the checker reads
    each metric's policy from the baseline side and never needs an
    out-of-band tolerance table. *)

type tol =
  | Exact  (** Protocol invariants: byte overheads, hop counts, message
               counts.  Any difference is a drift. *)
  | Pct of float  (** Timing-derived values: allowed to move by the given
                      percentage of the baseline magnitude. *)
  | Info  (** Recorded and archived but never gated — wall-clock numbers
              (micro-benchmark ns/run) that vary across machines. *)

type value =
  | Counter of int  (** Monotone integer measurement. *)
  | Gauge of float  (** Scalar sample. *)
  | Hist of { count : int; p50 : float; p95 : float; max : float }
      (** Summarised sample distribution.  [count] compares exactly; the
          percentiles follow the metric's tolerance. *)

type t = { value : value; tol : tol }

val equal : t -> t -> bool

val hist_of_samples : float list -> value
(** Nearest-rank p50/p95 and max over the samples; the all-zero [Hist]
    when the list is empty. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val drift : tol:tol -> baseline:value -> current:value -> string option
(** [None] when [current] is within [tol] of [baseline]; otherwise a
    human-readable reason naming both values.  Kind mismatches always
    drift. *)

val pp_tol : Format.formatter -> tol -> unit
val pp : Format.formatter -> t -> unit
