type drift = { path : string; reason : string }
type report = { checked : int; drifts : drift list }

let compare ?only ~baseline ~current () =
  let exps =
    let all =
      List.sort_uniq String.compare
        (Registry.experiments baseline @ Registry.experiments current)
    in
    match only with
    | None -> all
    | Some ids -> List.filter (fun e -> List.mem e ids) all
  in
  let checked = ref 0 in
  let drifts = ref [] in
  let drift exp key reason =
    drifts := { path = exp ^ "/" ^ key; reason } :: !drifts
  in
  List.iter
    (fun exp ->
       let base = Registry.metrics baseline ~exp in
       let cur = Registry.metrics current ~exp in
       List.iter
         (fun (k, (bm : Metric.t)) ->
            match List.assoc_opt k cur with
            | None ->
              if bm.Metric.tol <> Metric.Info then
                drift exp k "missing from this run"
            | Some (cm : Metric.t) ->
              if bm.Metric.tol <> Metric.Info then incr checked;
              (match
                 Metric.drift ~tol:bm.Metric.tol ~baseline:bm.Metric.value
                   ~current:cm.Metric.value
               with
               | Some reason -> drift exp k reason
               | None -> ()))
         base;
       List.iter
         (fun (k, (cm : Metric.t)) ->
            if
              List.assoc_opt k base = None
              && cm.Metric.tol <> Metric.Info
            then
              drift exp k "not in the baseline (regenerate baselines.json)")
         cur)
    exps;
  { checked = !checked;
    drifts =
      List.sort (fun a b -> String.compare a.path b.path) !drifts }

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    (match Json.of_string contents with
     | Error e -> Error (Printf.sprintf "%s: %s" path e)
     | Ok j ->
       (match Registry.of_json j with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok r -> Ok r))

let pp_report ppf { checked; drifts } =
  match drifts with
  | [] -> Format.fprintf ppf "baseline check: %d metrics OK" checked
  | drifts ->
    Format.fprintf ppf "baseline check: %d drifted of %d checked"
      (List.length drifts) checked;
    List.iter
      (fun { path; reason } ->
         Format.fprintf ppf "@.  DRIFT %s — %s" path reason)
      drifts
