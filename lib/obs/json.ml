type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y ->
    List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         x y
  | _ -> false

(* --- encoding --- *)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
           if i > 0 then Buffer.add_char buf ',';
           indent (depth + 1);
           emit (depth + 1) x)
        xs;
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
           if i > 0 then Buffer.add_char buf ',';
           indent (depth + 1);
           escape_string buf k;
           Buffer.add_string buf (if pretty then ": " else ":");
           emit (depth + 1) x)
        fields;
      indent depth;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* --- decoding --- *)

exception Bad of string

let max_depth = 1024

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
         | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
         | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
         | Some 'u' ->
           advance ();
           let cp = parse_hex4 () in
           (* we only emit \u for control characters; decode the BMP
              generically as UTF-8 so foreign files still load *)
           if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
           else if cp < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
             Buffer.add_char buf
               (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
           end;
           go ()
         | _ -> fail "bad escape")
      | Some c ->
        if Char.code c < 0x20 then fail "control character in string";
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        had := true;
        advance ()
      done;
      if not !had then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception _ -> Error "malformed input"

(* --- accessors --- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
