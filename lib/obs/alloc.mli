(** GC allocation accounting around a measured section.

    Wraps [Gc.quick_stat] deltas so experiments can report words
    allocated per operation — the allocation-regression CI lane gates
    these (with a [Pct] tolerance: codegen differs slightly across
    compiler versions) where wall-clock numbers would flake.  Word
    counts from [quick_stat] are exact, not sampled, and cost no heap
    traversal. *)

type t = {
  minor_words : float;  (** Words allocated in the minor heap. *)
  major_words : float;
      (** Words allocated in the major heap, including promotions. *)
  promoted_words : float;  (** Words surviving a minor collection. *)
}

val zero : t

val measure : (unit -> 'a) -> 'a * t
(** [measure f] runs [f] and returns its result with the allocation
    delta across the call.  A minor collection is forced on each side
    of [f]: OCaml 5's [quick_stat] counters are only flushed at minor
    collections, and without the flush a delta is quantized to whole
    minor heaps.  The measurement itself allocates a few words (the
    stat records and this pair) — negligible against any loop worth
    gating, but don't measure a no-op. *)

val per : t -> int -> t
(** [per t n] divides every field by [n] operations.  Raises
    [Invalid_argument] when [n <= 0]. *)

val pp : Format.formatter -> t -> unit
