type tol = Exact | Pct of float | Info

type value =
  | Counter of int
  | Gauge of float
  | Hist of { count : int; p50 : float; p95 : float; max : float }

type t = { value : value; tol : tol }

let tol_equal a b =
  match a, b with
  | Exact, Exact | Info, Info -> true
  | Pct x, Pct y -> Float.equal x y
  | _ -> false

let value_equal a b =
  match a, b with
  | Counter x, Counter y -> x = y
  | Gauge x, Gauge y -> Float.equal x y
  | Hist a, Hist b ->
    a.count = b.count && Float.equal a.p50 b.p50 && Float.equal a.p95 b.p95
    && Float.equal a.max b.max
  | _ -> false

let equal a b = tol_equal a.tol b.tol && value_equal a.value b.value

let percentile sorted n p =
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let hist_of_samples xs =
  match xs with
  | [] -> Hist { count = 0; p50 = 0.0; p95 = 0.0; max = 0.0 }
  | xs ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    Hist
      { count = n;
        p50 = percentile arr n 50.0;
        p95 = percentile arr n 95.0;
        max = arr.(n - 1) }

(* --- JSON --- *)

let tol_to_json = function
  | Exact -> Json.String "exact"
  | Info -> Json.String "info"
  | Pct p -> Json.Obj [("pct", Json.Float p)]

let tol_of_json = function
  | Json.String "exact" -> Ok Exact
  | Json.String "info" -> Ok Info
  | Json.Obj [("pct", p)] ->
    (match Json.to_float p with
     | Some p -> Ok (Pct p)
     | None -> Error "pct tolerance must be a number")
  | _ -> Error "unknown tolerance"

let to_json { value; tol } =
  match value with
  | Counter n ->
    Json.Obj
      [("kind", Json.String "counter"); ("value", Json.Int n);
       ("tol", tol_to_json tol)]
  | Gauge v ->
    Json.Obj
      [("kind", Json.String "gauge"); ("value", Json.Float v);
       ("tol", tol_to_json tol)]
  | Hist { count; p50; p95; max } ->
    Json.Obj
      [("kind", Json.String "hist"); ("count", Json.Int count);
       ("p50", Json.Float p50); ("p95", Json.Float p95);
       ("max", Json.Float max); ("tol", tol_to_json tol)]

let ( let* ) r f = Result.bind r f

let field j name conv =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v ->
    (match conv v with
     | Some v -> Ok v
     | None -> Error (Printf.sprintf "bad field %S" name))

let of_json j =
  let* tol =
    match Json.member "tol" j with
    | None -> Error "missing field \"tol\""
    | Some t -> tol_of_json t
  in
  match Json.member "kind" j with
  | Some (Json.String "counter") ->
    let* n = field j "value" Json.to_int in
    Ok { value = Counter n; tol }
  | Some (Json.String "gauge") ->
    let* v = field j "value" Json.to_float in
    Ok { value = Gauge v; tol }
  | Some (Json.String "hist") ->
    let* count = field j "count" Json.to_int in
    let* p50 = field j "p50" Json.to_float in
    let* p95 = field j "p95" Json.to_float in
    let* max = field j "max" Json.to_float in
    Ok { value = Hist { count; p50; p95; max }; tol }
  | _ -> Error "unknown metric kind"

(* --- comparison --- *)

let within_pct pct base cur =
  if Float.equal base cur then true
  else if base = 0.0 then Float.abs cur <= 1e-9
  else Float.abs (cur -. base) <= pct /. 100.0 *. Float.abs base

let float_drift tol what base cur =
  match tol with
  | Info -> None
  | Exact ->
    if Float.equal base cur then None
    else
      Some
        (Printf.sprintf "%s: expected %s, got %s" what
           (Json.float_to_string base) (Json.float_to_string cur))
  | Pct p ->
    if within_pct p base cur then None
    else
      Some
        (Printf.sprintf "%s: %s drifted more than %g%% from %s" what
           (Json.float_to_string cur) p (Json.float_to_string base))

let drift ~tol ~baseline ~current =
  match baseline, current, tol with
  | _, _, Info -> None
  | Counter b, Counter c, Exact ->
    if b = c then None
    else Some (Printf.sprintf "counter: expected %d, got %d" b c)
  | Counter b, Counter c, Pct p ->
    float_drift (Pct p) "counter" (float_of_int b) (float_of_int c)
  | Gauge b, Gauge c, _ -> float_drift tol "gauge" b c
  | Hist b, Hist c, _ ->
    if b.count <> c.count then
      Some
        (Printf.sprintf "hist count: expected %d, got %d" b.count c.count)
    else
      List.find_map
        (fun (what, bv, cv) -> float_drift tol what bv cv)
        [ ("hist p50", b.p50, c.p50); ("hist p95", b.p95, c.p95);
          ("hist max", b.max, c.max) ]
  | _ ->
    let kind = function
      | Counter _ -> "counter"
      | Gauge _ -> "gauge"
      | Hist _ -> "hist"
    in
    Some
      (Printf.sprintf "kind changed: baseline is a %s, current is a %s"
         (kind baseline) (kind current))

let pp_tol ppf = function
  | Exact -> Format.fprintf ppf "exact"
  | Info -> Format.fprintf ppf "info"
  | Pct p -> Format.fprintf ppf "±%g%%" p

let pp ppf { value; tol } =
  (match value with
   | Counter n -> Format.fprintf ppf "%d" n
   | Gauge v -> Format.fprintf ppf "%s" (Json.float_to_string v)
   | Hist { count; p50; p95; max } ->
     Format.fprintf ppf "hist(n=%d p50=%g p95=%g max=%g)" count p50 p95 max);
  Format.fprintf ppf " [%a]" pp_tol tol
