(** A minimal JSON document model with a deterministic encoder and a total
    decoder.  Hand-rolled like the wire codecs elsewhere in the tree: no
    external dependencies, byte-for-byte reproducible output, and a decoder
    that returns [Error] on any malformed input instead of raising.

    Encoding guarantees:
    - object fields are emitted in the order given (callers that need a
      canonical file sort their fields first);
    - floats are printed with the shortest representation that round-trips
      through [float_of_string] ([%.15g], widening to [%.17g] when needed),
      so [decode (encode v) = v] for finite floats;
    - non-finite floats (nan, inf) encode as [null] — JSON has no syntax
      for them and a baseline file must stay loadable everywhere. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality.  [Float] compares with [Float.equal] (so two nans
    are equal, unlike [=]); [Int 1] and [Float 1.0] are distinct. *)

val float_to_string : float -> string
(** The canonical float rendering used by {!to_string}; exposed so tests
    can check the round-trip property in isolation. *)

val to_string : ?pretty:bool -> t -> string
(** Deterministic serialization.  [pretty] (default false) adds two-space
    indentation and newlines, for committed baseline files that should
    diff readably. *)

val of_string : string -> (t, string) result
(** Total decoder: never raises, rejects trailing garbage, and bounds
    nesting depth (1024) so adversarial input cannot blow the stack. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on other
    constructors. *)

val to_int : t -> int option
(** [Int n] or an integral [Float]. *)

val to_float : t -> float option
(** [Float] or [Int], widened. *)

val to_list : t -> t list option
val to_obj : t -> (string * t) list option
val to_string_opt : t -> string option
