(** Per-router protocol event counters, read by tests and experiments.

    Counters are cumulative measurement state: they survive a simulated
    reboot (the router's protocol state is volatile, the experimenter's
    tally is not).  [bytes_sent]/[bytes_received] count full IP wire
    bytes (header included) per link-level transmission or reception, so
    they are directly comparable with MHRP's control-byte accounting. *)

type t = {
  mutable hellos_sent : int;
  mutable hellos_received : int;
  mutable lsas_originated : int;  (** Own-LSA (re-)originations. *)
  mutable lsas_sent : int;
      (** LSA transmissions: origination floods, re-floods of received
          LSAs, and database broadcasts toward new neighbors. *)
  mutable lsas_received : int;
  mutable floods_suppressed : int;
      (** LSAs whose sequence number was not newer than the database
          copy: the dedup cache terminating the flood. *)
  mutable spf_runs : int;
  mutable routes_installed : int;
      (** Route entries written across all SPF runs. *)
  mutable neighbors_up : int;
  mutable neighbors_down : int;  (** Dead-neighbor declarations. *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

val create : unit -> t

val add : t -> t -> unit
(** [add into src] accumulates [src] into [into] — domain-wide totals. *)

val control_messages : t -> int
(** [hellos_sent + lsas_sent]. *)

val pp : Format.formatter -> t -> unit
