(** The per-router protocol instance: hello beacons, LSA flooding, SPF.

    One [Router.t] rides on one {!Net.Node.t}, hooking protocol
    {!Ipv4.Proto.lsrp} and a periodic tick.  Everything it learns arrives
    as real broadcast packets over the simulated LANs, so link flaps,
    crashes and partitions delay or destroy its control traffic exactly
    as they would any other protocol's.

    {b Tick discipline.}  All periodic work — hello beacons, dead-neighbor
    scans, triggered and refresh re-origination, database synchronisation
    toward newly-heard neighbors — happens on one per-router tick of
    period {!Config.t.hello_interval}, offset by a per-router stagger so a
    domain's routers do not beacon in lockstep.  Re-origination is thereby
    coalesced: however many neighbors appear or die within one interval,
    the router floods at most one new LSA version per tick (plus refresh),
    which bounds flooding to O(routers / interval) even during the startup
    burst of a 256-campus domain.  Database synchronisation is further
    {e designated}: per newly-heard neighbor, only the lowest-id other
    participant on that LAN broadcasts its database, so a shared backbone
    sees O(1) full-database broadcasts per membership change rather than
    one per resident router.  Ticks fire only while the node
    {!Net.Node.is_up}; a crashed router goes silent until reboot.

    {b State across reboot.}  The LSDB and neighbor table are volatile and
    cleared by reboot; the own-LSA sequence number persists (routers keep
    it in NVRAM precisely so a rebooted router does not come back smaller
    than its own stale LSAs).  {!Counters} persist too — they are the
    experimenter's tally, not protocol state. *)

type t

val create : ?config:Config.t -> ?stagger:Netsim.Time.t -> Net.Node.t -> t
(** Hook the protocol onto the node.  The node must already have its
    interfaces attached and a primary address — the router id.  [stagger]
    (default zero) offsets the first tick; {!Domain.create} assigns each
    router a distinct offset.  Does not start timers; call {!start}. *)

val start : t -> unit
(** Begin ticking.  The first tick fires at [stagger], then every
    [hello_interval]. *)

val node : t -> Net.Node.t
val router_id : t -> Ipv4.Addr.t
val config : t -> Config.t
val counters : t -> Counters.t

val neighbor_count : t -> int
(** Live (interface, neighbor-router) pairs. *)

val lsdb_size : t -> int
(** Distinct origins in the link-state database. *)

val lsdb_seq : t -> Ipv4.Addr.t -> int option
(** Sequence number stored for the given origin, if any. *)

val lsdb_fold : t -> (Ipv4.Addr.t -> int -> 'a -> 'a) -> 'a -> 'a
(** Fold over (origin, sequence-number) pairs in unspecified order. *)

val settled : t -> bool
(** No deferred protocol work: the last-originated LSA still matches the
    live interfaces and neighbor sets, and no SPF run, forced
    re-origination or database synchronisation is queued.  A domain whose
    routers are all settled with identical databases has converged
    ({!Domain.synchronized}). *)

val spf_now : t -> unit
(** Run SPF immediately over the current database and install routes —
    the computation the [spf_delay] timer normally coalesces.  Exposed
    for micro-benchmarks; experiments let the timer drive it. *)

val reoriginate : t -> unit
(** Bump the sequence number, rebuild the own LSA from live interfaces
    and neighbors, store and flood it now.  Exposed for
    micro-benchmarks; the tick drives it normally. *)
