(** Wire codec for link-state control messages.

    Two message types ride IP protocol {!Ipv4.Proto.lsrp}, always as
    link-level broadcasts with TTL 1 — they are never forwarded, only
    re-originated hop by hop, which is what makes flooding observable
    (and destroyable) by the fault layer:

    - {b hello}: the sender's router id, beaconed per interface for
      neighbor discovery and liveness;
    - {b LSA}: the sender's router id, a sequence number, and one link
      record per attached up network — the network prefix, the router's
      address on it, and the router ids it currently hears hellos from
      there.

    Encoding is byte-exact so control-byte accounting measures real
    serialized sizes, like every other overhead figure in the bench. *)

type link = {
  prefix : Ipv4.Addr.Prefix.t;  (** The attached network. *)
  addr : Ipv4.Addr.t;  (** The originator's address on it. *)
  neighbors : Ipv4.Addr.t list;
      (** Router ids of live neighbors heard on this network, ascending.
          An SPF edge exists only when both endpoints list each other —
          the bidirectionality check that routes around routers whose
          stale LSAs outlive them. *)
}

type t =
  | Hello of { origin : Ipv4.Addr.t }
  | Lsa of { origin : Ipv4.Addr.t; seq : int; links : link list }

val encode : t -> bytes

val decode : bytes -> t
(** Raises [Invalid_argument] on malformed input. *)

val decode_opt : bytes -> t option

val size : t -> int
(** Encoded payload size in bytes (without the IP header). *)

val pp : Format.formatter -> t -> unit
