module Addr = Ipv4.Addr
module Node = Net.Node
module Lan = Net.Lan
module Route = Net.Route
module Topology = Net.Topology
module Routing = Net.Routing

type t = {
  topo : Topology.t;
  cfg : Config.t;
  routers : Router.t list;  (* in node order *)
}

let config t = t.cfg
let routers t = t.routers

let router t name =
  match
    List.find_opt (fun r -> Node.name (Router.node r) = name) t.routers
  with
  | Some r -> r
  | None -> raise Not_found

let create ?(config = Config.default) ?(cold_start = true) ?nodes topo =
  let nodes =
    match nodes with
    | Some ns -> ns
    | None -> List.filter Node.is_router (Topology.nodes topo)
  in
  let hello_us = max 1 (config.Config.hello_interval : Netsim.Time.t) in
  let routers =
    List.mapi
      (fun i node ->
         (* A distinct phase per router within one hello interval: 997 is
            prime, so offsets cycle through the interval without clumping
            however many routers share it. *)
         let stagger = Netsim.Time.of_us (i * 997 mod hello_us) in
         if cold_start then Node.set_routes node Route.empty;
         Router.create ~config ~stagger node)
      nodes
  in
  { topo; cfg = config; routers }

let start t = List.iter Router.start t.routers

let totals t =
  let acc = Counters.create () in
  List.iter (fun r -> Counters.add acc (Router.counters r)) t.routers;
  acc

let control_bytes t =
  List.fold_left
    (fun acc r -> acc + (Router.counters r).Counters.bytes_sent)
    0 t.routers

let db_signature r =
  Router.lsdb_fold r (fun o seq acc -> (Addr.to_int o, seq) :: acc) []
  |> List.sort compare

let synchronized t =
  let up = List.filter (fun r -> Node.is_up (Router.node r)) t.routers in
  match up with
  | [] -> true
  | first :: rest ->
    List.for_all Router.settled up
    &&
    let sig0 = db_signature first in
    List.for_all (fun r -> db_signature r = sig0) rest

(* {2 Oracle equivalence} *)

(* Follow installed tables from [start] toward an address in [p], counting
   LAN traversals (the final delivery LAN included, matching
   [Routing.path_length_graph]'s convention of [Some 1] for an attached
   source).  [Ok None] is a black hole — comparable against an oracle
   verdict of unreachable. *)
let walk addr_map start p probe =
  let rec go node hops visited =
    if List.memq node visited then
      Error
        (Printf.sprintf "forwarding loop at %s" (Node.name node))
    else
      match Route.lookup (Node.routes node) probe with
      | None -> Ok None
      | Some (Route.Direct i) ->
        if Addr.Prefix.equal (Lan.prefix (Node.iface_lan node i)) p then
          Ok (Some (hops + 1))
        else
          Error
            (Printf.sprintf "%s delivers %s onto LAN %s" (Node.name node)
               (Addr.Prefix.to_string p)
               (Lan.name (Node.iface_lan node i)))
      | Some (Route.Via gw) ->
        (match Hashtbl.find_opt addr_map (Addr.to_int gw) with
         | None ->
           Error
             (Printf.sprintf "%s routes %s via unknown gateway %s"
                (Node.name node)
                (Addr.Prefix.to_string p)
                (Addr.to_string gw))
         | Some next -> go next (hops + 1) (node :: visited))
  in
  go start 0 []

let check_equivalence ?routers t =
  let sources = match routers with Some rs -> rs | None -> t.routers in
  let all_nodes = Topology.nodes t.topo in
  let graph = Routing.graph_of_nodes all_nodes in
  let addr_map = Hashtbl.create 256 in
  List.iter
    (fun n ->
       List.iter
         (fun a -> Hashtbl.replace addr_map (Addr.to_int a) n)
         (Node.addresses n))
    all_nodes;
  let lans = List.filter Lan.is_up (Topology.lans t.topo) in
  let check_pair node lan =
    let p = Lan.prefix lan in
    let probe = Addr.Prefix.host p 1 in
    let expected = Routing.path_length_graph graph ~src:node ~dst_lan:lan in
    match walk addr_map node p probe with
    | Error e ->
      Some (Printf.sprintf "%s -> %s: %s" (Node.name node) (Lan.name lan) e)
    | Ok actual ->
      if actual = expected then None
      else
        let show = function
          | None -> "unreachable"
          | Some h -> Printf.sprintf "%d hops" h
        in
        Some
          (Printf.sprintf "%s -> %s: walked %s, oracle says %s"
             (Node.name node) (Lan.name lan) (show actual) (show expected))
  in
  let rec first_error = function
    | [] -> Ok ()
    | r :: rest ->
      let node = Router.node r in
      if not (Node.is_up node) then first_error rest
      else (
        match List.find_map (check_pair node) lans with
        | Some e -> Error e
        | None -> first_error rest)
  in
  first_error sources

let equivalent ?routers t =
  match check_equivalence ?routers t with Ok () -> true | Error _ -> false
