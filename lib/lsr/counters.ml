type t = {
  mutable hellos_sent : int;
  mutable hellos_received : int;
  mutable lsas_originated : int;
  mutable lsas_sent : int;
  mutable lsas_received : int;
  mutable floods_suppressed : int;
  mutable spf_runs : int;
  mutable routes_installed : int;
  mutable neighbors_up : int;
  mutable neighbors_down : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let create () =
  { hellos_sent = 0; hellos_received = 0; lsas_originated = 0;
    lsas_sent = 0; lsas_received = 0; floods_suppressed = 0; spf_runs = 0;
    routes_installed = 0; neighbors_up = 0; neighbors_down = 0;
    bytes_sent = 0; bytes_received = 0 }

let add into src =
  into.hellos_sent <- into.hellos_sent + src.hellos_sent;
  into.hellos_received <- into.hellos_received + src.hellos_received;
  into.lsas_originated <- into.lsas_originated + src.lsas_originated;
  into.lsas_sent <- into.lsas_sent + src.lsas_sent;
  into.lsas_received <- into.lsas_received + src.lsas_received;
  into.floods_suppressed <- into.floods_suppressed + src.floods_suppressed;
  into.spf_runs <- into.spf_runs + src.spf_runs;
  into.routes_installed <- into.routes_installed + src.routes_installed;
  into.neighbors_up <- into.neighbors_up + src.neighbors_up;
  into.neighbors_down <- into.neighbors_down + src.neighbors_down;
  into.bytes_sent <- into.bytes_sent + src.bytes_sent;
  into.bytes_received <- into.bytes_received + src.bytes_received

let control_messages t = t.hellos_sent + t.lsas_sent

let pp ppf t =
  Format.fprintf ppf
    "hello=%d/%d lsa=%d/%d (orig %d, dup %d) spf=%d routes=%d nbr=+%d/-%d \
     bytes=%d/%d"
    t.hellos_sent t.hellos_received t.lsas_sent t.lsas_received
    t.lsas_originated t.floods_suppressed t.spf_runs t.routes_installed
    t.neighbors_up t.neighbors_down t.bytes_sent t.bytes_received
