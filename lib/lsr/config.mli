(** Link-state protocol timers and policy.

    Defaults are scaled to the simulator's LAN latencies (hundreds of
    microseconds): sub-second hellos converge a campus internetwork in a
    few hundred milliseconds, which keeps convergence experiments short
    while still letting fault windows comfortably outlast detection. *)

type t = {
  hello_interval : Netsim.Time.t;
  (** Period of hello beacons on every up interface; also the period of
      the dead-neighbor scan and the carrier-sense check. *)
  dead_count : int;
  (** Hello periods of silence before a neighbor is declared dead and
      the router re-originates its LSA without it. *)
  refresh_interval : Netsim.Time.t;
  (** Floor between periodic re-originations of the router's own LSA.
      Refresh repopulates peers that lost their database (reboot) even
      when no triggered origination happens. *)
  spf_delay : Netsim.Time.t;
  (** Hold-down between a database change and the SPF run it triggers;
      changes arriving inside the window coalesce into one recompute. *)
  preserve_host_routes : bool;
  (** Keep /32 entries already in the node's table when installing SPF
      results.  LSR itself only ever installs network prefixes, so this
      is what lets MHRP's optional host-specific routes (Section 3 of
      the paper) coexist with a live routing protocol. *)
}

val default : t
(** 500 ms hellos, dead after 3 missed, 10 s refresh, 10 ms SPF
    hold-down, host routes preserved. *)

val make :
  ?hello_interval:Netsim.Time.t ->
  ?dead_count:int ->
  ?refresh_interval:Netsim.Time.t ->
  ?spf_delay:Netsim.Time.t ->
  ?preserve_host_routes:bool ->
  unit ->
  t
(** [make ()] is [default]; each label overrides one field. *)
