module Addr = Ipv4.Addr

type link = {
  prefix : Addr.Prefix.t;
  addr : Addr.t;
  neighbors : Addr.t list;
}

type t =
  | Hello of { origin : Addr.t }
  | Lsa of { origin : Addr.t; seq : int; links : link list }

let version = 1
let tag_hello = 1
let tag_lsa = 2

let link_size l = 4 + 1 + 4 + 2 + (4 * List.length l.neighbors)

let size = function
  | Hello _ -> 6
  | Lsa { links; _ } ->
    6 + 4 + 2 + List.fold_left (fun acc l -> acc + link_size l) 0 links

let put_addr b off a = Bytes.set_int32_be b off (Int32.of_int (Addr.to_int a))

let get_addr b off =
  Addr.of_int (Int32.to_int (Bytes.get_int32_be b off) land 0xFFFF_FFFF)

let encode t =
  let b = Bytes.create (size t) in
  Bytes.set_uint8 b 0 version;
  (match t with
   | Hello { origin } ->
     Bytes.set_uint8 b 1 tag_hello;
     put_addr b 2 origin
   | Lsa { origin; seq; links } ->
     if seq < 0 || seq > 0x3FFF_FFFF then
       invalid_arg "Lsr.Packet.encode: sequence number out of range";
     Bytes.set_uint8 b 1 tag_lsa;
     put_addr b 2 origin;
     Bytes.set_int32_be b 6 (Int32.of_int seq);
     Bytes.set_uint16_be b 10 (List.length links);
     let off = ref 12 in
     List.iter
       (fun l ->
          put_addr b !off (l.prefix.Addr.Prefix.base : Addr.t);
          Bytes.set_uint8 b (!off + 4) l.prefix.Addr.Prefix.len;
          put_addr b (!off + 5) l.addr;
          Bytes.set_uint16_be b (!off + 9) (List.length l.neighbors);
          off := !off + 11;
          List.iter
            (fun n ->
               put_addr b !off n;
               off := !off + 4)
            l.neighbors)
       links);
  b

let decode b =
  let fail msg = invalid_arg ("Lsr.Packet.decode: " ^ msg) in
  let len = Bytes.length b in
  if len < 6 then fail "truncated header";
  if Bytes.get_uint8 b 0 <> version then fail "bad version";
  let origin = get_addr b 2 in
  match Bytes.get_uint8 b 1 with
  | tag when tag = tag_hello ->
    if len <> 6 then fail "hello with trailing bytes";
    Hello { origin }
  | tag when tag = tag_lsa ->
    if len < 12 then fail "truncated lsa";
    let seq = Int32.to_int (Bytes.get_int32_be b 6) in
    if seq < 0 then fail "negative sequence number";
    let nlinks = Bytes.get_uint16_be b 10 in
    let off = ref 12 in
    let links =
      List.init nlinks (fun _ ->
          if !off + 11 > len then fail "truncated link";
          let base = get_addr b !off in
          let plen = Bytes.get_uint8 b (!off + 4) in
          if plen > 32 then fail "bad prefix length";
          let prefix = Addr.Prefix.make base plen in
          if not (Addr.equal (prefix.Addr.Prefix.base :> Addr.t) base) then
            fail "prefix with host bits set";
          let addr = get_addr b (!off + 5) in
          let nneigh = Bytes.get_uint16_be b (!off + 9) in
          off := !off + 11;
          if !off + (4 * nneigh) > len then fail "truncated neighbor list";
          let neighbors =
            List.init nneigh (fun _ ->
                let a = get_addr b !off in
                off := !off + 4;
                a)
          in
          { prefix; addr; neighbors })
    in
    if !off <> len then fail "trailing bytes";
    Lsa { origin; seq; links }
  | _ -> fail "unknown message type"

let decode_opt b = try Some (decode b) with Invalid_argument _ -> None

let pp ppf = function
  | Hello { origin } -> Format.fprintf ppf "hello from %a" Addr.pp origin
  | Lsa { origin; seq; links } ->
    Format.fprintf ppf "lsa %a seq=%d links=[%a]" Addr.pp origin seq
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf l ->
            Format.fprintf ppf "%a via %a nbrs=%d" Addr.Prefix.pp l.prefix
              Addr.pp l.addr (List.length l.neighbors)))
      links
