(** A routing domain: one {!Router} per router node of a topology.

    [Domain] is the experiment-facing entry point.  It instantiates the
    protocol on every router of a built {!Net.Topology.t}, staggers their
    tick phases deterministically, and provides the two domain-wide
    predicates experiments gate on:

    - {!synchronized} — cheap convergence detection: every up router is
      {!Router.settled} and all databases carry identical
      (origin, sequence) sets.  E18 polls this to timestamp
      reconvergence.
    - {!check_equivalence} — the strong property: walking the installed
      tables hop by hop delivers to every up network without loops, in
      exactly as many LAN hops as the omniscient {!Net.Routing} oracle
      would take.  Next hops need not be identical — LSR breaks equal-cost
      ties by router id where the oracle uses node names — but path
      {e lengths} must agree, which rules out both loops and detours.

    The oracle reads live topology and ignores crashed nodes, so
    equivalence is only meaningful in a quiescent state: after start-up,
    or after faults have healed and {!synchronized} holds again. *)

type t

val create :
  ?config:Config.t -> ?cold_start:bool -> ?nodes:Net.Node.t list ->
  Net.Topology.t -> t
(** One router per node of the topology with {!Net.Node.is_router} set
    (or per node of [nodes]), each with a distinct deterministic tick
    stagger within one hello interval.  [cold_start] (default [true])
    empties each router's table so convergence is measured from nothing
    rather than from a previously-installed oracle state; host tables are
    never touched — hosts keep their static (oracle-installed) routes, as
    real hosts keep their configured gateways.  Timers do not run until
    {!start}. *)

val start : t -> unit

val config : t -> Config.t
val routers : t -> Router.t list
val router : t -> string -> Router.t
(** By node name.  Raises [Not_found]. *)

val totals : t -> Counters.t
(** Sum of all routers' counters, freshly computed. *)

val control_bytes : t -> int
(** Total control bytes transmitted (IP wire bytes of hellos, LSAs and
    database synchronisation) — the figure E18 weighs against MHRP's
    control traffic. *)

val synchronized : t -> bool
(** Every up router is {!Router.settled} and all up routers' databases
    hold identical (origin, sequence) sets.  Crashed routers are ignored;
    [false] while any protocol work is still queued. *)

val check_equivalence : ?routers:Router.t list -> t -> (unit, string) result
(** Walk every (router, up-LAN) pair's installed route hop by hop and
    compare the delivery hop count against {!Net.Routing.path_length_graph}
    on a freshly built oracle graph.  [Error] carries the first mismatch:
    a loop, a black hole, a detour, or a route the oracle says cannot
    exist.  [routers] (default: all) restricts the sources checked —
    large sweeps sample.  O(sources × LANs) oracle BFS runs: exhaustive
    on test topologies, sampled at 256 campuses. *)

val equivalent : ?routers:Router.t list -> t -> bool
(** [check_equivalence] as a predicate. *)
