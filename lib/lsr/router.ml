module Addr = Ipv4.Addr
module Node = Net.Node
module Lan = Net.Lan
module Route = Net.Route
module Engine = Netsim.Engine

type db_entry = {
  seq : int;
  links : Packet.link list;
}

type neighbor = {
  mutable last_heard : Netsim.Time.t;
}

type t = {
  node : Node.t;
  cfg : Config.t;
  id : Addr.t;
  stagger : Netsim.Time.t;
  counters : Counters.t;
  (* Volatile protocol state, cleared by reboot. *)
  neighbors : (int * int, neighbor) Hashtbl.t;  (* (iface, origin) *)
  lsdb : (int, db_entry) Hashtbl.t;  (* origin *)
  mutable pending_sync : (int * int) list;
  (* (iface, newly-heard origin) pairs owed a database broadcast *)
  mutable last_links : Packet.link list option;  (* as last originated *)
  mutable last_origination : Netsim.Time.t;
  mutable force_originate : bool;
  mutable spf_pending : bool;
  (* NVRAM: survives reboot so the router outranks its own stale LSAs. *)
  mutable own_seq : int;
  mutable started : bool;
}

let node t = t.node
let router_id t = t.id
let config t = t.cfg
let counters t = t.counters
let neighbor_count t = Hashtbl.length t.neighbors
let lsdb_size t = Hashtbl.length t.lsdb

let lsdb_seq t origin =
  Option.map
    (fun e -> e.seq)
    (Hashtbl.find_opt t.lsdb (Addr.to_int origin))

let lsdb_fold t f acc =
  Hashtbl.fold (fun o e acc -> f (Addr.of_int o) e.seq acc) t.lsdb acc

let engine t = Node.engine t.node
let now t = Engine.now (engine t)

(* Which interface a control packet arrived on: the one whose LAN prefix
   contains the source address.  Node's protocol handlers do not carry the
   arrival interface, but LSR neighbors are by construction addressed
   within the shared LAN's prefix, so this inference is exact. *)
let arrival_iface t src =
  List.find_map
    (fun (i, lan, _) -> if Addr.Prefix.mem src (Lan.prefix lan) then Some i else None)
    (Node.ifaces t.node)

let transmit t ~iface ~src payload =
  let pkt =
    Ipv4.Packet.make ~ttl:1 ~proto:Ipv4.Proto.lsrp ~src ~dst:Addr.broadcast
      payload
  in
  let c = t.counters in
  c.Counters.bytes_sent <- c.Counters.bytes_sent + Ipv4.Packet.total_length pkt;
  Node.broadcast_ip t.node ~iface pkt

let send_hello t ~iface ~src =
  let c = t.counters in
  c.Counters.hellos_sent <- c.Counters.hellos_sent + 1;
  transmit t ~iface ~src (Packet.encode (Packet.Hello { origin = t.id }))

(* Broadcast one LSA on every up, addressed interface except [skip_iface]
   (split horizon: never back out the interface it arrived on). *)
let flood t ?skip_iface msg =
  let payload = Packet.encode msg in
  let c = t.counters in
  List.iter
    (fun (i, lan, addr_opt) ->
       match addr_opt with
       | Some src when Lan.is_up lan && Some i <> skip_iface ->
         c.Counters.lsas_sent <- c.Counters.lsas_sent + 1;
         transmit t ~iface:i ~src payload
       | _ -> ())
    (Node.ifaces t.node)

(* {2 SPF} *)

let links_of t r =
  match Hashtbl.find_opt t.lsdb r with Some e -> e.links | None -> []

let spf_now t =
  if Node.is_up t.node then begin
    let c = t.counters in
    c.Counters.spf_runs <- c.Counters.spf_runs + 1;
    let self = Addr.to_int t.id in
    (* BFS over the LSDB.  An edge R—N across prefix P exists only when
       both LSAs list each other as neighbors on P: the bidirectionality
       check that keeps a crashed router's lingering LSA from attracting
       traffic (nobody alive still lists it). *)
    let dist : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let entry : (int, Addr.t) Hashtbl.t = Hashtbl.create 64 in
    let q = Queue.create () in
    Hashtbl.replace dist self 0;
    Queue.push self q;
    while not (Queue.is_empty q) do
      let r = Queue.pop q in
      let d = Hashtbl.find dist r in
      List.iter
        (fun (l : Packet.link) ->
           List.iter
             (fun naddr ->
                let n = Addr.to_int naddr in
                if not (Hashtbl.mem dist n) then
                  match
                    List.find_opt
                      (fun (nl : Packet.link) ->
                         Addr.Prefix.equal nl.prefix l.prefix
                         && List.exists
                              (fun a -> Addr.to_int a = r)
                              nl.neighbors)
                      (links_of t n)
                  with
                  | None -> ()
                  | Some nl ->
                    Hashtbl.replace dist n (d + 1);
                    Hashtbl.replace entry n
                      (if r = self then nl.addr else Hashtbl.find entry r);
                    Queue.push n q)
             l.neighbors)
        (links_of t r)
    done;
    (* Destination prefixes: every network any reachable router claims to
       be attached to, owned by the closest such router (ties to the
       lowest router id — the distributed analogue of the oracle's
       tie-break on node name). *)
    let best : (Addr.Prefix.t, int * int) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun r e ->
         match Hashtbl.find_opt dist r with
         | None -> ()
         | Some d ->
           List.iter
             (fun (l : Packet.link) ->
                match Hashtbl.find_opt best l.prefix with
                | Some (d', r') when (d', r') <= (d, r) -> ()
                | _ -> Hashtbl.replace best l.prefix (d, r))
             e.links)
      t.lsdb;
    let routes =
      Hashtbl.fold
        (fun p (_, r) acc ->
           if r = self then
             match Node.iface_to t.node p with
             | Some i -> (p, Route.Direct i) :: acc
             | None -> acc
           else (p, Route.Via (Hashtbl.find entry r)) :: acc)
        best []
      |> List.sort (fun (p, _) (p', _) -> Addr.Prefix.compare p p')
    in
    let preserved =
      if not t.cfg.Config.preserve_host_routes then []
      else
        List.filter_map
          (fun (e : Route.entry) ->
             if e.prefix.Addr.Prefix.len = 32 then Some (e.prefix, e.target)
             else None)
          (Route.entries (Node.routes t.node))
    in
    c.Counters.routes_installed <-
      c.Counters.routes_installed + List.length routes;
    Node.set_routes t.node (Route.bulk (routes @ preserved))
  end

let schedule_spf t =
  if not t.spf_pending then begin
    t.spf_pending <- true;
    ignore
      (Engine.schedule_after (engine t) ~delay:t.cfg.Config.spf_delay
         (fun () ->
            t.spf_pending <- false;
            spf_now t))
  end

(* {2 Origination and flooding} *)

let build_links t =
  List.filter_map
    (fun (i, lan, addr_opt) ->
       match addr_opt with
       | Some addr when Lan.is_up lan ->
         let nbrs =
           Hashtbl.fold
             (fun (ifc, o) _ acc -> if ifc = i then o :: acc else acc)
             t.neighbors []
           |> List.sort_uniq Int.compare
           |> List.map Addr.of_int
         in
         Some { Packet.prefix = Lan.prefix lan; addr; neighbors = nbrs }
       | _ -> None)
    (Node.ifaces t.node)

let settled t =
  (not t.spf_pending)
  && (not t.force_originate)
  && t.pending_sync = []
  && t.last_links = Some (build_links t)

let reoriginate t =
  let links = build_links t in
  let changed = t.last_links <> Some links in
  t.own_seq <- t.own_seq + 1;
  t.last_links <- Some links;
  t.last_origination <- now t;
  t.force_originate <- false;
  Hashtbl.replace t.lsdb (Addr.to_int t.id) { seq = t.own_seq; links };
  let c = t.counters in
  c.Counters.lsas_originated <- c.Counters.lsas_originated + 1;
  flood t (Packet.Lsa { origin = t.id; seq = t.own_seq; links });
  (* A pure refresh carries no news; only a content change costs SPF. *)
  if changed then schedule_spf t

(* Bring a new neighbor's database up to date: broadcast every stored LSA
   on the interface it appeared on.  Duplicates cost one suppressed flood
   at routers that already have them. *)
let db_sync t iface =
  match List.find_opt (fun (i, _, _) -> i = iface) (Node.ifaces t.node) with
  | Some (_, lan, Some src) when Lan.is_up lan ->
    let c = t.counters in
    Hashtbl.fold (fun o e acc -> (o, e) :: acc) t.lsdb []
    |> List.sort (fun (o, _) (o', _) -> Int.compare o o')
    |> List.iter (fun (o, e) ->
        c.Counters.lsas_sent <- c.Counters.lsas_sent + 1;
        transmit t ~iface ~src
          (Packet.encode
             (Packet.Lsa { origin = Addr.of_int o; seq = e.seq; links = e.links })))
  | _ -> ()

(* {2 Receive paths} *)

let on_hello t iface origin =
  if not (Addr.equal origin t.id) then begin
    let key = (iface, Addr.to_int origin) in
    match Hashtbl.find_opt t.neighbors key with
    | Some nb -> nb.last_heard <- now t
    | None ->
      Hashtbl.replace t.neighbors key { last_heard = now t };
      let c = t.counters in
      c.Counters.neighbors_up <- c.Counters.neighbors_up + 1;
      if not (List.mem key t.pending_sync) then
        t.pending_sync <- key :: t.pending_sync
  end

let on_lsa t iface origin seq links =
  let c = t.counters in
  if Addr.equal origin t.id then begin
    (* An echo of our own LSA.  With the sequence number in NVRAM this is
       normally stale; defend anyway by outbidding anything newer. *)
    if seq >= t.own_seq then begin
      t.own_seq <- seq;
      t.force_originate <- true
    end
    else c.Counters.floods_suppressed <- c.Counters.floods_suppressed + 1
  end
  else
    let o = Addr.to_int origin in
    match Hashtbl.find_opt t.lsdb o with
    | Some e when e.seq >= seq ->
      c.Counters.floods_suppressed <- c.Counters.floods_suppressed + 1
    | prior ->
      Hashtbl.replace t.lsdb o { seq; links };
      flood t ~skip_iface:iface (Packet.Lsa { origin; seq; links });
      (* Refresh floods renew the sequence number but carry the same
         content; SPF is owed only when the links actually changed. *)
      (match prior with
       | Some e when e.links = links -> ()
       | _ -> schedule_spf t)

let handle t pkt =
  let c = t.counters in
  c.Counters.bytes_received <-
    c.Counters.bytes_received + Ipv4.Packet.total_length pkt;
  match arrival_iface t pkt.Ipv4.Packet.src with
  | None -> ()
  | Some iface ->
    (match Packet.decode_opt pkt.Ipv4.Packet.payload with
     | None -> ()
     | Some (Packet.Hello { origin }) ->
       c.Counters.hellos_received <- c.Counters.hellos_received + 1;
       on_hello t iface origin
     | Some (Packet.Lsa { origin; seq; links }) ->
       c.Counters.lsas_received <- c.Counters.lsas_received + 1;
       on_lsa t iface origin seq links)

(* {2 The tick} *)

let tick t =
  if Node.is_up t.node then begin
    let c = t.counters in
    let now_ = now t in
    let dead_after = t.cfg.Config.dead_count * t.cfg.Config.hello_interval in
    let dead =
      Hashtbl.fold
        (fun key nb acc ->
           if now_ - nb.last_heard > dead_after then key :: acc else acc)
        t.neighbors []
    in
    List.iter
      (fun key ->
         Hashtbl.remove t.neighbors key;
         c.Counters.neighbors_down <- c.Counters.neighbors_down + 1)
      dead;
    let links = build_links t in
    if
      t.force_originate
      || t.last_links <> Some links
      || now_ - t.last_origination >= t.cfg.Config.refresh_interval
    then reoriginate t;
    (* Database synchronisation, coalesced per interface and designated:
       for each newly-heard neighbor O on a LAN, the responder is the
       lowest-id live participant other than O.  Exactly one (sometimes,
       transiently, two) full-database broadcast per LAN answers however
       many routers appeared at once — without the rule, a cold-started
       256-router backbone would see N full databases broadcast to N
       receivers.  Excluding O from the election keeps a rebooted
       lowest-id router from electing itself to serve its own (empty)
       database while everyone else stays silent. *)
    let pending = t.pending_sync in
    t.pending_sync <- [];
    let self_id = Addr.to_int t.id in
    let syncs =
      List.filter_map
        (fun (iface, o) ->
           if not (Hashtbl.mem t.neighbors (iface, o)) then None
           else
             let min_other =
               Hashtbl.fold
                 (fun (ifc, n) _ acc ->
                    if ifc = iface && n <> o then min n acc else acc)
                 t.neighbors self_id
             in
             if min_other = self_id then Some iface else None)
        pending
      |> List.sort_uniq Int.compare
    in
    List.iter (db_sync t) syncs;
    List.iter
      (fun (i, lan, addr_opt) ->
         match addr_opt with
         | Some src when Lan.is_up lan -> send_hello t ~iface:i ~src
         | _ -> ())
      (Node.ifaces t.node)
  end

let create ?(config = Config.default) ?(stagger = Netsim.Time.zero) node =
  let t =
    { node; cfg = config; id = Node.primary_addr node; stagger;
      counters = Counters.create (); neighbors = Hashtbl.create 16;
      lsdb = Hashtbl.create 64; pending_sync = []; last_links = None;
      last_origination = Netsim.Time.zero; force_originate = false;
      spf_pending = false; own_seq = 0; started = false }
  in
  Node.set_proto_handler node Ipv4.Proto.lsrp (fun _ pkt -> handle t pkt);
  Node.on_reboot node (fun _ ->
      Hashtbl.reset t.neighbors;
      Hashtbl.reset t.lsdb;
      t.pending_sync <- [];
      t.last_links <- None;
      t.force_originate <- true);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    let e = engine t in
    ignore
      (Engine.schedule_after e ~delay:t.stagger (fun () ->
           tick t;
           Engine.every e ~interval:t.cfg.Config.hello_interval (fun () ->
               tick t)))
  end
