type t = {
  hello_interval : Netsim.Time.t;
  dead_count : int;
  refresh_interval : Netsim.Time.t;
  spf_delay : Netsim.Time.t;
  preserve_host_routes : bool;
}

let default =
  { hello_interval = Netsim.Time.of_ms 500;
    dead_count = 3;
    refresh_interval = Netsim.Time.of_sec 10.0;
    spf_delay = Netsim.Time.of_ms 10;
    preserve_host_routes = true }

let make ?(hello_interval = default.hello_interval)
    ?(dead_count = default.dead_count)
    ?(refresh_interval = default.refresh_interval)
    ?(spf_delay = default.spf_delay)
    ?(preserve_host_routes = default.preserve_host_routes) () =
  if dead_count < 1 then invalid_arg "Lsr.Config.make: dead_count < 1";
  { hello_interval; dead_count; refresh_interval; spf_delay;
    preserve_host_routes }
