(** Deterministic multicore sweeps: a grid of independent simulation
    trials executed over a {!Pool} of domains, with results — both the
    returned values and the recorded {!Obs} metrics — guaranteed
    bit-identical to a serial run regardless of how the trials were
    scheduled.

    The contract that buys the guarantee:

    - each trial is a pure function of its grid point (and, when it
      wants one, the pre-derived [ctx.seed]): it builds its own
      [Netsim.Engine], topology and RNG, and touches no state shared
      with other trials;
    - each trial records metrics only through its private
      [ctx.registry], never the global {!Obs.Registry.default};
    - the runner merges the per-trial registries into the destination
      registry in grid order, from the calling domain, after all worker
      domains are joined — so the merged registry is exactly what the
      serial loop would have built, and duplicate metric keys (a missing
      sweep-point label) raise {!Obs.Registry.Duplicate_metric} instead
      of silently resolving by scheduling luck.

    Trials must not print: table rendering belongs to the caller, after
    [run] returns, using the trial results it hands back in grid
    order. *)

type ctx = {
  index : int;  (** Position of this trial in the grid, from 0. *)
  seed : int;
      (** Deterministic per-trial seed, derived from the sweep's base
          seed and [index] — the same for a given grid regardless of
          [jobs].  Trials reproducing pre-sweep experiments ignore it
          and keep their historical fixed seeds. *)
  registry : Obs.Registry.t;
      (** Private registry for this trial's metrics; merged into the
          sweep's destination registry in grid order. *)
}

type stats = {
  jobs : int;  (** Worker domains actually used (after clamping). *)
  trials : int;
  elapsed_s : float;  (** Wall-clock of the whole sweep. *)
}

val set_default_jobs : int -> unit
(** Set the pool size used when [run] is not given [~jobs] — the CLI's
    [--jobs] lands here once, at startup.  Raises [Invalid_argument] on
    values < 1. *)

val default_jobs : unit -> int
(** Current default pool size.  Initially
    [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int -> ?into:Obs.Registry.t -> ?seed:int ->
  ?on_done:(stats -> unit) -> trial:(ctx -> 'p -> 'r) -> 'p list -> 'r list
(** [run ~trial points] executes one trial per grid point and returns
    their results in grid order.

    [jobs] defaults to {!default_jobs} (clamped to the number of
    points); [jobs = 1] runs the trials sequentially in the calling
    domain — today's serial path.  [into] (default
    [Obs.Registry.default]) receives the per-trial registries, merged in
    grid order.  [seed] (default 42) is the base from which every
    [ctx.seed] is derived.  [on_done] observes the sweep's wall-clock —
    the hook the experiments use to record their [Info]-tolerance
    speedup metrics. *)
