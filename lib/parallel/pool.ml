let default_jobs () = Domain.recommended_domain_count ()

(* Each cell of [results] is written by exactly one worker (the one that
   claimed its index from the shared counter) and read only after every
   worker has been joined, so there are no data races on the array. *)

let map ~jobs ~f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    let results = Array.make n None in
    let run i = results.(i) <- Some (try Ok (f i tasks.(i)) with e -> Error e) in
    (if jobs = 1 then
       for i = 0 to n - 1 do
         run i
       done
     else begin
       let next = Atomic.make 0 in
       let worker () =
         let rec loop () =
           let i = Atomic.fetch_and_add next 1 in
           if i < n then begin
             run i;
             loop ()
           end
         in
         loop ()
       in
       let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
       worker ();
       List.iter Domain.join spawned
     end);
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error e) -> raise e
        | None -> assert false (* every index is claimed exactly once *))
      results
  end
