(** A fixed-size pool of OCaml 5 domains executing an indexed batch of
    independent tasks.

    [map] is the only entry point: it spawns at most [jobs - 1] worker
    domains (the calling domain is the pool's first worker), has them
    pull task indices from a shared atomic counter, and joins them all
    before returning.  Task results land in a result array at their own
    index, so the output order is the input order regardless of which
    domain ran what.

    Tasks must be isolated: they may not share mutable state with each
    other (they run concurrently) and anything they do share with the
    caller must be written before [map] is called and read after it
    returns.  The [Domain.join] on every worker provides the
    happens-before edge that makes the result array safe to read. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the machine's useful level of
    parallelism. *)

val map : jobs:int -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~f tasks] applies [f index task] to every task and
    returns the results in input order.  [jobs] is clamped to
    [1 .. Array.length tasks]; with [jobs = 1] no domain is spawned and
    the tasks run sequentially, in order, in the calling domain — the
    serial path is the parallel path with a pool of one.

    If any task raises, the batch still runs to completion (a crashed
    trial must not strand the domains still working), and the exception
    of the lowest-indexed failed task is then re-raised in the calling
    domain. *)
