type ctx = { index : int; seed : int; registry : Obs.Registry.t }
type stats = { jobs : int; trials : int; elapsed_s : float }

(* Written once at startup (CLI parsing) and read from the coordinating
   domain when a sweep starts; atomic so a late [set_default_jobs] from
   another domain is still well-defined. *)
let jobs_default = Atomic.make (Pool.default_jobs ())

let set_default_jobs n =
  if n < 1 then invalid_arg "Sweep.set_default_jobs: jobs < 1";
  Atomic.set jobs_default n

let default_jobs () = Atomic.get jobs_default

let run ?jobs ?(into = Obs.Registry.default) ?(seed = 42) ?on_done ~trial
    points =
  let points = Array.of_list points in
  let n = Array.length points in
  let jobs = max 1 (min (Option.value jobs ~default:(default_jobs ())) n) in
  (* Per-trial seeds drawn up front from one stream keyed on the base
     seed: a pure function of (seed, index), independent of [jobs] and
     of scheduling. *)
  let seeds =
    let r = Netsim.Rng.of_int seed in
    Array.init n (fun _ -> Netsim.Rng.int r 0x3FFF_FFFF)
  in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Pool.map ~jobs points ~f:(fun index point ->
        let registry = Obs.Registry.create () in
        let r = trial { index; seed = seeds.(index); registry } point in
        (registry, r))
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (* Grid-order merge, from the calling domain only. *)
  Array.iter (fun (reg, _) -> Obs.Registry.merge_into ~into reg) outcomes;
  Option.iter (fun f -> f { jobs; trials = n; elapsed_s }) on_done;
  Array.to_list (Array.map snd outcomes)
