(* Tests for the Section 5 robustness machinery: foreign-agent state
   recovery, cache-loop detection and dissolution, returned ICMP error
   handling, home-agent persistence and unavailability, and the optional
   own-foreign-agent mode of Section 2. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check
let addr_testable = Alcotest.testable Addr.pp Addr.equal

type env = {
  f : TG.figure1;
  metrics : Workload.Metrics.t;
  traffic : Workload.Traffic.t;
  m_addr : Addr.t;
}

let setup ?config () =
  let f = TG.figure1 ?config () in
  let metrics = Workload.Metrics.create f.TG.topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine f.TG.topo) in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  Workload.Metrics.watch_receiver metrics f.TG.s;
  { f; metrics; traffic; m_addr = Agent.address f.TG.m }

let at env sec f = Workload.Traffic.at env.traffic (Time.of_sec sec) f

let send env sec ~src =
  at env sec (fun () ->
      Workload.Traffic.send_udp env.traffic ~src ~dst:env.m_addr ())

let move env sec lan =
  Workload.Mobility.move_at env.f.TG.topo env.f.TG.m ~at:(Time.of_sec sec)
    lan

let run ?(until = 12.0) env =
  Topology.run ~until:(Time.of_sec until) env.f.TG.topo

let records env = Workload.Metrics.records env.metrics
let delivered r = r.Workload.Metrics.delivered_at <> None

(* --- Section 5.2: foreign-agent state recovery --- *)

let fa_recovery_tests =
  [ Alcotest.test_case
      "rebooted FA recovers its visitor through the home agent" `Quick
      (fun () ->
         let env = setup () in
         move env 1.0 env.f.TG.net_d;
         send env 2.0 ~src:env.f.TG.s;
         (* R4 forgets everything *)
         at env 3.0 (fun () -> Node.reboot (Agent.node env.f.TG.r4));
         (* S still tunnels directly to R4, which bounces the packet to
            the home agent; R2 recognises R4 as the registered FA and
            sends it a location update naming itself (Section 5.2) *)
         send env 4.0 ~src:env.f.TG.s;
         send env 6.0 ~src:env.f.TG.s;
         run env;
         (match Agent.foreign_agent env.f.TG.r4 with
          | Some fa ->
            check Alcotest.bool "visitor re-added" true
              (Mhrp.Foreign_agent.mem fa env.m_addr)
          | None -> Alcotest.fail "no fa role");
         check Alcotest.int "one recovery" 1
           (Agent.counters env.f.TG.r4).Mhrp.Counters.recoveries;
         (* the packet after recovery is delivered *)
         let last = List.nth (records env) 2 in
         check Alcotest.bool "delivered after recovery" true
           (delivered last));
    Alcotest.test_case
      "reboot drops the volatile visitor list, keeps the routes" `Quick
      (fun () ->
         let env = setup () in
         move env 1.0 env.f.TG.net_d;
         at env 2.0 (fun () ->
             let r4 = Agent.node env.f.TG.r4 in
             (match Agent.foreign_agent env.f.TG.r4 with
              | Some fa ->
                check Alcotest.bool "visitor present before" true
                  (Mhrp.Foreign_agent.mem fa env.m_addr)
              | None -> Alcotest.fail "no fa role");
             let route_before =
               Net.Route.lookup (Node.routes r4)
                 (Agent.address env.f.TG.s)
             in
             Node.reboot r4;
             (match Agent.foreign_agent env.f.TG.r4 with
              | Some fa ->
                check Alcotest.bool "visitor list wiped (volatile)" false
                  (Mhrp.Foreign_agent.mem fa env.m_addr)
              | None -> Alcotest.fail "no fa role after reboot");
             check Alcotest.bool "routing table retained" true
               (Net.Route.lookup (Node.routes r4)
                  (Agent.address env.f.TG.s)
                = route_before && route_before <> None));
         run env);
    Alcotest.test_case "recovered visitor is delivered to via ARP" `Quick
      (fun () ->
         let env = setup () in
         move env 1.0 env.f.TG.net_d;
         send env 2.0 ~src:env.f.TG.s;
         at env 3.0 (fun () -> Node.reboot (Agent.node env.f.TG.r4));
         send env 4.0 ~src:env.f.TG.s;
         send env 6.0 ~src:env.f.TG.s;
         run env;
         (match Agent.foreign_agent env.f.TG.r4 with
          | Some fa ->
            (match Mhrp.Foreign_agent.find fa env.m_addr with
             | Some v ->
               check Alcotest.bool "no recorded mac" true
                 (v.Mhrp.Foreign_agent.mac = None)
             | None -> Alcotest.fail "no visitor")
          | None -> Alcotest.fail "no fa role");
         (* final packet delivered end-to-end despite the lost MAC *)
         check Alcotest.bool "delivered" true
           (delivered (List.nth (records env) 2)));
    Alcotest.test_case
      "verification mode probes before re-adding (Section 5.2)" `Quick
      (fun () ->
         let config =
           Mhrp.Config.make ~verify_recovered_visitors:true ()
         in
         let env = setup ~config () in
         move env 1.0 env.f.TG.net_d;
         send env 2.0 ~src:env.f.TG.s;
         at env 3.0 (fun () -> Node.reboot (Agent.node env.f.TG.r4));
         send env 4.0 ~src:env.f.TG.s;
         run env;
         match Agent.foreign_agent env.f.TG.r4 with
         | Some fa ->
           (match Mhrp.Foreign_agent.find fa env.m_addr with
            | Some v ->
              check Alcotest.bool "mac learned by probe" true
                (v.Mhrp.Foreign_agent.mac <> None)
            | None -> Alcotest.fail "visitor not re-added after probe")
         | None -> Alcotest.fail "no fa role");
    Alcotest.test_case "crash_for loses packets while down, then recovers"
      `Quick (fun () ->
          let env = setup () in
          move env 1.0 env.f.TG.net_d;
          send env 2.0 ~src:env.f.TG.s;
          at env 3.0 (fun () ->
              Node.crash_for (Agent.node env.f.TG.r4) (Time.of_sec 1.0));
          send env 3.5 ~src:env.f.TG.s; (* lost: FA down *)
          send env 6.0 ~src:env.f.TG.s; (* recovered *)
          run env;
          let rs = records env in
          check Alcotest.bool "first ok" true (delivered (List.nth rs 0));
          check Alcotest.bool "mid lost" true
            (not (delivered (List.nth rs 1)));
          check Alcotest.bool "last ok" true (delivered (List.nth rs 2))) ]

(* --- Section 5.3: loops --- *)

(* Manufacture a cache loop: two routers each believing the other is the
   mobile host's foreign agent. *)
let loop_tests =
  [ Alcotest.test_case "loop detected, dissolved, members purged" `Quick
      (fun () ->
         let env = setup () in
         move env 1.0 env.f.TG.net_d;
         at env 2.0 (fun () ->
             (* poison: R4 -> R5?  Use R4 and R1 as the loop members by
                planting cache entries directly (an "incorrect
                implementation" per the paper). *)
             Mhrp.Location_cache.insert (Agent.cache env.f.TG.r4)
               ~mobile:env.m_addr ~foreign_agent:(Addr.host 1 1);
             (* R1's address *)
             Mhrp.Location_cache.insert (Agent.cache env.f.TG.r1)
               ~mobile:env.m_addr ~foreign_agent:(Addr.host 3 2));
         (* remove the visitor so R4 treats arriving tunnels as stale *)
         at env 2.1 (fun () ->
             match Agent.foreign_agent env.f.TG.r4 with
             | Some fa -> Mhrp.Foreign_agent.remove fa env.m_addr
             | None -> ());
         (* S has no cache: first packet goes via home agent R2, which
            tunnels to R4 (db) -> R4 tunnels to R1 (poisoned) -> R1
            tunnels to R4 -> loop closes at R4 *)
         send env 3.0 ~src:env.f.TG.s;
         run env;
         let loops r = (Agent.counters r).Mhrp.Counters.loops_detected in
         check Alcotest.bool "someone detected the loop" true
           (loops env.f.TG.r1 + loops env.f.TG.r4 > 0);
         (* dissolution: both poisoned caches are purged *)
         check (Alcotest.option addr_testable) "R4 purged" None
           (Mhrp.Location_cache.peek (Agent.cache env.f.TG.r4) env.m_addr);
         check (Alcotest.option addr_testable) "R1 purged" None
           (Mhrp.Location_cache.peek (Agent.cache env.f.TG.r1) env.m_addr));
    Alcotest.test_case "packet survives when configured to tunnel home"
      `Quick (fun () ->
          let config =
            Mhrp.Config.make ~on_loop:Mhrp.Config.Tunnel_home ()
          in
          let env = setup ~config () in
          move env 1.0 env.f.TG.net_d;
          at env 2.0 (fun () ->
              Mhrp.Location_cache.insert (Agent.cache env.f.TG.r1)
                ~mobile:env.m_addr ~foreign_agent:(Addr.host 0 13));
          at env 2.0 (fun () ->
              Mhrp.Location_cache.insert (Agent.cache env.f.TG.r3)
                ~mobile:env.m_addr ~foreign_agent:(Addr.host 0 11));
          (* build a tunneled packet bouncing between R1 and R3 *)
          at env 3.0 (fun () ->
              let udp =
                Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.create 16)
              in
              let pkt =
                Packet.make ~id:321 ~proto:Ipv4.Proto.udp
                  ~src:(Agent.address env.f.TG.s) ~dst:env.m_addr
                  (Ipv4.Udp.encode udp)
              in
              Workload.Metrics.note_send env.metrics pkt;
              let tunneled =
                Mhrp.Encap.tunnel_by_agent ~agent:(Agent.address env.f.TG.s)
                  ~foreign_agent:(Addr.host 0 11) pkt
              in
              Node.send (Agent.node env.f.TG.s) tunneled);
          run env;
          let loops r = (Agent.counters r).Mhrp.Counters.loops_detected in
          check Alcotest.bool "loop detected" true
            (loops env.f.TG.r1 + loops env.f.TG.r3 > 0);
          (* the packet was re-tunneled home and still delivered *)
          check Alcotest.bool "delivered anyway" true
            (delivered (List.nth (records env) 0)));
    Alcotest.test_case "loop contraction under truncated lists" `Quick
      (fun () ->
         (* With a list cap smaller than the loop, detection still happens
            after contraction (Section 5.3): build a 3-agent loop with
            max_prev_sources = 2. *)
         let config =
           Mhrp.Config.make ~max_prev_sources:2 ()
         in
         let env = setup ~config () in
         move env 1.0 env.f.TG.net_d;
         let r1a = Addr.host 0 11 and r3a = Addr.host 0 13 in
         let r4a = Addr.host 3 2 in
         at env 2.0 (fun () ->
             Mhrp.Location_cache.insert (Agent.cache env.f.TG.r1)
               ~mobile:env.m_addr ~foreign_agent:r3a;
             Mhrp.Location_cache.insert (Agent.cache env.f.TG.r3)
               ~mobile:env.m_addr ~foreign_agent:r4a;
             Mhrp.Location_cache.insert (Agent.cache env.f.TG.r4)
               ~mobile:env.m_addr ~foreign_agent:r1a;
             match Agent.foreign_agent env.f.TG.r4 with
             | Some fa -> Mhrp.Foreign_agent.remove fa env.m_addr
             | None -> ());
         at env 3.0 (fun () ->
             let udp = Ipv4.Udp.make ~src_port:1 ~dst_port:2 Bytes.empty in
             let pkt =
               Packet.make ~id:99 ~proto:Ipv4.Proto.udp
                 ~src:(Agent.address env.f.TG.s) ~dst:env.m_addr
                 (Ipv4.Udp.encode udp)
             in
             Node.send (Agent.node env.f.TG.s)
               (Mhrp.Encap.tunnel_by_agent
                  ~agent:(Agent.address env.f.TG.s) ~foreign_agent:r1a
                  pkt));
         run env;
         let total f =
           f env.f.TG.r1 + f env.f.TG.r3 + f env.f.TG.r4
         in
         check Alcotest.bool "truncations happened" true
           (total (fun r ->
                (Agent.counters r).Mhrp.Counters.list_truncations)
            > 0);
         check Alcotest.bool "loop eventually detected" true
           (total (fun r ->
                (Agent.counters r).Mhrp.Counters.loops_detected)
            > 0)) ]

(* --- Section 4.5: returned ICMP errors --- *)

let icmp_error_tests =
  [ Alcotest.test_case
      "error inside a tunnel travels back to the original sender" `Quick
      (fun () ->
         let env = setup () in
         let got = ref [] in
         Agent.on_icmp_error env.f.TG.s (fun msg original ->
             got := (msg, original) :: !got);
         move env 1.0 env.f.TG.net_d;
         send env 2.0 ~src:env.f.TG.s; (* S caches R4 *)
         (* net C becomes unroutable at R3: S -> R4 tunnels die there,
            while the backbone (and thus the error's reverse path) stays
            intact *)
         at env 3.0 (fun () ->
             Node.update_routes (Agent.node env.f.TG.r3) (fun r ->
                 Net.Route.remove
                   (Net.Route.remove r (Net.Lan.prefix env.f.TG.net_c))
                   (Net.Lan.prefix env.f.TG.net_d)));
         send env 4.0 ~src:env.f.TG.s;
         run env;
         check Alcotest.bool "error reported to app" true (!got <> []);
         (* the sender's cache entry for M is gone (4.5: delete on
            unreachable) *)
         check (Alcotest.option addr_testable) "cache dropped" None
           (Mhrp.Location_cache.peek (Agent.cache env.f.TG.s) env.m_addr));
    Alcotest.test_case
      "error on a home-agent tunnel is reversed to the sender" `Quick
      (fun () ->
         (* S has no cache (snooping off so R1 does not interfere);
            packet goes via R2 which tunnels; the tunnel breaks; the ICMP
            error must come back through R2, reversed, to S *)
         let env' = TG.figure1 ~snoop_routers:false () in
         let metrics = Workload.Metrics.create env'.TG.topo in
         let traffic =
           Workload.Traffic.create metrics (Topology.engine env'.TG.topo)
         in
         Workload.Metrics.watch_receiver metrics env'.TG.m;
         let m_addr = Agent.address env'.TG.m in
         let got = ref 0 in
         Agent.on_icmp_error env'.TG.s (fun _ original ->
             match original with
             | Some o when Addr.equal o.Packet.dst m_addr -> incr got
             | _ -> ());
         Workload.Mobility.move_at env'.TG.topo env'.TG.m
           ~at:(Time.of_sec 1.0) env'.TG.net_d;
         (* break the path from R2 to R4 after registration *)
         Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
             Node.update_routes (Agent.node env'.TG.r3) (fun r ->
                 Net.Route.remove
                   (Net.Route.remove r (Net.Lan.prefix env'.TG.net_c))
                   (Net.Lan.prefix env'.TG.net_d)));
         Workload.Traffic.at traffic (Time.of_sec 3.0) (fun () ->
             Workload.Traffic.send_udp traffic ~src:env'.TG.s ~dst:m_addr
               ());
         Topology.run ~until:(Time.of_sec 10.0) env'.TG.topo;
         check Alcotest.int "reversed to original sender" 1 !got;
         check Alcotest.bool "R2 reversed a tunnel error" true
           ((Agent.counters env'.TG.r2).Mhrp.Counters.icmp_errors_reversed
            > 0)) ]

(* --- home agent availability --- *)

let ha_tests =
  [ Alcotest.test_case
      "forwarding pointers keep a moving host reachable while HA is down"
      `Quick (fun () ->
          let env = setup () in
          let net_e = Topology.add_lan env.f.TG.topo ~net:5 "netE" in
          let r5n =
            Topology.add_router env.f.TG.topo "R5"
              [(env.f.TG.net_c, 3); (net_e, 1)]
          in
          Topology.compute_routes env.f.TG.topo;
          let r5 = Agent.create r5n in
          Agent.enable_foreign_agent r5
            ~iface:(Option.get (Node.iface_to r5n (Net.Lan.prefix net_e)));
          move env 1.0 env.f.TG.net_d;
          send env 2.0 ~src:env.f.TG.s; (* S caches R4 *)
          (* home agent crashes; M moves on to R5 *)
          at env 3.0 (fun () ->
              Node.set_up (Agent.node env.f.TG.r2) false);
          move env 3.5 net_e;
          send env 5.0 ~src:env.f.TG.s;
          run env;
          (* S -> R4 (stale) -> forwarding pointer -> R5 -> M, without the
             home agent *)
          check Alcotest.bool "delivered despite HA down" true
            (delivered (List.nth (records env) 1)));
    Alcotest.test_case "persistent HA database survives reboot" `Quick
      (fun () ->
         let env = setup () in
         move env 1.0 env.f.TG.net_d;
         at env 2.0 (fun () -> Node.reboot (Agent.node env.f.TG.r2));
         send env 3.0 ~src:env.f.TG.s;
         run env;
         check Alcotest.bool "delivered via persisted db" true
           (delivered (List.nth (records env) 0)));
    Alcotest.test_case "volatile HA database loses registrations" `Quick
      (fun () ->
         let config =
           Mhrp.Config.make ~ha_persistent:false ()
         in
         let env = setup ~config () in
         move env 1.0 env.f.TG.net_d;
         at env 2.0 (fun () -> Node.reboot (Agent.node env.f.TG.r2));
         run env;
         match Agent.home_agent env.f.TG.r2 with
         | Some ha ->
           check Alcotest.bool "forgotten" false
             (Mhrp.Home_agent.serves ha env.m_addr)
         | None -> Alcotest.fail "no ha role") ]

(* --- Section 2: mobile host as its own foreign agent --- *)

let own_fa_tests =
  [ Alcotest.test_case "own-FA registration and delivery" `Quick (fun () ->
        (* net E has a plain router, no foreign agent: M brings its own *)
        let env = setup () in
        let net_e = Topology.add_lan env.f.TG.topo ~net:5 "netE" in
        let _r5 =
          Topology.add_router env.f.TG.topo "R5"
            [(env.f.TG.net_c, 3); (net_e, 1)]
        in
        Topology.compute_routes env.f.TG.topo;
        let temp = Addr.Prefix.host (Net.Lan.prefix net_e) 200 in
        at env 1.0 (fun () ->
            Agent.move_to ~topo:env.f.TG.topo ~own_fa_temp:temp env.f.TG.m
              net_e);
        send env 2.0 ~src:env.f.TG.s;
        send env 3.0 ~src:env.f.TG.s;
        run env;
        let rs = records env in
        check Alcotest.bool "first delivered (via HA)" true
          (delivered (List.nth rs 0));
        check Alcotest.bool "second delivered (direct)" true
          (delivered (List.nth rs 1));
        (* S's cache points at the temporary address, and the mobile host
           still received the packet under its home address *)
        check (Alcotest.option addr_testable) "cache holds temp"
          (Some temp)
          (Mhrp.Location_cache.peek (Agent.cache env.f.TG.s) env.m_addr);
        let second = List.nth rs 1 in
        check Alcotest.int "8-byte overhead still" 8
          (second.Workload.Metrics.max_bytes
           - second.Workload.Metrics.sent_bytes));
    Alcotest.test_case "own-FA host moving on releases the temp address"
      `Quick (fun () ->
          let env = setup () in
          let net_e = Topology.add_lan env.f.TG.topo ~net:5 "netE" in
          let _r5 =
            Topology.add_router env.f.TG.topo "R5"
              [(env.f.TG.net_c, 3); (net_e, 1)]
          in
          Topology.compute_routes env.f.TG.topo;
          let temp = Addr.Prefix.host (Net.Lan.prefix net_e) 200 in
          at env 1.0 (fun () ->
              Agent.move_to ~topo:env.f.TG.topo ~own_fa_temp:temp
                env.f.TG.m net_e);
          move env 2.0 env.f.TG.net_d;
          send env 3.0 ~src:env.f.TG.s;
          run env;
          check Alcotest.bool "temp released" false
            (Node.has_address (Agent.node env.f.TG.m) temp);
          check Alcotest.bool "delivered at new cell" true
            (delivered (List.nth (records env) 0))) ]

let suite =
  [ ("fa-recovery", fa_recovery_tests); ("loops", loop_tests);
    ("icmp-errors", icmp_error_tests); ("home-agent", ha_tests);
    ("own-fa", own_fa_tests) ]
