(* Tests for the authentication subsystem: SipHash known-answer vectors,
   extension wire format, replay-window edge cases, security-association
   verdicts, and the authenticated control plane end to end. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen
module Siphash = Auth.Siphash
module Extension = Auth.Extension
module Replay = Auth.Replay
module Sa_table = Auth.Sa_table

let check = Alcotest.check

let int64 =
  Alcotest.testable
    (fun ppf v -> Format.fprintf ppf "%016Lx" v)
    Int64.equal

(* --- SipHash-2-4 --- *)

(* Reference vectors from the SipHash paper's test program: key
   000102...0f, messages 00, 00 01, 00 01 02, ... *)
let reference_key = Siphash.key ~k0:0x0706050403020100L ~k1:0x0f0e0d0c0b0a0908L

let reference_vectors =
  [ (0, 0x726fdb47dd0e0e31L);
    (1, 0x74f839c593dc67fdL);
    (2, 0x0d6c8009d9a94f5aL);
    (3, 0x85676696d7fb7e2dL);
    (4, 0xcf2794e0277187b7L);
    (5, 0x18765564cd99a68dL);
    (6, 0xcbc9466e58fee3ceL);
    (7, 0xab0200f58b01d137L);
    (8, 0x93f5f5799a932462L);
    (15, 0xa129ca6149be45e5L) ]

let siphash_tests =
  [ Alcotest.test_case "known-answer vectors" `Quick (fun () ->
        List.iter
          (fun (len, expect) ->
             check int64 (Printf.sprintf "len %d" len) expect
               (Siphash.mac reference_key (Bytes.init len Char.chr)))
          reference_vectors);
    Alcotest.test_case "key separates" `Quick (fun () ->
        let msg = Bytes.of_string "location update" in
        let k1 = Siphash.of_string "alpha" and k2 = Siphash.of_string "beta" in
        check Alcotest.bool "different keys, different macs" false
          (Int64.equal (Siphash.mac k1 msg) (Siphash.mac k2 msg)));
    Alcotest.test_case "of_string pads and truncates" `Quick (fun () ->
        let full = Siphash.of_string "0123456789abcdefEXTRA" in
        let same = Siphash.of_string "0123456789abcdef" in
        let msg = Bytes.of_string "x" in
        check int64 "first 16 bytes only" (Siphash.mac same msg)
          (Siphash.mac full msg)) ]

(* --- extension wire format --- *)

let sample_key = Siphash.of_string "test-key"

let sample_ext payload =
  Extension.sign ~key:sample_key ~spi:7 ~timestamp:(Time.of_ms 1500)
    ~nonce:42L payload

let extension_tests =
  [ Alcotest.test_case "roundtrip" `Quick (fun () ->
        let payload = Bytes.of_string "registration bytes" in
        let ext = sample_ext payload in
        let buf = Extension.encode ext in
        check Alcotest.int "length" Extension.length (Bytes.length buf);
        match Extension.decode buf with
        | None -> Alcotest.fail "decode failed"
        | Some ext' ->
          check Alcotest.int "spi" ext.Extension.spi ext'.Extension.spi;
          check Alcotest.int "timestamp"
            (Time.to_us ext.Extension.timestamp)
            (Time.to_us ext'.Extension.timestamp);
          check int64 "nonce" ext.Extension.nonce ext'.Extension.nonce;
          check int64 "mac" ext.Extension.mac ext'.Extension.mac;
          check Alcotest.bool "verifies" true
            (Extension.verify ~key:sample_key payload ext'));
    Alcotest.test_case "split takes the trailing extension" `Quick (fun () ->
        let payload = Bytes.of_string "message" in
        let ext = sample_ext payload in
        let wire = Bytes.cat payload (Extension.encode ext) in
        (match Extension.split wire with
         | None -> Alcotest.fail "split failed"
         | Some (prefix, ext') ->
           check Alcotest.string "payload preserved" "message"
             (Bytes.to_string prefix);
           check int64 "mac preserved" ext.Extension.mac ext'.Extension.mac);
        check Alcotest.bool "bare payload has no extension" true
          (Extension.split payload = None));
    Alcotest.test_case "tampering breaks the mac" `Quick (fun () ->
        let payload = Bytes.of_string "mobile at fa" in
        let ext = sample_ext payload in
        let flipped = Bytes.copy payload in
        Bytes.set flipped 0 'M';
        check Alcotest.bool "payload tamper" false
          (Extension.verify ~key:sample_key flipped ext);
        check Alcotest.bool "spi tamper" false
          (Extension.verify ~key:sample_key payload
             { ext with Extension.spi = 8 });
        check Alcotest.bool "timestamp tamper" false
          (Extension.verify ~key:sample_key payload
             { ext with Extension.timestamp = Time.of_ms 1501 });
        check Alcotest.bool "nonce tamper" false
          (Extension.verify ~key:sample_key payload
             { ext with Extension.nonce = 43L });
        check Alcotest.bool "wrong key" false
          (Extension.verify ~key:(Siphash.of_string "other") payload ext));
    Alcotest.test_case "decode rejects malformed" `Quick (fun () ->
        let ext = sample_ext Bytes.empty in
        let buf = Extension.encode ext in
        let wrong_type = Bytes.copy buf in
        Bytes.set wrong_type 0 '\033';
        check Alcotest.bool "wrong type" true
          (Extension.decode wrong_type = None);
        let wrong_len = Bytes.copy buf in
        Bytes.set wrong_len 1 '\027';
        check Alcotest.bool "wrong length byte" true
          (Extension.decode wrong_len = None);
        check Alcotest.bool "truncated" true
          (Extension.decode (Bytes.sub buf 0 (Extension.length - 1)) = None);
        let bad_ts = Bytes.copy buf in
        Bytes.set bad_ts 6 '\255' (* timestamp sign bit *);
        check Alcotest.bool "unrepresentable timestamp" true
          (Extension.decode bad_ts = None)) ]

(* --- replay window --- *)

let verdict =
  Alcotest.testable Replay.pp_verdict (fun a b -> a = b)

let replay_tests =
  [ Alcotest.test_case "fresh then replayed" `Quick (fun () ->
        let r = Replay.create ~window:(Time.of_sec 2.0) ~capacity:8 in
        let now = Time.of_sec 10.0 in
        check verdict "first" Replay.Fresh
          (Replay.check r ~now ~timestamp:now ~nonce:1L);
        check verdict "second" Replay.Replayed_nonce
          (Replay.check r ~now ~timestamp:now ~nonce:1L));
    Alcotest.test_case "timestamp window boundary" `Quick (fun () ->
        let window = Time.of_sec 2.0 in
        let r = Replay.create ~window ~capacity:8 in
        let now = Time.of_sec 10.0 in
        check verdict "exactly window old" Replay.Fresh
          (Replay.check r ~now ~timestamp:(Time.diff now window) ~nonce:1L);
        check verdict "one us older" Replay.Stale_timestamp
          (Replay.check r ~now
             ~timestamp:(Time.diff now (Time.add window (Time.of_us 1)))
             ~nonce:2L);
        check verdict "future inside window" Replay.Fresh
          (Replay.check r ~now ~timestamp:(Time.add now window) ~nonce:3L);
        check verdict "future beyond window" Replay.Stale_timestamp
          (Replay.check r ~now
             ~timestamp:(Time.add now (Time.add window (Time.of_us 1)))
             ~nonce:4L));
    Alcotest.test_case "nonces age out by time, not by count" `Quick (fun () ->
        let window = Time.of_sec 2.0 in
        let r = Replay.create ~window ~capacity:2 in
        let t0 = Time.of_sec 10.0 in
        check verdict "recorded" Replay.Fresh
          (Replay.check r ~now:t0 ~timestamp:t0 ~nonce:1L);
        (* Caught while any in-window timestamp could still carry it... *)
        let mid = Time.add t0 window in
        check verdict "replay at ts+window" Replay.Replayed_nonce
          (Replay.check r ~now:mid ~timestamp:mid ~nonce:1L);
        (* ...dead once [now > ts + 2*window], and actually evicted. *)
        let late =
          Time.add t0 (Time.add (Time.add window window) (Time.of_us 1))
        in
        check verdict "fresh again after expiry" Replay.Fresh
          (Replay.check r ~now:late ~timestamp:late ~nonce:1L);
        check Alcotest.int "expired entry dropped" 1 (Replay.size r));
    Alcotest.test_case "a fresh burst cannot flush a replayable nonce" `Quick
      (fun () ->
        (* Regression: FIFO eviction after [capacity] inserts let an
           attacker flush a captured message's nonce with fresh traffic
           and replay it while its timestamp was still inside the
           window (the old code answered Fresh here). *)
        let r = Replay.create ~window:(Time.of_sec 60.0) ~capacity:2 in
        let now = Time.of_sec 10.0 in
        let chk = Replay.check r ~now ~timestamp:now in
        check verdict "capture" Replay.Fresh (chk ~nonce:1L);
        for k = 2 to 9 do
          check verdict "burst" Replay.Fresh (chk ~nonce:(Int64.of_int k))
        done;
        check verdict "replay still caught" Replay.Replayed_nonce
          (chk ~nonce:1L);
        check Alcotest.int "all nonces live" 9 (Replay.size r));
    Alcotest.test_case "rejections leave no trace" `Quick (fun () ->
        let r = Replay.create ~window:(Time.of_sec 2.0) ~capacity:2 in
        let now = Time.of_sec 10.0 in
        (* A stale message must not record its nonce... *)
        check verdict "stale" Replay.Stale_timestamp
          (Replay.check r ~now ~timestamp:Time.zero ~nonce:9L);
        check verdict "same nonce, fresh timestamp" Replay.Fresh
          (Replay.check r ~now ~timestamp:now ~nonce:9L);
        (* ...and replays must not evict the nonces that catch them. *)
        check verdict "fill" Replay.Fresh
          (Replay.check r ~now ~timestamp:now ~nonce:10L);
        check verdict "replay 9" Replay.Replayed_nonce
          (Replay.check r ~now ~timestamp:now ~nonce:9L);
        check verdict "replay 10" Replay.Replayed_nonce
          (Replay.check r ~now ~timestamp:now ~nonce:10L)) ]

(* --- security-association table --- *)

let sa_verdict = Alcotest.testable Sa_table.pp_verdict (fun a b -> a = b)

let mobile = Addr.host 2 10

let sa_tests =
  [ Alcotest.test_case "verdicts" `Quick (fun () ->
        let t = Sa_table.create ~window:(Time.of_sec 2.0) ~capacity:8 in
        let now = Time.of_sec 5.0 in
        let payload = Bytes.of_string "msg" in
        let sign ?(key = sample_key) ?(spi = 7) ?(timestamp = now) ?(nonce = 1L)
            () =
          Extension.sign ~key ~spi ~timestamp ~nonce payload
        in
        check sa_verdict "no association" Sa_table.No_sa
          (Sa_table.verify t ~mobile ~now ~payload (sign ()));
        Sa_table.install t ~mobile ~spi:7 ~key:sample_key;
        check sa_verdict "ok" Sa_table.Ok
          (Sa_table.verify t ~mobile ~now ~payload (sign ()));
        check sa_verdict "replayed" Sa_table.Replayed
          (Sa_table.verify t ~mobile ~now ~payload (sign ()));
        check sa_verdict "wrong spi" Sa_table.Bad_spi
          (Sa_table.verify t ~mobile ~now ~payload (sign ~spi:8 ~nonce:2L ()));
        check sa_verdict "wrong key" Sa_table.Bad_mac
          (Sa_table.verify t ~mobile ~now ~payload
             (sign ~key:(Siphash.of_string "other") ~nonce:2L ()));
        check sa_verdict "stale" Sa_table.Stale
          (Sa_table.verify t ~mobile ~now ~payload
             (sign ~timestamp:Time.zero ~nonce:2L ())));
    Alcotest.test_case "forgeries cannot poison replay state" `Quick
      (fun () ->
        let t = Sa_table.create ~window:(Time.of_sec 2.0) ~capacity:8 in
        let now = Time.of_sec 5.0 in
        let payload = Bytes.of_string "msg" in
        Sa_table.install t ~mobile ~spi:7 ~key:sample_key;
        (* Attacker guesses the victim's next nonce but not the key: the
           bad MAC must be rejected before the nonce is recorded. *)
        let forged =
          Extension.sign ~key:(Siphash.of_string "guess") ~spi:7
            ~timestamp:now ~nonce:5L payload
        in
        check sa_verdict "forged" Sa_table.Bad_mac
          (Sa_table.verify t ~mobile ~now ~payload forged);
        let genuine =
          Extension.sign ~key:sample_key ~spi:7 ~timestamp:now ~nonce:5L
            payload
        in
        check sa_verdict "genuine still fresh" Sa_table.Ok
          (Sa_table.verify t ~mobile ~now ~payload genuine)) ]

(* --- the authenticated control plane end to end --- *)

let auth_config =
  Mhrp.Config.make ~authenticate:true ()

let agents f = TG.[ f.s; f.m; f.r1; f.r2; f.r3; f.r4 ]

let install_keys f =
  let key = Siphash.of_string "e2e shared secret" in
  let mobile = Agent.address f.TG.m in
  List.iter (fun a -> Agent.install_key a ~mobile ~spi:3 ~key) (agents f)

let sum_counters f field =
  List.fold_left (fun acc a -> acc + field (Agent.counters a)) 0 (agents f)

let integration_tests =
  [ Alcotest.test_case "authenticated handoff still works" `Quick (fun () ->
        let f = TG.figure1 ~config:auth_config () in
        Netsim.Trace.set_enabled (Topology.trace f.TG.topo) false;
        install_keys f;
        let metrics = Workload.Metrics.create f.TG.topo in
        let traffic =
          Workload.Traffic.create metrics (Topology.engine f.TG.topo)
        in
        Workload.Metrics.watch_receiver metrics f.TG.m;
        let m_addr = Agent.address f.TG.m in
        Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 1.0)
          f.TG.net_d;
        Workload.Traffic.at traffic (Time.of_sec 3.0) (fun () ->
            Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m_addr ());
        Topology.run ~until:(Time.of_sec 6.0) f.TG.topo;
        check Alcotest.int "packet delivered while away" 1
          (List.length (Workload.Metrics.delivered metrics));
        check Alcotest.bool "registration verified" true
          ((Agent.counters f.TG.r2).Mhrp.Counters.auth_ok > 0);
        check Alcotest.int "nothing rejected" 0
          (sum_counters f (fun c -> c.Mhrp.Counters.auth_fail)
           + sum_counters f (fun c -> c.Mhrp.Counters.replay_drop)));
    Alcotest.test_case "forged registration is rejected" `Quick (fun () ->
        let f = TG.figure1 ~config:auth_config () in
        Netsim.Trace.set_enabled (Topology.trace f.TG.topo) false;
        install_keys f;
        let xn = Topology.add_host f.TG.topo "X" f.TG.net_c 66 in
        Topology.compute_routes f.TG.topo;
        let m_addr = Agent.address f.TG.m in
        let adv = Auth.Adversary.create ~victim:m_addr xn in
        ignore
          (Netsim.Engine.schedule_after (Topology.engine f.TG.topo)
             ~delay:(Time.of_sec 2.0) (fun () ->
                 Auth.Adversary.forge_registration adv
                   ~home_agent:(Agent.address f.TG.r2)
                   ~foreign_agent:(Node.primary_addr xn)));
        Topology.run ~until:(Time.of_sec 4.0) f.TG.topo;
        check Alcotest.int "rejected at the home agent" 1
          (Agent.counters f.TG.r2).Mhrp.Counters.auth_fail;
        (match Agent.home_agent f.TG.r2 with
         | Some ha ->
           check Alcotest.bool "database untouched" true
             (Mhrp.Home_agent.location ha m_addr = Some Addr.zero)
         | None -> Alcotest.fail "r2 is not a home agent")) ]

let suite =
  [ ("auth-siphash", siphash_tests);
    ("auth-extension", extension_tests);
    ("auth-replay", replay_tests);
    ("auth-sa-table", sa_tests);
    ("auth-integration", integration_tests) ]
