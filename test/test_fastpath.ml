(* The zero-copy forwarding fast path (DESIGN.md Section 11): the
   in-place header rewrite and pool-backed encap must be byte-equivalent
   to the classical decode -> rebuild -> encode paths, the view decoders
   must be total on hostile bytes, and a transit chain must produce
   byte-identical traffic whether or not the fast path engages. *)

module Time = Netsim.Time
module Rng = Netsim.Rng
module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module View = Ipv4.Packet.View
module Node = Net.Node
module Topology = Net.Topology

let qtest = QCheck_alcotest.to_alcotest
let arb_seed = QCheck.(make ~print:string_of_int Gen.(int_bound 1_000_000))

(* A random packet: fields, fragmentation bits, options and payload all
   derived from one printable seed. *)
let mk_packet ?(options = true) rng =
  let opts =
    if not options then []
    else
      match Rng.int rng 4 with
      | 0 -> [Ipv4.Ip_option.lsrr [Addr.host 9 1; Addr.host 9 2]]
      | 1 -> [Ipv4.Ip_option.Nop; Ipv4.Ip_option.lsrr [Addr.host 9 3]]
      | _ -> []
  in
  let more_fragments = Rng.int rng 4 = 0 in
  Packet.make ~tos:(Rng.int rng 256) ~id:(Rng.int rng 0x10000)
    ~dont_fragment:(Rng.int rng 4 = 0 && not more_fragments)
    ~more_fragments
    ~frag_offset:(8 * Rng.int rng 16)
    ~ttl:(1 + Rng.int rng 255)
    ~proto:(Rng.int rng 256)
    ~src:(Addr.host (Rng.int rng 200) (1 + Rng.int rng 250))
    ~dst:(Addr.host (Rng.int rng 200) (1 + Rng.int rng 250))
    (Bytes.init (Rng.int rng 201) (fun _ -> Char.chr (Rng.int rng 256)))
    ~options:opts

(* In-place TTL rewrite == decode -> mutate -> re-encode, bit for bit,
   for arbitrary headers (with and without options). *)
let patch_equals_reencode seed =
  let rng = Rng.of_int seed in
  let p = mk_packet rng in
  let wire = Packet.encode p in
  let new_ttl = Rng.int rng 256 in
  let a = Bytes.copy wire in
  let va = View.make a in
  View.valid va
  && (View.decr_ttl va;
      Bytes.equal a
        (Packet.encode { p with Ipv4.Packet.ttl = p.Ipv4.Packet.ttl - 1 }))
  && (let b = Bytes.copy wire in
      let vb = View.make b in
      View.set_ttl vb new_ttl;
      Bytes.equal b (Packet.encode { p with Ipv4.Packet.ttl = new_ttl }))

(* Checksum.update == zero-and-recompute after any single word change,
   on any header-like range (first byte pinned non-zero, as in real IPv4
   headers — the documented precondition). *)
let update_equals_set seed =
  let rng = Rng.of_int seed in
  let len = 20 + (2 * Rng.int rng 21) in
  let buf = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
  Bytes.set buf 0 '\x45';
  Ipv4.Checksum.set buf ~at:10 ~off:0 ~len;
  let i =
    let i = 2 + (2 * Rng.int rng ((len / 2) - 2)) in
    if i = 10 then 12 else i
  in
  let new_word = Rng.int rng 0x10000 in
  let a = Bytes.copy buf and b = Bytes.copy buf in
  let old_word = Bytes.get_uint16_be a i in
  Bytes.set_uint16_be a i new_word;
  Ipv4.Checksum.update a ~at:10 ~old_word ~new_word;
  Bytes.set_uint16_be b i new_word;
  Ipv4.Checksum.set b ~at:10 ~off:0 ~len;
  Bytes.equal a b

(* View.valid and View.decode_prefix never raise on arbitrary bytes at
   arbitrary offsets; a valid option-free whole-buffer view decodes. *)
let view_total s =
  let buf = Bytes.of_string s in
  let n = Bytes.length buf in
  let check off len =
    let v = View.make ~off ~len buf in
    let no_raise name f =
      match f () with
      | _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "%s raised %s on %S off=%d len=%d" name
          (Printexc.to_string e) s off len
    in
    no_raise "View.valid" (fun () -> View.valid v)
    && no_raise "View.decode_prefix" (fun () -> View.decode_prefix v)
    && (not
          (View.valid v
           && (not (View.has_options v))
           && View.total_length v = View.length v)
        ||
        match View.decode v with
        | _ -> true
        | exception e ->
          QCheck.Test.fail_reportf
            "View.decode raised %s on a valid view of %S"
            (Printexc.to_string e) s)
  in
  check 0 n && (n < 3 || check (n / 3) (n - (n / 3)))

(* Pool-backed wire-level encap/decap == record-based encap/decap. *)
let encap_into_equals_record seed =
  let rng = Rng.of_int seed in
  let p = mk_packet ~options:false rng in
  let wire = Packet.encode p in
  let v = View.make wire in
  let pool = Ipv4.Buffer_pool.create () in
  let agent = Addr.host 3 1 and foreign_agent = Addr.host 4 1 in
  let by_agent = Mhrp.Encap.tunnel_by_agent ~agent ~foreign_agent p in
  let ok_agent =
    Bytes.equal
      (Mhrp.Encap.tunnel_by_agent_into ~pool ~agent ~foreign_agent v)
      (Packet.encode by_agent)
  in
  let ok_sender =
    Bytes.equal
      (Mhrp.Encap.tunnel_by_sender_into ~pool ~foreign_agent v)
      (Packet.encode (Mhrp.Encap.tunnel_by_sender ~foreign_agent p))
  in
  let ok_detunnel =
    match
      ( Mhrp.Encap.detunnel_into ~pool (View.make (Packet.encode by_agent)),
        Mhrp.Encap.detunnel by_agent )
    with
    | Some (buf, h), Some (orig, h') ->
      Bytes.equal buf (Packet.encode orig) && Mhrp.Mhrp_header.equal h h'
    | None, None -> true
    | _ -> false
  in
  (* a non-tunneled packet must detunnel to None on both paths — unless
     its payload happens to parse as a well-formed MHRP header, in
     which case both must agree byte for byte *)
  let ok_plain =
    match Mhrp.Encap.detunnel_into ~pool v, Mhrp.Encap.detunnel p with
    | None, None -> true
    | Some (buf, h), Some (orig, h') ->
      Bytes.equal buf (Packet.encode orig) && Mhrp.Mhrp_header.equal h h'
    | _ -> false
  in
  ok_agent && ok_sender && ok_detunnel && ok_plain

(* --- end-to-end: a transit chain with the fast path on vs off ------ *)

type chain_result = {
  captured : (Addr.t * Addr.t * int * int * string) list;  (* src,dst,id,ttl,payload *)
  forwarded : int list;
  fast : int list;
  dropped : int list;
  delivered : int;
}

(* S - R1 - R2 - D over three LANs; [slow] forces the classical path
   with a no-op forward tap, exactly how metric-bearing experiments do.
   [sends] runs at 1s against the sender and receiver addresses. *)
let chain_run ?(mid_mtu = 1500) ~slow sends =
  let topo = Topology.create ~seed:5 () in
  Netsim.Trace.set_enabled (Topology.trace topo) false;
  let a = Topology.add_lan topo ~net:1 "netA" in
  let b = Topology.add_lan topo ~mtu:mid_mtu ~net:2 "netB" in
  let c = Topology.add_lan topo ~net:3 "netC" in
  let r1 = Topology.add_router topo "R1" [(a, 1); (b, 1)] in
  let r2 = Topology.add_router topo "R2" [(b, 2); (c, 1)] in
  let s = Topology.add_host topo "S" a 10 in
  let d = Topology.add_host topo "D" c 10 in
  Topology.compute_routes topo;
  if slow then begin
    Node.on_forward r1 (fun _ _ -> ());
    Node.on_forward r2 (fun _ _ -> ())
  end;
  let captured = ref [] in
  Node.set_proto_handler d Ipv4.Proto.udp (fun _ pkt ->
      captured :=
        ( pkt.Ipv4.Packet.src, pkt.Ipv4.Packet.dst, pkt.Ipv4.Packet.id,
          pkt.Ipv4.Packet.ttl, Bytes.to_string pkt.Ipv4.Packet.payload )
        :: !captured);
  ignore
    (Netsim.Engine.schedule (Topology.engine topo) ~at:(Time.of_sec 1.0)
       (fun () -> sends s (Node.primary_addr s) (Node.primary_addr d)));
  Topology.run ~until:(Time.of_sec 10.0) topo;
  { captured = List.rev !captured;
    forwarded = [Node.packets_forwarded r1; Node.packets_forwarded r2];
    fast = [Node.packets_fast_forwarded r1; Node.packets_fast_forwarded r2];
    dropped =
      List.map Node.packets_dropped [r1; r2; s; d];
    delivered = Node.packets_delivered d }

let send_mixed s src dst =
  for i = 1 to 30 do
    (* payload sizes, ids and TTLs vary; ttl=1 exercises time-exceeded
       at R1, ttl=2 at R2 — both fall off the fast path by design *)
    let ttl = match i mod 3 with 0 -> 1 | 1 -> 2 | _ -> 64 in
    Node.send s
      (Packet.make ~id:i ~ttl ~proto:Ipv4.Proto.udp ~src ~dst
         (Ipv4.Udp.encode
            (Ipv4.Udp.make ~src_port:1 ~dst_port:2
               (Bytes.make (7 * i mod 120) 'x'))))
  done

let chains_equivalent () =
  let fast = chain_run ~slow:false send_mixed in
  let slow = chain_run ~slow:true send_mixed in
  Alcotest.(check int) "delivered" slow.delivered fast.delivered;
  Alcotest.(check (list int)) "forwarded" slow.forwarded fast.forwarded;
  Alcotest.(check (list int)) "dropped" slow.dropped fast.dropped;
  Alcotest.(check bool) "traffic byte-identical" true
    (fast.captured = slow.captured);
  (* every transit of a forwardable packet took the fast path... *)
  Alcotest.(check (list int)) "fast path engaged" fast.forwarded fast.fast;
  (* ...and none did with a tap installed *)
  Alcotest.(check (list int)) "fast path disengaged" [0; 0] slow.fast

let send_big s src dst =
  Node.send s
    (Packet.make ~id:77 ~proto:Ipv4.Proto.udp ~src ~dst
       (Ipv4.Udp.encode
          (Ipv4.Udp.make ~src_port:1 ~dst_port:2 (Bytes.make 300 'y'))))

(* A small egress MTU forces fragmentation at R1: the fast path must
   fall back to the classical emit and the reassembled delivery must be
   identical in both modes. *)
let fragmentation_falls_back () =
  let fast = chain_run ~mid_mtu:128 ~slow:false send_big in
  let slow = chain_run ~mid_mtu:128 ~slow:true send_big in
  Alcotest.(check bool) "delivered whole" true (fast.delivered >= 1);
  Alcotest.(check bool) "traffic byte-identical" true
    (fast.captured = slow.captured);
  Alcotest.(check (list int)) "forwarded" slow.forwarded fast.forwarded

let suite =
  [ ( "fastpath",
      [ qtest
          (QCheck.Test.make
             ~name:"in-place TTL patch == decode/mutate/re-encode"
             ~count:300 arb_seed patch_equals_reencode);
        qtest
          (QCheck.Test.make
             ~name:"Checksum.update == full recompute" ~count:300 arb_seed
             update_equals_set);
        qtest
          (QCheck.Test.make
             ~name:"View.valid/decode_prefix total on arbitrary bytes"
             ~count:500
             QCheck.(string_of_size Gen.(int_range 0 64))
             view_total);
        qtest
          (QCheck.Test.make
             ~name:"pool-backed encap/decap == record encap/decap"
             ~count:200 arb_seed encap_into_equals_record);
        Alcotest.test_case "fast and slow chains are byte-equivalent"
          `Quick chains_equivalent;
        Alcotest.test_case "egress fragmentation falls back cleanly"
          `Quick fragmentation_falls_back ] ) ]
