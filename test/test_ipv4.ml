(* Tests for the wire-level IP substrate: addresses, checksums, options,
   packet/transport/ICMP codecs. *)

module Addr = Ipv4.Addr
module Packet = Ipv4.Packet
module Icmp = Ipv4.Icmp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let addr_testable = Alcotest.testable Addr.pp Addr.equal

let arb_addr =
  QCheck.map
    (fun n -> Addr.of_int (n land 0xFFFF_FFFF))
    QCheck.(int_bound 0x3FFFFFFF)

(* --- Addr --- *)

let addr_tests =
  [ Alcotest.test_case "parse and print" `Quick (fun () ->
        check Alcotest.string "print" "10.1.2.3"
          (Addr.to_string (Addr.of_string "10.1.2.3"));
        check addr_testable "octets"
          (Addr.of_octets 192 168 0 1)
          (Addr.of_string "192.168.0.1"));
    Alcotest.test_case "malformed strings rejected" `Quick (fun () ->
        List.iter
          (fun s ->
             check (Alcotest.option addr_testable) s None
               (Addr.of_string_opt s))
          ["1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "1..2.3"; "";
           "1.2.3.-4"; "01x.2.3.4"]);
    Alcotest.test_case "range checks" `Quick (fun () ->
        Alcotest.check_raises "of_int"
          (Invalid_argument "Addr.of_int: out of range") (fun () ->
            ignore (Addr.of_int (-1)));
        Alcotest.check_raises "octets" (Invalid_argument "Addr.of_octets")
          (fun () -> ignore (Addr.of_octets 300 0 0 0)));
    Alcotest.test_case "prefix membership" `Quick (fun () ->
        let p = Addr.Prefix.of_string "10.0.5.0/24" in
        check Alcotest.bool "in" true
          (Addr.Prefix.mem (Addr.of_string "10.0.5.200") p);
        check Alcotest.bool "out" false
          (Addr.Prefix.mem (Addr.of_string "10.0.6.1") p);
        check Alcotest.bool "zero-length matches all" true
          (Addr.Prefix.mem (Addr.of_string "1.2.3.4")
             (Addr.Prefix.make Addr.zero 0)));
    Alcotest.test_case "prefix host addressing" `Quick (fun () ->
        let p = Addr.net 3 in
        check Alcotest.string "net" "10.0.3.0/24" (Addr.Prefix.to_string p);
        check addr_testable "host" (Addr.of_string "10.0.3.17")
          (Addr.Prefix.host p 17);
        Alcotest.check_raises "overflow"
          (Invalid_argument "Prefix.host: host number out of range")
          (fun () -> ignore (Addr.Prefix.host p 256)));
    Alcotest.test_case "net_of recovers network id" `Quick (fun () ->
        check (Alcotest.option Alcotest.int) "id" (Some 600)
          (Addr.net_of (Addr.host 600 9));
        check (Alcotest.option Alcotest.int) "foreign" None
          (Addr.net_of (Addr.of_string "11.0.0.1")));
    qtest
      (QCheck.Test.make ~name:"addr string roundtrip" ~count:300 arb_addr
         (fun a -> Addr.equal a (Addr.of_string (Addr.to_string a))));
    qtest
      (QCheck.Test.make ~name:"prefix masking idempotent" ~count:300
         QCheck.(pair arb_addr (int_range 0 32))
         (fun (a, len) ->
            let p = Addr.Prefix.make a len in
            Addr.Prefix.equal p (Addr.Prefix.make (p.Addr.Prefix.base) len))) ]

(* --- Checksum --- *)

let checksum_tests =
  [ Alcotest.test_case "known vector" `Quick (fun () ->
        (* classic RFC 1071 example *)
        let buf =
          Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7"
        in
        check Alcotest.int "sum" (lnot 0xddf2 land 0xFFFF)
          (Ipv4.Checksum.of_bytes buf));
    Alcotest.test_case "set then valid" `Quick (fun () ->
        let buf = Bytes.of_string "abcdefgh\x00\x00ijkl" in
        Ipv4.Checksum.set buf ~at:8 ~off:0 ~len:(Bytes.length buf);
        check Alcotest.bool "valid" true (Ipv4.Checksum.valid buf));
    Alcotest.test_case "corruption detected" `Quick (fun () ->
        let buf = Bytes.of_string "abcdefgh\x00\x00ijkl" in
        Ipv4.Checksum.set buf ~at:8 ~off:0 ~len:(Bytes.length buf);
        Bytes.set buf 0 'X';
        check Alcotest.bool "invalid" false (Ipv4.Checksum.valid buf));
    qtest
      (QCheck.Test.make ~name:"set always validates (any bytes, odd too)"
         ~count:300
         QCheck.(string_of_size Gen.(int_range 2 100))
         (fun s ->
            let buf = Bytes.of_string s in
            Ipv4.Checksum.set buf ~at:0 ~off:0 ~len:(Bytes.length buf);
            Ipv4.Checksum.valid buf));
    Alcotest.test_case "odd length pads the final byte with zero" `Quick
      (fun () ->
         (* the RFC 1071 virtual trailing zero byte: an odd buffer and
            its explicitly zero-padded twin must checksum identically *)
         let odd = Bytes.of_string "\x12\x34\x56\x78\x9a" in
         let padded = Bytes.of_string "\x12\x34\x56\x78\x9a\x00" in
         check Alcotest.int "same sum" (Ipv4.Checksum.of_bytes padded)
           (Ipv4.Checksum.of_bytes odd));
    Alcotest.test_case "set/valid round-trip at alignments 0-3" `Quick
      (fun () ->
         (* the word loop must not assume the region starts on an even
            index: slide an 11-byte (odd) and a 12-byte (even) region
            across offsets 0..3 *)
         List.iter
           (fun off ->
              List.iter
                (fun len ->
                   let buf = Bytes.create (off + len + 2) in
                   Bytes.iteri
                     (fun i _ ->
                        Bytes.set buf i (Char.chr ((i * 37 + 11) land 0xFF)))
                     buf;
                   Ipv4.Checksum.set buf ~at:off ~off ~len;
                   check Alcotest.bool
                     (Printf.sprintf "valid off=%d len=%d" off len) true
                     (Ipv4.Checksum.valid ~off ~len buf))
                [10; 11; 12; 13])
           [0; 1; 2; 3]) ]

(* --- IP options (LSRR) --- *)

let option_tests =
  [ Alcotest.test_case "lsrr encode/decode roundtrip" `Quick (fun () ->
        let o =
          Ipv4.Ip_option.lsrr
            [Addr.of_string "10.0.1.1"; Addr.of_string "10.0.2.1"]
        in
        let bytes = Ipv4.Ip_option.encode_all [o] in
        check Alcotest.int "padded to 4" 0 (Bytes.length bytes mod 4);
        match Ipv4.Ip_option.decode_all bytes with
        | [Ipv4.Ip_option.Lsrr { pointer; route }] ->
          check Alcotest.int "pointer" 4 pointer;
          check Alcotest.int "entries" 2 (Array.length route);
          check addr_testable "first" (Addr.of_string "10.0.1.1") route.(0)
        | _ -> Alcotest.fail "wrong decode");
    Alcotest.test_case "lsrr_next walks and exhausts" `Quick (fun () ->
        let o = Ipv4.Ip_option.lsrr [Addr.of_string "1.1.1.1"] in
        (match Ipv4.Ip_option.lsrr_next o with
         | Some (hop, o') ->
           check addr_testable "hop" (Addr.of_string "1.1.1.1") hop;
           check Alcotest.bool "exhausted" true
             (Ipv4.Ip_option.lsrr_exhausted o');
           check (Alcotest.option Alcotest.unit) "no more" None
             (Option.map (fun _ -> ()) (Ipv4.Ip_option.lsrr_next o'))
         | None -> Alcotest.fail "expected a hop"));
    Alcotest.test_case "nop and padding" `Quick (fun () ->
        let bytes =
          Ipv4.Ip_option.encode_all
            [Ipv4.Ip_option.Nop; Ipv4.Ip_option.Nop]
        in
        check Alcotest.int "padded" 4 (Bytes.length bytes);
        check Alcotest.int "decoded" 2
          (List.length (Ipv4.Ip_option.decode_all bytes)));
    Alcotest.test_case "oversized options rejected" `Quick (fun () ->
        let addrs = List.init 12 (fun i -> Addr.host 1 i) in
        Alcotest.check_raises "too long"
          (Invalid_argument "Ip_option.encode_all: options too long")
          (fun () ->
             ignore (Ipv4.Ip_option.encode_all [Ipv4.Ip_option.lsrr addrs]))) ]

(* --- Packet --- *)

let arb_payload = QCheck.(string_of_size Gen.(int_range 0 200))

let packet_tests =
  [ Alcotest.test_case "encode/decode roundtrip" `Quick (fun () ->
        let pkt =
          Packet.make ~tos:7 ~id:1234 ~ttl:17 ~proto:Ipv4.Proto.udp
            ~src:(Addr.of_string "10.0.1.2") ~dst:(Addr.of_string "10.0.3.4")
            (Bytes.of_string "hello world")
        in
        let decoded = Packet.decode (Packet.encode pkt) in
        check Alcotest.int "tos" 7 decoded.Packet.tos;
        check Alcotest.int "id" 1234 decoded.Packet.id;
        check Alcotest.int "ttl" 17 decoded.Packet.ttl;
        check addr_testable "src" pkt.Packet.src decoded.Packet.src;
        check Alcotest.string "payload" "hello world"
          (Bytes.to_string decoded.Packet.payload));
    Alcotest.test_case "wire sizes" `Quick (fun () ->
        let pkt =
          Packet.make ~proto:Ipv4.Proto.udp ~src:Addr.zero ~dst:Addr.zero
            (Bytes.create 100)
        in
        check Alcotest.int "header" 20 (Packet.header_length pkt);
        check Alcotest.int "total" 120 (Packet.total_length pkt);
        check Alcotest.int "encoded" 120
          (Bytes.length (Packet.encode pkt)));
    Alcotest.test_case "options extend header" `Quick (fun () ->
        let pkt =
          Packet.make ~proto:Ipv4.Proto.udp ~src:Addr.zero ~dst:Addr.zero
            ~options:[Ipv4.Ip_option.lsrr [Addr.of_string "10.0.0.1"]]
            Bytes.empty
        in
        check Alcotest.int "header" 28 (Packet.header_length pkt);
        let decoded = Packet.decode (Packet.encode pkt) in
        check Alcotest.int "options survive" 1
          (List.length decoded.Packet.options));
    Alcotest.test_case "corrupt header rejected" `Quick (fun () ->
        let pkt =
          Packet.make ~proto:Ipv4.Proto.udp ~src:Addr.zero ~dst:Addr.zero
            Bytes.empty
        in
        let buf = Packet.encode pkt in
        Bytes.set buf 12 '\xFF';
        Alcotest.check_raises "checksum"
          (Invalid_argument "Packet.decode: bad header checksum") (fun () ->
            ignore (Packet.decode buf)));
    Alcotest.test_case "decr_ttl bottoms out" `Quick (fun () ->
        let pkt =
          Packet.make ~ttl:2 ~proto:Ipv4.Proto.udp ~src:Addr.zero
            ~dst:Addr.zero Bytes.empty
        in
        match Packet.decr_ttl pkt with
        | None -> Alcotest.fail "ttl 2 should decrement"
        | Some p ->
          check Alcotest.int "ttl" 1 p.Packet.ttl;
          check Alcotest.bool "expired" true (Packet.decr_ttl p = None));
    Alcotest.test_case "decode_prefix of truncated packet" `Quick (fun () ->
        let pkt =
          Packet.make ~proto:Ipv4.Proto.udp ~src:(Addr.host 1 2)
            ~dst:(Addr.host 3 4) (Bytes.create 64)
        in
        let full = Packet.encode pkt in
        let truncated = Bytes.sub full 0 28 in (* header + 8 *)
        match Packet.decode_prefix truncated with
        | Some (p, full_payload) ->
          check addr_testable "dst" (Addr.host 3 4) p.Packet.dst;
          check Alcotest.int "available payload" 8
            (Bytes.length p.Packet.payload);
          check Alcotest.int "declared payload" 64 full_payload
        | None -> Alcotest.fail "expected a prefix decode");
    qtest
      (QCheck.Test.make ~name:"packet roundtrip (random payloads)"
         ~count:300
         QCheck.(triple arb_addr arb_addr arb_payload)
         (fun (src, dst, payload) ->
            let pkt =
              Packet.make ~proto:Ipv4.Proto.tcp ~src ~dst
                (Bytes.of_string payload)
            in
            let d = Packet.decode (Packet.encode pkt) in
            Addr.equal d.Packet.src src && Addr.equal d.Packet.dst dst
            && Bytes.to_string d.Packet.payload = payload)) ]

(* --- UDP / TCP --- *)

let transport_tests =
  [ Alcotest.test_case "udp roundtrip and length" `Quick (fun () ->
        let u =
          Ipv4.Udp.make ~src_port:53 ~dst_port:4000
            (Bytes.of_string "payload")
        in
        let e = Ipv4.Udp.encode u in
        check Alcotest.int "wire" (8 + 7) (Bytes.length e);
        let d = Ipv4.Udp.decode e in
        check Alcotest.int "sport" 53 d.Ipv4.Udp.src_port;
        check Alcotest.string "data" "payload"
          (Bytes.to_string d.Ipv4.Udp.data));
    Alcotest.test_case "udp corruption rejected" `Quick (fun () ->
        let e =
          Ipv4.Udp.encode (Ipv4.Udp.make ~src_port:1 ~dst_port:2
                             (Bytes.of_string "xy"))
        in
        Bytes.set e 9 'Z';
        Alcotest.check_raises "bad checksum"
          (Invalid_argument "Udp.decode: bad checksum") (fun () ->
            ignore (Ipv4.Udp.decode e)));
    Alcotest.test_case "tcp roundtrip with flags" `Quick (fun () ->
        let seg =
          Ipv4.Tcp_lite.make ~seq:0xDEADBEE ~ack:42
            ~flags:[Ipv4.Tcp_lite.Syn; Ipv4.Tcp_lite.Ack] ~src_port:80
            ~dst_port:5000 (Bytes.of_string "data")
        in
        let d = Ipv4.Tcp_lite.decode_exn (Ipv4.Tcp_lite.encode seg) in
        check Alcotest.int "seq" 0xDEADBEE d.Ipv4.Tcp_lite.seq;
        check Alcotest.bool "syn" true
          (Ipv4.Tcp_lite.has_flag d Ipv4.Tcp_lite.Syn);
        check Alcotest.bool "fin" false
          (Ipv4.Tcp_lite.has_flag d Ipv4.Tcp_lite.Fin);
        check Alcotest.int "header is 20" 20 Ipv4.Tcp_lite.header_length);
    qtest
      (QCheck.Test.make ~name:"udp roundtrip (random)" ~count:200
         QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) arb_payload)
         (fun (sp, dp, data) ->
            let u =
              Ipv4.Udp.make ~src_port:sp ~dst_port:dp (Bytes.of_string data)
            in
            let d = Ipv4.Udp.decode (Ipv4.Udp.encode u) in
            d.Ipv4.Udp.src_port = sp && d.Ipv4.Udp.dst_port = dp
            && Bytes.to_string d.Ipv4.Udp.data = data)) ]

(* --- ICMP --- *)

let icmp_msg_testable =
  Alcotest.testable Icmp.pp (fun a b -> Icmp.encode a = Icmp.encode b)

let icmp_tests =
  [ Alcotest.test_case "echo roundtrip" `Quick (fun () ->
        let m = Icmp.Echo_request { ident = 7; seq = 9; data = Bytes.of_string "ping" } in
        check icmp_msg_testable "echo" m (Icmp.decode (Icmp.encode m)));
    Alcotest.test_case "location update roundtrip and size" `Quick
      (fun () ->
         let m =
           Icmp.Location_update
             { mobile = Addr.host 2 10; foreign_agent = Addr.host 4 1 }
         in
         let e = Icmp.encode m in
         check Alcotest.int "16 bytes" 16 (Bytes.length e);
         check icmp_msg_testable "roundtrip" m (Icmp.decode e));
    Alcotest.test_case "agent advertisement roundtrip" `Quick (fun () ->
        let m =
          Icmp.Agent_advertisement
            { agent = Addr.host 4 1; home = true; foreign = true }
        in
        (match Icmp.decode (Icmp.encode m) with
         | Icmp.Agent_advertisement { agent; home; foreign } ->
           check addr_testable "agent" (Addr.host 4 1) agent;
           check Alcotest.bool "home" true home;
           check Alcotest.bool "foreign" true foreign
         | _ -> Alcotest.fail "wrong decode"));
    Alcotest.test_case "solicitation roundtrip" `Quick (fun () ->
        check icmp_msg_testable "sol" Icmp.Agent_solicitation
          (Icmp.decode (Icmp.encode Icmp.Agent_solicitation)));
    Alcotest.test_case "errors carry quoted original" `Quick (fun () ->
        let original = Bytes.of_string "original-packet-prefix-bytes" in
        let m = Icmp.Dest_unreachable { code = 1; original } in
        (match Icmp.decode (Icmp.encode m) with
         | Icmp.Dest_unreachable { code; original = o } ->
           check Alcotest.int "code" 1 code;
           check Alcotest.string "quoted" (Bytes.to_string original)
             (Bytes.to_string o)
         | _ -> Alcotest.fail "wrong decode"));
    Alcotest.test_case "unknown type silently discarded" `Quick (fun () ->
        let buf = Bytes.make 8 '\000' in
        Bytes.set buf 0 (Char.chr 77);
        Ipv4.Checksum.set buf ~at:2 ~off:0 ~len:8;
        check Alcotest.bool "none" true (Icmp.decode_opt buf = None));
    Alcotest.test_case "type codes match RFC numbering" `Quick (fun () ->
        check (Alcotest.pair Alcotest.int Alcotest.int) "echo req" (8, 0)
          (Icmp.type_code
             (Icmp.Echo_request { ident = 0; seq = 0; data = Bytes.empty }));
        check (Alcotest.pair Alcotest.int Alcotest.int) "time exceeded"
          (11, 0)
          (Icmp.type_code
             (Icmp.Time_exceeded { code = 0; original = Bytes.empty }));
        check (Alcotest.pair Alcotest.int Alcotest.int) "loc update"
          (41, 0)
          (Icmp.type_code
             (Icmp.Location_update
                { mobile = Addr.zero; foreign_agent = Addr.zero }))) ]

let suite =
  [ ("addr", addr_tests); ("checksum", checksum_tests);
    ("ip-options", option_tests); ("packet", packet_tests);
    ("transport", transport_tests); ("icmp", icmp_tests) ]
