(* Tests for the reliable-transfer workload: the "transparent above IP"
   demonstration.  A window/retransmission transport — unmodified, unaware
   of mobility — must complete across hand-offs, home-agent triangles,
   returns home, and even a foreign-agent crash. *)

module Time = Netsim.Time
module Topology = Net.Topology
module Node = Net.Node
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check

let setup () =
  let f = TG.figure1 () in
  Netsim.Trace.set_enabled (Topology.trace f.TG.topo) false;
  f

let reliable_tests =
  [ Alcotest.test_case "transfer to a stationary mobile host" `Quick
      (fun () ->
         let f = setup () in
         let xfer =
           Workload.Reliable.start ~sender:f.TG.s ~receiver:f.TG.m
             ~bytes:8192 ~at:(Time.of_sec 0.5) ()
         in
         Topology.run ~until:(Time.of_sec 10.0) f.TG.topo;
         check Alcotest.bool "complete" true (Workload.Reliable.complete xfer);
         check Alcotest.bool "intact" true
           (Workload.Reliable.received_ok xfer);
         let s = Workload.Reliable.stats xfer in
         check Alcotest.int "no retransmissions at home" 0
           s.Workload.Reliable.retransmissions);
    Alcotest.test_case "transfer survives a hand-off mid-stream" `Quick
      (fun () ->
         let f = setup () in
         let xfer =
           Workload.Reliable.start ~sender:f.TG.s ~receiver:f.TG.m
             ~bytes:65536 ~window:4 ~at:(Time.of_sec 0.5) ()
         in
         (* move while the window is in flight *)
         Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 0.6)
           f.TG.net_d;
         Topology.run ~until:(Time.of_sec 30.0) f.TG.topo;
         check Alcotest.bool "complete" true (Workload.Reliable.complete xfer);
         check Alcotest.bool "intact" true
           (Workload.Reliable.received_ok xfer);
         (* the hand-off cost at most retransmissions, never the
            connection: above-IP software needed no change (Section 1) *)
         let s = Workload.Reliable.stats xfer in
         check Alcotest.bool "needed some retransmissions" true
           (s.Workload.Reliable.retransmissions > 0));
    Alcotest.test_case "transfer survives moving away AND returning home"
      `Quick (fun () ->
          let f = setup () in
          let xfer =
            Workload.Reliable.start ~sender:f.TG.s ~receiver:f.TG.m
              ~bytes:131072 ~window:4 ~at:(Time.of_sec 0.5) ()
          in
          Workload.Mobility.itinerary f.TG.topo f.TG.m
            [ (Time.of_sec 1.0, f.TG.net_d);
              (Time.of_sec 3.0, f.TG.net_b) ];
          Topology.run ~until:(Time.of_sec 60.0) f.TG.topo;
          check Alcotest.bool "complete" true
            (Workload.Reliable.complete xfer);
          check Alcotest.bool "intact" true
            (Workload.Reliable.received_ok xfer));
    Alcotest.test_case "transfer survives a foreign-agent crash" `Quick
      (fun () ->
         let f = setup () in
         Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 0.5)
           f.TG.net_d;
         let xfer =
           Workload.Reliable.start ~sender:f.TG.s ~receiver:f.TG.m
             ~bytes:32768 ~window:4 ~at:(Time.of_sec 1.0) ()
         in
         ignore
           (Netsim.Engine.schedule (Topology.engine f.TG.topo)
              ~at:(Time.of_sec 1.5) (fun () ->
                  Node.crash_for (Agent.node f.TG.r4) (Time.of_sec 1.0)));
         Topology.run ~until:(Time.of_sec 60.0) f.TG.topo;
         check Alcotest.bool "complete" true (Workload.Reliable.complete xfer);
         check Alcotest.bool "intact" true
           (Workload.Reliable.received_ok xfer));
    Alcotest.test_case "fragmented transfer: fresh IP ID per transmission"
      `Quick (fun () ->
          (* Chunks larger than the 1500-byte MTU fragment on every hop, so
             reassembly keys (src, id, proto) are load-bearing.  Regression:
             IDs derived from the chunk number made every go-back-N
             retransmission reuse its original transmission's ID while
             fragments of that transmission could still sit in reassembly
             buffers.  Each transmission must carry a distinct ID. *)
          let f = setup () in
          Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 0.5)
            f.TG.net_d;
          let xfer =
            Workload.Reliable.start ~sender:f.TG.s ~receiver:f.TG.m
              ~chunk:2048 ~window:4 ~bytes:32768 ~at:(Time.of_sec 1.0) ()
          in
          (* crash the serving foreign agent while the first window is in
             flight, forcing go-back-N retransmissions *)
          ignore
            (Netsim.Engine.schedule (Topology.engine f.TG.topo)
               ~at:(Time.of_ms 1001) (fun () ->
                   Node.crash_for (Agent.node f.TG.r4) (Time.of_sec 1.0)));
          let ids = ref [] and frags = ref 0 in
          (* sender-built tunnels keep the inner ID but carry proto mhrp *)
          Node.on_transmit (Agent.node f.TG.s) (fun _ pkt ->
              if pkt.Ipv4.Packet.proto = Ipv4.Proto.tcp
                 || pkt.Ipv4.Packet.proto = Ipv4.Proto.mhrp
              then begin
                if Ipv4.Packet.is_fragment pkt then incr frags;
                (* the offset-0 fragment marks one transmission *)
                if pkt.Ipv4.Packet.frag_offset = 0 then
                  ids := pkt.Ipv4.Packet.id :: !ids
              end);
          Topology.run ~until:(Time.of_sec 30.0) f.TG.topo;
          check Alcotest.bool "complete" true (Workload.Reliable.complete xfer);
          check Alcotest.bool "intact" true
            (Workload.Reliable.received_ok xfer);
          let s = Workload.Reliable.stats xfer in
          check Alcotest.bool "needed some retransmissions" true
            (s.Workload.Reliable.retransmissions > 0);
          check Alcotest.bool "chunks actually fragmented" true (!frags > 0);
          check Alcotest.int "one distinct IP ID per transmission"
            (List.length !ids)
            (List.length (List.sort_uniq compare !ids)));
    Alcotest.test_case "mobile-to-mobile transfer, both away" `Quick
      (fun () ->
         let c =
           TG.campuses ~campuses:2 ~mobiles_per_campus:1 ~correspondents:0
             ()
         in
         Netsim.Trace.set_enabled (Topology.trace c.TG.c_topo) false;
         let m0 = c.TG.c_mobiles.(0) and m1 = c.TG.c_mobiles.(1) in
         Workload.Mobility.move_at c.TG.c_topo m0 ~at:(Time.of_sec 0.5)
           c.TG.c_cells.(1);
         Workload.Mobility.move_at c.TG.c_topo m1 ~at:(Time.of_sec 0.5)
           c.TG.c_cells.(0);
         let xfer =
           Workload.Reliable.start ~sender:m0 ~receiver:m1 ~bytes:16384
             ~at:(Time.of_sec 2.0) ()
         in
         Topology.run ~until:(Time.of_sec 30.0) c.TG.c_topo;
         check Alcotest.bool "complete" true (Workload.Reliable.complete xfer);
         check Alcotest.bool "intact" true
           (Workload.Reliable.received_ok xfer)) ]

let suite = [ ("reliable-transfer", reliable_tests) ]
