(* The observability layer: JSON codec round-trips and totality (in the
   decoder-totality style of test_properties.ml), metric/registry
   round-trips, and the baseline checker's gate behaviour. *)

module Json = Obs.Json
module Metric = Obs.Metric
module Registry = Obs.Registry
module Baseline = Obs.Baseline

let qtest = QCheck_alcotest.to_alcotest

(* --- generators --- *)

(* finite floats only: JSON has no syntax for nan/inf (they encode as
   null by design, which is deliberately not a round-trip) *)
let gen_float =
  QCheck.Gen.(
    oneof
      [ map float_of_int (int_range (-1000) 1000);
        map2
          (fun a b -> float_of_int a /. float_of_int (abs b + 1))
          (int_range (-1_000_000) 1_000_000)
          (int_range 0 10_000);
        map (fun a -> float_of_int a *. 1e12) (int_range (-1000) 1000) ])

let gen_key = QCheck.Gen.(string_size ~gen:printable (int_range 0 8))

let gen_json =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) int;
              map (fun f -> Json.Float f) gen_float;
              map (fun s -> Json.String s) (string_size (int_range 0 16)) ]
        in
        if n = 0 then leaf
        else
          frequency
            [ (2, leaf);
              (1,
               map (fun xs -> Json.List xs)
                 (list_size (int_range 0 4) (self (n / 2))));
              (1,
               map (fun kvs -> Json.Obj kvs)
                 (list_size (int_range 0 4)
                    (pair gen_key (self (n / 2))))) ]))

let rec pp_json ppf = function
  | Json.Null -> Format.fprintf ppf "null"
  | Json.Bool b -> Format.fprintf ppf "%b" b
  | Json.Int i -> Format.fprintf ppf "%d" i
  | Json.Float f -> Format.fprintf ppf "%h" f
  | Json.String s -> Format.fprintf ppf "%S" s
  | Json.List xs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p ";")
         pp_json)
      xs
  | Json.Obj kvs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p ";")
         (fun p (k, v) -> Format.fprintf p "%S:%a" k pp_json v))
      kvs

let arb_json =
  QCheck.make ~print:(Format.asprintf "%a" pp_json) gen_json

let gen_tol =
  QCheck.Gen.(
    oneof
      [ return Metric.Exact;
        return Metric.Info;
        map (fun p -> Metric.Pct (float_of_int p)) (int_range 1 50) ])

let gen_metric =
  QCheck.Gen.(
    let* tol = gen_tol in
    let* value =
      oneof
        [ map (fun n -> Metric.Counter n) int;
          map (fun f -> Metric.Gauge f) gen_float;
          map Metric.hist_of_samples (list_size (int_range 0 20) gen_float) ]
    in
    return { Metric.value; tol })

let gen_name =
  QCheck.Gen.(
    let* base = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
    let* label = int_range 0 99 in
    return (Registry.key base [("k", string_of_int label)]))

let gen_registry =
  QCheck.Gen.(
    let* entries =
      list_size (int_range 0 30)
        (triple (int_range 1 15) gen_name gen_metric)
    in
    let t = Registry.create () in
    List.iter
      (fun (e, name, m) ->
         Registry.set t ~exp:(Printf.sprintf "E%d" e) name m)
      entries;
    return t)

let arb_registry =
  QCheck.make
    ~print:(fun t ->
        String.concat "\n"
          (List.concat_map
             (fun exp ->
                List.map
                  (fun (k, m) ->
                     Format.asprintf "%s/%s = %a" exp k Metric.pp m)
                  (Registry.metrics t ~exp))
             (Registry.experiments t)))
    gen_registry

(* --- properties --- *)

let json_roundtrip pretty j =
  match Json.of_string (Json.to_string ~pretty j) with
  | Ok j' -> Json.equal j j'
  | Error _ -> false

let decoder_total s =
  match Json.of_string s with Ok _ | Error _ -> true

let truncation_total j =
  let s = Json.to_string ~pretty:true j in
  List.for_all
    (fun frac ->
       let len = String.length s * frac / 7 in
       decoder_total (String.sub s 0 (min len (String.length s))))
    [1; 2; 3; 4; 5; 6]

let registry_roundtrip t =
  let json = Registry.to_json t ~commit:"test" in
  match Json.of_string (Json.to_string ~pretty:true json) with
  | Error _ -> false
  | Ok j ->
    (match Registry.of_json j with
     | Error _ -> false
     | Ok t' ->
       List.for_all
         (fun exp ->
            let a = Registry.metrics t ~exp
            and b = Registry.metrics t' ~exp in
            List.length a = List.length b
            && List.for_all2
                 (fun (k1, m1) (k2, m2) ->
                    String.equal k1 k2 && Metric.equal m1 m2)
                 a b)
         (Registry.experiments t @ Registry.experiments t'))

let self_comparison_clean t =
  let report = Baseline.compare ~baseline:t ~current:t () in
  report.Baseline.drifts = []

(* --- unit tests --- *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk entries =
  let t = Registry.create () in
  List.iter (fun f -> f t) entries;
  t

let test_deep_nesting () =
  (match Json.of_string (String.make 5000 '[') with
   | Ok _ -> Alcotest.fail "accepted unterminated nesting"
   | Error _ -> ());
  let deep =
    String.concat "" [String.make 2000 '['; "1"; String.make 2000 ']']
  in
  match Json.of_string deep with
  | Ok _ -> Alcotest.fail "accepted nesting beyond the depth bound"
  | Error _ -> ()

let test_hist_summary () =
  match Metric.hist_of_samples [5.0; 1.0; 9.0; 3.0; 7.0] with
  | Metric.Hist { count; p50; p95; max } ->
    check_int "count" 5 count;
    Alcotest.(check (float 0.0)) "p50" 5.0 p50;
    Alcotest.(check (float 0.0)) "p95" 9.0 p95;
    Alcotest.(check (float 0.0)) "max" 9.0 max
  | _ -> Alcotest.fail "expected a hist"

let test_identical_files_pass () =
  let t =
    mk
      [ (fun t -> Registry.counter t ~exp:"E1" "added_bytes" 8);
        (fun t ->
           Registry.gauge t ~exp:"E2" ~tol:(Metric.Pct 20.0) "latency_ms"
             3.25);
        (fun t -> Registry.hist t ~exp:"E2" "hops" [3.0; 4.0; 5.0]) ]
  in
  (* through the serializers, as CI does *)
  let file = Filename.temp_file "obs_baseline" ".json" in
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc
        (Json.to_string ~pretty:true (Registry.to_json t ~commit:"a")));
  let baseline =
    match Baseline.load_file file with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  Sys.remove file;
  let report = Baseline.compare ~baseline ~current:t () in
  check_int "metrics checked" 3 report.Baseline.checked;
  check_bool "no drifts" true (report.Baseline.drifts = [])

let test_injected_regression_flagged () =
  let base =
    mk
      [ (fun t -> Registry.counter t ~exp:"E1" "added_bytes" 8);
        (fun t ->
           Registry.gauge t ~exp:"E7" ~tol:(Metric.Pct 20.0) "recovery_ms"
             100.0) ]
  in
  let cur =
    mk
      [ (fun t -> Registry.counter t ~exp:"E1" "added_bytes" 12);
        (fun t ->
           Registry.gauge t ~exp:"E7" ~tol:(Metric.Pct 20.0) "recovery_ms"
             100.0) ]
  in
  let report = Baseline.compare ~baseline:base ~current:cur () in
  (match report.Baseline.drifts with
   | [d] ->
     check_bool "names the metric" true
       (d.Baseline.path = "E1/added_bytes")
   | ds -> Alcotest.failf "expected 1 drift, got %d" (List.length ds))

let test_pct_tolerance () =
  let gauge v =
    mk
      [ (fun t ->
           Registry.gauge t ~exp:"E10" ~tol:(Metric.Pct 20.0) "plain_ms" v)
      ]
  in
  let base = gauge 10.0 in
  let within =
    Baseline.compare ~baseline:base ~current:(gauge 11.9) ()
  in
  check_bool "11.9 within ±20% of 10" true (within.Baseline.drifts = []);
  let beyond =
    Baseline.compare ~baseline:base ~current:(gauge 12.1) ()
  in
  check_bool "12.1 beyond ±20% of 10" false (beyond.Baseline.drifts = [])

let test_missing_and_extra_flagged () =
  let base = mk [(fun t -> Registry.counter t ~exp:"E1" "a" 1)] in
  let cur = mk [(fun t -> Registry.counter t ~exp:"E1" "b" 1)] in
  let report = Baseline.compare ~baseline:base ~current:cur () in
  check_int "both sides flagged" 2 (List.length report.Baseline.drifts)

let test_info_never_gates () =
  let mkv v =
    mk
      [ (fun t ->
           Registry.gauge t ~exp:"micro" ~tol:Metric.Info "ns_per_run" v) ]
  in
  let report =
    Baseline.compare ~baseline:(mkv 100.0) ~current:(mkv 5000.0) ()
  in
  check_bool "info tolerance never drifts" true
    (report.Baseline.drifts = []);
  check_int "info metrics are not counted as checked" 0
    report.Baseline.checked

let test_kind_change_flagged () =
  let base = mk [(fun t -> Registry.counter t ~exp:"E1" "x" 1)] in
  let cur = mk [(fun t -> Registry.gauge t ~exp:"E1" "x" 1.0)] in
  let report = Baseline.compare ~baseline:base ~current:cur () in
  check_bool "kind change drifts" false (report.Baseline.drifts = [])

let test_only_restricts () =
  let base =
    mk
      [ (fun t -> Registry.counter t ~exp:"E1" "a" 1);
        (fun t -> Registry.counter t ~exp:"E2" "b" 2) ]
  in
  let cur = mk [(fun t -> Registry.counter t ~exp:"E1" "a" 1)] in
  let full = Baseline.compare ~baseline:base ~current:cur () in
  check_bool "full compare flags the missing experiment" false
    (full.Baseline.drifts = []);
  let only = Baseline.compare ~only:["E1"] ~baseline:base ~current:cur () in
  check_bool "subset compare does not" true (only.Baseline.drifts = [])

let test_merge_grid_order () =
  (* merging per-trial registries in grid order must reproduce exactly
     what serial recording into one registry would have produced *)
  let serial =
    mk
      [ (fun t -> Registry.counter t ~exp:"E1" "a" 1);
        (fun t -> Registry.gauge t ~exp:"E1" ~tol:(Metric.Pct 5.0) "b" 2.5);
        (fun t -> Registry.counter t ~exp:"E2" "c" 3) ]
  in
  let t1 = mk [(fun t -> Registry.counter t ~exp:"E1" "a" 1)] in
  let t2 =
    mk
      [ (fun t -> Registry.gauge t ~exp:"E1" ~tol:(Metric.Pct 5.0) "b" 2.5);
        (fun t -> Registry.counter t ~exp:"E2" "c" 3) ]
  in
  let merged = Registry.create () in
  Registry.merge_into ~into:merged t1;
  Registry.merge_into ~into:merged t2;
  check_bool "merged equals serial" true
    (String.equal
       (Json.to_string ~pretty:true (Registry.to_json serial ~commit:"t"))
       (Json.to_string ~pretty:true (Registry.to_json merged ~commit:"t")))

let test_merge_duplicate_rejected () =
  (* two trials recording the same metric id is a bug in the experiment,
     not a last-writer-wins race to paper over *)
  let a = mk [(fun t -> Registry.counter t ~exp:"E1" "x" 1)] in
  let b = mk [(fun t -> Registry.counter t ~exp:"E1" "x" 2)] in
  let merged = Registry.create () in
  Registry.merge_into ~into:merged a;
  match Registry.merge_into ~into:merged b with
  | () -> Alcotest.fail "duplicate metric id accepted"
  | exception Registry.Duplicate_metric id ->
    Alcotest.(check string) "names the colliding metric" "E1/x" id

let test_schema_version_mismatch () =
  match
    Registry.of_json
      (Json.Obj
         [ ("schema_version", Json.Int 999);
           ("commit", Json.String "x");
           ("experiments", Json.Obj []) ])
  with
  | Ok _ -> Alcotest.fail "accepted a future schema_version"
  | Error _ -> ()

let suite =
  [ ( "obs unit",
      [ Alcotest.test_case "deep nesting rejected" `Quick test_deep_nesting;
        Alcotest.test_case "hist p50/p95/max" `Quick test_hist_summary;
        Alcotest.test_case "identical baseline passes" `Quick
          test_identical_files_pass;
        Alcotest.test_case "injected regression flagged" `Quick
          test_injected_regression_flagged;
        Alcotest.test_case "pct-20 gate" `Quick test_pct_tolerance;
        Alcotest.test_case "missing/extra metrics flagged" `Quick
          test_missing_and_extra_flagged;
        Alcotest.test_case "info tolerance never gates" `Quick
          test_info_never_gates;
        Alcotest.test_case "kind change flagged" `Quick
          test_kind_change_flagged;
        Alcotest.test_case "--only restricts the gate" `Quick
          test_only_restricts;
        Alcotest.test_case "merge preserves grid order" `Quick
          test_merge_grid_order;
        Alcotest.test_case "merge rejects duplicate metric ids" `Quick
          test_merge_duplicate_rejected;
        Alcotest.test_case "schema version mismatch rejected" `Quick
          test_schema_version_mismatch ] );
    ( "obs properties",
      [ qtest
          (QCheck.Test.make ~name:"json encode/decode roundtrip" ~count:500
             arb_json (json_roundtrip false));
        qtest
          (QCheck.Test.make
             ~name:"pretty json encode/decode roundtrip" ~count:500
             arb_json (json_roundtrip true));
        qtest
          (QCheck.Test.make
             ~name:"json decoder total on arbitrary bytes" ~count:1000
             QCheck.(string_of_size Gen.(int_range 0 64))
             decoder_total);
        qtest
          (QCheck.Test.make
             ~name:"json decoder total on truncated documents" ~count:300
             arb_json truncation_total);
        qtest
          (QCheck.Test.make
             ~name:"metric registry json roundtrip" ~count:300 arb_registry
             registry_roundtrip);
        qtest
          (QCheck.Test.make
             ~name:"registry compares clean against itself" ~count:300
             arb_registry self_comparison_clean) ] ) ]
