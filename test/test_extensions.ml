(* Tests for the paper's optional deployment modes: replicated home agents
   and host-specific-route operation (Sections 2 and 3). *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check
let addr_testable = Alcotest.testable Addr.pp Addr.equal

(* Figure 1 plus a second home agent H2 (a support host on network B). *)
let replicated_env () =
  let f = TG.figure1 () in
  let topo = f.TG.topo in
  let h2n = Topology.add_host topo ~router:false "H2" f.TG.net_b 2 in
  Topology.compute_routes topo;
  let h2 = Agent.create h2n in
  Agent.enable_home_agent h2;
  let grp = Mhrp.Replication.group [f.TG.r2; h2] in
  (* R2's figure1 setup already added M; mirror that on H2 *)
  Agent.add_mobile h2 (Agent.address f.TG.m);
  let metrics = Workload.Metrics.create topo in
  let traffic = Workload.Traffic.create metrics (Topology.engine topo) in
  Workload.Metrics.watch_receiver metrics f.TG.m;
  (f, grp, h2, metrics, traffic)

let replication_tests =
  [ Alcotest.test_case "registrations are mirrored to every replica"
      `Quick (fun () ->
          let f, grp, h2, _metrics, _traffic = replicated_env () in
          let m_addr = Agent.address f.TG.m in
          Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 1.0)
            f.TG.net_d;
          Topology.run ~until:(Time.of_sec 3.0) f.TG.topo;
          check Alcotest.bool "consistent" true
            (Mhrp.Replication.consistent grp m_addr);
          (match Agent.home_agent h2 with
           | Some ha ->
             check (Alcotest.option addr_testable) "replica knows"
               (Some (Addr.host 4 1))
               (Mhrp.Home_agent.location ha m_addr)
           | None -> Alcotest.fail "h2 must be a home agent");
          check Alcotest.bool "sync traffic flowed" true
            (Mhrp.Replication.sync_messages grp > 0));
    Alcotest.test_case
      "traffic still intercepted when the primary home agent is out"
      `Quick (fun () ->
          (* R2 is also the router for network B, so to keep routing alive
             we crash only its agent role by clearing the HA database
             interception: take the whole node down would cut the LAN.
             Instead the sender sits ON network B so interception happens
             by ARP, where either replica can answer. *)
          let f, _grp, h2, metrics, traffic = replicated_env () in
          let m_addr = Agent.address f.TG.m in
          let pn = Topology.add_host f.TG.topo "P" f.TG.net_b 30 in
          Topology.compute_routes f.TG.topo;
          let p_agent = Agent.create pn in
          Workload.Mobility.move_at f.TG.topo f.TG.m ~at:(Time.of_sec 1.0)
            f.TG.net_d;
          (* the primary stops answering: silence its proxy ARP and
             interception by marking it down for ARP purposes — we model a
             crashed support process by removing the HA role's database
             knowledge *)
          Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
              Node.set_arp_proxy (Agent.node f.TG.r2) (fun _ -> false);
              Node.set_accept_ip (Agent.node f.TG.r2) (fun _ _ -> false);
              Node.set_rewrite_forward (Agent.node f.TG.r2) (fun _ _ ->
                  Net.Node.Forward));
          Workload.Traffic.at traffic (Time.of_sec 3.0) (fun () ->
              let pkt =
                Ipv4.Packet.make ~id:77 ~proto:Ipv4.Proto.udp
                  ~src:(Agent.address p_agent) ~dst:m_addr
                  (Ipv4.Udp.encode
                     (Ipv4.Udp.make ~src_port:1 ~dst_port:2
                        (Bytes.create 32)))
              in
              Workload.Metrics.note_send metrics pkt;
              Agent.send p_agent pkt);
          Topology.run ~until:(Time.of_sec 8.0) f.TG.topo;
          (* H2's proxy ARP captured P's packet and tunneled it *)
          check Alcotest.bool "delivered via replica" true
            (List.exists
               (fun r -> r.Workload.Metrics.delivered_at <> None)
               (Workload.Metrics.records metrics));
          check Alcotest.bool "replica tunneled" true
            ((Agent.counters h2).Mhrp.Counters.tunnels_built > 0));
    Alcotest.test_case "group validation" `Quick (fun () ->
        check Alcotest.bool "empty refused" true
          (try
             ignore (Mhrp.Replication.group []);
             false
           with Invalid_argument _ -> true);
        let f = TG.figure1 () in
        check Alcotest.bool "non-HA refused" true
          (try
             ignore (Mhrp.Replication.group [f.TG.s]);
             false
           with Invalid_argument _ -> true)) ]

(* Host-specific routes: one home agent serving a domain of two home
   networks (B and B2), with no agent on B2's LAN. *)
let host_route_tests =
  [ Alcotest.test_case
      "one home agent serves a second network via host routes" `Quick
      (fun () ->
         let f = TG.figure1 () in
         let topo = f.TG.topo in
         (* network B2 behind R2 as well; M2 lives there *)
         let net_b2 = Topology.add_lan topo ~net:6 "netB2" in
         ignore (Node.attach (Agent.node f.TG.r2)
                   ~addr:(Addr.Prefix.host (Net.Lan.prefix net_b2) 1)
                   net_b2);
         let m2n = Topology.add_host topo "M2" net_b2 10 in
         Topology.compute_routes topo;
         let m2 = Agent.create m2n in
         Agent.make_mobile m2
           ~home_agent:(Addr.Prefix.host (Net.Lan.prefix net_b2) 1);
         Agent.add_mobile f.TG.r2 (Node.primary_addr m2n);
         let m2_addr = Agent.address m2 in
         let metrics = Workload.Metrics.create topo in
         let traffic =
           Workload.Traffic.create metrics (Topology.engine topo)
         in
         Workload.Metrics.watch_receiver metrics m2;
         (* M2 moves to the wireless cell; the home agent advertises a
            host route for M2 across the home domain (here: R2 itself
            plus the backbone routers of the organisation) *)
         Workload.Mobility.move_at topo m2 ~at:(Time.of_sec 1.0)
           f.TG.net_d;
         Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
             Mhrp.Host_routes.advertise
               ~domain:[Agent.node f.TG.r1; Agent.node f.TG.r3]
               ~mobile:m2_addr ~towards:(Agent.address f.TG.r2));
         Workload.Traffic.at traffic (Time.of_sec 3.0) (fun () ->
             Workload.Traffic.send_udp traffic ~src:f.TG.s ~dst:m2_addr ());
         Topology.run ~until:(Time.of_sec 6.0) topo;
         check Alcotest.int "advertised on both" 2
           (Mhrp.Host_routes.advertised
              ~domain:[Agent.node f.TG.r1; Agent.node f.TG.r3]
              ~mobile:m2_addr);
         check Alcotest.bool "delivered through the domain HA" true
           (List.exists
              (fun r -> r.Workload.Metrics.delivered_at <> None)
              (Workload.Metrics.records metrics));
         (* withdraw restores plain routing *)
         Mhrp.Host_routes.withdraw
           ~domain:[Agent.node f.TG.r1; Agent.node f.TG.r3]
           ~mobile:m2_addr;
         check Alcotest.int "withdrawn" 0
           (Mhrp.Host_routes.advertised
              ~domain:[Agent.node f.TG.r1; Agent.node f.TG.r3]
              ~mobile:m2_addr));
    Alcotest.test_case "advertise copies the next hop toward the origin"
      `Quick (fun () ->
          let f = TG.figure1 () in
          let mobile = Addr.host 2 77 in
          Mhrp.Host_routes.advertise ~domain:[Agent.node f.TG.r1]
            ~mobile ~towards:(Agent.address f.TG.r2);
          let r1 = Agent.node f.TG.r1 in
          check Alcotest.bool "host route matches HA route" true
            (Net.Route.lookup (Node.routes r1) mobile
             = Net.Route.lookup (Node.routes r1) (Agent.address f.TG.r2)));
    Alcotest.test_case "nodes without a route to the origin are skipped"
      `Quick (fun () ->
          let f = TG.figure1 () in
          let isolated =
            Net.Node.create
              ~engine:(Topology.engine f.TG.topo)
              ~mac_alloc:(Net.Mac.Alloc.create ())
              "isolated"
          in
          Mhrp.Host_routes.advertise ~domain:[isolated]
            ~mobile:(Addr.host 2 77) ~towards:(Agent.address f.TG.r2);
          check Alcotest.int "no route installed" 0
            (Net.Route.size (Node.routes isolated))) ]

let suite =
  [ ("replication", replication_tests);
    ("host-routes", host_route_tests) ]
