(* Staleness and recovery behaviour of the baseline protocols — the
   second-order behaviours the paper's Section 7 comparison leans on. *)

module Time = Netsim.Time
module Node = Net.Node
module Packet = Ipv4.Packet
module Addr = Ipv4.Addr
module TG = Workload.Topo_gen

let check = Alcotest.check

let mk_pkt ~id ~src ~dst =
  let udp = Ipv4.Udp.make ~src_port:4000 ~dst_port:4000 (Bytes.create 64) in
  Packet.make ~id ~proto:Ipv4.Proto.udp ~src:(Node.primary_addr src) ~dst
    (Ipv4.Udp.encode udp)

let schedule p at f =
  ignore
    (Netsim.Engine.schedule (Net.Topology.engine p.TG.p_topo)
       ~at:(Time.of_sec at) f)

(* add a second cell behind R3 so baselines can move twice *)
let with_second_cell p =
  let net_e = Net.Topology.add_lan p.TG.p_topo ~net:5 "netE" in
  let r5 =
    Net.Topology.add_router p.TG.p_topo "R5" [(p.TG.p_net_c, 3); (net_e, 1)]
  in
  Net.Topology.compute_routes p.TG.p_topo;
  (net_e, r5)

let columbia_tests =
  [ Alcotest.test_case
      "stale MSR cache re-tunnels after a second move (who-has again)"
      `Quick (fun () ->
          let p = TG.figure1_plain () in
          let m_addr = Node.primary_addr p.TG.p_m in
          let net_e, r5 = with_second_cell p in
          ignore net_e;
          let co = Baselines.Columbia.create p.TG.p_topo in
          let home = Baselines.Columbia.add_msr co p.TG.p_r2 ~cell:p.TG.p_net_b in
          let msr4 = Baselines.Columbia.add_msr co p.TG.p_r4 ~cell:p.TG.p_net_d in
          let msr5 = Baselines.Columbia.add_msr co r5 ~cell:net_e in
          Baselines.Columbia.make_mobile co p.TG.p_m ~home;
          let received = ref 0 in
          Node.set_proto_handler p.TG.p_m Ipv4.Proto.udp (fun _ _ ->
              incr received);
          schedule p 1.0 (fun () ->
              Baselines.Columbia.move co p.TG.p_m ~to_msr:msr4);
          schedule p 2.0 (fun () ->
              Baselines.Columbia.send co ~src:p.TG.p_s
                (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr));
          (* the home MSR now has msr4 cached; M moves on *)
          schedule p 3.0 (fun () ->
              Baselines.Columbia.move co p.TG.p_m ~to_msr:msr5);
          schedule p 4.0 (fun () ->
              Baselines.Columbia.send co ~src:p.TG.p_s
                (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr));
          Net.Topology.run ~until:(Time.of_sec 20.0) p.TG.p_topo;
          (* the stale tunnel hit msr4, which re-queried and re-tunneled *)
          check Alcotest.int "both delivered" 2 !received) ]

let matsushita_tests =
  [ Alcotest.test_case
      "autonomous cache goes stale; unreachable error falls back to PFS"
      `Quick (fun () ->
          let p = TG.figure1_plain () in
          let m_addr = Node.primary_addr p.TG.p_m in
          let net_e, r5 = with_second_cell p in
          let ma =
            Baselines.Matsushita.create p.TG.p_topo
              Baselines.Matsushita.Autonomous
          in
          Baselines.Matsushita.add_pfs ma p.TG.p_r2;
          Baselines.Matsushita.make_mobile ma p.TG.p_m ~pfs:p.TG.p_r2;
          let received = ref 0 in
          Baselines.Matsushita.on_receive ma p.TG.p_m (fun _ ->
              incr received);
          let temp1 = Addr.Prefix.host (Net.Lan.prefix p.TG.p_net_d) 50 in
          let temp2 = Addr.Prefix.host (Net.Lan.prefix net_e) 50 in
          schedule p 1.0 (fun () ->
              Baselines.Matsushita.move ma p.TG.p_m ~lan:p.TG.p_net_d
                ~via_router:p.TG.p_r4 ~temp:temp1);
          (* two packets: the second tunnels directly after the notice *)
          schedule p 2.0 (fun () ->
              Baselines.Matsushita.send ma ~src:p.TG.p_s
                (mk_pkt ~id:1 ~src:p.TG.p_s ~dst:m_addr));
          schedule p 3.0 (fun () ->
              Baselines.Matsushita.send ma ~src:p.TG.p_s
                (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr));
          (* move: the sender's cached temp1 is now dead.  Until the old
             cell's ARP entries age out (60 s) stale tunnels are a silent
             black hole — contrast with MHRP, whose explicit old-FA
             notification removes the visitor immediately.  Send after the
             aging so the error-driven fallback engages. *)
          schedule p 4.0 (fun () ->
              Baselines.Matsushita.move ma p.TG.p_m ~lan:net_e
                ~via_router:r5 ~temp:temp2);
          schedule p 70.0 (fun () ->
              Baselines.Matsushita.send ma ~src:p.TG.p_s
                (mk_pkt ~id:3 ~src:p.TG.p_s ~dst:m_addr));
          Net.Topology.run ~until:(Time.of_sec 90.0) p.TG.p_topo;
          (* the stale direct tunnel dies, the unreachable error triggers
             retransmission through the PFS: all three arrive *)
          check Alcotest.int "all delivered" 3 !received) ]

let ibm_tests =
  [ Alcotest.test_case
      "stale reversed route dies at the old base; sender falls back"
      `Quick (fun () ->
          let p = TG.figure1_plain () in
          let m_addr = Node.primary_addr p.TG.p_m in
          let s_addr = Node.primary_addr p.TG.p_s in
          let net_e, r5 = with_second_cell p in
          ignore net_e;
          let ib = Baselines.Ibm_lsrr.create p.TG.p_topo in
          let home_base =
            Baselines.Ibm_lsrr.add_base ib p.TG.p_r2 ~lan:p.TG.p_net_b
          in
          let base4 =
            Baselines.Ibm_lsrr.add_base ib p.TG.p_r4 ~lan:p.TG.p_net_d
          in
          let base5 = Baselines.Ibm_lsrr.add_base ib r5 ~lan:net_e in
          Baselines.Ibm_lsrr.make_mobile ib p.TG.p_m ~home_base;
          let m_received = ref 0 in
          Baselines.Ibm_lsrr.on_receive ib p.TG.p_m (fun _ ->
              incr m_received);
          Baselines.Ibm_lsrr.on_receive ib p.TG.p_s (fun _ -> ());
          schedule p 1.0 (fun () ->
              Baselines.Ibm_lsrr.move ib p.TG.p_m ~base:base4);
          (* the mobile sends first so S learns a reversed route via
             base4 *)
          schedule p 2.0 (fun () ->
              Baselines.Ibm_lsrr.send ib ~src:p.TG.p_m
                (mk_pkt ~id:1 ~src:p.TG.p_m ~dst:s_addr));
          (* M moves; S's reversed route is now stale.  As with the
             other temporary-address protocols, the old base is a silent
             black hole until its ARP entry for M ages out; send after
             that so the unreachable-driven fallback engages. *)
          schedule p 3.0 (fun () ->
              Baselines.Ibm_lsrr.move ib p.TG.p_m ~base:base5);
          schedule p 70.0 (fun () ->
              Baselines.Ibm_lsrr.send ib ~src:p.TG.p_s
                (mk_pkt ~id:2 ~src:p.TG.p_s ~dst:m_addr));
          Net.Topology.run ~until:(Time.of_sec 90.0) p.TG.p_topo;
          (* the paper: packets keep going to the old location until
             something corrects the route — here the old base's
             unreachable error makes S retransmit via the home base *)
          check Alcotest.int "recovered delivery" 1 !m_received) ]

let sony_tests =
  [ Alcotest.test_case "every packet pays the VIP header, even at home"
      `Quick (fun () ->
          let p = TG.figure1_plain () in
          let sv = Baselines.Sony_vip.create p.TG.p_topo in
          List.iter (Baselines.Sony_vip.add_router sv)
            [p.TG.p_r1; p.TG.p_r2];
          Baselines.Sony_vip.make_host sv p.TG.p_s ~home_router:p.TG.p_r1;
          Baselines.Sony_vip.make_host sv p.TG.p_m ~home_router:p.TG.p_r2;
          Baselines.Sony_vip.on_receive sv p.TG.p_m (fun _ -> ());
          let sizes = ref [] in
          Node.on_transmit p.TG.p_s (fun _ pkt ->
              sizes := Packet.total_length pkt :: !sizes);
          for k = 1 to 3 do
            schedule p (float_of_int k) (fun () ->
                Baselines.Sony_vip.send sv ~src:p.TG.p_s
                  (mk_pkt ~id:k ~src:p.TG.p_s
                     ~dst:(Node.primary_addr p.TG.p_m)))
          done;
          Net.Topology.run ~until:(Time.of_sec 5.0) p.TG.p_topo;
          check Alcotest.int "three sends" 3 (List.length !sizes);
          List.iter
            (fun size -> check Alcotest.int "92+28 bytes" 120 size)
            !sizes) ]

let vip_timestamp_tests =
  [ Alcotest.test_case
      "an older in-flight packet cannot regress a newer VIP binding"
      `Quick (fun () ->
          (* direct codec-level check of the timestamp guard *)
          let p = TG.figure1_plain () in
          let sv = Baselines.Sony_vip.create p.TG.p_topo in
          Baselines.Sony_vip.add_router sv p.TG.p_r1;
          Baselines.Sony_vip.make_host sv p.TG.p_m ~home_router:p.TG.p_r2;
          (* craft two VIP packets from M with different timestamps and
             different claimed physical sources, deliver newer first *)
          let vip = Node.primary_addr p.TG.p_m in
          (* addressed past R1 (netC), not to the sending node itself —
             a self-addressed packet loops back locally and would never
             cross R1's forwarding hook *)
          let mkvip ~stamp ~phys =
            let inner = mk_pkt ~id:1 ~src:p.TG.p_m ~dst:(Addr.host 3 10) in
            Baselines.Viph.add
              { Baselines.Viph.vip_src = vip; vip_dst = Addr.host 3 10;
                hop_count = 0; timestamp = stamp }
              { inner with Ipv4.Packet.src = phys }
          in
          (* R1 snoops via its forward hook: run packets through it *)
          let newer = mkvip ~stamp:10 ~phys:(Addr.host 4 50) in
          let older = mkvip ~stamp:5 ~phys:(Addr.host 5 50) in
          (* push through the rewrite hook directly *)
          let run pkt = Node.inject_local p.TG.p_r1 pkt in
          ignore run;
          (* instead of injecting (local delivery skips the hook), send
             them from S's node so R1 forwards them *)
          Node.set_routes p.TG.p_s
            (Net.Route.add_default Net.Route.empty
               (Net.Route.Via (Addr.host 1 1)));
          Node.send p.TG.p_s newer;
          Net.Topology.run ~until:(Time.of_sec 0.5) p.TG.p_topo;
          Node.send p.TG.p_s older;
          Net.Topology.run ~until:(Time.of_sec 1.0) p.TG.p_topo;
          (* the router's cache must still hold the newer binding: a
             packet addressed by VIP gets rewritten to 4.50, not 5.50 *)
          let probe =
            Baselines.Viph.add
              { Baselines.Viph.vip_src = Addr.host 1 10; vip_dst = vip;
                hop_count = 0; timestamp = 11 }
              (mk_pkt ~id:9 ~src:p.TG.p_s ~dst:vip)
          in
          let seen = ref None in
          Node.on_forward p.TG.p_r1 (fun _ pkt ->
              if pkt.Ipv4.Packet.proto = Ipv4.Proto.vip then
                seen := Some pkt.Ipv4.Packet.dst);
          Node.send p.TG.p_s probe;
          Net.Topology.run ~until:(Time.of_sec 2.0) p.TG.p_topo;
          check
            (Alcotest.option (Alcotest.testable Addr.pp Addr.equal))
            "rewritten to the newer phys" (Some (Addr.host 4 50)) !seen) ]

let suite =
  [ ("columbia-stale", columbia_tests);
    ("sony-vip-timestamps", vip_timestamp_tests);
    ("matsushita-stale", matsushita_tests); ("ibm-stale", ibm_tests);
    ("sony-always-pays", sony_tests) ]
