(* Integration tests of hierarchical registration ([Config.hierarchy])
   on the two-level regions topology: the home agent records the
   regional agent, intra-region handoffs are absorbed by the regional
   binding table, and data flows through the regional re-tunnel — plus
   the failure-recovery machinery: foreign-agent reboot healing,
   visitor-list-miss invalidation, regional-agent crash failover (direct
   and via the standby), and grace-period forwarding pointers. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Lan = Net.Lan
module Node = Net.Node
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let addr_testable = Alcotest.testable Addr.pp Addr.equal
let hier_config = Mhrp.Config.make ~hierarchy:true ()

let setup ?(config = hier_config) () =
  TG.regions ~config ~regions:2 ~cells:2 ~mobiles_per_region:1
    ~correspondents:1 ()

(* M0 is homed in region 0 (home agent RR0) and visits region 1, whose
   regional agent is RR1. *)
let m0 rg = rg.TG.rg_mobiles.(0)
let home rg = rg.TG.rg_regionals.(0)
let regional rg = rg.TG.rg_regionals.(1)
let cell rg r c = rg.TG.rg_cells.(r).(c)
let fa_addr rg r c = Addr.Prefix.host (Lan.prefix (cell rg r c)) 1

let move rg sec lan =
  Workload.Mobility.move_at rg.TG.rg_topo (m0 rg) ~at:(Time.of_sec sec) lan

let run ?(until = 10.0) rg =
  Topology.run ~until:(Time.of_sec until) rg.TG.rg_topo

let ha_location rg =
  match Agent.home_agent (home rg) with
  | Some h -> Mhrp.Home_agent.location h (Agent.address (m0 rg))
  | None -> Alcotest.fail "RR0 should be a home agent"

let regional_state rg =
  match Agent.regional_agent (regional rg) with
  | Some ra -> ra
  | None -> Alcotest.fail "RR1 should be a regional agent"

let regional_binding rg =
  Mhrp.Regional.find (regional_state rg) (Agent.address (m0 rg))

let ha_registrations rg =
  (Agent.counters (home rg)).Mhrp.Counters.registrations

let tests =
  [ Alcotest.test_case "inter-region move registers the regional agent"
      `Quick (fun () ->
          let rg = setup () in
          move rg 1.0 (cell rg 1 0);
          run rg;
          check (Alcotest.option addr_testable)
            "home agent points at the regional agent"
            (Some (Agent.address (regional rg)))
            (ha_location rg);
          check (Alcotest.option addr_testable)
            "regional binding points at the serving FA"
            (Some (fa_addr rg 1 0))
            (regional_binding rg));
    Alcotest.test_case "intra-region handoff never reaches the home agent"
      `Quick (fun () ->
          let rg = setup () in
          move rg 1.0 (cell rg 1 0);
          move rg 3.0 (cell rg 1 1);
          run rg;
          check Alcotest.int "one home registration for both moves" 1
            (ha_registrations rg);
          check (Alcotest.option addr_testable)
            "home agent still points at the regional agent"
            (Some (Agent.address (regional rg)))
            (ha_location rg);
          check (Alcotest.option addr_testable)
            "regional binding rewritten to the new FA"
            (Some (fa_addr rg 1 1))
            (regional_binding rg);
          check Alcotest.int "two regional registrations" 2
            (Mhrp.Regional.registrations (regional_state rg)));
    Alcotest.test_case "data delivers through the regional re-tunnel"
      `Quick (fun () ->
          let rg = setup () in
          let metrics = Workload.Metrics.create rg.TG.rg_topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine rg.TG.rg_topo)
          in
          Workload.Metrics.watch_receiver metrics (m0 rg);
          let dst = Agent.address (m0 rg) in
          move rg 1.0 (cell rg 1 0);
          Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
              Workload.Traffic.send_udp traffic ~src:rg.TG.rg_senders.(0)
                ~dst ());
          run rg;
          let r = List.nth (Workload.Metrics.records metrics) 0 in
          check Alcotest.bool "delivered" true
            (r.Workload.Metrics.delivered_at <> None);
          check Alcotest.bool "regional agent re-tunneled it" true
            ((Agent.counters (regional rg)).Mhrp.Counters.regional_retunnels
             >= 1));
    Alcotest.test_case "returning home withdraws the regional binding"
      `Quick (fun () ->
          let rg = setup () in
          move rg 1.0 (cell rg 1 0);
          move rg 3.0 rg.TG.rg_homes.(0);
          run rg;
          (match Agent.home_agent (home rg) with
           | Some h ->
             check Alcotest.bool "back home" false
               (Mhrp.Home_agent.is_away h (Agent.address (m0 rg)))
           | None -> Alcotest.fail "RR0 should be a home agent");
          check Alcotest.int "no regional bindings left" 0
            (Mhrp.Regional.size (regional_state rg));
          check Alcotest.int "one withdrawal counted" 1
            (Mhrp.Regional.withdrawals (regional_state rg)));
    Alcotest.test_case "flat mode ignores the provisioned hierarchy"
      `Quick (fun () ->
          let rg = setup ~config:Mhrp.Config.default () in
          move rg 1.0 (cell rg 1 0);
          run rg;
          check (Alcotest.option addr_testable)
            "home agent points straight at the FA"
            (Some (fa_addr rg 1 0))
            (ha_location rg);
          check Alcotest.int "regional table untouched" 0
            (Mhrp.Regional.size (regional_state rg)));
  ]

(* --- failure recovery ------------------------------------------------ *)

(* Short control timers so a dead regional agent is declared within a
   couple of simulated seconds: refresh every 1s, 3 retries at 100ms RTO. *)
let recovery_config ?regional_grace () =
  Mhrp.Config.make ~hierarchy:true ~reliable_control:true
    ~control_rto:(Time.of_ms 100) ~control_retries:3
    ~regional_lifetime:(Time.of_sec 60.0)
    ~regional_refresh:(Time.of_sec 1.0) ?regional_grace ()

let engine rg = Topology.engine rg.TG.rg_topo

let at rg sec f = ignore (Netsim.Engine.schedule (engine rg) ~at:(Time.of_sec sec) f)

let watch_delivery rg =
  let received = ref 0 in
  Agent.on_app_receive (m0 rg) (fun _ -> incr received);
  received

let send_to_m0 rg sec =
  at rg sec (fun () ->
      Agent.send rg.TG.rg_senders.(0)
        (Ipv4.Packet.make ~proto:Ipv4.Proto.udp
           ~src:(Agent.address rg.TG.rg_senders.(0))
           ~dst:(Agent.address (m0 rg))
           (Ipv4.Udp.encode
              (Ipv4.Udp.make ~src_port:4000 ~dst_port:4001
                 (Bytes.make 16 '\x5a')))))

(* Drop control datagrams the mobile addresses to [dst] once [on] — the
   targeted control-loss the fault injector applies probabilistically. *)
let drop_mobile_control rg ~dst on =
  Node.set_fault_filter
    (Agent.node (m0 rg))
    (Some
       (fun _ pkt ->
          not
            (!on
             && pkt.Ipv4.Packet.proto = Ipv4.Proto.udp
             && Addr.equal pkt.Ipv4.Packet.dst dst)))

let recovery_tests =
  [ Alcotest.test_case
      "FA reboot under hierarchy: probe re-adds the visitor, delivery \
       heals" `Quick (fun () ->
          let rg = setup () in
          let received = watch_delivery rg in
          move rg 1.0 (cell rg 1 0);
          let fa = rg.TG.rg_fas.(1).(0) in
          at rg 3.0 (fun () -> Node.reboot (Agent.node fa));
          (* the first packet finds the visitor list empty and triggers
             the probe; the second rides the re-added entry *)
          send_to_m0 rg 4.0;
          send_to_m0 rg 5.0;
          run rg;
          check Alcotest.bool "visitor re-added after probe" true
            ((Agent.counters fa).Mhrp.Counters.recoveries >= 1);
          check (Alcotest.option addr_testable)
            "regional binding still points at the healed FA"
            (Some (fa_addr rg 1 0))
            (regional_binding rg);
          check Alcotest.bool "delivery restored" true (!received >= 1));
    Alcotest.test_case
      "lost withdrawal: visitor-list-miss bounce drops the stale binding"
      `Quick (fun () ->
          let rg = setup () in
          let received = watch_delivery rg in
          let rr1 = Agent.address (regional rg) in
          let on = ref false in
          drop_mobile_control rg ~dst:rr1 on;
          move rg 1.0 (cell rg 1 0);
          at rg 2.5 (fun () -> on := true);
          (* going home: Reg_request and Fa_disconnect go through, the
             regional withdrawal is lost — pre-lifetime, the binding
             would stay forever *)
          move rg 3.0 rg.TG.rg_homes.(0);
          (* a correspondent with a stale cache tunnels into the region;
             the (now-bindingless) regional bounces it toward home *)
          at rg 5.0 (fun () ->
              Mhrp.Location_cache.insert
                (Agent.cache rg.TG.rg_senders.(0))
                ~mobile:(Agent.address (m0 rg)) ~foreign_agent:rr1);
          send_to_m0 rg 5.1;
          run rg;
          check Alcotest.int "the withdrawal really was lost" 0
            (Mhrp.Regional.withdrawals (regional_state rg));
          check Alcotest.int "binding invalidated by the miss bounce" 1
            (Mhrp.Regional.invalidations (regional_state rg));
          check (Alcotest.option addr_testable) "binding gone" None
            (regional_binding rg);
          check Alcotest.bool "packet still delivered (bounced home)" true
            (!received >= 1));
    Alcotest.test_case
      "unresponsive regional agent: mobile falls back to direct home \
       registration" `Quick (fun () ->
          let rg = setup ~config:(recovery_config ()) () in
          let received = watch_delivery rg in
          let rr1 = Agent.address (regional rg) in
          let on = ref false in
          drop_mobile_control rg ~dst:rr1 on;
          move rg 1.0 (cell rg 1 0);
          (* from 1.5 the regional agent never hears the mobile again;
             the 2.0s refresh exhausts its retries and gives up *)
          at rg 1.5 (fun () -> on := true);
          send_to_m0 rg 6.0;
          run rg;
          let c = Agent.counters (m0 rg) in
          check Alcotest.int "one failover" 1
            c.Mhrp.Counters.region_failovers;
          check Alcotest.int "refresh retried before giving up" 3
            c.Mhrp.Counters.region_retransmissions;
          check (Alcotest.option addr_testable)
            "home agent repointed straight at the FA"
            (Some (fa_addr rg 1 0))
            (ha_location rg);
          (match Agent.mobile (m0 rg) with
           | Some mh ->
             check Alcotest.bool "no regional anchor left" true
               (mh.Mhrp.Mobile_host.regional = None)
           | None -> Alcotest.fail "M0 should be mobile");
          check Alcotest.int "delivery restored through the direct path" 1
            !received);
    Alcotest.test_case
      "regional crash: advertised backup takes the region over" `Quick
      (fun () ->
          let rg =
            TG.regions ~config:(recovery_config ()) ~backups:true
              ~regions:2 ~cells:2 ~mobiles_per_region:1 ~correspondents:1
              ()
          in
          let received = watch_delivery rg in
          let backup = rg.TG.rg_backups.(1) in
          move rg 1.0 (cell rg 1 0);
          (* full router crash: with a standby wired in, transit survives
             (routes prefer RB1) and the failover re-anchors there *)
          at rg 2.5 (fun () ->
              Node.crash_for (Agent.node (regional rg)) (Time.of_sec 60.0));
          send_to_m0 rg 6.0;
          run rg;
          check Alcotest.int "one failover" 1
            (Agent.counters (m0 rg)).Mhrp.Counters.region_failovers;
          check (Alcotest.option addr_testable)
            "home agent repointed at the backup"
            (Some (Agent.address backup))
            (ha_location rg);
          (match Agent.regional_agent backup with
           | Some r ->
             check (Alcotest.option addr_testable)
               "backup holds the mirrored binding"
               (Some (fa_addr rg 1 0))
               (Mhrp.Regional.find r (Agent.address (m0 rg)));
             check Alcotest.bool
               "takeover refreshed the mirror instead of re-registering"
               true
               (Mhrp.Regional.refreshes r >= 1)
           | None -> Alcotest.fail "RB1 should be a regional agent");
          check Alcotest.int "delivery restored through the backup" 1
            !received);
    Alcotest.test_case
      "inter-region handoff leaves a forwarding pointer that expires"
      `Quick (fun () ->
          let rg =
            TG.regions ~config:hier_config ~regions:3 ~cells:2
              ~mobiles_per_region:1 ~correspondents:1 ()
          in
          let received = watch_delivery rg in
          let rr1 = Agent.address (regional rg) in
          let m0_addr = Agent.address (m0 rg) in
          let during = ref None and after = ref None in
          move rg 1.0 (cell rg 1 0);
          move rg 3.0 (cell rg 2 0);
          at rg 4.0 (fun () ->
              during :=
                Mhrp.Regional.forward (regional_state rg)
                  ~now:(Netsim.Engine.now (engine rg))
                  m0_addr;
              (* a stale cache still tunnels into the old region *)
              Mhrp.Location_cache.insert
                (Agent.cache rg.TG.rg_senders.(0))
                ~mobile:m0_addr ~foreign_agent:rr1);
          send_to_m0 rg 4.1;
          (* default grace is 2s: the pointer set at ~3.0 is gone by 7.0 *)
          at rg 7.0 (fun () ->
              after :=
                Mhrp.Regional.forward (regional_state rg)
                  ~now:(Netsim.Engine.now (engine rg))
                  m0_addr);
          run rg;
          check (Alcotest.option addr_testable)
            "pointer chases the mobile to its new regional agent"
            (Some (Agent.address rg.TG.rg_regionals.(2)))
            !during;
          check Alcotest.bool "old regional forwarded in-flight traffic"
            true
            ((Agent.counters (regional rg)).Mhrp.Counters.regional_forwards
             >= 1);
          check Alcotest.bool "forwarded packet delivered" true
            (!received >= 1);
          check (Alcotest.option addr_testable) "pointer expired" None
            !after;
          check Alcotest.int "expired pointer swept from the table" 0
            (Mhrp.Regional.forwards_size (regional_state rg)));
  ]

(* --- regional table units -------------------------------------------- *)

let unit_m = Addr.host 7 10
let unit_fa = Addr.host 8 1
let unit_fa2 = Addr.host 9 1

let regional_unit_tests =
  [ Alcotest.test_case "pure refresh counted apart from registrations"
      `Quick (fun () ->
          let r = Mhrp.Regional.create () in
          check Alcotest.bool "first write is fresh" true
            (Mhrp.Regional.register r ~mobile:unit_m ~foreign_agent:unit_fa
               ()
             = `Fresh);
          check Alcotest.bool "unchanged rewrite is a refresh" true
            (Mhrp.Regional.register r ~mobile:unit_m ~foreign_agent:unit_fa
               ()
             = `Refresh);
          check Alcotest.bool "moving the binding is fresh again" true
            (Mhrp.Regional.register r ~mobile:unit_m
               ~foreign_agent:unit_fa2 ()
             = `Fresh);
          check Alcotest.int "two registrations" 2
            (Mhrp.Regional.registrations r);
          check Alcotest.int "one refresh" 1 (Mhrp.Regional.refreshes r));
    Alcotest.test_case "expire evicts only lapsed lifetimes" `Quick
      (fun () ->
          let r = Mhrp.Regional.create () in
          ignore
            (Mhrp.Regional.register r ~expires_at:(Time.of_us 100)
               ~mobile:unit_m ~foreign_agent:unit_fa ());
          ignore
            (Mhrp.Regional.register r ~expires_at:(Time.of_us 300)
               ~mobile:unit_fa2 ~foreign_agent:unit_fa ());
          check
            (Alcotest.list (Alcotest.pair addr_testable addr_testable))
            "nothing lapsed yet" []
            (Mhrp.Regional.expire r ~now:(Time.of_us 99));
          check
            (Alcotest.list (Alcotest.pair addr_testable addr_testable))
            "first lifetime lapses alone"
            [(unit_m, unit_fa)]
            (Mhrp.Regional.expire r ~now:(Time.of_us 100));
          check Alcotest.int "one expiration counted" 1
            (Mhrp.Regional.expirations r);
          check Alcotest.int "survivor still bound" 1
            (Mhrp.Regional.size r));
    Alcotest.test_case "forwarding pointer lives exactly its grace" `Quick
      (fun () ->
          let r = Mhrp.Regional.create () in
          Mhrp.Regional.set_forward r ~mobile:unit_m ~new_regional:unit_fa2
            ~expires_at:(Time.of_us 100);
          check (Alcotest.option addr_testable) "live before expiry"
            (Some unit_fa2)
            (Mhrp.Regional.forward r ~now:(Time.of_us 99) unit_m);
          check (Alcotest.option addr_testable) "gone at expiry" None
            (Mhrp.Regional.forward r ~now:(Time.of_us 100) unit_m);
          check Alcotest.int "removed on lookup" 0
            (Mhrp.Regional.forwards_size r));
    qtest
      (QCheck.Test.make
         ~name:"expiry never evicts a live refreshing binding"
         QCheck.(small_list (int_bound 99))
         (fun deltas ->
            let lifetime = 100 in
            let r = Mhrp.Regional.create () in
            let clock = ref 0 in
            let refresh () =
              ignore
                (Mhrp.Regional.register r
                   ~expires_at:(Time.of_us (!clock + lifetime))
                   ~mobile:unit_m ~foreign_agent:unit_fa ())
            in
            refresh ();
            (* a decoy that never refreshes may lapse; the live one
               must not *)
            ignore
              (Mhrp.Regional.register r
                 ~expires_at:(Time.of_us lifetime) ~mobile:unit_fa2
                 ~foreign_agent:unit_fa ());
            List.for_all
              (fun d ->
                 clock := !clock + d;
                 let evicted = Mhrp.Regional.expire r ~now:(Time.of_us !clock) in
                 refresh ();
                 (not (List.mem_assoc unit_m evicted))
                 && Mhrp.Regional.find r unit_m = Some unit_fa)
              deltas))
  ]

let suite =
  [ ("hierarchy", tests);
    ("hierarchy.recovery", recovery_tests);
    ("hierarchy.regional", regional_unit_tests) ]
