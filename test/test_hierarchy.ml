(* Integration tests of hierarchical registration ([Config.hierarchy])
   on the two-level regions topology: the home agent records the
   regional agent, intra-region handoffs are absorbed by the regional
   binding table, and data flows through the regional re-tunnel. *)

module Time = Netsim.Time
module Addr = Ipv4.Addr
module Lan = Net.Lan
module Topology = Net.Topology
module Agent = Mhrp.Agent
module TG = Workload.Topo_gen

let check = Alcotest.check
let addr_testable = Alcotest.testable Addr.pp Addr.equal
let hier_config = Mhrp.Config.make ~hierarchy:true ()

let setup ?(config = hier_config) () =
  TG.regions ~config ~regions:2 ~cells:2 ~mobiles_per_region:1
    ~correspondents:1 ()

(* M0 is homed in region 0 (home agent RR0) and visits region 1, whose
   regional agent is RR1. *)
let m0 rg = rg.TG.rg_mobiles.(0)
let home rg = rg.TG.rg_regionals.(0)
let regional rg = rg.TG.rg_regionals.(1)
let cell rg r c = rg.TG.rg_cells.(r).(c)
let fa_addr rg r c = Addr.Prefix.host (Lan.prefix (cell rg r c)) 1

let move rg sec lan =
  Workload.Mobility.move_at rg.TG.rg_topo (m0 rg) ~at:(Time.of_sec sec) lan

let run ?(until = 10.0) rg =
  Topology.run ~until:(Time.of_sec until) rg.TG.rg_topo

let ha_location rg =
  match Agent.home_agent (home rg) with
  | Some h -> Mhrp.Home_agent.location h (Agent.address (m0 rg))
  | None -> Alcotest.fail "RR0 should be a home agent"

let regional_state rg =
  match Agent.regional_agent (regional rg) with
  | Some ra -> ra
  | None -> Alcotest.fail "RR1 should be a regional agent"

let regional_binding rg =
  Mhrp.Regional.find (regional_state rg) (Agent.address (m0 rg))

let ha_registrations rg =
  (Agent.counters (home rg)).Mhrp.Counters.registrations

let tests =
  [ Alcotest.test_case "inter-region move registers the regional agent"
      `Quick (fun () ->
          let rg = setup () in
          move rg 1.0 (cell rg 1 0);
          run rg;
          check (Alcotest.option addr_testable)
            "home agent points at the regional agent"
            (Some (Agent.address (regional rg)))
            (ha_location rg);
          check (Alcotest.option addr_testable)
            "regional binding points at the serving FA"
            (Some (fa_addr rg 1 0))
            (regional_binding rg));
    Alcotest.test_case "intra-region handoff never reaches the home agent"
      `Quick (fun () ->
          let rg = setup () in
          move rg 1.0 (cell rg 1 0);
          move rg 3.0 (cell rg 1 1);
          run rg;
          check Alcotest.int "one home registration for both moves" 1
            (ha_registrations rg);
          check (Alcotest.option addr_testable)
            "home agent still points at the regional agent"
            (Some (Agent.address (regional rg)))
            (ha_location rg);
          check (Alcotest.option addr_testable)
            "regional binding rewritten to the new FA"
            (Some (fa_addr rg 1 1))
            (regional_binding rg);
          check Alcotest.int "two regional registrations" 2
            (Mhrp.Regional.registrations (regional_state rg)));
    Alcotest.test_case "data delivers through the regional re-tunnel"
      `Quick (fun () ->
          let rg = setup () in
          let metrics = Workload.Metrics.create rg.TG.rg_topo in
          let traffic =
            Workload.Traffic.create metrics (Topology.engine rg.TG.rg_topo)
          in
          Workload.Metrics.watch_receiver metrics (m0 rg);
          let dst = Agent.address (m0 rg) in
          move rg 1.0 (cell rg 1 0);
          Workload.Traffic.at traffic (Time.of_sec 2.0) (fun () ->
              Workload.Traffic.send_udp traffic ~src:rg.TG.rg_senders.(0)
                ~dst ());
          run rg;
          let r = List.nth (Workload.Metrics.records metrics) 0 in
          check Alcotest.bool "delivered" true
            (r.Workload.Metrics.delivered_at <> None);
          check Alcotest.bool "regional agent re-tunneled it" true
            ((Agent.counters (regional rg)).Mhrp.Counters.regional_retunnels
             >= 1));
    Alcotest.test_case "returning home withdraws the regional binding"
      `Quick (fun () ->
          let rg = setup () in
          move rg 1.0 (cell rg 1 0);
          move rg 3.0 rg.TG.rg_homes.(0);
          run rg;
          (match Agent.home_agent (home rg) with
           | Some h ->
             check Alcotest.bool "back home" false
               (Mhrp.Home_agent.is_away h (Agent.address (m0 rg)))
           | None -> Alcotest.fail "RR0 should be a home agent");
          check Alcotest.int "no regional bindings left" 0
            (Mhrp.Regional.size (regional_state rg));
          check Alcotest.int "one withdrawal counted" 1
            (Mhrp.Regional.withdrawals (regional_state rg)));
    Alcotest.test_case "flat mode ignores the provisioned hierarchy"
      `Quick (fun () ->
          let rg = setup ~config:Mhrp.Config.default () in
          move rg 1.0 (cell rg 1 0);
          run rg;
          check (Alcotest.option addr_testable)
            "home agent points straight at the FA"
            (Some (fa_addr rg 1 0))
            (ha_location rg);
          check Alcotest.int "regional table untouched" 0
            (Mhrp.Regional.size (regional_state rg)));
  ]

let suite = [("hierarchy", tests)]
